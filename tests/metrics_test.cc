// Tests for the observability layer (obs::MetricsRegistry + OpTrace):
// striped primitives under concurrency, scrape/reset/merge semantics,
// export formats, the DStore end-to-end counters, and the crash+recovery
// reconciliation invariant (ops replayed == log records applied; no span
// leaks across a crash).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dstore/dstore.h"
#include "obs/metrics.h"
#include "obs/op_trace.h"

namespace dstore {
namespace {

using obs::MetricsRegistry;
using obs::MetricSnapshot;
using obs::MetricType;

// The unit tests below exercise the instrumented write paths, so they only
// make sense when the instrumentation is compiled in.
#if !defined(DSTORE_METRICS_DISABLED)

TEST(Metrics, CounterAggregatesAcrossThreads) {
  MetricsRegistry reg;
  obs::Counter* c = reg.counter("test_total", "a counter");
  constexpr int kThreads = 8, kPer = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < kPer; i++) c->add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c->value(), (uint64_t)kThreads * kPer);
  EXPECT_EQ(reg.counter_value("test_total"), (uint64_t)kThreads * kPer);
}

TEST(Metrics, GaugeBalancesAcrossThreads) {
  MetricsRegistry reg;
  obs::Gauge* g = reg.gauge("test_level", "a gauge");
  // Unbalanced add/sub from different threads must still sum exactly:
  // each thread nets +7 over 1000 round trips.
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < 1000; i++) {
        g->add(10);
        g->sub(3);
        g->sub(7);
      }
      g->add(7);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(g->value(), 4 * 7);
  g->set(-5);
  EXPECT_EQ(g->value(), -5);
}

TEST(Metrics, HistogramAggregatesAcrossThreads) {
  MetricsRegistry reg;
  obs::Histogram* h = reg.histogram("test_ns", "a histogram");
  constexpr int kThreads = 4, kPer = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kPer; i++) h->record((uint64_t)(t + 1) * 100);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h->count(), (uint64_t)kThreads * kPer);
  EXPECT_EQ(h->sum(), (uint64_t)kPer * (100 + 200 + 300 + 400));
  EXPECT_GE(h->max(), 400u);
  // p50 falls in the bucket holding 200; quantiles report the (log-spaced)
  // bucket's upper bound, so allow the bucket's width of slack.
  uint64_t p50 = h->value_at_quantile(0.5);
  EXPECT_GE(p50, 200u);
  EXPECT_LT(p50, 400u);
}

TEST(Metrics, CallbackMetricsReadSourceAtScrape) {
  MetricsRegistry reg;
  uint64_t source = 3;
  double level = 0.25;
  reg.counter_fn("cb_total", "callback counter", [&] { return source; });
  reg.gauge_fn("cb_level", "callback gauge", [&] { return level; });
  EXPECT_EQ(reg.counter_value("cb_total"), 3u);
  source = 42;
  level = 0.75;
  auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].value, 42.0);
  EXPECT_EQ(snaps[1].value, 0.75);
  // reset() leaves callback metrics alone: they mirror their source.
  reg.reset();
  EXPECT_EQ(reg.counter_value("cb_total"), 42u);
}

TEST(Metrics, ResetZeroesOwnedMetricsOnly) {
  MetricsRegistry reg;
  obs::Counter* c = reg.counter("owned_total", "owned");
  obs::Histogram* h = reg.histogram("owned_ns", "owned");
  uint64_t ext = 9;
  reg.counter_fn("external_total", "mirrored", [&] { return ext; });
  c->add(5);
  h->record(123);
  reg.reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0u);
  EXPECT_EQ(reg.counter_value("external_total"), 9u);
}

TEST(Metrics, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  obs::Counter* a = reg.counter("same_total", "first");
  obs::Counter* b = reg.counter("same_total", "second registration ignored");
  EXPECT_EQ(a, b);
  a->add(2);
  EXPECT_EQ(reg.counter_value("same_total"), 2u);
  EXPECT_EQ(reg.find_counter("same_total"), a);
  EXPECT_EQ(reg.find_gauge("same_total"), nullptr);  // wrong kind
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
}

TEST(Metrics, MergeSumsCountersAndMergesHistograms) {
  MetricsRegistry a, b;
  a.counter("ops_total", "ops")->add(10);
  b.counter("ops_total", "ops")->add(32);
  a.gauge("level", "level")->add(4);
  b.gauge("level", "level")->add(-1);
  a.histogram("lat_ns", "latency")->record(100);
  b.histogram("lat_ns", "latency")->record(300);
  b.histogram("lat_ns", "latency")->record(100);
  b.counter("only_b_total", "unique to b")->add(7);

  auto merged = MetricsRegistry::merge({a.snapshot(), b.snapshot()});
  ASSERT_EQ(merged.size(), 4u);
  for (const MetricSnapshot& s : merged) {
    if (s.name == "ops_total") {
      EXPECT_EQ(s.value, 42.0);
    }
    if (s.name == "level") {
      EXPECT_EQ(s.value, 3.0);
    }
    if (s.name == "only_b_total") {
      EXPECT_EQ(s.value, 7.0);
    }
    if (s.name == "lat_ns") {
      EXPECT_EQ(s.count, 3u);
      EXPECT_EQ(s.sum, 500u);
      EXPECT_EQ(s.max, 300u);
      uint64_t total = 0;
      for (const auto& bkt : s.buckets) total += bkt.count;
      EXPECT_EQ(total, 3u);
    }
  }
}

TEST(Metrics, JsonAndPrometheusExports) {
  MetricsRegistry reg;
  reg.counter("exp_total", "an exported counter")->add(5);
  reg.gauge("exp_level", "an exported gauge")->add(2);
  reg.histogram("exp_ns", "an exported histogram")->record(1000);

  std::string json = reg.scrape_json();
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"exp_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);

  std::string prom = reg.scrape_prometheus();
  EXPECT_NE(prom.find("# HELP exp_total an exported counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE exp_total counter"), std::string::npos);
  EXPECT_NE(prom.find("exp_total 5"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE exp_level gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE exp_ns histogram"), std::string::npos);
  EXPECT_NE(prom.find("exp_ns_count 1"), std::string::npos);
}

TEST(OpTraceUnit, FailureIsDefaultSuccessIsExplicit) {
  MetricsRegistry reg;
  obs::OpMetrics m;
  m.ops = reg.counter("u_ops_total", "ops");
  m.failures = reg.counter("u_failures_total", "failures");
  m.active = reg.gauge("u_active", "in flight");
  m.latency = reg.histogram("u_latency_ns", "latency");
  // kSampleEvery consecutive traces: exactly one is sampled regardless of
  // the thread-local tick's phase; only sampled traces time themselves and
  // touch the active gauge.
  uint32_t sampled = 0;
  for (uint32_t i = 0; i < obs::OpTrace::kSampleEvery; i++) {
    obs::OpTrace t(m, nullptr);
    if (t.sampled()) {
      sampled++;
      EXPECT_EQ(m.active->value(), 1);
    }
    t.succeed();
  }
  EXPECT_EQ(sampled, 1u);
  {
    obs::OpTrace t(m, nullptr);  // dropped without succeed() = failure
    if (t.sampled()) sampled++;
  }
  EXPECT_EQ(m.ops->value(), obs::OpTrace::kSampleEvery + 1);
  EXPECT_EQ(m.failures->value(), 1u);
  EXPECT_EQ(m.latency->count(), sampled);
  EXPECT_EQ(m.active->value(), 0);
}

#endif  // !DSTORE_METRICS_DISABLED

// ---------------------------------------------------------------------------
// DStore end-to-end
// ---------------------------------------------------------------------------

struct MetricsRig {
  DStoreConfig cfg;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<ssd::RamBlockDevice> device;
  std::unique_ptr<DStore> store;
  ds_ctx_t* ctx = nullptr;

  void build(pmem::Pool::Mode mode = pmem::Pool::Mode::kDirect) {
    cfg.max_objects = 128;
    cfg.num_blocks = 1024;
    cfg.engine.log_slots = 512;
    cfg.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(cfg.max_objects);
    cfg.engine.background_checkpointing = false;
    pool = std::make_unique<pmem::Pool>(dipper::Engine::required_pool_bytes(cfg.engine), mode);
    ssd::DeviceConfig dc;
    dc.num_blocks = cfg.num_blocks;
    device = std::make_unique<ssd::RamBlockDevice>(dc);
    auto s = DStore::create(pool.get(), device.get(), cfg);
    ASSERT_TRUE(s.is_ok()) << s.status().to_string();
    store = std::move(s).value();
    ctx = store->ds_init();
  }

  ~MetricsRig() {
    if (store != nullptr) store->ds_finalize(ctx);
  }
};

TEST(MetricsE2E, OperationCountersTrackVerbs) {
  MetricsRig rig;
  rig.build();
  std::string v(4096, 'm');
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(rig.store->oput(rig.ctx, "k" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  std::string out(4096, 0);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(rig.store->oget(rig.ctx, "k" + std::to_string(i), out.data(), out.size()).is_ok());
  }
  ASSERT_TRUE(rig.store->odelete(rig.ctx, "k0").is_ok());
  // A failed get is still counted as an attempt, plus one failure.
  EXPECT_FALSE(rig.store->oget(rig.ctx, "k0", out.data(), out.size()).is_ok());

  auto& m = rig.store->metrics();
  EXPECT_EQ(m.counter_value("dstore_puts_total"), 20u);
  EXPECT_EQ(m.counter_value("dstore_gets_total"), 11u);
  EXPECT_EQ(m.counter_value("dstore_get_failures_total"), 1u);
  EXPECT_EQ(m.counter_value("dstore_deletes_total"), 1u);
  EXPECT_EQ(m.counter_value("dstore_put_failures_total"), 0u);
#if !defined(DSTORE_METRICS_DISABLED)
  // Substrate callbacks mirror pool/device/engine activity.
  EXPECT_GT(m.counter_value("pmem_flushes_total"), 0u);
  EXPECT_GT(m.counter_value("pmem_fences_total"), 0u);
  EXPECT_GT(m.counter_value("ssd_bytes_written_total"), 0u);
  EXPECT_EQ(m.counter_value("dipper_records_committed_total"), 21u);  // 20 puts + 1 delete
  EXPECT_EQ(m.value("dstore_active_ops"), 0);
#endif
}

#if !defined(DSTORE_METRICS_DISABLED)

TEST(MetricsE2E, CrashRecoveryReconciles) {
  MetricsRig rig;
  rig.build(pmem::Pool::Mode::kDirect);
  std::string v(2048, 'r');
  constexpr int kOps = 30;
  for (int i = 0; i < kOps; i++) {
    ASSERT_TRUE(rig.store->oput(rig.ctx, "c" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  auto& pre = rig.store->metrics();
  uint64_t appended = pre.counter_value("dipper_records_appended_total");
  uint64_t committed = pre.counter_value("dipper_records_committed_total");
  EXPECT_EQ(appended, (uint64_t)kOps);
  EXPECT_EQ(committed, (uint64_t)kOps);
  // All traces closed before the "crash": the in-flight gauge must be 0,
  // or a span leaked.
  EXPECT_EQ(pre.value("dstore_active_ops"), 0);

  // SIGKILL-equivalent: drop all DRAM state, keep PMEM + SSD, recover.
  rig.store->ds_finalize(rig.ctx);
  rig.store.reset();
  auto r = DStore::recover(rig.pool.get(), rig.device.get(), rig.cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  rig.store = std::move(r).value();
  rig.ctx = rig.store->ds_init();

  // Reconciliation: with no checkpoint taken, recovery replays exactly the
  // records that committed before the crash.
  auto& post = rig.store->metrics();
  EXPECT_EQ(post.counter_value("dipper_records_replayed_total"), committed);
  EXPECT_EQ(post.value("dstore_active_ops"), 0);
  // The recovered registry is fresh: op counters restart from zero.
  EXPECT_EQ(post.counter_value("dstore_puts_total"), 0u);

  // And the data is all there.
  std::string out(2048, 0);
  for (int i = 0; i < kOps; i++) {
    auto g = rig.store->oget(rig.ctx, "c" + std::to_string(i), out.data(), out.size());
    ASSERT_TRUE(g.is_ok()) << i;
    EXPECT_EQ(out, v);
  }
}

TEST(MetricsE2E, ScrapeVersusResetSemantics) {
  MetricsRig rig;
  rig.build();
  std::string v(1024, 's');
  ASSERT_TRUE(rig.store->oput(rig.ctx, "a", v.data(), v.size()).is_ok());
  auto& m = rig.store->metrics();
  EXPECT_EQ(m.counter_value("dstore_puts_total"), 1u);
  uint64_t flushes = m.counter_value("pmem_flushes_total");
  EXPECT_GT(flushes, 0u);
  m.reset();
  // Owned op counters zeroed; substrate callbacks still mirror the pool.
  EXPECT_EQ(m.counter_value("dstore_puts_total"), 0u);
  EXPECT_GE(m.counter_value("pmem_flushes_total"), flushes);
  ASSERT_TRUE(rig.store->oput(rig.ctx, "b", v.data(), v.size()).is_ok());
  EXPECT_EQ(m.counter_value("dstore_puts_total"), 1u);
}

#endif  // !DSTORE_METRICS_DISABLED

}  // namespace
}  // namespace dstore
