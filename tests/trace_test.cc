// Tests for trace recording/replay: round trip, corruption detection,
// tracing decorator, per-key order preservation, replay against DStore.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>

#include "baselines/dstore_adapter.h"
#include "workload/trace.h"
#include "workload/ycsb.h"

namespace dstore::workload {
namespace {

std::string temp_trace(const char* tag) {
  return (std::filesystem::temp_directory_path() / (std::string("dstore_trace_") + tag)).string();
}

TEST(Trace, WriteReadRoundTrip) {
  std::string path = temp_trace("roundtrip");
  {
    auto w = TraceWriter::create(path);
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE(w.value()->append(TraceOp::kPut, "alpha", 4096).is_ok());
    ASSERT_TRUE(w.value()->append(TraceOp::kGet, "alpha", 0).is_ok());
    ASSERT_TRUE(w.value()->append(TraceOp::kDelete, "alpha", 0).is_ok());
    EXPECT_EQ(w.value()->count(), 3u);
    ASSERT_TRUE(w.value()->finish().is_ok());
  }
  auto r = read_trace(path);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_EQ(r.value()[0].op, TraceOp::kPut);
  EXPECT_EQ(r.value()[0].key, "alpha");
  EXPECT_EQ(r.value()[0].value_size, 4096u);
  EXPECT_EQ(r.value()[1].op, TraceOp::kGet);
  EXPECT_EQ(r.value()[2].op, TraceOp::kDelete);
  std::filesystem::remove(path);
}

TEST(Trace, RejectsGarbageFile) {
  std::string path = temp_trace("garbage");
  {
    FILE* f = fopen(path.c_str(), "wb");
    fwrite("not a trace at all", 1, 18, f);
    fclose(f);
  }
  auto r = read_trace(path);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kCorruption);
  std::filesystem::remove(path);
}

TEST(Trace, MissingFileFails) {
  auto r = read_trace("/nonexistent/trace.bin");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kIoError);
}

TEST(Trace, TracingStoreRecordsWorkload) {
  std::string path = temp_trace("decorator");
  auto cfg = baselines::DStoreAdapter::dipper_variant();
  cfg.max_objects = 1024;
  cfg.num_blocks = 4096;
  cfg.log_slots = 2048;
  auto inner = baselines::DStoreAdapter::make(cfg, LatencyModel::none());
  ASSERT_TRUE(inner.is_ok());
  {
    auto w = TraceWriter::create(path);
    ASSERT_TRUE(w.is_ok());
    TracingStore traced(inner.value().get(), w.value().get());
    WorkloadSpec spec = WorkloadSpec::ycsb_a();
    spec.num_objects = 100;
    spec.value_size = 512;
    spec.threads = 2;
    spec.ops_per_thread = 500;
    ASSERT_TRUE(load_objects(traced, spec).is_ok());
    auto run = run_workload(traced, spec);
    EXPECT_EQ(run.failed_ops, 0u);
    ASSERT_TRUE(w.value()->finish().is_ok());
    EXPECT_EQ(w.value()->count(), 100u + 1000u);  // load + run ops
  }
  auto trace = read_trace(path);
  ASSERT_TRUE(trace.is_ok());
  EXPECT_EQ(trace.value().size(), 1100u);
  std::filesystem::remove(path);
}

TEST(Trace, ReplayReproducesFinalState) {
  // Record a churn workload against store A; replay the trace against a
  // fresh store B; both must hold the same object set and sizes.
  std::string path = temp_trace("replay");
  auto cfg = baselines::DStoreAdapter::dipper_variant();
  cfg.max_objects = 512;
  cfg.num_blocks = 4096;
  cfg.log_slots = 4096;
  auto a = baselines::DStoreAdapter::make(cfg, LatencyModel::none());
  auto b = baselines::DStoreAdapter::make(cfg, LatencyModel::none());
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  {
    auto w = TraceWriter::create(path);
    ASSERT_TRUE(w.is_ok());
    TracingStore traced(a.value().get(), w.value().get());
    void* ctx = traced.open_ctx();
    Rng rng(3);
    std::string v(2048, 'r');
    for (int i = 0; i < 600; i++) {
      std::string key = "rp" + std::to_string(rng.next_below(80));
      if (rng.next_bool(0.7)) {
        size_t size = 1 + rng.next_below(2048);
        ASSERT_TRUE(traced.put(ctx, key, v.data(), size).is_ok());
      } else {
        Status s = traced.del(ctx, key);
        ASSERT_TRUE(s.is_ok() || s.code() == Code::kNotFound);
      }
    }
    traced.close_ctx(ctx);
    ASSERT_TRUE(w.value()->finish().is_ok());
  }
  auto trace = read_trace(path);
  ASSERT_TRUE(trace.is_ok());
  auto replay = replay_trace(*b.value(), trace.value(), 3);
  ASSERT_TRUE(replay.is_ok());
  EXPECT_EQ(replay.value().failures, 0u);
  EXPECT_EQ(replay.value().ops, trace.value().size());
  // Final object sets must match exactly (sizes included).
  std::map<std::string, uint64_t> set_a, set_b;
  a.value()->store().list([&](std::string_view n, uint64_t s) {
    set_a[std::string(n)] = s;
    return true;
  });
  b.value()->store().list([&](std::string_view n, uint64_t s) {
    set_b[std::string(n)] = s;
    return true;
  });
  EXPECT_EQ(set_a, set_b);
  std::filesystem::remove(path);
}

TEST(Trace, ReplayThreadValidation) {
  std::vector<TraceRecord> empty;
  auto cfg = baselines::DStoreAdapter::dipper_variant();
  cfg.max_objects = 64;
  cfg.num_blocks = 256;
  auto s = baselines::DStoreAdapter::make(cfg, LatencyModel::none());
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(replay_trace(*s.value(), empty, 0).status().code(), Code::kInvalidArgument);
  auto ok = replay_trace(*s.value(), empty, 2);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value().ops, 0u);
}

}  // namespace
}  // namespace dstore::workload
