// Integration tests: the YCSB harness driving real DStore through the
// adapter, concurrent writers followed by crashes, lock semantics across
// crashes, and end-to-end space accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "baselines/dstore_adapter.h"
#include "common/rng.h"
#include "workload/ycsb.h"

namespace dstore {
namespace {

using baselines::DStoreAdapter;
using baselines::DStoreVariantConfig;

std::unique_ptr<DStoreAdapter> small_adapter(bool background = true) {
  DStoreVariantConfig cfg = DStoreAdapter::dipper_variant();
  cfg.max_objects = 2048;
  cfg.num_blocks = 8192;
  cfg.log_slots = 512;
  cfg.background_checkpointing = background;
  auto r = DStoreAdapter::make(cfg, LatencyModel::none());
  EXPECT_TRUE(r.is_ok());
  return std::move(r).value();
}

TEST(Integration, YcsbOverDStoreNoFailures) {
  auto store = small_adapter();
  workload::WorkloadSpec spec = workload::WorkloadSpec::ycsb_a();
  spec.num_objects = 500;
  spec.value_size = 4096;
  spec.threads = 3;
  spec.ops_per_thread = 1000;
  ASSERT_TRUE(workload::load_objects(*store, spec).is_ok());
  auto r = workload::run_workload(*store, spec);
  EXPECT_EQ(r.failed_ops, 0u);
  EXPECT_EQ(r.total_ops, 3000u);
  store->store().engine().stop_background();
  EXPECT_TRUE(store->store().validate().is_ok());
}

TEST(Integration, YcsbThenCrashPreservesKeyspace) {
  auto store = small_adapter();
  workload::WorkloadSpec spec = workload::WorkloadSpec::ycsb_b();
  spec.num_objects = 400;
  spec.value_size = 2048;
  spec.threads = 2;
  spec.ops_per_thread = 800;
  ASSERT_TRUE(workload::load_objects(*store, spec).is_ok());
  (void)workload::run_workload(*store, spec);
  auto t = store->crash_and_recover();
  ASSERT_TRUE(t.is_ok()) << t.status().to_string();
  // Every preloaded key must still exist (the workload only overwrites).
  void* ctx = store->open_ctx();
  std::string buf(2048, 0);
  for (uint64_t i = 0; i < spec.num_objects; i++) {
    auto r = store->get(ctx, workload::ycsb_key(i), buf.data(), buf.size());
    ASSERT_TRUE(r.is_ok()) << i;
    EXPECT_EQ(r.value(), 2048u);
  }
  store->close_ctx(ctx);
  EXPECT_TRUE(store->store().validate().is_ok());
}

TEST(Integration, ConcurrentWritersAcksSurviveCrash) {
  // 4 writers over disjoint keyspaces record exactly what they were acked;
  // after quiesce + power failure, every acked write must be intact.
  auto store = small_adapter();
  constexpr int kThreads = 4;
  constexpr int kOps = 250;
  std::mutex acked_mu;
  std::map<std::string, uint32_t> acked;  // name -> last acked version
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; w++) {
    threads.emplace_back([&, w] {
      ds_ctx_t* ctx = store->store().ds_init();
      Rng rng(w + 100);
      char value[4096];
      for (int i = 0; i < kOps; i++) {
        std::string name = "w" + std::to_string(w) + "-" + std::to_string(rng.next_below(40));
        uint32_t version = (uint32_t)i;
        std::memcpy(value, &version, sizeof(version));
        std::memset(value + 4, 'a' + w, sizeof(value) - 4);
        if (store->store().oput(ctx, name, value, sizeof(value)).is_ok()) {
          std::lock_guard<std::mutex> g(acked_mu);
          acked[name] = version;
        }
      }
      store->store().ds_finalize(ctx);
    });
  }
  for (auto& t : threads) t.join();
  auto t = store->crash_and_recover();
  ASSERT_TRUE(t.is_ok());
  void* ctx = store->open_ctx();
  std::string buf(4096, 0);
  for (const auto& [name, version] : acked) {
    auto r = store->get(ctx, name, buf.data(), buf.size());
    ASSERT_TRUE(r.is_ok()) << name;
    uint32_t got;
    std::memcpy(&got, buf.data(), sizeof(got));
    // The recovered version must be the acked one (writers are serialized
    // per object, and each object belongs to exactly one writer here, so
    // versions are monotone — the last ack wins).
    EXPECT_EQ(got, version) << name;
  }
  store->close_ctx(ctx);
  EXPECT_TRUE(store->store().validate().is_ok());
}

TEST(Integration, LocksDoNotLeakAcrossCrash) {
  auto store = small_adapter(/*background=*/false);
  void* vctx = store->open_ctx();
  auto* ctx = static_cast<ds_ctx_t*>(vctx);
  ASSERT_TRUE(store->store().olock(ctx, "locked-object").is_ok());
  char v[128] = {};
  ASSERT_TRUE(store->store().oput(ctx, "locked-object", v, sizeof(v)).is_ok());
  store->close_ctx(vctx);
  auto t = store->crash_and_recover();
  ASSERT_TRUE(t.is_ok());
  // The lock died with the process: a new context can lock and write.
  void* vctx2 = store->open_ctx();
  auto* ctx2 = static_cast<ds_ctx_t*>(vctx2);
  EXPECT_TRUE(store->store().olock(ctx2, "locked-object").is_ok());
  EXPECT_TRUE(store->store().oput(ctx2, "locked-object", v, sizeof(v)).is_ok());
  EXPECT_TRUE(store->store().ounlock(ctx2, "locked-object").is_ok());
  store->close_ctx(vctx2);
}

TEST(Integration, SpaceAccountingConsistentAfterChurnAndRecovery) {
  auto store = small_adapter();
  void* ctx = store->open_ctx();
  Rng rng(55);
  std::string v(4096, 'x');
  std::set<std::string> live;
  for (int i = 0; i < 1500; i++) {
    std::string name = "churn" + std::to_string(rng.next_below(200));
    if (rng.next_bool(0.7)) {
      ASSERT_TRUE(store->put(ctx, name, v.data(), v.size()).is_ok());
      live.insert(name);
    } else if (live.count(name)) {
      ASSERT_TRUE(store->del(ctx, name).is_ok());
      live.erase(name);
    }
  }
  store->close_ctx(ctx);
  auto t = store->crash_and_recover();
  ASSERT_TRUE(t.is_ok());
  EXPECT_EQ(store->store().object_count(), live.size());
  auto u = store->space_usage();
  EXPECT_EQ(u.ssd_bytes, live.size() * 4096);
  EXPECT_TRUE(store->store().validate().is_ok());
}

}  // namespace
}  // namespace dstore
