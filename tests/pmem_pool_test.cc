// Tests for the emulated PMEM pool: flush/fence semantics, crash
// simulation, spurious evictions, bulk persistence, stats.
#include <gtest/gtest.h>

#include <cstring>

#include <filesystem>

#include "common/rng.h"
#include "fault/fault.h"
#include "pmem/pool.h"

namespace dstore::pmem {
namespace {

TEST(PmemPool, DirectModeBasics) {
  Pool p(1 << 20, Pool::Mode::kDirect);
  ASSERT_NE(p.base(), nullptr);
  EXPECT_GE(p.size(), (size_t)1 << 20);
  std::memset(p.base(), 0xab, 128);
  p.persist(p.base(), 128);
  EXPECT_TRUE(p.is_persisted(p.base(), 128));  // trivially true in direct mode
}

TEST(PmemPool, UnflushedDataLostOnCrash) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0x55, 256);
  // No flush: a crash reverts to zeros.
  p.crash();
  for (int i = 0; i < 256; i++) EXPECT_EQ(base[i], 0) << "byte " << i;
}

TEST(PmemPool, FlushWithoutFenceNotDurable) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0x66, 64);
  p.flush(base, 64);
  // clwb issued but no sfence: staged lines must not be in the image yet.
  EXPECT_FALSE(p.is_persisted(base, 64));
  p.crash();
  EXPECT_EQ(base[0], 0);
}

TEST(PmemPool, PersistSurvivesCrash) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0x77, 300);
  p.persist(base, 300);
  std::memset(base + 4096, 0x11, 64);  // unflushed tail
  p.crash();
  for (int i = 0; i < 300; i++) EXPECT_EQ((unsigned char)base[i], 0x77u);
  EXPECT_EQ(base[4096], 0);
}

TEST(PmemPool, PersistIsCacheLineGranular) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0x22, 128);
  // Persisting byte 0 persists its whole line — and only its line.
  p.persist(base, 1);
  p.crash();
  EXPECT_EQ((unsigned char)base[0], 0x22u);
  EXPECT_EQ((unsigned char)base[63], 0x22u);
  EXPECT_EQ(base[64], 0);
}

TEST(PmemPool, PersistBulkSurvivesCrash) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0x33, 64 * 1024);
  p.persist_bulk(base, 64 * 1024);
  p.crash();
  EXPECT_EQ((unsigned char)base[0], 0x33u);
  EXPECT_EQ((unsigned char)base[64 * 1024 - 1], 0x33u);
}

TEST(PmemPool, SpuriousEvictionPersistsWrittenLines) {
  // The adversary: hardware may evict any written line before it is
  // explicitly flushed. Persistence protocols must stay correct anyway.
  Pool p(1 << 16, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0x44, p.size());
  Rng rng(9);
  p.evict_random_lines(rng, 10000);  // with 1024 lines, all get evicted whp
  p.crash();
  int persisted = 0;
  for (size_t i = 0; i < p.size(); i += 64) persisted += ((unsigned char)base[i] == 0x44u);
  EXPECT_GT(persisted, 900);  // nearly all lines were evicted-persisted
}

TEST(PmemPool, CrashIsRepeatable) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0x12, 64);
  p.persist(base, 64);
  std::memset(base, 0x99, 64);  // overwrite, unflushed
  p.crash();
  EXPECT_EQ((unsigned char)base[0], 0x12u);
  std::memset(base, 0xaa, 64);  // again unflushed
  p.crash();
  EXPECT_EQ((unsigned char)base[0], 0x12u);
}

TEST(PmemPool, StatsAccounting) {
  Pool p(1 << 20, Pool::Mode::kDirect);
  char* base = p.base();
  std::memset(base, 1, 64);
  p.persist(base, 64);
  EXPECT_EQ(p.stats().bytes_flushed.load(), 64u);
  EXPECT_EQ(p.stats().fences.load(), 1u);
  p.persist_bulk(base, 1024);
  EXPECT_EQ(p.stats().bytes_flushed.load(), 64u + 1024u);
  p.charge_read(4096);
  EXPECT_EQ(p.stats().bytes_read.load(), 4096u);
}

TEST(PmemPool, EmptyFenceIsCheap) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  p.fence();  // nothing staged — must not crash or account flushes
  EXPECT_EQ(p.stats().bytes_flushed.load(), 0u);
}

TEST(PmemPool, BandwidthSeriesHookCountsFlushes) {
  Pool p(1 << 20, Pool::Mode::kDirect);
  TimeSeries ts(4, 1000000000ull);
  p.set_bandwidth_series(&ts);
  std::memset(p.base(), 1, 4096);
  p.persist_bulk(p.base(), 4096);
  EXPECT_EQ(ts.bin(0), 4096u);
}

TEST(PmemPool, PartialLineOverwriteAfterPersist) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0xaa, 64);
  p.persist(base, 64);
  base[8] = 0x01;  // 8B-atomic store into a persisted line, unflushed
  p.crash();
  EXPECT_EQ((unsigned char)base[8], 0xaau);  // reverted
  EXPECT_EQ((unsigned char)base[0], 0xaau);
}

// ---- non-temporal store emulation (flush_nt / persist_nt) ----------------

TEST(PmemPoolNt, NtVisibilityOnlyAfterFence) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0x5e, 128);
  p.flush_nt(base, 128);
  // In the write-combining buffer, not yet fenced: a crash loses it.
  EXPECT_FALSE(p.is_persisted(base, 128));
  p.fence();
  EXPECT_TRUE(p.is_persisted(base, 128));
  std::memset(base + 4096, 0x5f, 64);
  p.flush_nt(base + 4096, 64);  // staged but never fenced
  p.crash();
  EXPECT_EQ((unsigned char)base[0], 0x5eu);
  EXPECT_EQ(base[4096], 0);
}

TEST(PmemPoolNt, PersistNtSurvivesCrashAndCountsNtLines) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0x6e, 256);
  p.persist_nt(base, 256);
  EXPECT_EQ(p.stats().lines_nt.load(), 4u);
  EXPECT_EQ(p.stats().lines_flushed.load(), 0u);  // nt lines never dirty the cache
  auto counts = p.thread_io_counts();
  EXPECT_EQ(counts.nt_lines, 4u);
  EXPECT_EQ(counts.flushes, 0u);
  EXPECT_EQ(counts.fences, 1u);
  p.crash();
  for (int i = 0; i < 256; i++) EXPECT_EQ((unsigned char)base[i], 0x6eu);
}

TEST(PmemPoolNt, MixedNtAndClwbTrainRetiredByOneFence) {
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  char* base = p.base();
  std::memset(base, 0x11, 128);
  std::memset(base + 512, 0x22, 64);
  p.flush_nt(base, 128);
  p.flush(base + 512, 64);
  p.fence();  // one ordering point retires both staged kinds
  EXPECT_EQ(p.stats().fences.load(), 1u);
  p.crash();
  EXPECT_EQ((unsigned char)base[0], 0x11u);
  EXPECT_EQ((unsigned char)base[127], 0x11u);
  EXPECT_EQ((unsigned char)base[512], 0x22u);
}

#if !defined(DSTORE_FAULT_INJECTION_DISABLED)
TEST(PmemPoolNt, TornNtWriteIsLineSnapped) {
  // An nt torn-write fault persists a line-snapped PREFIX of the range —
  // the WC buffer drains in line units, never a partial line (contrast
  // persist_bulk, whose tear is byte-granular).
  Pool p(1 << 20, Pool::Mode::kCrashSim);
  fault::FaultInjector inj;
  p.set_fault_injector(&inj);
  char* base = p.base();
  std::memset(base, 0x7a, 256);
  fault::FaultPlan plan;
  plan.add({"pmem.nt", 1, fault::FaultType::kTorn, /*arg=*/100, 1});
  inj.set_plan(plan);
  inj.arm();
  p.flush_nt(base, 256);  // tears: keep = 100 / 64 * 64 = 64 bytes
  EXPECT_TRUE(inj.crashed());
  p.crash();
  for (int i = 0; i < 64; i++) EXPECT_EQ((unsigned char)base[i], 0x7au) << i;
  for (int i = 64; i < 256; i++) EXPECT_EQ(base[i], 0) << i;
  p.set_fault_injector(nullptr);
}
#endif  // !DSTORE_FAULT_INJECTION_DISABLED

TEST(PmemPoolNt, DirectModeNtChargesStatsOnly) {
  Pool p(1 << 20, Pool::Mode::kDirect);
  char* base = p.base();
  std::memset(base, 0x3c, 192);
  p.persist_nt(base, 192);
  EXPECT_EQ(p.stats().lines_nt.load(), 3u);
  EXPECT_EQ(p.stats().bytes_flushed.load(), 192u);
  EXPECT_EQ(p.stats().fences.load(), 1u);
  EXPECT_TRUE(p.is_persisted(base, 192));  // trivially true in direct mode
}

TEST(PmemPool, FileBackedPersistsAcrossReopen) {
  auto path = std::filesystem::temp_directory_path() / "dstore_pmem_pool_test.img";
  {
    auto pool = Pool::open_file(path.string(), 1 << 20, dstore::LatencyModel::none(), true);
    ASSERT_TRUE(pool.is_ok()) << pool.status().to_string();
    std::memset(pool.value()->base(), 0x6b, 4096);
    pool.value()->persist(pool.value()->base(), 4096);
  }
  {
    auto pool = Pool::open_file(path.string(), 1 << 20, dstore::LatencyModel::none(), false);
    ASSERT_TRUE(pool.is_ok());
    for (int i = 0; i < 4096; i++) {
      ASSERT_EQ((unsigned char)pool.value()->base()[i], 0x6bu) << i;
    }
  }
  std::filesystem::remove(path);
}

// Multi-cycle round-trip: each reopen writes a fresh seeded region via the
// staged flush+fence path (not just persist()) and re-verifies every region
// written by earlier incarnations, so persistence must compose across an
// arbitrary number of close/open cycles.
TEST(PmemPool, FileBackedReopenRoundTripMultiCycle) {
  constexpr int kCycles = 4;
  constexpr size_t kRegion = 16 << 10;
  auto path = std::filesystem::temp_directory_path() / "dstore_pmem_cycle_test.img";
  std::filesystem::remove(path);
  for (int cycle = 0; cycle < kCycles; cycle++) {
    auto pool = Pool::open_file(path.string(), 1 << 20, dstore::LatencyModel::none(),
                                /*create=*/cycle == 0);
    ASSERT_TRUE(pool.is_ok()) << pool.status().to_string();
    char* base = pool.value()->base();
    for (int prev = 0; prev < cycle; prev++) {
      for (size_t i = 0; i < kRegion; i++) {
        ASSERT_EQ((unsigned char)base[prev * kRegion + i],
                  (unsigned char)(0x10 + prev + (i & 0x3f)))
            << "cycle " << cycle << " region " << prev << " byte " << i;
      }
    }
    char* mine = base + (size_t)cycle * kRegion;
    for (size_t i = 0; i < kRegion; i++) mine[i] = (char)(0x10 + cycle + (i & 0x3f));
    pool.value()->flush(mine, kRegion);
    pool.value()->fence();
  }
  // Untouched tail stays zero across all cycles (create zero-fills once).
  {
    auto pool = Pool::open_file(path.string(), 1 << 20, dstore::LatencyModel::none(), false);
    ASSERT_TRUE(pool.is_ok());
    const char* tail = pool.value()->base() + (size_t)kCycles * kRegion;
    for (size_t i = 0; i < kRegion; i++) ASSERT_EQ(tail[i], 0) << i;
  }
  std::filesystem::remove(path);
}

TEST(PmemPool, FileBackedOpenMissingFails) {
  auto pool = Pool::open_file("/nonexistent-dir/pool.img", 1 << 20,
                              dstore::LatencyModel::none(), false);
  ASSERT_FALSE(pool.is_ok());
  EXPECT_EQ(pool.status().code(), dstore::Code::kIoError);
}

TEST(PmemPool, FileBackedCreateTruncates) {
  auto path = std::filesystem::temp_directory_path() / "dstore_pmem_trunc_test.img";
  {
    auto pool = Pool::open_file(path.string(), 1 << 20, dstore::LatencyModel::none(), true);
    ASSERT_TRUE(pool.is_ok());
    std::memset(pool.value()->base(), 0xff, 64);
    pool.value()->persist(pool.value()->base(), 64);
  }
  {
    // create=true zeroes the previous contents.
    auto pool = Pool::open_file(path.string(), 1 << 20, dstore::LatencyModel::none(), true);
    ASSERT_TRUE(pool.is_ok());
    EXPECT_EQ(pool.value()->base()[0], 0);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dstore::pmem
