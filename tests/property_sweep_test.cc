// Seed-parameterized property sweeps: each seed drives an independent
// random interleaving of operations, checkpoints, adversarial cache-line
// evictions, and crashes. Together with the per-phase crash tests these
// explore the protocol state space far beyond any hand-written scenario.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "dstore/dstore.h"

namespace dstore {
namespace {

struct SweepRig {
  DStoreConfig cfg;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<ssd::RamBlockDevice> device;
  std::unique_ptr<DStore> store;
  ds_ctx_t* ctx = nullptr;

  explicit SweepRig(dipper::EngineConfig::CkptMode mode, uint64_t seed) {
    cfg.max_objects = 128;
    cfg.num_blocks = 1024;
    cfg.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(cfg.max_objects);
    cfg.engine.log_slots = 48;  // small: checkpoints happen constantly
    cfg.engine.background_checkpointing = false;
    cfg.engine.ckpt_mode = mode;
    // Vary parallel replay by seed so both replay paths see every seed's
    // traffic shape over the sweep.
    cfg.parallel_replay = (seed % 2) == 0;
    pool = std::make_unique<pmem::Pool>(dipper::Engine::required_pool_bytes(cfg.engine),
                                        pmem::Pool::Mode::kCrashSim);
    ssd::DeviceConfig dc;
    dc.num_blocks = cfg.num_blocks;
    device = std::make_unique<ssd::RamBlockDevice>(dc);
    auto r = DStore::create(pool.get(), device.get(), cfg);
    EXPECT_TRUE(r.is_ok());
    store = std::move(r).value();
    ctx = store->ds_init();
  }

  ~SweepRig() {
    if (ctx != nullptr && store) store->ds_finalize(ctx);
  }

  void crash_and_recover() {
    if (ctx != nullptr) store->ds_finalize(ctx);
    ctx = nullptr;
    store->engine().stop_background();
    store.reset();
    pool->crash();
    device->crash();
    auto r = DStore::recover(pool.get(), device.get(), cfg);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    ctx = store->ds_init();
  }
};

using Model = std::map<std::string, std::pair<char, size_t>>;

void run_sweep(dipper::EngineConfig::CkptMode mode, uint64_t seed) {
  SweepRig rig(mode, seed);
  Rng rng(seed);
  Model model;
  const char* points[] = {"ckpt:after_swap", "ckpt:after_drain", "ckpt:after_replay",
                          "ckpt:after_install", "ckpt:cow_mid_copy"};
  for (int round = 0; round < 10; round++) {
    for (int i = 0; i < 25; i++) {
      if (rig.store->engine().log_fill() > 0.7) {
        ASSERT_TRUE(rig.store->checkpoint_now().is_ok());
      }
      std::string name = "s" + std::to_string(rng.next_below(40));
      double dice = rng.next_double();
      if (dice < 0.55 || model.count(name) == 0) {
        char fill = (char)('a' + rng.next_below(26));
        size_t size = 1 + rng.next_below(9000);
        std::string v(size, fill);
        Status st = rig.store->oput(rig.ctx, name, v.data(), v.size());
        if (st.code() == Code::kOutOfSpace) continue;
        ASSERT_TRUE(st.is_ok()) << st.to_string();
        model[name] = {fill, size};
      } else if (dice < 0.8) {
        ASSERT_TRUE(rig.store->odelete(rig.ctx, name).is_ok());
        model.erase(name);
      } else {
        // Extend via the filesystem API: logged kWrite records interleave
        // with puts/deletes in the same log.
        auto obj = rig.store->oopen(rig.ctx, name, 0, kRead | kWrite);
        if (obj.is_ok()) {
          auto& mv = model[name];
          std::string patch(1 + rng.next_below(2000), mv.first);
          uint64_t off = mv.second;  // append
          auto w = rig.store->owrite(obj.value(), patch.data(), patch.size(), off);
          if (w.is_ok()) mv.second += patch.size();
          rig.store->oclose(obj.value());
        }
      }
      if (rng.next_bool(0.1)) rig.pool->evict_random_lines(rng, 24);
    }
    // Sometimes die inside a checkpoint first.
    if (rng.next_bool(0.4)) {
      const char* pt = points[rng.next_below(5)];
      (void)rig.store->engine().checkpoint_abandon_at(pt);
    }
    rig.crash_and_recover();
    ASSERT_TRUE(rig.store->validate().is_ok()) << "seed " << seed << " round " << round;
    ASSERT_EQ(rig.store->object_count(), model.size()) << "seed " << seed;
    std::string out;
    for (const auto& [name, sv] : model) {
      out.assign(sv.second, 0);
      auto r = rig.store->oget(rig.ctx, name, out.data(), out.size());
      ASSERT_TRUE(r.is_ok()) << name << " seed " << seed;
      ASSERT_EQ(r.value(), sv.second) << name;
      ASSERT_EQ(out[0], sv.first) << name;
      ASSERT_EQ(out[sv.second - 1], sv.first) << name;
    }
  }
}

class CrashSweepDipper : public ::testing::TestWithParam<uint64_t> {};
TEST_P(CrashSweepDipper, AckedStateAlwaysRecovered) {
  run_sweep(dipper::EngineConfig::CkptMode::kDipper, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, CrashSweepDipper,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class CrashSweepCow : public ::testing::TestWithParam<uint64_t> {};
TEST_P(CrashSweepCow, AckedStateAlwaysRecovered) {
  run_sweep(dipper::EngineConfig::CkptMode::kCow, GetParam());
}
INSTANTIATE_TEST_SUITE_P(Seeds, CrashSweepCow, ::testing::Values(4, 6, 9, 14, 22, 35));

}  // namespace
}  // namespace dstore
