// Tests for the DStore public API (Table 2): key-value and filesystem
// styles, concurrency control, capacity limits, introspection, and
// multi-threaded operation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dstore/dstore.h"

namespace dstore {
namespace {

struct TestStore {
  DStoreConfig cfg;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<ssd::RamBlockDevice> device;
  std::unique_ptr<DStore> store;
  ds_ctx_t* ctx = nullptr;

  explicit TestStore(bool background_ckpt = false, uint32_t log_slots = 512,
                     uint64_t max_objects = 1024, uint64_t num_blocks = 4096,
                     bool early_ack = false) {
    cfg.max_objects = max_objects;
    cfg.num_blocks = num_blocks;
    cfg.early_ack = early_ack;
    cfg.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(max_objects);
    cfg.engine.log_slots = log_slots;
    cfg.engine.background_checkpointing = background_ckpt;
    pool = std::make_unique<pmem::Pool>(dipper::Engine::required_pool_bytes(cfg.engine),
                                        pmem::Pool::Mode::kCrashSim);
    ssd::DeviceConfig dc;
    dc.num_blocks = num_blocks;
    device = std::make_unique<ssd::RamBlockDevice>(dc);
    auto r = DStore::create(pool.get(), device.get(), cfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    ctx = store->ds_init();
  }

  ~TestStore() {
    if (store && ctx != nullptr) store->ds_finalize(ctx);
  }

  void crash_and_recover() {
    store->engine().stop_background();
    store.reset();  // destroys engine threads
    // Process death reclaims the context without draining it — parked
    // early-ack queues are dropped mid-flight, which is the point.
    delete ctx;
    ctx = nullptr;
    pool->crash();
    device->crash();
    auto r = DStore::recover(pool.get(), device.get(), cfg);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    ctx = store->ds_init();
  }
};

std::string value_of(size_t size, char seed) { return std::string(size, seed); }

TEST(DStoreApi, PutGetRoundTrip) {
  TestStore t;
  std::string v = value_of(4096, 'a');
  ASSERT_TRUE(t.store->oput(t.ctx, "obj1", v.data(), v.size()).is_ok());
  std::string out(4096, 0);
  auto r = t.store->oget(t.ctx, "obj1", out.data(), out.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 4096u);
  EXPECT_EQ(out, v);
}

TEST(DStoreApi, GetMissingReturnsNotFound) {
  TestStore t;
  char buf[16];
  auto r = t.store->oget(t.ctx, "ghost", buf, sizeof(buf));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
}

TEST(DStoreApi, OverwriteReplacesValue) {
  TestStore t;
  std::string v1 = value_of(4096, 'x');
  std::string v2 = value_of(8192, 'y');
  ASSERT_TRUE(t.store->oput(t.ctx, "obj", v1.data(), v1.size()).is_ok());
  ASSERT_TRUE(t.store->oput(t.ctx, "obj", v2.data(), v2.size()).is_ok());
  std::string out(8192, 0);
  auto r = t.store->oget(t.ctx, "obj", out.data(), out.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 8192u);
  EXPECT_EQ(out, v2);
  EXPECT_TRUE(t.store->validate().is_ok());
}

TEST(DStoreApi, ShrinkingOverwriteFreesBlocks) {
  TestStore t;
  std::string big = value_of(16384, 'b');
  std::string small = value_of(100, 's');
  ASSERT_TRUE(t.store->oput(t.ctx, "obj", big.data(), big.size()).is_ok());
  uint64_t ssd_after_big = t.store->space_usage().ssd_bytes;
  ASSERT_TRUE(t.store->oput(t.ctx, "obj", small.data(), small.size()).is_ok());
  EXPECT_LT(t.store->space_usage().ssd_bytes, ssd_after_big);
  EXPECT_TRUE(t.store->validate().is_ok());
}

TEST(DStoreApi, DeleteRemovesAndFrees) {
  TestStore t;
  std::string v = value_of(4096, 'd');
  ASSERT_TRUE(t.store->oput(t.ctx, "gone", v.data(), v.size()).is_ok());
  ASSERT_TRUE(t.store->odelete(t.ctx, "gone").is_ok());
  char buf[8];
  EXPECT_EQ(t.store->oget(t.ctx, "gone", buf, sizeof(buf)).status().code(), Code::kNotFound);
  EXPECT_EQ(t.store->odelete(t.ctx, "gone").code(), Code::kNotFound);
  EXPECT_EQ(t.store->object_count(), 0u);
  EXPECT_EQ(t.store->space_usage().ssd_bytes, 0u);
  EXPECT_TRUE(t.store->validate().is_ok());
}

TEST(DStoreApi, EmptyValueSupported) {
  TestStore t;
  ASSERT_TRUE(t.store->oput(t.ctx, "empty", nullptr, 0).is_ok());
  char buf[8];
  auto r = t.store->oget(t.ctx, "empty", buf, sizeof(buf));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 0u);
}

TEST(DStoreApi, SmallBufferGetsTruncatedCopyFullSize) {
  TestStore t;
  std::string v = value_of(4096, 'z');
  ASSERT_TRUE(t.store->oput(t.ctx, "obj", v.data(), v.size()).is_ok());
  char buf[128];
  auto r = t.store->oget(t.ctx, "obj", buf, sizeof(buf));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 4096u);  // true size reported
  EXPECT_EQ(std::memcmp(buf, v.data(), sizeof(buf)), 0);
}

std::string flatten(const DStore::ReadView& view) {
  std::string out;
  for (const auto& p : view.pieces()) {
    out.append(static_cast<const char*>(p.data), p.len);
  }
  return out;
}

TEST(DStoreZeroCopy, GetReturnsExactBytesWithoutCopy) {
  TestStore t;
  // 3.5 blocks, so the view spans multiple pieces unless runs coalesce.
  std::string v = value_of(14336, 'q');
  v[0] = 'A';
  v[14335] = 'Z';
  ASSERT_TRUE(t.store->oput(t.ctx, "obj", v.data(), v.size()).is_ok());
  auto r = t.store->oget_zc(t.ctx, "obj");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  DStore::ReadView view = std::move(r).value();
  EXPECT_EQ(view.size(), v.size());
  EXPECT_EQ(flatten(view), v);
  // The pieces alias device memory — nothing was copied into a test buffer.
  ASSERT_FALSE(view.pieces().empty());
  const char* media_begin = static_cast<const char*>(t.device->direct_read_map(0));
  const char* media_end = media_begin + t.device->config().capacity();
  for (const auto& p : view.pieces()) {
    const char* d = static_cast<const char*>(p.data);
    EXPECT_TRUE(d >= media_begin && d + p.len <= media_end);
  }
}

TEST(DStoreZeroCopy, EmptyAndMissingObjects) {
  TestStore t;
  ASSERT_TRUE(t.store->oput(t.ctx, "empty", nullptr, 0).is_ok());
  auto r = t.store->oget_zc(t.ctx, "empty");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().size(), 0u);
  EXPECT_TRUE(r.value().pieces().empty());
  EXPECT_EQ(t.store->oget_zc(t.ctx, "ghost").status().code(), Code::kNotFound);
}

TEST(DStoreZeroCopy, ViewPinsObjectAgainstWriters) {
  TestStore t;
  std::string v1 = value_of(4096, '1');
  std::string v2 = value_of(4096, '2');
  ASSERT_TRUE(t.store->oput(t.ctx, "pinned", v1.data(), v1.size()).is_ok());
  std::atomic<bool> wrote{false};
  std::thread writer;
  {
    auto r = t.store->oget_zc(t.ctx, "pinned");
    ASSERT_TRUE(r.is_ok());
    DStore::ReadView view = std::move(r).value();
    writer = std::thread([&] {
      ds_ctx_t* ctx2 = t.store->ds_init();
      ASSERT_TRUE(t.store->oput(ctx2, "pinned", v2.data(), v2.size()).is_ok());
      wrote.store(true, std::memory_order_release);
      t.store->ds_finalize(ctx2);
    });
    // The writer must wait for the view's read exclusion: the mapped bytes
    // stay the old value for the entire time we hold the pin.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(wrote.load(std::memory_order_acquire));
    EXPECT_EQ(flatten(view), v1);
  }
  writer.join();
  EXPECT_TRUE(wrote.load(std::memory_order_acquire));
  std::string out(4096, 0);
  ASSERT_TRUE(t.store->oget(t.ctx, "pinned", out.data(), out.size()).is_ok());
  EXPECT_EQ(out, v2);
}

TEST(DStoreZeroCopy, UnsupportedWithoutDirectMapping) {
  // A !PLP device dual-buffers its cache under a lock — no stable pointer
  // exists, so zero-copy must refuse and the caller falls back to oget().
  DStoreConfig cfg;
  cfg.max_objects = 64;
  cfg.num_blocks = 256;
  cfg.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(64);
  cfg.engine.log_slots = 64;
  pmem::Pool pool(dipper::Engine::required_pool_bytes(cfg.engine), pmem::Pool::Mode::kCrashSim);
  ssd::DeviceConfig dc;
  dc.num_blocks = 256;
  dc.power_loss_protection = false;
  ssd::RamBlockDevice device(dc);
  auto r = DStore::create(&pool, &device, cfg);
  ASSERT_TRUE(r.is_ok());
  auto store = std::move(r).value();
  ds_ctx_t* ctx = store->ds_init();
  std::string v = value_of(4096, 'n');
  ASSERT_TRUE(store->oput(ctx, "obj", v.data(), v.size()).is_ok());
  EXPECT_EQ(store->oget_zc(ctx, "obj").status().code(), Code::kUnsupported);
  // The copying path still works.
  std::string out(4096, 0);
  ASSERT_TRUE(store->oget(ctx, "obj", out.data(), out.size()).is_ok());
  EXPECT_EQ(out, v);
  store->ds_finalize(ctx);
}

TEST(DStoreZeroCopy, DetectsSilentMediaCorruption) {
  TestStore t;
  std::string v = value_of(4096, 'c');
  ASSERT_TRUE(t.store->oput(t.ctx, "obj", v.data(), v.size()).is_ok());
  {
    auto ok = t.store->oget_zc(t.ctx, "obj");
    ASSERT_TRUE(ok.is_ok());
  }
  // Rot a bit of the object's first page behind the sidecar's back; the
  // mapped read must fail its checksum, never serve silently wrong bytes.
  uint64_t pos = 0;
  {
    auto r0 = t.store->oget_zc(t.ctx, "obj");
    ASSERT_TRUE(r0.is_ok());
    pos = (uint64_t)(static_cast<const char*>(r0.value().pieces().front().data) -
                     static_cast<const char*>(t.device->direct_read_map(0)));
  }  // view (and its pin) dropped before mutating media
  t.device->flip_media_bit(pos + 100, 3);
  auto r = t.store->oget_zc(t.ctx, "obj");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kCorruption);
}

TEST(DStoreEarlyAck, PutsRoundTripAndSourceBufferIsFreeAfterAck) {
  TestStore t(false, 512, 1024, 4096, /*early_ack=*/true);
  for (int i = 0; i < 32; i++) {
    std::string v = value_of(8192, (char)('a' + i % 26));
    std::string name = "obj" + std::to_string(i);
    ASSERT_TRUE(t.store->oput(t.ctx, name, v.data(), v.size()).is_ok());
    // The ack transfers nothing to the background: scribbling over the
    // source buffer now must not affect the stored value.
    std::memset(v.data(), 0, v.size());
  }
  for (int i = 0; i < 32; i++) {
    std::string want = value_of(8192, (char)('a' + i % 26));
    std::string out(8192, 0);
    auto r = t.store->oget(t.ctx, "obj" + std::to_string(i), out.data(), out.size());
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(out, want);
  }
  EXPECT_TRUE(t.store->validate().is_ok());
}

TEST(DStoreEarlyAck, AckedPutsSurviveCrash) {
  TestStore t(false, 512, 1024, 4096, /*early_ack=*/true);
  std::string v = value_of(12288, 'k');
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(
        t.store->oput(t.ctx, "crashkey" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  // Crash immediately — parked queues still spinning out emulated latency.
  // Acknowledged == durable under PLP: everything must recover.
  t.crash_and_recover();
  for (int i = 0; i < 8; i++) {
    std::string out(12288, 0);
    auto r = t.store->oget(t.ctx, "crashkey" + std::to_string(i), out.data(), out.size());
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(t.store->validate().is_ok());
}

TEST(DStoreApi, NameTooLongRejected) {
  TestStore t;
  std::string long_name(kMaxNameLen + 1, 'n');
  char buf[8] = {};
  EXPECT_EQ(t.store->oput(t.ctx, long_name, buf, 8).code(), Code::kInvalidArgument);
  EXPECT_EQ(t.store->oget(t.ctx, long_name, buf, 8).status().code(), Code::kInvalidArgument);
}

TEST(DStoreApi, ValuesOfManySizes) {
  TestStore t;
  Rng rng(3);
  for (int i = 0; i < 50; i++) {
    size_t size = 1 + rng.next_below(20000);
    std::string v((size_t)size, (char)('a' + i % 26));
    std::string name = "sz" + std::to_string(i);
    ASSERT_TRUE(t.store->oput(t.ctx, name, v.data(), v.size()).is_ok()) << i;
    std::string out(size, 0);
    auto r = t.store->oget(t.ctx, name, out.data(), out.size());
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(), size);
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(t.store->validate().is_ok());
}

TEST(DStoreApi, MetadataPoolExhaustion) {
  TestStore t(false, 512, /*max_objects=*/8, /*num_blocks=*/64);
  char buf[16] = {};
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(t.store->oput(t.ctx, "o" + std::to_string(i), buf, sizeof(buf)).is_ok()) << i;
  }
  EXPECT_EQ(t.store->oput(t.ctx, "one-too-many", buf, sizeof(buf)).code(), Code::kOutOfSpace);
  // Overwrites still work (no new metadata entry needed).
  EXPECT_TRUE(t.store->oput(t.ctx, "o3", buf, sizeof(buf)).is_ok());
  // Deleting frees an entry.
  ASSERT_TRUE(t.store->odelete(t.ctx, "o0").is_ok());
  EXPECT_TRUE(t.store->oput(t.ctx, "one-too-many", buf, sizeof(buf)).is_ok());
  EXPECT_TRUE(t.store->validate().is_ok());
}

TEST(DStoreApi, BlockPoolExhaustion) {
  TestStore t(false, 512, /*max_objects=*/64, /*num_blocks=*/8);
  std::string big = value_of(9 * 4096, 'b');  // needs 9 blocks > 8
  EXPECT_EQ(t.store->oput(t.ctx, "big", big.data(), big.size()).code(), Code::kOutOfSpace);
  std::string ok = value_of(8 * 4096, 'k');
  EXPECT_TRUE(t.store->oput(t.ctx, "fits", ok.data(), ok.size()).is_ok());
  // Pool is empty now; even a 1-block object fails.
  char small[16] = {};
  EXPECT_EQ(t.store->oput(t.ctx, "small", small, sizeof(small)).code(), Code::kOutOfSpace);
  // Overwriting the big object with something smaller succeeds (blocks
  // freed by the same op).
  EXPECT_TRUE(t.store->oput(t.ctx, "fits", small, sizeof(small)).is_ok());
  EXPECT_TRUE(t.store->validate().is_ok());
}

// ---------------------------------------------------------------------------
// Filesystem API
// ---------------------------------------------------------------------------

TEST(DStoreFs, CreateWriteRead) {
  TestStore t;
  auto obj = t.store->oopen(t.ctx, "file1", 0, kRead | kWrite | kCreate);
  ASSERT_TRUE(obj.is_ok()) << obj.status().to_string();
  std::string data = value_of(10000, 'f');
  auto w = t.store->owrite(obj.value(), data.data(), data.size(), 0);
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(w.value(), 10000u);
  std::string out(10000, 0);
  auto r = t.store->oread(obj.value(), out.data(), out.size(), 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 10000u);
  EXPECT_EQ(out, data);
  t.store->oclose(obj.value());
}

TEST(DStoreFs, OpenMissingWithoutCreateFails) {
  TestStore t;
  auto obj = t.store->oopen(t.ctx, "missing", 0, kRead);
  ASSERT_FALSE(obj.is_ok());
  EXPECT_EQ(obj.status().code(), Code::kNotFound);
}

TEST(DStoreFs, ModeEnforcement) {
  TestStore t;
  auto w = t.store->oopen(t.ctx, "f", 0, kWrite | kCreate);
  ASSERT_TRUE(w.is_ok());
  char buf[8] = {};
  EXPECT_EQ(t.store->oread(w.value(), buf, 8, 0).status().code(), Code::kInvalidArgument);
  t.store->oclose(w.value());
  auto r = t.store->oopen(t.ctx, "f", 0, kRead);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(t.store->owrite(r.value(), buf, 8, 0).status().code(), Code::kInvalidArgument);
  t.store->oclose(r.value());
  EXPECT_EQ(t.store->oopen(t.ctx, "g", 0, kCreate).status().code(), Code::kInvalidArgument);
  EXPECT_EQ(t.store->oopen(t.ctx, "g", 0, 0).status().code(), Code::kInvalidArgument);
}

TEST(DStoreFs, PartialReadsAndWritesAtOffsets) {
  TestStore t;
  auto obj = t.store->oopen(t.ctx, "partial", 0, kRead | kWrite | kCreate);
  ASSERT_TRUE(obj.is_ok());
  // Write 3 chunks at growing offsets, including one spanning a block edge.
  std::string a(4096, 'A'), b(2000, 'B'), c(3000, 'C');
  ASSERT_TRUE(t.store->owrite(obj.value(), a.data(), a.size(), 0).is_ok());
  ASSERT_TRUE(t.store->owrite(obj.value(), b.data(), b.size(), 3000).is_ok());
  ASSERT_TRUE(t.store->owrite(obj.value(), c.data(), c.size(), 8000).is_ok());
  auto sz = t.store->object_size("partial");
  ASSERT_TRUE(sz.is_ok());
  EXPECT_EQ(sz.value(), 11000u);
  std::string out(11000, 0);
  auto r = t.store->oread(obj.value(), out.data(), out.size(), 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 11000u);
  EXPECT_EQ(out.substr(0, 3000), a.substr(0, 3000));
  EXPECT_EQ(out.substr(3000, 2000), b);
  EXPECT_EQ(out.substr(8000, 3000), c);
  // Read past EOF clamps.
  auto tail = t.store->oread(obj.value(), out.data(), 5000, 10000);
  ASSERT_TRUE(tail.is_ok());
  EXPECT_EQ(tail.value(), 1000u);
  // Read at EOF returns 0.
  auto eof = t.store->oread(obj.value(), out.data(), 10, 11000);
  ASSERT_TRUE(eof.is_ok());
  EXPECT_EQ(eof.value(), 0u);
  t.store->oclose(obj.value());
  EXPECT_TRUE(t.store->validate().is_ok());
}

TEST(DStoreFs, InPlaceOverwriteNeedsNoLogRecord) {
  TestStore t;
  auto obj = t.store->oopen(t.ctx, "inplace", 0, kRead | kWrite | kCreate);
  ASSERT_TRUE(obj.is_ok());
  std::string data(4096, '1');
  ASSERT_TRUE(t.store->owrite(obj.value(), data.data(), data.size(), 0).is_ok());
  uint64_t appended = t.store->engine().stats().records_appended.load();
  // Same-size overwrite: §4.3, no metadata change => no record.
  std::string data2(4096, '2');
  ASSERT_TRUE(t.store->owrite(obj.value(), data2.data(), data2.size(), 0).is_ok());
  EXPECT_EQ(t.store->engine().stats().records_appended.load(), appended);
  std::string out(4096, 0);
  ASSERT_TRUE(t.store->oread(obj.value(), out.data(), out.size(), 0).is_ok());
  EXPECT_EQ(out, data2);
  t.store->oclose(obj.value());
}

TEST(DStoreFs, KvAndFsApisSeeSameObjects) {
  TestStore t;
  std::string v = value_of(5000, 'm');
  ASSERT_TRUE(t.store->oput(t.ctx, "mixed", v.data(), v.size()).is_ok());
  auto obj = t.store->oopen(t.ctx, "mixed", 0, kRead);
  ASSERT_TRUE(obj.is_ok());
  std::string out(5000, 0);
  auto r = t.store->oread(obj.value(), out.data(), out.size(), 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(out, v);
  t.store->oclose(obj.value());
}

// ---------------------------------------------------------------------------
// olock / ounlock
// ---------------------------------------------------------------------------

TEST(DStoreLock, LockBlocksOtherWriters) {
  TestStore t;
  char buf[16] = {};
  ASSERT_TRUE(t.store->oput(t.ctx, "shared", buf, sizeof(buf)).is_ok());
  ASSERT_TRUE(t.store->olock(t.ctx, "shared").is_ok());

  std::atomic<bool> other_done{false};
  std::thread other([&] {
    ds_ctx_t* ctx2 = t.store->ds_init();
    char b2[16] = {};
    EXPECT_TRUE(t.store->oput(ctx2, "shared", b2, sizeof(b2)).is_ok());
    other_done = true;
    t.store->ds_finalize(ctx2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(other_done.load());  // blocked on the NOOP record
  ASSERT_TRUE(t.store->ounlock(t.ctx, "shared").is_ok());
  other.join();
  EXPECT_TRUE(other_done.load());
}

TEST(DStoreLock, HolderCanStillWrite) {
  TestStore t;
  char buf[16] = {};
  ASSERT_TRUE(t.store->olock(t.ctx, "mine").is_ok());
  EXPECT_TRUE(t.store->oput(t.ctx, "mine", buf, sizeof(buf)).is_ok());
  EXPECT_TRUE(t.store->ounlock(t.ctx, "mine").is_ok());
}

TEST(DStoreLock, DoubleLockAndForeignUnlockRejected) {
  TestStore t;
  ASSERT_TRUE(t.store->olock(t.ctx, "obj").is_ok());
  EXPECT_EQ(t.store->olock(t.ctx, "obj").code(), Code::kBusy);
  ds_ctx_t* ctx2 = t.store->ds_init();
  EXPECT_EQ(t.store->ounlock(ctx2, "obj").code(), Code::kNotFound);
  t.store->ds_finalize(ctx2);
  EXPECT_TRUE(t.store->ounlock(t.ctx, "obj").is_ok());
  EXPECT_EQ(t.store->ounlock(t.ctx, "obj").code(), Code::kNotFound);
}

TEST(DStoreLock, LockSurvivesCheckpoint) {
  TestStore t;
  ASSERT_TRUE(t.store->olock(t.ctx, "held").is_ok());
  char buf[16] = {};
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(t.store->oput(t.ctx, "fill" + std::to_string(i), buf, sizeof(buf)).is_ok());
  }
  ASSERT_TRUE(t.store->checkpoint_now().is_ok());
  EXPECT_TRUE(t.store->engine().has_inflight_write(Key::from("held")));
  EXPECT_TRUE(t.store->ounlock(t.ctx, "held").is_ok());
}

// ---------------------------------------------------------------------------
// Introspection & checkpoint interaction
// ---------------------------------------------------------------------------

TEST(DStoreSpace, UsageTracksAllTiers) {
  TestStore t;
  auto before = t.store->space_usage();
  std::string v = value_of(8192, 'u');
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(t.store->oput(t.ctx, "s" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  auto after = t.store->space_usage();
  EXPECT_GT(after.dram_bytes, 0u);
  EXPECT_GT(after.pmem_bytes, before.pmem_bytes);  // log records
  EXPECT_EQ(after.ssd_bytes, 20u * 8192);
  ASSERT_TRUE(t.store->checkpoint_now().is_ok());
  auto post_ckpt = t.store->space_usage();
  EXPECT_GT(post_ckpt.pmem_bytes, after.dram_bytes);  // shadow copies counted
}

TEST(DStoreCkpt, StateIntactAcrossManyCheckpoints) {
  TestStore t;
  Rng rng(9);
  std::map<std::string, char> model;
  for (int round = 0; round < 10; round++) {
    for (int i = 0; i < 30; i++) {
      std::string name = "obj" + std::to_string(rng.next_below(60));
      char seed = (char)('a' + rng.next_below(26));
      std::string v((size_t)(1 + rng.next_below(6000)), seed);
      ASSERT_TRUE(t.store->oput(t.ctx, name, v.data(), v.size()).is_ok());
      model[name] = seed;
    }
    ASSERT_TRUE(t.store->checkpoint_now().is_ok());
    ASSERT_TRUE(t.store->validate().is_ok()) << "round " << round;
  }
  for (const auto& [name, seed] : model) {
    char buf[1];
    auto r = t.store->oget(t.ctx, name, buf, 1);
    ASSERT_TRUE(r.is_ok()) << name;
    EXPECT_EQ(buf[0], seed) << name;
  }
}

// ---------------------------------------------------------------------------
// Multi-threaded smoke: concurrent writers+readers with background
// checkpointing, then full validation.
// ---------------------------------------------------------------------------

TEST(DStoreConcurrent, ParallelMixedWorkloadStaysConsistent) {
  TestStore t(/*background_ckpt=*/true, /*log_slots=*/256);
  const int kThreads = 4;
  const int kOpsPerThread = 300;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < kThreads; w++) {
    threads.emplace_back([&, w] {
      ds_ctx_t* ctx = t.store->ds_init();
      Rng rng(1000 + w);
      char buf[4096];
      for (int i = 0; i < kOpsPerThread; i++) {
        std::string name = "obj" + std::to_string(rng.next_below(40));
        if (rng.next_bool(0.5)) {
          std::memset(buf, 'a' + w, sizeof(buf));
          if (!t.store->oput(ctx, name, buf, sizeof(buf)).is_ok()) failures++;
        } else if (rng.next_bool(0.2)) {
          Status s = t.store->odelete(ctx, name);
          if (!s.is_ok() && s.code() != Code::kNotFound) failures++;
        } else {
          auto r = t.store->oget(ctx, name, buf, sizeof(buf));
          if (!r.is_ok() && r.status().code() != Code::kNotFound) failures++;
        }
      }
      t.store->ds_finalize(ctx);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  t.store->engine().stop_background();
  EXPECT_TRUE(t.store->validate().is_ok());
}

}  // namespace
}  // namespace dstore
