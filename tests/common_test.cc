// Unit tests for src/common: status, cacheline math, histogram, zipf, rng,
// spinlocks, latency model, timeseries.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/bandwidth.h"
#include "common/cacheline.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/latency_model.h"
#include "common/rng.h"
#include "common/lockdep.h"
#include "common/status.h"
#include "common/timeseries.h"
#include "common/zipf.h"

namespace dstore {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kOk);
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::not_found("missing-object");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kNotFound);
  EXPECT_EQ(s.message(), "missing-object");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing-object");
}

TEST(Status, AllCodesHaveNames) {
  for (uint8_t c = 0; c <= (uint8_t)Code::kInternal; c++) {
    EXPECT_STRNE(code_name((Code)c), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::out_of_space("log");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kOutOfSpace);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(CacheLine, Rounding) {
  EXPECT_EQ(line_down(0), 0u);
  EXPECT_EQ(line_down(63), 0u);
  EXPECT_EQ(line_down(64), 64u);
  EXPECT_EQ(line_up(0), 0u);
  EXPECT_EQ(line_up(1), 64u);
  EXPECT_EQ(line_up(64), 64u);
  EXPECT_EQ(line_up(65), 128u);
}

TEST(CacheLine, LinesSpanned) {
  EXPECT_EQ(lines_spanned(0, 0), 0u);
  EXPECT_EQ(lines_spanned(0, 1), 1u);
  EXPECT_EQ(lines_spanned(0, 64), 1u);
  EXPECT_EQ(lines_spanned(0, 65), 2u);
  EXPECT_EQ(lines_spanned(63, 2), 2u);  // straddles a boundary
  EXPECT_EQ(lines_spanned(32, 64), 2u);
}

TEST(CacheLine, AlignUp) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(100, 64), 128u);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundsRespected) {
  Rng r(3);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(r.next_below(17), 17u);
    uint64_t v = r.next_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, RanksWithinRange) {
  ZipfianGenerator z(1000);
  Rng r(11);
  for (int i = 0; i < 10000; i++) EXPECT_LT(z.next(r), 1000u);
}

TEST(Zipf, SkewFavorsLowRanks) {
  ZipfianGenerator z(1000, 0.99);
  Rng r(12);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) head += (z.next(r) < 10);
  // With theta=0.99 the top-10 ranks draw a large share of accesses.
  EXPECT_GT(head, n / 10);
}

TEST(Zipf, ScrambledSpreadsHotKeys) {
  ScrambledZipfianGenerator z(1000);
  Rng r(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; i++) {
    uint64_t v = z.next(r);
    EXPECT_LT(v, 1000u);
    seen.insert(v);
  }
  // Scrambling should hit a broad set of distinct keys.
  EXPECT_GT(seen.size(), 200u);
}

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SingleValue) {
  LatencyHistogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  // Log-bucketing gives bounded relative error.
  EXPECT_NEAR((double)h.p50(), 1000.0, 1000.0 * 0.05);
}

TEST(Histogram, PercentilesOrdered) {
  LatencyHistogram h;
  Rng r(5);
  for (int i = 0; i < 100000; i++) h.record(100 + r.next_below(1000000));
  EXPECT_LE(h.p50(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_LE(h.p999(), h.p9999());
  EXPECT_LE(h.p9999(), h.max());
}

TEST(Histogram, UniformMedianNearMidpoint) {
  LatencyHistogram h;
  Rng r(6);
  for (int i = 0; i < 200000; i++) h.record(r.next_below(10000));
  EXPECT_NEAR((double)h.p50(), 5000.0, 600.0);
}

TEST(Histogram, MergeAccumulates) {
  LatencyHistogram a, b;
  a.record(100);
  b.record(10000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 10000u);
}

TEST(Histogram, ConcurrentRecording) {
  LatencyHistogram h;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; t++) {
    ts.emplace_back([&h, t] {
      Rng r(t);
      for (int i = 0; i < 10000; i++) h.record(r.next_below(100000));
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), 40000u);
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.record(5000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(SpinLock, MutualExclusion) {
  SpinLock mu{"test.spin"};
  int counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < 20000; i++) {
        LockGuard<SpinLock> g(mu);
        counter++;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(SpinLock, TryLock) {
  SpinLock mu{"test.spin_try"};
  EXPECT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SharedSpinLock, ReadersShareWritersExclude) {
  SharedSpinLock mu{"test.shared_spin"};
  std::atomic<int> readers{0};
  std::atomic<int> writer_active{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < 5000; i++) {
        mu.lock_shared();
        readers.fetch_add(1);
        if (writer_active.load() != 0) violation = true;
        readers.fetch_sub(1);
        mu.unlock_shared();
      }
    });
  }
  ts.emplace_back([&] {
    for (int i = 0; i < 2000; i++) {
      mu.lock();
      writer_active.store(1);
      if (readers.load() != 0) violation = true;
      writer_active.store(0);
      mu.unlock();
    }
  });
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load());
}

TEST(LatencyModel, NoneInjectsNothing) {
  LatencyModel m = LatencyModel::none();
  EXPECT_EQ(m.ssd_write_ns(4096), 0u);
  EXPECT_EQ(m.pmem_write_ns(4096), 0u);
}

TEST(LatencyModel, CalibratedShape) {
  LatencyModel m = LatencyModel::calibrated();
  // NVMe 4KB write must dominate a single-line PMEM flush by ~an order of
  // magnitude — the property behind Table 3's 88% NVMe share.
  EXPECT_GT(m.ssd_write_ns(4096), 10 * m.pmem_flush_line_ns);
  // PMEM reads are faster than writes.
  EXPECT_LT(m.pmem_read_ns(4096), m.pmem_write_ns(4096));
  // Scale=0 disables everything.
  LatencyModel z = LatencyModel::calibrated(0.0);
  EXPECT_EQ(z.ssd_write_ns(4096), 0u);
}

TEST(TimeSeries, BucketsAccumulate) {
  TimeSeries ts(10, 1000000000ull);  // 10 bins of 1s
  ts.add(5);
  ts.add(7);
  EXPECT_EQ(ts.bin(0), 12u);
  EXPECT_DOUBLE_EQ(ts.rate_per_sec(0), 12.0);
}

TEST(TimeSeries, MinMaxRates) {
  TimeSeries ts(4, 1000000000ull);
  ts.add(8);
  EXPECT_DOUBLE_EQ(ts.max_rate(), 8.0);
  EXPECT_DOUBLE_EQ(ts.min_rate(), 0.0);  // later bins empty
}

TEST(Bandwidth, ZeroCostIsFree) {
  BandwidthChannel ch;
  uint64_t start = now_ns();
  ch.transfer(0);
  EXPECT_LT(now_ns() - start, 1000000u);
}

TEST(Bandwidth, SingleTransferTakesCost) {
  BandwidthChannel ch;
  uint64_t start = now_ns();
  ch.transfer(300000);  // 300us
  EXPECT_GE(now_ns() - start, 300000u);
}

TEST(Bandwidth, ConcurrentTransfersSerialize) {
  // Two 2ms transfers on one channel must take ~4ms wall-clock total:
  // the channel models a shared medium, not parallel lanes.
  BandwidthChannel ch;
  uint64_t start = now_ns();
  std::thread a([&] { ch.transfer(2000000); });
  std::thread b([&] { ch.transfer(2000000); });
  a.join();
  b.join();
  EXPECT_GE(now_ns() - start, 3800000u);
}

TEST(Bandwidth, ReserveReturnsMonotonicDeadlines) {
  BandwidthChannel ch;
  uint64_t d1 = ch.reserve(100000);
  uint64_t d2 = ch.reserve(100000);
  EXPECT_GT(d2, d1);
  EXPECT_GE(d2 - d1, 100000u);
}

TEST(Clock, Monotonic) {
  uint64_t a = now_ns();
  uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

TEST(Clock, SpinForWaits) {
  uint64_t start = now_ns();
  spin_for_ns(200000);  // 200us
  EXPECT_GE(now_ns() - start, 200000u);
}

TEST(StopWatchTest, MeasuresElapsed) {
  StopWatch w;
  spin_for_ns(100000);
  EXPECT_GE(w.elapsed_ns(), 100000u);
  w.reset();
  EXPECT_LT(w.elapsed_ns(), 100000u);
}

}  // namespace
}  // namespace dstore
