// Tests for the PMEM operation log: record format, the LSN-last atomic
// visibility protocol under crash simulation and spurious evictions, and
// commit-flag durability.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "common/rng.h"
#include "dipper/log.h"

namespace dstore::dipper {
namespace {

class LogTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kSlots = 64;
  void SetUp() override {
    pool_ = std::make_unique<pmem::Pool>(PmemLog::region_bytes(kSlots),
                                         pmem::Pool::Mode::kCrashSim);
    log_ = PmemLog(pool_.get(), 0, kSlots);
    log_.format();
  }
  std::unique_ptr<pmem::Pool> pool_;
  PmemLog log_;
};

TEST_F(LogTest, FreshLogHasNoRecords) {
  LogRecordView rec;
  for (uint32_t s = 0; s < kSlots; s++) EXPECT_FALSE(log_.read(s, &rec)) << s;
}

TEST_F(LogTest, WriteReadRoundTrip) {
  log_.write_record(0, 42, OpType::kPut, Key::from("my-object"), 4096, 7, false);
  LogRecordView rec;
  ASSERT_TRUE(log_.read(0, &rec));
  EXPECT_EQ(rec.lsn, 42u);
  EXPECT_EQ(rec.op, OpType::kPut);
  EXPECT_EQ(rec.name.str(), "my-object");
  EXPECT_EQ(rec.arg0, 4096u);
  EXPECT_EQ(rec.arg1, 7u);
  EXPECT_FALSE(rec.committed);
}

TEST_F(LogTest, CommitPersistsFlag) {
  log_.write_record(0, 1, OpType::kDelete, Key::from("x"), 0, 0, false);
  EXPECT_FALSE(log_.is_committed(0));
  log_.commit(0);
  EXPECT_TRUE(log_.is_committed(0));
  pool_->crash();
  LogRecordView rec;
  ASSERT_TRUE(log_.read(0, &rec));
  EXPECT_TRUE(rec.committed);
}

TEST_F(LogTest, AbortedRecordNotReplayable) {
  log_.write_record(0, 1, OpType::kPut, Key::from("x"), 10, 0, false);
  log_.abort(0);
  LogRecordView rec;
  ASSERT_TRUE(log_.read(0, &rec));
  EXPECT_FALSE(rec.committed);
}

TEST_F(LogTest, RecordSurvivesCrash) {
  log_.write_record(3, 9, OpType::kCreate, Key::from("durable-object"), 0, 0, false);
  pool_->crash();
  LogRecordView rec;
  ASSERT_TRUE(log_.read(3, &rec));
  EXPECT_EQ(rec.lsn, 9u);
  EXPECT_EQ(rec.name.str(), "durable-object");
}

TEST_F(LogTest, LongNameSpansTwoLinesAndSurvives) {
  std::string long_name(kMaxNameLen, 'q');
  log_.write_record(0, 5, OpType::kPut, Key::from(long_name), 123, 0, false);
  pool_->crash();
  LogRecordView rec;
  ASSERT_TRUE(log_.read(0, &rec));
  EXPECT_EQ(rec.name.str(), long_name);
  EXPECT_EQ(rec.arg0, 123u);
}

TEST_F(LogTest, NoopFlagRoundTrips) {
  log_.write_record(0, 2, OpType::kNoop, Key::from("locked"), 0, 0, true);
  LogRecordView rec;
  ASSERT_TRUE(log_.read(0, &rec));
  EXPECT_EQ(rec.op, OpType::kNoop);
}

TEST_F(LogTest, FormatClearsEverything) {
  for (uint32_t s = 0; s < 8; s++)
    log_.write_record(s, s + 1, OpType::kPut, Key::from("a"), 0, 0, false);
  log_.format();
  pool_->crash();  // format is persistent
  LogRecordView rec;
  for (uint32_t s = 0; s < kSlots; s++) EXPECT_FALSE(log_.read(s, &rec));
}

// The core §3.4 property: because the LSN is written and flushed last, a
// torn record (crash mid-write) is never visible — and if the LSN IS
// visible, the whole record is intact. We emulate torn writes by crashing
// between the protocol's phases using a hand-rolled copy of phase 1 only.
TEST_F(LogTest, TornRecordInvisibleAfterCrash) {
  // Phase 1 only: write the payload but never the LSN, then crash.
  // (Simulates a writer killed between payload flush and LSN write.)
  char* slot0 = pool_->base();
  std::memset(slot0 + 8, 0x7f, 120);  // everything but the LSN field
  pool_->persist(slot0 + 8, 120);
  pool_->crash();
  LogRecordView rec;
  EXPECT_FALSE(log_.read(0, &rec));  // LSN==0: invisible
}

TEST_F(LogTest, SpuriousEvictionCannotFakeValidity) {
  // Adversary evicts lines at arbitrary times while a record is being
  // written. Since the LSN store happens only after the payload fence, an
  // evicted LSN line either has lsn==0 (invisible) or the payload is
  // already persistent (complete). Run many interleavings.
  Rng rng(77);
  for (int round = 0; round < 200; round++) {
    log_.format();
    // Phase 1 by hand: payload write.
    char* s = pool_->base();
    std::memset(s + 8, round & 0xff, 56);
    pool_->flush(s + 8, 56);
    pool_->evict_random_lines(rng, 4);  // may persist partial state
    pool_->fence();
    pool_->evict_random_lines(rng, 4);
    // Phase 3: LSN store + persist.
    reinterpret_cast<std::atomic<uint64_t>*>(s)->store(round + 1, std::memory_order_release);
    if (rng.next_bool(0.5)) {
      pool_->persist(s, 8);
    } else {
      pool_->evict_random_lines(rng, 8);  // eviction may or may not persist it
    }
    pool_->crash();
    LogRecordView rec;
    if (log_.read(0, &rec)) {
      // Visible => complete: the payload byte pattern must be intact.
      EXPECT_EQ((unsigned char)pool_->base()[8], (unsigned char)(round & 0xff));
      EXPECT_EQ(rec.lsn, (uint64_t)round + 1);
    }
  }
}

// Adversary sweep over the multi-line append path (§3.4 reverse-order
// flush). Long names push the payload into the slot's second cache line,
// so visibility requires: tail line persisted, fence, LSN line persisted —
// in that order. Hand-roll the phases with evictions injected between
// every step; whatever interleaving the adversary picks, a slot whose LSN
// survives the crash must carry the complete two-line record.
TEST_F(LogTest, MultiLineEvictionSweep) {
  constexpr size_t kNameOff = 33;  // Slot: lsn(8) len(4) op(2) flags(2) arg0(8) arg1(8) klen(1)
  Rng rng(1234);
  for (int round = 0; round < 300; round++) {
    log_.format();
    char* s = pool_->base();
    uint8_t klen = (uint8_t)(40 + rng.next_below(24));  // 40..63: always spans two lines
    char fill = (char)('A' + (round % 26));
    // Phase 1: everything except the LSN.
    *reinterpret_cast<uint32_t*>(s + 8) = 17u + klen;
    *reinterpret_cast<uint16_t*>(s + 12) = (uint16_t)OpType::kPut;
    *reinterpret_cast<uint16_t*>(s + 14) = 0;
    *reinterpret_cast<uint64_t*>(s + 16) = (uint64_t)round;
    *reinterpret_cast<uint64_t*>(s + 24) = 0;
    s[32] = (char)klen;
    std::memset(s + kNameOff, fill, klen);
    size_t payload_end = kNameOff + klen;
    pool_->evict_random_lines(rng, 4);
    // Phase 2: persist the tail line first.
    pool_->flush(s + 64, payload_end - 64);
    pool_->evict_random_lines(rng, 4);
    pool_->fence();
    pool_->evict_random_lines(rng, 4);
    // Phase 3: LSN last; its write-back may be explicit, spurious, or lost.
    reinterpret_cast<std::atomic<uint64_t>*>(s)->store(round + 1, std::memory_order_release);
    switch (rng.next_below(3)) {
      case 0: pool_->persist(s, 64); break;
      case 1: pool_->evict_random_lines(rng, 8); break;
      default: break;  // crash before the LSN line is ever written back
    }
    pool_->crash();
    LogRecordView rec;
    if (log_.read(0, &rec)) {
      ASSERT_EQ(rec.lsn, (uint64_t)round + 1);
      ASSERT_EQ(rec.arg0, (uint64_t)round);
      ASSERT_EQ(rec.name.len, klen);
      for (int i = 0; i < klen; i++) {
        ASSERT_EQ(rec.name.data[i], fill) << "round " << round << " byte " << i;
      }
    }
  }
}

// Same property through the real write_record path: an eviction storm
// between appends/commits must never corrupt a published record.
TEST_F(LogTest, MultiLineWriteRecordSurvivesEvictionStorm) {
  Rng rng(99);
  for (uint32_t s = 0; s < kSlots; s++) {
    std::string name((size_t)40 + s % 24, (char)('a' + s % 26));
    log_.write_record(s, s + 1, OpType::kPut, Key::from(name), s, 7, false);
    pool_->evict_random_lines(rng, 16);
    if (s % 2 == 0) log_.commit(s);
    pool_->evict_random_lines(rng, 16);
  }
  pool_->crash();
  for (uint32_t s = 0; s < kSlots; s++) {
    LogRecordView rec;
    ASSERT_TRUE(log_.read(s, &rec)) << s;
    EXPECT_EQ(rec.lsn, s + 1u);
    EXPECT_EQ(rec.arg0, (uint64_t)s);
    EXPECT_EQ(rec.committed, s % 2 == 0);
    ASSERT_EQ(rec.name.len, 40 + s % 24);
    for (size_t i = 0; i < rec.name.len; i++) {
      ASSERT_EQ(rec.name.data[i], (char)('a' + s % 26)) << s << ":" << i;
    }
  }
}

TEST_F(LogTest, ManySlotsIndependent) {
  for (uint32_t s = 0; s < kSlots; s++) {
    char name[32];
    snprintf(name, sizeof(name), "obj-%u", s);
    log_.write_record(s, s + 1, OpType::kPut, Key::from(name), s * 10, 0, false);
    if (s % 2 == 0) log_.commit(s);
  }
  pool_->crash();
  for (uint32_t s = 0; s < kSlots; s++) {
    LogRecordView rec;
    ASSERT_TRUE(log_.read(s, &rec)) << s;
    EXPECT_EQ(rec.lsn, s + 1u);
    EXPECT_EQ(rec.committed, s % 2 == 0);
    EXPECT_EQ(rec.arg0, (uint64_t)s * 10);
  }
}

TEST_F(LogTest, UncommittedSurvivesButStaysUncommitted) {
  log_.write_record(0, 1, OpType::kPut, Key::from("pending"), 64, 0, false);
  // Commit written but NOT persisted before crash: emulate by setting the
  // flag without flushing.
  pool_->crash();
  LogRecordView rec;
  ASSERT_TRUE(log_.read(0, &rec));
  EXPECT_FALSE(rec.committed);
}

}  // namespace
}  // namespace dstore::dipper
