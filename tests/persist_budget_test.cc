// Fence/flush budget harness (DESIGN.md §13): pins the EXACT per-operation
// PMEM ordering cost of the hot paths. These are equality assertions on
// purpose — a regression that adds a fence or a flushed line to put/get/
// delete is a performance bug this suite turns into a test failure, the
// same way the CI fence-budget step diffs bench/results/
// BENCH_persist_budget.json.
//
// The budget model (single-fence publication, log.h):
//   put/delete  record publication: 2 slot lines, ONE flush train, 1 fence
//               commit:             1 flags line (clwb RMW),       1 fence
//               => 3 flushed lines / 2 fences per op
//   with nt stores: the 2 publication lines go through flush_nt instead
//               => 1 flushed line + 2 nt lines / 2 fences per op
//   get         reads only — 0 lines / 0 fences
//   checkpoint  2 root-state line persists (swap + install) fence-wise;
//               everything else rides the two persist_bulk passes
//               => 2 flushed lines / 2 fences on the calling thread
//
// Budgets are measured with Pool::thread_io_counts() — monotone per-thread
// counters — so concurrent background work cannot pollute a sample.
// persist_bulk charges the global stats only; the physical-logging test
// covers it through stats().fences.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dstore/dstore.h"

namespace dstore {
namespace {

struct BudgetStore {
  DStoreConfig cfg;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<ssd::RamBlockDevice> device;
  std::unique_ptr<DStore> store;
  ds_ctx_t* ctx = nullptr;

  explicit BudgetStore(bool nt_stores, bool repair_logging = false) {
    cfg.max_objects = 256;
    cfg.num_blocks = 1024;
    cfg.repair_logging = repair_logging;
    cfg.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(256);
    cfg.engine.log_slots = 128;
    cfg.engine.background_checkpointing = false;  // budgets on this thread
    cfg.engine.nt_stores = nt_stores;  // explicit: independent of DSTORE_PMEM_NT
    pool = std::make_unique<pmem::Pool>(DStoreConfig::required_pool_bytes(cfg),
                                        pmem::Pool::Mode::kCrashSim);
    ssd::DeviceConfig dc;
    dc.num_blocks = 1024;
    device = std::make_unique<ssd::RamBlockDevice>(dc);
    auto r = DStore::create(pool.get(), device.get(), cfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    ctx = store->ds_init();
  }
  ~BudgetStore() {
    if (store && ctx != nullptr) store->ds_finalize(ctx);
  }

  struct Delta {
    uint64_t flushes;
    uint64_t fences;
    uint64_t nt_lines;
  };
  template <typename Fn>
  Delta measure(Fn&& fn) {
    pmem::Pool::ThreadIoCounts before = pool->thread_io_counts();
    fn();
    pmem::Pool::ThreadIoCounts after = pool->thread_io_counts();
    return {after.flushes - before.flushes, after.fences - before.fences,
            after.nt_lines - before.nt_lines};
  }
};

std::string value(size_t n, char c) { return std::string(n, c); }

TEST(PersistBudget, PutIsThreeLinesTwoFences) {
  BudgetStore t(/*nt_stores=*/false);
  std::string v = value(4096, 'p');
  // Insert and overwrite pay the identical budget: the log protocol does
  // not distinguish them.
  for (int i = 0; i < 3; i++) {
    auto d = t.measure([&] {
      ASSERT_TRUE(t.store->oput(t.ctx, "obj", v.data(), v.size()).is_ok());
    });
    EXPECT_EQ(d.flushes, 3u) << "put flushed-line budget (iteration " << i << ")";
    EXPECT_EQ(d.fences, 2u) << "put fence budget (iteration " << i << ")";
    EXPECT_EQ(d.nt_lines, 0u);
  }
}

TEST(PersistBudget, PutWithNtStoresMovesPublicationOffTheCache) {
  BudgetStore t(/*nt_stores=*/true);
  std::string v = value(4096, 'n');
  for (int i = 0; i < 3; i++) {
    auto d = t.measure([&] {
      ASSERT_TRUE(t.store->oput(t.ctx, "obj", v.data(), v.size()).is_ok());
    });
    // Publication (2 slot lines) streams non-temporally; the commit flag is
    // a read-modify-write of a live line and must stay on the clwb path.
    EXPECT_EQ(d.nt_lines, 2u) << "nt publication lines (iteration " << i << ")";
    EXPECT_EQ(d.flushes, 1u) << "commit stays clwb (iteration " << i << ")";
    EXPECT_EQ(d.fences, 2u) << "fence budget is unchanged by nt (iteration " << i << ")";
  }
}

TEST(PersistBudget, DeleteMatchesPutBudget) {
  BudgetStore t(/*nt_stores=*/false);
  std::string v = value(512, 'd');
  ASSERT_TRUE(t.store->oput(t.ctx, "obj", v.data(), v.size()).is_ok());
  auto d = t.measure([&] { ASSERT_TRUE(t.store->odelete(t.ctx, "obj").is_ok()); });
  EXPECT_EQ(d.flushes, 3u);
  EXPECT_EQ(d.fences, 2u);
  EXPECT_EQ(d.nt_lines, 0u);
}

TEST(PersistBudget, GetIsFree) {
  BudgetStore t(/*nt_stores=*/false);
  std::string v = value(8192, 'g');
  ASSERT_TRUE(t.store->oput(t.ctx, "obj", v.data(), v.size()).is_ok());
  std::string out(8192, 0);
  auto d = t.measure([&] {
    auto r = t.store->oget(t.ctx, "obj", out.data(), out.size());
    ASSERT_TRUE(r.is_ok());
  });
  EXPECT_EQ(d.flushes, 0u);
  EXPECT_EQ(d.fences, 0u);
  EXPECT_EQ(d.nt_lines, 0u);
  // The zero-copy path is read-only on PMEM too.
  auto dz = t.measure([&] { ASSERT_TRUE(t.store->oget_zc(t.ctx, "obj").is_ok()); });
  EXPECT_EQ(dz.flushes, 0u);
  EXPECT_EQ(dz.fences, 0u);
}

TEST(PersistBudget, CheckpointFencesTwiceOnTopOfBulkPasses) {
  BudgetStore t(/*nt_stores=*/false);
  std::string v = value(4096, 'c');
  for (int i = 0; i < 8; i++) {
    std::string name = "obj" + std::to_string(i);
    ASSERT_TRUE(t.store->oput(t.ctx, name, v.data(), v.size()).is_ok());
  }
  auto d = t.measure([&] { ASSERT_TRUE(t.store->checkpoint_now().is_ok()); });
  // Two root-state line persists — log swap and install — are the only
  // per-line ordering points; replay durability rides the bulk passes.
  EXPECT_EQ(d.flushes, 2u);
  EXPECT_EQ(d.fences, 2u);
  EXPECT_EQ(d.nt_lines, 0u);
}

TEST(PersistBudget, PhysicalLoggingAddsOneBulkPassPerPut) {
  BudgetStore t(/*nt_stores=*/false, /*repair_logging=*/true);
  std::string v = value(2048, 'b');
  ASSERT_TRUE(t.store->oput(t.ctx, "warm", v.data(), v.size()).is_ok());
  uint64_t fences0 = t.pool->stats().fences.load(std::memory_order_relaxed);
  auto d = t.measure([&] {
    ASSERT_TRUE(t.store->oput(t.ctx, "obj", v.data(), v.size()).is_ok());
  });
  uint64_t fences1 = t.pool->stats().fences.load(std::memory_order_relaxed);
  // Per-line budget is unchanged; the payload copy is exactly one
  // persist_bulk (global fence accounting: 2 thread fences + 1 bulk).
  EXPECT_EQ(d.flushes, 3u);
  EXPECT_EQ(d.fences, 2u);
  EXPECT_EQ(fences1 - fences0, 3u);
}

}  // namespace
}  // namespace dstore
