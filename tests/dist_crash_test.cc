// Distributed crash-schedule sweep: a replication fleet under the oracle.
//
// Where crash_schedule_test.cc crashes ONE store at every protocol point,
// this sweep crashes MACHINES: ≥200 DistPlans spread across the four
// distributed failure categories — power-fail the primary at each of its
// enumerated fault points (including the mid-checkpoint window), power-fail
// a follower at each of its points (including mid-replay), partition the
// primary away long enough for the majority to promote, and back-to-back
// double failovers — each run through a full DistRig fleet and held to the
// cluster oracle. The forbidden outcomes are replica divergence and
// silently lost acked writes.
//
// Reproduction: every failure prints the DistPlan string; re-run one plan
// with DSTORE_DIST_PLAN="<string>" (the sweep then runs only that plan).
// With DSTORE_CRASH_ARTIFACT=<path>, failing plan strings are appended to
// <path> for CI artifact upload.
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/dist_rig.h"
#include "fault/fault.h"

namespace dstore::fault {
namespace {

void report_failing_plan(const DistPlan& plan, const Status& why) {
  if (const char* path = std::getenv("DSTORE_CRASH_ARTIFACT")) {
    std::ofstream f(path, std::ios::app);
    f << plan.to_string() << "\n";
  }
  ADD_FAILURE() << "failing plan: " << plan.to_string() << " — " << why.to_string()
                << "\n(reproduce with DSTORE_DIST_PLAN=\"" << plan.to_string() << "\")";
}

// If DSTORE_DIST_PLAN is set, replace a sweep's plan list with just it.
bool maybe_single_plan(std::vector<DistPlan>* plans) {
  const char* repro = std::getenv("DSTORE_DIST_PLAN");
  if (repro == nullptr) return false;
  auto parsed = DistPlan::parse(repro);
  EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  if (parsed.is_ok()) *plans = {parsed.value()};
  return parsed.is_ok();
}

// ---------------------------------------------------------------------------
// Schedule-space and plan-generator shape
// ---------------------------------------------------------------------------

TEST(DistCrashSweep, ScheduleSpacesCoverCheckpointAndReplay) {
  auto spaces = DistRig::enumerate_schedules();
  ASSERT_EQ(spaces.size(), 3u);
  for (size_t n = 0; n < spaces.size(); n++) {
    uint64_t total = 0;
    bool saw_flush = false, saw_fence = false;
    for (const auto& [point, count] : spaces[n]) {
      total += count;
      saw_flush |= point == "pmem.flush";
      saw_fence |= point == "pmem.fence";
    }
    EXPECT_TRUE(saw_flush) << "node " << n;
    EXPECT_TRUE(saw_fence) << "node " << n;
    EXPECT_GT(total, 50u) << "node " << n;
  }
  // The seed primary runs the engine checkpoint protocol; its space must
  // include the named engine steps so plans land inside that window.
  bool saw_engine = false;
  for (const auto& [point, count] : spaces[0])
    saw_engine |= point.rfind("engine.", 0) == 0;
  EXPECT_TRUE(saw_engine);
}

TEST(DistCrashSweep, GeneratorMeetsTargetAndCoversAllFourCategories) {
  auto plans = dist_crash_plans(DistRigOptions{}, 200);
  EXPECT_GE(plans.size(), 200u);
  size_t primary_crash = 0, follower_crash = 0, partition = 0, double_kill = 0;
  for (const auto& p : plans) {
    for (const auto& f : p.faults) (f.node == 0 ? primary_crash : follower_crash)++;
    partition += p.partitions.size();
    if (p.kills.size() >= 2) double_kill++;
    // Every generated plan must survive a to_string/parse round trip so a
    // failure report is always reproducible.
    auto back = DistPlan::parse(p.to_string());
    ASSERT_TRUE(back.is_ok()) << p.to_string();
    EXPECT_EQ(back.value().to_string(), p.to_string());
  }
  EXPECT_GT(primary_crash, 50u);
  EXPECT_GT(follower_crash, 30u);
  EXPECT_GT(partition, 4u);
  EXPECT_GT(double_kill, 2u);
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

TEST(DistCrashSweep, EveryPlanHoldsEveryNodeToTheClusterOracle) {
  DistRigOptions opt;
  auto plans = dist_crash_plans(opt, 200);
  maybe_single_plan(&plans);
  size_t failures = 0;
  for (const auto& plan : plans) {
    DistRig rig(opt);
    Status st = rig.run(plan);
    if (!st.is_ok()) {
      report_failing_plan(plan, st);
      if (++failures >= 8) {
        ADD_FAILURE() << "aborting sweep after " << failures << " failing plans";
        return;
      }
    }
  }
}

}  // namespace
}  // namespace dstore::fault
