// Lockdep validation tests (src/common/lockdep.{h,cc}).
//
// Three groups:
//   * wrapper semantics with lockdep compiled OUT or IN — the locks must
//     behave as plain locks either way;
//   * detector behavior (DSTORE_LOCKDEP=ON only): lock-order inversion
//     across two threads' histories, same-instance self-deadlock,
//     recursive same-class acquisition, shared-vs-exclusive ordering, and
//     the quiescence gate tripping when a hot foreground acquisition
//     blocks on a background-held class (and NOT tripping for exempt
//     classes or non-hot threads);
//   * a whole-store smoke run — create, write, checkpoint, scrub, crash,
//     recover — that must finish with ZERO reports. This is the regression
//     pin for the violations this validator's introduction surfaced and
//     fixed: the checkpoint trigger moving off the hot path
//     (Engine::request_checkpoint), the scrubber's btree-free zone walk
//     (MetadataZone::peek_live), and find_repair_payload's chunked scan.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/lockdep.h"
#include "dstore/dstore.h"
#include "fault/fault.h"
#include "pmem/pool.h"
#include "ssd/block_device.h"

namespace dstore {
namespace {

using lockdep::Role;
using lockdep::RoleScope;
using lockdep::Violation;

// Wrapper passthrough semantics, valid in both configurations.
TEST(LockdepWrappers, MutexAndGuardsProvideExclusion) {
  Mutex mu{"test.ld_mutex"};
  int counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < 10000; i++) {
        MutexGuard g(mu);
        counter++;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(LockdepWrappers, CondVarWaitAndNotify) {
  Mutex mu{"test.ld_cv_mutex"};
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      MutexGuard g(mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    UniqueLock g(mu);
    cv.wait(g, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  waker.join();
}

#if defined(DSTORE_LOCKDEP_ENABLED)

// Captures violations instead of aborting; resets global lockdep state so
// tests are order-independent.
class LockdepDetector : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::reset_for_testing();
    captured_.clear();
    lockdep::set_report_hook([this](const Violation& v) {
      captured_.push_back(v);
    });
  }
  void TearDown() override {
    lockdep::set_report_hook(nullptr);
    lockdep::reset_for_testing();
  }

  bool saw(const std::string& kind) const {
    for (const Violation& v : captured_) {
      if (v.kind == kind) return true;
    }
    return false;
  }

  std::vector<Violation> captured_;
};

TEST_F(LockdepDetector, ConsistentOrderIsClean) {
  SpinLock a{"t.clean_a"};
  SpinLock b{"t.clean_b"};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < 200; i++) {
        LockGuard<SpinLock> ga(a);
        LockGuard<SpinLock> gb(b);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_TRUE(captured_.empty());
  EXPECT_EQ(lockdep::violation_count(), 0u);
}

TEST_F(LockdepDetector, AbbaInversionAcrossThreads) {
  SpinLock a{"t.abba_a"};
  SpinLock b{"t.abba_b"};
  // Thread 1 establishes a -> b; thread 2 then attempts b -> a. The edges
  // are recorded sequentially (the threads are joined), so the second
  // thread's pre-acquire check must flag the cycle WITHOUT an actual
  // deadlock ever forming.
  std::thread t1([&] {
    LockGuard<SpinLock> ga(a);
    LockGuard<SpinLock> gb(b);
  });
  t1.join();
  std::thread t2([&] {
    LockGuard<SpinLock> gb(b);
    LockGuard<SpinLock> ga(a);
  });
  t2.join();
  EXPECT_TRUE(saw("inversion")) << "expected a lock-order inversion report";
  // The report must carry both acquisition stacks: the edge's first
  // observation and the current thread's.
  for (const Violation& v : captured_) {
    if (v.kind != "inversion") continue;
    EXPECT_NE(v.report.find("t.abba_a"), std::string::npos);
    EXPECT_NE(v.report.find("t.abba_b"), std::string::npos);
    EXPECT_NE(v.report.find("first established"), std::string::npos);
    EXPECT_NE(v.report.find("acquisition stack"), std::string::npos);
  }
}

TEST_F(LockdepDetector, InversionReportsOncePerEdgePerThread) {
  SpinLock a{"t.once_a"};
  SpinLock b{"t.once_b"};
  {
    LockGuard<SpinLock> ga(a);
    LockGuard<SpinLock> gb(b);
  }
  std::thread t2([&] {
    for (int i = 0; i < 5; i++) {
      LockGuard<SpinLock> gb(b);
      LockGuard<SpinLock> ga(a);
    }
  });
  t2.join();
  size_t inversions = 0;
  for (const Violation& v : captured_) inversions += v.kind == "inversion";
  EXPECT_EQ(inversions, 1u) << "the validated-edge cache must dedupe reports";
}

TEST_F(LockdepDetector, SelfDeadlockReportedBeforeHanging) {
  // pre_acquire reports the same-instance re-acquisition BEFORE the raw
  // lock would block forever; a throwing hook turns that report into an
  // exception so the test can observe it without deadlocking.
  lockdep::set_report_hook([](const Violation& v) {
    throw std::runtime_error(v.kind);
  });
  SpinLock a{"t.selfdl"};
  a.lock();
  EXPECT_THROW(a.lock(), std::runtime_error);
  a.unlock();
}

TEST_F(LockdepDetector, RecursiveClassAcquisitionReported) {
  // Two INSTANCES of one class: the class graph cannot order them, so
  // holding both at once is flagged (an ABBA between instances would be
  // invisible otherwise). Distinct instances, so no actual deadlock.
  SpinLock a1{"t.recls"};
  SpinLock a2{"t.recls"};
  LockGuard<SpinLock> g1(a1);
  LockGuard<SpinLock> g2(a2);
  EXPECT_TRUE(saw("self-deadlock"));
}

TEST_F(LockdepDetector, SharedAcquisitionsFeedTheOrderGraph) {
  SharedSpinLock rw{"t.shex_rw"};
  SpinLock m{"t.shex_m"};
  // m -> rw(shared) establishes the edge...
  {
    LockGuard<SpinLock> gm(m);
    SharedLockGuard<> gr(rw);
  }
  // ...so rw(shared) -> m is an inversion even though rw was never held
  // exclusively: a writer blocked on rw while holding m completes the
  // classic reader-writer deadlock.
  std::thread t2([&] {
    SharedLockGuard<> gr(rw);
    LockGuard<SpinLock> gm(m);
  });
  t2.join();
  EXPECT_TRUE(saw("inversion"));
}

TEST_F(LockdepDetector, QuiescenceTripOnBackgroundHeldClass) {
  // A deliberately blocking "checkpoint": holds a non-exempt lock while a
  // hot foreground acquisition arrives. The foreground lock() must first
  // report the quiescence violation, then (this being a test hook, not an
  // abort) block until the background thread releases.
  SpinLock l{"t.quiesce"};
  std::atomic<bool> held{false};
  std::thread ckpt([&] {
    RoleScope role(Role::kCheckpoint);
    l.lock();
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    l.unlock();
  });
  while (!held.load()) std::this_thread::yield();
  {
    lockdep::HotOpScope hot;
    LockGuard<SpinLock> g(l);  // contends -> trips the gate -> then acquires
  }
  ckpt.join();
  ASSERT_TRUE(saw("quiescence"));
  for (const Violation& v : captured_) {
    if (v.kind != "quiescence") continue;
    EXPECT_NE(v.report.find("t.quiesce"), std::string::npos);
    EXPECT_NE(v.report.find("checkpoint=1"), std::string::npos);
  }
}

TEST_F(LockdepDetector, ExemptClassNeverTrips) {
  SpinLock l{"t.quiesce_exempt", lockdep::kQuiesceExempt};
  std::atomic<bool> held{false};
  std::thread scrub([&] {
    RoleScope role(Role::kScrubber);
    l.lock();
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    l.unlock();
  });
  while (!held.load()) std::this_thread::yield();
  {
    lockdep::HotOpScope hot;
    LockGuard<SpinLock> g(l);
  }
  scrub.join();
  EXPECT_FALSE(saw("quiescence"));
}

TEST_F(LockdepDetector, ColdForegroundBlockingDoesNotTrip) {
  // Blocking on a background-held lock outside a hot op scope (setup,
  // teardown, maintenance calls) is allowed.
  SpinLock l{"t.quiesce_cold"};
  std::atomic<bool> held{false};
  std::thread ckpt([&] {
    RoleScope role(Role::kCheckpoint);
    l.lock();
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    l.unlock();
  });
  while (!held.load()) std::this_thread::yield();
  {
    LockGuard<SpinLock> g(l);  // no HotOpScope
  }
  ckpt.join();
  EXPECT_FALSE(saw("quiescence"));
}

// ---------------------------------------------------------------------------
// Whole-store zero-report run. This is the §3 claim as a test: a store
// doing foreground IO concurrently with checkpoints and scrubs, then
// crash-recovering, produces no inversion and no quiescence trip.
// ---------------------------------------------------------------------------

TEST_F(LockdepDetector, StoreLifecycleProducesZeroReports) {
  fault::FaultInjector inj;
  DStoreConfig cfg;
  cfg.max_objects = 64;
  cfg.num_blocks = 512;
  cfg.engine.log_slots = 64;
  cfg.engine.arena_bytes = 1 << 20;
  cfg.engine.background_checkpointing = true;
  cfg.scrub_interval_ms = 2;  // aggressive: overlap scrubs with foreground IO
  auto pool = std::make_unique<pmem::Pool>(DStoreConfig::required_pool_bytes(cfg),
                                           pmem::Pool::Mode::kCrashSim);
  ssd::DeviceConfig dc;
  dc.num_blocks = cfg.num_blocks;
  auto device = std::make_unique<ssd::RamBlockDevice>(dc);
  device->set_fault_injector(&inj);

  auto created = DStore::create(pool.get(), device.get(), cfg);
  ASSERT_TRUE(created.is_ok()) << created.status().to_string();
  std::unique_ptr<DStore> store = std::move(created).value();

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; t++) {
    writers.emplace_back([&, t] {
      ds_ctx_t* ctx = store->ds_init();
      std::string value(300, char('a' + t));
      for (int i = 0; i < 120; i++) {
        std::string key = "obj_" + std::to_string(t) + "_" + std::to_string(i % 10);
        ASSERT_TRUE(store->oput(ctx, key, value.data(), value.size()).is_ok());
        std::vector<char> buf(400);
        auto r = store->oget(ctx, key, buf.data(), buf.size());
        ASSERT_TRUE(r.is_ok());
        if (i % 20 == 5) {
          ASSERT_TRUE(store->odelete(ctx, key).is_ok());
        }
      }
      store->ds_finalize(ctx);
    });
  }
  for (auto& t : writers) t.join();
  // The watermark may have a background checkpoint mid-flight when the
  // writers finish; busy is transient, not a lockdep concern.
  Status ckpt = Status::busy("");
  for (int tries = 0; tries < 2000 && ckpt.is_busy(); tries++) {
    ckpt = store->checkpoint_now();
    if (ckpt.is_busy()) std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(ckpt.is_ok()) << ckpt.to_string();
  DStore::ScrubReport rep;
  EXPECT_TRUE(store->scrub_now(&rep).is_ok());
  EXPECT_GT(rep.objects_scanned, 0u);

  // Crash-recover: recovery replay (parallel two-lane) must also be clean.
  store.reset();
  auto recovered = DStore::recover(pool.get(), device.get(), cfg);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  store = std::move(recovered).value();
  ds_ctx_t* ctx = store->ds_init();
  std::vector<char> buf(400);
  auto r = store->oget(ctx, "obj_0_9", buf.data(), buf.size());
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  store->ds_finalize(ctx);
  store.reset();

  for (const Violation& v : captured_) {
    ADD_FAILURE() << "lockdep report during store lifecycle:\n" << v.report;
  }
  EXPECT_EQ(lockdep::violation_count(), 0u);
}

#endif  // DSTORE_LOCKDEP_ENABLED

}  // namespace
}  // namespace dstore
