// Unit tests for the linter's text-analysis core (tools/lint_rules.h),
// centered on the raw-persist rule: hot-path files must route per-op PMEM
// ordering through pmem::PersistBatch; raw persist/flush/fence member calls
// need a `lint: allow-raw-persist` annotation. Tests feed inline source
// strings so both directions (fires / stays quiet) are covered — the driver
// binary only ever lints whole translation units.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint_rules.h"

namespace dstore::lint {
namespace {

std::vector<Violation> run_raw_persist(const std::string& rel,
                                       const std::string& src) {
  std::vector<Violation> out;
  check_raw_persist(rel, src, strip_comments_and_strings(src), &out);
  // The rule scans token-by-token; order by line like the driver does.
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) { return a.line < b.line; });
  return out;
}

TEST(LintRawPersist, FlagsRawMemberCallsInHotPathFiles) {
  const std::string src =
      "void f(pmem::Pool* p, char* a) {\n"
      "  p->persist(a, 64);\n"
      "  p->flush(a, 64);\n"
      "  p->fence();\n"
      "  p->persist_nt(a, 128);\n"
      "  p->flush_nt(a, 128);\n"
      "}\n";
  auto v = run_raw_persist("src/dipper/log.cc", src);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0].check, "raw-persist");
  EXPECT_EQ(v[0].line, 2u);
  EXPECT_EQ(v[2].line, 4u);
}

TEST(LintRawPersist, DotCallsAndChainedReceiversAreCaught) {
  const std::string src = "void f(pmem::Pool& p) { p.fence(); pool()->flush(x, 8); }\n";
  auto v = run_raw_persist("src/ds/metadata_zone.cc", src);
  EXPECT_EQ(v.size(), 2u);
}

TEST(LintRawPersist, ColdPathFilesAreExempt) {
  const std::string src = "void f(pmem::Pool* p) { p->persist(a, 64); p->fence(); }\n";
  EXPECT_TRUE(run_raw_persist("src/pmem/pool.cc", src).empty());
  EXPECT_TRUE(run_raw_persist("src/alloc/slab.cc", src).empty());
  EXPECT_TRUE(run_raw_persist("tools/pmemlint.cc", src).empty());
}

TEST(LintRawPersist, PersistBulkAndBatchApiAreSanctioned) {
  const std::string src =
      "void f(pmem::Pool* p) {\n"
      "  p->persist_bulk(a, 4096);\n"          // the bulk-pass primitive
      "  pmem::PersistBatch b(p);\n"
      "  b.add(a, 64);\n"
      "  b.commit();\n"
      "}\n";
  EXPECT_TRUE(run_raw_persist("src/dipper/engine.cc", src).empty());
}

TEST(LintRawPersist, AnnotationOnSameOrPreviousLineEscapes) {
  const std::string same =
      "void f(pmem::Pool* p) {\n"
      "  p->persist(a, 64);  // lint: allow-raw-persist recovery root install\n"
      "}\n";
  EXPECT_TRUE(run_raw_persist("src/dstore/dstore.cc", same).empty());
  const std::string prev =
      "void f(pmem::Pool* p) {\n"
      "  // lint: allow-raw-persist cold path, single ordering point IS the protocol\n"
      "  p->fence();\n"
      "}\n";
  EXPECT_TRUE(run_raw_persist("src/dstore/dstore.cc", prev).empty());
  const std::string too_far =
      "void f(pmem::Pool* p) {\n"
      "  // lint: allow-raw-persist two lines up does not count\n"
      "  int x = 0;\n"
      "  p->fence();\n"
      "}\n";
  EXPECT_EQ(run_raw_persist("src/dstore/dstore.cc", too_far).size(), 1u);
}

TEST(LintRawPersist, NonMemberUsesAreIgnored) {
  const std::string src =
      "void fence();\n"                      // free-function declaration
      "void g() { fence(); }\n"              // free call
      "int flush = 0;\n"                     // variable, not a call
      "void h(B* b) { b->flushed(); }\n"     // different identifier
      "// p->persist(a, 64) in a comment\n"  // stripped before matching
      "const char* s = \"p->fence()\";\n";   // inside a string literal
  EXPECT_TRUE(run_raw_persist("src/dipper/log.cc", src).empty());
}

// ---- shared helper coverage ---------------------------------------------

TEST(LintHelpers, StripPreservesLineStructure) {
  const std::string src = "int a; // comment\n/* b\nc */ int d;\n\"str\\\"ing\"\n";
  std::string code = strip_comments_and_strings(src);
  EXPECT_EQ(std::count(code.begin(), code.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(code.find("comment"), std::string::npos);
  EXPECT_EQ(code.find("str"), std::string::npos);
  EXPECT_NE(code.find("int d"), std::string::npos);
}

TEST(LintHelpers, FindTokenRespectsIdentifierBoundaries) {
  std::string code = strip_comments_and_strings(
      "persist(x); my_persist(x); persist_nt(x); p->persist(y);");
  EXPECT_EQ(find_token(code, "persist").size(), 2u);  // bare + member only
  EXPECT_EQ(find_token(code, "persist_nt").size(), 1u);
}

TEST(LintHelpers, AnnotatedLooksAtSameAndPreviousLineOnly) {
  const std::string src = "// tag here\ncall();\nother();\n";
  size_t call_pos = src.find("call");
  size_t other_pos = src.find("other");
  EXPECT_TRUE(annotated(src, call_pos, "tag here"));
  EXPECT_FALSE(annotated(src, other_pos, "tag here"));
}

}  // namespace
}  // namespace dstore::lint
