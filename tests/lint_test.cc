// Unit tests for the linter's text-analysis core (tools/lint_rules.h),
// centered on the raw-persist rule: hot-path files must route per-op PMEM
// ordering through pmem::PersistBatch; raw persist/flush/fence member calls
// need a `lint: allow-raw-persist` annotation. Tests feed inline source
// strings so both directions (fires / stays quiet) are covered — the driver
// binary only ever lints whole translation units.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint_rules.h"

namespace dstore::lint {
namespace {

std::vector<Violation> run_raw_persist(const std::string& rel,
                                       const std::string& src) {
  std::vector<Violation> out;
  check_raw_persist(rel, src, strip_comments_and_strings(src), &out);
  // The rule scans token-by-token; order by line like the driver does.
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) { return a.line < b.line; });
  return out;
}

TEST(LintRawPersist, FlagsRawMemberCallsInHotPathFiles) {
  const std::string src =
      "void f(pmem::Pool* p, char* a) {\n"
      "  p->persist(a, 64);\n"
      "  p->flush(a, 64);\n"
      "  p->fence();\n"
      "  p->persist_nt(a, 128);\n"
      "  p->flush_nt(a, 128);\n"
      "}\n";
  auto v = run_raw_persist("src/dipper/log.cc", src);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0].check, "raw-persist");
  EXPECT_EQ(v[0].line, 2u);
  EXPECT_EQ(v[2].line, 4u);
}

TEST(LintRawPersist, DotCallsAndChainedReceiversAreCaught) {
  const std::string src = "void f(pmem::Pool& p) { p.fence(); pool()->flush(x, 8); }\n";
  auto v = run_raw_persist("src/ds/metadata_zone.cc", src);
  EXPECT_EQ(v.size(), 2u);
}

TEST(LintRawPersist, ColdPathFilesAreExempt) {
  const std::string src = "void f(pmem::Pool* p) { p->persist(a, 64); p->fence(); }\n";
  EXPECT_TRUE(run_raw_persist("src/pmem/pool.cc", src).empty());
  EXPECT_TRUE(run_raw_persist("src/alloc/slab.cc", src).empty());
  EXPECT_TRUE(run_raw_persist("tools/pmemlint.cc", src).empty());
}

TEST(LintRawPersist, PersistBulkAndBatchApiAreSanctioned) {
  const std::string src =
      "void f(pmem::Pool* p) {\n"
      "  p->persist_bulk(a, 4096);\n"          // the bulk-pass primitive
      "  pmem::PersistBatch b(p);\n"
      "  b.add(a, 64);\n"
      "  b.commit();\n"
      "}\n";
  EXPECT_TRUE(run_raw_persist("src/dipper/engine.cc", src).empty());
}

TEST(LintRawPersist, AnnotationOnSameOrPreviousLineEscapes) {
  const std::string same =
      "void f(pmem::Pool* p) {\n"
      "  p->persist(a, 64);  // lint: allow-raw-persist recovery root install\n"
      "}\n";
  EXPECT_TRUE(run_raw_persist("src/dstore/dstore.cc", same).empty());
  const std::string prev =
      "void f(pmem::Pool* p) {\n"
      "  // lint: allow-raw-persist cold path, single ordering point IS the protocol\n"
      "  p->fence();\n"
      "}\n";
  EXPECT_TRUE(run_raw_persist("src/dstore/dstore.cc", prev).empty());
  const std::string too_far =
      "void f(pmem::Pool* p) {\n"
      "  // lint: allow-raw-persist two lines up does not count\n"
      "  int x = 0;\n"
      "  p->fence();\n"
      "}\n";
  EXPECT_EQ(run_raw_persist("src/dstore/dstore.cc", too_far).size(), 1u);
}

TEST(LintRawPersist, NonMemberUsesAreIgnored) {
  const std::string src =
      "void fence();\n"                      // free-function declaration
      "void g() { fence(); }\n"              // free call
      "int flush = 0;\n"                     // variable, not a call
      "void h(B* b) { b->flushed(); }\n"     // different identifier
      "// p->persist(a, 64) in a comment\n"  // stripped before matching
      "const char* s = \"p->fence()\";\n";   // inside a string literal
  EXPECT_TRUE(run_raw_persist("src/dipper/log.cc", src).empty());
}

// ---- status-code rule ----------------------------------------------------

std::vector<Violation> run_status_codes(const std::string& rel,
                                        const std::string& src) {
  std::vector<Violation> out;
  check_status_codes(rel, src, strip_comments_and_strings(src), &out);
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) { return a.line < b.line; });
  return out;
}

TEST(LintStatusCode, FlagsHandWrittenDefines) {
  const std::string src =
      "#define DS_ENOSPC -3\n"
      "#  define DS_OK 0\n"
      "#define DS_EWHATEVER -42\n";
  auto v = run_status_codes("src/dstore/dstore_c.h", src);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].check, "status-code");
  EXPECT_EQ(v[0].line, 1u);
  EXPECT_EQ(v[1].line, 2u);
}

TEST(LintStatusCode, NonCodeDefinesAreIgnored) {
  const std::string src =
      "#define DS_METRICS_JSON 0\n"      // DS_M..., not a code
      "#define DS_DEPRECATED(m)\n"       // DS_D...
      "#define DS_O_READ 0x1u\n"         // DS_O_..., lowercase boundary
      "#define DSTORE_FAULT_POINT(x)\n"  // different prefix entirely
      "#define MY_DS_EINVAL -4\n";       // not at identifier start... but
  // MY_DS_EINVAL is the full defined name and does not equal DS_E*, so quiet.
  EXPECT_TRUE(run_status_codes("src/dstore/dstore_c.h", src).empty());
}

TEST(LintStatusCode, FlagsHandMappingsBetweenCodeAndCEnum) {
  const std::string src =
      "int to_errno(Status s) {\n"
      "  switch (s.code()) {\n"
      "    case Code::kNotFound: return DS_ENOTFOUND;\n"
      "    case Code::kOutOfSpace: return DS_ENOSPC;\n"
      "    default: return 0;\n"
      "  }\n"
      "}\n";
  auto v = run_status_codes("src/dstore/dstore_c.cc", src);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].line, 3u);
  EXPECT_EQ(v[1].line, 4u);
}

TEST(LintStatusCode, SeparateUsesOnDistinctLinesAreFine) {
  const std::string src =
      "Status s = Status(Code::kNotFound);\n"
      "int e = DS_ENOTFOUND;\n"                    // not on the same line
      "int f = errno_of(Code::kNotFound);\n"       // the sanctioned mapping
      "srecord_errno(s, DS_EINVAL, \"bad\");\n";   // C enum alone
  EXPECT_TRUE(run_status_codes("src/dstore/dstore_c.cc", src).empty());
}

TEST(LintStatusCode, TableItselfAndAnnotationsAreExempt) {
  const std::string table = "#define DS_ENOSPC -3\n";
  EXPECT_TRUE(run_status_codes("src/common/status_codes.h", table).empty());
  const std::string annotated_src =
      "// lint: allow-status-code generated-from-table test fixture\n"
      "#define DS_EFAKE -99\n"
      "case Code::kBusy: return DS_EBUSY;  // lint: allow-status-code why\n";
  EXPECT_TRUE(run_status_codes("src/dstore/other.cc", annotated_src).empty());
}

// ---- shared helper coverage ---------------------------------------------

TEST(LintHelpers, StripPreservesLineStructure) {
  const std::string src = "int a; // comment\n/* b\nc */ int d;\n\"str\\\"ing\"\n";
  std::string code = strip_comments_and_strings(src);
  EXPECT_EQ(std::count(code.begin(), code.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(code.find("comment"), std::string::npos);
  EXPECT_EQ(code.find("str"), std::string::npos);
  EXPECT_NE(code.find("int d"), std::string::npos);
}

TEST(LintHelpers, FindTokenRespectsIdentifierBoundaries) {
  std::string code = strip_comments_and_strings(
      "persist(x); my_persist(x); persist_nt(x); p->persist(y);");
  EXPECT_EQ(find_token(code, "persist").size(), 2u);  // bare + member only
  EXPECT_EQ(find_token(code, "persist_nt").size(), 1u);
}

TEST(LintHelpers, AnnotatedLooksAtSameAndPreviousLineOnly) {
  const std::string src = "// tag here\ncall();\nother();\n";
  size_t call_pos = src.find("call");
  size_t other_pos = src.find("other");
  EXPECT_TRUE(annotated(src, call_pos, "tag here"));
  EXPECT_FALSE(annotated(src, other_pos, "tag here"));
}

}  // namespace
}  // namespace dstore::lint
