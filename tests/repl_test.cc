// Tests for primary-backup replication (DESIGN.md §16): the durable
// MetaStore (alternating CRC-sealed records, torn-write fallback), the
// DistPlan grammar, the epoch fence at the Node level (a stale primary's
// appends must bounce — the follower-divergence oracle), and whole-fleet
// scenarios through the DistRig: fault-free convergence, deterministic
// failover after killing the primary, partition-during-promotion, and
// double failover. A final smoke drives a 3-node fleet over real TCP —
// net::Server dispatch + TcpPeer — and fails the primary under the client.
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "dipper/log.h"
#include "dstore/sharded.h"
#include "fault/dist_rig.h"
#include "fault/fault.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "pmem/pool.h"
#include "repl/mem_hub.h"
#include "repl/repl.h"
#include "repl/tcp_peer.h"

namespace dstore::repl {
namespace {

// ---------------------------------------------------------------------------
// MetaStore
// ---------------------------------------------------------------------------

TEST(ReplMeta, PersistsAcrossReattachAndSurvivesTornWrites) {
  pmem::Pool pool(4096, pmem::Pool::Mode::kDirect);
  MetaStore meta;
  meta.attach(&pool, 256);

  MetaStore::State a;
  a.epoch = 3;
  a.voted_epoch = 3;
  a.voted_for = 2;
  a.applied_seq = 41;
  a.applied_epoch = 2;
  meta.persist(a);  // version 1 -> record slot 1
  MetaStore::State b = a;
  b.epoch = 4;
  b.applied_seq = 42;
  b.flags = MetaStore::kFlagWasPrimary;
  meta.persist(b);  // version 2 -> record slot 0

  MetaStore fresh;
  fresh.attach(&pool, 256);
  MetaStore::State got = fresh.load();
  EXPECT_EQ(got.epoch, 4u);
  EXPECT_EQ(got.applied_seq, 42u);
  EXPECT_EQ(got.flags, MetaStore::kFlagWasPrimary);

  // Tear the newest record (version 2 lives in slot 0): its CRC fails and
  // load falls back to the previous state — never garbage, never zero.
  pool.base()[256 + 8] ^= 0x5a;
  MetaStore after_tear;
  after_tear.attach(&pool, 256);
  got = after_tear.load();
  EXPECT_EQ(got.epoch, 3u);
  EXPECT_EQ(got.applied_seq, 41u);
  EXPECT_EQ(got.voted_for, 2u);
  EXPECT_EQ(got.flags, 0u);

  // Both records torn: a genuinely fresh node.
  pool.base()[256 + 64 + 8] ^= 0x5a;
  MetaStore wiped;
  wiped.attach(&pool, 256);
  got = wiped.load();
  EXPECT_EQ(got.epoch, 0u);
  EXPECT_EQ(got.applied_seq, 0u);
}

// ---------------------------------------------------------------------------
// DistPlan grammar
// ---------------------------------------------------------------------------

TEST(DistPlanGrammar, RoundTripsThroughToString) {
  const char* text =
      "seed=7;nodes=3;n1/pmem.fence@9:crash;part@12-20=1;part@3-5=2,3;kill@24=0";
  auto r = fault::DistPlan::parse(text);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const fault::DistPlan& p = r.value();
  EXPECT_EQ(p.seed, 7u);
  EXPECT_EQ(p.nodes, 3);
  ASSERT_EQ(p.faults.size(), 1u);
  EXPECT_EQ(p.faults[0].node, 1);
  EXPECT_EQ(p.faults[0].spec.point, "pmem.fence");
  ASSERT_EQ(p.partitions.size(), 2u);
  EXPECT_EQ(p.partitions[0].at, 12u);
  EXPECT_EQ(p.partitions[0].heal, 20u);
  ASSERT_EQ(p.partitions[1].group.size(), 2u);
  ASSERT_EQ(p.kills.size(), 1u);
  EXPECT_EQ(p.kills[0].node, 0);

  auto again = fault::DistPlan::parse(p.to_string());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().to_string(), p.to_string());
}

TEST(DistPlanGrammar, RejectsMalformedTokens) {
  const char* bad[] = {
      "nodes=1",              // below the 2-node floor
      "nodes=99",             // above the ceiling
      "seed=x",               // non-numeric
      "n5/pmem.fence@1:crash",  // fault index out of range (default 3 nodes)
      "kill@4=7",             // kill index out of range
      "part@9-3=1",           // heal before split
      "part@3-9=",            // empty group
      "part@3-9=0",           // ids are 1-based
      "part@3-9=4",           // id beyond the fleet
      "n0pmem.fence@1:crash",  // missing slash
      "bogus@1",              // unknown token
  };
  for (const char* t : bad) {
    EXPECT_FALSE(fault::DistPlan::parse(t).is_ok()) << "accepted: " << t;
  }
}

// ---------------------------------------------------------------------------
// Node-level epoch fence (the follower-divergence oracle)
// ---------------------------------------------------------------------------

// A lone follower with a real store behind it; appends arrive through the
// same handler the server dispatches to.
struct FollowerFixture {
  std::unique_ptr<Node> node;
  std::unique_ptr<ShardedStore> store;

  FollowerFixture() {
    NodeConfig ncfg;
    ncfg.node_id = 2;
    ncfg.initial_primary = 1;
    node = std::make_unique<Node>(ncfg);
    ShardedConfig scfg;
    scfg.num_shards = 1;
    scfg.shard.max_objects = 64;
    scfg.shard.num_blocks = 512;
    scfg.shard.engine.log_slots = 64;
    scfg.repl_sink = node.get();
    auto r = ShardedStore::create(scfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    node->attach_store(store.get());
  }

  // An unlogged put entry (pure overwrite: no slot image to authenticate).
  net::ReplAck append(uint64_t epoch, uint64_t seq, std::string_view key,
                      std::string_view value) {
    net::ReplEntryWire w;
    w.epoch = epoch;
    w.seq = seq;
    w.entry_epoch = epoch;
    w.op = (uint8_t)dipper::OpType::kPut;
    w.eflags = net::ReplEntryWire::kUnlogged;
    w.key = key;
    w.value = value;
    w.value_crc = crc32c(value.data(), value.size());
    return node->handle_append(w);
  }

  std::string read(std::string_view key) {
    char buf[256];
    auto r = node->get(key, buf, sizeof(buf));
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return std::string(buf, r.is_ok() ? r.value() : 0);
  }
};

TEST(ReplFencing, StaleEpochAppendIsRejectedAndNeverApplied) {
  FollowerFixture fx;
  ASSERT_EQ(fx.node->role(), Role::kFollower);
  ASSERT_EQ(fx.node->epoch(), 1u);

  net::ReplAck a = fx.append(1, 1, "k", "from-epoch-1");
  EXPECT_EQ(a.accepted, 1u);
  EXPECT_EQ(a.applied_seq, 1u);
  EXPECT_EQ(fx.read("k"), "from-epoch-1");

  // A new primary announces epoch 3 by heartbeat; the follower adopts it.
  net::Heartbeat hb;
  hb.epoch = 3;
  hb.node_id = 9;
  hb.commit_seq = 1;
  EXPECT_EQ(fx.node->handle_heartbeat(hb).accepted, 1u);
  EXPECT_EQ(fx.node->epoch(), 3u);

  // The divergence oracle: the fenced-off old primary keeps streaming its
  // forked history. Every append must bounce with the higher epoch — and
  // the store must still hold exactly the accepted value.
  net::ReplAck stale = fx.append(1, 2, "k", "forked-by-stale-primary");
  EXPECT_EQ(stale.accepted, 0u);
  EXPECT_EQ(stale.epoch, 3u);  // the rejection teaches it the new epoch
  EXPECT_EQ(fx.node->applied_seq(), 1u);
  EXPECT_EQ(fx.read("k"), "from-epoch-1");

  // The legitimate epoch-3 stream continues where the follower left off.
  net::ReplAck next = fx.append(3, 2, "k", "from-epoch-3");
  EXPECT_EQ(next.accepted, 1u);
  EXPECT_EQ(fx.read("k"), "from-epoch-3");

  // Gaps are rejected too (log matching, not blind application).
  net::ReplAck gap = fx.append(3, 9, "k", "gapped");
  EXPECT_EQ(gap.accepted, 0u);
  EXPECT_EQ(gap.applied_seq, 2u);

  // Duplicates after a retry ack idempotently.
  net::ReplAck dup = fx.append(3, 2, "k", "from-epoch-3");
  EXPECT_EQ(dup.accepted, 1u);
  EXPECT_EQ(fx.node->applied_seq(), 2u);
}

TEST(ReplFencing, CorruptValueCrcIsRejected) {
  FollowerFixture fx;
  net::ReplEntryWire w;
  w.epoch = 1;
  w.seq = 1;
  w.entry_epoch = 1;
  w.op = (uint8_t)dipper::OpType::kPut;
  w.eflags = net::ReplEntryWire::kUnlogged;
  w.key = "k";
  w.value = "payload";
  w.value_crc = crc32c("payload", 7) ^ 1;  // one bit off
  net::ReplAck a = fx.node->handle_append(w);
  EXPECT_EQ(a.accepted, 0u);
  EXPECT_EQ(fx.node->applied_seq(), 0u);
}

TEST(ReplFencing, StaleVoteIsDeniedHigherEpochAdopted) {
  FollowerFixture fx;
  ASSERT_EQ(fx.append(1, 1, "k", "v").accepted, 1u);

  // A candidate at a lower replicated position must be denied even though
  // its epoch is newer — electing it would lose the acked write.
  net::PromoteReq req;
  req.kind = net::PromoteReq::kVote;
  req.epoch = 2;
  req.node_id = 3;
  req.seq = 0;  // behind our applied_seq of 1
  req.seq_epoch = 0;
  net::PromoteResp r = fx.node->handle_promote(req);
  EXPECT_EQ(r.granted, 0u);
  EXPECT_EQ(fx.node->epoch(), 2u);  // the epoch still advances

  // An equally-caught-up candidate with a higher id gets the vote.
  req.epoch = 3;
  req.seq = 1;
  req.seq_epoch = 1;
  r = fx.node->handle_promote(req);
  EXPECT_EQ(r.granted, 1u);

  // Same epoch, different candidate: no double vote.
  req.node_id = 7;
  r = fx.node->handle_promote(req);
  EXPECT_EQ(r.granted, 0u);
}

// ---------------------------------------------------------------------------
// DistRig fleet scenarios
// ---------------------------------------------------------------------------

fault::DistPlan plan_of(const std::string& text) {
  auto r = fault::DistPlan::parse(text);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.value();
}

TEST(DistRigFleet, FaultFreeRunIsFullyAckedAndConverged) {
  fault::DistRig rig;
  Status s = rig.run(fault::DistPlan{});
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  const auto& st = rig.stats();
  EXPECT_EQ(st.acked, fault::DistRigOptions{}.ops);
  EXPECT_EQ(st.ambiguous, 0u);
  EXPECT_EQ(st.unavailable, 0u);
  EXPECT_EQ(st.crashes, 0u);
  EXPECT_EQ(st.final_primary, 1u);  // nobody ever campaigned
  EXPECT_EQ(st.final_epoch, 1u);
}

TEST(DistRigFleet, KillingThePrimaryFailsOverToTheHighestId) {
  fault::DistRig rig;
  Status s = rig.run(plan_of("nodes=3;kill@5=0"));
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  const auto& st = rig.stats();
  // Deterministic failover: both followers sit at the same replicated
  // position, so the candidacy stagger hands the election to node 3.
  EXPECT_EQ(st.final_primary, 3u);
  EXPECT_GE(st.final_epoch, 2u);
  EXPECT_EQ(st.crashes, 1u);
  EXPECT_GT(st.acked, 0u);
}

TEST(DistRigFleet, PartitionDuringPromotionFencesTheOldPrimary) {
  fault::DistRig rig;
  // Isolate the primary past the election timeout: the majority side
  // promotes node 3; the old primary keeps accepting writes it can never
  // commit (they surface as ambiguous), then gets fenced at the heal and
  // resyncs to the new history.
  Status s = rig.run(plan_of("nodes=3;part@4-14=1"));
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  const auto& st = rig.stats();
  EXPECT_EQ(st.final_primary, 3u);
  EXPECT_GE(st.final_epoch, 2u);
  EXPECT_GT(st.acked, 0u);
}

TEST(DistRigFleet, DoubleFailoverStillServesEveryAckedWrite) {
  fault::DistRig rig;
  // Kill the seed primary, then kill its successor (node 3 wins the first
  // election): node 2 — the only node that followed both reigns — must win
  // the final election, or acked writes from the second reign would vanish.
  Status s = rig.run(plan_of("nodes=3;kill@4=0;kill@14=2"));
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  const auto& st = rig.stats();
  EXPECT_EQ(st.final_primary, 2u);
  EXPECT_GE(st.final_epoch, 3u);
  EXPECT_EQ(st.crashes, 2u);
}

TEST(DistRigFleet, FollowerIsolationNeverLosesAnAckedWrite) {
  fault::DistRig rig;
  // Quorum survives the window (primary + node 3), so writes keep acking.
  // The isolated follower's election timeout fires just before the heal and
  // bumps its epoch; with no pre-vote round, that dethrones the primary at
  // the heal. The re-election must land on the node with the highest
  // decided position — the old primary itself, whose floor includes the
  // entry in flight at the dethrone — never the follower that sat out the
  // acked writes.
  Status s = rig.run(plan_of("nodes=3;part@6-12=2"));
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  const auto& st = rig.stats();
  EXPECT_EQ(st.final_primary, 1u);
  EXPECT_GE(st.acked, fault::DistRigOptions{}.ops - 2);
  EXPECT_EQ(st.unavailable, 0u);
}

TEST(DistRigFleet, FiveNodeFleetSurvivesAKill) {
  fault::DistRigOptions opt;
  opt.nodes = 5;
  fault::DistRig rig(opt);
  Status s = rig.run(plan_of("nodes=5;kill@8=0"));
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_EQ(rig.stats().final_primary, 5u);  // stagger: highest id first
}

// ---------------------------------------------------------------------------
// Resync serving: the quorum watermark vs. snapshot chunks, byte budgets
// ---------------------------------------------------------------------------

// A peer link to a node that is down: every RPC fails fast.
struct DownPeer : PeerRpc {
  Result<net::ReplAck> append(const net::ReplEntryWire&) override {
    return Status::io_error("peer down");
  }
  Result<net::ReplSubscribeResult> subscribe(const net::ReplHello&) override {
    return Status::io_error("peer down");
  }
  Result<net::SnapChunk> snap_pull(const net::ReplHello&, std::string*) override {
    return Status::io_error("peer down");
  }
  Result<net::ReplAck> heartbeat(const net::Heartbeat&) override {
    return Status::io_error("peer down");
  }
  Result<net::PromoteResp> promote(const net::PromoteReq&) override {
    return Status::io_error("peer down");
  }
};

// A primary whose followers are all down: writes commit locally (and fail
// Status::busy for lack of a quorum), then a follower comes back through
// the resync path and we drive handle_subscribe / handle_snap_pull directly.
struct PrimaryFixture {
  std::unique_ptr<Node> node;
  std::unique_ptr<ShardedStore> store;
  DownPeer down;

  PrimaryFixture() {
    NodeConfig ncfg;
    ncfg.node_id = 1;
    ncfg.start_as_primary = true;
    ncfg.ack_timeout_ms = 0;          // single non-blocking quorum attempt
    ncfg.snapshot_chunk_bytes = 256;  // tiny budget: force multi-chunk values
    node = std::make_unique<Node>(ncfg);
    node->add_peer(2, &down);
    node->add_peer(3, &down);
    ShardedConfig scfg;
    scfg.num_shards = 1;
    scfg.shard.max_objects = 64;
    scfg.shard.num_blocks = 512;
    scfg.shard.engine.log_slots = 64;
    scfg.repl_sink = node.get();
    auto r = ShardedStore::create(scfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    node->attach_store(store.get());
  }
};

TEST(ReplResync, ServingSnapshotChunksNeverAdvancesTheQuorumWatermark) {
  PrimaryFixture fx;
  std::map<std::string, std::string> expect;
  // One value much larger than the 256-byte chunk budget: it must stream
  // as continuation pieces rather than one oversized (parser-poisoning)
  // frame body.
  expect["big"] = std::string(1000, 'B');
  for (int i = 0; i < 6; i++)
    expect["k" + std::to_string(i)] = "v" + std::to_string(i);
  uint64_t writes = 0;
  for (auto& [k, v] : expect) {
    Status s = fx.node->put(k, v.data(), v.size());
    EXPECT_EQ(s.code(), Code::kBusy) << s.to_string();  // no quorum reachable
    writes++;
  }
  EXPECT_EQ(fx.node->commit_seq(), 0u);

  // Node 2 reports back with a divergent anchor: the primary parks a
  // snapshot and answers kResync.
  net::ReplHello h;
  h.kind = net::ReplHello::kSubscribe;
  h.epoch = fx.node->epoch();
  h.node_id = 2;
  h.seq = writes + 1;
  h.last_epoch = 999;  // does not match our history at writes
  net::ReplSubscribeResult sub = fx.node->handle_subscribe(h);
  ASSERT_EQ(sub.result, net::ReplSubscribeResult::kResync);
  EXPECT_EQ(sub.base_seq, writes);

  // Pull every chunk. Each encoded body must respect the byte budget, and
  // pieces must reassemble (by offset) into exactly the store's contents.
  std::map<std::string, std::string> got;
  net::ReplHello pull;
  pull.kind = net::ReplHello::kSnapPull;
  pull.node_id = 2;
  pull.seq = 0;
  int chunks = 0;
  for (; chunks < 200; chunks++) {
    std::string body = fx.node->handle_snap_pull(pull);
    ASSERT_FALSE(body.empty());
    EXPECT_LE(body.size(), 256u) << "chunk exceeds snapshot_chunk_bytes";
    net::SnapChunk c;
    ASSERT_TRUE(net::parse_snap_chunk(body, &c));
    for (const auto& it : c.items) {
      std::string& dst = got[std::string(it.key)];
      ASSERT_EQ(it.offset, dst.size()) << "continuation piece out of order";
      dst.append(it.value);
    }
    pull.seq = c.next_cursor;
    if (c.done) break;
  }
  ASSERT_LT(chunks, 200) << "snap pull never reported done";
  EXPECT_GT(chunks, 1) << "the 1000-byte value should span several chunks";
  EXPECT_EQ(got, expect);

  // The teeth of the fix: the primary SERVED the whole snapshot, but the
  // follower never attested an applied position — the quorum watermark
  // must still be zero, or a write durable only here would count as
  // replicated.
  EXPECT_EQ(fx.node->commit_seq(), 0u);

  // Only the follower's re-subscribe — anchored at the base it installed —
  // advances its ack and, with it, the watermark.
  h.seq = sub.base_seq + 1;
  h.last_epoch = sub.base_epoch;
  net::ReplSubscribeResult sub2 = fx.node->handle_subscribe(h);
  ASSERT_EQ(sub2.result, net::ReplSubscribeResult::kStream);
  EXPECT_EQ(fx.node->commit_seq(), writes);
}

// ---------------------------------------------------------------------------
// Concurrent writers racing for the quorum watermark
// ---------------------------------------------------------------------------

// Regression: await_replication used to sample commit_seq_ once after one
// ship attempt, so a writer whose ack was carried by ANOTHER writer's ship
// (the per-peer shipping slot is exclusive) failed Status::busy even though
// its entry replicated fine. Every concurrent write must ack.
TEST(ReplConcurrency, ConcurrentWritersAllReachQuorum) {
  auto make_store = [](Node* n) {
    ShardedConfig scfg;
    scfg.num_shards = 1;
    scfg.shard.max_objects = 256;
    scfg.shard.num_blocks = 2048;
    scfg.shard.engine.log_slots = 256;
    scfg.repl_sink = n;
    auto r = ShardedStore::create(scfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return std::move(r).value();
  };
  NodeConfig c1;
  c1.node_id = 1;
  c1.start_as_primary = true;
  auto n1 = std::make_unique<Node>(c1);
  auto s1 = make_store(n1.get());
  n1->attach_store(s1.get());
  NodeConfig c2;
  c2.node_id = 2;
  c2.initial_primary = 1;
  auto n2 = std::make_unique<Node>(c2);
  auto s2 = make_store(n2.get());
  n2->attach_store(s2.get());

  MemHub hub;
  hub.add_node(1, n1.get(), nullptr);
  hub.add_node(2, n2.get(), nullptr);
  auto p12 = hub.peer(1, 2);
  auto p21 = hub.peer(2, 1);
  n1->add_peer(2, p12.get());
  n2->add_peer(1, p21.get());
  n2->on_tick();  // follower subscribes to the seed primary
  ASSERT_EQ(n1->commit_seq(), 0u);

  constexpr int kThreads = 4, kPerThread = 25;
  std::vector<Status> results(kThreads * kPerThread, Status::ok());
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
        std::string val = "v" + std::to_string(t * 1000 + i);
        results[t * kPerThread + i] =
            n1->put(key, val.data(), val.size());
      }
    });
  }
  for (auto& w : writers) w.join();
  for (size_t i = 0; i < results.size(); i++)
    EXPECT_TRUE(results[i].is_ok())
        << "writer " << i << ": " << results[i].to_string();
  EXPECT_EQ(n1->commit_seq(), (uint64_t)(kThreads * kPerThread));
  EXPECT_EQ(n2->applied_seq(), (uint64_t)(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// TCP smoke: real servers, TcpPeer links, failover under a live client
// ---------------------------------------------------------------------------

struct TcpNode {
  std::unique_ptr<Node> node;
  std::unique_ptr<ShardedStore> store;
  std::unique_ptr<net::Server> server;
  std::vector<std::unique_ptr<PeerRpc>> links;

  TcpNode(uint64_t id, bool primary) {
    NodeConfig ncfg;
    ncfg.node_id = id;
    ncfg.start_as_primary = primary;
    ncfg.initial_primary = primary ? 0 : 1;
    node = std::make_unique<Node>(ncfg);
    ShardedConfig scfg;
    scfg.num_shards = 1;
    scfg.shard.max_objects = 64;
    scfg.shard.num_blocks = 512;
    scfg.shard.engine.log_slots = 64;
    scfg.repl_sink = node.get();
    auto r = ShardedStore::create(scfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    node->attach_store(store.get());
    auto s = net::Server::start(store.get(), net::ServerConfig{}, nullptr, node.get());
    EXPECT_TRUE(s.is_ok()) << s.status().to_string();
    server = std::move(s).value();
  }
};

TEST(ReplTcpSmoke, FailoverUnderALiveClient) {
  // Dead-peer calls must fail fast, not sit in reconnect backoff: the test
  // pumps ticks synchronously.
  net::ClientConfig link_cfg;
  link_cfg.max_reconnect_attempts = 1;
  link_cfg.reconnect_backoff_ms = 1;
  link_cfg.reconnect_backoff_max_ms = 2;
  link_cfg.call_timeout_ms = 2000;

  std::vector<std::unique_ptr<TcpNode>> fleet;
  for (uint64_t id = 1; id <= 3; id++)
    fleet.push_back(std::make_unique<TcpNode>(id, id == 1));
  for (auto& a : fleet) {
    for (auto& b : fleet) {
      if (a->node->node_id() == b->node->node_id()) continue;
      auto link = std::make_unique<TcpPeer>(
          "127.0.0.1:" + std::to_string(b->server->port()), link_cfg);
      a->node->add_peer(b->node->node_id(), link.get());
      a->links.push_back(std::move(link));
    }
  }
  auto pump = [&](int ticks) {
    for (int t = 0; t < ticks; t++)
      for (auto& n : fleet)
        if (n->server != nullptr) n->node->on_tick();
  };
  pump(2);  // followers subscribe to the seed primary

  // Writes through the primary's server ack only after quorum replication,
  // so the follower can serve them immediately.
  auto c1 = net::Client::connect("127.0.0.1", fleet[0]->server->port());
  ASSERT_TRUE(c1.is_ok());
  auto ns = c1.value()->open_namespace("t");
  ASSERT_TRUE(ns.is_ok()) << ns.status().to_string();
  for (int i = 0; i < 10; i++) {
    std::string key = "k" + std::to_string(i);
    std::string val = "v" + std::to_string(i * 7);
    ASSERT_TRUE(c1.value()->put(ns.value().ns_id, key, val.data(), val.size()).is_ok());
  }

  auto c2 = net::Client::connect("127.0.0.1", fleet[1]->server->port());
  ASSERT_TRUE(c2.is_ok());
  auto ns2 = c2.value()->open_namespace("t");
  ASSERT_TRUE(ns2.is_ok());
  EXPECT_EQ(c2.value()->get(ns2.value().ns_id, "k3").value(), "v21");
  // Followers are READ_ONLY: the write gate bounces it with a leader hint.
  Status ro = c2.value()->put(ns2.value().ns_id, "x", "y", 1);
  EXPECT_EQ(ro.code(), Code::kReadOnly) << ro.to_string();

  // Fail the primary. The highest-id follower campaigns first and wins with
  // the other follower's vote; bounded ticks, not wall-clock luck.
  fleet[0]->server->stop();
  fleet[0]->server.reset();
  int ticks_to_failover = 0;
  while (fleet[2]->node->role() != Role::kPrimary && ticks_to_failover < 64) {
    pump(1);
    ticks_to_failover++;
  }
  ASSERT_EQ(fleet[2]->node->role(), Role::kPrimary) << "no failover within 64 ticks";
  EXPECT_GE(fleet[2]->node->epoch(), 2u);
  pump(2);  // the claim + heartbeats re-point node 2 at the winner

  // The promoted follower serves every acked write and accepts new ones.
  auto c3 = net::Client::connect("127.0.0.1", fleet[2]->server->port());
  ASSERT_TRUE(c3.is_ok());
  auto ns3 = c3.value()->open_namespace("t");
  ASSERT_TRUE(ns3.is_ok());
  for (int i = 0; i < 10; i++) {
    auto got = c3.value()->get(ns3.value().ns_id, "k" + std::to_string(i));
    ASSERT_TRUE(got.is_ok()) << "acked write lost after failover: k" << i;
    EXPECT_EQ(got.value(), "v" + std::to_string(i * 7));
  }
  ASSERT_TRUE(c3.value()->put(ns3.value().ns_id, "post", "failover", 8).is_ok());
  pump(1);
  EXPECT_EQ(c2.value()->get(ns2.value().ns_id, "post").value(), "failover");
}

}  // namespace
}  // namespace dstore::repl
