// End-to-end data-integrity tests (DESIGN.md §11).
//
// Every persistence tier carries checksums — DIPPER log slots (slot/LSN-
// seeded CRC), metadata-zone entries (index-seeded CRC), SSD pages (the
// per-page sidecar), whole objects (content CRC) — and these tests inject
// silent corruption into each tier and hold the store to the containment
// contract: corruption is *detected on read* (never silently returned),
// *repaired* from the PMEM log copy when one exists, *quarantined* with
// Status::corruption when it doesn't, and the dstore_integrity_* counters
// reconcile with what was injected. The sweep test mirrors the exhaustive
// crash sweep: every enumerated ssd.write gets a bit-flip and a misdirected
// write, and no schedule may ever produce a silently wrong read.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dipper/log.h"
#include "dstore/dstore.h"
#include "fault/crash_rig.h"
#include "fault/fault.h"
#include "pmem/pool.h"
#include "ssd/block_device.h"

namespace dstore::fault {
namespace {

struct Fixture {
  FaultInjector inj;
  DStoreConfig cfg;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<ssd::RamBlockDevice> device;
  std::unique_ptr<DStore> store;
  ds_ctx_t* ctx = nullptr;

  void build(bool repair_logging, const FaultPlan& plan = FaultPlan()) {
    cfg.max_objects = 16;
    cfg.num_blocks = 128;
    cfg.engine.log_slots = 32;
    cfg.engine.arena_bytes = 1 << 20;
    cfg.engine.background_checkpointing = false;
    cfg.repair_logging = repair_logging;
    pool = std::make_unique<pmem::Pool>(DStoreConfig::required_pool_bytes(cfg),
                                        pmem::Pool::Mode::kCrashSim);
    ssd::DeviceConfig dc;
    dc.num_blocks = cfg.num_blocks;
    device = std::make_unique<ssd::RamBlockDevice>(dc);
    device->set_fault_injector(&inj);
    inj.set_plan(plan);
    inj.disarm();
    auto s = DStore::create(pool.get(), device.get(), cfg);
    ASSERT_TRUE(s.is_ok()) << s.status().to_string();
    store = std::move(s).value();
    ctx = store->ds_init();
  }
  ~Fixture() {
    if (store != nullptr) store->ds_finalize(ctx);
  }

  Status put(const std::string& k, const std::string& v) {
    return store->oput(ctx, k, v.data(), v.size());
  }
  Result<std::string> get(const std::string& k) {
    std::vector<char> buf(8192);
    auto r = store->oget(ctx, k, buf.data(), buf.size());
    if (!r.is_ok()) return r.status();
    return std::string(buf.data(), r.value());
  }

  // Absolute media byte offset of `pattern`'s first occurrence, scanning
  // block by block through the (pre-corruption, checksum-clean) device.
  uint64_t find_on_media(const std::string& pattern) {
    const size_t bs = device->config().block_size();
    std::vector<char> buf(bs);
    for (uint64_t b = 0; b < cfg.num_blocks; b++) {
      if (!device->read(b, 0, buf.data(), bs).is_ok()) continue;
      std::string view(buf.data(), bs);
      size_t pos = view.find(pattern);
      if (pos != std::string::npos) return b * bs + pos;
    }
    ADD_FAILURE() << "pattern not found on media: " << pattern;
    return 0;
  }
};

// A value that is unique, compressib-proof (varied bytes), and block-sized
// enough to exercise the page sidecar.
// Every 7th byte is the tag itself and the rest are digits, so a 64-byte
// window of one tag's value can never match inside another tag's value at
// any shift — pattern-searching the media always lands in the right object.
std::string value_of(char tag, size_t len = 600) {
  std::string v(len, tag);
  for (size_t i = 0; i < len; i++) {
    v[i] = (i % 7 == 0) ? tag : char('0' + (unsigned)(tag + i) % 10);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Detection + quarantine (no log copy to heal from)
// ---------------------------------------------------------------------------

TEST(Integrity, BitFlipDetectedOnReadAndQuarantined) {
  Fixture f;
  f.build(/*repair_logging=*/false);
  const std::string v = value_of('q');
  ASSERT_TRUE(f.put("victim", v).is_ok());
  ASSERT_TRUE(f.put("bystander", value_of('b')).is_ok());

  uint64_t off = f.find_on_media(v.substr(0, 64));
  f.device->flip_media_bit(off + 17, 3);

  // Detected, not silently returned: the sidecar fails, repair finds no
  // usable log payload (logical logging only), the page is quarantined.
  auto r = f.get("victim");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kCorruption) << r.status().to_string();
  auto c = f.store->counters();
  EXPECT_GE(c.checksum_failures, 1u);
  EXPECT_EQ(c.repairs, 0u);
  EXPECT_GE(c.quarantined_pages, 1u);
  EXPECT_GE(f.store->bad_pages().count(), 1u);
  EXPECT_TRUE(f.store->bad_pages().contains(off / f.device->config().page_size));
  EXPECT_GE(f.device->stats().read_crc_failures.load(), 1u);

  // Containment: the rest of the store is unaffected, and the store did
  // not degrade to read-only (the metadata itself is intact).
  auto rb = f.get("bystander");
  ASSERT_TRUE(rb.is_ok());
  EXPECT_EQ(rb.value(), value_of('b'));
  EXPECT_FALSE(f.store->read_only());
  ASSERT_TRUE(f.put("still-writable", value_of('w')).is_ok());
}

TEST(Integrity, QuarantineSurvivesRecovery) {
  Fixture f;
  f.build(/*repair_logging=*/false);
  const std::string v = value_of('p');
  ASSERT_TRUE(f.put("victim", v).is_ok());
  uint64_t off = f.find_on_media(v.substr(0, 64));
  f.device->flip_media_bit(off + 1, 0);
  ASSERT_FALSE(f.get("victim").is_ok());
  uint64_t quarantined = f.store->bad_pages().count();
  ASSERT_GE(quarantined, 1u);

  // Reopen from the durable images: the bad-page table lives in a sealed
  // pmem region past the engine layout and must come back verbatim.
  f.store->ds_finalize(f.ctx);
  f.ctx = nullptr;
  f.store.reset();
  f.pool->crash();
  f.device->crash();
  auto r = DStore::recover(f.pool.get(), f.device.get(), f.cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  f.store = std::move(r).value();
  f.ctx = f.store->ds_init();
  EXPECT_EQ(f.store->bad_pages().count(), quarantined);
  EXPECT_TRUE(f.store->bad_pages().contains(off / f.device->config().page_size));
}

// ---------------------------------------------------------------------------
// Read-repair from the PMEM log copy (repair_logging keeps whole-object
// payloads in the DIPPER physical log)
// ---------------------------------------------------------------------------

TEST(Integrity, BitFlipRepairedFromLogCopy) {
  Fixture f;
  f.build(/*repair_logging=*/true);
  const std::string v = value_of('r');
  ASSERT_TRUE(f.put("victim", v).is_ok());

  uint64_t off = f.find_on_media(v.substr(0, 64));
  f.device->flip_media_bit(off + 100, 5);

  // The read detects the bad page, heals it from the log payload, and
  // returns the *correct* bytes — the repair is invisible to the caller.
  auto r = f.get("victim");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), v);
  auto c = f.store->counters();
  EXPECT_GE(c.checksum_failures, 1u);
  EXPECT_GE(c.repairs, 1u);
  EXPECT_EQ(c.quarantined_pages, 0u);
  EXPECT_EQ(f.store->bad_pages().count(), 0u);

  // The healed pages verify clean from then on.
  DStore::ScrubReport rep;
  EXPECT_TRUE(f.store->scrub_now(&rep).is_ok());
  EXPECT_EQ(rep.checksum_failures, 0u);
  auto again = f.get("victim");
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value(), v);
}

TEST(Integrity, CountersReconcileWithInjectedFaultCount) {
  Fixture f;
  f.build(/*repair_logging=*/true);
  std::map<std::string, std::string> oracle;
  for (char t : {'a', 'b', 'c', 'd'}) {
    std::string key(1, t);
    oracle[key] = value_of(t);
    ASSERT_TRUE(f.put(key, oracle[key]).is_ok());
  }
  // Exactly three independent single-bit flips, in three distinct objects.
  // (Locate all three offsets *before* flipping anything — the locator
  // scans via device reads, which would otherwise trip on earlier flips
  // and inflate the device-level failure counter.)
  const int kInjected = 3;
  uint64_t off_a = f.find_on_media(oracle["a"].substr(0, 64));
  uint64_t off_b = f.find_on_media(oracle["b"].substr(0, 64));
  uint64_t off_c = f.find_on_media(oracle["c"].substr(0, 64));
  f.device->flip_media_bit(off_a + 3, 1);
  f.device->flip_media_bit(off_b + 9, 6);
  f.device->flip_media_bit(off_c + 27, 2);

  for (auto& [k, v] : oracle) {
    auto r = f.get(k);
    ASSERT_TRUE(r.is_ok()) << k << ": " << r.status().to_string();
    EXPECT_EQ(r.value(), v) << k;
  }
  auto c = f.store->counters();
  EXPECT_EQ(c.checksum_failures, (uint64_t)kInjected);
  EXPECT_EQ(c.repairs, (uint64_t)kInjected);
  EXPECT_EQ(c.quarantined_pages, 0u);
  // The same numbers through the metrics registry (the scrape surface).
  EXPECT_EQ(f.store->metrics().counter_value("dstore_integrity_checksum_failures_total"),
            (uint64_t)kInjected);
  EXPECT_EQ(f.store->metrics().counter_value("dstore_integrity_repairs_total"),
            (uint64_t)kInjected);
  EXPECT_EQ(f.store->metrics().counter_value("dstore_integrity_quarantined_pages_total"), 0u);
  EXPECT_EQ(f.device->stats().read_crc_failures.load(), (uint64_t)kInjected);
}

// ---------------------------------------------------------------------------
// The scrubber
// ---------------------------------------------------------------------------

TEST(Integrity, ScrubPassDetectsAndRepairs) {
  Fixture f;
  f.build(/*repair_logging=*/true);
  std::map<std::string, std::string> oracle;
  for (char t : {'w', 'x', 'y', 'z'}) {
    std::string key(1, t);
    oracle[key] = value_of(t);
    ASSERT_TRUE(f.put(key, oracle[key]).is_ok());
  }
  f.device->flip_media_bit(f.find_on_media(oracle["x"].substr(0, 64)) + 5, 7);
  f.device->flip_media_bit(f.find_on_media(oracle["z"].substr(0, 64)) + 40, 0);

  DStore::ScrubReport rep;
  Status s = f.store->scrub_now(&rep);
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_EQ(rep.objects_scanned, 4u);
  EXPECT_GE(rep.pages_verified, 4u);
  EXPECT_EQ(rep.checksum_failures, 2u);
  EXPECT_EQ(rep.repaired, 2u);
  EXPECT_EQ(rep.quarantined_pages, 0u);
  EXPECT_TRUE(rep.corrupt_objects.empty());
  EXPECT_EQ(f.store->counters().scrub_pages_verified, rep.pages_verified);

  for (auto& [k, v] : oracle) {
    auto r = f.get(k);
    ASSERT_TRUE(r.is_ok()) << k;
    EXPECT_EQ(r.value(), v) << k;
  }
}

TEST(Integrity, ScrubQuarantinesUnrepairable) {
  Fixture f;
  f.build(/*repair_logging=*/false);
  const std::string v = value_of('u');
  ASSERT_TRUE(f.put("doomed", v).is_ok());
  ASSERT_TRUE(f.put("fine", value_of('f')).is_ok());
  uint64_t off = f.find_on_media(v.substr(0, 64));
  f.device->flip_media_bit(off + 8, 4);

  DStore::ScrubReport rep;
  Status s = f.store->scrub_now(&rep);
  EXPECT_EQ(s.code(), Code::kCorruption) << s.to_string();
  EXPECT_EQ(rep.objects_scanned, 2u);
  EXPECT_EQ(rep.checksum_failures, 1u);
  EXPECT_EQ(rep.repaired, 0u);
  EXPECT_GE(rep.quarantined_pages, 1u);
  ASSERT_EQ(rep.corrupt_objects.size(), 1u);
  EXPECT_EQ(rep.corrupt_objects[0], "doomed");
  EXPECT_TRUE(f.store->bad_pages().contains(off / f.device->config().page_size));
  // Scrub contains; it does not degrade the whole store.
  EXPECT_FALSE(f.store->read_only());
  EXPECT_TRUE(f.get("fine").is_ok());
}

TEST(Integrity, BackgroundScrubberRunsOnInterval) {
  Fixture f;
  f.cfg.scrub_interval_ms = 5;
  f.build(/*repair_logging=*/true);
  ASSERT_TRUE(f.put("watched", value_of('s')).is_ok());
  // The scrubber thread wakes every 5 ms; wait for evidence of a pass.
  uint64_t verified = 0;
  for (int spin = 0; spin < 400 && verified == 0; spin++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    verified = f.store->counters().scrub_pages_verified;
  }
  EXPECT_GE(verified, 1u);
  EXPECT_GE(f.store->metrics().value("dstore_scrub_last_pass_seconds"), 0.0);
}

// ---------------------------------------------------------------------------
// Misdirected writes (the sidecar is location-seeded; the content CRC
// catches the stale-but-consistent intended location)
// ---------------------------------------------------------------------------

TEST(Integrity, MisdirectedWriteNeverReturnsStaleBytes) {
  Fixture f;
  FaultPlan plan;
  plan.add({"ssd.write", 1, FaultType::kMisdirectedWrite, 3, 1});
  f.build(/*repair_logging=*/false, plan);
  const std::string v = value_of('m');
  f.inj.arm();
  Status s = f.put("victim", v);
  f.inj.disarm();
  ASSERT_TRUE(s.is_ok()) << s.to_string();  // the device never noticed

  // The intended pages were never written: whatever a read returns, it
  // must not be OK-with-wrong-bytes.
  auto r = f.get("victim");
  if (r.is_ok()) {
    EXPECT_EQ(r.value(), v);  // repaired or (legitimately) landed intact
  } else {
    EXPECT_EQ(r.status().code(), Code::kCorruption) << r.status().to_string();
    EXPECT_GE(f.store->counters().checksum_failures, 1u);
  }
}

// ---------------------------------------------------------------------------
// Log-record corruption: fail-stop at recovery, never silent replay
// ---------------------------------------------------------------------------

TEST(Integrity, CorruptPublishedLogRecordFailStopsRecovery) {
  Fixture f;
  f.build(/*repair_logging=*/false);
  ASSERT_TRUE(f.put("a", value_of('a')).is_ok());
  ASSERT_TRUE(f.put("b", value_of('b')).is_ok());

  // Locate b's committed record in the active log.
  auto& eng = f.store->engine();
  const dipper::PmemLog& log = eng.log_for_testing(eng.active_log_index());
  uint32_t slot = UINT32_MAX;
  for (uint32_t i = 0; i < log.slot_count(); i++) {
    dipper::LogRecordView rec;
    if (log.read(i, &rec) && rec.name.view() == "b") slot = i;
  }
  ASSERT_NE(slot, UINT32_MAX);
  const uint64_t slot_off = log.slot_offset(slot);

  f.store->ds_finalize(f.ctx);
  f.ctx = nullptr;
  f.store.reset();
  // Flip one bit of the record's name byte (offset 33: lsn 8, length 4,
  // op 2, flags 2, arg0 8, arg1 8, klen 1) in the durable image. The LSN
  // stays valid, so recovery *will* decode this slot — and must refuse it.
  char* addr = f.pool->base() + slot_off + 33;
  *addr = (char)(*addr ^ 0x01);
  f.pool->persist(addr, 1);
  f.pool->crash();
  f.device->crash();

  auto r = DStore::recover(f.pool.get(), f.device.get(), f.cfg);
  ASSERT_FALSE(r.is_ok()) << "recovery silently replayed a corrupt log record";
  EXPECT_EQ(r.status().code(), Code::kCorruption) << r.status().to_string();
}

TEST(Integrity, CorruptSlotReadsAsCorruptNotEmpty) {
  // PmemLog::read's three-way contract: valid record / empty slot / valid
  // LSN with a failing checksum ("corrupt").
  pmem::Pool pool(1 << 20, pmem::Pool::Mode::kDirect);
  dipper::PmemLog log(&pool, 0, 8);
  log.format();
  log.write_record(0, 7, dipper::OpType::kPut, Key::from("k"), 1, 2, false);
  dipper::LogRecordView rec;
  bool corrupt = false;
  ASSERT_TRUE(log.read(0, &rec, &corrupt));
  EXPECT_FALSE(corrupt);
  EXPECT_FALSE(log.read(1, &rec, &corrupt));  // never written
  EXPECT_FALSE(corrupt);
  char* arg0 = pool.base() + log.slot_offset(0) + 16;
  *arg0 = (char)(*arg0 ^ 0x10);
  EXPECT_FALSE(log.read(0, &rec, &corrupt));  // published but untrustworthy
  EXPECT_TRUE(corrupt);
}

// ---------------------------------------------------------------------------
// The corruption sweep (mirrors the exhaustive crash sweep)
// ---------------------------------------------------------------------------

void report_failing_plan(const FaultPlan& plan, const Status& why) {
  if (const char* path = std::getenv("DSTORE_CRASH_ARTIFACT")) {
    std::ofstream f(path, std::ios::app);
    f << plan.to_string() << "\n";
  }
  ADD_FAILURE() << "failing plan: " << plan.to_string() << " — " << why.to_string()
                << "\n(reproduce with DSTORE_CRASH_PLAN=\"" << plan.to_string() << "\")";
}

TEST(CorruptionSweep, NoScheduleEverReturnsSilentlyWrongBytes) {
  RigOptions opt;
  opt.repair_logging = true;
  auto space = CrashRig::enumerate_schedule(opt);
  std::vector<FaultPlan> plans = all_corruption_plans(space);
  ASSERT_GE(plans.size(), 50u) << "sweep space unexpectedly small";
  if (const char* repro = std::getenv("DSTORE_CRASH_PLAN")) {
    auto parsed = FaultPlan::parse(repro);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    plans = {parsed.value()};
  }
  size_t failures = 0;
  uint64_t detected_total = 0;
  for (const FaultPlan& plan : plans) {
    CrashRig rig(opt);
    bool crashed = rig.run(plan);
    EXPECT_FALSE(crashed) << "corruption plan crashed: " << plan.to_string();
    uint64_t detected = 0;
    Status s = rig.verify_integrity(&detected);
    detected_total += detected;
    if (!s.is_ok()) {
      report_failing_plan(plan, s);
      if (++failures >= 5) break;
    }
  }
  // The sweep must have actually exercised detection, not just clean runs:
  // many flips land on pages that are overwritten or deleted before any
  // read (legitimately invisible), but across hundreds of schedules a
  // healthy integrity layer detects plenty.
  EXPECT_GE(detected_total, plans.size() / 20);
}

}  // namespace
}  // namespace dstore::fault
