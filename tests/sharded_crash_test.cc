// Crash-schedule sweep against one shard of a live ShardedStore.
//
// The single-store sweep (crash_schedule_test.cc) proves the DIPPER
// protocol; what it cannot show is that partitioning preserves it. Here the
// fault injector is wired into ONE shard of a 4-shard fleet (pool + device
// + engine, via ShardedConfig::fault / fault_shard) while the other shards
// run clean. A deterministic single-threaded workload spreads keys across
// the fleet, checkpoints mid-run through the shared pool, and stops at the
// injected power failure; the whole fleet is then power-failed and
// recovered (crash_and_recover_all) and held to a shadow oracle:
//
//   - every acked op on every shard survives, except the single op in
//     flight at the crash, which may be in either its pre- or post-state
//     (atomicity, not loss) — exactly the single-store contract;
//   - faults never leak across the partition: a power failure on the
//     faulted shard leaves the other shards serving (and their later acked
//     writes durable).
//
// Reproduction mirrors crash_schedule_test.cc: failures print the FaultPlan
// string, DSTORE_CRASH_PLAN="<string>" re-runs just that schedule, and
// DSTORE_CRASH_ARTIFACT=<path> appends failing plans for CI upload.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dstore/sharded.h"
#include "fault/crash_rig.h"
#include "fault/fault.h"
#include "pmem/pool.h"

namespace dstore::fault {
namespace {

void report_failing_plan(const FaultPlan& plan, const Status& why) {
  if (const char* path = std::getenv("DSTORE_CRASH_ARTIFACT")) {
    std::ofstream f(path, std::ios::app);
    f << plan.to_string() << "\n";
  }
  ADD_FAILURE() << "failing plan: " << plan.to_string() << " — " << why.to_string()
                << "\n(reproduce with DSTORE_CRASH_PLAN=\"" << plan.to_string() << "\")";
}

bool maybe_single_plan(std::vector<FaultPlan>* plans) {
  const char* repro = std::getenv("DSTORE_CRASH_PLAN");
  if (repro == nullptr) return false;
  auto parsed = FaultPlan::parse(repro);
  EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  if (parsed.is_ok()) *plans = {parsed.value()};
  return parsed.is_ok();
}

// ShardedRig — CrashRig's lifecycle (run / crash / recover / verify) against
// a fleet with exactly one faulted member.
struct ShardedRig {
  static constexpr int kShards = 4;
  static constexpr int kFaultShard = 1;
  static constexpr uint32_t kOps = 48;
  static constexpr uint32_t kKeys = 24;

  FaultInjector inj;  // declared before the store that points at it
  ShardedConfig cfg;
  std::unique_ptr<ShardedStore> store;

  std::map<std::string, std::string> oracle_;  // durably-acked state
  struct Pending {  // the op in flight when the power failed, if any
    bool active = false;
    bool is_delete = false;
    std::string key;
    std::string value;
  };
  Pending pending_;

  static std::string key_for(uint32_t i) {
    char buf[24];
    snprintf(buf, sizeof(buf), "fleet-obj-%03u", (i * 7 + 3) % kKeys);
    return buf;
  }
  // Unique length per op (131 coprime to 487), so "which write survived"
  // is always decidable from the byte count alone.
  static std::string value_for(uint32_t i) {
    return std::string(1 + (131 * i + 17) % 487, (char)('a' + i % 26));
  }

  bool build() {
    cfg.num_shards = kShards;
    cfg.pool_mode = pmem::Pool::Mode::kCrashSim;
    cfg.fault = &inj;
    cfg.fault_shard = kFaultShard;
    cfg.ckpt_workers = 1;  // deterministic: one worker, no stealing races
    cfg.shard.max_objects = 64;
    cfg.shard.num_blocks = 512;
    cfg.shard.engine.log_slots = 64;
    cfg.shard.engine.arena_bytes = 1 << 20;
    cfg.shard.engine.background_checkpointing = false;
    inj.disarm();  // creation noise must not shift hit numbers
    auto r = ShardedStore::create(cfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    if (!r.is_ok()) return false;
    store = std::move(r).value();
    return true;
  }

  // Fresh fleet, deterministic workload under `plan` (puts/deletes across
  // all shards + one mid-run checkpoint_all). Returns true if the injected
  // power failure fired.
  bool run(const FaultPlan& plan) {
    if (!build()) return false;
    inj.set_plan(plan);
    inj.arm();
    for (uint32_t i = 0; i < kOps; i++) {
      std::string k = key_for(i);
      bool is_delete = (i % 11) == 10;
      std::string v = is_delete ? std::string() : value_for(i);
      if (is_delete) {
        (void)store->del(k);
      } else {
        (void)store->put(k, v.data(), v.size());
      }
      if (inj.crashed()) {  // this op was in flight: either-state at verify
        pending_ = {true, is_delete, k, v};
        return true;
      }
      if (is_delete) {
        oracle_.erase(k);
      } else {
        oracle_[k] = v;
      }
      if (i == kOps / 2) {
        (void)store->checkpoint_all();
        if (inj.crashed()) return true;  // no user op in flight
      }
    }
    return inj.crashed();
  }

  Status recover_fleet() {
    inj.disarm();
    return store->crash_and_recover_all();
  }

  std::string get(const std::string& key) {
    std::vector<char> buf(1024);
    auto r = store->get(key, buf.data(), buf.size());
    if (!r.is_ok()) return "<absent>";
    return std::string(buf.data(), r.value());
  }

  // validate_all() + oracle check: exact match everywhere, except the
  // single in-flight op, which may be in its pre- or post-crash state.
  Status verify() {
    Status s = store->validate_all();
    if (!s.is_ok()) return s;
    for (const auto& [k, v] : oracle_) {
      if (pending_.active && k == pending_.key) continue;
      std::string got = get(k);
      if (got != v) {
        return Status::internal("key " + k + ": got " + std::to_string(got.size()) +
                                "B, oracle " + std::to_string(v.size()) + "B");
      }
    }
    if (pending_.active) {
      auto it = oracle_.find(pending_.key);
      std::string pre = it != oracle_.end() ? it->second : "<absent>";
      std::string post = pending_.is_delete ? "<absent>" : pending_.value;
      std::string got = get(pending_.key);
      if (got != pre && got != post) {
        return Status::internal("in-flight key " + pending_.key + ": got " +
                                std::to_string(got.size()) + "B, expected pre " +
                                std::to_string(pre.size()) + "B or post " +
                                std::to_string(post.size()) + "B");
      }
    }
    return Status::ok();
  }

  // Counting pass: full workload fault-free with an armed injector; the
  // (point, hits) space is the faulted shard's complete schedule.
  static std::vector<std::pair<std::string, uint64_t>> enumerate_schedule() {
    ShardedRig rig;
    FaultPlan empty;
    EXPECT_FALSE(rig.run(empty));
    // Snapshot the space BEFORE verifying: verify()'s reads would add
    // ssd.read hits the sweep's (read-free) workload can never reach.
    auto space = rig.inj.hit_counts();
    rig.inj.disarm();
    EXPECT_TRUE(rig.verify().is_ok());
    return space;
  }
};

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

TEST(ShardedCrash, ScheduleSpaceCoversOneShardOfTheFleet) {
  auto space = ShardedRig::enumerate_schedule();
  uint64_t total = 0;
  bool saw_pmem = false, saw_ssd = false, saw_engine = false;
  for (const auto& [point, count] : space) {
    total += count;
    saw_pmem |= point.rfind("pmem.", 0) == 0;
    saw_ssd |= point.rfind("ssd.", 0) == 0;
    saw_engine |= point.rfind("engine.", 0) == 0;
  }
  // Only the faulted shard is instrumented, so the space reflects roughly a
  // quarter of the fleet's work — but every layer of that shard must appear
  // (puts hit pmem + ssd; the mid-run checkpoint_all hits engine.*).
  EXPECT_TRUE(saw_pmem) << "no pmem points — fault not wired into the shard pool?";
  EXPECT_TRUE(saw_ssd) << "no ssd points — fault not wired into the shard device?";
  EXPECT_TRUE(saw_engine) << "no engine points — fault not wired into the shard engine?";
  EXPECT_GE(total, 50u);
}

TEST(ShardedCrash, SingleCrashSweepOverOneShardKeepsFleetConsistent) {
  auto space = ShardedRig::enumerate_schedule();
  std::vector<FaultPlan> plans = all_crash_plans(space);
  ASSERT_GE(plans.size(), 50u);
  bool single = maybe_single_plan(&plans);
  size_t crashes = 0, failures = 0;
  for (const FaultPlan& plan : plans) {
    ShardedRig rig;
    bool crashed = rig.run(plan);
    EXPECT_TRUE(crashed) << "plan never fired: " << plan.to_string();
    if (!crashed) continue;
    crashes++;
    Status s = rig.recover_fleet();
    if (s.is_ok()) s = rig.verify();
    if (!s.is_ok()) {
      report_failing_plan(plan, s);
      if (++failures >= 5) break;  // enough to diagnose; don't drown the log
    }
  }
  if (!single) {
    EXPECT_GE(crashes, 50u);
  }
}

// ---------------------------------------------------------------------------
// Isolation: a power failure on one shard leaves the others serving
// ---------------------------------------------------------------------------

TEST(ShardedCrash, CrashOnOneShardDoesNotStopTheOthers) {
  ShardedRig rig;
  ASSERT_TRUE(rig.run(FaultPlan::crash_at("pmem.fence", 1)));

  // The fleet is on borrowed time for shard kFaultShard only: its pool and
  // device froze their durable images when the fault fired. Writes routed
  // to every OTHER shard must still commit — and survive the fleet-wide
  // power failure below, because those shards' images freeze only then.
  std::vector<std::string> late_keys;
  const std::string late_value(96, 'L');
  for (int i = 0; late_keys.size() < 6 && i < 1000; i++) {
    char buf[24];
    snprintf(buf, sizeof(buf), "post-crash-%03d", i);
    if (rig.store->shard_of(buf) == ShardedRig::kFaultShard) continue;
    ASSERT_TRUE(rig.store->put(buf, late_value.data(), late_value.size()).is_ok()) << buf;
    late_keys.push_back(buf);
  }
  ASSERT_EQ(late_keys.size(), 6u);

  ASSERT_TRUE(rig.recover_fleet().is_ok());
  EXPECT_TRUE(rig.verify().is_ok()) << rig.verify().to_string();
  for (const std::string& k : late_keys) {
    EXPECT_EQ(rig.get(k), late_value) << k << " (acked after the remote shard's crash)";
  }
}

TEST(ShardedCrash, FaultShardOutOfRangeIsRejected) {
  FaultInjector inj;
  ShardedConfig cfg;
  cfg.num_shards = 2;
  cfg.pool_mode = pmem::Pool::Mode::kCrashSim;
  cfg.fault = &inj;
  cfg.fault_shard = 2;
  EXPECT_EQ(ShardedStore::create(cfg).status().code(), Code::kInvalidArgument);
}

}  // namespace
}  // namespace dstore::fault
