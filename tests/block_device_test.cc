// Tests for the emulated NVMe block device: IO bounds, power-loss
// protection semantics, stats, and the file-backed variant.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "common/clock.h"
#include "ssd/block_device.h"

namespace dstore::ssd {
namespace {

DeviceConfig small_cfg(bool plp = true) {
  DeviceConfig cfg;
  cfg.page_size = 4096;
  cfg.pages_per_block = 1;
  cfg.num_blocks = 64;
  cfg.power_loss_protection = plp;
  return cfg;
}

TEST(RamDevice, WriteReadRoundTrip) {
  RamBlockDevice dev(small_cfg());
  char out[4096];
  char in[4096];
  std::memset(in, 0x5c, sizeof(in));
  ASSERT_TRUE(dev.write(3, 0, in, sizeof(in)).is_ok());
  ASSERT_TRUE(dev.read(3, 0, out, sizeof(out)).is_ok());
  EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(RamDevice, PartialBlockIo) {
  RamBlockDevice dev(small_cfg());
  const char* msg = "hello nvme";
  ASSERT_TRUE(dev.write(1, 100, msg, 10).is_ok());
  char out[10];
  ASSERT_TRUE(dev.read(1, 100, out, 10).is_ok());
  EXPECT_EQ(std::memcmp(out, msg, 10), 0);
}

TEST(RamDevice, OutOfRangeRejected) {
  RamBlockDevice dev(small_cfg());
  char buf[16] = {};
  EXPECT_EQ(dev.write(64, 0, buf, 16).code(), Code::kInvalidArgument);
  EXPECT_EQ(dev.read(64, 0, buf, 16).code(), Code::kInvalidArgument);
  EXPECT_EQ(dev.write(0, 4090, buf, 16).code(), Code::kInvalidArgument);  // crosses block end
}

TEST(RamDevice, PlpWritesSurviveCrash) {
  RamBlockDevice dev(small_cfg(/*plp=*/true));
  char in[64];
  std::memset(in, 0x42, sizeof(in));
  ASSERT_TRUE(dev.write(0, 0, in, sizeof(in)).is_ok());
  dev.crash();  // capacitors flush the device cache
  char out[64];
  ASSERT_TRUE(dev.read(0, 0, out, sizeof(out)).is_ok());
  EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(RamDevice, NoPlpUnflushedWritesLost) {
  RamBlockDevice dev(small_cfg(/*plp=*/false));
  char in[64];
  std::memset(in, 0x42, sizeof(in));
  ASSERT_TRUE(dev.write(0, 0, in, sizeof(in)).is_ok());
  dev.crash();
  char out[64];
  ASSERT_TRUE(dev.read(0, 0, out, sizeof(out)).is_ok());
  for (char c : out) EXPECT_EQ(c, 0);
}

TEST(RamDevice, NoPlpFlushedWritesSurvive) {
  RamBlockDevice dev(small_cfg(/*plp=*/false));
  char in[64];
  std::memset(in, 0x42, sizeof(in));
  ASSERT_TRUE(dev.write(0, 0, in, sizeof(in)).is_ok());
  ASSERT_TRUE(dev.flush_cache().is_ok());
  dev.crash();
  char out[64];
  ASSERT_TRUE(dev.read(0, 0, out, sizeof(out)).is_ok());
  EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(RamDevice, StatsAccumulate) {
  RamBlockDevice dev(small_cfg());
  char buf[4096] = {};
  ASSERT_TRUE(dev.write(0, 0, buf, 4096).is_ok());
  ASSERT_TRUE(dev.write(1, 0, buf, 4096).is_ok());
  ASSERT_TRUE(dev.read(0, 0, buf, 4096).is_ok());
  EXPECT_EQ(dev.stats().bytes_written.load(), 8192u);
  EXPECT_EQ(dev.stats().write_ios.load(), 2u);
  EXPECT_EQ(dev.stats().bytes_read.load(), 4096u);
  EXPECT_EQ(dev.stats().read_ios.load(), 1u);
}

TEST(RamDevice, BandwidthSeriesHook) {
  RamBlockDevice dev(small_cfg());
  dstore::TimeSeries ts(4, 1000000000ull);
  dev.set_bandwidth_series(&ts);
  char buf[4096] = {};
  ASSERT_TRUE(dev.write(0, 0, buf, 4096).is_ok());
  EXPECT_EQ(ts.bin(0), 4096u);
}

TEST(RamDevice, MultiPageBlocks) {
  DeviceConfig cfg = small_cfg();
  cfg.pages_per_block = 4;  // 16KB blocks
  RamBlockDevice dev(cfg);
  char in[16384];
  std::memset(in, 0x37, sizeof(in));
  ASSERT_TRUE(dev.write(2, 0, in, sizeof(in)).is_ok());
  char out[16384];
  ASSERT_TRUE(dev.read(2, 0, out, sizeof(out)).is_ok());
  EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(RamDevice, LatencyInjection) {
  DeviceConfig cfg = small_cfg();
  cfg.latency.ssd_write_base_ns = 200000;  // 200us, easily measurable
  RamBlockDevice dev(cfg);
  char buf[4096] = {};
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(dev.write(0, 0, buf, 4096).is_ok());
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  EXPECT_GE(us, 200);
}

TEST(RamDevice, SubmitIoReturnsDeadlineNotInlineLatency) {
  // submit_io performs the media effect immediately but charges no inline
  // latency: the call returns fast with an absolute completion deadline.
  DeviceConfig cfg = small_cfg();
  cfg.latency.ssd_write_base_ns = 200000;
  RamBlockDevice dev(cfg);
  char buf[4096] = {};
  uint64_t before = now_ns();
  auto r = dev.submit_io(IoDesc{0, 0, sizeof(buf), buf, nullptr});
  uint64_t after = now_ns();
  ASSERT_TRUE(r.is_ok());
  EXPECT_LT(after - before, 100000u);          // returned well under the 200us cost
  EXPECT_GE(r.value(), before + 200000u);      // ...which lives in the deadline
  // The data is already on the media side regardless of the deadline.
  char out[4096];
  ASSERT_TRUE(dev.read(0, 0, out, sizeof(out)).is_ok());
  EXPECT_EQ(std::memcmp(buf, out, sizeof(out)), 0);
}

TEST(RamDevice, SubmitIoDeadlinesOverlapAcrossIos) {
  // Two back-to-back submissions with a pure base cost complete in
  // parallel: the second deadline is NOT queued behind the first.
  DeviceConfig cfg = small_cfg();
  cfg.latency.ssd_write_base_ns = 500000;
  RamBlockDevice dev(cfg);
  char buf[4096] = {};
  auto r1 = dev.submit_io(IoDesc{0, 0, sizeof(buf), buf, nullptr});
  auto r2 = dev.submit_io(IoDesc{1, 0, sizeof(buf), buf, nullptr});
  ASSERT_TRUE(r1.is_ok());
  ASSERT_TRUE(r2.is_ok());
  EXPECT_LT(r2.value(), r1.value() + 500000u);
}

TEST(RamDevice, SubmitIoRejectsMalformedDescriptors) {
  RamBlockDevice dev(small_cfg());
  char buf[64] = {};
  EXPECT_EQ(dev.submit_io(IoDesc{0, 0, 64, buf, buf}).status().code(),
            Code::kInvalidArgument);
  EXPECT_EQ(dev.submit_io(IoDesc{0, 0, 64, nullptr, nullptr}).status().code(),
            Code::kInvalidArgument);
  EXPECT_EQ(dev.submit_io(IoDesc{63, 4090, 64, buf, nullptr}).status().code(),
            Code::kInvalidArgument);  // spans past device capacity
}

TEST(RamDevice, SubmitIoHonorsWriteCacheSemantics) {
  // The async path must keep PLP semantics: without capacitors, a write
  // acked through submit_io is lost on crash unless the cache was flushed.
  RamBlockDevice dev(small_cfg(/*plp=*/false));
  char in[4096];
  std::memset(in, 0x7e, sizeof(in));
  auto r = dev.submit_io(IoDesc{2, 0, sizeof(in), in, nullptr});
  ASSERT_TRUE(r.is_ok());
  dev.crash();
  char out[4096];
  ASSERT_TRUE(dev.read(2, 0, out, sizeof(out)).is_ok());
  EXPECT_NE(std::memcmp(in, out, sizeof(in)), 0);  // reverted

  ASSERT_TRUE(dev.submit_io(IoDesc{2, 0, sizeof(in), in, nullptr}).is_ok());
  ASSERT_TRUE(dev.flush_cache().is_ok());
  dev.crash();
  ASSERT_TRUE(dev.read(2, 0, out, sizeof(out)).is_ok());
  EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);  // flushed => durable
}

TEST(FileDevice, SubmitIoCoalescedSpanRoundTrips) {
  auto path = std::filesystem::temp_directory_path() / "dstore_blockdev_async.bin";
  auto dev = FileBlockDevice::open(path.string(), small_cfg(), /*create=*/true);
  ASSERT_TRUE(dev.is_ok());
  std::vector<char> in(2 * 4096 + 512);
  for (size_t i = 0; i < in.size(); i++) in[i] = char('A' + i % 29);
  auto w = dev.value()->submit_io(IoDesc{3, 0, in.size(), in.data(), nullptr});
  ASSERT_TRUE(w.is_ok());
  std::vector<char> out(in.size());
  auto r = dev.value()->submit_io(IoDesc{3, 0, out.size(), nullptr, out.data()});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
  std::filesystem::remove(path);
}

TEST(FileDevice, PersistsAcrossReopen) {
  auto path = std::filesystem::temp_directory_path() / "dstore_blockdev_test.bin";
  DeviceConfig cfg = small_cfg();
  {
    auto dev = FileBlockDevice::open(path.string(), cfg, /*create=*/true);
    ASSERT_TRUE(dev.is_ok());
    char in[128];
    std::memset(in, 0x61, sizeof(in));
    ASSERT_TRUE(dev.value()->write(5, 64, in, sizeof(in)).is_ok());
    ASSERT_TRUE(dev.value()->flush_cache().is_ok());
  }
  {
    auto dev = FileBlockDevice::open(path.string(), cfg, /*create=*/false);
    ASSERT_TRUE(dev.is_ok());
    char out[128];
    ASSERT_TRUE(dev.value()->read(5, 64, out, sizeof(out)).is_ok());
    for (char c : out) EXPECT_EQ((unsigned char)c, 0x61u);
  }
  std::filesystem::remove(path);
}

TEST(FileDevice, OpenMissingFails) {
  auto dev = FileBlockDevice::open("/nonexistent-dir/xyz.bin", small_cfg(), false);
  ASSERT_FALSE(dev.is_ok());
  EXPECT_EQ(dev.status().code(), Code::kIoError);
}

}  // namespace
}  // namespace dstore::ssd
