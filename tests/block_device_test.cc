// Tests for the emulated NVMe block device: IO bounds, power-loss
// protection semantics, stats, and the file-backed variant.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "ssd/block_device.h"

namespace dstore::ssd {
namespace {

DeviceConfig small_cfg(bool plp = true) {
  DeviceConfig cfg;
  cfg.page_size = 4096;
  cfg.pages_per_block = 1;
  cfg.num_blocks = 64;
  cfg.power_loss_protection = plp;
  return cfg;
}

TEST(RamDevice, WriteReadRoundTrip) {
  RamBlockDevice dev(small_cfg());
  char out[4096];
  char in[4096];
  std::memset(in, 0x5c, sizeof(in));
  ASSERT_TRUE(dev.write(3, 0, in, sizeof(in)).is_ok());
  ASSERT_TRUE(dev.read(3, 0, out, sizeof(out)).is_ok());
  EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(RamDevice, PartialBlockIo) {
  RamBlockDevice dev(small_cfg());
  const char* msg = "hello nvme";
  ASSERT_TRUE(dev.write(1, 100, msg, 10).is_ok());
  char out[10];
  ASSERT_TRUE(dev.read(1, 100, out, 10).is_ok());
  EXPECT_EQ(std::memcmp(out, msg, 10), 0);
}

TEST(RamDevice, OutOfRangeRejected) {
  RamBlockDevice dev(small_cfg());
  char buf[16] = {};
  EXPECT_EQ(dev.write(64, 0, buf, 16).code(), Code::kInvalidArgument);
  EXPECT_EQ(dev.read(64, 0, buf, 16).code(), Code::kInvalidArgument);
  EXPECT_EQ(dev.write(0, 4090, buf, 16).code(), Code::kInvalidArgument);  // crosses block end
}

TEST(RamDevice, PlpWritesSurviveCrash) {
  RamBlockDevice dev(small_cfg(/*plp=*/true));
  char in[64];
  std::memset(in, 0x42, sizeof(in));
  ASSERT_TRUE(dev.write(0, 0, in, sizeof(in)).is_ok());
  dev.crash();  // capacitors flush the device cache
  char out[64];
  ASSERT_TRUE(dev.read(0, 0, out, sizeof(out)).is_ok());
  EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(RamDevice, NoPlpUnflushedWritesLost) {
  RamBlockDevice dev(small_cfg(/*plp=*/false));
  char in[64];
  std::memset(in, 0x42, sizeof(in));
  ASSERT_TRUE(dev.write(0, 0, in, sizeof(in)).is_ok());
  dev.crash();
  char out[64];
  ASSERT_TRUE(dev.read(0, 0, out, sizeof(out)).is_ok());
  for (char c : out) EXPECT_EQ(c, 0);
}

TEST(RamDevice, NoPlpFlushedWritesSurvive) {
  RamBlockDevice dev(small_cfg(/*plp=*/false));
  char in[64];
  std::memset(in, 0x42, sizeof(in));
  ASSERT_TRUE(dev.write(0, 0, in, sizeof(in)).is_ok());
  ASSERT_TRUE(dev.flush_cache().is_ok());
  dev.crash();
  char out[64];
  ASSERT_TRUE(dev.read(0, 0, out, sizeof(out)).is_ok());
  EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(RamDevice, StatsAccumulate) {
  RamBlockDevice dev(small_cfg());
  char buf[4096] = {};
  ASSERT_TRUE(dev.write(0, 0, buf, 4096).is_ok());
  ASSERT_TRUE(dev.write(1, 0, buf, 4096).is_ok());
  ASSERT_TRUE(dev.read(0, 0, buf, 4096).is_ok());
  EXPECT_EQ(dev.stats().bytes_written.load(), 8192u);
  EXPECT_EQ(dev.stats().write_ios.load(), 2u);
  EXPECT_EQ(dev.stats().bytes_read.load(), 4096u);
  EXPECT_EQ(dev.stats().read_ios.load(), 1u);
}

TEST(RamDevice, BandwidthSeriesHook) {
  RamBlockDevice dev(small_cfg());
  dstore::TimeSeries ts(4, 1000000000ull);
  dev.set_bandwidth_series(&ts);
  char buf[4096] = {};
  ASSERT_TRUE(dev.write(0, 0, buf, 4096).is_ok());
  EXPECT_EQ(ts.bin(0), 4096u);
}

TEST(RamDevice, MultiPageBlocks) {
  DeviceConfig cfg = small_cfg();
  cfg.pages_per_block = 4;  // 16KB blocks
  RamBlockDevice dev(cfg);
  char in[16384];
  std::memset(in, 0x37, sizeof(in));
  ASSERT_TRUE(dev.write(2, 0, in, sizeof(in)).is_ok());
  char out[16384];
  ASSERT_TRUE(dev.read(2, 0, out, sizeof(out)).is_ok());
  EXPECT_EQ(std::memcmp(in, out, sizeof(in)), 0);
}

TEST(RamDevice, LatencyInjection) {
  DeviceConfig cfg = small_cfg();
  cfg.latency.ssd_write_base_ns = 200000;  // 200us, easily measurable
  RamBlockDevice dev(cfg);
  char buf[4096] = {};
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(dev.write(0, 0, buf, 4096).is_ok());
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  EXPECT_GE(us, 200);
}

TEST(FileDevice, PersistsAcrossReopen) {
  auto path = std::filesystem::temp_directory_path() / "dstore_blockdev_test.bin";
  DeviceConfig cfg = small_cfg();
  {
    auto dev = FileBlockDevice::open(path.string(), cfg, /*create=*/true);
    ASSERT_TRUE(dev.is_ok());
    char in[128];
    std::memset(in, 0x61, sizeof(in));
    ASSERT_TRUE(dev.value()->write(5, 64, in, sizeof(in)).is_ok());
    ASSERT_TRUE(dev.value()->flush_cache().is_ok());
  }
  {
    auto dev = FileBlockDevice::open(path.string(), cfg, /*create=*/false);
    ASSERT_TRUE(dev.is_ok());
    char out[128];
    ASSERT_TRUE(dev.value()->read(5, 64, out, sizeof(out)).is_ok());
    for (char c : out) EXPECT_EQ((unsigned char)c, 0x61u);
  }
  std::filesystem::remove(path);
}

TEST(FileDevice, OpenMissingFails) {
  auto dev = FileBlockDevice::open("/nonexistent-dir/xyz.bin", small_cfg(), false);
  ASSERT_FALSE(dev.is_ok());
  EXPECT_EQ(dev.status().code(), Code::kIoError);
}

}  // namespace
}  // namespace dstore::ssd
