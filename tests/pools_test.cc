// Tests for CircularPool (FIFO determinism — the DIPPER replay invariant),
// MetadataZone, and the ReadCountTable CC primitive.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "ds/circular_pool.h"
#include "ds/metadata_zone.h"
#include "ds/readcount_table.h"

namespace dstore {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  static constexpr size_t kArenaSize = 16 << 20;
  void SetUp() override {
    buf_ = std::make_unique<char[]>(kArenaSize);
    arena_ = Arena(buf_.get(), kArenaSize);
    sp_ = SlabAllocator::format(arena_);
  }
  std::unique_ptr<char[]> buf_;
  Arena arena_;
  SlabAllocator sp_;
};

TEST_F(PoolTest, StartsFullWithAllIds) {
  auto h = CircularPool::create(sp_, 100);
  ASSERT_TRUE(h.is_ok());
  CircularPool pool(sp_, h.value());
  EXPECT_EQ(pool.free_count(), 100u);
  EXPECT_EQ(pool.capacity(), 100u);
}

TEST_F(PoolTest, FifoOrder) {
  auto h = CircularPool::create(sp_, 10);
  ASSERT_TRUE(h.is_ok());
  CircularPool pool(sp_, h.value());
  for (uint64_t i = 0; i < 10; i++) EXPECT_EQ(pool.alloc().value(), i);
  EXPECT_FALSE(pool.alloc().has_value());
  ASSERT_TRUE(pool.free(7).is_ok());
  ASSERT_TRUE(pool.free(3).is_ok());
  EXPECT_EQ(pool.alloc().value(), 7u);  // freed first, popped first
  EXPECT_EQ(pool.alloc().value(), 3u);
}

TEST_F(PoolTest, ExhaustionAndRefill) {
  auto h = CircularPool::create(sp_, 4);
  ASSERT_TRUE(h.is_ok());
  CircularPool pool(sp_, h.value());
  for (int i = 0; i < 4; i++) ASSERT_TRUE(pool.alloc().has_value());
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_FALSE(pool.alloc().has_value());
  ASSERT_TRUE(pool.free(2).is_ok());
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_EQ(pool.alloc().value(), 2u);
}

TEST_F(PoolTest, OverflowRejected) {
  auto h = CircularPool::create(sp_, 4);
  ASSERT_TRUE(h.is_ok());
  CircularPool pool(sp_, h.value());
  // Pool already holds capacity ids; freeing one more must fail loudly.
  EXPECT_EQ(pool.free(0).code(), Code::kInternal);
}

TEST_F(PoolTest, WrapAroundManyCycles) {
  auto h = CircularPool::create(sp_, 8);
  ASSERT_TRUE(h.is_ok());
  CircularPool pool(sp_, h.value());
  // Cycle allocations through the ring many times to cross the wrap point.
  for (int round = 0; round < 1000; round++) {
    auto id = pool.alloc();
    ASSERT_TRUE(id.has_value());
    ASSERT_TRUE(pool.free(*id).is_ok());
  }
  EXPECT_EQ(pool.free_count(), 8u);
}

TEST_F(PoolTest, DeterministicReplayAfterClone) {
  auto h = CircularPool::create(sp_, 64);
  ASSERT_TRUE(h.is_ok());
  CircularPool pool(sp_, h.value());
  // Mixed traffic prologue.
  Rng rng(5);
  std::vector<uint64_t> live;
  for (int i = 0; i < 200; i++) {
    if (!live.empty() && rng.next_bool(0.5)) {
      ASSERT_TRUE(pool.free(live.back()).is_ok());
      live.pop_back();
    } else if (auto id = pool.alloc()) {
      live.push_back(*id);
    }
  }
  // Clone the arena; identical op suffix must yield identical ids.
  auto dst_buf = std::make_unique<char[]>(kArenaSize);
  Arena dst(dst_buf.get(), kArenaSize);
  auto clone_sp = sp_.clone_into(dst);
  ASSERT_TRUE(clone_sp.is_ok());
  CircularPool clone(clone_sp.value(), h.value());
  for (int i = 0; i < 50; i++) {
    auto a = pool.alloc();
    auto b = clone.alloc();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(*a, *b);
    }
  }
}

TEST_F(PoolTest, MetadataZoneInitAndRelease) {
  auto h = MetadataZone::create(sp_, 64);
  ASSERT_TRUE(h.is_ok());
  MetadataZone zone(sp_, h.value());
  EXPECT_EQ(zone.num_entries(), 64u);

  ASSERT_TRUE(zone.init_entry(3, Key::from("hello")).is_ok());
  MetaEntry* e = zone.entry(3);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->in_use);
  EXPECT_EQ(e->name.str(), "hello");
  EXPECT_EQ(e->nblocks, 0u);

  ASSERT_TRUE(zone.release_entry(3).is_ok());
  EXPECT_FALSE(zone.entry(3)->in_use);
}

TEST_F(PoolTest, MetadataZoneRejectsDoubleInit) {
  auto h = MetadataZone::create(sp_, 8);
  ASSERT_TRUE(h.is_ok());
  MetadataZone zone(sp_, h.value());
  ASSERT_TRUE(zone.init_entry(0, Key::from("a")).is_ok());
  EXPECT_EQ(zone.init_entry(0, Key::from("b")).code(), Code::kInternal);
}

TEST_F(PoolTest, MetadataZoneOutOfRange) {
  auto h = MetadataZone::create(sp_, 8);
  ASSERT_TRUE(h.is_ok());
  MetadataZone zone(sp_, h.value());
  EXPECT_EQ(zone.entry(8), nullptr);
  EXPECT_EQ(zone.init_entry(99, Key::from("x")).code(), Code::kInvalidArgument);
}

TEST_F(PoolTest, MetadataBlockListGrows) {
  auto h = MetadataZone::create(sp_, 8);
  ASSERT_TRUE(h.is_ok());
  MetadataZone zone(sp_, h.value());
  ASSERT_TRUE(zone.init_entry(0, Key::from("big")).is_ok());
  for (uint64_t b = 0; b < 100; b++) ASSERT_TRUE(zone.append_block(0, 1000 + b).is_ok());
  MetaEntry* e = zone.entry(0);
  EXPECT_EQ(e->nblocks, 100u);
  EXPECT_GE(e->cap, 100u);
  const uint64_t* blocks = zone.blocks(*e);
  for (uint64_t b = 0; b < 100; b++) EXPECT_EQ(blocks[b], 1000 + b);
}

TEST_F(PoolTest, MetadataSurvivesClone) {
  auto h = MetadataZone::create(sp_, 8);
  ASSERT_TRUE(h.is_ok());
  MetadataZone zone(sp_, h.value());
  ASSERT_TRUE(zone.init_entry(1, Key::from("persist-me")).is_ok());
  ASSERT_TRUE(zone.append_block(1, 42).is_ok());
  zone.entry(1)->size = 4096;

  auto dst_buf = std::make_unique<char[]>(kArenaSize);
  Arena dst(dst_buf.get(), kArenaSize);
  auto clone_sp = sp_.clone_into(dst);
  ASSERT_TRUE(clone_sp.is_ok());
  MetadataZone czone(clone_sp.value(), h.value());
  MetaEntry* e = czone.entry(1);
  EXPECT_EQ(e->name.str(), "persist-me");
  EXPECT_EQ(e->size, 4096u);
  EXPECT_EQ(czone.blocks(*e)[0], 42u);
}

TEST(ReadCount, IncDecLoad) {
  ReadCountTable t(1024);
  Key k = Key::from("obj");
  EXPECT_EQ(t.load(k), 0u);
  t.inc(k);
  t.inc(k);
  EXPECT_EQ(t.load(k), 2u);
  t.dec(k);
  t.dec(k);
  EXPECT_EQ(t.load(k), 0u);
}

TEST(ReadCount, DistinctNamesIndependent) {
  ReadCountTable t(1024);
  t.inc(Key::from("a"));
  EXPECT_EQ(t.load(Key::from("b")), 0u);
  t.dec(Key::from("a"));
}

TEST(ReadCount, GuardIsRaii) {
  ReadCountTable t(1024);
  Key k = Key::from("guarded");
  {
    ReadCountTable::ReadGuard g(t, k);
    EXPECT_EQ(t.load(k), 1u);
  }
  EXPECT_EQ(t.load(k), 0u);
}

TEST(ReadCount, WaitUntilUnreadBlocksWriter) {
  ReadCountTable t(1024);
  Key k = Key::from("contended");
  t.inc(k);
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    t.wait_until_unread(k);
    writer_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_done.load());
  t.dec(k);
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(ReadCount, ConcurrentReadersBalance) {
  ReadCountTable t(4096);
  std::vector<std::thread> ts;
  for (int w = 0; w < 4; w++) {
    ts.emplace_back([&t, w] {
      char name[16];
      for (int i = 0; i < 10000; i++) {
        snprintf(name, sizeof(name), "o%d", (w * 10000 + i) % 64);
        Key k = Key::from(name);
        t.inc(k);
        t.dec(k);
      }
    });
  }
  for (auto& th : ts) th.join();
  for (int i = 0; i < 64; i++) {
    char name[16];
    snprintf(name, sizeof(name), "o%d", i);
    EXPECT_EQ(t.load(Key::from(name)), 0u);
  }
}

TEST(KeyType, CompareAndHash) {
  Key a = Key::from("alpha");
  Key b = Key::from("beta");
  EXPECT_LT(a.compare(b), 0);
  EXPECT_GT(b.compare(a), 0);
  EXPECT_EQ(a.compare(Key::from("alpha")), 0);
  EXPECT_EQ(a.hash(), Key::from("alpha").hash());
  EXPECT_NE(a.hash(), b.hash());
}

TEST(KeyType, TruncationBoundary) {
  std::string long_name(kMaxNameLen + 10, 'z');
  EXPECT_FALSE(Key::fits(long_name));
  Key k = Key::from(long_name);  // truncates defensively
  EXPECT_EQ(k.len, kMaxNameLen);
}

}  // namespace
}  // namespace dstore
