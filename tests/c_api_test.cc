// Tests for the C bindings (dstore_c.h): the exact Table 2 surface, error
// code mapping, filesystem + key-value styles, locks, and persistence
// through a backing directory.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "dstore/dstore_c.h"

namespace {

dstore_options small_opts(const char* dir = nullptr) {
  dstore_options o{};
  o.max_objects = 1024;
  o.num_blocks = 4096;
  o.log_slots = 512;
  o.background_checkpointing = 0;
  o.backing_dir = dir;
  return o;
}

TEST(CApi, OpenCloseInMemory) {
  dstore_options o = small_opts();
  dstore_t* s = dstore_open(&o, /*create=*/1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(dstore_object_count(s), 0u);
  dstore_close(s);
}

TEST(CApi, KeyValueRoundTrip) {
  dstore_options o = small_opts();
  dstore_t* s = dstore_open(&o, 1);
  ASSERT_NE(s, nullptr);
  ds_ctx_t* ctx = ds_init(s);
  ASSERT_NE(ctx, nullptr);

  const char value[] = "forty-two";
  EXPECT_EQ(oput(ctx, "answer", value, sizeof(value)), (ssize_t)sizeof(value));
  char buf[64] = {};
  EXPECT_EQ(oget(ctx, "answer", buf, sizeof(buf)), (ssize_t)sizeof(value));
  EXPECT_STREQ(buf, value);
  EXPECT_EQ(dstore_object_count(s), 1u);
  EXPECT_EQ(odelete(ctx, "answer"), DS_OK);
  EXPECT_EQ(oget(ctx, "answer", buf, sizeof(buf)), DS_ENOTFOUND);
  EXPECT_EQ(odelete(ctx, "answer"), DS_ENOTFOUND);

  ds_finalize(ctx);
  dstore_close(s);
}

TEST(CApi, FilesystemStyle) {
  dstore_options o = small_opts();
  dstore_t* s = dstore_open(&o, 1);
  ASSERT_NE(s, nullptr);
  ds_ctx_t* ctx = ds_init(s);

  EXPECT_EQ(oopen(ctx, "missing", 0, DS_O_READ), nullptr);
  OBJECT* f = oopen(ctx, "log.txt", 0, DS_O_READ | DS_O_WRITE | DS_O_CREATE);
  ASSERT_NE(f, nullptr);
  const char line1[] = "first line\n";
  const char line2[] = "second line\n";
  EXPECT_EQ(owrite(f, line1, strlen(line1), 0), (ssize_t)strlen(line1));
  EXPECT_EQ(owrite(f, line2, strlen(line2), (off_t)strlen(line1)), (ssize_t)strlen(line2));
  char buf[64] = {};
  ssize_t n = oread(f, buf, sizeof(buf), 0);
  EXPECT_EQ(n, (ssize_t)(strlen(line1) + strlen(line2)));
  EXPECT_EQ(std::string(buf, (size_t)n), std::string(line1) + line2);
  // Reads past EOF return 0; mode violations return EINVAL.
  EXPECT_EQ(oread(f, buf, 10, 1000), 0);
  oclose(f);
  OBJECT* ro = oopen(ctx, "log.txt", 0, DS_O_READ);
  ASSERT_NE(ro, nullptr);
  EXPECT_EQ(owrite(ro, "x", 1, 0), DS_EINVAL);
  oclose(ro);

  ds_finalize(ctx);
  dstore_close(s);
}

TEST(CApi, LocksViaC) {
  dstore_options o = small_opts();
  dstore_t* s = dstore_open(&o, 1);
  ds_ctx_t* ctx = ds_init(s);
  EXPECT_EQ(olock(ctx, "dir"), DS_OK);
  EXPECT_EQ(olock(ctx, "dir"), DS_EBUSY);  // no recursive locks
  char v[8] = {};
  EXPECT_EQ(oput(ctx, "dir", v, sizeof(v)), (ssize_t)sizeof(v));  // holder writes
  EXPECT_EQ(ounlock(ctx, "dir"), DS_OK);
  EXPECT_EQ(ounlock(ctx, "dir"), DS_ENOTFOUND);
  ds_finalize(ctx);
  dstore_close(s);
}

TEST(CApi, CheckpointAndCapacityErrors) {
  dstore_options o = small_opts();
  o.max_objects = 4;
  dstore_t* s = dstore_open(&o, 1);
  ds_ctx_t* ctx = ds_init(s);
  char v[16] = {};
  for (int i = 0; i < 4; i++) {
    EXPECT_EQ(oput(ctx, ("k" + std::to_string(i)).c_str(), v, sizeof(v)),
              (ssize_t)sizeof(v));
  }
  EXPECT_EQ(oput(ctx, "k5", v, sizeof(v)), DS_ENOSPC);
  EXPECT_EQ(dstore_checkpoint(s), DS_OK);
  ds_finalize(ctx);
  dstore_close(s);
}

TEST(CApi, PersistsThroughBackingDir) {
  auto dir = std::filesystem::temp_directory_path() / "dstore_capi_test";
  std::filesystem::remove_all(dir);
  dstore_options o = small_opts(dir.c_str());
  {
    dstore_t* s = dstore_open(&o, /*create=*/1);
    ASSERT_NE(s, nullptr);
    ds_ctx_t* ctx = ds_init(s);
    const char v[] = "durable";
    EXPECT_EQ(oput(ctx, "persists", v, sizeof(v)), (ssize_t)sizeof(v));
    ds_finalize(ctx);
    dstore_close(s);
  }
  {
    dstore_t* s = dstore_open(&o, /*create=*/0);  // recover
    ASSERT_NE(s, nullptr);
    ds_ctx_t* ctx = ds_init(s);
    char buf[16] = {};
    EXPECT_EQ(oget(ctx, "persists", buf, sizeof(buf)), (ssize_t)8);
    EXPECT_STREQ(buf, "durable");
    ds_finalize(ctx);
    dstore_close(s);
  }
  std::filesystem::remove_all(dir);
}

TEST(CApi, CorruptionSurfacesAsEcorrupt) {
  auto dir = std::filesystem::temp_directory_path() / "dstore_capi_corrupt";
  std::filesystem::remove_all(dir);
  dstore_options o = small_opts(dir.c_str());
  const char v[] = "bytes that are about to rot on the device";
  {
    dstore_t* s = dstore_open(&o, /*create=*/1);
    ASSERT_NE(s, nullptr);
    ds_ctx_t* ctx = ds_init(s);
    ASSERT_EQ(oput(ctx, "victim", v, sizeof(v)), (ssize_t)sizeof(v));
    ds_finalize(ctx);
    dstore_close(s);
  }
  // Hex-edit the data image behind the store's back — silent media rot.
  // The page-checksum sidecar (data.img.crc) is left intact, so the edit
  // is exactly the mismatch the integrity layer exists to catch.
  {
    std::fstream img(dir / "data.img",
                     std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(img.is_open());
    std::string blob((std::istreambuf_iterator<char>(img)), {});
    size_t pos = blob.find("about to rot");
    ASSERT_NE(pos, std::string::npos);
    img.clear();
    img.seekp((std::streamoff)pos);
    char flipped = (char)(blob[pos] ^ 0x01);
    img.write(&flipped, 1);
  }
  {
    dstore_t* s = dstore_open(&o, /*create=*/0);  // recover
    ASSERT_NE(s, nullptr);
    ds_ctx_t* ctx = ds_init(s);
    char buf[64] = {};
    // The read must never return the rotten bytes as OK: the device-level
    // checksum fails, repair has no log copy to heal from, and the error
    // propagates through the C bindings as DS_ECORRUPT.
    EXPECT_EQ(oget(ctx, "victim", buf, sizeof(buf)), (ssize_t)DS_ECORRUPT);
    EXPECT_EQ(ds_last_error_code(), DS_ECORRUPT);
    EXPECT_NE(ds_last_error()[0], '\0');
    ds_finalize(ctx);
    dstore_close(s);
  }
  std::filesystem::remove_all(dir);
}

TEST(CApi, LastErrorTracksMostRecentCall) {
  dstore_options o = small_opts();
  dstore_t* s = dstore_open(&o, 1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(ds_last_error_code(), DS_OK);  // successful open
  EXPECT_STREQ(ds_last_error(), "");
  ds_ctx_t* ctx = ds_init(s);

  char buf[16] = {};
  EXPECT_EQ(oget(ctx, "nope", buf, sizeof(buf)), DS_ENOTFOUND);
  EXPECT_EQ(ds_last_error_code(), DS_ENOTFOUND);
  EXPECT_NE(std::string(ds_last_error()).find("nope"), std::string::npos);

  const char v[] = "v";
  EXPECT_EQ(oput(ctx, "k", v, sizeof(v)), (ssize_t)sizeof(v));
  EXPECT_EQ(ds_last_error_code(), DS_OK);  // success clears the slot
  EXPECT_STREQ(ds_last_error(), "");

  EXPECT_EQ(oget(nullptr, "k", buf, sizeof(buf)), DS_EINVAL);
  EXPECT_EQ(ds_last_error_code(), DS_EINVAL);
  EXPECT_NE(ds_last_error()[0], '\0');

  ds_finalize(ctx);
  dstore_close(s);
}

TEST(CApi, NullArgumentsRejected) {
  EXPECT_EQ(ds_init(nullptr), nullptr);
  EXPECT_EQ(oget(nullptr, "k", nullptr, 0), DS_EINVAL);
  EXPECT_EQ(odelete(nullptr, "k"), DS_EINVAL);
  EXPECT_EQ(olock(nullptr, "k"), DS_EINVAL);
  EXPECT_EQ(oread(nullptr, nullptr, 0, 0), DS_EINVAL);
  dstore_close(nullptr);  // no-op
  ds_finalize(nullptr);   // no-op
  oclose(nullptr);        // no-op
}

TEST(CApi, ApiVersionMatchesHeader) {
  uint32_t v = ds_api_version();
  EXPECT_EQ(v >> 16, (uint32_t)DS_API_VERSION_MAJOR);
  EXPECT_EQ(v & 0xffffu, (uint32_t)DS_API_VERSION_MINOR);
  EXPECT_GE(DS_API_VERSION_MAJOR, 2);  // Stats getters removed in 2.0
}

TEST(CApi, MetricsDumpBothFormats) {
  dstore_options o = small_opts();
  dstore_t* s = dstore_open(&o, 1);
  ASSERT_NE(s, nullptr);
  ds_ctx_t* ctx = ds_init(s);
  const char v[] = "value";
  ASSERT_EQ(oput(ctx, "k", v, sizeof(v)), (ssize_t)sizeof(v));

  char* json = ds_metrics_dump(s, DS_METRICS_JSON);
  ASSERT_NE(json, nullptr);
  EXPECT_NE(strstr(json, "\"version\": 1"), nullptr);
  EXPECT_NE(strstr(json, "dstore_puts_total"), nullptr);
  free(json);

  char* prom = ds_metrics_dump(s, DS_METRICS_PROMETHEUS);
  ASSERT_NE(prom, nullptr);
  EXPECT_NE(strstr(prom, "# TYPE dstore_puts_total counter"), nullptr);
  free(prom);

  // Invalid arguments yield NULL, not a crash.
  EXPECT_EQ(ds_metrics_dump(nullptr, DS_METRICS_JSON), nullptr);
  EXPECT_EQ(ds_metrics_dump(s, 99), nullptr);

  ds_finalize(ctx);
  dstore_close(s);
}

}  // namespace
