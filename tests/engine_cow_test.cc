// CoW-checkpoint-mode engine tests: mprotect faulting, writer-assisted
// copies, checkpoint correctness under concurrent mutation, and recovery.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "common/rng.h"
#include "dipper/engine.h"
#include "ds/btree.h"

namespace dstore::dipper {
namespace {

class KvClient : public SpaceClient {
 public:
  Status format(SlabAllocator& space) override {
    auto h = BTree::create(space);
    if (!h.is_ok()) return h.status();
    space.set_user_root(h.value().off);
    return Status::ok();
  }
  Status replay(SlabAllocator& space, std::span<const LogRecordView> records) override {
    BTree tree(space, OffPtr<BTree::Header>(space.user_root()));
    for (const auto& rec : records) {
      if (rec.op == OpType::kPut) {
        DSTORE_RETURN_IF_ERROR(tree.upsert(rec.name, rec.arg0));
      } else if (rec.op == OpType::kDelete) {
        Status s = tree.erase(rec.name);
        if (!s.is_ok() && s.code() != Code::kNotFound) return s;
      }
    }
    return Status::ok();
  }
};

EngineConfig cow_cfg() {
  EngineConfig cfg;
  cfg.arena_bytes = 4 << 20;
  cfg.log_slots = 256;
  cfg.background_checkpointing = false;
  cfg.ckpt_mode = EngineConfig::CkptMode::kCow;
  return cfg;
}

struct CowRig {
  KvClient client;
  EngineConfig cfg;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<Engine> engine;

  explicit CowRig(EngineConfig c = cow_cfg()) : cfg(c) {
    pool = std::make_unique<pmem::Pool>(Engine::required_pool_bytes(cfg),
                                        pmem::Pool::Mode::kCrashSim);
    engine = std::make_unique<Engine>(pool.get(), &client, cfg);
    EXPECT_TRUE(engine->init_fresh().is_ok());
  }

  void put(const std::string& name, uint64_t value) {
    Key k = Key::from(name);
    auto h = engine->append(OpType::kPut, k, value, 0);
    ASSERT_TRUE(h.is_ok());
    BTree tree(engine->space(), OffPtr<BTree::Header>(engine->space().user_root()));
    ASSERT_TRUE(tree.upsert(k, value).is_ok());
    engine->commit(h.value());
  }

  std::optional<uint64_t> get(const std::string& name) {
    BTree tree(engine->space(), OffPtr<BTree::Header>(engine->space().user_root()));
    return tree.find(Key::from(name));
  }

  void crash_and_recover() {
    engine->stop_background();
    pool->crash();
    engine = std::make_unique<Engine>(pool.get(), &client, cfg);
    ASSERT_TRUE(engine->recover().is_ok());
  }
};

TEST(EngineCow, CheckpointPreservesState) {
  CowRig rig;
  for (int i = 0; i < 60; i++) rig.put("cow" + std::to_string(i), i);
  ASSERT_TRUE(rig.engine->checkpoint_now().is_ok());
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(rig.get("cow" + std::to_string(i)).has_value()) << i;
  }
  // Writes after the checkpoint still work (arena is unprotected again).
  rig.put("after", 99);
  EXPECT_EQ(*rig.get("after"), 99u);
}

TEST(EngineCow, CrashAfterCheckpointRecovers) {
  CowRig rig;
  for (int i = 0; i < 40; i++) rig.put("a" + std::to_string(i), i);
  ASSERT_TRUE(rig.engine->checkpoint_now().is_ok());
  for (int i = 0; i < 30; i++) rig.put("b" + std::to_string(i), 100 + i);
  rig.crash_and_recover();
  for (int i = 0; i < 40; i++) ASSERT_TRUE(rig.get("a" + std::to_string(i)).has_value());
  for (int i = 0; i < 30; i++) {
    auto v = rig.get("b" + std::to_string(i));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 100u + i);
  }
}

TEST(EngineCow, WriterDuringCheckpointTriggersFaultCopies) {
  // Run the checkpoint on a background thread while a writer mutates the
  // arena: the writer must fault, copy pages, and proceed.
  EngineConfig cfg = cow_cfg();
  cfg.log_slots = 4096;
  CowRig rig(cfg);
  for (int i = 0; i < 500; i++) rig.put("warm" + std::to_string(i), i);

  std::atomic<bool> ckpt_done{false};
  std::thread ckpt([&] {
    ASSERT_TRUE(rig.engine->checkpoint_now().is_ok());
    ckpt_done = true;
  });
  // Concurrent writes racing the copier.
  for (int i = 0; i < 500; i++) rig.put("during" + std::to_string(i), i);
  ckpt.join();
  ASSERT_TRUE(ckpt_done.load());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(rig.get("warm" + std::to_string(i)).has_value()) << i;
    ASSERT_TRUE(rig.get("during" + std::to_string(i)).has_value()) << i;
  }
  // At least some of the concurrent writes should have assisted via faults
  // (not guaranteed for every run, but the counter must be consistent).
  EXPECT_GE(rig.engine->stats().cow_page_faults.load(), 0u);
}

TEST(EngineCow, CrashMidCopyRecoversFromOldCopy) {
  EngineConfig cfg = cow_cfg();
  cfg.test_point_hook = [](const char* p) { return std::string(p) != "ckpt:cow_mid_copy"; };
  CowRig rig(cfg);
  for (int i = 0; i < 80; i++) rig.put("x" + std::to_string(i), i * 7);
  EXPECT_FALSE(rig.engine->checkpoint_now().is_ok());  // dies mid-copy
  rig.cfg.test_point_hook = nullptr;  // the "restarted process" has no hook
  rig.crash_and_recover();
  for (int i = 0; i < 80; i++) {
    auto v = rig.get("x" + std::to_string(i));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, (uint64_t)i * 7);
  }
  // And the system must be able to checkpoint + operate normally again.
  rig.put("post-recovery", 1);
  ASSERT_TRUE(rig.engine->checkpoint_now().is_ok());
  EXPECT_TRUE(rig.get("post-recovery").has_value());
}

TEST(EngineCow, RepeatedCheckpointCyclesStayConsistent) {
  EngineConfig cfg = cow_cfg();
  CowRig rig(cfg);
  Rng rng(31);
  std::map<std::string, uint64_t> model;
  for (int round = 0; round < 8; round++) {
    for (int i = 0; i < 60; i++) {
      std::string name = "k" + std::to_string(rng.next_below(100));
      uint64_t v = rng.next();
      rig.put(name, v);
      model[name] = v;
    }
    ASSERT_TRUE(rig.engine->checkpoint_now().is_ok()) << round;
  }
  rig.crash_and_recover();
  BTree tree(rig.engine->space(), OffPtr<BTree::Header>(rig.engine->space().user_root()));
  ASSERT_TRUE(tree.validate().is_ok());
  EXPECT_EQ(tree.size(), model.size());
  for (const auto& [name, v] : model) {
    auto got = tree.find(Key::from(name));
    ASSERT_TRUE(got.has_value()) << name;
    EXPECT_EQ(*got, v);
  }
}

}  // namespace
}  // namespace dstore::dipper
