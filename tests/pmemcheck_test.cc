// PmemCheck tests: (a) the full DIPPER engine lifecycle — appends, commits,
// locks, checkpoints in both modes, crashes, recovery — runs violation-free
// under the checker; (b) each of the four defect classes is detected when
// the corresponding protocol rule is deliberately broken.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <thread>

#include "common/crc32c.h"
#include "common/rng.h"
#include "dipper/engine.h"
#include "ds/btree.h"
#include "ds/metadata_zone.h"
#include "pmem/persist_checker.h"
#include "pmem/pool.h"

namespace dstore::pmem {
namespace {

using dipper::Engine;
using dipper::EngineConfig;
using dipper::LogRecordView;
using dipper::OpType;
using dipper::PmemLog;
using dipper::SpaceClient;

std::string report_str(const PersistChecker& c) {
  std::ostringstream os;
  c.report().print(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Pool-level defect-class detection
// ---------------------------------------------------------------------------

class PmemCheckPoolTest : public ::testing::Test {
 protected:
  PmemCheckPoolTest() : pool_(1 << 20, Pool::Mode::kCrashSim) { pool_.attach_checker(&checker_); }
  ~PmemCheckPoolTest() override { pool_.detach_checker(); }

  Pool pool_;
  PersistChecker checker_;
};

TEST_F(PmemCheckPoolTest, CleanProtocolHasNoViolations) {
  char* p = pool_.base();
  std::memset(p, 0x5a, 256);
  pool_.persist(p, 256);
  pool_.check_durable(p, 256, "test:clean");
  EXPECT_EQ(checker_.report().total(), 0u) << report_str(checker_);
}

TEST_F(PmemCheckPoolTest, MissingFlushDetectedAtDurabilityPoint) {
  char* p = pool_.base();
  std::memset(p, 0x11, 64);       // dirty line...
  std::memset(p + 128, 0x22, 64); // ...and another, two lines apart
  pool_.persist(p + 128, 64);     // only the second is persisted
  pool_.check_durable(p, 192, "test:publish");
  EXPECT_EQ(checker_.report().count(CheckKind::kMissingFlush), 1u) << report_str(checker_);
  EXPECT_EQ(checker_.report().violations()[0].offset, 0u);
  EXPECT_EQ(checker_.report().violations()[0].site, "test:publish");
}

TEST_F(PmemCheckPoolTest, StagedButUnfencedDetectedAtDurabilityPoint) {
  char* p = pool_.base();
  std::memset(p, 0x31, 64);
  pool_.flush(p, 64);  // staged, no fence
  pool_.check_durable(p, 64, "test:publish");
  ASSERT_EQ(checker_.report().count(CheckKind::kMissingFlush), 1u) << report_str(checker_);
  EXPECT_NE(checker_.report().violations()[0].detail.find("not yet fenced"), std::string::npos);
  pool_.fence();  // retire cleanly so teardown stays quiet
  EXPECT_EQ(checker_.report().count(CheckKind::kStoreAfterFlush), 0u);
}

TEST_F(PmemCheckPoolTest, RedundantFlushOfCleanLineCounted) {
  char* p = pool_.base();
  std::memset(p, 0x42, 64);
  pool_.persist(p, 64);
  pool_.persist(p, 64);  // line is already persistent: pure latency waste
  EXPECT_EQ(checker_.report().count(CheckKind::kRedundantFlush), 1u) << report_str(checker_);
  // Redundant flushes are soft: they never count as hard violations.
  EXPECT_EQ(checker_.report().hard_count(), 0u);
}

TEST_F(PmemCheckPoolTest, RedundantDoubleFlushBeforeFenceCounted) {
  char* p = pool_.base();
  std::memset(p, 0x43, 64);
  pool_.flush(p, 64);
  pool_.flush(p, 64);  // same contents staged twice before the fence
  pool_.fence();
  EXPECT_EQ(checker_.report().count(CheckKind::kRedundantFlush), 1u) << report_str(checker_);
  EXPECT_EQ(checker_.report().count(CheckKind::kStoreAfterFlush), 0u);
}

TEST_F(PmemCheckPoolTest, StoreAfterFlushBeforeFenceDetected) {
  char* p = pool_.base();
  std::memset(p, 0x01, 64);
  pool_.flush(p, 64);
  p[0] = 0x02;  // store into the staged window — §3.4 ordering broken
  pool_.fence();
  EXPECT_EQ(checker_.report().count(CheckKind::kStoreAfterFlush), 1u) << report_str(checker_);
}

TEST_F(PmemCheckPoolTest, StoreAfterFlushWithReflushIsClean) {
  char* p = pool_.base();
  std::memset(p, 0x01, 64);
  pool_.flush(p, 64);
  p[0] = 0x02;
  pool_.flush(p, 64);  // re-flush picks up the new contents: legitimate
  pool_.fence();
  EXPECT_EQ(checker_.report().count(CheckKind::kStoreAfterFlush), 0u) << report_str(checker_);
  EXPECT_EQ(checker_.report().count(CheckKind::kRedundantFlush), 0u);
}

TEST_F(PmemCheckPoolTest, UnpersistedRecoveryReadDetected) {
  char* p = pool_.base();
  std::memset(p, 0x77, 128);  // written, never flushed
  pool_.check_recovery_read(p, 128, "test:recover");
  ASSERT_EQ(checker_.report().count(CheckKind::kUnpersistedRead), 1u) << report_str(checker_);
  EXPECT_EQ(checker_.report().violations()[0].lines, 2u);
}

TEST_F(PmemCheckPoolTest, RecoveryReadAfterCrashIsClean) {
  char* p = pool_.base();
  std::memset(p, 0x78, 128);
  pool_.crash();  // region reverts to the image: reads now see crash truth
  pool_.check_recovery_read(p, 128, "test:recover");
  EXPECT_EQ(checker_.report().total(), 0u) << report_str(checker_);
}

TEST_F(PmemCheckPoolTest, ObligationCaughtWhenBulkPassMissesIt) {
  char* p = pool_.base();
  std::memset(p, 0x61, 4096);
  pool_.note_obligation(p, 4096, "test:writer");
  pool_.persist_bulk(p, 2048);  // durability pass covers only half
  pool_.check_obligations("test:install");
  ASSERT_EQ(checker_.report().count(CheckKind::kMissingFlush), 1u) << report_str(checker_);
  EXPECT_EQ(checker_.report().violations()[0].site, "test:writer");
}

TEST_F(PmemCheckPoolTest, ObligationSatisfiedByBulkPass) {
  char* p = pool_.base();
  std::memset(p, 0x62, 4096);
  pool_.note_obligation(p, 4096, "test:writer");
  pool_.persist_bulk(p, 4096);
  pool_.check_obligations("test:install");
  EXPECT_EQ(checker_.report().total(), 0u) << report_str(checker_);
}

TEST_F(PmemCheckPoolTest, CrashClearsPendingObligations) {
  char* p = pool_.base();
  std::memset(p, 0x63, 256);
  pool_.note_obligation(p, 256, "test:writer");
  pool_.crash();  // the pending checkpoint died with DRAM; no obligation survives
  pool_.check_obligations("test:install");
  EXPECT_EQ(checker_.report().total(), 0u) << report_str(checker_);
}

TEST(PmemCheckTeardown, StagedNeverFencedReportedAtDetach) {
  Pool pool(1 << 20, Pool::Mode::kCrashSim);
  PersistChecker checker;
  pool.attach_checker(&checker);
  char* p = pool.base();
  std::memset(p, 0x21, 128);
  pool.flush(p, 128);  // two lines staged, never fenced
  pool.detach_checker();
  ASSERT_EQ(checker.report().count(CheckKind::kMissingFlush), 1u) << report_str(checker);
  EXPECT_EQ(checker.report().violations()[0].lines, 2u);
}

TEST(PmemCheckScopeTest, SiteAttributionUsesInnermostScope) {
  Pool pool(1 << 20, Pool::Mode::kCrashSim);
  PersistChecker checker;
  pool.attach_checker(&checker);
  char* p = pool.base();
  std::memset(p, 0x99, 64);
  pool.persist(p, 64);
  {
    PmemCheckScope outer("outer");
    PmemCheckScope inner("inner");
    pool.persist(p, 64);  // redundant, attributed to "inner"
  }
  pool.detach_checker();
  ASSERT_EQ(checker.report().count(CheckKind::kRedundantFlush), 1u) << report_str(checker);
  EXPECT_EQ(checker.report().violations()[0].site, "inner");
}

// ---------------------------------------------------------------------------
// Log-level: deliberately breaking the §3.4 record protocol is detected
// ---------------------------------------------------------------------------

TEST(PmemCheckLog, CleanRecordWritesAreViolationFree) {
  Pool pool(1 << 20, Pool::Mode::kCrashSim);
  PersistChecker checker;
  pool.attach_checker(&checker);
  PmemLog log(&pool, 0, 64);
  log.format();
  for (uint32_t s = 0; s < 32; s++) {
    // Mix of single-line (short name) and two-line (long name) records.
    std::string name = s % 2 == 0 ? "obj" + std::to_string(s)
                                  : std::string(48, 'a') + std::to_string(s);
    log.write_record(s, s + 1, OpType::kPut, Key::from(name), s, 0, false);
    log.commit(s);
  }
  LogRecordView rec;
  for (uint32_t s = 0; s < 32; s++) ASSERT_TRUE(log.read(s, &rec));
  pool.detach_checker();
  EXPECT_EQ(checker.report().total(), 0u) << report_str(checker);
}

TEST(PmemCheckLog, ForgedUnpersistedRecordCaughtOnRead) {
  Pool pool(1 << 20, Pool::Mode::kCrashSim);
  PersistChecker checker;
  pool.attach_checker(&checker);
  PmemLog log(&pool, 0, 64);
  log.format();
  // A buggy writer that skips the persist: stores the record (LSN and all,
  // including a *correct* slot CRC) with plain memory writes and never
  // flushes. The CRC must be valid — the defect under test is the missing
  // persist, and a checksum failure would mask it behind the earlier
  // integrity tier.
  struct RawSlot {
    uint64_t lsn;
    uint32_t length;
    uint16_t op;
    uint16_t flags;
    uint64_t arg0, arg1;
    uint8_t klen;
    char name[kMaxNameLen];
    uint32_t crc;
    uint32_t payload_crc;
  };
  auto* raw = reinterpret_cast<RawSlot*>(pool.base());
  raw->length = 8 + 8 + 1 + 3;
  raw->op = (uint16_t)OpType::kPut;
  raw->flags = PmemLog::kFlagCommitted;
  raw->arg0 = 7;
  raw->klen = 3;
  std::memcpy(raw->name, "key", 3);
  {  // mirror of PmemLog::record_crc for slot 0, lsn 42
    uint32_t c = 0xffffffffu;
    c = crc32c_extend_u64(c, 0);
    c = crc32c_extend_u64(c, 42);
    c = crc32c_extend_u64(c, ((uint64_t)raw->length << 32) | raw->op);
    c = crc32c_extend_u64(c, raw->arg0);
    c = crc32c_extend_u64(c, raw->arg1);
    c = crc32c_extend_u64(c, ((uint64_t)raw->klen << 32) | raw->payload_crc);
    c = crc32c_extend(c, raw->name, raw->klen);
    c ^= 0xffffffffu;
    raw->crc = c == 0 ? 1u : c;
  }
  raw->lsn = 42;  // published without any flush/fence
  LogRecordView rec;
  ASSERT_TRUE(log.read(0, &rec));  // replay would consume this record...
  pool.detach_checker();
  // ...but PmemCheck knows a crash would never have preserved it.
  EXPECT_GE(checker.report().count(CheckKind::kUnpersistedRead), 1u) << report_str(checker);
}

// ---------------------------------------------------------------------------
// Engine-level: the full DIPPER lifecycle runs violation-free
// ---------------------------------------------------------------------------

// Minimal client (mirrors engine_test): btree name -> u64.
class KvClient : public SpaceClient {
 public:
  Status format(SlabAllocator& space) override {
    auto h = BTree::create(space);
    if (!h.is_ok()) return h.status();
    space.set_user_root(h.value().off);
    return Status::ok();
  }
  Status replay(SlabAllocator& space, std::span<const LogRecordView> records) override {
    BTree tree(space, OffPtr<BTree::Header>(space.user_root()));
    for (const auto& rec : records) {
      if (rec.op == OpType::kPut) {
        DSTORE_RETURN_IF_ERROR(tree.upsert(rec.name, rec.arg0));
      } else if (rec.op == OpType::kDelete) {
        Status s = tree.erase(rec.name);
        if (!s.is_ok() && s.code() != Code::kNotFound) return s;
      }
    }
    return Status::ok();
  }
};

class PmemCheckEngineTest : public ::testing::Test {
 protected:
  void init(EngineConfig cfg) {
    cfg_ = cfg;
    pool_ = std::make_unique<Pool>(Engine::required_pool_bytes(cfg_), Pool::Mode::kCrashSim);
    pool_->attach_checker(&checker_);
    engine_ = std::make_unique<Engine>(pool_.get(), &client_, cfg_);
    ASSERT_TRUE(engine_->init_fresh().is_ok());
  }

  void TearDown() override {
    if (engine_) engine_->shutdown();
    engine_.reset();
    if (pool_) pool_->detach_checker();
  }

  void put(const std::string& name, uint64_t value) {
    Key k = Key::from(name);
    auto h = engine_->append(OpType::kPut, k, value, 0);
    ASSERT_TRUE(h.is_ok()) << h.status().to_string();
    BTree tree(engine_->space(), OffPtr<BTree::Header>(engine_->space().user_root()));
    ASSERT_TRUE(tree.upsert(k, value).is_ok());
    engine_->commit(h.value());
  }

  void del(const std::string& name) {
    Key k = Key::from(name);
    auto h = engine_->append(OpType::kDelete, k, 0, 0);
    ASSERT_TRUE(h.is_ok());
    BTree tree(engine_->space(), OffPtr<BTree::Header>(engine_->space().user_root()));
    (void)tree.erase(k);
    engine_->commit(h.value());
  }

  std::optional<uint64_t> get(const std::string& name) {
    BTree tree(engine_->space(), OffPtr<BTree::Header>(engine_->space().user_root()));
    return tree.find(Key::from(name));
  }

  EngineConfig cfg_;
  KvClient client_;
  PersistChecker checker_;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<Engine> engine_;
};

EngineConfig checked_cfg() {
  EngineConfig cfg;
  cfg.arena_bytes = 4 << 20;
  cfg.log_slots = 128;
  cfg.background_checkpointing = false;
  return cfg;
}

TEST_F(PmemCheckEngineTest, FullLifecycleViolationFree) {
  init(checked_cfg());
  // Normal operation: appends + commits, long names forcing two-line
  // records, deletes, explicit checkpoints, olock/ounlock cycles.
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < 40; i++) {
      std::string name = i % 3 == 0 ? std::string(50, 'k') + std::to_string(i)
                                    : "key" + std::to_string(i);
      put(name, (uint64_t)round * 1000 + i);
    }
    for (int i = 0; i < 10; i += 3) del("key" + std::to_string(i));
    Key lk = Key::from("locked-object");
    auto lh = engine_->lock_object(lk);
    ASSERT_TRUE(lh.is_ok());
    ASSERT_TRUE(engine_->checkpoint_now().is_ok());  // relocates the held olock
    engine_->unlock_object(lh.value(), lk);
  }
  // Crash + recover, then keep operating.
  engine_->stop_background();
  pool_->crash();
  engine_ = std::make_unique<Engine>(pool_.get(), &client_, cfg_);
  ASSERT_TRUE(engine_->recover().is_ok());
  EXPECT_TRUE(get("key1").has_value());
  for (int i = 0; i < 20; i++) put("post" + std::to_string(i), i);
  ASSERT_TRUE(engine_->checkpoint_now().is_ok());
  // Clean restart (recovery without a crash).
  engine_->shutdown();
  engine_ = std::make_unique<Engine>(pool_.get(), &client_, cfg_);
  ASSERT_TRUE(engine_->recover().is_ok());
  EXPECT_TRUE(get("post3").has_value());

  EXPECT_EQ(checker_.report().hard_count(), 0u) << report_str(checker_);
  // The flush discipline is also tight: no redundant flushes anywhere in
  // the log/checkpoint/recovery protocol.
  EXPECT_EQ(checker_.report().count(CheckKind::kRedundantFlush), 0u) << report_str(checker_);
}

TEST_F(PmemCheckEngineTest, AbandonedCheckpointRecoveryViolationFree) {
  init(checked_cfg());
  for (const char* point : {"ckpt:after_swap", "ckpt:after_drain", "ckpt:after_replay"}) {
    for (int i = 0; i < 30; i++) put("k" + std::to_string(i), i);
    ASSERT_FALSE(engine_->checkpoint_abandon_at(point).is_ok());
    engine_->stop_background();
    pool_->crash();
    engine_ = std::make_unique<Engine>(pool_.get(), &client_, cfg_);
    ASSERT_TRUE(engine_->recover().is_ok()) << point;
    EXPECT_TRUE(get("k5").has_value()) << point;
  }
  EXPECT_EQ(checker_.report().hard_count(), 0u) << report_str(checker_);
}

TEST_F(PmemCheckEngineTest, ConcurrentAppendersViolationFree) {
  EngineConfig cfg = checked_cfg();
  cfg.log_slots = 2048;
  init(cfg);
  constexpr int kThreads = 4, kOps = 120;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; t++) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; i++) {
        Key k = Key::from("t" + std::to_string(t) + "-" + std::to_string(i));
        auto h = engine_->append(OpType::kPut, k, (uint64_t)i, 0);
        ASSERT_TRUE(h.is_ok());
        engine_->commit(h.value());
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_TRUE(engine_->checkpoint_now().is_ok());
  EXPECT_EQ(checker_.report().hard_count(), 0u) << report_str(checker_);
}

TEST_F(PmemCheckEngineTest, CowCheckpointViolationFree) {
  EngineConfig cfg = checked_cfg();
  cfg.ckpt_mode = EngineConfig::CkptMode::kCow;
  init(cfg);
  for (int i = 0; i < 50; i++) put("cow" + std::to_string(i), i);
  ASSERT_TRUE(engine_->checkpoint_now().is_ok());
  for (int i = 0; i < 20; i++) put("post" + std::to_string(i), i);
  engine_->shutdown();
  engine_ = std::make_unique<Engine>(pool_.get(), &client_, cfg_);
  ASSERT_TRUE(engine_->recover().is_ok());
  EXPECT_TRUE(get("cow7").has_value());
  EXPECT_EQ(checker_.report().hard_count(), 0u) << report_str(checker_);
}

// ---------------------------------------------------------------------------
// MetadataZone durability obligations (checkpoint-replay writes into PMEM)
// ---------------------------------------------------------------------------

TEST(PmemCheckMetadata, UnpersistedReplayWriteCaught) {
  Pool pool(8 << 20, Pool::Mode::kCrashSim);
  PersistChecker checker;
  pool.attach_checker(&checker);
  Arena arena(pool.base(), 4 << 20);
  SlabAllocator space = SlabAllocator::format(arena);
  auto zone_h = MetadataZone::create(space, 16);
  ASSERT_TRUE(zone_h.is_ok());
  MetadataZone zone(space, zone_h.value());
  ASSERT_TRUE(zone.init_entry(0, Key::from("object-a")).is_ok());
  ASSERT_TRUE(zone.append_block(0, 1234).is_ok());
  // The checkpoint "forgets" its durability pass: obligations fire.
  pool.check_obligations("test:install");
  uint64_t after_missed_pass = checker.report().count(CheckKind::kMissingFlush);
  EXPECT_GE(after_missed_pass, 1u) << report_str(checker);
  // And with the pass in place they are satisfied: no new violations.
  ASSERT_TRUE(zone.init_entry(1, Key::from("object-b")).is_ok());
  pool.persist_bulk(pool.base(), space.used_bytes());
  pool.check_obligations("test:install");
  EXPECT_EQ(checker.report().count(CheckKind::kMissingFlush), after_missed_pass)
      << report_str(checker);
  uint64_t before = checker.report().total();
  pool.detach_checker();
  EXPECT_EQ(checker.report().total(), before) << report_str(checker);
}

}  // namespace
}  // namespace dstore::pmem
