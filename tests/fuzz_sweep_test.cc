// Seeded structural fuzz sweeps: long random operation sequences against
// reference models, with invariant validation at intervals. Each seed is an
// independent exploration; failures print the seed for reproduction.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "alloc/slab_allocator.h"
#include "common/rng.h"
#include "ds/btree.h"
#include "ds/circular_pool.h"

namespace dstore {
namespace {

class BTreeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeFuzz, RandomOpsAgainstModel) {
  uint64_t seed = GetParam();
  size_t arena_size = 96 << 20;
  auto buf = std::make_unique<char[]>(arena_size);
  Arena arena(buf.get(), arena_size);
  SlabAllocator sp = SlabAllocator::format(arena);
  auto h = BTree::create(sp);
  ASSERT_TRUE(h.is_ok());
  BTree tree(sp, h.value());

  Rng rng(seed);
  std::map<std::string, uint64_t> model;
  // Mixed key shapes: short, numeric, long — stresses comparisons and node
  // splits differently per seed.
  auto make_key = [&](uint64_t id) {
    switch (id % 3) {
      case 0: return "k" + std::to_string(id);
      case 1: return std::string(20, 'p') + std::to_string(id);
      default: return std::string(kMaxNameLen - 8, 'z') + std::to_string(id % 1000);
    }
  };
  const int kOps = 25000;
  for (int i = 0; i < kOps; i++) {
    uint64_t id = rng.next_below(4000);
    std::string ks = make_key(id);
    Key k = Key::from(ks);
    double dice = rng.next_double();
    if (dice < 0.4) {
      Status s = tree.insert(k, i);
      if (model.count(ks)) {
        ASSERT_EQ(s.code(), Code::kAlreadyExists) << "seed " << seed;
      } else {
        ASSERT_TRUE(s.is_ok()) << "seed " << seed;
        model[ks] = (uint64_t)i;
      }
    } else if (dice < 0.6) {
      ASSERT_TRUE(tree.upsert(k, (uint64_t)i).is_ok());
      model[ks] = (uint64_t)i;
    } else if (dice < 0.85) {
      Status s = tree.erase(k);
      ASSERT_EQ(s.is_ok(), model.erase(ks) > 0) << "seed " << seed;
    } else {
      auto v = tree.find(k);
      auto it = model.find(ks);
      ASSERT_EQ(v.has_value(), it != model.end()) << "seed " << seed;
      if (v.has_value()) {
        ASSERT_EQ(*v, it->second);
      }
    }
    if ((i & 4095) == 4095) {
      ASSERT_TRUE(tree.validate().is_ok()) << "seed " << seed;
    }
  }
  ASSERT_TRUE(tree.validate().is_ok());
  ASSERT_EQ(tree.size(), model.size());
  // Drain completely: every node must return to the allocator.
  for (const auto& [ks, v] : model) ASSERT_TRUE(tree.erase(Key::from(ks)).is_ok());
  EXPECT_EQ(tree.node_count(), 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzz, ::testing::Values(101, 202, 303, 404, 505, 606));

class SlabFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlabFuzz, RandomAllocFreeNoCorruption) {
  uint64_t seed = GetParam();
  size_t arena_size = 64 << 20;
  auto buf = std::make_unique<char[]>(arena_size);
  Arena arena(buf.get(), arena_size);
  SlabAllocator sp = SlabAllocator::format(arena);

  Rng rng(seed);
  struct Alloc {
    offset_t off;
    size_t size;
    uint8_t fill;
  };
  std::vector<Alloc> live;
  uint64_t total_allocs = 0;
  for (int i = 0; i < 30000; i++) {
    if (!live.empty() && (rng.next_bool(0.45) || sp.used_bytes() > arena_size / 2)) {
      size_t idx = rng.next_below(live.size());
      Alloc a = live[idx];
      // The fill pattern must be intact (no overlapping allocations).
      const char* p = arena.at(a.off);
      for (size_t b = 0; b < a.size; b += 97) {
        ASSERT_EQ((uint8_t)p[b], a.fill) << "seed " << seed << " alloc " << a.off;
      }
      ASSERT_TRUE(sp.free(a.off).is_ok());
      live.erase(live.begin() + idx);
    } else {
      size_t size = 1 + rng.next_below(1 << (4 + rng.next_below(10)));  // 1B..16KB
      offset_t off = sp.alloc(size);
      if (off == 0) continue;  // transient OOM is fine
      uint8_t fill = (uint8_t)rng.next_below(256);
      std::memset(arena.at(off), fill, size);
      live.push_back({off, size, fill});
      total_allocs++;
    }
  }
  EXPECT_GT(total_allocs, 10000u);
  // Verify every survivor then free everything; accounting must return to 0.
  for (const Alloc& a : live) {
    const char* p = arena.at(a.off);
    for (size_t b = 0; b < a.size; b += 97) ASSERT_EQ((uint8_t)p[b], a.fill);
    ASSERT_TRUE(sp.free(a.off).is_ok());
  }
  EXPECT_EQ(sp.allocated_bytes(), 0u) << "seed " << seed;
  EXPECT_EQ(sp.allocation_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlabFuzz, ::testing::Values(11, 22, 33, 44));

class PoolFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoolFuzz, RingNeverDuplicatesOrLosesIds) {
  uint64_t seed = GetParam();
  size_t arena_size = 4 << 20;
  auto buf = std::make_unique<char[]>(arena_size);
  Arena arena(buf.get(), arena_size);
  SlabAllocator sp = SlabAllocator::format(arena);
  const uint64_t kIds = 512;
  auto h = CircularPool::create(sp, kIds);
  ASSERT_TRUE(h.is_ok());
  CircularPool pool(sp, h.value());

  Rng rng(seed);
  std::set<uint64_t> outstanding;
  for (int i = 0; i < 50000; i++) {
    if (!outstanding.empty() && rng.next_bool(0.5)) {
      auto it = outstanding.begin();
      std::advance(it, rng.next_below(outstanding.size()) % 16);  // cheap-ish pick
      ASSERT_TRUE(pool.free(*it).is_ok());
      outstanding.erase(it);
    } else if (auto id = pool.alloc()) {
      ASSERT_LT(*id, kIds) << "seed " << seed;
      ASSERT_TRUE(outstanding.insert(*id).second) << "duplicate id " << *id;
    }
    ASSERT_EQ(pool.free_count() + outstanding.size(), kIds);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolFuzz, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace dstore
