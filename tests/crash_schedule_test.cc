// Exhaustive crash-schedule tests of the DIPPER checkpoint protocol.
//
// The central test enumerates the complete (fault point, hit number) space
// of one deterministic workload — every pmem flush/fence/bulk persist,
// every SSD write, every named engine protocol step, every replayed record
// — injects a power failure at each one, recovers, and holds the store to
// a shadow std::map oracle. Companion tests cover double crashes during
// recovery, torn log-record headers, torn SSD pages, transient-EIO retry
// and read-only degradation, seed determinism of crash images, and the
// capacitor-less device mode.
//
// Reproduction: every failure prints the FaultPlan string; re-run one
// schedule with DSTORE_CRASH_PLAN="<string>" (sweep tests then run only
// that plan). With DSTORE_CRASH_ARTIFACT=<path>, failing plan strings are
// also appended to <path> for CI artifact upload.
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dipper/log.h"
#include "dstore/dstore.h"
#include "fault/crash_rig.h"
#include "fault/fault.h"
#include "pmem/pool.h"
#include "ssd/block_device.h"

namespace dstore::fault {
namespace {

void report_failing_plan(const FaultPlan& plan, const Status& why) {
  if (const char* path = std::getenv("DSTORE_CRASH_ARTIFACT")) {
    std::ofstream f(path, std::ios::app);
    f << plan.to_string() << "\n";
  }
  ADD_FAILURE() << "failing plan: " << plan.to_string() << " — " << why.to_string()
                << "\n(reproduce with DSTORE_CRASH_PLAN=\"" << plan.to_string() << "\")";
}

// If DSTORE_CRASH_PLAN is set, replace a sweep's plan list with just it.
bool maybe_single_plan(std::vector<FaultPlan>* plans) {
  const char* repro = std::getenv("DSTORE_CRASH_PLAN");
  if (repro == nullptr) return false;
  auto parsed = FaultPlan::parse(repro);
  EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  if (parsed.is_ok()) *plans = {parsed.value()};
  return parsed.is_ok();
}

// ---------------------------------------------------------------------------
// FaultPlan serialization
// ---------------------------------------------------------------------------

TEST(FaultPlan, StringRoundTrip) {
  for (const char* text : {
           "(empty)",
           "pmem.fence@17",
           "engine.swap.before_root_flip@1",
           "ssd.write@3:error:0:4",
           "pmem.bulk@2:torn:4096",
           "seed=7;pmem.flush@9:evict:8;pmem.flush@12",
           "ssd.read@5:delay:100000",
           "pmem.flush@4:crash:0:-1",
       }) {
    auto plan = FaultPlan::parse(text);
    ASSERT_TRUE(plan.is_ok()) << text;
    EXPECT_EQ(plan.value().to_string(), text);
  }
}

TEST(FaultPlan, ParseRejectsMalformedInput) {
  for (const char* text : {"pmem.fence", "@3", "pmem.fence@zero", "pmem.fence@0",
                           "pmem.fence@1:explode", "pmem.fence@1:crash:0:1:9"}) {
    EXPECT_FALSE(FaultPlan::parse(text).is_ok()) << text;
  }
}

TEST(FaultPlan, InjectorCountsAndFires) {
  FaultInjector inj(FaultPlan::crash_at("x", 3));
  EXPECT_FALSE(inj.on_hit("x").fired());
  EXPECT_FALSE(inj.on_hit("x").fired());
  EXPECT_FALSE(inj.on_hit("y").fired());
  Outcome o = inj.on_hit("x");
  EXPECT_EQ(o.type, FaultType::kCrash);
  EXPECT_TRUE(inj.crashed());
  // Nothing fires after the power failure.
  EXPECT_FALSE(inj.on_hit("x").fired());
  EXPECT_EQ(inj.hit_count("x"), 3u);
  EXPECT_EQ(inj.hit_count("y"), 1u);
}

// ---------------------------------------------------------------------------
// The exhaustive single-crash sweep (the tentpole)
// ---------------------------------------------------------------------------

TEST(CrashSchedule, ScheduleSpaceCoversProtocolAndExceeds200Points) {
  auto space = CrashRig::enumerate_schedule();
  uint64_t total = 0;
  bool saw_flush = false, saw_fence = false, saw_ssd = false, saw_engine = false,
       saw_replay = false;
  for (const auto& [point, count] : space) {
    total += count;
    saw_flush |= point == "pmem.flush";
    saw_fence |= point == "pmem.fence";
    saw_ssd |= point == "ssd.write";
    saw_engine |= point.rfind("engine.", 0) == 0;
    // Sequential and parallel replay carry distinct step ids (the linter
    // enforces fault-point uniqueness); either counts as replay coverage.
    saw_replay |= point.rfind("dstore.replay.record", 0) == 0;
  }
  EXPECT_TRUE(saw_flush && saw_fence && saw_ssd && saw_engine && saw_replay);
  // Acceptance bar: >= 200 distinct crash points across one checkpoint cycle.
  EXPECT_GE(total, 200u);
  // Specific protocol steps the checkpoint cycle must have visited.
  for (const char* must : {"engine.swap.before_root_flip", "engine.drain.done",
                           "engine.clone.after_copy", "engine.replay.done",
                           "engine.flush.before_bulk", "engine.install.before_root_flip",
                           "engine.recycle.done"}) {
    bool found = false;
    for (const auto& [point, count] : space) found |= point == must;
    EXPECT_TRUE(found) << must;
  }
}

TEST(CrashSchedule, ExhaustiveSingleCrashSweep) {
  auto space = CrashRig::enumerate_schedule();
  std::vector<FaultPlan> plans = all_crash_plans(space);
  // Torn-write and eviction adversaries on top of the plain crashes: a torn
  // bulk persist at every bulk point, a torn SSD page at a sample of write
  // points, and a spurious line eviction shortly before a crash.
  for (const auto& [point, count] : space) {
    if (point == "pmem.bulk") {
      for (uint64_t h = 1; h <= count; h++) {
        FaultPlan p;
        p.add({point, h, FaultType::kTorn, 4096, 1});
        plans.push_back(p);
      }
    } else if (point == "ssd.write") {
      for (uint64_t h = 1; h <= count; h += 5) {
        FaultPlan p;
        p.add({point, h, FaultType::kTorn, 1000, 1});
        plans.push_back(p);
      }
    } else if (point == "pmem.flush") {
      for (uint64_t h = 1; h + 3 <= count; h += 9) {
        FaultPlan p;
        p.add({point, h, FaultType::kEvict, 8, 1});
        p.add({point, h + 3, FaultType::kCrash, 0, 1});
        plans.push_back(p);
      }
    } else if (point == "pmem.nt") {
      // Torn nt-store publication: the write-combining buffer drains a
      // line-snapped prefix (here one line: the LSN line without the CRC
      // line) to media, then power fails inside the batched publication
      // window. Recovery must classify the slot as a torn uncommitted
      // publication. Fires only when the rig runs with nt stores enabled
      // (DSTORE_PMEM_NT=1); the space is empty otherwise.
      for (uint64_t h = 1; h <= count; h += 2) {
        FaultPlan p;
        p.add({point, h, FaultType::kTorn, 64, 1});
        plans.push_back(p);
      }
    }
  }
  bool single = maybe_single_plan(&plans);
  size_t crashes = 0, failures = 0;
  for (const FaultPlan& plan : plans) {
    CrashRig rig;
    bool crashed = rig.run(plan);
    EXPECT_TRUE(crashed) << "plan never fired: " << plan.to_string();
    if (!crashed) continue;
    crashes++;
    Status s = rig.crash_and_recover();
    if (s.is_ok()) s = rig.verify();
    if (!s.is_ok()) {
      report_failing_plan(plan, s);
      if (++failures >= 5) break;  // enough to diagnose; don't drown the log
    }
  }
  if (!single) {
    EXPECT_GE(crashes, 200u);
  }
}

// ---------------------------------------------------------------------------
// Satellite: double crash — power failure during recovery's own replay
// ---------------------------------------------------------------------------

TEST(CrashSchedule, DoubleCrashDuringRecoveryIsIdempotent) {
  // First power failure mid-checkpoint, at the start of log replay onto the
  // spare slot: recovery has real redo work to do.
  const FaultPlan first = FaultPlan::crash_at("engine.replay.begin", 1);

  // Counting pass: recover once fault-free with an armed injector to
  // enumerate the recovery-relative schedule space.
  CrashRig counting;
  ASSERT_TRUE(counting.run(first));
  counting.apply_crash();
  FaultPlan empty;
  bool crashed_again = false;
  ASSERT_TRUE(counting.recover(&empty, &crashed_again).is_ok());
  ASSERT_FALSE(crashed_again);
  ASSERT_TRUE(counting.verify().is_ok()) << counting.verify().to_string();
  auto recovery_space = counting.injector().hit_counts();
  std::vector<FaultPlan> rplans = all_crash_plans(recovery_space);
  ASSERT_GE(rplans.size(), 20u);
  bool single = maybe_single_plan(&rplans);
  (void)single;

  size_t failures = 0;
  for (const FaultPlan& rplan : rplans) {
    CrashRig rig;
    ASSERT_TRUE(rig.run(first));
    rig.apply_crash();
    bool second_crash = false;
    Status s = rig.recover(&rplan, &second_crash);
    EXPECT_TRUE(second_crash) << "recovery plan never fired: " << rplan.to_string();
    if (second_crash) {
      // Crash DURING recovery, then recover again: §3.6 idempotency.
      rig.apply_crash();
      s = rig.recover();
    }
    if (s.is_ok()) s = rig.verify();
    if (!s.is_ok()) {
      report_failing_plan(rplan, s);
      if (++failures >= 5) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite: torn log-record header sweep
// ---------------------------------------------------------------------------

namespace torn {

struct Probe {
  DStoreConfig cfg;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<ssd::RamBlockDevice> device;
  std::unique_ptr<DStore> store;
};

Probe make_probe() {
  Probe t;
  t.cfg.max_objects = 16;
  t.cfg.num_blocks = 64;
  t.cfg.engine.log_slots = 16;
  t.cfg.engine.arena_bytes = 1 << 20;
  t.cfg.engine.background_checkpointing = false;
  size_t bytes = dipper::Engine::required_pool_bytes(t.cfg.engine);
  t.pool = std::make_unique<pmem::Pool>(bytes, pmem::Pool::Mode::kCrashSim);
  ssd::DeviceConfig dc;
  dc.num_blocks = t.cfg.num_blocks;
  t.device = std::make_unique<ssd::RamBlockDevice>(dc);
  auto s = DStore::create(t.pool.get(), t.device.get(), t.cfg);
  EXPECT_TRUE(s.is_ok());
  t.store = std::move(s).value();
  return t;
}

std::string get(DStore* store, const std::string& key) {
  std::vector<char> buf(4096);
  ds_ctx_t* ctx = store->ds_init();
  auto r = store->oget(ctx, key, buf.data(), buf.size());
  store->ds_finalize(ctx);
  if (!r.is_ok()) return "<absent>";
  return std::string(buf.data(), r.value());
}

}  // namespace torn

TEST(TornLogRecord, HeaderByteSweepNeverLosesCommittedRecords) {
  const std::string va(100, 'A'), vb(200, 'B'), vc(300, 'C');
  for (size_t keep = 0; keep <= dipper::PmemLog::kSlotSize; keep++) {
    torn::Probe t = torn::make_probe();
    ds_ctx_t* ctx = t.store->ds_init();
    ASSERT_TRUE(t.store->oput(ctx, "a", va.data(), va.size()).is_ok());
    ASSERT_TRUE(t.store->oput(ctx, "b", vb.data(), vb.size()).is_ok());
    ASSERT_TRUE(t.store->oput(ctx, "c", vc.data(), vc.size()).is_ok());
    t.store->ds_finalize(ctx);

    // Locate the slot holding c's record in the active log.
    auto& eng = t.store->engine();
    const dipper::PmemLog& log = eng.log_for_testing(eng.active_log_index());
    uint32_t slot = UINT32_MAX;
    for (uint32_t i = 0; i < log.slot_count(); i++) {
      dipper::LogRecordView rec;
      if (log.read(i, &rec) && rec.name.view() == "c") slot = i;
    }
    ASSERT_NE(slot, UINT32_MAX);
    const char* addr = t.pool->base() + log.slot_offset(slot);

    t.store.reset();
    // Tear the record's persistent image: only the first `keep` bytes ever
    // persisted. Under the single-fence publication protocol (DESIGN.md
    // §13) the LSN persists in the SAME train as the rest of the record, so
    // a torn publication CAN leave a valid LSN with a stale CRC line — that
    // is the torn-uncommitted case recovery must classify and skip. What a
    // crash can never leave is the committed bit set (commit fences
    // strictly after the publication fence), so emulate that: clear the
    // bit in the region before the tear copies the prefix from it. The one
    // hardware guarantee we keep is 8-byte atomicity of the LSN word.
    if (keep < dipper::PmemLog::kSlotSize) {
      const_cast<char*>(addr)[14] &= ~(char)dipper::PmemLog::kFlagCommitted;
    }
    t.pool->tear_image(addr, keep, dipper::PmemLog::kSlotSize);
    if (keep < 8) t.pool->tear_image(addr, 0, 8);
    t.pool->crash();
    t.device->crash();

    auto r = DStore::recover(t.pool.get(), t.device.get(), t.cfg);
    ASSERT_TRUE(r.is_ok()) << "keep=" << keep << ": " << r.status().to_string();
    t.store = std::move(r).value();
    // Committed records before the torn one are never lost.
    EXPECT_EQ(torn::get(t.store.get(), "a"), va) << "keep=" << keep;
    EXPECT_EQ(torn::get(t.store.get(), "b"), vb) << "keep=" << keep;
    // The torn record itself is ignored — keep<8: no LSN (empty slot);
    // 8<=keep<104: valid LSN, CRC fails (torn uncommitted publication);
    // 104<=keep<128: CRC intact but uncommitted (aborted). Only the
    // untouched keep==128 record survives as committed.
    if (keep == dipper::PmemLog::kSlotSize) {
      EXPECT_EQ(torn::get(t.store.get(), "c"), vc);
    } else {
      EXPECT_EQ(torn::get(t.store.get(), "c"), "<absent>") << "keep=" << keep;
    }
    EXPECT_TRUE(t.store->validate().is_ok()) << "keep=" << keep;
  }
}

// A committed record that fails its CRC is NOT a torn publication — commit
// fences strictly after the publication train persisted the CRC, so no
// crash schedule can produce it. It is silent media corruption, and
// recovery must fail-stop rather than replay around the hole. (The
// uncommitted variant of the same tear is tolerated by the sweep above.)
TEST(TornLogRecord, CommittedRecordWithTornCrcFailStopsRecovery) {
  const std::string vc(300, 'C');
  torn::Probe t = torn::make_probe();
  ds_ctx_t* ctx = t.store->ds_init();
  ASSERT_TRUE(t.store->oput(ctx, "c", vc.data(), vc.size()).is_ok());
  t.store->ds_finalize(ctx);

  auto& eng = t.store->engine();
  const dipper::PmemLog& log = eng.log_for_testing(eng.active_log_index());
  uint32_t slot = UINT32_MAX;
  for (uint32_t i = 0; i < log.slot_count(); i++) {
    dipper::LogRecordView rec;
    if (log.read(i, &rec) && rec.name.view() == "c") slot = i;
  }
  ASSERT_NE(slot, UINT32_MAX);
  const char* addr = t.pool->base() + log.slot_offset(slot);

  t.store.reset();
  // Keep the head line (valid LSN + committed flag) but lose the CRC line.
  t.pool->tear_image(addr, 96, dipper::PmemLog::kSlotSize);
  t.pool->crash();
  t.device->crash();

  auto r = DStore::recover(t.pool.get(), t.device.get(), t.cfg);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kCorruption) << r.status().to_string();
}

// ---------------------------------------------------------------------------
// Satellite: transient SSD errors — retry, surface, degrade (never drop)
// ---------------------------------------------------------------------------

namespace eio {

struct Fixture {
  FaultInjector inj;
  DStoreConfig cfg;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<ssd::RamBlockDevice> device;
  std::unique_ptr<DStore> store;
  ds_ctx_t* ctx = nullptr;

  void build(const FaultPlan& plan) {
    cfg.max_objects = 16;
    cfg.num_blocks = 64;
    cfg.engine.log_slots = 32;
    cfg.engine.arena_bytes = 1 << 20;
    cfg.engine.background_checkpointing = false;
    cfg.io_retry_backoff_ns = 1000;  // keep test wall-clock tiny
    pool = std::make_unique<pmem::Pool>(dipper::Engine::required_pool_bytes(cfg.engine),
                                        pmem::Pool::Mode::kDirect);
    ssd::DeviceConfig dc;
    dc.num_blocks = cfg.num_blocks;
    device = std::make_unique<ssd::RamBlockDevice>(dc);
    device->set_fault_injector(&inj);
    inj.set_plan(plan);
    inj.disarm();
    auto s = DStore::create(pool.get(), device.get(), cfg);
    ASSERT_TRUE(s.is_ok());
    store = std::move(s).value();
    ctx = store->ds_init();
  }
  ~Fixture() {
    if (store != nullptr) store->ds_finalize(ctx);
  }
};

}  // namespace eio

TEST(SsdTransientError, SingleEioIsRetriedToSuccess) {
  eio::Fixture f;
  FaultPlan plan;
  plan.add({"ssd.write", 1, FaultType::kError, 0, 1});
  f.build(plan);
  const std::string v(100, 'x');
  f.inj.arm();
  Status s = f.store->oput(f.ctx, "k", v.data(), v.size());
  f.inj.disarm();
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_EQ(f.store->metrics().counter_value("ssd_io_retries_total"), 1u);
  EXPECT_EQ(f.store->metrics().counter_value("ssd_io_exhausted_total"), 0u);
  EXPECT_FALSE(f.store->read_only());
  std::vector<char> buf(256);
  auto r = f.store->oget(f.ctx, "k", buf.data(), buf.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(std::string(buf.data(), r.value()), v);
}

TEST(SsdTransientError, BackToBackEiosExhaustLastRetry) {
  // Exactly io_max_retries (3) consecutive failures: the final retry wins.
  eio::Fixture f;
  FaultPlan plan;
  plan.add({"ssd.write", 1, FaultType::kError, 0, 3});
  f.build(plan);
  const std::string v(64, 'y');
  f.inj.arm();
  Status s = f.store->oput(f.ctx, "k", v.data(), v.size());
  f.inj.disarm();
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_EQ(f.store->metrics().counter_value("ssd_io_retries_total"), 3u);
  EXPECT_FALSE(f.store->read_only());
}

TEST(SsdTransientError, ExhaustionSurfacesAtPutBoundaryAndDegradesReadOnly) {
  // Regression for the dropped-return-code bug: a failing SSD write used to
  // leave its reserved log record in-flight forever, wedging every later
  // writer of the same key. Now the record is aborted, the error surfaces
  // at the oput() boundary, and the store degrades to read-only.
  eio::Fixture f;
  FaultPlan plan;
  plan.add({"ssd.write", 2, FaultType::kError, 0, -1});  // hit 2 onward: all fail
  f.build(plan);
  const std::string pre(80, 'p'), v(120, 'q');
  f.inj.arm();
  ASSERT_TRUE(f.store->oput(f.ctx, "pre", pre.data(), pre.size()).is_ok());

  Status s = f.store->oput(f.ctx, "k", v.data(), v.size());
  EXPECT_EQ(s.code(), Code::kReadOnly) << s.to_string();
  EXPECT_EQ(f.store->metrics().counter_value("ssd_io_retries_total"), 3u);
  EXPECT_EQ(f.store->metrics().counter_value("ssd_io_exhausted_total"), 1u);
  EXPECT_TRUE(f.store->read_only());
  // The reserved record was aborted — no wedge, no replayable garbage.
  EXPECT_EQ(f.store->engine().stats().records_aborted.load(), 1u);
  EXPECT_FALSE(f.store->engine().has_inflight_write(Key::from("k")));

  // Reads keep working; mutations are cleanly rejected without touching the
  // (failing) device again.
  std::vector<char> buf(256);
  auto r = f.store->oget(f.ctx, "pre", buf.data(), buf.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(std::string(buf.data(), r.value()), pre);
  EXPECT_EQ(f.store->oput(f.ctx, "x", v.data(), v.size()).code(), Code::kReadOnly);
  EXPECT_EQ(f.store->odelete(f.ctx, "pre").code(), Code::kReadOnly);
  EXPECT_EQ(f.store->metrics().counter_value("ssd_io_retries_total"), 3u);  // no further device attempts
  f.inj.disarm();
  EXPECT_TRUE(f.store->validate().is_ok());
}

TEST(SsdTransientError, LatencySpikeDelaysButCompletes) {
  eio::Fixture f;
  FaultPlan plan;
  plan.add({"ssd.write", 1, FaultType::kDelay, 200000, 1});  // 200 us spike
  f.build(plan);
  const std::string v(40, 'z');
  f.inj.arm();
  EXPECT_TRUE(f.store->oput(f.ctx, "k", v.data(), v.size()).is_ok());
  f.inj.disarm();
  EXPECT_EQ(f.store->metrics().counter_value("ssd_io_retries_total"), 0u);
}

// ---------------------------------------------------------------------------
// Satellite: seed determinism — same plan, byte-identical crash images
// ---------------------------------------------------------------------------

TEST(CrashSchedule, SameSeedYieldsByteIdenticalCrashImages) {
  auto space = CrashRig::enumerate_schedule();
  for (uint64_t seed : {1ull, 42ull, 0xdeadull}) {
    FaultPlan p1 = FaultPlan::random(seed, space);
    FaultPlan p2 = FaultPlan::random(seed, space);
    EXPECT_EQ(p1.to_string(), p2.to_string());

    CrashRig a, b;
    bool ca = a.run(p1);
    bool cb = b.run(p2);
    EXPECT_EQ(ca, cb) << p1.to_string();
    if (!ca || !cb) continue;
    a.apply_crash();
    b.apply_crash();
    EXPECT_EQ(a.pmem_fingerprint(), b.pmem_fingerprint()) << p1.to_string();
    EXPECT_EQ(a.ssd_fingerprint(), b.ssd_fingerprint()) << p1.to_string();
    ASSERT_TRUE(a.recover().is_ok());
    EXPECT_TRUE(a.verify().is_ok()) << p1.to_string();
  }
}

// ---------------------------------------------------------------------------
// Satellite: capacitor-less mode — why commit==durable needs PLP
// ---------------------------------------------------------------------------

TEST(CrashSchedule, CapacitorlessDeviceLosesAckedWritesOnPowerFailure) {
  const FaultPlan plan = FaultPlan::crash_at("ssd.write", 30);

  // Without power-loss protection the device write cache dies with the
  // power: committed log records replay, but their data reverts — the
  // oracle check must catch the divergence.
  RigOptions unsafe;
  unsafe.plp = false;
  CrashRig rig(unsafe);
  ASSERT_TRUE(rig.run(plan));
  ASSERT_TRUE(rig.crash_and_recover().is_ok());
  EXPECT_FALSE(rig.verify().is_ok());

  // Same schedule with capacitors: nothing is lost.
  CrashRig safe;
  ASSERT_TRUE(safe.run(plan));
  ASSERT_TRUE(safe.crash_and_recover().is_ok());
  EXPECT_TRUE(safe.verify().is_ok()) << safe.verify().to_string();
}

}  // namespace
}  // namespace dstore::fault
