// v3 C binding tests: the handle-based session/namespace surface
// (dstore/dstore_c.h), one open call for embedded and remote stores, and
// the per-session error slots (the regression for the old thread-local
// slot, where concurrent sessions clobbered each other's errors).
//
// The v2 shim surface keeps its own coverage in c_api_test.cc.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dstore/dstore_c.h"
#include "dstore/sharded.h"
#include "net/server.h"

namespace {

TEST(CApiV3, ApiVersionReports3_0) {
  EXPECT_EQ(ds_api_version() >> 16, 3u);
  EXPECT_EQ(ds_api_version() & 0xffffu, 0u);
  EXPECT_EQ(DS_API_VERSION_MAJOR, 3);
}

TEST(CApiV3, EmbeddedMemSessionRoundTrip) {
  ds_session_t* s = ds_session_open("mem:", nullptr);
  ASSERT_NE(s, nullptr);
  ds_namespace_t* ns = ds_namespace_open(s, "tenant");
  ASSERT_NE(ns, nullptr);

  const char payload[] = "hello from v3";
  ASSERT_EQ(ds_put(ns, "greeting", payload, sizeof(payload)), (ssize_t)sizeof(payload));
  char buf[64];
  ASSERT_EQ(ds_get(ns, "greeting", buf, sizeof(buf)), (ssize_t)sizeof(payload));
  EXPECT_STREQ(buf, payload);
  EXPECT_EQ(ds_session_last_error_code(s), DS_OK);

  // Short buffer: full size returned, cap bytes copied.
  char tiny[4];
  ASSERT_EQ(ds_get(ns, "greeting", tiny, sizeof(tiny)), (ssize_t)sizeof(payload));
  EXPECT_EQ(memcmp(tiny, payload, sizeof(tiny)), 0);

  ASSERT_EQ(ds_delete(ns, "greeting"), DS_OK);
  EXPECT_EQ(ds_get(ns, "greeting", buf, sizeof(buf)), DS_ENOTFOUND);
  EXPECT_EQ(ds_session_last_error_code(s), DS_ENOTFOUND);

  EXPECT_EQ(ds_checkpoint(s), DS_OK);  // embedded: forces one
  EXPECT_EQ(ds_scrub(s), DS_OK);

  char* metrics = ds_session_metrics(s, DS_METRICS_JSON);
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(strstr(metrics, "dstore_puts_total"), nullptr);
  free(metrics);

  ds_namespace_close(ns);
  ds_session_close(s);
}

TEST(CApiV3, EmbeddedNamespacesAreIsolated) {
  ds_session_t* s = ds_session_open("mem:", nullptr);
  ASSERT_NE(s, nullptr);
  ds_namespace_t* a = ds_namespace_open(s, "a");
  ds_namespace_t* b = ds_namespace_open(s, "b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(ds_put(a, "k", "AAA", 3), 3);
  ASSERT_EQ(ds_put(b, "k", "BB", 2), 2);
  char buf[8];
  ASSERT_EQ(ds_get(a, "k", buf, sizeof(buf)), 3);
  EXPECT_EQ(memcmp(buf, "AAA", 3), 0);
  ASSERT_EQ(ds_get(b, "k", buf, sizeof(buf)), 2);
  EXPECT_EQ(memcmp(buf, "BB", 2), 0);
  ASSERT_EQ(ds_delete(a, "k"), DS_OK);
  EXPECT_EQ(ds_get(a, "k", buf, sizeof(buf)), DS_ENOTFOUND);
  EXPECT_EQ(ds_get(b, "k", buf, sizeof(buf)), 2);
  ds_namespace_close(a);
  ds_namespace_close(b);
  ds_session_close(s);
}

TEST(CApiV3, MalformedTargetsAndNamesFailCleanly) {
  EXPECT_EQ(ds_session_open(nullptr, nullptr), nullptr);
  EXPECT_EQ(ds_session_open("dir:", nullptr), nullptr);

  ds_session_t* s = ds_session_open("mem:", nullptr);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(ds_namespace_open(s, ""), nullptr);
  EXPECT_EQ(ds_namespace_open(s, "bad\x1fname"), nullptr);
  EXPECT_EQ(ds_namespace_open(nullptr, "x"), nullptr);
  EXPECT_EQ(ds_session_last_error_code(s), DS_EINVAL);
  ds_session_close(s);
}

TEST(CApiV3, DirSessionPersistsAcrossReopen) {
  std::string dir = ::testing::TempDir() + "ds_v3_dir_test";
  std::filesystem::remove_all(dir);

  ds_session_options opt{};
  opt.create = 1;
  std::string target = "dir:" + dir;
  ds_session_t* s = ds_session_open(target.c_str(), &opt);
  ASSERT_NE(s, nullptr) << ds_open_error();
  ds_namespace_t* ns = ds_namespace_open(s, "kept");
  ASSERT_NE(ns, nullptr);
  ASSERT_EQ(ds_put(ns, "durable", "stays", 5), 5);
  ds_namespace_close(ns);
  ds_session_close(s);

  opt.create = 0;  // recover
  s = ds_session_open(target.c_str(), &opt);
  ASSERT_NE(s, nullptr) << ds_open_error();
  ns = ds_namespace_open(s, "kept");
  ASSERT_NE(ns, nullptr);
  char buf[16];
  ASSERT_EQ(ds_get(ns, "durable", buf, sizeof(buf)), 5);
  EXPECT_EQ(memcmp(buf, "stays", 5), 0);
  ds_namespace_close(ns);
  ds_session_close(s);
  std::filesystem::remove_all(dir);
}

// The small-fix regression: error state lives on the session, so
// concurrent sessions (one per thread, as documented) observe their own
// last error and never each other's.
TEST(CApiV3, ConcurrentSessionsKeepIndependentErrors) {
  ds_session_t* ok_s = ds_session_open("mem:", nullptr);
  ds_session_t* err_s = ds_session_open("mem:", nullptr);
  ASSERT_NE(ok_s, nullptr);
  ASSERT_NE(err_s, nullptr);
  ds_namespace_t* ok_ns = ds_namespace_open(ok_s, "t");
  ds_namespace_t* err_ns = ds_namespace_open(err_s, "t");
  ASSERT_NE(ok_ns, nullptr);
  ASSERT_NE(err_ns, nullptr);

  constexpr int kOps = 500;
  std::thread ok_thread([&] {
    char buf[16];
    for (int i = 0; i < kOps; i++) {
      ASSERT_EQ(ds_put(ok_ns, "k", "v", 1), 1);
      ASSERT_EQ(ds_get(ok_ns, "k", buf, sizeof(buf)), 1);
    }
  });
  std::thread err_thread([&] {
    char buf[16];
    for (int i = 0; i < kOps; i++) {
      ASSERT_EQ(ds_get(err_ns, "missing", buf, sizeof(buf)), DS_ENOTFOUND);
    }
  });
  ok_thread.join();
  err_thread.join();

  // Each session's slot reflects ITS last call. Under the old thread-local
  // slot this held only by the accident of one-thread-per-session; two
  // sessions sharing a thread clobbered each other, which is the bug the
  // per-session slot fixes.
  EXPECT_EQ(ds_session_last_error_code(ok_s), DS_OK);
  EXPECT_EQ(ds_session_last_error_code(err_s), DS_ENOTFOUND);
  EXPECT_NE(std::string(ds_session_last_error(err_s)).find("NOT_FOUND"),
            std::string::npos);
  EXPECT_STREQ(ds_session_last_error(ok_s), "");

  ds_namespace_close(ok_ns);
  ds_namespace_close(err_ns);
  ds_session_close(ok_s);
  ds_session_close(err_s);
}

// One surface, two transports: the same v3 calls drive dstore_serverd
// remotely. The server + store live in-process for the test.
TEST(CApiV3, RemoteSessionOverLiveServer) {
  dstore::ShardedConfig cfg;
  cfg.num_shards = 2;
  cfg.affinity = true;
  cfg.shard.max_objects = 256;
  cfg.shard.num_blocks = 2048;
  cfg.shard.engine.log_slots = 256;
  cfg.shard.engine.arena_bytes = 1 << 20;
  auto store = dstore::ShardedStore::create(cfg);
  ASSERT_TRUE(store.is_ok());
  auto server = dstore::net::Server::start(store.value().get(), {});
  ASSERT_TRUE(server.is_ok());

  std::string target = "127.0.0.1:" + std::to_string(server.value()->port());
  ds_session_t* s = ds_session_open(target.c_str(), nullptr);
  ASSERT_NE(s, nullptr) << ds_open_error();
  ds_namespace_t* ns = ds_namespace_open(s, "remote-tenant");
  ASSERT_NE(ns, nullptr) << ds_session_last_error(s);

  ASSERT_EQ(ds_put(ns, "k", "remote-value", 12), 12);
  char buf[32];
  ASSERT_EQ(ds_get(ns, "k", buf, sizeof(buf)), 12);
  EXPECT_EQ(memcmp(buf, "remote-value", 12), 0);
  // Short buffer on the remote path: same full-size contract as embedded.
  char tiny[4];
  ASSERT_EQ(ds_get(ns, "k", tiny, sizeof(tiny)), 12);
  EXPECT_EQ(memcmp(tiny, "remo", 4), 0);
  ASSERT_EQ(ds_delete(ns, "k"), DS_OK);
  EXPECT_EQ(ds_get(ns, "k", buf, sizeof(buf)), DS_ENOTFOUND);
  EXPECT_EQ(ds_session_last_error_code(s), DS_ENOTFOUND);

  EXPECT_EQ(ds_scrub(s), DS_OK);
  EXPECT_EQ(ds_checkpoint(s), DS_ENOTSUP);  // servers checkpoint themselves

  char* metrics = ds_session_metrics(s, DS_METRICS_JSON);
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(strstr(metrics, "net_requests_total"), nullptr);  // server series
  free(metrics);

  ds_namespace_close(ns);
  ds_session_close(s);

  // Connecting to a dead port fails with the reason in the legacy slot
  // (no session exists to carry it).
  server.value()->stop();
  EXPECT_EQ(ds_session_open(target.c_str(), nullptr), nullptr);
  EXPECT_NE(ds_last_error_code(), DS_OK);
}

}  // namespace
