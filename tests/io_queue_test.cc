// Tests of the async NVMe queue-pair layer (ssd::IoQueue) and its DStore
// data-plane integration: queue-depth latency overlap, bandwidth
// serialization, contiguous-run coalescing and its stat counters, the
// per-descriptor retry path, and — with fault injection compiled in —
// power failures with IOs in flight, under both PLP modes, held to a
// shadow oracle after recovery. Every fault schedule is reproducible from
// its FaultPlan string.
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "dstore/dstore.h"
#include "fault/crash_rig.h"
#include "fault/fault.h"
#include "pmem/pool.h"
#include "ssd/block_device.h"
#include "ssd/io_queue.h"
#include "ssd/io_retry.h"

namespace dstore {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultType;

ssd::DeviceConfig dev_cfg(uint64_t blocks = 64, LatencyModel lat = LatencyModel::none(),
                          bool plp = true) {
  ssd::DeviceConfig cfg;
  cfg.page_size = 4096;
  cfg.pages_per_block = 1;
  cfg.num_blocks = blocks;
  cfg.power_loss_protection = plp;
  cfg.latency = lat;
  return cfg;
}

std::string patterned(size_t len, char seed) {
  std::string v(len, '\0');
  for (size_t i = 0; i < len; i++) v[i] = char(seed + i % 23);
  return v;
}

// ---------------------------------------------------------------------------
// IoQueue over a raw device: correctness and timing
// ---------------------------------------------------------------------------

TEST(IoQueue, WritesAndReadsCompleteWithCorrectData) {
  ssd::RamBlockDevice dev(dev_cfg());
  std::string a = patterned(4096, 'a'), b = patterned(4096, 'b'), c = patterned(1000, 'c');
  ssd::IoQueue wq(&dev, 4);
  wq.submit(ssd::IoDesc{2, 0, a.size(), a.data(), nullptr});
  wq.submit(ssd::IoDesc{5, 0, b.size(), b.data(), nullptr});
  wq.submit(ssd::IoDesc{7, 96, c.size(), c.data(), nullptr});
  wq.wait_all();
  EXPECT_TRUE(wq.all_ok());
  EXPECT_EQ(wq.size(), 3u);
  EXPECT_EQ(wq.in_flight(), 0u);

  std::string ra(a.size(), 0), rb(b.size(), 0), rc(c.size(), 0);
  ssd::IoQueue rq(&dev, 4);
  rq.submit(ssd::IoDesc{2, 0, ra.size(), nullptr, ra.data()});
  rq.submit(ssd::IoDesc{5, 0, rb.size(), nullptr, rb.data()});
  rq.submit(ssd::IoDesc{7, 96, rc.size(), nullptr, rc.data()});
  rq.wait_all();
  EXPECT_TRUE(rq.all_ok());
  EXPECT_EQ(ra, a);
  EXPECT_EQ(rb, b);
  EXPECT_EQ(rc, c);
}

TEST(IoQueue, CoalescedDescriptorSpansContiguousBlocks) {
  // A descriptor may cover several physically contiguous blocks: media
  // addressing is linear, one transfer, one base latency.
  ssd::RamBlockDevice dev(dev_cfg());
  std::string v = patterned(3 * 4096, 'x');
  ssd::IoQueue q(&dev, 4);
  q.submit(ssd::IoDesc{10, 0, v.size(), v.data(), nullptr});
  q.wait_all();
  ASSERT_TRUE(q.all_ok());
  // Visible through the plain per-block read path.
  std::string got(v.size(), 0);
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(dev.read(10 + i, 0, got.data() + i * 4096, 4096).is_ok());
  }
  EXPECT_EQ(got, v);
}

TEST(IoQueue, InvalidDescriptorsCompleteImmediatelyWithError) {
  ssd::RamBlockDevice dev(dev_cfg(8));
  char buf[64] = {};
  ssd::IoQueue q(&dev, 4);
  size_t both = q.submit(ssd::IoDesc{0, 0, 64, buf, buf});      // write AND read
  size_t none = q.submit(ssd::IoDesc{0, 0, 64, nullptr, nullptr});
  size_t oob = q.submit(ssd::IoDesc{7, 4000, 4096, buf, nullptr});  // spans past capacity
  q.wait_all();
  EXPECT_EQ(q.status_of(both).code(), Code::kInvalidArgument);
  EXPECT_EQ(q.status_of(none).code(), Code::kInvalidArgument);
  EXPECT_EQ(q.status_of(oob).code(), Code::kInvalidArgument);
  EXPECT_FALSE(q.all_ok());
}

TEST(IoQueue, QueueDepthOverlapsBaseLatency) {
  // 8 one-block writes with a 200us per-IO base cost and no bandwidth
  // component: at qd=1 they serialize (>= 1.6ms); at qd=8 the device
  // pipelines all of them (~200us). Margins are generous for CI noise.
  LatencyModel lat;
  lat.ssd_write_base_ns = 200 * 1000;
  std::string v = patterned(4096, 'q');

  auto run = [&](uint32_t qd) {
    ssd::RamBlockDevice dev(dev_cfg(16, lat));
    ssd::IoQueue q(&dev, qd);
    uint64_t t0 = now_ns();
    for (uint64_t b = 0; b < 8; b++) {
      q.submit(ssd::IoDesc{b, 0, v.size(), v.data(), nullptr});
    }
    q.wait_all();
    EXPECT_TRUE(q.all_ok());
    return now_ns() - t0;
  };

  uint64_t serial = run(1);
  uint64_t overlapped = run(8);
  EXPECT_GE(serial, 8u * 200 * 1000);
  EXPECT_LT(overlapped, serial / 2);
}

TEST(IoQueue, BandwidthStaysSerializedAcrossInFlightIos) {
  // The shared media channel still serializes transfer time: 8 overlapped
  // 4KB writes at 50us/KB cost >= 8 * 200us regardless of queue depth.
  LatencyModel lat;
  lat.ssd_per_kb_ns = 50 * 1000;
  std::string v = patterned(4096, 'w');
  ssd::RamBlockDevice dev(dev_cfg(16, lat));
  ssd::IoQueue q(&dev, 8);
  uint64_t t0 = now_ns();
  for (uint64_t b = 0; b < 8; b++) {
    q.submit(ssd::IoDesc{b, 0, v.size(), v.data(), nullptr});
  }
  q.wait_all();
  uint64_t elapsed = now_ns() - t0;
  EXPECT_TRUE(q.all_ok());
  EXPECT_GE(elapsed, 8u * 4 * 50 * 1000);
}

// ---------------------------------------------------------------------------
// DStore integration: coalescing stats, per-descriptor retry, crash safety
// ---------------------------------------------------------------------------

struct StoreFixture {
  DStoreConfig cfg;
  FaultInjector inj;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<ssd::RamBlockDevice> device;
  std::unique_ptr<DStore> store;
  ds_ctx_t* ctx = nullptr;

  void build(uint32_t ssd_qd, bool plp = true,
             pmem::Pool::Mode mode = pmem::Pool::Mode::kDirect) {
    cfg.max_objects = 32;
    cfg.num_blocks = 256;
    cfg.ssd_qd = ssd_qd;
    cfg.engine.log_slots = 32;
    cfg.engine.arena_bytes = 1 << 20;
    cfg.engine.background_checkpointing = false;
    cfg.io_retry_backoff_ns = 1000;
    pool = std::make_unique<pmem::Pool>(dipper::Engine::required_pool_bytes(cfg.engine), mode);
    device = std::make_unique<ssd::RamBlockDevice>(dev_cfg(cfg.num_blocks,
                                                           LatencyModel::none(), plp));
    auto s = DStore::create(pool.get(), device.get(), cfg);
    ASSERT_TRUE(s.is_ok()) << s.status().to_string();
    store = std::move(s).value();
    ctx = store->ds_init();
  }

  void attach_faults() {
    pool->set_fault_injector(&inj);
    device->set_fault_injector(&inj);
    cfg.engine.fault = &inj;
  }

  std::string get(const std::string& key) {
    std::vector<char> buf(128 << 10);
    auto r = store->oget(ctx, key, buf.data(), buf.size());
    if (!r.is_ok()) return "<absent>";
    return std::string(buf.data(), r.value());
  }

  ~StoreFixture() {
    if (store != nullptr) store->ds_finalize(ctx);
  }
};

TEST(DStoreAsyncIo, ContiguousRunsCoalesceUpToQueueDepth) {
  StoreFixture f;
  f.build(/*ssd_qd=*/16);
  // Fresh store: the 16 blocks of a 64KB value pop contiguously from the
  // circular pool, so the whole put coalesces into ONE descriptor.
  std::string v = patterned(64 << 10, 'c');
  ASSERT_TRUE(f.store->oput(f.ctx, "big", v.data(), v.size()).is_ok());
  auto& m = f.store->metrics();
  EXPECT_EQ(m.counter_value("ssd_io_batches_total"), 1u);
  EXPECT_EQ(m.counter_value("ssd_ios_issued_total"), 1u);
  EXPECT_EQ(m.counter_value("ssd_blocks_coalesced_total"), 15u);
  EXPECT_EQ(f.get("big"), v);
}

TEST(DStoreAsyncIo, QdOneDegeneratesToPerBlockIos) {
  StoreFixture f;
  f.build(/*ssd_qd=*/1);
  std::string v = patterned(64 << 10, 'd');
  ASSERT_TRUE(f.store->oput(f.ctx, "big", v.data(), v.size()).is_ok());
  auto& m = f.store->metrics();
  EXPECT_EQ(m.counter_value("ssd_io_batches_total"), 1u);
  EXPECT_EQ(m.counter_value("ssd_ios_issued_total"), 16u);  // one IO per block
  EXPECT_EQ(m.counter_value("ssd_blocks_coalesced_total"), 0u);
  EXPECT_EQ(f.get("big"), v);
}

TEST(DStoreAsyncIo, MdtsCapSplitsLongRuns) {
  // qd=2 caps a coalesced run at 2 blocks: a 5-block value becomes
  // descriptors of 2+2+1 blocks.
  StoreFixture f;
  f.build(/*ssd_qd=*/2);
  std::string v = patterned(5 * 4096, 'e');
  ASSERT_TRUE(f.store->oput(f.ctx, "five", v.data(), v.size()).is_ok());
  auto& m = f.store->metrics();
  EXPECT_EQ(m.counter_value("ssd_ios_issued_total"), 3u);
  EXPECT_EQ(m.counter_value("ssd_blocks_coalesced_total"), 2u);
  EXPECT_EQ(f.get("five"), v);
}

#if !defined(DSTORE_FAULT_INJECTION_DISABLED)

TEST(DStoreAsyncIo, TransientEioOnOneDescriptorRetriesOnlyThatDescriptor) {
  StoreFixture f;
  f.build(/*ssd_qd=*/2);
  f.attach_faults();
  // 5-block put = 3 descriptors (ssd.write hits 1..3). Fail the SECOND
  // descriptor of the batch once; only it is re-submitted.
  FaultPlan plan;
  plan.add({"ssd.write", 2, FaultType::kError, 0, 1});
  f.inj.set_plan(plan);
  std::string v = patterned(5 * 4096, 'r');
  f.inj.arm();
  Status s = f.store->oput(f.ctx, "k", v.data(), v.size());
  f.inj.disarm();
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  auto& m = f.store->metrics();
  EXPECT_EQ(m.counter_value("ssd_io_retries_total"), 1u);
  EXPECT_EQ(m.counter_value("ssd_ios_issued_total"), 3u);  // retries are not new descriptors
  EXPECT_EQ(m.counter_value("ssd_io_exhausted_total"), 0u);
  EXPECT_FALSE(f.store->read_only());
  EXPECT_EQ(f.get("k"), v);
  // 3 original submissions + 1 resubmission reached the device.
  EXPECT_EQ(f.inj.hit_count("ssd.write"), 4u);
}

TEST(DStoreAsyncIo, CrashMidBatchWithPlpKeepsCommittedStateOnly) {
  StoreFixture f;
  f.build(/*ssd_qd=*/2, /*plp=*/true, pmem::Pool::Mode::kCrashSim);
  f.attach_faults();
  std::string va = patterned(100, 'a'), vb = patterned(5000, 'b');
  ASSERT_TRUE(f.store->oput(f.ctx, "a", va.data(), va.size()).is_ok());
  ASSERT_TRUE(f.store->oput(f.ctx, "b", vb.data(), vb.size()).is_ok());

  // Power failure at the SECOND descriptor of c's 3-descriptor batch —
  // one IO already acked into the (capacitor-backed) cache, one mid-
  // submission, one never submitted. Reproducible from the plan string.
  // set_plan resets hit counters, so c's three descriptors are ssd.write
  // hits 1-3 — crash at hit 2, mid-batch.
  auto plan = FaultPlan::parse("ssd.write@2");
  ASSERT_TRUE(plan.is_ok());
  f.inj.set_plan(plan.value());
  std::string vc = patterned(5 * 4096, 'c');
  f.inj.arm();
  (void)f.store->oput(f.ctx, "c", vc.data(), vc.size());
  ASSERT_TRUE(f.inj.crashed());
  f.inj.disarm();

  f.store->ds_finalize(f.ctx);
  f.store.reset();
  f.pool->crash();
  f.device->crash();
  auto r = DStore::recover(f.pool.get(), f.device.get(), f.cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  f.store = std::move(r).value();
  f.ctx = f.store->ds_init();

  // a and b committed before the crash: both must read back exactly.
  // c never reached its commit point: it must be absent — not torn.
  EXPECT_EQ(f.get("a"), va);
  EXPECT_EQ(f.get("b"), vb);
  EXPECT_EQ(f.get("c"), "<absent>");
  EXPECT_EQ(f.store->object_count(), 2u);
  EXPECT_TRUE(f.store->validate().is_ok());
}

TEST(DStoreAsyncIo, CrashMidBatchWithoutPlpRecoversEmpty) {
  // Same mid-batch power failure without capacitors, during the very first
  // put: nothing ever committed, so recovery must produce an empty, valid
  // store (the acked-but-uncommitted cache contents simply vanish).
  StoreFixture f;
  f.build(/*ssd_qd=*/2, /*plp=*/false, pmem::Pool::Mode::kCrashSim);
  f.attach_faults();
  auto plan = FaultPlan::parse("ssd.write@2");
  ASSERT_TRUE(plan.is_ok());
  f.inj.set_plan(plan.value());
  std::string v = patterned(5 * 4096, 'n');
  f.inj.arm();
  (void)f.store->oput(f.ctx, "k", v.data(), v.size());
  ASSERT_TRUE(f.inj.crashed());
  f.inj.disarm();

  f.store->ds_finalize(f.ctx);
  f.store.reset();
  f.pool->crash();
  f.device->crash();
  auto r = DStore::recover(f.pool.get(), f.device.get(), f.cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  f.store = std::move(r).value();
  f.ctx = f.store->ds_init();
  EXPECT_EQ(f.store->object_count(), 0u);
  EXPECT_EQ(f.get("k"), "<absent>");
  EXPECT_TRUE(f.store->validate().is_ok());
}

TEST(DStoreAsyncIo, SweepSsdWriteCrashesWithMultiBlockValues) {
  // The async-era analogue of the exhaustive sweep: scale the rig's values
  // x5 so most ops span several blocks and every ssd.write crash point
  // lands with sibling IOs of the same queue-pair batch in flight. Every
  // schedule must recover to an oracle-equivalent state (PLP on).
  fault::RigOptions opt;
  opt.value_scale = 5;
  auto space = fault::CrashRig::enumerate_schedule(opt);
  uint64_t writes = 0;
  for (const auto& [point, count] : space) {
    if (point == "ssd.write") writes = count;
  }
  ASSERT_GE(writes, 20u);
  size_t failures = 0;
  for (uint64_t h = 1; h <= writes; h++) {
    FaultPlan plan = FaultPlan::crash_at("ssd.write", h);
    fault::CrashRig rig(opt);
    ASSERT_TRUE(rig.run(plan)) << "plan never fired: " << plan.to_string();
    Status s = rig.crash_and_recover();
    if (s.is_ok()) s = rig.verify();
    if (!s.is_ok()) {
      ADD_FAILURE() << "failing plan: " << plan.to_string() << " — " << s.to_string();
      if (++failures >= 5) break;
    }
  }
}

#endif  // !DSTORE_FAULT_INJECTION_DISABLED

}  // namespace
}  // namespace dstore
