// Tests for ShardedStore: placement, cross-shard independence, concurrent
// clients, full-fleet crash recovery, and capacity isolation.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/rng.h"
#include "dstore/sharded.h"

namespace dstore {
namespace {

ShardedConfig small_cfg(int shards = 4, bool crashsim = true) {
  ShardedConfig cfg;
  cfg.num_shards = shards;
  cfg.shard.max_objects = 256;
  cfg.shard.num_blocks = 2048;
  cfg.shard.engine.log_slots = 256;
  cfg.shard.engine.background_checkpointing = false;
  cfg.pool_mode = crashsim ? pmem::Pool::Mode::kCrashSim : pmem::Pool::Mode::kDirect;
  return cfg;
}

TEST(Sharded, BasicRoundTrip) {
  auto s = ShardedStore::create(small_cfg());
  ASSERT_TRUE(s.is_ok());
  std::string v(4096, 's');
  ASSERT_TRUE(s.value()->put("obj", v.data(), v.size()).is_ok());
  std::string out(4096, 0);
  auto r = s.value()->get("obj", out.data(), out.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(out, v);
  ASSERT_TRUE(s.value()->del("obj").is_ok());
  EXPECT_EQ(s.value()->get("obj", out.data(), out.size()).status().code(), Code::kNotFound);
}

TEST(Sharded, RejectsBadShardCount) {
  ShardedConfig cfg = small_cfg(0);
  EXPECT_EQ(ShardedStore::create(cfg).status().code(), Code::kInvalidArgument);
}

TEST(Sharded, PlacementIsStableAndSpread) {
  auto s = ShardedStore::create(small_cfg(8));
  ASSERT_TRUE(s.is_ok());
  std::map<int, int> counts;
  for (int i = 0; i < 400; i++) {
    std::string name = "key" + std::to_string(i);
    int sh = s.value()->shard_of(name);
    EXPECT_EQ(sh, s.value()->shard_of(name));  // deterministic
    counts[sh]++;
  }
  EXPECT_EQ(counts.size(), 8u);  // every shard gets traffic
  for (const auto& [sh, n] : counts) EXPECT_GT(n, 10) << "shard " << sh;
}

TEST(Sharded, ObjectsLandOnTheirShardOnly) {
  auto s = ShardedStore::create(small_cfg(4));
  ASSERT_TRUE(s.is_ok());
  char v[256] = {};
  for (int i = 0; i < 100; i++) {
    std::string name = "placed" + std::to_string(i);
    ASSERT_TRUE(s.value()->put(name, v, sizeof(v)).is_ok());
    int owner = s.value()->shard_of(name);
    for (int sh = 0; sh < 4; sh++) {
      auto size = s.value()->shard(sh).object_size(name);
      EXPECT_EQ(size.is_ok(), sh == owner) << name;
    }
  }
  EXPECT_EQ(s.value()->object_count(), 100u);
}

TEST(Sharded, FleetCrashRecoveryPreservesEverything) {
  auto sr = ShardedStore::create(small_cfg(4));
  ASSERT_TRUE(sr.is_ok());
  auto& s = *sr.value();
  Rng rng(12);
  std::map<std::string, std::pair<char, size_t>> model;
  for (int i = 0; i < 300; i++) {
    std::string name = "fleet" + std::to_string(rng.next_below(150));
    if (rng.next_bool(0.7) || model.count(name) == 0) {
      char seed = (char)('a' + rng.next_below(26));
      size_t size = 1 + rng.next_below(6000);
      std::string v(size, seed);
      ASSERT_TRUE(s.put(name, v.data(), v.size()).is_ok());
      model[name] = {seed, size};
    } else {
      ASSERT_TRUE(s.del(name).is_ok());
      model.erase(name);
    }
    // Keep per-shard logs from filling (manual checkpoint mode).
    if (i % 60 == 59) {
      ASSERT_TRUE(s.checkpoint_all().is_ok());
    }
  }
  ASSERT_TRUE(s.crash_and_recover_all().is_ok());
  ASSERT_TRUE(s.validate_all().is_ok());
  EXPECT_EQ(s.object_count(), model.size());
  std::string out(6000, 0);
  for (const auto& [name, sv] : model) {
    auto r = s.get(name, out.data(), out.size());
    ASSERT_TRUE(r.is_ok()) << name;
    ASSERT_EQ(r.value(), sv.second);
    EXPECT_EQ(out[sv.second - 1], sv.first) << name;
  }
}

TEST(Sharded, ConcurrentClientsAcrossShards) {
  ShardedConfig cfg = small_cfg(4, /*crashsim=*/false);
  cfg.shard.engine.background_checkpointing = true;
  cfg.shard.engine.log_slots = 1024;
  auto sr = ShardedStore::create(cfg);
  ASSERT_TRUE(sr.is_ok());
  auto& s = *sr.value();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; w++) {
    threads.emplace_back([&, w] {
      Rng rng(w);
      char v[2048];
      std::memset(v, 'a' + w, sizeof(v));
      for (int i = 0; i < 200; i++) {
        std::string name = "c" + std::to_string(rng.next_below(100));
        if (rng.next_bool(0.6)) {
          if (!s.put(name, v, sizeof(v)).is_ok()) failures++;
        } else {
          char buf[2048];
          auto r = s.get(name, buf, sizeof(buf));
          if (!r.is_ok() && r.status().code() != Code::kNotFound) failures++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(s.validate_all().is_ok());
}

TEST(Sharded, SpaceUsageAggregates) {
  auto s = ShardedStore::create(small_cfg(2));
  ASSERT_TRUE(s.is_ok());
  std::string v(4096, 'u');
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(s.value()->put("sp" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  auto u = s.value()->space_usage();
  EXPECT_EQ(u.ssd_bytes, 50u * 4096);
  EXPECT_GT(u.dram_bytes, 0u);
  EXPECT_GT(u.pmem_bytes, 0u);
}

TEST(Sharded, CrashSimRequiredForCrashRecovery) {
  auto s = ShardedStore::create(small_cfg(2, /*crashsim=*/false));
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(s.value()->crash_and_recover_all().code(), Code::kUnsupported);
}

}  // namespace
}  // namespace dstore
