// Tests for ShardedStore: placement, cross-shard independence, concurrent
// clients, full-fleet crash recovery, and capacity isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dstore/sharded.h"

namespace dstore {
namespace {

ShardedConfig small_cfg(int shards = 4, bool crashsim = true) {
  ShardedConfig cfg;
  cfg.num_shards = shards;
  cfg.shard.max_objects = 256;
  cfg.shard.num_blocks = 2048;
  cfg.shard.engine.log_slots = 256;
  cfg.shard.engine.background_checkpointing = false;
  cfg.pool_mode = crashsim ? pmem::Pool::Mode::kCrashSim : pmem::Pool::Mode::kDirect;
  return cfg;
}

TEST(Sharded, BasicRoundTrip) {
  auto s = ShardedStore::create(small_cfg());
  ASSERT_TRUE(s.is_ok());
  std::string v(4096, 's');
  ASSERT_TRUE(s.value()->put("obj", v.data(), v.size()).is_ok());
  std::string out(4096, 0);
  auto r = s.value()->get("obj", out.data(), out.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(out, v);
  ASSERT_TRUE(s.value()->del("obj").is_ok());
  EXPECT_EQ(s.value()->get("obj", out.data(), out.size()).status().code(), Code::kNotFound);
}

TEST(Sharded, RejectsBadShardCount) {
  ShardedConfig cfg = small_cfg(0);
  EXPECT_EQ(ShardedStore::create(cfg).status().code(), Code::kInvalidArgument);
  cfg = small_cfg(-3);
  EXPECT_EQ(ShardedStore::create(cfg).status().code(), Code::kInvalidArgument);
}

TEST(Sharded, RejectsOverflowingShardTemplate) {
  // A template whose derived pool size can't possibly be allocated must be
  // rejected up front with invalid_argument, not die inside an allocator.
  ShardedConfig cfg = small_cfg(2);
  cfg.shard.max_objects = 1ull << 52;  // auto-sized arena alone > 4 TiB
  auto r = ShardedStore::create(cfg);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kInvalidArgument);

  ShardedConfig explicit_arena = small_cfg(2);
  explicit_arena.shard.engine.arena_bytes = 1ull << 48;  // 3 arenas > 4 TiB
  EXPECT_EQ(ShardedStore::create(explicit_arena).status().code(), Code::kInvalidArgument);

  ShardedConfig logs = small_cfg(2);
  logs.shard.engine.log_slots = 1u << 31;  // 2 logs x slots x slot size
  EXPECT_EQ(ShardedStore::create(logs).status().code(), Code::kInvalidArgument);
}

TEST(Sharded, RejectsNegativeCkptWorkers) {
  ShardedConfig cfg = small_cfg(2);
  cfg.ckpt_workers = -1;
  EXPECT_EQ(ShardedStore::create(cfg).status().code(), Code::kInvalidArgument);
}

TEST(Sharded, KeyDistributionIsBalanced) {
  // 1M synthetic names over 8 shards: the splitmix-finalized placement must
  // stay within 1.15x of the per-shard mean (the binomial 6-sigma band is
  // ~0.8% here, so 15% headroom only fails on systematic bias), and the
  // chi-square statistic must not explode.
  auto s = ShardedStore::create(small_cfg(8, /*crashsim=*/false));
  ASSERT_TRUE(s.is_ok());
  constexpr int kNames = 1000000;
  std::vector<uint64_t> counts(8, 0);
  char name[32];
  for (int i = 0; i < kNames; i++) {
    int n = snprintf(name, sizeof(name), "user%08x/object-%d", i * 2654435761u, i);
    counts[(size_t)s.value()->shard_of(std::string_view(name, n))]++;
  }
  const double mean = (double)kNames / 8.0;
  double chi2 = 0;
  for (int sh = 0; sh < 8; sh++) {
    EXPECT_LE((double)counts[sh], 1.15 * mean) << "shard " << sh << " over-loaded";
    EXPECT_GE((double)counts[sh], 0.85 * mean) << "shard " << sh << " starved";
    double d = (double)counts[sh] - mean;
    chi2 += d * d / mean;
  }
  // chi-square, 7 dof: p=0.001 critical value is 24.3; a uniform hash sits
  // far below, a biased reduction (e.g. modulo over a non-power) far above.
  EXPECT_LT(chi2, 24.3);
}

TEST(Sharded, PlacementIsStableAndSpread) {
  auto s = ShardedStore::create(small_cfg(8));
  ASSERT_TRUE(s.is_ok());
  std::map<int, int> counts;
  for (int i = 0; i < 400; i++) {
    std::string name = "key" + std::to_string(i);
    int sh = s.value()->shard_of(name);
    EXPECT_EQ(sh, s.value()->shard_of(name));  // deterministic
    counts[sh]++;
  }
  EXPECT_EQ(counts.size(), 8u);  // every shard gets traffic
  for (const auto& [sh, n] : counts) EXPECT_GT(n, 10) << "shard " << sh;
}

TEST(Sharded, ObjectsLandOnTheirShardOnly) {
  auto s = ShardedStore::create(small_cfg(4));
  ASSERT_TRUE(s.is_ok());
  char v[256] = {};
  for (int i = 0; i < 100; i++) {
    std::string name = "placed" + std::to_string(i);
    ASSERT_TRUE(s.value()->put(name, v, sizeof(v)).is_ok());
    int owner = s.value()->shard_of(name);
    for (int sh = 0; sh < 4; sh++) {
      auto size = s.value()->shard(sh).object_size(name);
      EXPECT_EQ(size.is_ok(), sh == owner) << name;
    }
  }
  EXPECT_EQ(s.value()->object_count(), 100u);
}

TEST(Sharded, FleetCrashRecoveryPreservesEverything) {
  auto sr = ShardedStore::create(small_cfg(4));
  ASSERT_TRUE(sr.is_ok());
  auto& s = *sr.value();
  Rng rng(12);
  std::map<std::string, std::pair<char, size_t>> model;
  for (int i = 0; i < 300; i++) {
    std::string name = "fleet" + std::to_string(rng.next_below(150));
    if (rng.next_bool(0.7) || model.count(name) == 0) {
      char seed = (char)('a' + rng.next_below(26));
      size_t size = 1 + rng.next_below(6000);
      std::string v(size, seed);
      ASSERT_TRUE(s.put(name, v.data(), v.size()).is_ok());
      model[name] = {seed, size};
    } else {
      ASSERT_TRUE(s.del(name).is_ok());
      model.erase(name);
    }
    // Keep per-shard logs from filling (manual checkpoint mode).
    if (i % 60 == 59) {
      ASSERT_TRUE(s.checkpoint_all().is_ok());
    }
  }
  ASSERT_TRUE(s.crash_and_recover_all().is_ok());
  ASSERT_TRUE(s.validate_all().is_ok());
  EXPECT_EQ(s.object_count(), model.size());
  std::string out(6000, 0);
  for (const auto& [name, sv] : model) {
    auto r = s.get(name, out.data(), out.size());
    ASSERT_TRUE(r.is_ok()) << name;
    ASSERT_EQ(r.value(), sv.second);
    EXPECT_EQ(out[sv.second - 1], sv.first) << name;
  }
}

TEST(Sharded, ConcurrentClientsAcrossShards) {
  ShardedConfig cfg = small_cfg(4, /*crashsim=*/false);
  cfg.shard.engine.background_checkpointing = true;
  cfg.shard.engine.log_slots = 1024;
  auto sr = ShardedStore::create(cfg);
  ASSERT_TRUE(sr.is_ok());
  auto& s = *sr.value();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; w++) {
    threads.emplace_back([&, w] {
      Rng rng(w);
      char v[2048];
      std::memset(v, 'a' + w, sizeof(v));
      for (int i = 0; i < 200; i++) {
        std::string name = "c" + std::to_string(rng.next_below(100));
        if (rng.next_bool(0.6)) {
          if (!s.put(name, v, sizeof(v)).is_ok()) failures++;
        } else {
          char buf[2048];
          auto r = s.get(name, buf, sizeof(buf));
          if (!r.is_ok() && r.status().code() != Code::kNotFound) failures++;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(s.validate_all().is_ok());
}

TEST(Sharded, SpaceUsageAggregates) {
  auto s = ShardedStore::create(small_cfg(2));
  ASSERT_TRUE(s.is_ok());
  std::string v(4096, 'u');
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(s.value()->put("sp" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  auto u = s.value()->space_usage();
  EXPECT_EQ(u.ssd_bytes, 50u * 4096);
  EXPECT_GT(u.dram_bytes, 0u);
  EXPECT_GT(u.pmem_bytes, 0u);
}

TEST(Sharded, CrashSimRequiredForCrashRecovery) {
  auto s = ShardedStore::create(small_cfg(2, /*crashsim=*/false));
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(s.value()->crash_and_recover_all().code(), Code::kUnsupported);
}

TEST(Sharded, SerialRecoveryPreservesEverything) {
  // Same shape as the parallel fleet-recovery test, over the serial path
  // (the bench baseline): both recovery modes must land in identical state.
  ShardedConfig cfg = small_cfg(4);
  cfg.parallel_recovery = false;
  auto sr = ShardedStore::create(cfg);
  ASSERT_TRUE(sr.is_ok());
  auto& s = *sr.value();
  std::string v(2048, 'q');
  for (int i = 0; i < 120; i++) {
    ASSERT_TRUE(s.put("ser" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  ASSERT_TRUE(s.checkpoint_all().is_ok());
  for (int i = 0; i < 40; i++) {  // log tail on top of the checkpoint
    ASSERT_TRUE(s.put("tail" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  ASSERT_TRUE(s.crash_and_recover_all().is_ok());
  ASSERT_TRUE(s.validate_all().is_ok());
  EXPECT_EQ(s.object_count(), 160u);
  EXPECT_GT(s.last_recovery().wall_ns, 0u);
  ASSERT_EQ(s.last_recovery().shard_ns.size(), 4u);
  for (uint64_t ns : s.last_recovery().shard_ns) EXPECT_GT(ns, 0u);
}

TEST(Sharded, AffinitySessionsRouteAndPin) {
  ShardedConfig cfg = small_cfg(4, /*crashsim=*/false);
  cfg.affinity = true;
  auto sr = ShardedStore::create(cfg);
  ASSERT_TRUE(sr.is_ok());
  auto& s = *sr.value();

  ShardedStore::Session* pinned = s.open_session(2);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->pinned(), 2);
  // A pinned session may only carry keys its shard owns.
  std::string v(512, 'p');
  int stored = 0;
  for (int i = 0; i < 200 && stored < 10; i++) {
    std::string name = "aff" + std::to_string(i);
    if (s.shard_of(name) != 2) continue;
    ASSERT_TRUE(s.put(pinned, name, v.data(), v.size()).is_ok());
    EXPECT_TRUE(s.shard(2).object_size(name).is_ok()) << name;
    std::string out(512, 0);
    auto r = s.get(pinned, name, out.data(), out.size());
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(out, v);
    stored++;
  }
  EXPECT_EQ(stored, 10);
  s.close_session(pinned);

  // Out-of-range pins degrade to hash routing.
  ShardedStore::Session* wild = s.open_session(99);
  EXPECT_EQ(wild->pinned(), -1);
  s.close_session(wild);
}

TEST(Sharded, PinIgnoredWithoutAffinity) {
  auto sr = ShardedStore::create(small_cfg(4, /*crashsim=*/false));
  ASSERT_TRUE(sr.is_ok());
  ShardedStore::Session* sess = sr.value()->open_session(1);
  EXPECT_EQ(sess->pinned(), -1);  // cfg.affinity is off
  // Hash routing still works: any key is storable through the session.
  std::string v(256, 'h');
  ASSERT_TRUE(sr.value()->put(sess, "nopin", v.data(), v.size()).is_ok());
  std::string out(256, 0);
  EXPECT_TRUE(sr.value()->get(sess, "nopin", out.data(), out.size()).is_ok());
  sr.value()->close_session(sess);
}

TEST(Sharded, PoolRunChunksCoversAllIndicesExactlyOnce) {
  ShardedConfig cfg = small_cfg(4, /*crashsim=*/false);
  cfg.ckpt_workers = 3;
  auto sr = ShardedStore::create(cfg);
  ASSERT_TRUE(sr.is_ok());
  constexpr size_t kChunks = 257;
  std::vector<std::atomic<int>> hits(kChunks);
  for (auto& h : hits) h.store(0);
  sr.value()->pool().run_chunks(kChunks, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kChunks; i++) {
    EXPECT_EQ(hits[i].load(), 1) << "chunk " << i;
  }
}

TEST(Sharded, WatermarkDrivenPoolCheckpointing) {
  // Background mode with a low watermark: the frontend's ckpt_notify must
  // reach the pool and a worker must run the checkpoint — without any
  // per-shard checkpoint thread existing.
  ShardedConfig cfg = small_cfg(2, /*crashsim=*/false);
  cfg.shard.engine.background_checkpointing = true;
  cfg.shard.engine.checkpoint_threshold = 0.05;
  cfg.shard.engine.log_slots = 512;
  cfg.ckpt_workers = 2;
  auto sr = ShardedStore::create(cfg);
  ASSERT_TRUE(sr.is_ok());
  auto& s = *sr.value();
  std::string v(1024, 'w');
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(s.put("wm" + std::to_string(i % 64), v.data(), v.size()).is_ok());
  }
  // The notifies are asynchronous; give the workers a moment to drain.
  for (int spins = 0; spins < 2000 && s.pool().stats().runs.load() == 0; spins++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(s.pool().stats().notifies.load(), 0u);
  EXPECT_GT(s.pool().stats().runs.load(), 0u);
  EXPECT_EQ(s.pool().stats().failures.load(), 0u);
  ASSERT_TRUE(s.validate_all().is_ok());
}

TEST(Sharded, PauseStopsWatermarkServiceUntilResume) {
  ShardedConfig cfg = small_cfg(2, /*crashsim=*/false);
  cfg.shard.engine.background_checkpointing = true;
  cfg.shard.engine.checkpoint_threshold = 0.05;
  cfg.shard.engine.log_slots = 512;
  cfg.ckpt_workers = 2;
  auto sr = ShardedStore::create(cfg);
  ASSERT_TRUE(sr.is_ok());
  auto& s = *sr.value();
  s.pool().pause();
  std::string v(1024, 'z');
  for (int i = 0; i < 120; i++) {
    ASSERT_TRUE(s.put("pz" + std::to_string(i % 32), v.data(), v.size()).is_ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(s.pool().stats().runs.load(), 0u);  // requests parked, not run
  s.pool().resume();
  for (int spins = 0; spins < 2000 && s.pool().stats().runs.load() == 0; spins++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(s.pool().stats().runs.load(), 0u);
  ASSERT_TRUE(s.validate_all().is_ok());
}

TEST(Sharded, CheckpointAllAttemptsEveryShardOnFailure) {
  // One shard's checkpoint fails (cooperative abandon at ckpt:after_swap);
  // checkpoint_all must still attempt — and complete — every other shard,
  // and only then surface the error.
  ShardedConfig cfg = small_cfg(4, /*crashsim=*/false);
  auto abort_one = std::make_shared<std::atomic<bool>>(false);
  cfg.shard.engine.test_point_hook = [abort_one](const char* point) {
    if (std::string_view(point) != "ckpt:after_swap") return true;
    bool expected = true;
    // First checkpoint to reach the point while armed is abandoned.
    return !abort_one->compare_exchange_strong(expected, false);
  };
  auto sr = ShardedStore::create(cfg);
  ASSERT_TRUE(sr.is_ok());
  auto& s = *sr.value();
  std::string v(512, 'e');
  for (int i = 0; i < 64; i++) {  // every shard gets work to checkpoint
    ASSERT_TRUE(s.put("err" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  abort_one->store(true);
  Status st = s.checkpoint_all();
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Code::kInternal) << st.to_string();
  EXPECT_FALSE(abort_one->load());  // exactly one shard failed
  int completed = 0;
  for (int sh = 0; sh < 4; sh++) {
    completed += s.shard(sh).engine().stats().checkpoints.load() > 0 ? 1 : 0;
  }
  EXPECT_EQ(completed, 3);  // the three healthy shards were still checkpointed
  // The fleet stays serviceable and a retry heals the failed shard.
  ASSERT_TRUE(s.checkpoint_all().is_ok());
  ASSERT_TRUE(s.validate_all().is_ok());
}

}  // namespace
}  // namespace dstore
