// DStore configuration-mode tests: observational equivalence off (Fig 9
// ablation), physical logging, log backpressure, long (two-cache-line)
// object names under crashes, and the stage-stats instrumentation.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/rng.h"
#include "dstore/dstore.h"

namespace dstore {
namespace {

struct ModeRig {
  DStoreConfig cfg;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<ssd::RamBlockDevice> device;
  std::unique_ptr<DStore> store;
  ds_ctx_t* ctx = nullptr;

  explicit ModeRig(bool oe = true, bool physical = false, uint32_t log_slots = 256,
                   bool background = false, bool parallel_replay = true) {
    cfg.max_objects = 512;
    cfg.num_blocks = 4096;
    cfg.observational_equivalence = oe;
    cfg.parallel_replay = parallel_replay;
    cfg.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(cfg.max_objects);
    cfg.engine.log_slots = log_slots;
    cfg.engine.background_checkpointing = background;
    cfg.engine.physical_logging = physical;
    pool = std::make_unique<pmem::Pool>(dipper::Engine::required_pool_bytes(cfg.engine),
                                        pmem::Pool::Mode::kCrashSim);
    ssd::DeviceConfig dc;
    dc.num_blocks = cfg.num_blocks;
    device = std::make_unique<ssd::RamBlockDevice>(dc);
    auto r = DStore::create(pool.get(), device.get(), cfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    ctx = store->ds_init();
  }

  ~ModeRig() {
    if (ctx != nullptr && store) store->ds_finalize(ctx);
  }

  void crash_and_recover() {
    if (ctx != nullptr) store->ds_finalize(ctx);
    ctx = nullptr;
    store->engine().stop_background();
    store.reset();
    pool->crash();
    device->crash();
    auto r = DStore::recover(pool.get(), device.get(), cfg);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    ctx = store->ds_init();
  }
};

TEST(DStoreModes, OeOffIsFunctionallyIdentical) {
  ModeRig rig(/*oe=*/false);
  std::string v(4096, 'n');
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(rig.store->oput(rig.ctx, "noe" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  ASSERT_TRUE(rig.store->checkpoint_now().is_ok());
  ASSERT_TRUE(rig.store->validate().is_ok());
  rig.crash_and_recover();
  std::string out(4096, 0);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        rig.store->oget(rig.ctx, "noe" + std::to_string(i), out.data(), out.size()).is_ok());
    EXPECT_EQ(out, v);
  }
}

TEST(DStoreModes, OeOffConcurrentWritersStillCorrect) {
  ModeRig rig(/*oe=*/false, false, 1024, /*background=*/true);
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; w++) {
    threads.emplace_back([&, w] {
      ds_ctx_t* ctx = rig.store->ds_init();
      std::string v(2048, (char)('a' + w));
      for (int i = 0; i < 100; i++) {
        ASSERT_TRUE(
            rig.store->oput(ctx, "w" + std::to_string(w) + "-" + std::to_string(i), v.data(),
                            v.size())
                .is_ok());
      }
      rig.store->ds_finalize(ctx);
    });
  }
  for (auto& t : threads) t.join();
  rig.store->engine().stop_background();
  ASSERT_TRUE(rig.store->validate().is_ok());
  EXPECT_EQ(rig.store->object_count(), 300u);
}

TEST(DStoreModes, PhysicalLoggingStillCrashConsistent) {
  ModeRig rig(true, /*physical=*/true);
  std::string v(4096, 'p');
  for (int i = 0; i < 80; i++) {
    ASSERT_TRUE(rig.store->oput(rig.ctx, "phys" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  ASSERT_TRUE(rig.store->checkpoint_now().is_ok());
  for (int i = 80; i < 120; i++) {
    ASSERT_TRUE(rig.store->oput(rig.ctx, "phys" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  rig.crash_and_recover();
  std::string out(4096, 0);
  for (int i = 0; i < 120; i++) {
    ASSERT_TRUE(
        rig.store->oget(rig.ctx, "phys" + std::to_string(i), out.data(), out.size()).is_ok())
        << i;
    EXPECT_EQ(out, v);
  }
}

TEST(DStoreModes, PhysicalLoggingWritesPayloadToPmem) {
  ModeRig logical(true, false);
  ModeRig physical(true, true);
  std::string v(4096, 'q');
  uint64_t l0 = logical.pool->stats().bytes_flushed.load();
  uint64_t p0 = physical.pool->stats().bytes_flushed.load();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(logical.store->oput(logical.ctx, "k" + std::to_string(i), v.data(), v.size())
                    .is_ok());
    ASSERT_TRUE(physical.store->oput(physical.ctx, "k" + std::to_string(i), v.data(), v.size())
                    .is_ok());
  }
  uint64_t logical_flushed = logical.pool->stats().bytes_flushed.load() - l0;
  uint64_t physical_flushed = physical.pool->stats().bytes_flushed.load() - p0;
  // Physical logging flushes the 4KB payload per op on top of the record.
  EXPECT_GT(physical_flushed, logical_flushed + 20 * 4000);
}

TEST(DStoreModes, BackpressureWhenLogFullManualMode) {
  ModeRig rig(true, false, /*log_slots=*/32, /*background=*/false);
  std::string v(128, 'b');
  // Fill the log completely.
  int wrote = 0;
  for (int i = 0; i < 32; i++) {
    Status s = rig.store->oput(rig.ctx, "bp" + std::to_string(i), v.data(), v.size());
    if (!s.is_ok()) {
      EXPECT_EQ(s.code(), Code::kBusy);
      break;
    }
    wrote++;
  }
  EXPECT_EQ(wrote, 32);
  // 33rd write must report busy (no background checkpointer).
  EXPECT_EQ(rig.store->oput(rig.ctx, "bp-full", v.data(), v.size()).code(), Code::kBusy);
  // A manual checkpoint clears the backlog.
  ASSERT_TRUE(rig.store->checkpoint_now().is_ok());
  EXPECT_TRUE(rig.store->oput(rig.ctx, "bp-full", v.data(), v.size()).is_ok());
  ASSERT_TRUE(rig.store->validate().is_ok());
}

TEST(DStoreModes, BackpressureResolvesWithBackgroundCheckpointer) {
  ModeRig rig(true, false, /*log_slots=*/64, /*background=*/true);
  std::string v(512, 'g');
  // Write far more records than the log holds: appends must transparently
  // wait for background checkpoints instead of failing.
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(rig.store->oput(rig.ctx, "load" + std::to_string(i % 50), v.data(), v.size())
                    .is_ok())
        << i;
  }
  rig.store->engine().stop_background();
  EXPECT_GT(rig.store->engine().stats().checkpoints.load(), 3u);
  ASSERT_TRUE(rig.store->validate().is_ok());
}

TEST(DStoreModes, LongNamesTwoLineRecordsSurviveCrashes) {
  ModeRig rig(true, false, 128);
  Rng rng(99);
  std::map<std::string, char> model;
  // Names at the 63-byte cap force two-cache-line log records, exercising
  // the multi-line reverse-order flush protocol end to end.
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < 20; i++) {
      std::string name(kMaxNameLen - 4, 'L');
      name += std::to_string(1000 + (int)rng.next_below(40));
      char seed = (char)('a' + rng.next_below(26));
      std::string v(2048, seed);
      ASSERT_TRUE(rig.store->oput(rig.ctx, name, v.data(), v.size()).is_ok());
      model[name] = seed;
      if (rng.next_bool(0.2)) rig.pool->evict_random_lines(rng, 16);
    }
    if (rig.store->engine().log_fill() > 0.7) {
      ASSERT_TRUE(rig.store->checkpoint_now().is_ok());
    }
    rig.crash_and_recover();
    std::string out(2048, 0);
    for (const auto& [name, seed] : model) {
      auto r = rig.store->oget(rig.ctx, name, out.data(), out.size());
      ASSERT_TRUE(r.is_ok()) << name;
      EXPECT_EQ(out[0], seed);
      EXPECT_EQ(out[2047], seed);
    }
  }
}

// The OE-parallel two-lane replay must produce a state observationally
// equivalent to sequential replay — same objects, same sizes, and (because
// pool order is preserved) the IDENTICAL SSD block assignment.
TEST(DStoreModes, ParallelReplayEquivalentToSequential) {
  for (bool parallel : {false, true}) {
    ModeRig rig(true, false, /*log_slots=*/512, false, parallel);
    Rng rng(2026);
    std::map<std::string, std::pair<char, size_t>> model;
    for (int i = 0; i < 400; i++) {
      std::string name = "pr" + std::to_string(rng.next_below(60));
      if (rng.next_bool(0.7) || model.count(name) == 0) {
        char seed = (char)('a' + rng.next_below(26));
        size_t size = 1 + rng.next_below(8000);
        std::string v(size, seed);
        ASSERT_TRUE(rig.store->oput(rig.ctx, name, v.data(), v.size()).is_ok());
        model[name] = {seed, size};
      } else {
        ASSERT_TRUE(rig.store->odelete(rig.ctx, name).is_ok());
        model.erase(name);
      }
    }
    // The 400 records exceed the parallel threshold (128), so parallel=true
    // exercises the two-lane path in this checkpoint.
    ASSERT_TRUE(rig.store->checkpoint_now().is_ok());
    rig.crash_and_recover();
    ASSERT_TRUE(rig.store->validate().is_ok());
    ASSERT_EQ(rig.store->object_count(), model.size()) << "parallel=" << parallel;
    std::string out(8000, 0);
    for (const auto& [name, sv] : model) {
      auto r = rig.store->oget(rig.ctx, name, out.data(), out.size());
      ASSERT_TRUE(r.is_ok()) << name << " parallel=" << parallel;
      ASSERT_EQ(r.value(), sv.second);
      EXPECT_EQ(out[0], sv.first);
      EXPECT_EQ(out[sv.second - 1], sv.first);
    }
  }
}

TEST(DStoreModes, ParallelReplayUnderCrashChurn) {
  // Heavy churn with frequent crashes, parallel replay on: the end-to-end
  // crash-consistency property must hold exactly as with sequential replay.
  ModeRig rig(true, false, /*log_slots=*/512, false, /*parallel_replay=*/true);
  Rng rng(777);
  std::map<std::string, std::pair<char, size_t>> model;
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < 150; i++) {
      std::string name = "pc" + std::to_string(rng.next_below(80));
      if (rng.next_bool(0.7) || model.count(name) == 0) {
        char seed = (char)('a' + rng.next_below(26));
        size_t size = 1 + rng.next_below(6000);
        std::string v(size, seed);
        ASSERT_TRUE(rig.store->oput(rig.ctx, name, v.data(), v.size()).is_ok());
        model[name] = {seed, size};
      } else {
        ASSERT_TRUE(rig.store->odelete(rig.ctx, name).is_ok());
        model.erase(name);
      }
      if (rig.store->engine().log_fill() > 0.75) {
        ASSERT_TRUE(rig.store->checkpoint_now().is_ok());
      }
    }
    rig.crash_and_recover();
    ASSERT_TRUE(rig.store->validate().is_ok());
    std::string out(6000, 0);
    for (const auto& [name, sv] : model) {
      auto r = rig.store->oget(rig.ctx, name, out.data(), out.size());
      ASSERT_TRUE(r.is_ok()) << name << " round " << round;
      ASSERT_EQ(r.value(), sv.second);
      EXPECT_EQ(out[sv.second - 1], sv.first);
    }
  }
}

TEST(DStoreModes, StageMetricsAccumulateSanely) {
  ModeRig rig;
  std::string v(4096, 's');
  // Stage spans are sampled 1-in-OpTrace::kSampleEvery per thread, so run
  // enough puts that several full traces land in the histograms.
  const int kOps = 8 * (int)obs::OpTrace::kSampleEvery;
  for (int i = 0; i < kOps; i++) {
    ASSERT_TRUE(rig.store->oput(rig.ctx, "st" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  auto& m = rig.store->metrics();
  EXPECT_EQ(m.counter_value("dstore_puts_total"), (uint64_t)kOps);
  EXPECT_EQ(m.counter_value("dstore_put_failures_total"), 0u);
#if !defined(DSTORE_METRICS_DISABLED)
  obs::Histogram* lat = m.find_histogram("dstore_put_latency_ns");
  ASSERT_NE(lat, nullptr);
  // Latency is recorded on sampled traces only: exactly 1-in-kSampleEvery
  // of this thread's consecutive puts.
  EXPECT_EQ(lat->count(), (uint64_t)kOps / obs::OpTrace::kSampleEvery);
  uint64_t stage_sum = 0, sampled = 0;
  for (const char* name :
       {"dstore_stage_log_append_ns", "dstore_stage_pool_alloc_ns", "dstore_stage_meta_zone_ns",
        "dstore_stage_btree_ns", "dstore_stage_ssd_batch_ns", "dstore_stage_commit_flush_ns"}) {
    obs::Histogram* h = m.find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count(), 0u) << name;
    sampled = h->count();  // every stage sees the same sampled traces
    stage_sum += h->sum();
  }
  // Sampled stage spans are sub-portions of the sampled ops' total time.
  EXPECT_LE(stage_sum, lat->sum() + sampled * 2000 /* timer slack */);
  // No trace left open.
  EXPECT_EQ(m.value("dstore_active_ops"), 0);
#endif
}

TEST(DStoreModes, CheckpointThresholdHonored) {
  DStoreConfig cfg;
  cfg.max_objects = 256;
  cfg.num_blocks = 1024;
  cfg.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(cfg.max_objects);
  cfg.engine.log_slots = 100;
  cfg.engine.checkpoint_threshold = 0.3;
  cfg.engine.background_checkpointing = true;
  pmem::Pool pool(dipper::Engine::required_pool_bytes(cfg.engine), pmem::Pool::Mode::kDirect);
  ssd::DeviceConfig dc;
  dc.num_blocks = cfg.num_blocks;
  ssd::RamBlockDevice device(dc);
  auto r = DStore::create(&pool, &device, cfg);
  ASSERT_TRUE(r.is_ok());
  auto store = std::move(r).value();
  ds_ctx_t* ctx = store->ds_init();
  std::string v(128, 't');
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(store->oput(ctx, "th" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  // With a 0.3 threshold on a 100-slot log, 60 appends must trigger at
  // least one checkpoint; give the background thread time to run it.
  for (int spin = 0; spin < 200 && store->engine().stats().checkpoints.load() == 0; spin++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  store->engine().stop_background();
  EXPECT_GE(store->engine().stats().checkpoints.load(), 1u);
  store->ds_finalize(ctx);
}

}  // namespace
}  // namespace dstore
