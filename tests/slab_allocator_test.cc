// Tests for the in-arena slab allocator: format/open, size classes, reuse,
// exhaustion, cloning (the checkpoint primitive), and determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "alloc/slab_allocator.h"
#include "common/rng.h"

namespace dstore {
namespace {

class SlabTest : public ::testing::Test {
 protected:
  static constexpr size_t kArenaSize = 8 << 20;
  void SetUp() override {
    buf_ = std::make_unique<char[]>(kArenaSize);
    arena_ = Arena(buf_.get(), kArenaSize);
    sp_ = SlabAllocator::format(arena_);
  }
  std::unique_ptr<char[]> buf_;
  Arena arena_;
  SlabAllocator sp_;
};

TEST_F(SlabTest, FormatAndOpen) {
  auto reopened = SlabAllocator::open(arena_);
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(reopened.value().used_bytes(), sp_.used_bytes());
}

TEST_F(SlabTest, OpenRejectsGarbage) {
  std::memset(buf_.get(), 0x5a, 64);
  auto r = SlabAllocator::open(arena_);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Code::kCorruption);
}

TEST_F(SlabTest, AllocNonNullAndDistinct) {
  offset_t a = sp_.alloc(100);
  offset_t b = sp_.alloc(100);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST_F(SlabTest, NullOffsetNeverReturned) {
  // Offset 0 is the header; it can never be an allocation.
  for (int i = 0; i < 1000; i++) EXPECT_NE(sp_.alloc(16), 0u);
}

TEST_F(SlabTest, AllocationSizeIsClassCapacity) {
  offset_t a = sp_.alloc(100);
  // 100 + 8B tag -> 128B class -> 120 usable.
  EXPECT_EQ(sp_.allocation_size(a), 120u);
  offset_t b = sp_.alloc(8);
  EXPECT_EQ(sp_.allocation_size(b), 8u);  // 16B class minus tag
}

TEST_F(SlabTest, AllocZeroedZeroes) {
  offset_t a = sp_.alloc(256);
  std::memset(arena_.at(a), 0xff, 256);
  ASSERT_TRUE(sp_.free(a).is_ok());
  offset_t b = sp_.alloc_zeroed(256);
  EXPECT_EQ(a, b);  // LIFO reuse of the same block
  for (int i = 0; i < 256; i++) EXPECT_EQ(arena_.at(b)[i], 0);
}

TEST_F(SlabTest, FreeEnablesReuse) {
  offset_t a = sp_.alloc(500);
  ASSERT_TRUE(sp_.free(a).is_ok());
  offset_t b = sp_.alloc(500);
  EXPECT_EQ(a, b);
}

TEST_F(SlabTest, FreeNullIsNoop) {
  EXPECT_TRUE(sp_.free(0).is_ok());
  EXPECT_EQ(sp_.allocation_count(), 0u);
}

TEST_F(SlabTest, DoubleFreeReturnsCorruption) {
  offset_t a = sp_.alloc(100);
  ASSERT_NE(a, 0u);
  ASSERT_TRUE(sp_.free(a).is_ok());
  // The first free replaced the allocation tag with a free-list link, so a
  // second free must be detected instead of double-threading the block.
  Status s = sp_.free(a);
  EXPECT_EQ(s.code(), Code::kCorruption);
  // Allocator state is untouched by the rejected free: the block is handed
  // out exactly once.
  offset_t b = sp_.alloc(100);
  EXPECT_EQ(b, a);
  offset_t c = sp_.alloc(100);
  EXPECT_NE(c, a);
}

TEST_F(SlabTest, FreeWithClobberedTagReturnsCorruption) {
  offset_t a = sp_.alloc(64);
  ASSERT_NE(a, 0u);
  uint64_t count = sp_.allocation_count();
  // Scribble over the allocation tag (the 8 bytes preceding the payload).
  std::memset(arena_.at(a - 8), 0x5a, 8);
  EXPECT_EQ(sp_.free(a).code(), Code::kCorruption);
  EXPECT_EQ(sp_.allocation_count(), count);  // accounting untouched
}

TEST_F(SlabTest, AccountingTracksAllocations) {
  EXPECT_EQ(sp_.allocation_count(), 0u);
  offset_t a = sp_.alloc(64);
  offset_t b = sp_.alloc(64);
  EXPECT_EQ(sp_.allocation_count(), 2u);
  uint64_t bytes = sp_.allocated_bytes();
  EXPECT_GE(bytes, 2 * 64u);
  ASSERT_TRUE(sp_.free(a).is_ok());
  ASSERT_TRUE(sp_.free(b).is_ok());
  EXPECT_EQ(sp_.allocation_count(), 0u);
  EXPECT_EQ(sp_.allocated_bytes(), 0u);
}

TEST_F(SlabTest, DifferentClassesDontMix) {
  offset_t small = sp_.alloc(16);
  offset_t big = sp_.alloc(4096);
  ASSERT_TRUE(sp_.free(small).is_ok());
  offset_t big2 = sp_.alloc(4096);
  EXPECT_NE(big2, small);  // the freed 32B block can't satisfy a 4KB class
  EXPECT_NE(big2, big);
}

TEST_F(SlabTest, ExhaustionReturnsNull) {
  // A tiny arena runs out quickly and must fail cleanly.
  auto small_buf = std::make_unique<char[]>(256 * 1024);
  Arena small(small_buf.get(), 256 * 1024);
  SlabAllocator a = SlabAllocator::format(small);
  int got = 0;
  while (a.alloc(60 * 1024) != 0) got++;
  EXPECT_GT(got, 0);
  EXPECT_LT(got, 10);
  EXPECT_EQ(a.alloc(60 * 1024), 0u);
  // Small allocations may still succeed in the remaining space.
}

TEST_F(SlabTest, OversizeAllocationRejected) {
  EXPECT_EQ(sp_.alloc((size_t)1 << 30), 0u);  // above the max class
}

TEST_F(SlabTest, UserRootRoundTrips) {
  offset_t a = sp_.alloc(64);
  sp_.set_user_root(a);
  EXPECT_EQ(sp_.user_root(), a);
  auto reopened = SlabAllocator::open(arena_);
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(reopened.value().user_root(), a);
}

TEST_F(SlabTest, WritesLandInsideArena) {
  offset_t a = sp_.alloc(128);
  char* p = arena_.at(a);
  EXPECT_TRUE(arena_.contains(p));
  EXPECT_TRUE(arena_.contains(p + 119));
}

TEST_F(SlabTest, CloneReproducesContentAndState) {
  offset_t a = sp_.alloc(100);
  std::memcpy(arena_.at(a), "hello dipper", 13);
  offset_t b = sp_.alloc(4000);
  std::memset(arena_.at(b), 0x7e, 4000);
  sp_.set_user_root(a);

  auto dst_buf = std::make_unique<char[]>(kArenaSize);
  Arena dst(dst_buf.get(), kArenaSize);
  auto clone = sp_.clone_into(dst);
  ASSERT_TRUE(clone.is_ok());
  SlabAllocator& c = clone.value();

  EXPECT_EQ(c.used_bytes(), sp_.used_bytes());
  EXPECT_EQ(c.allocation_count(), sp_.allocation_count());
  EXPECT_EQ(c.user_root(), a);
  EXPECT_STREQ(dst.at(a), "hello dipper");
  EXPECT_EQ((unsigned char)dst.at(b)[3999], 0x7eu);
}

TEST_F(SlabTest, CloneRejectsSmallTarget) {
  auto dst_buf = std::make_unique<char[]>(1024);
  Arena dst(dst_buf.get(), 1024);
  auto clone = sp_.clone_into(dst);
  ASSERT_FALSE(clone.is_ok());
  EXPECT_EQ(clone.status().code(), Code::kInvalidArgument);
}

TEST_F(SlabTest, CloneThenDivergeIndependently) {
  offset_t a = sp_.alloc(64);
  auto dst_buf = std::make_unique<char[]>(kArenaSize);
  Arena dst(dst_buf.get(), kArenaSize);
  auto clone = sp_.clone_into(dst);
  ASSERT_TRUE(clone.is_ok());
  SlabAllocator& c = clone.value();
  std::memset(arena_.at(a), 1, 56);
  std::memset(dst.at(a), 2, 56);
  EXPECT_EQ(arena_.at(a)[0], 1);
  EXPECT_EQ(dst.at(a)[0], 2);
  // Allocations in the clone don't affect the source.
  uint64_t src_count = sp_.allocation_count();
  c.alloc(64);
  EXPECT_EQ(sp_.allocation_count(), src_count);
}

// Determinism: the same allocation/free sequence against a clone produces
// the same offsets — the property DIPPER's log replay depends on.
TEST_F(SlabTest, DeterministicReplayAfterClone) {
  Rng ops_rng(42);
  // Run a random prologue on the source.
  std::vector<offset_t> live;
  for (int i = 0; i < 500; i++) {
    if (!live.empty() && ops_rng.next_bool(0.4)) {
      size_t idx = ops_rng.next_below(live.size());
      ASSERT_TRUE(sp_.free(live[idx]).is_ok());
      live.erase(live.begin() + idx);
    } else {
      offset_t o = sp_.alloc(16 << ops_rng.next_below(8));
      ASSERT_NE(o, 0u);
      live.push_back(o);
    }
  }
  // Clone, then apply the identical suffix to both.
  auto dst_buf = std::make_unique<char[]>(kArenaSize);
  Arena dst(dst_buf.get(), kArenaSize);
  auto clone = sp_.clone_into(dst);
  ASSERT_TRUE(clone.is_ok());
  SlabAllocator& c = clone.value();

  Rng suffix_a(7), suffix_b(7);
  for (int i = 0; i < 300; i++) {
    size_t sz_a = 16 << suffix_a.next_below(8);
    size_t sz_b = 16 << suffix_b.next_below(8);
    ASSERT_EQ(sz_a, sz_b);
    offset_t oa = sp_.alloc(sz_a);
    offset_t ob = c.alloc(sz_b);
    EXPECT_EQ(oa, ob) << "divergent allocation at step " << i;
  }
}

class SlabSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SlabSizeSweep, AllocWriteFreeCycle) {
  size_t size = GetParam();
  auto buf = std::make_unique<char[]>(64 << 20);
  Arena arena(buf.get(), 64 << 20);
  SlabAllocator sp = SlabAllocator::format(arena);
  offset_t o = sp.alloc(size);
  ASSERT_NE(o, 0u);
  ASSERT_GE(sp.allocation_size(o), size);
  std::memset(arena.at(o), 0x42, size);
  ASSERT_TRUE(sp.free(o).is_ok());
  offset_t o2 = sp.alloc(size);
  EXPECT_EQ(o2, o);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SlabSizeSweep,
                         ::testing::Values(1, 8, 15, 16, 17, 63, 64, 100, 255, 256, 1000, 4095,
                                           4096, 65535, 65536, 1 << 20, 8 << 20));

}  // namespace
}  // namespace dstore
