// Tests for the network service layer (DESIGN.md §15): the wire codec
// (round-trips, stream reassembly, deterministic garbage fuzz), the epoll
// server + client library end to end (pipelining, out-of-order completion,
// tenant isolation, metrics over the wire), and — under fault injection —
// the server crash rig: a fault plan kills the live server mid-checkpoint
// and recovery is held to a zero-acked-write-loss oracle.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "dipper/log.h"
#include "dstore/sharded.h"
#include "fault/fault.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "pmem/pool.h"
#include "repl/repl.h"

namespace dstore::net {
namespace {

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(WireCodec, FrameRoundTripsThroughParser) {
  std::string stream;
  append_frame(&stream, Op::kPut, 42, 0, "hello body");
  append_frame(&stream, Op::kGet, 43, 3, "");  // status byte rides along

  FrameParser p;
  p.feed(stream.data(), stream.size());
  Frame f;
  ASSERT_EQ(p.next(&f), FrameParser::Next::kFrame);
  EXPECT_EQ(f.hdr.op, Op::kPut);
  EXPECT_EQ(f.hdr.req_id, 42u);
  EXPECT_EQ(f.hdr.status, 0u);
  EXPECT_EQ(f.body, "hello body");
  ASSERT_EQ(p.next(&f), FrameParser::Next::kFrame);
  EXPECT_EQ(f.hdr.op, Op::kGet);
  EXPECT_EQ(f.hdr.req_id, 43u);
  EXPECT_EQ(f.hdr.status, 3u);
  EXPECT_TRUE(f.body.empty());
  EXPECT_EQ(p.next(&f), FrameParser::Next::kNeedMore);
}

TEST(WireCodec, ReassemblesFramesFedOneByteAtATime) {
  std::string stream;
  std::string body(1000, 'x');
  append_frame(&stream, Op::kScrub, 7, 0, body);
  FrameParser p;
  Frame f;
  for (size_t i = 0; i < stream.size(); i++) {
    p.feed(&stream[i], 1);
    if (i + 1 < stream.size()) {
      ASSERT_EQ(p.next(&f), FrameParser::Next::kNeedMore) << "at byte " << i;
    }
  }
  ASSERT_EQ(p.next(&f), FrameParser::Next::kFrame);
  EXPECT_EQ(f.hdr.req_id, 7u);
  EXPECT_EQ(f.body, body);
}

TEST(WireCodec, BodyBuildersRoundTrip) {
  std::string_view name;
  std::string ob = open_ns_body("tenant-a");  // outlives the parsed view
  ASSERT_TRUE(parse_open_ns(ob, &name));
  EXPECT_EQ(name, "tenant-a");

  uint32_t ns = 0;
  std::string_view key, value;
  std::string kb = key_body(9, "obj-1");
  ASSERT_TRUE(parse_key(kb, &ns, &key));
  EXPECT_EQ(ns, 9u);
  EXPECT_EQ(key, "obj-1");

  std::string payload = "\x00\x01payload\xff";
  std::string pb = put_body(3, "k", payload.data(), payload.size());
  ASSERT_TRUE(parse_put(pb, &ns, &key, &value));
  EXPECT_EQ(ns, 3u);
  EXPECT_EQ(key, "k");
  EXPECT_EQ(value, payload);

  uint8_t format = 9;
  ASSERT_TRUE(parse_metrics(metrics_body(1), &format));
  EXPECT_EQ(format, 1u);

  NamespaceInfo info;
  ASSERT_TRUE(parse_open_ns_resp(open_ns_resp_body({12, 2}), &info));
  EXPECT_EQ(info.ns_id, 12u);
  EXPECT_EQ(info.shard, 2u);

  ScrubSummary in{1, 2, 3, 4, 5}, out;
  ASSERT_TRUE(parse_scrub_resp(scrub_resp_body(in), &out));
  EXPECT_EQ(out.objects_scanned, 1u);
  EXPECT_EQ(out.quarantined_pages, 5u);
}

TEST(WireCodec, TruncatedBodiesFailToParseWithoutCrashing) {
  // The value is "rest of body" (its length is implied by the frame's
  // body_len), so the structured prefix is u32 ns + u16 key_len + key:
  // any cut inside it must be rejected; cuts beyond it just shorten the
  // value, which the frame layer has already vouched for.
  std::string pb = put_body(3, "key", "value", 5);
  const size_t structured = 4 + 2 + 3;
  uint32_t ns;
  std::string_view key, value;
  for (size_t cut = 0; cut < structured; cut++) {
    EXPECT_FALSE(parse_put(std::string_view(pb.data(), cut), &ns, &key, &value))
        << "prefix of " << cut << " bytes parsed";
  }
  for (size_t cut = structured; cut <= pb.size(); cut++) {
    ASSERT_TRUE(parse_put(std::string_view(pb.data(), cut), &ns, &key, &value));
    EXPECT_EQ(key, "key");
    EXPECT_EQ(value.size(), cut - structured);
  }

  // key_body has no trailing blob, so there EVERY strict prefix fails.
  std::string kb = key_body(3, "key");
  for (size_t cut = 0; cut < kb.size(); cut++) {
    EXPECT_FALSE(parse_key(std::string_view(kb.data(), cut), &ns, &key))
        << "prefix of " << cut << " bytes parsed";
  }
  ASSERT_TRUE(parse_key(kb, &ns, &key));
}

TEST(WireCodec, GarbageMagicPoisonsParser) {
  FrameParser p;
  std::string junk = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";  // not DSTP
  p.feed(junk.data(), junk.size());
  Frame f;
  ASSERT_EQ(p.next(&f), FrameParser::Next::kError);
  EXPECT_EQ(p.error().code(), Code::kInvalidArgument);
  // Poisoned for good: even a valid frame afterwards stays an error.
  std::string good;
  append_frame(&good, Op::kPut, 1, 0, "");
  p.feed(good.data(), good.size());
  EXPECT_EQ(p.next(&f), FrameParser::Next::kError);
}

TEST(WireCodec, VersionMismatchAndOversizeAreErrors) {
  {
    std::string stream;
    append_frame(&stream, Op::kPut, 1, 0, "");
    stream[4] = (char)(kVersion + 1);
    FrameParser p;
    p.feed(stream.data(), stream.size());
    Frame f;
    ASSERT_EQ(p.next(&f), FrameParser::Next::kError);
    EXPECT_EQ(p.error().code(), Code::kUnsupported);
  }
  {
    // body_len over the limit must error BEFORE any allocation happens.
    std::string hdr;
    append_frame(&hdr, Op::kPut, 1, 0, "");
    uint32_t huge = 64u << 20;
    memcpy(&hdr[16], &huge, sizeof(huge));  // little-endian host assumed in tests
    FrameParser p(1 << 20);
    p.feed(hdr.data(), hdr.size());
    Frame f;
    ASSERT_EQ(p.next(&f), FrameParser::Next::kError);
    EXPECT_EQ(p.error().code(), Code::kInvalidArgument);
  }
}

// Deterministic garbage fuzz: random byte streams (fixed seeds) must never
// crash the parser — every stream ends in kNeedMore or a poisoned error.
TEST(WireCodec, DeterministicGarbageFuzz) {
  for (uint64_t seed = 1; seed <= 64; seed++) {
    uint64_t x = seed * 0x9e3779b97f4a7c15ull;
    auto next_byte = [&x]() {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return (char)(x & 0xff);
    };
    FrameParser p(1 << 16);
    Frame f;
    for (int round = 0; round < 32; round++) {
      char chunk[64];
      for (char& c : chunk) c = next_byte();
      // A quarter of the streams start with valid magic+version, so the
      // fuzz also exercises the header-accepted/body-pending path.
      if (round == 0 && seed % 4 == 0) {
        std::string valid;
        append_frame(&valid, Op::kGet, seed, 0, "seedbody");
        p.feed(valid.data(), valid.size());
      }
      p.feed(chunk, sizeof(chunk));
      for (int drain = 0; drain < 64; drain++) {
        FrameParser::Next n = p.next(&f);
        if (n != FrameParser::Next::kFrame) break;
      }
    }
    // Either outcome is legal; crashing or spinning forever is not.
    SUCCEED();
  }
}

// Truncation fuzz: every prefix of a valid multi-frame stream leaves the
// parser waiting (never poisoned, never inventing a frame early).
TEST(WireCodec, TruncatedStreamsAlwaysNeedMore) {
  std::string stream;
  append_frame(&stream, Op::kPut, 1, 0, "0123456789");
  append_frame(&stream, Op::kDelete, 2, 0, "");
  for (size_t cut = 0; cut < stream.size(); cut++) {
    FrameParser p;
    p.feed(stream.data(), cut);
    Frame f;
    FrameParser::Next n = p.next(&f);
    while (n == FrameParser::Next::kFrame) n = p.next(&f);
    EXPECT_EQ(n, FrameParser::Next::kNeedMore) << "prefix " << cut;
  }
}

// ---------------------------------------------------------------------------
// Replication opcodes (DESIGN.md §16): codec coverage
// ---------------------------------------------------------------------------

TEST(WireCodec, ReplBodiesRoundTrip) {
  Heartbeat hb{7, 3, 42}, hb2;
  ASSERT_TRUE(parse_heartbeat(heartbeat_body(hb), &hb2));
  EXPECT_EQ(hb2.epoch, 7u);
  EXPECT_EQ(hb2.node_id, 3u);
  EXPECT_EQ(hb2.commit_seq, 42u);

  ReplAck a{9, 41, 1}, a2;
  ASSERT_TRUE(parse_repl_ack(repl_ack_body(a), &a2));
  EXPECT_EQ(a2.epoch, 9u);
  EXPECT_EQ(a2.applied_seq, 41u);
  EXPECT_EQ(a2.accepted, 1u);

  ReplHello h{ReplHello::kSnapPull, 2, 5, 100, 1}, h2;
  ASSERT_TRUE(parse_repl_hello(repl_hello_body(h), &h2));
  EXPECT_EQ(h2.kind, ReplHello::kSnapPull);
  EXPECT_EQ(h2.epoch, 2u);
  EXPECT_EQ(h2.node_id, 5u);
  EXPECT_EQ(h2.seq, 100u);
  EXPECT_EQ(h2.last_epoch, 1u);

  ReplSubscribeResult r{ReplSubscribeResult::kResync, 4, 1, 77, 3}, r2;
  ASSERT_TRUE(parse_repl_subscribe_resp(repl_subscribe_resp_body(r), &r2));
  EXPECT_EQ(r2.result, ReplSubscribeResult::kResync);
  EXPECT_EQ(r2.epoch, 4u);
  EXPECT_EQ(r2.primary_id, 1u);
  EXPECT_EQ(r2.base_seq, 77u);
  EXPECT_EQ(r2.base_epoch, 3u);

  PromoteReq p{PromoteReq::kVote, 6, 2, 88, 5}, p2;
  ASSERT_TRUE(parse_promote(promote_body(p), &p2));
  EXPECT_EQ(p2.kind, PromoteReq::kVote);
  EXPECT_EQ(p2.epoch, 6u);
  EXPECT_EQ(p2.node_id, 2u);
  EXPECT_EQ(p2.seq, 88u);
  EXPECT_EQ(p2.seq_epoch, 5u);

  PromoteResp q{1, 11}, q2;
  ASSERT_TRUE(parse_promote_resp(promote_resp_body(q), &q2));
  EXPECT_EQ(q2.granted, 1u);
  EXPECT_EQ(q2.epoch, 11u);

  // Enum-carrying bytes are validated, not trusted.
  std::string bad_kind = repl_hello_body(h);
  bad_kind[0] = 9;
  EXPECT_FALSE(parse_repl_hello(bad_kind, &h2));
  std::string bad_result = repl_subscribe_resp_body(r);
  bad_result[0] = 9;
  EXPECT_FALSE(parse_repl_subscribe_resp(bad_result, &r2));
  std::string bad_vote = promote_body(p);
  bad_vote[0] = 9;
  EXPECT_FALSE(parse_promote(bad_vote, &p2));
}

TEST(WireCodec, ReplAppendRoundTripsWithAndWithoutSlotImage) {
  std::string image(128, '\x5a');
  ReplEntryWire e;
  e.epoch = 3;
  e.seq = 17;
  e.entry_epoch = 2;
  e.op = 4;
  e.eflags = 0;
  e.shard = 1;
  e.slot = 9;
  e.lsn = 1234;
  e.arg0 = 11;
  e.arg1 = 22;
  e.value_crc = 0xdeadbeef;
  std::string val("\x00val\xffue", 7);
  e.key = "some-key";
  e.slot_image = image;
  e.value = val;

  std::string b = repl_append_body(e);
  ReplEntryWire d;
  ASSERT_TRUE(parse_repl_append(b, &d));
  EXPECT_EQ(d.epoch, 3u);
  EXPECT_EQ(d.seq, 17u);
  EXPECT_EQ(d.entry_epoch, 2u);
  EXPECT_EQ(d.op, 4u);
  EXPECT_EQ(d.shard, 1u);
  EXPECT_EQ(d.slot, 9u);
  EXPECT_EQ(d.lsn, 1234u);
  EXPECT_EQ(d.arg0, 11u);
  EXPECT_EQ(d.arg1, 22u);
  EXPECT_EQ(d.value_crc, 0xdeadbeefu);
  EXPECT_EQ(d.key, "some-key");
  EXPECT_EQ(d.slot_image, image);
  EXPECT_EQ(d.value, e.value);

  // Unlogged entry: no slot image, empty value (a delete).
  ReplEntryWire u;
  u.eflags = ReplEntryWire::kUnlogged;
  u.key = "k";
  std::string ub = repl_append_body(u);
  ASSERT_TRUE(parse_repl_append(ub, &u));
  EXPECT_TRUE(u.slot_image.empty());
  EXPECT_TRUE(u.value.empty());

  // The has-image marker only admits 0 or 1.
  std::string bad = repl_append_body(u);
  bad[64 + 1] = 2;  // 64-byte fixed prefix, 1-byte key, then the marker
  ReplEntryWire x;
  EXPECT_FALSE(parse_repl_append(bad, &x));
}

TEST(WireCodec, SnapChunkRoundTripsAndRejectsOverrun) {
  std::vector<SnapItemView> items = {
      {0, "alpha", "value-a"},
      {1, "beta", std::string_view("\x00\x01", 2)},
      {2, "gamma", ""},
      {3, "delta", "tail-piece", 4096},  // continuation piece of a big value
  };
  std::string b = snap_chunk_body(99, false, items);
  SnapChunk c;
  ASSERT_TRUE(parse_snap_chunk(b, &c));
  EXPECT_EQ(c.next_cursor, 99u);
  EXPECT_EQ(c.done, 0u);
  ASSERT_EQ(c.items.size(), 4u);
  EXPECT_EQ(c.items[0].key, "alpha");
  EXPECT_EQ(c.items[0].value, "value-a");
  EXPECT_EQ(c.items[0].offset, 0u);
  EXPECT_EQ(c.items[1].shard, 1u);
  EXPECT_EQ(c.items[1].value.size(), 2u);
  EXPECT_EQ(c.items[2].value, "");
  EXPECT_EQ(c.items[3].key, "delta");
  EXPECT_EQ(c.items[3].value, "tail-piece");
  EXPECT_EQ(c.items[3].offset, 4096u);

  // Exact-length framing: trailing garbage is a parse error, not ignored.
  std::string overrun = b + "x";
  EXPECT_FALSE(parse_snap_chunk(overrun, &c));

  std::string empty = snap_chunk_body(0, true, {});
  ASSERT_TRUE(parse_snap_chunk(empty, &c));
  EXPECT_EQ(c.done, 1u);
  EXPECT_TRUE(c.items.empty());
}

// Every replication body parser is exact-length: ANY strict prefix of a
// valid body must fail — a truncated frame can never half-parse into a
// plausible message.
TEST(WireCodec, TruncatedReplBodiesNeverParse) {
  std::string image(128, 'i');
  ReplEntryWire e;
  e.key = "key";
  e.slot_image = image;
  e.value = "value";
  std::vector<SnapItemView> items = {{0, "k", "v"}};
  struct Case {
    const char* what;
    std::string body;
    std::function<bool(std::string_view)> parse;
  };
  std::vector<Case> cases;
  cases.push_back({"heartbeat", heartbeat_body({1, 2, 3}),
                   [](std::string_view b) { Heartbeat m; return parse_heartbeat(b, &m); }});
  cases.push_back({"repl_ack", repl_ack_body({1, 2, 1}),
                   [](std::string_view b) { ReplAck m; return parse_repl_ack(b, &m); }});
  cases.push_back({"repl_hello", repl_hello_body({0, 1, 2, 3, 4}),
                   [](std::string_view b) { ReplHello m; return parse_repl_hello(b, &m); }});
  cases.push_back({"subscribe_resp", repl_subscribe_resp_body({0, 1, 2, 3, 4}),
                   [](std::string_view b) {
                     ReplSubscribeResult m;
                     return parse_repl_subscribe_resp(b, &m);
                   }});
  cases.push_back({"repl_append", repl_append_body(e),
                   [](std::string_view b) { ReplEntryWire m; return parse_repl_append(b, &m); }});
  cases.push_back({"snap_chunk", snap_chunk_body(5, true, items),
                   [](std::string_view b) { SnapChunk m; return parse_snap_chunk(b, &m); }});
  cases.push_back({"promote", promote_body({0, 1, 2, 3, 4}),
                   [](std::string_view b) { PromoteReq m; return parse_promote(b, &m); }});
  cases.push_back({"promote_resp", promote_resp_body({1, 2}),
                   [](std::string_view b) { PromoteResp m; return parse_promote_resp(b, &m); }});
  for (const Case& c : cases) {
    ASSERT_TRUE(c.parse(c.body)) << c.what;
    for (size_t cut = 0; cut < c.body.size(); cut++) {
      EXPECT_FALSE(c.parse(std::string_view(c.body.data(), cut)))
          << c.what << " parsed a prefix of " << cut << " bytes";
    }
  }
}

// Deterministic byte-flip fuzz over the repl bodies: every single-byte
// mutation either parses (the field was free-form) or fails — never
// crashes, never reads out of bounds (the length checks precede every
// substr).
TEST(WireCodec, ReplBodyMutationFuzzNeverCrashes) {
  std::string image(128, 'z');
  ReplEntryWire e;
  e.key = "mutate-me";
  e.slot_image = image;
  e.value = "some value bytes";
  std::vector<SnapItemView> items = {{3, "kk", "vv"}, {4, "x", "y"}};
  std::vector<std::string> bodies = {repl_append_body(e),
                                     snap_chunk_body(12, false, items)};
  for (const std::string& base : bodies) {
    for (size_t i = 0; i < base.size(); i++) {
      for (uint8_t delta : {0x01, 0x80, 0xff}) {
        std::string mut = base;
        mut[i] = (char)(mut[i] ^ delta);
        ReplEntryWire w;
        SnapChunk c;
        // Either verdict is fine; crashing is not.
        (void)parse_repl_append(mut, &w);
        (void)parse_snap_chunk(mut, &c);
      }
    }
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Server + client end to end
// ---------------------------------------------------------------------------

struct ServerFixture {
  ShardedConfig cfg;
  std::unique_ptr<ShardedStore> store;
  std::unique_ptr<Server> server;

  explicit ServerFixture(fault::FaultInjector* inj = nullptr,
                         pmem::Pool::Mode mode = pmem::Pool::Mode::kDirect,
                         ServerConfig srv_cfg = {}) {
    cfg.num_shards = 2;
    cfg.pool_mode = mode;
    cfg.affinity = true;
    cfg.ckpt_workers = 1;
    cfg.shard.max_objects = 256;
    cfg.shard.num_blocks = 2048;
    cfg.shard.engine.log_slots = 64;
    cfg.shard.engine.arena_bytes = 1 << 20;
    cfg.shard.engine.background_checkpointing = true;  // watermark -> pool
    cfg.fault = inj;
    cfg.fault_shard = 0;
    if (inj != nullptr) inj->disarm();  // creation noise must not shift hits
    auto r = ShardedStore::create(cfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    auto s = Server::start(store.get(), srv_cfg, inj);
    EXPECT_TRUE(s.is_ok()) << s.status().to_string();
    server = std::move(s).value();
  }

  std::unique_ptr<Client> connect() {
    auto c = Client::connect("127.0.0.1", server->port());
    EXPECT_TRUE(c.is_ok()) << c.status().to_string();
    return std::move(c).value();
  }

  // A namespace name homed on `shard` (the wire maps a namespace wholly
  // onto shard_of(name)).
  std::string ns_name_on_shard(int shard) {
    for (int i = 0;; i++) {
      std::string name = "tenant-" + std::to_string(i);
      if (store->shard_of(name) == shard) return name;
    }
  }
};

TEST(NetEndToEnd, PutGetDeleteRoundTrip) {
  ServerFixture fx;
  auto client = fx.connect();
  auto ns = client->open_namespace("alpha");
  ASSERT_TRUE(ns.is_ok()) << ns.status().to_string();
  EXPECT_GE(ns.value().ns_id, 1u);

  std::string value(3000, 'v');
  ASSERT_TRUE(client->put(ns.value().ns_id, "obj", value.data(), value.size()).is_ok());
  auto got = client->get(ns.value().ns_id, "obj");
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), value);

  // Zero-copy request path (server falls back transparently if the device
  // has no direct mapping) — bytes must be identical either way.
  auto zc = client->get(ns.value().ns_id, "obj", /*zero_copy=*/true);
  ASSERT_TRUE(zc.is_ok()) << zc.status().to_string();
  EXPECT_EQ(zc.value(), value);

  ASSERT_TRUE(client->del(ns.value().ns_id, "obj").is_ok());
  auto gone = client->get(ns.value().ns_id, "obj");
  ASSERT_FALSE(gone.is_ok());
  EXPECT_EQ(gone.status().code(), Code::kNotFound);  // Status round-trips
}

TEST(NetEndToEnd, NamespacesAreIsolatedTenants) {
  ServerFixture fx;
  auto client = fx.connect();
  auto a = client->open_namespace("tenant-a");
  auto b = client->open_namespace("tenant-b");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_NE(a.value().ns_id, b.value().ns_id);

  ASSERT_TRUE(client->put(a.value().ns_id, "k", "from-a", 6).is_ok());
  ASSERT_TRUE(client->put(b.value().ns_id, "k", "from-b", 6).is_ok());
  EXPECT_EQ(client->get(a.value().ns_id, "k").value(), "from-a");
  EXPECT_EQ(client->get(b.value().ns_id, "k").value(), "from-b");

  // Deleting in one tenant never leaks into the other.
  ASSERT_TRUE(client->del(a.value().ns_id, "k").is_ok());
  EXPECT_EQ(client->get(a.value().ns_id, "k").status().code(), Code::kNotFound);
  EXPECT_EQ(client->get(b.value().ns_id, "k").value(), "from-b");

  // Re-opening by name is idempotent and returns the same id + home shard.
  auto a2 = client->open_namespace("tenant-a");
  ASSERT_TRUE(a2.is_ok());
  EXPECT_EQ(a2.value().ns_id, a.value().ns_id);
  EXPECT_EQ(a2.value().shard, a.value().shard);
}

TEST(NetEndToEnd, MalformedNamespaceNamesAreRejected) {
  ServerFixture fx;
  auto client = fx.connect();
  EXPECT_EQ(client->open_namespace("").status().code(), Code::kInvalidArgument);
  EXPECT_EQ(client->open_namespace(std::string("a\x1f") + "b").status().code(),
            Code::kInvalidArgument);
  // The connection survives application-level errors.
  EXPECT_TRUE(client->open_namespace("fine").is_ok());
}

TEST(NetEndToEnd, PipelinedSubmissionsCompleteAndMatchById) {
  ServerFixture fx;
  auto client = fx.connect();
  auto ns = client->open_namespace("pipe");
  ASSERT_TRUE(ns.is_ok());
  uint32_t id = ns.value().ns_id;

  constexpr int kN = 200;
  std::vector<uint64_t> put_ids;
  for (int i = 0; i < kN; i++) {
    std::string key = "k" + std::to_string(i);
    std::string val = "v" + std::to_string(i * i);
    auto r = client->submit_put(id, key, val.data(), val.size());
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    put_ids.push_back(r.value());
  }
  EXPECT_TRUE(client->wait_all().is_ok());
  EXPECT_EQ(client->in_flight(), 0u);

  // Interleave gets and reap them in REVERSE order — completion matching
  // is by req_id, not arrival order.
  std::vector<uint64_t> get_ids;
  for (int i = 0; i < kN; i++) {
    auto r = client->submit_get(id, "k" + std::to_string(i));
    ASSERT_TRUE(r.is_ok());
    get_ids.push_back(r.value());
  }
  for (int i = kN - 1; i >= 0; i--) {
    std::string value;
    ASSERT_TRUE(client->wait(get_ids[(size_t)i], &value).is_ok());
    EXPECT_EQ(value, "v" + std::to_string(i * i));
  }
}

// SCRUB is shipped off-loop; a PUT pipelined BEHIND it must complete first.
// Uses a raw socket: the completion order on the wire is the observable.
TEST(NetEndToEnd, SlowOpsCompleteOutOfOrder) {
  ServerFixture fx;
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, (sockaddr*)&addr, sizeof(addr)), 0);

  std::string out;
  append_frame(&out, Op::kOpenNs, 1, 0, open_ns_body("ooo"));
  ASSERT_EQ(::send(fd, out.data(), out.size(), 0), (ssize_t)out.size());

  FrameParser parser;
  Frame f;
  auto read_frame = [&]() {
    for (;;) {
      if (parser.next(&f) == FrameParser::Next::kFrame) return true;
      char buf[4096];
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) return false;
      parser.feed(buf, (size_t)n);
    }
  };
  ASSERT_TRUE(read_frame());
  NamespaceInfo info;
  ASSERT_TRUE(parse_open_ns_resp(f.body, &info));

  // One write, two requests: SCRUB (req 5) then PUT (req 6).
  out.clear();
  append_frame(&out, Op::kScrub, 5, 0, "");
  append_frame(&out, Op::kPut, 6, 0, put_body(info.ns_id, "k", "v", 1));
  ASSERT_EQ(::send(fd, out.data(), out.size(), 0), (ssize_t)out.size());

  ASSERT_TRUE(read_frame());
  EXPECT_EQ(f.hdr.req_id, 6u) << "PUT should complete before the off-loop SCRUB";
  EXPECT_EQ(f.hdr.status, 0u);
  ASSERT_TRUE(read_frame());
  EXPECT_EQ(f.hdr.req_id, 5u);
  ScrubSummary sum;
  ASSERT_TRUE(parse_scrub_resp(f.body, &sum));
  EXPECT_GE(sum.objects_scanned, 0u);
  close(fd);
}

TEST(NetEndToEnd, MetricsScrapeOverTheWire) {
  ServerFixture fx;
  auto client = fx.connect();
  auto ns = client->open_namespace("m");
  ASSERT_TRUE(ns.is_ok());
  ASSERT_TRUE(client->put(ns.value().ns_id, "k", "v", 1).is_ok());

  auto json = client->metrics(0);
  ASSERT_TRUE(json.is_ok()) << json.status().to_string();
  // One merged scrape: the server's own net_* series next to the store's.
  EXPECT_NE(json.value().find("net_requests_total"), std::string::npos);
  EXPECT_NE(json.value().find("net_connections"), std::string::npos);
  EXPECT_NE(json.value().find("dstore_puts_total"), std::string::npos);

  auto prom = client->metrics(1);
  ASSERT_TRUE(prom.is_ok());
  EXPECT_NE(prom.value().find("# TYPE"), std::string::npos);

  Result<std::string> bad = client->metrics(7);
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), Code::kInvalidArgument);
}

TEST(NetEndToEnd, ScrubReportsMergedFleetCounters) {
  ServerFixture fx;
  auto client = fx.connect();
  auto ns = client->open_namespace("s");
  ASSERT_TRUE(ns.is_ok());
  for (int i = 0; i < 20; i++) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(client->put(ns.value().ns_id, key, "x", 1).is_ok());
  }
  auto sum = client->scrub();
  ASSERT_TRUE(sum.is_ok()) << sum.status().to_string();
  EXPECT_GE(sum.value().objects_scanned, 20u);
  EXPECT_EQ(sum.value().checksum_failures, 0u);
}

TEST(NetEndToEnd, ProtocolGarbageGetsErrorFrameThenDisconnect) {
  ServerFixture fx;
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, (sockaddr*)&addr, sizeof(addr)), 0);
  std::string junk = "this is not a DSTP frame at all.........";
  ASSERT_GT(::send(fd, junk.data(), junk.size(), 0), 0);

  // The server flushes one error frame (req 0), then closes.
  FrameParser parser;
  Frame f;
  bool got_error_frame = false;
  for (;;) {
    char buf[4096];
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // clean EOF after the error frame
    parser.feed(buf, (size_t)n);
    if (parser.next(&f) == FrameParser::Next::kFrame) {
      got_error_frame = true;
      EXPECT_NE(f.hdr.status, 0u);
      EXPECT_EQ(f.hdr.req_id, 0u);
    }
  }
  EXPECT_TRUE(got_error_frame);
  close(fd);
}

TEST(NetEndToEnd, HeartbeatIsAnsweredByAPlainServer) {
  ServerFixture fx;
  auto client = fx.connect();
  Frame resp;
  ASSERT_TRUE(client->call(Op::kHeartbeat, heartbeat_body({}), &resp).is_ok());
  EXPECT_EQ(resp.hdr.op, Op::kHeartbeat);
  EXPECT_EQ(resp.hdr.status, 0u);
  ReplAck ack;
  ASSERT_TRUE(parse_repl_ack(resp.body, &ack));
  EXPECT_EQ(ack.accepted, 1u);
  EXPECT_EQ(ack.epoch, 0u);  // repl-less server echoes zeros

  // The other replication opcodes need an attached node; a malformed
  // heartbeat is a per-request error. The connection survives all three.
  ASSERT_TRUE(client->call(Op::kReplSubscribe, repl_hello_body({}), &resp).is_ok());
  EXPECT_EQ(resp.hdr.status, (uint8_t)Code::kUnsupported);
  ASSERT_TRUE(client->call(Op::kPromote, promote_body({}), &resp).is_ok());
  EXPECT_EQ(resp.hdr.status, (uint8_t)Code::kUnsupported);
  ASSERT_TRUE(client->call(Op::kHeartbeat, "abc", &resp).is_ok());
  EXPECT_EQ(resp.hdr.status, (uint8_t)Code::kInvalidArgument);
  ASSERT_TRUE(client->call(Op::kHeartbeat, heartbeat_body({}), &resp).is_ok());
  EXPECT_EQ(resp.hdr.status, 0u);

  auto json = client->metrics(0);
  ASSERT_TRUE(json.is_ok());
  EXPECT_NE(json.value().find("net_heartbeats_total"), std::string::npos);
}

TEST(NetEndToEnd, IdleReaperDropsSilentConnectionsButHeartbeatsKeepAlive) {
  ServerConfig scfg;
  scfg.idle_timeout_ms = 150;
  ServerFixture fx(nullptr, pmem::Pool::Mode::kDirect, scfg);
  auto chatty = fx.connect();
  auto quiet = fx.connect();
  auto ns = chatty->open_namespace("alive");
  ASSERT_TRUE(ns.is_ok());

  // `quiet` sends nothing; `chatty` heartbeats through four idle windows
  // (HEARTBEAT frames refresh the reaper clock like any other request).
  for (int i = 0; i < 12; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Frame resp;
    ASSERT_TRUE(chatty->call(Op::kHeartbeat, heartbeat_body({}), &resp).is_ok());
  }
  EXPECT_TRUE(chatty->put(ns.value().ns_id, "k", "v", 1).is_ok());
  Status dead = quiet->put(ns.value().ns_id, "k", "v", 1);
  EXPECT_FALSE(dead.is_ok()) << "idle connection survived the reaper";
  EXPECT_GE(fx.server->metrics()
                .counter("net_idle_reaped_total", "connections dropped by the idle reaper")
                ->value(),
            1u);
}

TEST(NetEndToEnd, ClientReconnectsWithBackoffAfterServerRestart) {
  ServerFixture fx;
  obs::MetricsRegistry reg;
  ClientConfig ccfg;
  ccfg.max_reconnect_attempts = 10;
  ccfg.reconnect_backoff_ms = 1;
  ccfg.reconnect_backoff_max_ms = 8;
  ccfg.metrics = &reg;
  auto c = Client::connect("127.0.0.1", fx.server->port(), ccfg);
  ASSERT_TRUE(c.is_ok());
  Client& client = *c.value();
  auto ns = client.open_namespace("re");
  ASSERT_TRUE(ns.is_ok());
  ASSERT_TRUE(client.put(ns.value().ns_id, "k", "v1", 2).is_ok());

  uint16_t port = fx.server->port();
  fx.server->stop();
  fx.server.reset();
  // The call that discovers the dead connection fails — a lost write is
  // ambiguous and must never be silently replayed on a new connection.
  EXPECT_FALSE(client.put(ns.value().ns_id, "k", "v2", 2).is_ok());

  ServerConfig scfg;
  scfg.port = port;
  auto srv2 = Server::start(fx.store.get(), scfg);
  ASSERT_TRUE(srv2.is_ok()) << srv2.status().to_string();
  // The next call re-dials under the backoff policy; state written before
  // the restart is served by the same store.
  auto ns2 = client.open_namespace("re");
  ASSERT_TRUE(ns2.is_ok()) << ns2.status().to_string();
  auto got = client.get(ns2.value().ns_id, "k");
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value(), "v1");
  EXPECT_GE(reg.counter("net_client_reconnects_total", "successful client reconnects")
                ->value(),
            1u);
}

TEST(NetEndToEnd, CallTimeoutKillsTheConnectionAndCountsIt) {
  // A listener that never accepts: the TCP handshake completes via the
  // backlog but no response ever comes back.
  int lfd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(bind(lfd, (sockaddr*)&addr, sizeof(addr)), 0);
  ASSERT_EQ(listen(lfd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(lfd, (sockaddr*)&addr, &len), 0);

  obs::MetricsRegistry reg;
  ClientConfig ccfg;
  ccfg.call_timeout_ms = 80;
  ccfg.metrics = &reg;
  auto c = Client::connect("127.0.0.1", ntohs(addr.sin_port), ccfg);
  ASSERT_TRUE(c.is_ok()) << c.status().to_string();
  auto t0 = std::chrono::steady_clock::now();
  auto got = c.value()->get(1, "k");
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.status().code(), Code::kIoError);
  EXPECT_GE(elapsed_ms, 80);
  EXPECT_LT(elapsed_ms, 5000);
  EXPECT_EQ(reg.counter("net_client_timeouts_total", "sync calls that hit call_timeout_ms")
                ->value(),
            1u);
  // The timed-out connection is dead by contract (framing abandoned).
  EXPECT_FALSE(c.value()->get(1, "k").is_ok());
  close(lfd);
}

// ---------------------------------------------------------------------------
// Replication over the wire: the epoch fence as the divergence oracle
// ---------------------------------------------------------------------------

// A follower node behind a real server must bounce a deposed primary's
// appends — the "split-brain divergence" forbidden outcome — while its
// store keeps serving the pre-fork value, and client writes bounce with
// READ_ONLY (followers are read-only replicas).
TEST(ReplWire, EpochFenceRejectsAStalePrimaryOverTheWire) {
  repl::NodeConfig ncfg;
  ncfg.node_id = 2;
  ncfg.initial_primary = 1;
  auto node = std::make_unique<repl::Node>(ncfg);
  ShardedConfig scfg;
  scfg.num_shards = 1;
  scfg.shard.max_objects = 64;
  scfg.shard.num_blocks = 512;
  scfg.shard.engine.log_slots = 64;
  scfg.repl_sink = node.get();
  auto store = ShardedStore::create(scfg);
  ASSERT_TRUE(store.is_ok()) << store.status().to_string();
  node->attach_store(store.value().get());
  auto srv = Server::start(store.value().get(), ServerConfig{}, nullptr, node.get());
  ASSERT_TRUE(srv.is_ok()) << srv.status().to_string();
  auto c = Client::connect("127.0.0.1", srv.value()->port());
  ASSERT_TRUE(c.is_ok());
  Client& client = *c.value();

  auto append = [&](uint64_t epoch, uint64_t seq, std::string_view key,
                    std::string_view value, ReplAck* ack) {
    ReplEntryWire w;
    w.epoch = epoch;
    w.seq = seq;
    w.entry_epoch = epoch;
    w.op = (uint8_t)dipper::OpType::kPut;
    w.eflags = ReplEntryWire::kUnlogged;
    w.key = key;
    w.value = value;
    w.value_crc = crc32c(value.data(), value.size());
    Frame resp;
    Status s = client.call(Op::kReplAppend, repl_append_body(w), &resp);
    if (s.is_ok()) {
      EXPECT_EQ(resp.hdr.op, Op::kReplAck);
      EXPECT_EQ(resp.hdr.status, 0u);
      EXPECT_TRUE(parse_repl_ack(resp.body, ack));
    }
    return s;
  };
  auto local_read = [&](std::string_view key) {
    char buf[64];
    auto r = node->get(key, buf, sizeof(buf));
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    return std::string(buf, r.is_ok() ? r.value() : 0);
  };

  ReplAck ack;
  ASSERT_TRUE(append(1, 1, "k", "epoch-1-value", &ack).is_ok());
  EXPECT_EQ(ack.accepted, 1u);
  EXPECT_EQ(ack.applied_seq, 1u);
  EXPECT_EQ(local_read("k"), "epoch-1-value");

  // A newer primary (node 9, epoch 3) announces itself by heartbeat.
  Frame resp;
  ASSERT_TRUE(client.call(Op::kHeartbeat, heartbeat_body({3, 9, 1}), &resp).is_ok());
  ReplAck hb_ack;
  ASSERT_TRUE(parse_repl_ack(resp.body, &hb_ack));
  EXPECT_EQ(hb_ack.epoch, 3u);

  // The fence: the deposed epoch-1 primary's append bounces with the
  // higher epoch and the store never forks.
  ASSERT_TRUE(append(1, 2, "k", "stale-fork-value", &ack).is_ok());
  EXPECT_EQ(ack.accepted, 0u);
  EXPECT_EQ(ack.epoch, 3u);
  EXPECT_EQ(local_read("k"), "epoch-1-value");

  // The legitimate epoch-3 primary streams on from seq 2.
  ASSERT_TRUE(append(3, 2, "k", "epoch-3-value", &ack).is_ok());
  EXPECT_EQ(ack.accepted, 1u);
  EXPECT_EQ(local_read("k"), "epoch-3-value");

  // Follower write gating over the wire: reads fine, writes READ_ONLY.
  auto ns = client.open_namespace("t");
  ASSERT_TRUE(ns.is_ok());
  Status w = client.put(ns.value().ns_id, "x", "y", 1);
  EXPECT_EQ(w.code(), Code::kReadOnly);

  // A malformed append body is a per-request error, not a dropped link.
  ASSERT_TRUE(client.call(Op::kReplAppend, "zz", &resp).is_ok());
  EXPECT_EQ(resp.hdr.status, (uint8_t)Code::kInvalidArgument);
  ASSERT_TRUE(client.call(Op::kHeartbeat, heartbeat_body({3, 9, 2}), &resp).is_ok());
}

// ---------------------------------------------------------------------------
// Server crash rig (fault-injection builds only)
// ---------------------------------------------------------------------------
#if !defined(DSTORE_FAULT_INJECTION_DISABLED)

// Kill the live server mid-checkpoint via a fault plan, then hold recovery
// to the oracle: every ACKED write survives (zero acked-write loss); the
// single op in flight at the crash is unknown-by-contract. The old client
// observes a clean connection error (not a hang, not a garbage frame), and
// a new server over the recovered store serves the verified state.
TEST(NetCrashRig, KillMidCheckpointLosesNoAckedWrite) {
  fault::FaultInjector inj;
  ServerFixture fx(&inj, pmem::Pool::Mode::kCrashSim);
  auto client = fx.connect();

  // The tenant must live on the faulted shard for the plan to bite.
  std::string ns_name = fx.ns_name_on_shard(fx.cfg.fault_shard);
  auto ns = client->open_namespace(ns_name);
  ASSERT_TRUE(ns.is_ok());
  uint32_t id = ns.value().ns_id;

  inj.set_plan(fault::FaultPlan::crash_at("engine.ckpt.begin", 1));
  inj.arm();

  // Hammer puts until the crash cuts the connection. Acked => in oracle.
  std::map<std::string, std::string> oracle;
  std::string pending_key;  // the unacked op in flight at the crash
  for (int i = 0; i < 20000; i++) {
    std::string key = "obj-" + std::to_string(i);
    std::string val(1 + (size_t)(i % 700), (char)('a' + i % 26));
    Status s = client->put(id, key, val.data(), val.size());
    if (!s.is_ok()) {
      pending_key = key;
      break;
    }
    oracle[key] = val;
  }
  ASSERT_TRUE(inj.crashed()) << "fault plan never fired — no checkpoint started?";
  ASSERT_FALSE(pending_key.empty()) << "client never observed the crash";

  // The old connection reports a clean error on every later call.
  Status after = client->put(id, "post-crash", "x", 1);
  EXPECT_FALSE(after.is_ok());
  EXPECT_EQ(after.code(), Code::kIoError);

  fx.server->stop();
  EXPECT_TRUE(fx.server->crashed());

  // Power-fail the fleet at the frozen image and recover.
  inj.disarm();
  ASSERT_TRUE(fx.store->crash_and_recover_all().is_ok());

  // Zero acked-write loss: every acked put is present with exact bytes.
  int home = fx.cfg.fault_shard;
  std::vector<char> buf(1 << 12);
  for (const auto& [key, val] : oracle) {
    std::string full = ns_name + '\x1f' + key;
    auto r = fx.store->get_on(nullptr, home, full, buf.data(), buf.size());
    ASSERT_TRUE(r.is_ok()) << "acked write lost: " << key << " — " << r.status().to_string();
    ASSERT_EQ(r.value(), val.size()) << "acked write truncated: " << key;
    EXPECT_EQ(std::string(buf.data(), r.value()), val) << "acked write corrupt: " << key;
  }

  // Reconnect-to-verified-state: a fresh server over the recovered store
  // serves the oracle to a fresh client.
  auto srv2 = Server::start(fx.store.get(), ServerConfig{});
  ASSERT_TRUE(srv2.is_ok());
  auto c2 = Client::connect("127.0.0.1", srv2.value()->port());
  ASSERT_TRUE(c2.is_ok());
  auto ns2 = c2.value()->open_namespace(ns_name);
  ASSERT_TRUE(ns2.is_ok());
  const auto& [first_key, first_val] = *oracle.begin();
  auto got = c2.value()->get(ns2.value().ns_id, first_key);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), first_val);
}

#endif  // !DSTORE_FAULT_INJECTION_DISABLED

}  // namespace
}  // namespace dstore::net
