// End-to-end crash-consistency property tests for DStore: every
// acknowledged operation (metadata AND data) must survive crashes at
// arbitrary points, including mid-checkpoint, under the spurious-eviction
// adversary. Verifies the paper's core claim: commit == durable (§4.5),
// observational equivalence of the recovered state (§3.7), deterministic
// block allocation on replay (§4.3).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "dstore/dstore.h"

namespace dstore {
namespace {

struct CrashRig {
  DStoreConfig cfg;
  std::unique_ptr<pmem::Pool> pool;
  std::unique_ptr<ssd::RamBlockDevice> device;
  std::unique_ptr<DStore> store;
  ds_ctx_t* ctx = nullptr;

  explicit CrashRig(uint32_t log_slots = 64, uint64_t max_objects = 256,
                    uint64_t num_blocks = 2048,
                    dipper::EngineConfig::CkptMode mode = dipper::EngineConfig::CkptMode::kDipper) {
    cfg.max_objects = max_objects;
    cfg.num_blocks = num_blocks;
    cfg.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(max_objects);
    cfg.engine.log_slots = log_slots;
    cfg.engine.background_checkpointing = false;
    cfg.engine.ckpt_mode = mode;
    pool = std::make_unique<pmem::Pool>(dipper::Engine::required_pool_bytes(cfg.engine),
                                        pmem::Pool::Mode::kCrashSim);
    ssd::DeviceConfig dc;
    dc.num_blocks = num_blocks;
    device = std::make_unique<ssd::RamBlockDevice>(dc);
    auto r = DStore::create(pool.get(), device.get(), cfg);
    EXPECT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    ctx = store->ds_init();
  }

  ~CrashRig() {
    if (ctx != nullptr && store) store->ds_finalize(ctx);
  }

  void crash_and_recover(dipper::EngineConfig::CkptMode mode) {
    if (ctx != nullptr) store->ds_finalize(ctx);
    ctx = nullptr;
    store->engine().stop_background();
    store.reset();
    pool->crash();
    device->crash();
    DStoreConfig rcfg = cfg;
    rcfg.engine.ckpt_mode = mode;
    rcfg.engine.test_point_hook = nullptr;
    auto r = DStore::recover(pool.get(), device.get(), rcfg);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    ctx = store->ds_init();
  }

  // Reinstall a test hook by rebuilding the store in place (no crash).
  void set_hook(std::function<bool(const char*)> hook,
                dipper::EngineConfig::CkptMode mode) {
    if (ctx != nullptr) store->ds_finalize(ctx);
    ctx = nullptr;
    store->engine().shutdown();
    store.reset();
    DStoreConfig rcfg = cfg;
    rcfg.engine.ckpt_mode = mode;
    rcfg.engine.test_point_hook = std::move(hook);
    auto r = DStore::recover(pool.get(), device.get(), rcfg);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    store = std::move(r).value();
    ctx = store->ds_init();
  }
};

// Reference model of acknowledged state: name -> (seed byte, size).
using Model = std::map<std::string, std::pair<char, size_t>>;

void verify_model(CrashRig& rig, const Model& model) {
  ASSERT_TRUE(rig.store->validate().is_ok());
  ASSERT_EQ(rig.store->object_count(), model.size());
  std::string buf;
  for (const auto& [name, sv] : model) {
    buf.assign(sv.second, 0);
    auto r = rig.store->oget(rig.ctx, name, buf.data(), buf.size());
    ASSERT_TRUE(r.is_ok()) << name << ": " << r.status().to_string();
    ASSERT_EQ(r.value(), sv.second) << name;
    // Full data integrity: replayed block allocation must point exactly at
    // the blocks the original op wrote.
    for (size_t i = 0; i < buf.size(); i++) {
      ASSERT_EQ(buf[i], sv.first) << name << " corrupt at byte " << i;
    }
  }
}

class CrashModeSweep
    : public ::testing::TestWithParam<dipper::EngineConfig::CkptMode> {};

TEST_P(CrashModeSweep, AcknowledgedOpsSurviveRandomCrashes) {
  auto mode = GetParam();
  CrashRig rig(64, 256, 2048, mode);
  Rng rng(42);
  Model model;

  const int kRounds = 18;
  const int kOpsPerRound = 30;
  for (int round = 0; round < kRounds; round++) {
    for (int i = 0; i < kOpsPerRound; i++) {
      if (rig.store->engine().log_fill() > 0.75) {
        ASSERT_TRUE(rig.store->checkpoint_now().is_ok());
      }
      std::string name = "obj" + std::to_string(rng.next_below(50));
      double dice = rng.next_double();
      if (dice < 0.6 || model.count(name) == 0) {
        char seed = (char)('a' + rng.next_below(26));
        size_t size = 1 + rng.next_below(12000);
        std::string v(size, seed);
        Status s = rig.store->oput(rig.ctx, name, v.data(), v.size());
        ASSERT_TRUE(s.is_ok()) << s.to_string();
        model[name] = {seed, size};
      } else {
        ASSERT_TRUE(rig.store->odelete(rig.ctx, name).is_ok());
        model.erase(name);
      }
      if (rng.next_bool(0.15)) rig.pool->evict_random_lines(rng, 32);
    }
    if (rng.next_bool(0.35)) {
      // Sometimes die inside a checkpoint first.
      const char* points[] = {"ckpt:after_swap", "ckpt:after_drain", "ckpt:after_replay",
                              "ckpt:after_install", "ckpt:cow_mid_copy"};
      const char* pt = points[rng.next_below(5)];
      rig.set_hook([pt](const char* p) { return std::string(p) != pt; }, mode);
      (void)rig.store->checkpoint_now();
    }
    rig.crash_and_recover(mode);
    verify_model(rig, model);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CrashModeSweep,
                         ::testing::Values(dipper::EngineConfig::CkptMode::kDipper,
                                           dipper::EngineConfig::CkptMode::kCow));

TEST(DStoreCrash, UncommittedPutInvisibleAfterCrash) {
  // Drive the pipeline manually: append happens inside oput; to observe a
  // torn op we exploit the capacity precondition — instead simply verify
  // that ops that DID return are durable while the store as a whole remains
  // valid after an immediate crash.
  CrashRig rig;
  std::string v(5000, 'k');
  ASSERT_TRUE(rig.store->oput(rig.ctx, "acked", v.data(), v.size()).is_ok());
  rig.crash_and_recover(dipper::EngineConfig::CkptMode::kDipper);
  std::string out(5000, 0);
  auto r = rig.store->oget(rig.ctx, "acked", out.data(), out.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(out, v);
}

TEST(DStoreCrash, RecoveryReproducesIdenticalBlockAssignment) {
  // The §4.3 determinism claim, end to end: write objects, crash, recover,
  // then OVERWRITE one object. The overwrite frees the object's replayed
  // block list back to the pool — if replay had assigned different blocks
  // than the original execution, the data read-back of the others would
  // corrupt. Exercised with a nearly-full block pool to force reuse.
  CrashRig rig(/*log_slots=*/128, /*max_objects=*/16, /*num_blocks=*/24);
  std::string a(4 * 4096, 'A'), b(4 * 4096, 'B'), c(4 * 4096, 'C');
  ASSERT_TRUE(rig.store->oput(rig.ctx, "a", a.data(), a.size()).is_ok());
  ASSERT_TRUE(rig.store->oput(rig.ctx, "b", b.data(), b.size()).is_ok());
  ASSERT_TRUE(rig.store->oput(rig.ctx, "c", c.data(), c.size()).is_ok());
  rig.crash_and_recover(dipper::EngineConfig::CkptMode::kDipper);
  std::string a2(4 * 4096, 'Z');
  ASSERT_TRUE(rig.store->oput(rig.ctx, "a", a2.data(), a2.size()).is_ok());
  std::string out(4 * 4096, 0);
  ASSERT_TRUE(rig.store->oget(rig.ctx, "b", out.data(), out.size()).is_ok());
  EXPECT_EQ(out, b);
  ASSERT_TRUE(rig.store->oget(rig.ctx, "c", out.data(), out.size()).is_ok());
  EXPECT_EQ(out, c);
  ASSERT_TRUE(rig.store->oget(rig.ctx, "a", out.data(), out.size()).is_ok());
  EXPECT_EQ(out, a2);
  EXPECT_TRUE(rig.store->validate().is_ok());
}

TEST(DStoreCrash, FsWritesSurviveCrash) {
  CrashRig rig;
  auto obj = rig.store->oopen(rig.ctx, "file", 0, kRead | kWrite | kCreate);
  ASSERT_TRUE(obj.is_ok());
  std::string d1(6000, 'x');
  ASSERT_TRUE(rig.store->owrite(obj.value(), d1.data(), d1.size(), 0).is_ok());
  std::string d2(2000, 'y');
  ASSERT_TRUE(rig.store->owrite(obj.value(), d2.data(), d2.size(), 6000).is_ok());
  rig.store->oclose(obj.value());
  rig.crash_and_recover(dipper::EngineConfig::CkptMode::kDipper);
  auto robj = rig.store->oopen(rig.ctx, "file", 0, kRead);
  ASSERT_TRUE(robj.is_ok());
  std::string out(8000, 0);
  auto r = rig.store->oread(robj.value(), out.data(), out.size(), 0);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 8000u);
  EXPECT_EQ(out.substr(0, 6000), d1);
  EXPECT_EQ(out.substr(6000), d2);
  rig.store->oclose(robj.value());
}

TEST(DStoreCrash, DoubleCrashDuringRecoveryCheckpointRedo) {
  // Crash mid-checkpoint, recover, then crash again immediately and
  // recover again: the checkpoint redo must be idempotent (§3.6).
  CrashRig rig(64, 128, 1024);
  char buf[4096];
  Model model;
  for (int i = 0; i < 40; i++) {
    std::memset(buf, 'a' + i % 26, sizeof(buf));
    std::string name = "o" + std::to_string(i);
    ASSERT_TRUE(rig.store->oput(rig.ctx, name, buf, sizeof(buf)).is_ok());
    model[name] = {(char)('a' + i % 26), sizeof(buf)};
  }
  rig.set_hook([](const char* p) { return std::string(p) != "ckpt:after_replay"; },
               dipper::EngineConfig::CkptMode::kDipper);
  EXPECT_FALSE(rig.store->checkpoint_now().is_ok());
  rig.crash_and_recover(dipper::EngineConfig::CkptMode::kDipper);
  verify_model(rig, model);
  rig.crash_and_recover(dipper::EngineConfig::CkptMode::kDipper);
  verify_model(rig, model);
  rig.crash_and_recover(dipper::EngineConfig::CkptMode::kDipper);
  verify_model(rig, model);
}

TEST(DStoreCrash, HeavyChurnSmallPoolsStressReuse) {
  // Small pools force heavy block/meta id reuse across checkpoint cycles —
  // the strongest test of FIFO-pool replay determinism.
  CrashRig rig(/*log_slots=*/32, /*max_objects=*/12, /*num_blocks=*/48);
  Rng rng(777);
  Model model;
  for (int round = 0; round < 25; round++) {
    for (int i = 0; i < 10; i++) {
      if (rig.store->engine().log_fill() > 0.7) {
        ASSERT_TRUE(rig.store->checkpoint_now().is_ok());
      }
      std::string name = "churn" + std::to_string(rng.next_below(12));
      if (rng.next_bool(0.65) || model.count(name) == 0) {
        char seed = (char)('A' + rng.next_below(26));
        size_t size = 1 + rng.next_below(3 * 4096);
        std::string v(size, seed);
        Status s = rig.store->oput(rig.ctx, name, v.data(), v.size());
        if (s.code() == Code::kOutOfSpace) continue;  // pools legitimately full
        ASSERT_TRUE(s.is_ok()) << s.to_string();
        model[name] = {seed, size};
      } else {
        ASSERT_TRUE(rig.store->odelete(rig.ctx, name).is_ok());
        model.erase(name);
      }
    }
    if (round % 4 == 3) {
      rig.crash_and_recover(dipper::EngineConfig::CkptMode::kDipper);
      verify_model(rig, model);
    }
  }
}

}  // namespace
}  // namespace dstore
