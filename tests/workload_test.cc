// Tests for the YCSB workload generator/runner and the fsmeta simulators.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "fsmeta/fsmeta.h"
#include "workload/ycsb.h"

namespace dstore::workload {
namespace {

// In-memory reference store for exercising the runner itself.
class MapStore final : public KVStore {
 public:
  Status put(void*, std::string_view key, const void* value, size_t size) override {
    std::lock_guard<std::mutex> g(mu_);
    map_[std::string(key)] = std::string(static_cast<const char*>(value), size);
    puts_++;
    return Status::ok();
  }
  Result<size_t> get(void*, std::string_view key, void* buf, size_t cap) override {
    std::lock_guard<std::mutex> g(mu_);
    auto it = map_.find(std::string(key));
    if (it == map_.end()) return Status::not_found(std::string(key));
    size_t n = std::min(cap, it->second.size());
    std::memcpy(buf, it->second.data(), n);
    gets_++;
    return it->second.size();
  }
  Status del(void*, std::string_view key) override {
    std::lock_guard<std::mutex> g(mu_);
    return map_.erase(std::string(key)) ? Status::ok() : Status::not_found(std::string(key));
  }
  const char* name() const override { return "MapStore"; }

  uint64_t puts() const { return puts_; }
  uint64_t gets() const { return gets_; }
  size_t size() const { return map_.size(); }

 private:
  std::mutex mu_;
  std::map<std::string, std::string> map_;
  std::atomic<uint64_t> puts_{0}, gets_{0};
};

TEST(Ycsb, KeysAreStableAndDistinct) {
  EXPECT_EQ(ycsb_key(0), ycsb_key(0));
  EXPECT_NE(ycsb_key(0), ycsb_key(1));
  EXPECT_EQ(ycsb_key(7).size(), ycsb_key(7000000).size());  // fixed-width
}

TEST(Ycsb, LoadPopulatesExactly) {
  MapStore store;
  WorkloadSpec spec;
  spec.num_objects = 500;
  spec.value_size = 128;
  ASSERT_TRUE(load_objects(store, spec).is_ok());
  EXPECT_EQ(store.size(), 500u);
  EXPECT_EQ(store.puts(), 500u);
}

TEST(Ycsb, RunRespectsOpCounts) {
  MapStore store;
  WorkloadSpec spec;
  spec.num_objects = 100;
  spec.value_size = 64;
  spec.threads = 3;
  spec.ops_per_thread = 500;
  ASSERT_TRUE(load_objects(store, spec).is_ok());
  RunResult r = run_workload(store, spec);
  EXPECT_EQ(r.total_ops, 1500u);
  EXPECT_EQ(r.failed_ops, 0u);
  EXPECT_GT(r.throughput_iops(), 0.0);
  EXPECT_EQ(r.read_latency.count() + r.update_latency.count(), 1500u);
}

TEST(Ycsb, ReadFractionApproximatelyHonored) {
  MapStore store;
  WorkloadSpec spec = WorkloadSpec::ycsb_b();  // 95% reads
  spec.num_objects = 50;
  spec.value_size = 64;
  spec.threads = 2;
  spec.ops_per_thread = 5000;
  ASSERT_TRUE(load_objects(store, spec).is_ok());
  RunResult r = run_workload(store, spec);
  double read_frac = (double)r.read_latency.count() / (double)r.total_ops;
  EXPECT_NEAR(read_frac, 0.95, 0.02);
}

TEST(Ycsb, TimedRunStopsOnSchedule) {
  MapStore store;
  WorkloadSpec spec;
  spec.num_objects = 50;
  spec.value_size = 64;
  spec.threads = 2;
  spec.duration_ms = 100;
  ASSERT_TRUE(load_objects(store, spec).is_ok());
  RunResult r = run_workload(store, spec);
  EXPECT_GE(r.elapsed_s, 0.09);
  EXPECT_LT(r.elapsed_s, 2.0);
  EXPECT_GT(r.total_ops, 0u);
}

TEST(Ycsb, ThroughputSeriesReceivesOps) {
  MapStore store;
  WorkloadSpec spec;
  spec.num_objects = 50;
  spec.value_size = 64;
  spec.threads = 1;
  spec.ops_per_thread = 1000;
  ASSERT_TRUE(load_objects(store, spec).is_ok());
  TimeSeries ts(60, 1000000000ull);
  ts.restart();
  RunResult r = run_workload(store, spec, &ts);
  uint64_t counted = 0;
  for (size_t i = 0; i < ts.num_bins(); i++) counted += ts.bin(i);
  EXPECT_EQ(counted, r.total_ops);
}

TEST(Ycsb, WorkloadCIsReadOnly) {
  MapStore store;
  WorkloadSpec spec = WorkloadSpec::ycsb_c();
  spec.num_objects = 100;
  spec.value_size = 64;
  spec.threads = 2;
  spec.ops_per_thread = 2000;
  ASSERT_TRUE(load_objects(store, spec).is_ok());
  uint64_t puts_before = store.puts();
  RunResult r = run_workload(store, spec);
  EXPECT_EQ(r.failed_ops, 0u);
  EXPECT_EQ(store.puts(), puts_before);  // not a single write
  EXPECT_EQ(r.update_latency.count(), 0u);
}

TEST(Ycsb, WorkloadDInsertsGrowKeyspace) {
  MapStore store;
  WorkloadSpec spec = WorkloadSpec::ycsb_d();
  spec.num_objects = 200;
  spec.value_size = 64;
  spec.threads = 2;
  spec.ops_per_thread = 3000;
  ASSERT_TRUE(load_objects(store, spec).is_ok());
  RunResult r = run_workload(store, spec);
  EXPECT_EQ(r.failed_ops, 0u);
  // ~5% of 6000 ops insert fresh keys.
  EXPECT_NEAR((double)r.inserts, 300.0, 120.0);
  EXPECT_EQ(store.size(), 200 + r.inserts);
}

TEST(Ycsb, WorkloadFReadModifyWrite) {
  MapStore store;
  WorkloadSpec spec = WorkloadSpec::ycsb_f();
  spec.num_objects = 100;
  spec.value_size = 64;
  spec.threads = 2;
  spec.ops_per_thread = 2000;
  ASSERT_TRUE(load_objects(store, spec).is_ok());
  uint64_t gets_before = store.gets();
  uint64_t puts_before = store.puts();
  RunResult r = run_workload(store, spec);
  EXPECT_EQ(r.failed_ops, 0u);
  uint64_t rmw_ops = r.update_latency.count();
  // Every RMW does one get AND one put; plain reads add gets only.
  EXPECT_EQ(store.puts() - puts_before, rmw_ops);
  EXPECT_EQ(store.gets() - gets_before, r.total_ops);  // reads + RMW reads
  EXPECT_NEAR((double)rmw_ops, 2000.0, 300.0);         // ~50% of 4000
}

TEST(Ycsb, ReadLatestTargetsRecentKeys) {
  MapStore store;
  WorkloadSpec spec = WorkloadSpec::ycsb_d();
  spec.num_objects = 1000;
  spec.value_size = 16;
  spec.threads = 1;
  spec.ops_per_thread = 3000;
  ASSERT_TRUE(load_objects(store, spec).is_ok());
  RunResult r = run_workload(store, spec);
  EXPECT_EQ(r.failed_ops, 0u);  // read-latest never picks an unwritten key
}

TEST(Ycsb, MissingKeysNeverRequested) {
  // The runner only touches preloaded keys, so no op should fail.
  MapStore store;
  WorkloadSpec spec = WorkloadSpec::ycsb_a();
  spec.num_objects = 200;
  spec.value_size = 32;
  spec.threads = 2;
  spec.ops_per_thread = 2000;
  ASSERT_TRUE(load_objects(store, spec).is_ok());
  RunResult r = run_workload(store, spec);
  EXPECT_EQ(r.failed_ops, 0u);
}

}  // namespace
}  // namespace dstore::workload

namespace dstore::fsmeta {
namespace {

TEST(FsMeta, AllPathsRunAndReturnTime) {
  pmem::Pool pool(128 << 20, pmem::Pool::Mode::kDirect);
  Ext4DaxMeta ext4(&pool);
  XfsDaxMeta xfs(&pool);
  NovaMeta nova(&pool);
  DStoreMeta dstore(&pool);
  MetaPathSim* sims[] = {&ext4, &xfs, &nova, &dstore};
  for (MetaPathSim* sim : sims) {
    uint64_t total = 0;
    for (int i = 0; i < 100; i++) total += sim->metadata_update(i % 16);
    EXPECT_GT(total, 0u) << sim->name();
  }
}

TEST(FsMeta, RelativeCostOrderingMatchesFig6) {
  // With calibrated PMEM latency, the metadata cost ordering must be
  // DStore < NOVA < xfs-DAX < ext4-DAX (Fig 6's shape): one 64B flush <
  // two ordered flushes < ~1KB log write + flush < three 4KB journal
  // blocks + flush.
#ifdef DSTORE_SANITIZE_BUILD
  GTEST_SKIP() << "wall-clock latency ordering is unmeasurable under "
                  "sanitizer instrumentation overhead";
#endif
  pmem::Pool pool(256 << 20, pmem::Pool::Mode::kDirect, LatencyModel::calibrated(1.0));
  Ext4DaxMeta ext4(&pool);
  XfsDaxMeta xfs(&pool);
  NovaMeta nova(&pool);
  DStoreMeta dstore(&pool);
  auto avg = [](MetaPathSim& sim) {
    uint64_t total = 0;
    const int n = 500;
    for (int i = 0; i < n; i++) total += sim.metadata_update(i % 64);
    return (double)total / n;
  };
  double c_dstore = avg(dstore);
  double c_nova = avg(nova);
  double c_xfs = avg(xfs);
  double c_ext4 = avg(ext4);
  // Margins absorb scheduler noise when the test suite runs in parallel.
  EXPECT_LT(c_dstore, c_nova * 1.2);
  EXPECT_LT(c_nova, c_ext4);
  EXPECT_LT(c_xfs, c_ext4);
  EXPECT_LT(c_dstore, c_xfs);
}

}  // namespace
}  // namespace dstore::fsmeta
