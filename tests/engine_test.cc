// Tests for the DIPPER engine with a minimal key-value SpaceClient:
// lifecycle, logging, CC primitives, checkpoints (both modes), recovery
// from clean restarts and from crashes at every checkpoint phase, and
// crash-consistency property sweeps with the eviction adversary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/rng.h"
#include "dipper/engine.h"
#include "ds/btree.h"

namespace dstore::dipper {
namespace {

// Minimal client: a btree mapping name -> u64. kPut upserts arg0, kDelete
// erases. Deterministic by construction.
class KvClient : public SpaceClient {
 public:
  Status format(SlabAllocator& space) override {
    auto h = BTree::create(space);
    if (!h.is_ok()) return h.status();
    space.set_user_root(h.value().off);
    return Status::ok();
  }
  Status replay(SlabAllocator& space, std::span<const LogRecordView> records) override {
    BTree tree(space, OffPtr<BTree::Header>(space.user_root()));
    for (const auto& rec : records) {
      if (rec.op == OpType::kPut) {
        DSTORE_RETURN_IF_ERROR(tree.upsert(rec.name, rec.arg0));
      } else if (rec.op == OpType::kDelete) {
        Status s = tree.erase(rec.name);
        if (!s.is_ok() && s.code() != Code::kNotFound) return s;
      }
    }
    return Status::ok();
  }
};

EngineConfig small_cfg() {
  EngineConfig cfg;
  cfg.arena_bytes = 4 << 20;
  cfg.log_slots = 128;
  cfg.background_checkpointing = false;  // deterministic tests
  return cfg;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override { init(small_cfg()); }

  void init(EngineConfig cfg) {
    cfg_ = cfg;
    pool_ = std::make_unique<pmem::Pool>(Engine::required_pool_bytes(cfg_),
                                         pmem::Pool::Mode::kCrashSim);
    engine_ = std::make_unique<Engine>(pool_.get(), &client_, cfg_);
    ASSERT_TRUE(engine_->init_fresh().is_ok());
  }

  // Apply a put through the full frontend path: append, mutate the
  // volatile space, commit.
  void put(const std::string& name, uint64_t value) {
    Key k = Key::from(name);
    auto h = engine_->append(OpType::kPut, k, value, 0);
    ASSERT_TRUE(h.is_ok()) << h.status().to_string();
    BTree tree(engine_->space(), OffPtr<BTree::Header>(engine_->space().user_root()));
    ASSERT_TRUE(tree.upsert(k, value).is_ok());
    engine_->commit(h.value());
  }

  void del(const std::string& name) {
    Key k = Key::from(name);
    auto h = engine_->append(OpType::kDelete, k, 0, 0);
    ASSERT_TRUE(h.is_ok());
    BTree tree(engine_->space(), OffPtr<BTree::Header>(engine_->space().user_root()));
    (void)tree.erase(k);
    engine_->commit(h.value());
  }

  std::optional<uint64_t> get(const std::string& name) {
    BTree tree(engine_->space(), OffPtr<BTree::Header>(engine_->space().user_root()));
    return tree.find(Key::from(name));
  }

  // Crash + recover into a fresh engine instance.
  void crash_and_recover() {
    engine_->stop_background();
    pool_->crash();
    engine_ = std::make_unique<Engine>(pool_.get(), &client_, cfg_);
    ASSERT_TRUE(engine_->recover().is_ok());
  }

  // Clean restart (no crash: everything committed is persistent anyway).
  void restart() {
    engine_->shutdown();
    engine_ = std::make_unique<Engine>(pool_.get(), &client_, cfg_);
    ASSERT_TRUE(engine_->recover().is_ok());
  }

  EngineConfig cfg_;
  KvClient client_;
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineTest, FreshEngineEmpty) {
  EXPECT_FALSE(get("nothing").has_value());
  EXPECT_EQ(engine_->stats().records_appended.load(), 0u);
  EXPECT_DOUBLE_EQ(engine_->log_fill(), 0.0);
}

TEST_F(EngineTest, PoolTooSmallRejected) {
  pmem::Pool tiny(1 << 20, pmem::Pool::Mode::kDirect);
  Engine e(&tiny, &client_, small_cfg());
  EXPECT_EQ(e.init_fresh().code(), Code::kInvalidArgument);
}

TEST_F(EngineTest, AppendCommitTracksStats) {
  put("a", 1);
  put("b", 2);
  EXPECT_EQ(engine_->stats().records_appended.load(), 2u);
  EXPECT_EQ(engine_->stats().records_committed.load(), 2u);
  EXPECT_GT(engine_->log_fill(), 0.0);
}

TEST_F(EngineTest, CommittedOpsSurviveCrashWithoutCheckpoint) {
  put("alpha", 10);
  put("beta", 20);
  del("alpha");
  crash_and_recover();
  EXPECT_FALSE(get("alpha").has_value());
  ASSERT_TRUE(get("beta").has_value());
  EXPECT_EQ(*get("beta"), 20u);
}

TEST_F(EngineTest, UncommittedOpLostAfterCrash) {
  put("kept", 1);
  // Append without commit: op was never acknowledged.
  auto h = engine_->append(OpType::kPut, Key::from("lost"), 99, 0);
  ASSERT_TRUE(h.is_ok());
  crash_and_recover();
  EXPECT_TRUE(get("kept").has_value());
  EXPECT_FALSE(get("lost").has_value());
}

TEST_F(EngineTest, CheckpointDrainsLogAndPreservesState) {
  for (int i = 0; i < 50; i++) put("key" + std::to_string(i), i);
  EXPECT_GT(engine_->log_fill(), 0.0);
  ASSERT_TRUE(engine_->checkpoint_now().is_ok());
  EXPECT_EQ(engine_->stats().checkpoints.load(), 1u);
  EXPECT_DOUBLE_EQ(engine_->log_fill(), 0.0);  // swapped to the fresh log
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(get("key" + std::to_string(i)).has_value()) << i;
    EXPECT_EQ(*get("key" + std::to_string(i)), (uint64_t)i);
  }
}

TEST_F(EngineTest, StateSurvivesCrashAfterCheckpoint) {
  for (int i = 0; i < 30; i++) put("pre" + std::to_string(i), i);
  ASSERT_TRUE(engine_->checkpoint_now().is_ok());
  for (int i = 0; i < 20; i++) put("post" + std::to_string(i), 100 + i);
  crash_and_recover();
  for (int i = 0; i < 30; i++) EXPECT_TRUE(get("pre" + std::to_string(i)).has_value()) << i;
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(get("post" + std::to_string(i)).has_value()) << i;
    EXPECT_EQ(*get("post" + std::to_string(i)), 100u + i);
  }
}

TEST_F(EngineTest, MultipleCheckpointCyclesRotateSlots) {
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 20; i++) put("r" + std::to_string(round) + "k" + std::to_string(i), i);
    ASSERT_TRUE(engine_->checkpoint_now().is_ok()) << "round " << round;
  }
  EXPECT_EQ(engine_->stats().checkpoints.load(), 5u);
  crash_and_recover();
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 20; i++) {
      EXPECT_TRUE(get("r" + std::to_string(round) + "k" + std::to_string(i)).has_value());
    }
  }
}

TEST_F(EngineTest, CleanRestartPreservesEverything) {
  for (int i = 0; i < 40; i++) put("obj" + std::to_string(i), i * 2);
  ASSERT_TRUE(engine_->checkpoint_now().is_ok());
  for (int i = 40; i < 60; i++) put("obj" + std::to_string(i), i * 2);
  restart();
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(get("obj" + std::to_string(i)).has_value()) << i;
    EXPECT_EQ(*get("obj" + std::to_string(i)), (uint64_t)i * 2);
  }
}

TEST_F(EngineTest, RecoveryIsIdempotent) {
  for (int i = 0; i < 25; i++) put("x" + std::to_string(i), i);
  crash_and_recover();
  crash_and_recover();  // recover twice: §3.6 idempotency
  crash_and_recover();
  for (int i = 0; i < 25; i++) EXPECT_TRUE(get("x" + std::to_string(i)).has_value()) << i;
}

TEST_F(EngineTest, LogFullWithoutCheckpointerReportsBusy) {
  for (uint32_t i = 0; i < cfg_.log_slots; i++) put("fill" + std::to_string(i), i);
  auto h = engine_->append(OpType::kPut, Key::from("overflow"), 1, 0);
  ASSERT_FALSE(h.is_ok());
  EXPECT_EQ(h.status().code(), Code::kBusy);
  ASSERT_TRUE(engine_->checkpoint_now().is_ok());
  put("overflow", 1);  // space available again
  EXPECT_TRUE(get("overflow").has_value());
}

TEST_F(EngineTest, InflightTrackingAndScanAgree) {
  Key k = Key::from("contested");
  EXPECT_FALSE(engine_->has_inflight_write(k));
  EXPECT_FALSE(engine_->scan_conflicting_write(k));
  auto h = engine_->append(OpType::kPut, k, 1, 0);
  ASSERT_TRUE(h.is_ok());
  EXPECT_TRUE(engine_->has_inflight_write(k));
  EXPECT_TRUE(engine_->scan_conflicting_write(k));
  EXPECT_EQ(engine_->inflight_count(k), 1);
  engine_->commit(h.value());
  EXPECT_FALSE(engine_->has_inflight_write(k));
  EXPECT_FALSE(engine_->scan_conflicting_write(k));
}

TEST_F(EngineTest, WaitNoInflightBlocksUntilCommit) {
  Key k = Key::from("waity");
  auto h = engine_->append(OpType::kPut, k, 1, 0);
  ASSERT_TRUE(h.is_ok());
  std::atomic<bool> proceeded{false};
  std::thread waiter([&] {
    engine_->wait_no_inflight_write(k);
    proceeded = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(proceeded.load());
  engine_->commit(h.value());
  waiter.join();
  EXPECT_TRUE(proceeded.load());
}

TEST_F(EngineTest, ObjectLocksConflictAndRelease) {
  Key k = Key::from("locked-obj");
  auto h = engine_->lock_object(k);
  ASSERT_TRUE(h.is_ok());
  EXPECT_TRUE(engine_->has_inflight_write(k));
  EXPECT_EQ(engine_->lock_object(k).status().code(), Code::kBusy);  // no recursion
  engine_->unlock_object(h.value(), k);
  EXPECT_FALSE(engine_->has_inflight_write(k));
  auto h2 = engine_->lock_object(k);  // re-lockable
  ASSERT_TRUE(h2.is_ok());
  engine_->unlock_object(h2.value(), k);
}

TEST_F(EngineTest, HeldLockSurvivesLogSwapAndUnlocksAfter) {
  Key k = Key::from("long-held");
  auto h = engine_->lock_object(k);
  ASSERT_TRUE(h.is_ok());
  for (int i = 0; i < 30; i++) put("filler" + std::to_string(i), i);
  ASSERT_TRUE(engine_->checkpoint_now().is_ok());  // swaps logs, moves the NOOP
  EXPECT_TRUE(engine_->has_inflight_write(k));     // still held
  engine_->unlock_object(h.value(), k);
  EXPECT_FALSE(engine_->has_inflight_write(k));
}

TEST_F(EngineTest, LocksDoNotSurviveCrash) {
  Key k = Key::from("ephemeral-lock");
  ASSERT_TRUE(engine_->lock_object(k).is_ok());
  crash_and_recover();
  EXPECT_FALSE(engine_->has_inflight_write(k));
  auto h = engine_->lock_object(k);
  EXPECT_TRUE(h.is_ok());
  engine_->unlock_object(h.value(), k);
}

TEST_F(EngineTest, RecoverRejectsMismatchedConfig) {
  put("a", 1);
  engine_->stop_background();
  EngineConfig other = cfg_;
  other.log_slots = cfg_.log_slots * 2;
  Engine mismatched(pool_.get(), &client_, other);
  EXPECT_EQ(mismatched.recover().code(), Code::kInvalidArgument);
}

TEST_F(EngineTest, RecoverRejectsGarbagePool) {
  pmem::Pool garbage(Engine::required_pool_bytes(cfg_), pmem::Pool::Mode::kDirect);
  std::memset(garbage.base(), 0x5a, 4096);
  Engine e(&garbage, &client_, cfg_);
  EXPECT_EQ(e.recover().code(), Code::kCorruption);
}

// ---- crash-at-every-checkpoint-phase sweep ---------------------------------

class CkptCrashPoint : public ::testing::TestWithParam<const char*> {};

TEST_P(CkptCrashPoint, StateConsistentAfterCrashDuringCheckpoint) {
  const char* crash_at = GetParam();
  KvClient client;
  EngineConfig cfg;
  cfg.arena_bytes = 4 << 20;
  cfg.log_slots = 128;
  cfg.background_checkpointing = false;
  cfg.test_point_hook = [crash_at](const char* point) {
    return std::string(point) != crash_at;
  };
  pmem::Pool pool(Engine::required_pool_bytes(cfg), pmem::Pool::Mode::kCrashSim);
  auto engine = std::make_unique<Engine>(&pool, &client, cfg);
  ASSERT_TRUE(engine->init_fresh().is_ok());

  auto put = [&](const std::string& name, uint64_t value) {
    Key k = Key::from(name);
    auto h = engine->append(OpType::kPut, k, value, 0);
    ASSERT_TRUE(h.is_ok());
    BTree tree(engine->space(), OffPtr<BTree::Header>(engine->space().user_root()));
    ASSERT_TRUE(tree.upsert(k, value).is_ok());
    engine->commit(h.value());
  };

  for (int i = 0; i < 20; i++) put("warm" + std::to_string(i), i);
  for (int i = 0; i < 40; i++) put("data" + std::to_string(i), i * 3);
  Status s = engine->checkpoint_now();  // aborted at the configured point
  if (std::string(crash_at) != "none" && std::string(crash_at) != "ckpt:after_install") {
    // Pre-install abandons report failure; an after-install abandon only
    // skipped the archived-log recycling, so the checkpoint itself is ok.
    EXPECT_FALSE(s.is_ok());
  }

  // Crash and recover.
  engine->stop_background();
  pool.crash();
  EngineConfig recover_cfg = cfg;
  recover_cfg.test_point_hook = nullptr;
  auto recovered = std::make_unique<Engine>(&pool, &client, recover_cfg);
  ASSERT_TRUE(recovered->recover().is_ok());
  BTree tree(recovered->space(), OffPtr<BTree::Header>(recovered->space().user_root()));
  ASSERT_TRUE(tree.validate().is_ok());
  for (int i = 0; i < 20; i++) {
    auto v = tree.find(Key::from("warm" + std::to_string(i)));
    ASSERT_TRUE(v.has_value()) << "warm" << i << " lost (crash at " << crash_at << ")";
    EXPECT_EQ(*v, (uint64_t)i);
  }
  for (int i = 0; i < 40; i++) {
    auto v = tree.find(Key::from("data" + std::to_string(i)));
    ASSERT_TRUE(v.has_value()) << "data" << i << " lost (crash at " << crash_at << ")";
    EXPECT_EQ(*v, (uint64_t)i * 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Phases, CkptCrashPoint,
                         ::testing::Values("ckpt:after_swap", "ckpt:after_drain",
                                           "ckpt:after_replay", "ckpt:after_install", "none"));

// ---- randomized crash-consistency property test ----------------------------

TEST(EngineCrashProperty, RandomOpsCheckpointsCrashesMatchModel) {
  KvClient client;
  EngineConfig cfg;
  cfg.arena_bytes = 8 << 20;
  cfg.log_slots = 64;  // small: forces frequent checkpoints
  cfg.background_checkpointing = false;
  pmem::Pool pool(Engine::required_pool_bytes(cfg), pmem::Pool::Mode::kCrashSim);
  auto engine = std::make_unique<Engine>(&pool, &client, cfg);
  ASSERT_TRUE(engine->init_fresh().is_ok());

  Rng rng(20260705);
  std::map<std::string, uint64_t> model;
  const int kRounds = 30;
  const int kOpsPerRound = 40;

  for (int round = 0; round < kRounds; round++) {
    for (int op = 0; op < kOpsPerRound; op++) {
      std::string name = "k" + std::to_string(rng.next_below(80));
      Key k = Key::from(name);
      if (engine->log_fill() > 0.8) {
        ASSERT_TRUE(engine->checkpoint_now().is_ok());
      }
      BTree tree(engine->space(), OffPtr<BTree::Header>(engine->space().user_root()));
      if (rng.next_bool(0.7) || model.count(name) == 0) {
        uint64_t value = rng.next();
        auto h = engine->append(OpType::kPut, k, value, 0);
        ASSERT_TRUE(h.is_ok());
        ASSERT_TRUE(tree.upsert(k, value).is_ok());
        engine->commit(h.value());
        model[name] = value;
      } else {
        auto h = engine->append(OpType::kDelete, k, 0, 0);
        ASSERT_TRUE(h.is_ok());
        (void)tree.erase(k);
        engine->commit(h.value());
        model.erase(name);
      }
      // Adversary: spurious cache-line evictions at arbitrary times.
      if (rng.next_bool(0.2)) pool.evict_random_lines(rng, 16);
    }
    // Periodically crash (sometimes mid-checkpoint) and recover.
    if (rng.next_bool(0.5)) {
      if (rng.next_bool(0.4)) {
        // Crash in the middle of a checkpoint.
        const char* points[] = {"ckpt:after_swap", "ckpt:after_drain", "ckpt:after_replay",
                                "ckpt:after_install"};
        const char* pt = points[rng.next_below(4)];
        EngineConfig crash_cfg = cfg;
        crash_cfg.test_point_hook = [pt](const char* p) { return std::string(p) != pt; };
        engine->stop_background();
        engine = std::make_unique<Engine>(&pool, &client, crash_cfg);
        ASSERT_TRUE(engine->recover().is_ok());
        (void)engine->checkpoint_now();  // aborts at pt
      }
      engine->stop_background();
      pool.crash();
      engine = std::make_unique<Engine>(&pool, &client, cfg);
      ASSERT_TRUE(engine->recover().is_ok());
      // Verify full model equality (every committed op durable, nothing
      // extra, observational equivalence of the recovered state).
      BTree tree(engine->space(), OffPtr<BTree::Header>(engine->space().user_root()));
      ASSERT_TRUE(tree.validate().is_ok());
      EXPECT_EQ(tree.size(), model.size()) << "round " << round;
      for (const auto& [name, value] : model) {
        auto v = tree.find(Key::from(name));
        ASSERT_TRUE(v.has_value()) << name << " lost in round " << round;
        EXPECT_EQ(*v, value) << name;
      }
    }
  }
}

// ---- background checkpointing ----------------------------------------------

TEST(EngineBackground, CheckpointTriggersAutomatically) {
  KvClient client;
  EngineConfig cfg;
  cfg.arena_bytes = 4 << 20;
  cfg.log_slots = 64;
  cfg.checkpoint_threshold = 0.5;
  cfg.background_checkpointing = true;
  pmem::Pool pool(Engine::required_pool_bytes(cfg), pmem::Pool::Mode::kDirect);
  Engine engine(&pool, &client, cfg);
  ASSERT_TRUE(engine.init_fresh().is_ok());
  // Push enough records to cross the threshold several times; background
  // checkpoints must absorb them without append ever failing.
  for (int i = 0; i < 500; i++) {
    Key k = Key::from("bg" + std::to_string(i));
    auto h = engine.append(OpType::kPut, k, i, 0);
    ASSERT_TRUE(h.is_ok()) << i << ": " << h.status().to_string();
    BTree tree(engine.space(), OffPtr<BTree::Header>(engine.space().user_root()));
    ASSERT_TRUE(tree.upsert(k, i).is_ok());
    engine.commit(h.value());
  }
  engine.shutdown();
  EXPECT_GT(engine.stats().checkpoints.load(), 0u);
}

}  // namespace
}  // namespace dstore::dipper
