// Tests for the baseline systems (cached LSM, cached btree, uncached) and
// the DStore adapter: each must behave as a correct KV store, flush/
// checkpoint when its trigger fires, and recover from crashes with the
// archetype's expected phase profile (Table 4 shapes).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "baselines/cached_btree.h"
#include "baselines/cached_lsm.h"
#include "baselines/dstore_adapter.h"
#include "baselines/uncached.h"
#include "common/rng.h"

namespace dstore::baselines {
namespace {

using workload::KVStore;

// Factory wrappers so the conformance suite can sweep every system.
enum class System { kDStore, kDStoreCow, kLsm, kBtree, kUncached };

const char* system_name(System s) {
  switch (s) {
    case System::kDStore: return "DStore";
    case System::kDStoreCow: return "DStore-CoW";
    case System::kLsm: return "CachedLsm";
    case System::kBtree: return "CachedBtree";
    case System::kUncached: return "Uncached";
  }
  return "?";
}

std::unique_ptr<KVStore> make_store(System s) {
  LatencyModel none = LatencyModel::none();
  switch (s) {
    case System::kDStore: {
      auto cfg = DStoreAdapter::dipper_variant();
      cfg.max_objects = 4096;
      cfg.num_blocks = 16384;
      cfg.log_slots = 1024;
      auto r = DStoreAdapter::make(cfg, none);
      EXPECT_TRUE(r.is_ok()) << r.status().to_string();
      return std::move(r).value();
    }
    case System::kDStoreCow: {
      auto cfg = DStoreAdapter::cow_variant();
      cfg.max_objects = 4096;
      cfg.num_blocks = 16384;
      cfg.log_slots = 1024;
      auto r = DStoreAdapter::make(cfg, none);
      EXPECT_TRUE(r.is_ok()) << r.status().to_string();
      return std::move(r).value();
    }
    case System::kLsm: {
      CachedLsmConfig cfg;
      cfg.memtable_limit_bytes = 256 * 1024;  // frequent flushes in tests
      cfg.wal_bytes = 8 << 20;
      auto r = CachedLsmStore::make(cfg, none);
      EXPECT_TRUE(r.is_ok()) << r.status().to_string();
      return std::move(r).value();
    }
    case System::kBtree: {
      CachedBtreeConfig cfg;
      cfg.checkpoint_trigger_bytes = 256 * 1024;
      cfg.journal_bytes = 8 << 20;
      auto r = CachedBtreeStore::make(cfg, none);
      EXPECT_TRUE(r.is_ok()) << r.status().to_string();
      return std::move(r).value();
    }
    case System::kUncached: {
      UncachedConfig cfg;
      cfg.num_slots = 8192;
      auto r = UncachedStore::make(cfg, none);
      EXPECT_TRUE(r.is_ok()) << r.status().to_string();
      return std::move(r).value();
    }
  }
  return nullptr;
}

class StoreConformance : public ::testing::TestWithParam<System> {};

TEST_P(StoreConformance, PutGetDeleteRoundTrip) {
  auto store = make_store(GetParam());
  void* ctx = store->open_ctx();
  std::string v(4096, 'p');
  ASSERT_TRUE(store->put(ctx, "key1", v.data(), v.size()).is_ok());
  std::string out(4096, 0);
  auto r = store->get(ctx, "key1", out.data(), out.size());
  ASSERT_TRUE(r.is_ok()) << system_name(GetParam());
  EXPECT_EQ(r.value(), 4096u);
  EXPECT_EQ(out, v);
  ASSERT_TRUE(store->del(ctx, "key1").is_ok());
  EXPECT_EQ(store->get(ctx, "key1", out.data(), out.size()).status().code(), Code::kNotFound);
  store->close_ctx(ctx);
}

TEST_P(StoreConformance, OverwriteReturnsLatest) {
  auto store = make_store(GetParam());
  void* ctx = store->open_ctx();
  std::string v1(4096, '1'), v2(2048, '2');
  ASSERT_TRUE(store->put(ctx, "k", v1.data(), v1.size()).is_ok());
  ASSERT_TRUE(store->put(ctx, "k", v2.data(), v2.size()).is_ok());
  std::string out(4096, 0);
  auto r = store->get(ctx, "k", out.data(), out.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 2048u);
  EXPECT_EQ(out.substr(0, 2048), v2);
  store->close_ctx(ctx);
}

TEST_P(StoreConformance, ManyKeysWithChurnMatchModel) {
  auto store = make_store(GetParam());
  void* ctx = store->open_ctx();
  Rng rng(5);
  std::map<std::string, char> model;
  std::string out(8192, 0);
  for (int i = 0; i < 1500; i++) {
    std::string key = "obj" + std::to_string(rng.next_below(120));
    if (rng.next_bool(0.7) || model.count(key) == 0) {
      char seed = (char)('a' + rng.next_below(26));
      std::string v(4096, seed);
      ASSERT_TRUE(store->put(ctx, key, v.data(), v.size()).is_ok())
          << system_name(GetParam()) << " op " << i;
      model[key] = seed;
    } else {
      ASSERT_TRUE(store->del(ctx, key).is_ok());
      model.erase(key);
    }
  }
  for (const auto& [key, seed] : model) {
    auto r = store->get(ctx, key, out.data(), out.size());
    ASSERT_TRUE(r.is_ok()) << system_name(GetParam()) << " " << key;
    EXPECT_EQ(out[0], seed) << key;
    EXPECT_EQ(out[4095], seed) << key;
  }
  store->close_ctx(ctx);
}

TEST_P(StoreConformance, StateSurvivesCrashAndRecover) {
  auto store = make_store(GetParam());
  void* ctx = store->open_ctx();
  std::map<std::string, char> model;
  for (int i = 0; i < 400; i++) {
    char seed = (char)('a' + i % 26);
    std::string v(4096, seed);
    std::string key = "persist" + std::to_string(i);
    ASSERT_TRUE(store->put(ctx, key, v.data(), v.size()).is_ok()) << i;
    model[key] = seed;
  }
  store->close_ctx(ctx);
  auto timing = store->crash_and_recover();
  ASSERT_TRUE(timing.is_ok()) << system_name(GetParam()) << ": "
                              << timing.status().to_string();
  ctx = store->open_ctx();
  std::string out(4096, 0);
  for (const auto& [key, seed] : model) {
    auto r = store->get(ctx, key, out.data(), out.size());
    ASSERT_TRUE(r.is_ok()) << system_name(GetParam()) << " lost " << key;
    EXPECT_EQ(out[0], seed);
  }
  store->close_ctx(ctx);
}

TEST_P(StoreConformance, SpaceUsageNonTrivial) {
  auto store = make_store(GetParam());
  void* ctx = store->open_ctx();
  std::string v(4096, 's');
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(store->put(ctx, "sp" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  auto u = store->space_usage();
  EXPECT_GT(u.total(), 100u * 4096) << system_name(GetParam());
  store->close_ctx(ctx);
}

INSTANTIATE_TEST_SUITE_P(Systems, StoreConformance,
                         ::testing::Values(System::kDStore, System::kDStoreCow, System::kLsm,
                                           System::kBtree, System::kUncached),
                         [](const auto& info) {
                           std::string n = system_name(info.param);
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ---- archetype-specific behaviours ------------------------------------------

TEST(CachedLsm, FlushTriggersOnMemtableLimit) {
  CachedLsmConfig cfg;
  cfg.memtable_limit_bytes = 64 * 1024;
  auto store = CachedLsmStore::make(cfg, LatencyModel::none());
  ASSERT_TRUE(store.is_ok());
  std::string v(4096, 'f');
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(store.value()->put(nullptr, "k" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  EXPECT_GT(store.value()->flush_count(), 0u);
  // Flushed values still readable (from SSD runs).
  std::string out(4096, 0);
  auto r = store.value()->get(nullptr, "k0", out.data(), out.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(out, v);
}

TEST(CachedLsm, CompactionMergesRuns) {
  CachedLsmConfig cfg;
  cfg.memtable_limit_bytes = 32 * 1024;
  cfg.compaction_trigger_runs = 3;
  auto store = CachedLsmStore::make(cfg, LatencyModel::none());
  ASSERT_TRUE(store.is_ok());
  std::string v(4096, 'c');
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store.value()
                    ->put(nullptr, "k" + std::to_string(i % 50), v.data(), v.size())
                    .is_ok());
  }
  // Give the background compactor a chance.
  for (int spin = 0; spin < 100 && store.value()->compaction_count() == 0; spin++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(store.value()->compaction_count(), 0u);
  std::string out(4096, 0);
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(store.value()->get(nullptr, "k" + std::to_string(i), out.data(), out.size())
                    .is_ok())
        << i;
  }
}

TEST(CachedLsm, DisablingCheckpointsStopsFlushes) {
  CachedLsmConfig cfg;
  cfg.memtable_limit_bytes = 32 * 1024;
  auto store = CachedLsmStore::make(cfg, LatencyModel::none());
  ASSERT_TRUE(store.is_ok());
  store.value()->set_checkpoints_enabled(false);
  std::string v(4096, 'x');
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(store.value()->put(nullptr, "n" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  EXPECT_EQ(store.value()->flush_count(), 0u);
}

TEST(CachedBtree, CheckpointTriggersOnJournalSize) {
  CachedBtreeConfig cfg;
  cfg.checkpoint_trigger_bytes = 64 * 1024;
  auto store = CachedBtreeStore::make(cfg, LatencyModel::none());
  ASSERT_TRUE(store.is_ok());
  std::string v(4096, 'j');
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(store.value()->put(nullptr, "k" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  EXPECT_GT(store.value()->checkpoint_count(), 0u);
}

TEST(CachedBtree, RecoveryUsesCatalogAndJournal) {
  CachedBtreeConfig cfg;
  cfg.checkpoint_trigger_bytes = 64 * 1024;
  auto store = CachedBtreeStore::make(cfg, LatencyModel::none());
  ASSERT_TRUE(store.is_ok());
  std::string v(4096, 'r');
  // Enough to checkpoint at least once, plus journal-only tail writes.
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(store.value()->put(nullptr, "ck" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  auto t = store.value()->crash_and_recover();
  ASSERT_TRUE(t.is_ok());
  std::string out(4096, 0);
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(
        store.value()->get(nullptr, "ck" + std::to_string(i), out.data(), out.size()).is_ok())
        << i;
    EXPECT_EQ(out, v);
  }
}

TEST(Uncached, RecoveryHasNoReplayPhase) {
  UncachedConfig cfg;
  auto store = UncachedStore::make(cfg, LatencyModel::none());
  ASSERT_TRUE(store.is_ok());
  std::string v(4096, 'u');
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(store.value()->put(nullptr, "s" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  auto t = store.value()->crash_and_recover();
  ASSERT_TRUE(t.is_ok());
  EXPECT_EQ(t.value().replay_ms, 0.0);  // inline persistence: nothing to replay
}

TEST(Uncached, OversizeValueRejected) {
  UncachedConfig cfg;
  cfg.slot_bytes = 4096;
  auto store = UncachedStore::make(cfg, LatencyModel::none());
  ASSERT_TRUE(store.is_ok());
  std::string v(8192, 'o');
  EXPECT_EQ(store.value()->put(nullptr, "big", v.data(), v.size()).code(),
            Code::kInvalidArgument);
}

TEST(Uncached, SlotReuseAfterOverwrite) {
  UncachedConfig cfg;
  cfg.num_slots = 4;
  auto store = UncachedStore::make(cfg, LatencyModel::none());
  ASSERT_TRUE(store.is_ok());
  std::string v(1024, 'z');
  // 8 overwrites of the same key need only 2 slots (new + old per op).
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(store.value()->put(nullptr, "same", v.data(), v.size()).is_ok()) << i;
  }
  // Distinct keys exhaust slots eventually.
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(store.value()->put(nullptr, "k" + std::to_string(i), v.data(), v.size()).is_ok());
  }
  EXPECT_EQ(store.value()->put(nullptr, "one-more", v.data(), v.size()).code(),
            Code::kOutOfSpace);
}

TEST(DStoreVariants, AblationFactoriesDiffer) {
  EXPECT_TRUE(DStoreAdapter::dipper_variant().observational_equivalence);
  EXPECT_FALSE(DStoreAdapter::no_oe_variant().observational_equivalence);
  EXPECT_EQ(DStoreAdapter::cow_variant().ckpt_mode, dipper::EngineConfig::CkptMode::kCow);
  EXPECT_TRUE(DStoreAdapter::naive_physical_variant().physical_logging);
  EXPECT_FALSE(DStoreAdapter::logical_cow_variant().physical_logging);
}

}  // namespace
}  // namespace dstore::baselines
