// Tests for the offset-based B-tree: CRUD, ordering, rebalancing, structural
// invariants under random workloads, clone-equivalence (DIPPER's shadow-copy
// property), and position independence.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ds/btree.h"

namespace dstore {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  static constexpr size_t kArenaSize = 64 << 20;
  void SetUp() override {
    buf_ = std::make_unique<char[]>(kArenaSize);
    arena_ = Arena(buf_.get(), kArenaSize);
    sp_ = SlabAllocator::format(arena_);
    auto h = BTree::create(sp_);
    ASSERT_TRUE(h.is_ok());
    header_ = h.value();
    tree_ = std::make_unique<BTree>(sp_, header_);
  }

  static Key key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "obj-%08d", i);
    return Key::from(buf);
  }

  std::unique_ptr<char[]> buf_;
  Arena arena_;
  SlabAllocator sp_;
  OffPtr<BTree::Header> header_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_EQ(tree_->size(), 0u);
  EXPECT_FALSE(tree_->find(key(1)).has_value());
  EXPECT_EQ(tree_->erase(key(1)).code(), Code::kNotFound);
  EXPECT_TRUE(tree_->validate().is_ok());
}

TEST_F(BTreeTest, InsertFind) {
  ASSERT_TRUE(tree_->insert(key(1), 100).is_ok());
  auto v = tree_->find(key(1));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 100u);
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BTreeTest, DuplicateInsertRejected) {
  ASSERT_TRUE(tree_->insert(key(1), 100).is_ok());
  EXPECT_EQ(tree_->insert(key(1), 200).code(), Code::kAlreadyExists);
  EXPECT_EQ(*tree_->find(key(1)), 100u);  // unchanged
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BTreeTest, UpsertOverwrites) {
  bool existed = true;
  ASSERT_TRUE(tree_->upsert(key(1), 100, &existed).is_ok());
  EXPECT_FALSE(existed);
  ASSERT_TRUE(tree_->upsert(key(1), 200, &existed).is_ok());
  EXPECT_TRUE(existed);
  EXPECT_EQ(*tree_->find(key(1)), 200u);
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BTreeTest, EraseRemoves) {
  ASSERT_TRUE(tree_->insert(key(1), 100).is_ok());
  ASSERT_TRUE(tree_->erase(key(1)).is_ok());
  EXPECT_FALSE(tree_->find(key(1)).has_value());
  EXPECT_EQ(tree_->size(), 0u);
  EXPECT_EQ(tree_->erase(key(1)).code(), Code::kNotFound);
}

TEST_F(BTreeTest, ManySequentialInserts) {
  const int n = 10000;
  for (int i = 0; i < n; i++) ASSERT_TRUE(tree_->insert(key(i), i * 10).is_ok()) << i;
  EXPECT_EQ(tree_->size(), (uint64_t)n);
  ASSERT_TRUE(tree_->validate().is_ok());
  for (int i = 0; i < n; i++) {
    auto v = tree_->find(key(i));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, (uint64_t)i * 10);
  }
}

TEST_F(BTreeTest, ReverseOrderInserts) {
  for (int i = 9999; i >= 0; i--) ASSERT_TRUE(tree_->insert(key(i), i).is_ok());
  ASSERT_TRUE(tree_->validate().is_ok());
  EXPECT_EQ(tree_->size(), 10000u);
}

TEST_F(BTreeTest, ForEachVisitsInOrder) {
  Rng rng(17);
  std::vector<int> ids(1000);
  for (int i = 0; i < 1000; i++) ids[i] = i;
  for (int i = 999; i > 0; i--) std::swap(ids[i], ids[rng.next_below(i + 1)]);
  for (int id : ids) ASSERT_TRUE(tree_->insert(key(id), id).is_ok());

  std::vector<std::string> visited;
  tree_->for_each([&](const Key& k, uint64_t) {
    visited.push_back(k.str());
    return true;
  });
  ASSERT_EQ(visited.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

TEST_F(BTreeTest, ForEachEarlyStop) {
  for (int i = 0; i < 100; i++) ASSERT_TRUE(tree_->insert(key(i), i).is_ok());
  int seen = 0;
  tree_->for_each([&](const Key&, uint64_t) { return ++seen < 10; });
  EXPECT_EQ(seen, 10);
}

TEST_F(BTreeTest, DeleteEverything) {
  const int n = 5000;
  for (int i = 0; i < n; i++) ASSERT_TRUE(tree_->insert(key(i), i).is_ok());
  for (int i = 0; i < n; i++) ASSERT_TRUE(tree_->erase(key(i)).is_ok()) << i;
  EXPECT_EQ(tree_->size(), 0u);
  ASSERT_TRUE(tree_->validate().is_ok());
  // All nodes returned to the allocator.
  EXPECT_EQ(tree_->node_count(), 0u);
}

TEST_F(BTreeTest, DeleteReverseOrder) {
  const int n = 5000;
  for (int i = 0; i < n; i++) ASSERT_TRUE(tree_->insert(key(i), i).is_ok());
  for (int i = n - 1; i >= 0; i--) ASSERT_TRUE(tree_->erase(key(i)).is_ok()) << i;
  EXPECT_EQ(tree_->size(), 0u);
  EXPECT_EQ(tree_->node_count(), 0u);
}

TEST_F(BTreeTest, RandomOpsMatchReferenceModel) {
  // Property test: random insert/upsert/erase/find against std::map.
  Rng rng(1234);
  std::map<std::string, uint64_t> model;
  const int kOps = 40000;
  const int kKeySpace = 3000;
  for (int i = 0; i < kOps; i++) {
    int id = (int)rng.next_below(kKeySpace);
    Key k = key(id);
    std::string ks = k.str();
    double dice = rng.next_double();
    if (dice < 0.35) {
      Status s = tree_->insert(k, (uint64_t)i);
      if (model.count(ks)) {
        EXPECT_EQ(s.code(), Code::kAlreadyExists);
      } else {
        ASSERT_TRUE(s.is_ok());
        model[ks] = (uint64_t)i;
      }
    } else if (dice < 0.55) {
      ASSERT_TRUE(tree_->upsert(k, (uint64_t)i).is_ok());
      model[ks] = (uint64_t)i;
    } else if (dice < 0.8) {
      Status s = tree_->erase(k);
      if (model.count(ks)) {
        ASSERT_TRUE(s.is_ok());
        model.erase(ks);
      } else {
        EXPECT_EQ(s.code(), Code::kNotFound);
      }
    } else {
      auto v = tree_->find(k);
      auto it = model.find(ks);
      if (it == model.end()) {
        EXPECT_FALSE(v.has_value());
      } else {
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, it->second);
      }
    }
    if (i % 5000 == 4999) {
      ASSERT_TRUE(tree_->validate().is_ok()) << "op " << i;
    }
  }
  ASSERT_TRUE(tree_->validate().is_ok());
  EXPECT_EQ(tree_->size(), model.size());
  // Full content equality via in-order walk.
  auto it = model.begin();
  bool match = true;
  tree_->for_each([&](const Key& k, uint64_t v) {
    if (it == model.end() || it->first != k.str() || it->second != v) {
      match = false;
      return false;
    }
    ++it;
    return true;
  });
  EXPECT_TRUE(match);
  EXPECT_EQ(it, model.end());
}

TEST_F(BTreeTest, CloneIsObservationallyEquivalent) {
  for (int i = 0; i < 2000; i++) ASSERT_TRUE(tree_->insert(key(i), i).is_ok());
  auto dst_buf = std::make_unique<char[]>(kArenaSize);
  Arena dst(dst_buf.get(), kArenaSize);
  auto clone_sp = sp_.clone_into(dst);
  ASSERT_TRUE(clone_sp.is_ok());
  BTree clone(clone_sp.value(), header_);  // same header offset, new arena
  ASSERT_TRUE(clone.validate().is_ok());
  EXPECT_EQ(clone.size(), 2000u);
  for (int i = 0; i < 2000; i++) {
    auto v = clone.find(key(i));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, (uint64_t)i);
  }
  // Mutating the clone leaves the original untouched.
  ASSERT_TRUE(clone.erase(key(0)).is_ok());
  EXPECT_TRUE(tree_->find(key(0)).has_value());
}

TEST_F(BTreeTest, PositionIndependenceSurvivesRelocation) {
  for (int i = 0; i < 1000; i++) ASSERT_TRUE(tree_->insert(key(i), i).is_ok());
  // Move the raw bytes to a different base address (PMEM remap on restart).
  auto moved_buf = std::make_unique<char[]>(kArenaSize);
  std::memcpy(moved_buf.get(), buf_.get(), sp_.used_bytes());
  Arena moved(moved_buf.get(), kArenaSize);
  auto reopened = SlabAllocator::open(moved);
  ASSERT_TRUE(reopened.is_ok());
  BTree relocated(reopened.value(), header_);
  ASSERT_TRUE(relocated.validate().is_ok());
  for (int i = 0; i < 1000; i++) {
    auto v = relocated.find(key(i));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, (uint64_t)i);
  }
}

TEST_F(BTreeTest, LongestKeySupported) {
  std::string name(kMaxNameLen, 'x');
  ASSERT_TRUE(Key::fits(name));
  ASSERT_TRUE(tree_->insert(Key::from(name), 7).is_ok());
  EXPECT_EQ(*tree_->find(Key::from(name)), 7u);
}

TEST_F(BTreeTest, PrefixKeysAreDistinct) {
  ASSERT_TRUE(tree_->insert(Key::from("abc"), 1).is_ok());
  ASSERT_TRUE(tree_->insert(Key::from("abcd"), 2).is_ok());
  ASSERT_TRUE(tree_->insert(Key::from("ab"), 3).is_ok());
  EXPECT_EQ(*tree_->find(Key::from("abc")), 1u);
  EXPECT_EQ(*tree_->find(Key::from("abcd")), 2u);
  EXPECT_EQ(*tree_->find(Key::from("ab")), 3u);
}

class BTreeScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(BTreeScaleSweep, InsertEraseHalfValidate) {
  const int n = GetParam();
  size_t arena_size = 256 << 20;
  auto buf = std::make_unique<char[]>(arena_size);
  Arena arena(buf.get(), arena_size);
  SlabAllocator sp = SlabAllocator::format(arena);
  auto h = BTree::create(sp);
  ASSERT_TRUE(h.is_ok());
  BTree tree(sp, h.value());
  char name[32];
  for (int i = 0; i < n; i++) {
    snprintf(name, sizeof(name), "k%07d", i);
    ASSERT_TRUE(tree.insert(Key::from(name), i).is_ok());
  }
  for (int i = 0; i < n; i += 2) {
    snprintf(name, sizeof(name), "k%07d", i);
    ASSERT_TRUE(tree.erase(Key::from(name)).is_ok());
  }
  ASSERT_TRUE(tree.validate().is_ok());
  EXPECT_EQ(tree.size(), (uint64_t)n / 2);
  for (int i = 0; i < n; i++) {
    snprintf(name, sizeof(name), "k%07d", i);
    EXPECT_EQ(tree.find(Key::from(name)).has_value(), i % 2 == 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, BTreeScaleSweep, ::testing::Values(2, 10, 31, 32, 100, 1000,
                                                                    10000, 50000));

}  // namespace
}  // namespace dstore
