#include "common/status.h"

namespace dstore {

const char* code_name(Code c) {
  switch (c) {
    case Code::kOk: return "OK";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kAlreadyExists: return "ALREADY_EXISTS";
    case Code::kOutOfSpace: return "OUT_OF_SPACE";
    case Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Code::kCorruption: return "CORRUPTION";
    case Code::kBusy: return "BUSY";
    case Code::kIoError: return "IO_ERROR";
    case Code::kUnsupported: return "UNSUPPORTED";
    case Code::kInternal: return "INTERNAL";
    case Code::kReadOnly: return "READ_ONLY";
  }
  return "UNKNOWN";
}

}  // namespace dstore
