#include "common/status.h"

namespace dstore {

const char* code_name(Code c) {
  // Enum values are wire bytes == table indices (common/status_codes.h).
  return status_codes::display_of_wire((uint8_t)c);
}

}  // namespace dstore
