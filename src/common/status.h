// Lightweight status/result types used across the DStore codebase.
//
// DStore is an embedded storage sub-system; errors are expected values
// (object not found, log full, out of space) rather than exceptional
// conditions, so the public API reports them through Status / Result<T>
// instead of exceptions.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/status_codes.h"

namespace dstore {

// Generated from the one status table (common/status_codes.h): each
// enumerator's value is its wire byte, so Code <-> wire-protocol status
// byte is a bounds-checked cast and Code <-> DS_E* is a table lookup.
// kReadOnly = store degraded to read-only (SSD write retries exhausted).
enum class Code : uint8_t {
#define DS_STATUS_X(cpp, cname, cerrno, wire, display) k##cpp = (wire),
  DS_STATUS_CODES(DS_STATUS_X)
#undef DS_STATUS_X
};

// Human-readable name for an error code (stable, for logs and tests).
const char* code_name(Code c);

// Wire-protocol status byte <-> Code (DESIGN.md §15). Bytes from a newer
// peer that this build doesn't know degrade to kInternal, never UB.
inline constexpr uint8_t wire_byte_of(Code c) { return (uint8_t)c; }
inline constexpr Code code_from_wire(uint8_t wire) {
  return wire < status_codes::kCount ? (Code)wire : Code::kInternal;
}

// The C API's DS_E* value for a Code (0 or negative; dstore/dstore_c.h).
inline constexpr int errno_of(Code c) {
  return status_codes::errno_of_wire((uint8_t)c);
}

class [[nodiscard]] Status {
 public:
  Status() : code_(Code::kOk) {}
  explicit Status(Code code) : code_(code) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status ok() { return Status(); }
  static Status not_found(std::string m = "") { return {Code::kNotFound, std::move(m)}; }
  static Status already_exists(std::string m = "") { return {Code::kAlreadyExists, std::move(m)}; }
  static Status out_of_space(std::string m = "") { return {Code::kOutOfSpace, std::move(m)}; }
  static Status invalid_argument(std::string m = "") { return {Code::kInvalidArgument, std::move(m)}; }
  static Status corruption(std::string m = "") { return {Code::kCorruption, std::move(m)}; }
  static Status busy(std::string m = "") { return {Code::kBusy, std::move(m)}; }
  static Status io_error(std::string m = "") { return {Code::kIoError, std::move(m)}; }
  static Status unsupported(std::string m = "") { return {Code::kUnsupported, std::move(m)}; }
  static Status internal(std::string m = "") { return {Code::kInternal, std::move(m)}; }
  static Status read_only(std::string m = "") { return {Code::kReadOnly, std::move(m)}; }

  bool is_ok() const { return code_ == Code::kOk; }
  bool is_busy() const { return code_ == Code::kBusy; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string to_string() const {
    std::string s = code_name(code_);
    if (!msg_.empty()) {
      s += ": ";
      s += msg_;
    }
    return s;
  }

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  Code code_;
  std::string msg_;
};

// Result<T>: a value or a non-ok Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "ok status requires a value");
  }

  bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(is_ok());
    return *value_;
  }
  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }
  T value_or(T fallback) const { return value_.value_or(std::move(fallback)); }

 private:
  std::optional<T> value_;
  Status status_ = Status::ok();
};

#define DSTORE_RETURN_IF_ERROR(expr)         \
  do {                                       \
    ::dstore::Status _st = (expr);           \
    if (!_st.is_ok()) return _st;            \
  } while (0)

}  // namespace dstore
