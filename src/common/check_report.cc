#include "common/check_report.h"

#include <cstdio>

namespace dstore {

const char* check_kind_name(CheckKind k) {
  switch (k) {
    case CheckKind::kMissingFlush:
      return "missing-flush";
    case CheckKind::kRedundantFlush:
      return "redundant-flush";
    case CheckKind::kStoreAfterFlush:
      return "store-after-flush-before-fence";
    case CheckKind::kUnpersistedRead:
      return "read-unpersisted-during-recovery";
  }
  return "unknown";
}

std::string CheckViolation::to_string() const {
  std::string s = check_kind_name(kind);
  s += " @ pool+0x";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llx", (unsigned long long)offset);
  s += buf;
  if (lines > 1) {
    std::snprintf(buf, sizeof(buf), " (%llu lines)", (unsigned long long)lines);
    s += buf;
  }
  if (!site.empty()) {
    s += " [";
    s += site;
    s += "]";
  }
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

void CheckReport::clear() {
  for (uint64_t& c : counts_) c = 0;
  violations_.clear();
}

void CheckReport::print(std::ostream& os) const {
  os << "PmemCheck: " << total() << " violation(s), " << hard_count() << " hard\n";
  for (size_t k = 0; k < kNumCheckKinds; k++) {
    if (counts_[k] != 0) {
      os << "  " << check_kind_name((CheckKind)k) << ": " << counts_[k] << "\n";
    }
  }
  for (const CheckViolation& v : violations_) os << "  " << v.to_string() << "\n";
  if (total() > violations_.size()) {
    os << "  ... " << (total() - violations_.size()) << " more not recorded\n";
  }
}

}  // namespace dstore
