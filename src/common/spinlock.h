// Spinlocks used in DStore's short critical sections.
//
// The paper's write pipeline holds a lock over block/metadata-pool
// allocation for <300ns (Table 3), so a ticket spinlock is the right tool.
// We yield while spinning because test/bench environments may be
// oversubscribed (fewer cores than threads).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace dstore {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// Reader-writer spinlock; writer-preferring to keep checkpoint/frontend
// interaction bounded. Suitable for the DRAM btree where reads dominate.
class SharedSpinLock {
 public:
  void lock() {  // exclusive
    // Announce writer intent, then wait for readers to drain.
    uint32_t expected;
    do {
      expected = state_.load(std::memory_order_relaxed) & ~kWriterBit;
      if ((state_.load(std::memory_order_relaxed) & kWriterBit) != 0) {
        std::this_thread::yield();
        continue;
      }
    } while (!state_.compare_exchange_weak(expected, expected | kWriterBit,
                                           std::memory_order_acquire));
    int spins = 0;
    while ((state_.load(std::memory_order_acquire) & kReaderMask) != 0) {
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  void unlock() { state_.fetch_and(~kWriterBit, std::memory_order_release); }

  void lock_shared() {
    int spins = 0;
    for (;;) {
      uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & kWriterBit) == 0) {
        if (state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire)) return;
      }
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  void unlock_shared() { state_.fetch_sub(1, std::memory_order_release); }

 private:
  static constexpr uint32_t kWriterBit = 0x80000000u;
  static constexpr uint32_t kReaderMask = ~kWriterBit;
  std::atomic<uint32_t> state_{0};
};

template <typename Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& l) : l_(l) { l_.lock(); }
  ~LockGuard() { l_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& l_;
};

class SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedSpinLock& l) : l_(l) { l_.lock_shared(); }
  ~SharedLockGuard() { l_.unlock_shared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  SharedSpinLock& l_;
};

}  // namespace dstore
