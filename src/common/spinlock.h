// Raw spinlock primitives used in DStore's short critical sections.
//
// The paper's write pipeline holds a lock over block/metadata-pool
// allocation for <300ns (Table 3), so a ticket spinlock is the right tool.
// We yield while spinning because test/bench environments may be
// oversubscribed (fewer cores than threads).
//
// These are the *uninstrumented* primitives. All code outside
// src/common/lockdep.{h,cc} must use the instrumented wrappers in
// common/lockdep.h (dstore::SpinLock / dstore::SharedSpinLock / dstore::Mutex
// and the guards), which compile down to exactly these when DSTORE_LOCKDEP
// is OFF. tools/dstore_lint enforces that rule.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace dstore {

class RawSpinLock {
 public:
  RawSpinLock() = default;
  RawSpinLock(const RawSpinLock&) = delete;
  RawSpinLock& operator=(const RawSpinLock&) = delete;

  void lock() {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// Reader-writer spinlock; writer-preferring to keep checkpoint/frontend
// interaction bounded. Suitable for the DRAM btree where reads dominate.
// Note the writer preference makes *recursive* shared acquisition a real
// deadlock (reader A → writer announces intent → reader A again spins
// forever); lockdep reports any same-instance re-acquisition for this
// reason.
class RawSharedSpinLock {
 public:
  void lock() {  // exclusive
    // Announce writer intent, then wait for readers to drain.
    uint32_t expected;
    do {
      expected = state_.load(std::memory_order_relaxed) & ~kWriterBit;
      if ((state_.load(std::memory_order_relaxed) & kWriterBit) != 0) {
        std::this_thread::yield();
        continue;
      }
    } while (!state_.compare_exchange_weak(expected, expected | kWriterBit,
                                           std::memory_order_acquire));
    int spins = 0;
    while ((state_.load(std::memory_order_acquire) & kReaderMask) != 0) {
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  // Succeeds only when the lock is entirely free (no readers, no writer).
  bool try_lock() {
    uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriterBit,
                                          std::memory_order_acquire);
  }
  void unlock() { state_.fetch_and(~kWriterBit, std::memory_order_release); }

  void lock_shared() {
    int spins = 0;
    for (;;) {
      uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & kWriterBit) == 0) {
        if (state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire)) return;
      }
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  bool try_lock_shared() {
    uint32_t s = state_.load(std::memory_order_relaxed);
    if ((s & kWriterBit) != 0) return false;
    return state_.compare_exchange_strong(s, s + 1, std::memory_order_acquire);
  }
  void unlock_shared() { state_.fetch_sub(1, std::memory_order_release); }

 private:
  static constexpr uint32_t kWriterBit = 0x80000000u;
  static constexpr uint32_t kReaderMask = ~kWriterBit;
  std::atomic<uint32_t> state_{0};
};

}  // namespace dstore
