// Monotonic wall-clock helpers (ns resolution).
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace dstore {

inline uint64_t now_ns() {
  return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline uint64_t now_us() { return now_ns() / 1000; }

// Wait for `ns` nanoseconds of injected device latency.
//
// Short waits busy-poll (accuracy); long waits SLEEP so they release the
// CPU — a long device operation (checkpoint flush, bulk copy) keeps its
// issuing thread busy on a real machine's *device*, not on a core, and on
// an oversubscribed host a spinning background thread would otherwise
// steal wall-clock from the frontend and fake checkpoint stalls that the
// real system does not have.
inline void spin_for_ns(uint64_t ns) {
  if (ns == 0) return;
  uint64_t deadline = now_ns() + ns;
  if (ns > 200000) {  // 200us: past scheduler wakeup accuracy
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns - 100000));
  }
  int spins = 0;
  while (now_ns() < deadline) {
    if (++spins > 256) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

class StopWatch {
 public:
  StopWatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_us() const { return (double)elapsed_ns() / 1e3; }
  double elapsed_ms() const { return (double)elapsed_ns() / 1e6; }
  double elapsed_s() const { return (double)elapsed_ns() / 1e9; }

 private:
  uint64_t start_;
};

}  // namespace dstore
