// CRC32C (Castagnoli) — the end-to-end integrity checksum.
//
// Every persistence tier carries one: DIPPER log slots, metadata-zone
// entries, and the block device's per-4KB-page sidecar. The Castagnoli
// polynomial was chosen (over CRC32/ISO) because x86 has carried a
// dedicated instruction for it since SSE4.2 — a 4 KB page checksums in
// ~500ns on the hardware path vs ~2µs for the slice-by-8 software path,
// which matters on the read path where every page is verified.
//
// Seeding: checksums are *location-seeded* (slot index, entry index,
// absolute page number) so a structurally valid record or page read from
// the WRONG location fails verification — this is what catches misdirected
// writes, which plain content checksums cannot (the misplaced bytes are
// internally consistent).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dstore {

namespace crc32c_detail {

// Slice-by-8 tables for the reflected Castagnoli polynomial 0x82F63B78.
struct Tables {
  uint32_t t[8][256];
};

inline const Tables& tables() {
  static const Tables tbl = [] {
    Tables out;
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++) c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      out.t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = out.t[0][i];
      for (int s = 1; s < 8; s++) {
        c = out.t[0][c & 0xff] ^ (c >> 8);
        out.t[s][i] = c;
      }
    }
    return out;
  }();
  return tbl;
}

inline uint32_t extend_sw(uint32_t crc, const void* data, size_t n) {
  const Tables& tbl = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  while (n >= 8) {
    uint64_t w;
    __builtin_memcpy(&w, p, 8);
    w ^= crc;
    crc = tbl.t[7][w & 0xff] ^ tbl.t[6][(w >> 8) & 0xff] ^ tbl.t[5][(w >> 16) & 0xff] ^
          tbl.t[4][(w >> 24) & 0xff] ^ tbl.t[3][(w >> 32) & 0xff] ^
          tbl.t[2][(w >> 40) & 0xff] ^ tbl.t[1][(w >> 48) & 0xff] ^ tbl.t[0][w >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = tbl.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
__attribute__((target("sse4.2"))) inline uint32_t extend_hw(uint32_t crc, const void* data,
                                                            size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t w;
    __builtin_memcpy(&w, p, 8);
    c = __builtin_ia32_crc32di(c, w);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(c);
  while (n-- > 0) crc = __builtin_ia32_crc32qi(crc, *p++);
  return crc;
}

inline bool have_hw_crc() {
  static const bool ok = __builtin_cpu_supports("sse4.2");
  return ok;
}
#else
inline bool have_hw_crc() { return false; }
inline uint32_t extend_hw(uint32_t crc, const void* data, size_t n) {
  return extend_sw(crc, data, n);
}
#endif

}  // namespace crc32c_detail

// Raw extension: feed `n` bytes into a running (non-inverted) CRC state.
// Compose location seeds and data by chaining calls; finish with
// crc32c_finish() (a plain xor keeps composition associative).
inline uint32_t crc32c_extend(uint32_t crc, const void* data, size_t n) {
  return crc32c_detail::have_hw_crc() ? crc32c_detail::extend_hw(crc, data, n)
                                      : crc32c_detail::extend_sw(crc, data, n);
}

inline uint32_t crc32c_extend_u64(uint32_t crc, uint64_t v) {
  return crc32c_extend(crc, &v, sizeof(v));
}

// One-shot checksum of a buffer with an optional integer location seed.
// Never returns 0 for convenience of "0 = no checksum recorded" sidecars:
// a computed 0 is mapped to 1 (one extra collision in 2^32, irrelevant for
// corruption detection).
inline uint32_t crc32c(const void* data, size_t n, uint64_t seed = 0) {
  uint32_t crc = 0xffffffffu;
  crc = crc32c_extend_u64(crc, seed);
  crc = crc32c_extend(crc, data, n);
  crc ^= 0xffffffffu;
  return crc == 0 ? 1u : crc;
}

}  // namespace dstore
