// Fast deterministic RNG (xoshiro256**) for workload generation and
// fault-injection adversaries. Deterministic seeding keeps crash-consistency
// property tests reproducible.
#pragma once

#include <cstdint>

namespace dstore {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& si : s_) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      si = x ^ (x >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) { return next() % bound; }

  // Uniform in [lo, hi].
  uint64_t next_in(uint64_t lo, uint64_t hi) { return lo + next_below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double next_double() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

  // Bernoulli(p).
  bool next_bool(double p) { return next_double() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace dstore
