// Device latency-injection model.
//
// The original testbed measured real Optane DCPMM and a P4800X NVMe drive.
// We emulate both in memory; to reproduce the paper's latency *shape*
// (e.g. Table 3's 88%-of-write-time-in-NVMe, Figure 5's ratios) the
// emulated devices inject calibrated delays. Delays default to published
// device characteristics and are globally scalable (including to zero for
// unit tests, where only functional behaviour matters).
#pragma once

#include <cstdint>

namespace dstore {

struct LatencyModel {
  // Per-operation fixed costs in nanoseconds.
  uint64_t pmem_flush_line_ns = 0;   // clwb+fence of one 64B line
  uint64_t pmem_nt_line_ns = 0;      // ntstore+fence of one 64B line
  uint64_t pmem_read_per_kb_ns = 0;  // sequential read bandwidth model
  uint64_t pmem_write_per_kb_ns = 0; // sequential write bandwidth model
  uint64_t ssd_write_base_ns = 0;    // NVMe 4KB write (device-RAM ack)
  uint64_t ssd_read_base_ns = 0;     // NVMe 4KB read
  uint64_t ssd_per_kb_ns = 0;        // incremental per-KB transfer cost

  // Calibrated to the paper's testbed: log flush of one line ~615ns
  // (Table 3), NVMe 4KB write ~8.9us (Table 3), PMEM BW ~10GB/s write /
  // ~30GB/s read, NVMe ~2GB/s. `scale` stretches or shrinks everything
  // uniformly (scale=0 disables injection).
  static LatencyModel calibrated(double scale = 1.0) {
    LatencyModel m;
    m.pmem_flush_line_ns = scaled(600, scale);
    // Non-temporal stores bypass the cache and skip the write-back round
    // trip: ~3x cheaper per line than clwb+fence on Optane (arXiv:1904.01614
    // measures ntstore at a fraction of the flush path for small writes).
    m.pmem_nt_line_ns = scaled(180, scale);
    m.pmem_read_per_kb_ns = scaled(33, scale);    // ~30 GB/s
    m.pmem_write_per_kb_ns = scaled(100, scale);  // ~10 GB/s
    m.ssd_write_base_ns = scaled(8400, scale);
    m.ssd_read_base_ns = scaled(7000, scale);
    m.ssd_per_kb_ns = scaled(125, scale);  // ~2 GB/s past the base cost
    return m;
  }

  static LatencyModel none() { return LatencyModel{}; }

  uint64_t ssd_write_ns(size_t bytes) const {
    return ssd_write_base_ns + ssd_per_kb_ns * (bytes / 1024);
  }
  uint64_t ssd_read_ns(size_t bytes) const {
    return ssd_read_base_ns + ssd_per_kb_ns * (bytes / 1024);
  }
  uint64_t pmem_write_ns(size_t bytes) const { return pmem_write_per_kb_ns * (bytes / 1024); }
  uint64_t pmem_read_ns(size_t bytes) const { return pmem_read_per_kb_ns * (bytes / 1024); }

 private:
  static uint64_t scaled(uint64_t ns, double scale) { return (uint64_t)((double)ns * scale); }
};

}  // namespace dstore
