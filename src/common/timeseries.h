// Windowed time-series counters for throughput / bandwidth-over-time plots
// (Figure 7: system throughput plus SSD and PMEM bandwidth over a window).
//
// Samples are bucketed into fixed-width time bins relative to a start
// instant; recording is a single relaxed fetch_add, so the instrumentation
// does not perturb the measured system.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace dstore {

class TimeSeries {
 public:
  // bins: number of buckets; bin_ns: width of each bucket in nanoseconds.
  TimeSeries(size_t bins, uint64_t bin_ns)
      : bins_(bins), bin_ns_(bin_ns), start_ns_(now_ns()) {}

  void restart() {
    start_ns_ = now_ns();
    for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
  }

  // Add `amount` to the bucket covering the current instant. Thread-safe.
  void add(uint64_t amount = 1) {
    uint64_t t = now_ns();
    if (t < start_ns_) return;
    size_t bin = (t - start_ns_) / bin_ns_;
    if (bin < bins_.size()) bins_[bin].fetch_add(amount, std::memory_order_relaxed);
  }

  size_t num_bins() const { return bins_.size(); }
  uint64_t bin_ns() const { return bin_ns_; }
  uint64_t bin(size_t i) const { return bins_[i].load(std::memory_order_relaxed); }

  // Per-second rate for bucket i (amount / bin width).
  double rate_per_sec(size_t i) const { return (double)bin(i) * 1e9 / (double)bin_ns_; }

  // Smallest and largest non-empty-prefix per-second rates, used for the
  // paper's SLO analysis ("even the lowest throughput achieved is greater
  // than the highest of any other system").
  double min_rate(size_t skip_first = 0, size_t skip_last = 0) const {
    double m = -1;
    for (size_t i = skip_first; i + skip_last < bins_.size(); i++) {
      double r = rate_per_sec(i);
      if (m < 0 || r < m) m = r;
    }
    return m < 0 ? 0 : m;
  }
  double max_rate() const {
    double m = 0;
    for (size_t i = 0; i < bins_.size(); i++) m = std::max(m, rate_per_sec(i));
    return m;
  }

 private:
  std::vector<std::atomic<uint64_t>> bins_;
  uint64_t bin_ns_;
  uint64_t start_ns_;
};

}  // namespace dstore
