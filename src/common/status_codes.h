/* status_codes.h — the single source of truth for DStore error codes.
 *
 * One X-macro table maps every error across the three surfaces that must
 * stay in lockstep:
 *
 *   - `dstore::Code` (C++ Status/Result; generated in common/status.h),
 *   - the C API's `DS_E*` errno-style constants (dstore/dstore_c.h),
 *   - the wire-protocol status byte carried in every response frame
 *     (src/net/wire.h; DESIGN.md §15).
 *
 * Columns: X(CppName, CName, CErrno, WireByte, DisplayName)
 *   CppName     `Code::k<CppName>` enumerator suffix
 *   CName       the C constant (DS_OK / DS_E...)
 *   CErrno      its value: 0 for success, negative otherwise (POSIX-ish)
 *   WireByte    status byte on the wire — ALSO the Code enum's numeric
 *               value, so wire<->Code conversion is a bounds-checked cast.
 *               Append-only: wire bytes are a network contract; never
 *               renumber, never reuse.
 *   DisplayName stable human-readable name (logs, tests, code_name())
 *
 * Everything deriving a mapping from codes must expand this table instead
 * of hand-writing a switch; tools/dstore_lint's status-code rule rejects
 * hand-rolled Code<->DS_E mappings and DS_E* redefinitions outside this
 * file. The header is C-parseable: C++-only helpers live behind
 * #ifdef __cplusplus.
 */
#ifndef DSTORE_COMMON_STATUS_CODES_H_
#define DSTORE_COMMON_STATUS_CODES_H_

/* lint: allow-status-code — this IS the table. */
#define DS_STATUS_CODES(X)                                      \
  X(Ok, DS_OK, 0, 0, "OK")                                      \
  X(NotFound, DS_ENOTFOUND, -1, 1, "NOT_FOUND")                 \
  X(AlreadyExists, DS_EEXIST, -2, 2, "ALREADY_EXISTS")          \
  X(OutOfSpace, DS_ENOSPC, -3, 3, "OUT_OF_SPACE")               \
  X(InvalidArgument, DS_EINVAL, -4, 4, "INVALID_ARGUMENT")      \
  X(Corruption, DS_ECORRUPT, -5, 5, "CORRUPTION")               \
  X(Busy, DS_EBUSY, -6, 6, "BUSY")                              \
  X(IoError, DS_EIO, -7, 7, "IO_ERROR")                         \
  X(Unsupported, DS_ENOTSUP, -8, 8, "UNSUPPORTED")              \
  X(Internal, DS_EINTERNAL, -9, 9, "INTERNAL")                  \
  X(ReadOnly, DS_EROFS, -10, 10, "READ_ONLY")

/* The DS_E* constants themselves (an enum, not #defines, so the values
 * exist in exactly one place and debuggers see the names). DS_EROFS means
 * the store degraded to read-only (SSD write retries exhausted). */
enum {
#define DS_STATUS_X(cpp, cname, cerrno, wire, display) cname = (cerrno),
  DS_STATUS_CODES(DS_STATUS_X)
#undef DS_STATUS_X
};

#ifdef __cplusplus

#include <cstddef>
#include <cstdint>

namespace dstore {
namespace status_codes {

struct Row {
  uint8_t wire;
  int c_errno;
  const char* display;
};

inline constexpr Row kRows[] = {
#define DS_STATUS_X(cpp, cname, cerrno, wire, display) {(uint8_t)(wire), (cerrno), display},
    DS_STATUS_CODES(DS_STATUS_X)
#undef DS_STATUS_X
};

inline constexpr size_t kCount = sizeof(kRows) / sizeof(kRows[0]);

// The table is indexed by wire byte: row i must carry wire byte i. This is
// what makes Code <-> wire a cast and code_name() an array lookup.
inline constexpr bool rows_are_index_ordered() {
  for (size_t i = 0; i < kCount; i++) {
    if (kRows[i].wire != i) return false;
  }
  return true;
}
static_assert(rows_are_index_ordered(),
              "DS_STATUS_CODES wire bytes must be 0..N-1 in table order");
static_assert(kRows[0].c_errno == 0, "success must map to 0");

// Display name / C errno for a wire byte (== Code ordinal). Out-of-range
// bytes — a frame from a newer peer — degrade to INTERNAL rather than UB.
inline constexpr const char* display_of_wire(uint8_t wire) {
  return wire < kCount ? kRows[wire].display : "UNKNOWN";
}
inline constexpr int errno_of_wire(uint8_t wire) {
  return wire < kCount ? kRows[wire].c_errno : DS_EINTERNAL;
}

// Reverse map: DS_E* value -> wire byte (DS_EINTERNAL's byte if unknown).
inline constexpr uint8_t wire_of_errno(int c_errno) {
  uint8_t internal = 0;
  for (size_t i = 0; i < kCount; i++) {
    if (kRows[i].c_errno == c_errno) return kRows[i].wire;
    if (kRows[i].c_errno == DS_EINTERNAL) internal = kRows[i].wire;
  }
  return internal;
}

}  // namespace status_codes
}  // namespace dstore

#endif /* __cplusplus */

#endif /* DSTORE_COMMON_STATUS_CODES_H_ */
