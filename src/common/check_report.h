// Violation report type shared by runtime checkers (PmemCheck today).
//
// A checker accumulates `CheckViolation`s into a `CheckReport`; tests assert
// on per-kind counts and tools pretty-print the recorded details. The report
// itself is not thread-safe — checkers call it under their own
// serialization (PmemCheck runs every hook under the pool's image mutex).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dstore {

// The four PMEM persistence-order defect classes (DESIGN.md §PmemCheck).
enum class CheckKind : uint8_t {
  // A line that must be durable at a durability point (log-record publish,
  // root flip, checkpoint install, teardown) was never flushed+fenced.
  kMissingFlush = 0,
  // A flush of a line that is already clean or already staged with the same
  // contents: pure latency waste (~600 ns/line on real PMEM), not a
  // correctness bug. Counted so benches can report it.
  kRedundantFlush = 1,
  // A store landed on a line between its flush and the retiring fence and
  // was not re-flushed: the persistent contents at the fence are ambiguous,
  // which breaks the §3.4 reverse-order flush protocol.
  kStoreAfterFlush = 2,
  // Recovery/replay code consumed bytes that differ from the persistent
  // image, i.e. it depends on volatile state a crash would have destroyed.
  kUnpersistedRead = 3,
};
inline constexpr size_t kNumCheckKinds = 4;

const char* check_kind_name(CheckKind k);

struct CheckViolation {
  CheckKind kind;
  uint64_t offset = 0;  // pool offset of the first offending cache line
  uint64_t lines = 1;   // contiguous offending lines coalesced into this entry
  std::string site;     // annotation/scope label of the offending call site
  std::string detail;   // human-readable specifics

  std::string to_string() const;
};

class CheckReport {
 public:
  explicit CheckReport(size_t max_recorded = 1024) : max_recorded_(max_recorded) {}

  void add(CheckViolation v) {
    counts_[(size_t)v.kind]++;
    if (violations_.size() < max_recorded_) violations_.push_back(std::move(v));
  }

  uint64_t count(CheckKind k) const { return counts_[(size_t)k]; }
  uint64_t total() const {
    uint64_t t = 0;
    for (uint64_t c : counts_) t += c;
    return t;
  }
  // Correctness violations only: redundant flushes cost latency, not data.
  uint64_t hard_count() const { return total() - count(CheckKind::kRedundantFlush); }

  const std::vector<CheckViolation>& violations() const { return violations_; }
  void clear();

  // Pretty-print a summary plus every recorded violation.
  void print(std::ostream& os) const;

 private:
  size_t max_recorded_;
  uint64_t counts_[kNumCheckKinds] = {0, 0, 0, 0};
  std::vector<CheckViolation> violations_;
};

}  // namespace dstore
