// Shared-channel bandwidth model.
//
// Latency injection alone lets unlimited concurrent transfers proceed in
// parallel, which misses the contention effects the paper measures: a CoW
// checkpoint's page-copy stream makes faulting clients queue behind it on
// PMEM write bandwidth, and LSM compaction steals SSD bandwidth from the
// frontend. Each emulated device therefore serializes the BANDWIDTH
// component of its operations through one shared queue (the fixed latency
// component stays parallel, modelling device-internal parallelism).
//
// reserve() atomically appends `cost_ns` to the channel's busy horizon and
// returns the timestamp at which this transfer completes; the caller waits
// until then.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace dstore {

class BandwidthChannel {
 public:
  // Returns the absolute deadline (ns) when the transfer finishes.
  uint64_t reserve(uint64_t cost_ns) {
    if (cost_ns == 0) return 0;
    return reserve_from(now_ns(), cost_ns);
  }

  // Queue a transfer that becomes eligible at `start_ns` (e.g. after the
  // device's fixed per-IO latency has elapsed): the channel is occupied
  // from max(start_ns, previous busy horizon) for `cost_ns`. Used by the
  // async submission path, which charges the fixed latency in parallel
  // across in-flight IOs but still serializes their bandwidth shares.
  uint64_t reserve_from(uint64_t start_ns, uint64_t cost_ns) {
    if (cost_ns == 0) return start_ns;
    uint64_t prev = busy_until_.load(std::memory_order_relaxed);
    uint64_t start, end;
    do {
      start = prev > start_ns ? prev : start_ns;
      end = start + cost_ns;
    } while (!busy_until_.compare_exchange_weak(prev, end, std::memory_order_acq_rel));
    return end;
  }

  // Reserve and wait out the queue + transfer time.
  void transfer(uint64_t cost_ns) {
    uint64_t deadline = reserve(cost_ns);
    if (deadline == 0) return;
    uint64_t now = now_ns();
    if (deadline > now) spin_for_ns(deadline - now);
  }

 private:
  std::atomic<uint64_t> busy_until_{0};
};

}  // namespace dstore
