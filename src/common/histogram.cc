#include "common/histogram.h"

#include <bit>
#include <cstdio>

namespace dstore {

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets) {}

LatencyHistogram::LatencyHistogram(const LatencyHistogram& other) : buckets_(kNumBuckets) {
  *this = other;
}

LatencyHistogram& LatencyHistogram::operator=(const LatencyHistogram& other) {
  if (this == &other) return *this;
  for (int i = 0; i < kNumBuckets; i++) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  count_.store(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.store(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  max_.store(other.max_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  return *this;
}

// Bucketing: values below 2^b (b = kSubBucketBits) are exact; above that,
// each power-of-two octave [2^e, 2^(e+1)) is divided into 2^b sub-buckets,
// giving a relative error of at most 2^-b per bucket.
int LatencyHistogram::bucket_for(uint64_t ns) {
  constexpr int b = kSubBucketBits;
  if (ns < (1ull << b)) return (int)ns;  // exact for tiny values
  int e = 63 - std::countl_zero(ns);     // ns in [2^e, 2^(e+1)), e >= b
  int idx = ((e - b + 1) << b) + (int)((ns >> (e - b)) - (1ull << b));
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

uint64_t LatencyHistogram::bucket_upper_bound(int bucket) {
  constexpr int b = kSubBucketBits;
  if (bucket < (1 << b)) return (uint64_t)bucket;
  int shift = (bucket >> b) - 1;  // e - b for this octave
  uint64_t sub = bucket & ((1u << b) - 1);
  return (((1ull << b) + sub + 1) << shift) - 1;
}

void LatencyHistogram::record(uint64_t ns) {
  buckets_[bucket_for(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (ns > prev && !max_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::value_at_quantile(double q) const {
  uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t target = (uint64_t)(q * (double)total);
  if (target >= total) target = total - 1;
  uint64_t seen = 0;
  uint64_t cap = max();  // bucket bounds can overshoot the true maximum
  for (int i = 0; i < kNumBuckets; i++) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) {
      uint64_t ub = bucket_upper_bound(i);
      return ub > cap ? cap : ub;
    }
  }
  return cap;
}

uint64_t LatencyHistogram::max() const { return max_.load(std::memory_order_relaxed); }
uint64_t LatencyHistogram::count() const { return count_.load(std::memory_order_relaxed); }

double LatencyHistogram::mean_ns() const {
  uint64_t c = count();
  return c == 0 ? 0.0 : (double)sum_.load(std::memory_order_relaxed) / (double)c;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; i++) {
    uint64_t v = other.buckets_[i].load(std::memory_order_relaxed);
    if (v) buckets_[i].fetch_add(v, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  uint64_t om = other.max();
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (om > prev && !max_.compare_exchange_weak(prev, om, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string LatencyHistogram::summary_us() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "mean=%.1fus p50=%.1fus p99=%.1fus p999=%.1fus p9999=%.1fus max=%.1fus n=%llu",
           mean_ns() / 1e3, p50() / 1e3, p99() / 1e3, p999() / 1e3, p9999() / 1e3, max() / 1e3,
           (unsigned long long)count());
  return buf;
}

}  // namespace dstore
