// Cache-line geometry helpers.
//
// PMEM persistence is cache-line granular: a `clwb`/`clflushopt` writes back
// one 64-byte line, and an `sfence` orders the write-backs. All of DIPPER's
// flush bookkeeping (log record protocol, checkpoint durability pass) works
// in units of these lines.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dstore {

inline constexpr size_t kCacheLineSize = 64;

// Round `x` down/up to a cache-line boundary.
constexpr uintptr_t line_down(uintptr_t x) { return x & ~(uintptr_t)(kCacheLineSize - 1); }
constexpr uintptr_t line_up(uintptr_t x) {
  return (x + kCacheLineSize - 1) & ~(uintptr_t)(kCacheLineSize - 1);
}

// Number of cache lines spanned by [addr, addr+len).
constexpr size_t lines_spanned(uintptr_t addr, size_t len) {
  if (len == 0) return 0;
  return (line_up(addr + len) - line_down(addr)) / kCacheLineSize;
}

constexpr bool is_aligned(uintptr_t x, size_t align) { return (x & (align - 1)) == 0; }

constexpr size_t align_up(size_t x, size_t align) { return (x + align - 1) & ~(align - 1); }

}  // namespace dstore
