// Log-bucketed latency histogram (HdrHistogram-style) with lock-free
// concurrent recording.
//
// Used by the workload runner to compute the paper's latency percentiles
// (p50 / p99 / p999 / p9999, Figures 1, 8, 9; Table 5) without per-sample
// allocation. Buckets are <mantissa bits> sub-buckets per power of two,
// giving <1.6% relative error, plenty for tail-latency *shape* comparisons.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dstore {

class LatencyHistogram {
 public:
  LatencyHistogram();
  // Copy/move transfer a snapshot of the counters; not safe concurrently
  // with record() on the source (used to return results from runners).
  LatencyHistogram(const LatencyHistogram& other);
  LatencyHistogram& operator=(const LatencyHistogram& other);

  // Record a latency sample in nanoseconds. Thread-safe.
  void record(uint64_t ns);

  // Value at quantile q in [0,1]; returns an upper bucket bound in ns.
  uint64_t value_at_quantile(double q) const;

  uint64_t percentile(double p) const { return value_at_quantile(p / 100.0); }
  uint64_t p50() const { return value_at_quantile(0.50); }
  uint64_t p99() const { return value_at_quantile(0.99); }
  uint64_t p999() const { return value_at_quantile(0.999); }
  uint64_t p9999() const { return value_at_quantile(0.9999); }
  uint64_t max() const;
  uint64_t count() const;
  double mean_ns() const;

  // Merge another histogram into this one (not concurrent with record()).
  void merge(const LatencyHistogram& other);

  void reset();

  // "p50=... p99=..." summary in microseconds, for bench output.
  std::string summary_us() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static constexpr int kOctaves = 40;       // covers up to ~2^40 ns (~18 min)
  static constexpr int kNumBuckets = kOctaves << kSubBucketBits;

  static int bucket_for(uint64_t ns);
  static uint64_t bucket_upper_bound(int bucket);

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace dstore
