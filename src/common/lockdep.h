// Lock-order and quiescence validation (kernel-lockdep style).
//
// Every mutex/spinlock in DStore is one of the wrappers below, named with a
// *lock class* at construction (e.g. "dstore.pipeline"). With
// -DDSTORE_LOCKDEP=ON each wrapper records, per thread, the stack of held
// locks and feeds a global acquisition-order graph keyed by class: the first
// time class A is acquired while class B is held, the edge B→A is validated
// against the graph (DFS for a path A→…→B) and recorded with the acquiring
// thread's call stack. Any later acquisition that would close a cycle is an
// inversion: lockdep reports both acquisition stacks — the one that
// established the conflicting edge and the current one — and aborts (or
// calls the test hook). Validation is once per (ordered) class pair per
// thread, so steady-state overhead is one thread-local hash probe.
//
// On top of the graph sits the §3 *quiescence gate*, the paper's
// quiescent-free claim as an executable assertion: foreground oget/oput/
// owrite/odelete scopes are marked hot (obs::OpTrace owns a HotOpScope), and
// background threads declare a Role (checkpoint / scrubber / recovery) via
// RoleScope. If a hot foreground acquisition ever *blocks* — its try_lock
// fails — on a lock currently held by a background role, that is a
// quiescence violation. Classes that exist only in the crash simulation
// (pmem image bookkeeping, the fault injector, the simulated SSD cache
// buffers) or that implement the §3.5 bounded log swap are flagged
// kQuiesceExempt; the full table lives in DESIGN.md §12.
//
// With DSTORE_LOCKDEP=OFF (the default) every wrapper is a zero-overhead
// passthrough over the raw primitive: no per-lock state, no thread-locals,
// identical code to the pre-lockdep tree.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/spinlock.h"

namespace dstore::lockdep {

// Who is running on this thread. Foreground is the default; background
// subsystems enter their role with a RoleScope for the lifetime of the
// thread (or the pass, for synchronous scrubs).
enum class Role : uint8_t {
  kForeground = 0,
  kCheckpoint = 1,
  kScrubber = 2,
  kRecovery = 3,
};
constexpr int kRoleCount = 4;

const char* role_name(Role r);

// Per-class behavior flags (set at lock construction, same for every
// instance of the class; see the DESIGN.md §12 table for the rationale of
// each exemption).
enum ClassFlags : uint32_t {
  kQuiesceExempt = 1u << 0,  // excluded from the quiescence gate
};

#if defined(DSTORE_LOCKDEP_ENABLED)

// Instrumentation state embedded in every wrapper instance.
struct LockState {
  const char* class_name;
  uint32_t flags;
  // Lazily assigned class id (index into the global class table); -1 until
  // the first acquisition.
  std::atomic<int> cls{-1};
  // Packed per-role holder counts, 8 bits per Role, used by the quiescence
  // gate to answer "is a background thread holding this right now?".
  std::atomic<uint64_t> holders{0};

  LockState(const char* name, uint32_t f) : class_name(name), flags(f) {}
};

struct Violation {
  std::string kind;    // "inversion" | "self-deadlock" | "quiescence"
  std::string report;  // full human-readable report
};

// Ordering validation, run *before* the acquisition attempt so a would-be
// deadlock is reported instead of hung.
void pre_acquire(LockState* s, bool shared);
// Bookkeeping after a successful acquisition (held stack push + holder
// role count).
void post_acquire(LockState* s, bool shared);
// Bookkeeping before release.
void pre_release(LockState* s, bool shared);
// Called when a blocking acquisition found the lock contended (try_lock
// failed); runs the quiescence gate.
void on_contended(LockState* s);

Role current_role();
bool in_hot_op();

// Total violations observed since start/reset (inversions + self-deadlocks
// + quiescence trips).
uint64_t violation_count();

// Install a hook to receive violations instead of abort(); pass nullptr to
// restore the default (report to stderr and abort). Tests use this.
void set_report_hook(std::function<void(const Violation&)> hook);

// Drop the recorded acquisition-order graph and violation count, and
// invalidate every thread's validated-edge cache. Test-only: lets one
// process run independent ordering scenarios.
void reset_for_testing();

class RoleScope {
 public:
  explicit RoleScope(Role r);
  ~RoleScope();
  RoleScope(const RoleScope&) = delete;
  RoleScope& operator=(const RoleScope&) = delete;

 private:
  Role prev_;
};

class HotOpScope {
 public:
  HotOpScope();
  ~HotOpScope();
  HotOpScope(const HotOpScope&) = delete;
  HotOpScope& operator=(const HotOpScope&) = delete;
};

#else  // !DSTORE_LOCKDEP_ENABLED — everything inlines to nothing.

struct Violation {
  const char* kind = "";
  const char* report = "";
};

inline Role current_role() { return Role::kForeground; }
inline bool in_hot_op() { return false; }
inline uint64_t violation_count() { return 0; }
inline void set_report_hook(std::function<void(const Violation&)>) {}
inline void reset_for_testing() {}

class RoleScope {
 public:
  explicit RoleScope(Role) {}
  RoleScope(const RoleScope&) = delete;
  RoleScope& operator=(const RoleScope&) = delete;
};

class HotOpScope {
 public:
  HotOpScope() = default;
  HotOpScope(const HotOpScope&) = delete;
  HotOpScope& operator=(const HotOpScope&) = delete;
};

#endif  // DSTORE_LOCKDEP_ENABLED

}  // namespace dstore::lockdep

namespace dstore {

// ---------------------------------------------------------------------------
// Instrumented lock wrappers. Each takes a lock-class name (string literal;
// locks sharing a name share a class) and optional lockdep::ClassFlags.
// ---------------------------------------------------------------------------

class SpinLock {
 public:
  explicit SpinLock(const char* lock_class, uint32_t flags = 0)
#if defined(DSTORE_LOCKDEP_ENABLED)
      : state_(lock_class, flags) {
  }
#else
  {
    (void)lock_class;
    (void)flags;
  }
#endif
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_acquire(&state_, false);
    if (!raw_.try_lock()) {
      lockdep::on_contended(&state_);
      raw_.lock();
    }
    lockdep::post_acquire(&state_, false);
#else
    raw_.lock();
#endif
  }
  bool try_lock() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    if (!raw_.try_lock()) return false;
    lockdep::post_acquire(&state_, false);
    return true;
#else
    return raw_.try_lock();
#endif
  }
  void unlock() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_release(&state_, false);
#endif
    raw_.unlock();
  }

 private:
  RawSpinLock raw_;
#if defined(DSTORE_LOCKDEP_ENABLED)
  lockdep::LockState state_;
#endif
};

class SharedSpinLock {
 public:
  explicit SharedSpinLock(const char* lock_class, uint32_t flags = 0)
#if defined(DSTORE_LOCKDEP_ENABLED)
      : state_(lock_class, flags) {
  }
#else
  {
    (void)lock_class;
    (void)flags;
  }
#endif
  SharedSpinLock(const SharedSpinLock&) = delete;
  SharedSpinLock& operator=(const SharedSpinLock&) = delete;

  void lock() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_acquire(&state_, false);
    if (!raw_.try_lock()) {
      lockdep::on_contended(&state_);
      raw_.lock();
    }
    lockdep::post_acquire(&state_, false);
#else
    raw_.lock();
#endif
  }
  void unlock() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_release(&state_, false);
#endif
    raw_.unlock();
  }
  void lock_shared() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_acquire(&state_, true);
    if (!raw_.try_lock_shared()) {
      lockdep::on_contended(&state_);
      raw_.lock_shared();
    }
    lockdep::post_acquire(&state_, true);
#else
    raw_.lock_shared();
#endif
  }
  void unlock_shared() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_release(&state_, true);
#endif
    raw_.unlock_shared();
  }

 private:
  RawSharedSpinLock raw_;
#if defined(DSTORE_LOCKDEP_ENABLED)
  lockdep::LockState state_;
#endif
};

// Instrumented std::mutex. native() exposes the underlying mutex for
// CondVar, which must run the wait against the real primitive.
class Mutex {
 public:
  explicit Mutex(const char* lock_class, uint32_t flags = 0)
#if defined(DSTORE_LOCKDEP_ENABLED)
      : state_(lock_class, flags) {
  }
#else
  {
    (void)lock_class;
    (void)flags;
  }
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_acquire(&state_, false);
    if (!raw_.try_lock()) {
      lockdep::on_contended(&state_);
      raw_.lock();
    }
    lockdep::post_acquire(&state_, false);
#else
    raw_.lock();
#endif
  }
  bool try_lock() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    if (!raw_.try_lock()) return false;
    lockdep::post_acquire(&state_, false);
    return true;
#else
    return raw_.try_lock();
#endif
  }
  void unlock() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_release(&state_, false);
#endif
    raw_.unlock();
  }

  std::mutex& native() { return raw_; }

  // CondVar bookkeeping: the native mutex is released/reacquired inside the
  // condition-variable wait, outside the wrapper's lock()/unlock().
  void ld_note_release() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_release(&state_, false);
#endif
  }
  void ld_note_acquire() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_acquire(&state_, false);
    lockdep::post_acquire(&state_, false);
#endif
  }

 private:
  std::mutex raw_;
#if defined(DSTORE_LOCKDEP_ENABLED)
  lockdep::LockState state_;
#endif
};

// Instrumented std::shared_mutex.
class SharedMutex {
 public:
  explicit SharedMutex(const char* lock_class, uint32_t flags = 0)
#if defined(DSTORE_LOCKDEP_ENABLED)
      : state_(lock_class, flags) {
  }
#else
  {
    (void)lock_class;
    (void)flags;
  }
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_acquire(&state_, false);
    if (!raw_.try_lock()) {
      lockdep::on_contended(&state_);
      raw_.lock();
    }
    lockdep::post_acquire(&state_, false);
#else
    raw_.lock();
#endif
  }
  void unlock() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_release(&state_, false);
#endif
    raw_.unlock();
  }
  void lock_shared() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_acquire(&state_, true);
    if (!raw_.try_lock_shared()) {
      lockdep::on_contended(&state_);
      raw_.lock_shared();
    }
    lockdep::post_acquire(&state_, true);
#else
    raw_.lock_shared();
#endif
  }
  void unlock_shared() {
#if defined(DSTORE_LOCKDEP_ENABLED)
    lockdep::pre_release(&state_, true);
#endif
    raw_.unlock_shared();
  }

 private:
  std::shared_mutex raw_;
#if defined(DSTORE_LOCKDEP_ENABLED)
  lockdep::LockState state_;
#endif
};

// std::unique_lock equivalent over dstore::Mutex, for use with CondVar.
class UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) : m_(&m) {
    m_->lock();
    owns_ = true;
  }
  UniqueLock(Mutex& m, std::defer_lock_t) : m_(&m) {}
  ~UniqueLock() {
    if (owns_) m_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() {
    m_->lock();
    owns_ = true;
  }
  void unlock() {
    m_->unlock();
    owns_ = false;
  }
  bool owns_lock() const { return owns_; }
  Mutex* mutex() const { return m_; }

 private:
  Mutex* m_;
  bool owns_ = false;
};

// Condition variable paired with dstore::Mutex. The waits run on the native
// mutex (adopted for the duration) and tell lockdep about the release/
// reacquire around the sleep so the held-lock stack stays accurate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  template <typename Pred>
  void wait(UniqueLock& l, Pred pred) {
    std::unique_lock<std::mutex> nl(l.mutex()->native(), std::adopt_lock);
    l.mutex()->ld_note_release();
    cv_.wait(nl, std::move(pred));
    l.mutex()->ld_note_acquire();
    nl.release();
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(UniqueLock& l, std::chrono::duration<Rep, Period> d, Pred pred) {
    std::unique_lock<std::mutex> nl(l.mutex()->native(), std::adopt_lock);
    l.mutex()->ld_note_release();
    bool r = cv_.wait_for(nl, d, std::move(pred));
    l.mutex()->ld_note_acquire();
    nl.release();
    return r;
  }

 private:
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------------
// Guards (work for any of the wrappers above).
// ---------------------------------------------------------------------------

template <typename Lock>
class LockGuard {
 public:
  explicit LockGuard(Lock& l) : l_(l) { l_.lock(); }
  ~LockGuard() { l_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Lock& l_;
};

using MutexGuard = LockGuard<Mutex>;

template <typename Lock = SharedSpinLock>
class SharedLockGuard {
 public:
  explicit SharedLockGuard(Lock& l) : l_(l) { l_.lock_shared(); }
  ~SharedLockGuard() { l_.unlock_shared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  Lock& l_;
};

}  // namespace dstore
