// Zipfian key-popularity generator, YCSB-compatible.
//
// Implements the Gray et al. rejection-free method used by YCSB's
// ZipfianGenerator, plus the scrambled variant that spreads hot keys across
// the keyspace (what YCSB actually uses for workloads A/B).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.h"

namespace dstore {

class ZipfianGenerator {
 public:
  // items: size of the keyspace; theta: skew (YCSB default 0.99).
  explicit ZipfianGenerator(uint64_t items, double theta = 0.99)
      : items_(items), theta_(theta) {
    zetan_ = zeta(items_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / (double)items_, 1.0 - theta_)) / (1.0 - zeta2_ / zetan_);
  }

  // Rank in [0, items): 0 is the most popular item.
  uint64_t next(Rng& rng) const {
    double u = rng.next_double();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return (uint64_t)((double)items_ * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  uint64_t items() const { return items_; }

 private:
  static double zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) sum += 1.0 / std::pow((double)i, theta);
    return sum;
  }

  uint64_t items_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

// FNV-1a based scrambling so the popular ranks are not clustered at the
// front of the keyspace (YCSB ScrambledZipfianGenerator behaviour).
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(uint64_t items, double theta = 0.99)
      : zipf_(items, theta), items_(items) {}

  uint64_t next(Rng& rng) const { return fnv1a(zipf_.next(rng)) % items_; }
  uint64_t items() const { return items_; }

 private:
  static uint64_t fnv1a(uint64_t v) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (int i = 0; i < 8; i++) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
    return h;
  }

  ZipfianGenerator zipf_;
  uint64_t items_;
};

}  // namespace dstore
