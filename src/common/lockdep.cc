#include "common/lockdep.h"

#include <cstdio>
#include <cstdlib>

namespace dstore::lockdep {

const char* role_name(Role r) {
  switch (r) {
    case Role::kForeground: return "foreground";
    case Role::kCheckpoint: return "checkpoint";
    case Role::kScrubber: return "scrubber";
    case Role::kRecovery: return "recovery";
  }
  return "?";
}

}  // namespace dstore::lockdep

#if defined(DSTORE_LOCKDEP_ENABLED)

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#if defined(__GLIBC__)
#include <execinfo.h>
#define DSTORE_LOCKDEP_HAVE_BACKTRACE 1
#endif

namespace dstore::lockdep {

namespace {

// All global lockdep state sits behind one internal raw std::mutex. This is
// the only raw mutex outside the wrappers (allowlisted in dstore_lint): it
// cannot participate in the graph it maintains.
std::mutex& g_mu() {
  static std::mutex m;
  return m;
}

struct ClassInfo {
  std::string name;
  uint32_t flags = 0;
};

// The edge B→A ("A acquired while holding B"), with the context of its
// first observation — that context is the "other" acquisition stack an
// inversion report needs.
struct EdgeInfo {
  int from = -1;
  int to = -1;
  std::string role;        // role of the thread that established the edge
  std::string held_names;  // classes held at that point, outermost first
  std::string stack;       // call stack of the establishing acquisition
};

struct Global {
  std::vector<ClassInfo> classes;
  std::unordered_map<std::string, int> class_ids;
  std::unordered_map<uint64_t, EdgeInfo> edges;  // key: from<<32 | to
  std::vector<std::vector<int>> adj;             // adjacency by class id
  std::unordered_set<int> quiesce_reported;      // once per class
  std::function<void(const Violation&)> hook;
};

Global& g() {
  static Global* gp = new Global();  // leaked: lockdep outlives everything
  return *gp;
}

std::atomic<uint64_t> g_violations{0};
std::atomic<uint64_t> g_epoch{1};

struct Held {
  LockState* lock;
  int cls;
  bool shared;
};

struct ThreadLd {
  std::vector<Held> held;
  Role role = Role::kForeground;
  int hot = 0;
  uint64_t epoch = 0;
  // (held_class<<32 | acquired_class) pairs already validated by this
  // thread; steady state never touches g_mu().
  std::unordered_set<uint64_t> edge_cache;
  bool reporting = false;  // re-entrancy guard while building a report
};

ThreadLd& tls() {
  thread_local ThreadLd t;
  return t;
}

uint64_t edge_key(int from, int to) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
         static_cast<uint32_t>(to);
}

std::string capture_stack() {
#if defined(DSTORE_LOCKDEP_HAVE_BACKTRACE)
  void* frames[32];
  int n = backtrace(frames, 32);
  char** syms = backtrace_symbols(frames, n);
  std::string out;
  if (syms != nullptr) {
    // Skip the innermost frames (capture_stack + lockdep internals).
    for (int i = 2; i < n; i++) {
      out += "    ";
      out += syms[i];
      out += "\n";
    }
    free(syms);  // NOLINT: backtrace_symbols mallocs
  }
  return out;
#else
  return "    (no backtrace support on this platform)\n";
#endif
}

std::string held_names_locked(const ThreadLd& t) {
  std::string out;
  for (const Held& h : t.held) {
    if (!out.empty()) out += " -> ";
    out += h.lock->class_name;
    if (h.shared) out += "(shared)";
  }
  return out.empty() ? "(none)" : out;
}

void emit(Violation v) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  std::function<void(const Violation&)> hook;
  {
    std::lock_guard<std::mutex> lg(g_mu());
    hook = g().hook;
  }
  if (hook) {
    hook(v);
    return;
  }
  std::fprintf(stderr, "%s", v.report.c_str());
  std::fflush(stderr);
  std::abort();
}

// Is `to` reachable from `from` in the acquisition graph? Iterative DFS;
// records the path (class-id chain from `from` to `to`) when found.
// Caller holds g_mu().
bool reachable_locked(int from, int to, std::vector<int>* path) {
  Global& gl = g();
  if (from == to) {
    *path = {from};
    return true;
  }
  std::vector<int> parent(gl.classes.size(), -1);
  std::vector<int> stack = {from};
  std::vector<char> seen(gl.classes.size(), 0);
  seen[from] = 1;
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    if (static_cast<size_t>(cur) >= gl.adj.size()) continue;
    for (int next : gl.adj[cur]) {
      if (seen[next]) continue;
      seen[next] = 1;
      parent[next] = cur;
      if (next == to) {
        path->clear();
        for (int n = to; n != -1; n = parent[n]) path->push_back(n);
        // path is to..from; reverse into from..to.
        for (size_t i = 0, j = path->size() - 1; i < j; i++, j--) {
          std::swap((*path)[i], (*path)[j]);
        }
        return true;
      }
      stack.push_back(next);
    }
  }
  return false;
}

int class_id(LockState* s) {
  int c = s->cls.load(std::memory_order_acquire);
  if (c >= 0) return c;
  std::lock_guard<std::mutex> lg(g_mu());
  c = s->cls.load(std::memory_order_relaxed);
  if (c >= 0) return c;
  Global& gl = g();
  auto [it, inserted] =
      gl.class_ids.emplace(s->class_name, static_cast<int>(gl.classes.size()));
  if (inserted) {
    gl.classes.push_back({s->class_name, s->flags});
    gl.adj.emplace_back();
  }
  s->cls.store(it->second, std::memory_order_release);
  return it->second;
}

}  // namespace

Role current_role() { return tls().role; }
bool in_hot_op() { return tls().hot > 0; }
uint64_t violation_count() { return g_violations.load(std::memory_order_acquire); }

void set_report_hook(std::function<void(const Violation&)> hook) {
  std::lock_guard<std::mutex> lg(g_mu());
  g().hook = std::move(hook);
}

void reset_for_testing() {
  std::lock_guard<std::mutex> lg(g_mu());
  Global& gl = g();
  gl.edges.clear();
  for (auto& a : gl.adj) a.clear();
  gl.quiesce_reported.clear();
  g_violations.store(0, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

RoleScope::RoleScope(Role r) {
  prev_ = tls().role;
  tls().role = r;
}
RoleScope::~RoleScope() { tls().role = prev_; }

HotOpScope::HotOpScope() { tls().hot++; }
HotOpScope::~HotOpScope() { tls().hot--; }

void pre_acquire(LockState* s, bool shared) {
  ThreadLd& t = tls();
  if (t.reporting) return;
  int cls = class_id(s);

  // Same-instance re-acquisition: always a bug here. The raw spinlocks are
  // non-recursive, and RawSharedSpinLock's writer preference makes even
  // shared-then-shared recursion deadlock against an intervening writer.
  for (const Held& h : t.held) {
    if (h.lock == s) {
      t.reporting = true;
      Violation v;
      v.kind = "self-deadlock";
      v.report = std::string("lockdep: SELF-DEADLOCK\n  class ") +
                 s->class_name + (shared ? " (shared)" : " (exclusive)") +
                 " re-acquired while already held by this thread\n  held: " +
                 held_names_locked(t) + "\n  at:\n" + capture_stack();
      t.reporting = false;
      emit(std::move(v));
      return;
    }
  }

  if (t.held.empty()) return;

  if (t.epoch != g_epoch.load(std::memory_order_acquire)) {
    t.edge_cache.clear();
    t.epoch = g_epoch.load(std::memory_order_acquire);
  }

  for (const Held& h : t.held) {
    if (h.cls == cls) {
      // Distinct instance, same class: the class graph cannot order these,
      // and an ABBA between two instances would be invisible. Report it.
      t.reporting = true;
      Violation v;
      v.kind = "self-deadlock";
      v.report = std::string("lockdep: RECURSIVE CLASS ACQUISITION\n  class ") +
                 s->class_name +
                 " acquired while another instance of the same class is "
                 "held\n  held: " +
                 held_names_locked(t) + "\n  at:\n" + capture_stack();
      t.reporting = false;
      emit(std::move(v));
      continue;
    }
    uint64_t key = edge_key(h.cls, cls);
    if (t.edge_cache.count(key) != 0) continue;

    Violation pending;
    bool violated = false;
    {
      std::lock_guard<std::mutex> lg(g_mu());
      Global& gl = g();
      if (gl.edges.count(key) != 0) {
        t.edge_cache.insert(key);
        continue;
      }
      // Would cls→…→h.cls close a cycle with the new edge h.cls→cls?
      std::vector<int> path;
      if (reachable_locked(cls, h.cls, &path)) {
        t.reporting = true;
        std::string rep = "lockdep: LOCK ORDER INVERSION\n";
        rep += "  acquiring class " + gl.classes[cls].name +
               (shared ? " (shared)" : "") + " while holding " +
               gl.classes[h.cls].name + "\n";
        rep += "  but the graph already orders " + gl.classes[cls].name +
               " before " + gl.classes[h.cls].name + ":\n";
        for (size_t i = 0; i + 1 < path.size(); i++) {
          auto eit = gl.edges.find(edge_key(path[i], path[i + 1]));
          rep += "    " + gl.classes[path[i]].name + " -> " +
                 gl.classes[path[i + 1]].name;
          if (eit != gl.edges.end()) {
            rep += "  (first established by a " + eit->second.role +
                   " thread holding " + eit->second.held_names + ")\n";
            rep += eit->second.stack;
          } else {
            rep += "\n";
          }
        }
        rep += "  current thread (" + std::string(role_name(t.role)) +
               ") holds " + held_names_locked(t) + "; acquisition stack:\n";
        rep += capture_stack();
        t.reporting = false;
        pending.kind = "inversion";
        pending.report = std::move(rep);
        violated = true;
        // Cache so the same inversion reports once per thread; the edge is
        // NOT added to the graph (it is invalid).
        t.edge_cache.insert(key);
      } else {
        EdgeInfo e;
        e.from = h.cls;
        e.to = cls;
        e.role = role_name(t.role);
        t.reporting = true;
        e.held_names = held_names_locked(t);
        e.stack = capture_stack();
        t.reporting = false;
        gl.edges.emplace(key, std::move(e));
        gl.adj[h.cls].push_back(cls);
        t.edge_cache.insert(key);
      }
    }
    if (violated) emit(std::move(pending));
  }
}

void post_acquire(LockState* s, bool shared) {
  ThreadLd& t = tls();
  if (t.reporting) return;
  t.held.push_back({s, class_id(s), shared});
  s->holders.fetch_add(1ull << (8 * static_cast<int>(t.role)),
                       std::memory_order_acq_rel);
}

void pre_release(LockState* s, bool shared) {
  (void)shared;
  ThreadLd& t = tls();
  if (t.reporting) return;
  for (size_t i = t.held.size(); i > 0; i--) {
    if (t.held[i - 1].lock == s) {
      t.held.erase(t.held.begin() + static_cast<long>(i - 1));
      s->holders.fetch_sub(1ull << (8 * static_cast<int>(t.role)),
                           std::memory_order_acq_rel);
      return;
    }
  }
  // Releasing a lock we never saw acquired (e.g. locked before lockdep was
  // reset): ignore rather than underflow.
}

void on_contended(LockState* s) {
  ThreadLd& t = tls();
  if (t.reporting) return;
  if (t.role != Role::kForeground || t.hot == 0) return;
  if ((s->flags & kQuiesceExempt) != 0) return;
  uint64_t h = s->holders.load(std::memory_order_acquire);
  uint64_t background = (h >> 8) & 0xFFFFFFull;  // checkpoint|scrubber|recovery
  if (background == 0) return;
  int cls = class_id(s);
  {
    std::lock_guard<std::mutex> lg(g_mu());
    if (!g().quiesce_reported.insert(cls).second) return;  // once per class
  }
  t.reporting = true;
  auto count = [h](Role r) {
    return (h >> (8 * static_cast<int>(r))) & 0xFF;
  };
  std::string rep = "lockdep: QUIESCENCE VIOLATION\n";
  rep += std::string("  foreground hot-path op blocked on class ") +
         s->class_name + "\n";
  rep += "  current holders: checkpoint=" +
         std::to_string(count(Role::kCheckpoint)) +
         " scrubber=" + std::to_string(count(Role::kScrubber)) +
         " recovery=" + std::to_string(count(Role::kRecovery)) + "\n";
  rep += "  the paper's quiescent-free property (§3) forbids foreground "
         "ops blocking on background threads\n";
  rep += "  foreground acquisition stack:\n" + capture_stack();
  t.reporting = false;
  Violation v;
  v.kind = "quiescence";
  v.report = std::move(rep);
  emit(std::move(v));
}

}  // namespace dstore::lockdep

#endif  // DSTORE_LOCKDEP_ENABLED
