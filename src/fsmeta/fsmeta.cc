#include "fsmeta/fsmeta.h"

#include <cstring>

#include "common/cacheline.h"
#include "common/clock.h"

namespace dstore::fsmeta {

namespace {
// Advance a ring offset within the pool, leaving room for `bytes`.
uint64_t ring_advance(uint64_t off, size_t bytes, size_t pool_size) {
  if (off + bytes > pool_size) return 0;
  return off;
}
}  // namespace

uint64_t Ext4DaxMeta::metadata_update(uint64_t inode) {
  StopWatch w;
  // jbd2 transaction: descriptor block + one metadata (bitmap/extent)
  // block + commit block — three 4KB journal blocks, each persisted, with
  // an ordering fence before the commit block.
  journal_off_ = ring_advance(journal_off_, 3 * 4096, pool_->size() / 2);
  char* j = pool_->base() + journal_off_;
  std::memset(j, (int)(inode & 0xff), 3 * 4096);
  pool_->persist_bulk(j, 4096);          // descriptor
  pool_->persist_bulk(j + 4096, 4096);   // metadata block
  pool_->persist_bulk(j + 8192, 4096);   // commit block (ordered)
  journal_off_ += 3 * 4096;
  // In-place inode update (one cache line) after commit.
  char* ino = pool_->base() + pool_->size() / 2 + (inode % 4096) * kCacheLineSize;
  std::memset(ino, (int)(inode & 0xff), kCacheLineSize);
  pool_->persist(ino, kCacheLineSize);
  return w.elapsed_ns();
}

uint64_t XfsDaxMeta::metadata_update(uint64_t inode) {
  StopWatch w;
  // xfs delayed logging: one iclog write of ~1KB of log item vectors
  // (inode core + extent items), then the in-place inode update.
  log_off_ = ring_advance(log_off_, 1024, pool_->size() / 2);
  char* l = pool_->base() + log_off_;
  std::memset(l, (int)(inode & 0xff), 1024);
  pool_->persist_bulk(l, 1024);
  log_off_ += 1024;
  char* ino = pool_->base() + pool_->size() / 2 + (inode % 4096) * kCacheLineSize;
  std::memset(ino, (int)(inode & 0xff), kCacheLineSize);
  pool_->persist(ino, kCacheLineSize);
  return w.elapsed_ns();
}

uint64_t NovaMeta::metadata_update(uint64_t inode) {
  StopWatch w;
  // NOVA: append a 64B write-entry to the inode's log, persist it, then
  // update the 8B log tail pointer, persist it — two ordered flushes, both
  // in PMEM ("NOVA must update the file's inode as well as add the
  // operation to the inode's log, both of which must be made in PMEM").
  uint64_t& tail = inode_tails_[inode];
  uint64_t base = (inode % 1024) * 64 * 1024;  // per-inode log area
  uint64_t entry_off = base + (tail % (64 * 1024 - 64));
  char* entry = pool_->base() + entry_off;
  std::memset(entry, (int)(inode & 0xff), kCacheLineSize);
  pool_->persist(entry, kCacheLineSize);
  tail += 64;
  // Tail pointer lives in the inode (well-known offset).
  char* tail_ptr = pool_->base() + base;
  *reinterpret_cast<uint64_t*>(tail_ptr) = tail;
  pool_->persist(tail_ptr, sizeof(uint64_t));
  return w.elapsed_ns();
}

uint64_t DStoreMeta::metadata_update(uint64_t inode) {
  StopWatch w;
  // DStore §4.3: "updating metadata only requires making changes to
  // in-memory data structures and recording the operation in the log" —
  // a DRAM map update plus ONE 64B logical log record, one flush+fence.
  dram_meta_[inode] += 4096;  // btree/metadata-zone update, pure DRAM
  log_off_ = ring_advance(log_off_, kCacheLineSize, pool_->size());
  char* rec = pool_->base() + log_off_;
  std::memset(rec, (int)(inode & 0xff), kCacheLineSize);
  pool_->persist(rec, kCacheLineSize);
  log_off_ += kCacheLineSize;
  return w.elapsed_ns();
}

}  // namespace dstore::fsmeta
