#include "fsmeta/badpage_table.h"

#include <algorithm>
#include <cstring>

#include "common/crc32c.h"

namespace dstore::fsmeta {

BadPageTable::Header* BadPageTable::hdr() const {
  return reinterpret_cast<Header*>(pool_->base() + off_);
}

uint64_t* BadPageTable::slots() const {
  return reinterpret_cast<uint64_t*>(pool_->base() + off_ + sizeof(Header));
}

uint32_t BadPageTable::table_crc(uint64_t count) const {
  uint32_t c = 0xffffffffu;
  c = crc32c_extend_u64(c, kMagic);
  c = crc32c_extend_u64(c, count);
  c = crc32c_extend(c, slots(), count * sizeof(uint64_t));
  c ^= 0xffffffffu;
  return c == 0 ? 1u : c;
}

void BadPageTable::seal_and_persist() {
  Header* h = hdr();
  h->crc = table_crc(h->count);
  pool_->persist_bulk(pool_->base() + off_,
                      sizeof(Header) + h->count * sizeof(uint64_t));
}

void BadPageTable::format_region(pmem::Pool* pool, uint64_t off) {
  pool_ = pool;
  off_ = off;
  std::memset(pool_->base() + off_, 0, kRegionBytes);
  Header* h = hdr();
  h->magic = kMagic;
  h->count = 0;
  seal_and_persist();
}

void BadPageTable::attach_region(pmem::Pool* pool, uint64_t off) {
  pool_ = pool;
  off_ = off;
  const Header* h = hdr();
  if (h->magic != kMagic || h->count > kCapacity || h->crc != table_crc(h->count)) {
    // Torn or corrupt table: quarantine records are advisory (the page
    // checksums themselves still fail on read), so start over empty
    // rather than trusting a table that does not checksum.
    format_region(pool, off);
  }
}

Status BadPageTable::add(uint64_t page) {
  LockGuard<SpinLock> g(mu_);
  if (pool_ == nullptr) {
    if (std::find(volatile_pages_.begin(), volatile_pages_.end(), page) ==
        volatile_pages_.end()) {
      volatile_pages_.push_back(page);
    }
    return Status::ok();
  }
  Header* h = hdr();
  uint64_t* s = slots();
  for (uint64_t i = 0; i < h->count; i++) {
    if (s[i] == page) return Status::ok();
  }
  if (h->count >= kCapacity) return Status::out_of_space("bad-page table full");
  s[h->count] = page;
  h->count++;
  seal_and_persist();
  return Status::ok();
}

bool BadPageTable::contains(uint64_t page) const {
  LockGuard<SpinLock> g(mu_);
  if (pool_ == nullptr) {
    return std::find(volatile_pages_.begin(), volatile_pages_.end(), page) !=
           volatile_pages_.end();
  }
  const Header* h = hdr();
  const uint64_t* s = slots();
  for (uint64_t i = 0; i < h->count; i++) {
    if (s[i] == page) return true;
  }
  return false;
}

void BadPageTable::clear() {
  LockGuard<SpinLock> g(mu_);
  if (pool_ == nullptr) {
    volatile_pages_.clear();
    return;
  }
  hdr()->count = 0;
  seal_and_persist();
}

uint64_t BadPageTable::count() const {
  LockGuard<SpinLock> g(mu_);
  return pool_ == nullptr ? volatile_pages_.size() : hdr()->count;
}

std::vector<uint64_t> BadPageTable::pages() const {
  LockGuard<SpinLock> g(mu_);
  if (pool_ == nullptr) return volatile_pages_;
  const uint64_t* s = slots();
  return std::vector<uint64_t>(s, s + hdr()->count);
}

}  // namespace dstore::fsmeta
