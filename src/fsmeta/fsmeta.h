// Metadata-path simulators for Figure 6: "metadata overhead of 4KB writes
// to a file" across xfs-DAX, ext4-DAX, NOVA, and DStore.
//
// Each simulator executes the PMEM traffic its filesystem's metadata commit
// path performs for one 4KB file write (append), against the emulated PMEM
// pool, so measured time reflects the same flush/fence/bandwidth costs the
// paper's Optane measurement reflects:
//
//   * ext4-DAX: a jbd2 journal transaction — descriptor block + metadata
//     block + commit block written and flushed to the journal (4KB blocks),
//     then the inode updated in place;
//   * xfs-DAX: a smaller delayed-logging iclog write (~1KB of log item
//     vectors) plus the inode update;
//   * NOVA: a 64B inode log entry appended + flushed, then the 8B log tail
//     pointer updated + flushed (two ordered persists);
//   * DStore: the in-DRAM metadata update (btree/meta-zone entries) plus a
//     single 64B logical log record with one flush+fence — the §4.3 path.
//
// All four also write the 4KB data itself (NOVA/xfs/ext4 to PMEM, DStore to
// the SSD); only the metadata cost is measured by the bench.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "pmem/pool.h"

namespace dstore::fsmeta {

class MetaPathSim {
 public:
  virtual ~MetaPathSim() = default;
  virtual const char* name() const = 0;
  // Perform the metadata commit for one 4KB append to `inode`; returns the
  // time spent in nanoseconds (measured, not modeled).
  virtual uint64_t metadata_update(uint64_t inode) = 0;
};

class Ext4DaxMeta final : public MetaPathSim {
 public:
  explicit Ext4DaxMeta(pmem::Pool* pool) : pool_(pool) {}
  const char* name() const override { return "ext4-DAX"; }
  uint64_t metadata_update(uint64_t inode) override;

 private:
  pmem::Pool* pool_;
  uint64_t journal_off_ = 0;
};

class XfsDaxMeta final : public MetaPathSim {
 public:
  explicit XfsDaxMeta(pmem::Pool* pool) : pool_(pool) {}
  const char* name() const override { return "xfs-DAX"; }
  uint64_t metadata_update(uint64_t inode) override;

 private:
  pmem::Pool* pool_;
  uint64_t log_off_ = 0;
};

class NovaMeta final : public MetaPathSim {
 public:
  explicit NovaMeta(pmem::Pool* pool) : pool_(pool) {}
  const char* name() const override { return "NOVA"; }
  uint64_t metadata_update(uint64_t inode) override;

 private:
  pmem::Pool* pool_;
  std::map<uint64_t, uint64_t> inode_tails_;  // inode -> log offset
};

class DStoreMeta final : public MetaPathSim {
 public:
  explicit DStoreMeta(pmem::Pool* pool) : pool_(pool) {}
  const char* name() const override { return "DStore"; }
  uint64_t metadata_update(uint64_t inode) override;

 private:
  pmem::Pool* pool_;
  std::map<uint64_t, uint64_t> dram_meta_;  // the DRAM frontend structures
  uint64_t log_off_ = 0;
};

}  // namespace dstore::fsmeta
