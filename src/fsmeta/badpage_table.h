// Persistent bad-page table: the quarantine tier of the integrity
// containment ladder (DESIGN.md §11).
//
// When a device page fails its checksum and read-repair from the PMEM log
// copy is impossible, the page number is quarantined here so later reads,
// the scrubber, and fsck report it as known-bad instead of re-diagnosing
// (and so the knowledge survives restarts — silent corruption does).
//
// Quarantine is *advisory*: the block stays in the circular block pool.
// Pulling it out would perturb the pool's pop/push order, and replay
// determinism (§4.3 — recovery re-allocating the identical blocks) is a
// stronger invariant than avoiding a handful of known-bad pages. A
// quarantined page that gets rewritten with fresh data is healthy again;
// clear() drops the quarantine wholesale (fsck --repair's job).
//
// Layout: one 4 KB PMEM region — a small header plus a flat uint64 page
// array, sealed by a CRC32C over the logical state. A torn or bit-flipped
// table re-formats empty on attach (losing quarantine records degrades
// reporting, never correctness: the page checksums still fail on read).
// When the caller's pool has no room past the engine layout, the table
// runs volatile: same API, no persistence.
#pragma once

#include <cstdint>
#include <vector>

#include "common/lockdep.h"
#include "common/status.h"
#include "pmem/pool.h"

namespace dstore::fsmeta {

class BadPageTable {
 public:
  static constexpr size_t kRegionBytes = 4096;
  static constexpr uint64_t kMagic = 0x4241445047455331ull;  // "BADPGES1"
  static constexpr uint64_t kCapacity = (kRegionBytes - 24) / sizeof(uint64_t);

  // Starts volatile (no backing region): API-compatible, nothing persists.
  BadPageTable() = default;

  // Format an empty table over [off, off + kRegionBytes) of `pool`.
  void format_region(pmem::Pool* pool, uint64_t off);
  // Attach to an existing table; a missing, torn, or corrupt region is
  // re-formatted empty (quarantine records are advisory, see above).
  void attach_region(pmem::Pool* pool, uint64_t off);

  bool persistent() const { return pool_ != nullptr; }

  // Quarantine `page` (an absolute device page number). Idempotent.
  // Returns out_of_space once the table is full — the caller still
  // surfaces corruption; only the durable record is lost.
  Status add(uint64_t page);
  bool contains(uint64_t page) const;
  // Drop every quarantine record (after a repair pass rewrote the pages).
  void clear();

  uint64_t count() const;
  std::vector<uint64_t> pages() const;

 private:
  struct Header {
    uint64_t magic;
    uint64_t count;
    uint32_t crc;  // CRC32C over count + pages[0..count), seeded with magic
    uint32_t pad;
  };
  static_assert(sizeof(Header) == 24, "badpage header layout");

  Header* hdr() const;
  uint64_t* slots() const;
  uint32_t table_crc(uint64_t count) const;
  void seal_and_persist();

  pmem::Pool* pool_ = nullptr;
  uint64_t off_ = 0;
  mutable SpinLock mu_{"fsmeta.badpage"};
  std::vector<uint64_t> volatile_pages_;  // used when pool_ == nullptr
};

}  // namespace dstore::fsmeta
