// Bounded retry of transient device errors, templated over the callable.
//
// The previous implementation took `const std::function<Status()>&`, which
// heap-allocates the capturing closure on every 4 KB IO — measurable on
// the data-plane hot path (see micro_primitives: BM_RetryIo*). Templating
// keeps the lambda on the stack and lets the happy path inline down to the
// single device call.
#pragma once

#include <utility>

#include "common/clock.h"
#include "common/status.h"

namespace dstore::ssd {

struct RetryPolicy {
  int max_retries = 3;        // retries after the initial attempt
  uint64_t backoff_ns = 2000; // attempt i sleeps backoff_ns << i
};

inline bool is_transient(const Status& s) {
  return s.code() == Code::kIoError || s.code() == Code::kBusy;
}

// Continue retrying an operation whose FIRST attempt already returned
// `first` (the async path: the original submission failed, each retry
// re-submits only that descriptor). `retries_issued`, if set, is bumped
// once per retry attempt.
template <typename F>
Status retry_after_failure(Status first, F&& io, const RetryPolicy& policy,
                           uint64_t* retries_issued = nullptr) {
  Status s = std::move(first);
  for (int attempt = 0; !s.is_ok() && is_transient(s) && attempt < policy.max_retries;
       attempt++) {
    if (retries_issued != nullptr) ++*retries_issued;
    spin_for_ns(policy.backoff_ns << attempt);
    s = io();
  }
  return s;
}

// Run `io`, retrying transient failures with exponential backoff.
template <typename F>
Status retry_transient(F&& io, const RetryPolicy& policy, uint64_t* retries_issued = nullptr) {
  return retry_after_failure(io(), std::forward<F>(io), policy, retries_issued);
}

}  // namespace dstore::ssd
