#include "ssd/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/clock.h"

namespace dstore::ssd {

namespace {
Status check_io(const DeviceConfig& cfg, uint64_t block, size_t offset, size_t len) {
  if (block >= cfg.num_blocks) return Status::invalid_argument("block out of range");
  if (offset + len > cfg.block_size()) return Status::invalid_argument("IO crosses block end");
  return Status::ok();
}

// An async descriptor may span contiguous blocks; only the linear media
// range has to fit (plus exactly one direction buffer must be set).
Status check_desc(const DeviceConfig& cfg, const IoDesc& d) {
  if ((d.wbuf != nullptr) == (d.rbuf != nullptr)) {
    return Status::invalid_argument("exactly one of wbuf/rbuf must be set");
  }
  if (d.block >= cfg.num_blocks || d.offset > cfg.block_size() ||
      d.block * cfg.block_size() + d.offset + d.len > cfg.capacity()) {
    return Status::invalid_argument("IO out of device range");
  }
  return Status::ok();
}
}  // namespace

// ---------------------------------------------------------------------------
// BlockDevice (base): synchronous fallback for devices without async IO
// ---------------------------------------------------------------------------

Result<uint64_t> BlockDevice::submit_io(const IoDesc& d) {
  DSTORE_RETURN_IF_ERROR(check_desc(config(), d));
  size_t bs = config().block_size();
  uint64_t block = d.block;
  size_t off = d.offset;
  size_t done = 0;
  while (done < d.len) {
    size_t n = std::min(bs - off, d.len - done);
    Status s = d.is_write()
                   ? write(block, off, static_cast<const char*>(d.wbuf) + done, n)
                   : read(block, off, static_cast<char*>(d.rbuf) + done, n);
    DSTORE_RETURN_IF_ERROR(s);
    done += n;
    off = 0;
    block++;
  }
  return now_ns();  // fully synchronous: already complete
}

// ---------------------------------------------------------------------------
// RamBlockDevice
// ---------------------------------------------------------------------------

RamBlockDevice::RamBlockDevice(DeviceConfig cfg) : cfg_(cfg) {
  media_ = std::make_unique<char[]>(cfg_.capacity());
  std::memset(media_.get(), 0, cfg_.capacity());
  if (!cfg_.power_loss_protection) {
    cache_view_ = std::make_unique<char[]>(cfg_.capacity());
    std::memset(cache_view_.get(), 0, cfg_.capacity());
  }
}

Status RamBlockDevice::write(uint64_t block, size_t offset, const void* data, size_t len) {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  auto r = submit_io(IoDesc{block, offset, len, data, nullptr});
  if (!r.is_ok()) return r.status();
  uint64_t now = now_ns();
  if (r.value() > now) spin_for_ns(r.value() - now);
  return Status::ok();
}

Status RamBlockDevice::read(uint64_t block, size_t offset, void* out, size_t len) const {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  auto r = const_cast<RamBlockDevice*>(this)->submit_io(IoDesc{block, offset, len, nullptr, out});
  if (!r.is_ok()) return r.status();
  uint64_t now = now_ns();
  if (r.value() > now) spin_for_ns(r.value() - now);
  return Status::ok();
}

Result<uint64_t> RamBlockDevice::submit_io(const IoDesc& d) {
  DSTORE_RETURN_IF_ERROR(check_desc(cfg_, d));
  size_t pos = d.block * cfg_.block_size() + d.offset;
  if (d.is_write()) {
    fault::Outcome fo = fault::hit(fault_, "ssd.write");
    if (fo.type == fault::FaultType::kError) return fo.status;
    uint64_t t0 = now_ns();  // after the hit, so an injected delay extends the IO
    if (fo.type == fault::FaultType::kTorn && !frozen()) {
      // Power fails while the page is being written: only the first `arg`
      // bytes reach non-volatile media, in both cache modes (the tear models
      // the media program itself being interrupted).
      size_t keep = std::min<size_t>(d.len, fo.arg);
      {
        std::lock_guard<std::mutex> g(mu_);
        std::memcpy(media_.get() + pos, d.wbuf, keep);
      }
      fault_->trigger_crash();
      return Status::io_error("injected power failure tore ssd write at block " +
                              std::to_string(d.block));
    }
    if (frozen()) return t0;  // acked into the void; host is dead too
    if (cfg_.power_loss_protection) {
      // Capacitor-backed cache: acknowledged == durable; a single buffer
      // suffices. Concurrent writers target disjoint blocks (the block pool
      // hands each block to one owner), so no lock is needed.
      std::memcpy(media_.get() + pos, d.wbuf, d.len);
    } else {
      std::lock_guard<std::mutex> g(mu_);
      std::memcpy(cache_view_.get() + pos, d.wbuf, d.len);
    }
    stats_.bytes_written.fetch_add(d.len, std::memory_order_relaxed);
    stats_.write_ios.fetch_add(1, std::memory_order_relaxed);
    if (bw_series_ != nullptr) bw_series_->add(d.len);
    // Fixed device latency runs in parallel (internal queue depth); the
    // bandwidth share queues on the shared media channel once the base
    // latency has elapsed, so background streams (compaction, checkpoint
    // flushes) contend with the frontend but concurrent in-flight IOs
    // hide each other's fixed cost.
    return bw_channel_.reserve_from(t0 + cfg_.latency.ssd_write_base_ns,
                                    cfg_.latency.ssd_per_kb_ns * (d.len / 1024));
  }
  fault::Outcome fo = fault::hit(fault_, "ssd.read");
  if (fo.type == fault::FaultType::kError) return fo.status;
  uint64_t t0 = now_ns();
  const char* src = cfg_.power_loss_protection ? media_.get() : cache_view_.get();
  if (!cfg_.power_loss_protection) {
    std::lock_guard<std::mutex> g(mu_);
    std::memcpy(d.rbuf, src + pos, d.len);
  } else {
    std::memcpy(d.rbuf, src + pos, d.len);
  }
  stats_.bytes_read.fetch_add(d.len, std::memory_order_relaxed);
  stats_.read_ios.fetch_add(1, std::memory_order_relaxed);
  return bw_channel_.reserve_from(t0 + cfg_.latency.ssd_read_base_ns,
                                  cfg_.latency.ssd_per_kb_ns * (d.len / 1024));
}

Status RamBlockDevice::flush_cache() {
  fault::Outcome fo = fault::hit(fault_, "ssd.flush");
  if (fo.type == fault::FaultType::kError) return fo.status;
  if (frozen()) return Status::ok();
  if (!cfg_.power_loss_protection) {
    std::lock_guard<std::mutex> g(mu_);
    std::memcpy(media_.get(), cache_view_.get(), cfg_.capacity());
  }
  return Status::ok();
}

void RamBlockDevice::crash() {
  frozen_.store(false, std::memory_order_release);
  if (cfg_.power_loss_protection) return;  // capacitors flush the cache
  std::lock_guard<std::mutex> g(mu_);
  std::memcpy(cache_view_.get(), media_.get(), cfg_.capacity());
}

void RamBlockDevice::set_fault_injector(fault::FaultInjector* inj) {
  fault_ = inj;
  if (inj != nullptr) {
    inj->add_crash_sink([this] { freeze(); });
  }
}

uint64_t RamBlockDevice::media_fingerprint() const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t h = 0xcbf29ce484222325ULL;
  const char* p = media_.get();
  for (size_t i = 0; i < cfg_.capacity(); i++) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// FileBlockDevice
// ---------------------------------------------------------------------------

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::open(const std::string& path,
                                                               DeviceConfig cfg, bool create) {
  int flags = O_RDWR | (create ? O_CREAT | O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::io_error("open " + path + " failed");
  if (create && ftruncate(fd, (off_t)cfg.capacity()) != 0) {
    ::close(fd);
    return Status::io_error("ftruncate " + path + " failed");
  }
  return std::unique_ptr<FileBlockDevice>(new FileBlockDevice(fd, cfg));
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockDevice::write(uint64_t block, size_t offset, const void* data, size_t len) {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  fault::Outcome fo = fault::hit(fault_, "ssd.write");
  if (fo.type == fault::FaultType::kError) return fo.status;
  off_t pos = (off_t)(block * cfg_.block_size() + offset);
  ssize_t n = pwrite(fd_, data, len, pos);
  if (n != (ssize_t)len) return Status::io_error("pwrite short/failed");
  stats_.bytes_written.fetch_add(len, std::memory_order_relaxed);
  stats_.write_ios.fetch_add(1, std::memory_order_relaxed);
  if (bw_series_ != nullptr) bw_series_->add(len);
  return Status::ok();
}

Status FileBlockDevice::read(uint64_t block, size_t offset, void* out, size_t len) const {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  fault::Outcome fo = fault::hit(fault_, "ssd.read");
  if (fo.type == fault::FaultType::kError) return fo.status;
  off_t pos = (off_t)(block * cfg_.block_size() + offset);
  ssize_t n = pread(fd_, out, len, pos);
  if (n != (ssize_t)len) return Status::io_error("pread short/failed");
  stats_.bytes_read.fetch_add(len, std::memory_order_relaxed);
  stats_.read_ios.fetch_add(1, std::memory_order_relaxed);
  return Status::ok();
}

Result<uint64_t> FileBlockDevice::submit_io(const IoDesc& d) {
  DSTORE_RETURN_IF_ERROR(check_desc(cfg_, d));
  off_t pos = (off_t)(d.block * cfg_.block_size() + d.offset);
  if (d.is_write()) {
    fault::Outcome fo = fault::hit(fault_, "ssd.write");
    if (fo.type == fault::FaultType::kError) return fo.status;
    ssize_t n = pwrite(fd_, d.wbuf, d.len, pos);
    if (n != (ssize_t)d.len) return Status::io_error("pwrite short/failed");
    stats_.bytes_written.fetch_add(d.len, std::memory_order_relaxed);
    stats_.write_ios.fetch_add(1, std::memory_order_relaxed);
    if (bw_series_ != nullptr) bw_series_->add(d.len);
  } else {
    fault::Outcome fo = fault::hit(fault_, "ssd.read");
    if (fo.type == fault::FaultType::kError) return fo.status;
    ssize_t n = pread(fd_, d.rbuf, d.len, pos);
    if (n != (ssize_t)d.len) return Status::io_error("pread short/failed");
    stats_.bytes_read.fetch_add(d.len, std::memory_order_relaxed);
    stats_.read_ios.fetch_add(1, std::memory_order_relaxed);
  }
  return now_ns();  // real pread/pwrite: complete on return
}

Status FileBlockDevice::flush_cache() {
  if (fdatasync(fd_) != 0) return Status::io_error("fdatasync failed");
  return Status::ok();
}

}  // namespace dstore::ssd
