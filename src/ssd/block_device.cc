#include "ssd/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/clock.h"

namespace dstore::ssd {

namespace {
Status check_io(const DeviceConfig& cfg, uint64_t block, size_t offset, size_t len) {
  if (block >= cfg.num_blocks) return Status::invalid_argument("block out of range");
  if (offset + len > cfg.block_size()) return Status::invalid_argument("IO crosses block end");
  return Status::ok();
}
}  // namespace

// ---------------------------------------------------------------------------
// RamBlockDevice
// ---------------------------------------------------------------------------

RamBlockDevice::RamBlockDevice(DeviceConfig cfg) : cfg_(cfg) {
  media_ = std::make_unique<char[]>(cfg_.capacity());
  std::memset(media_.get(), 0, cfg_.capacity());
  if (!cfg_.power_loss_protection) {
    cache_view_ = std::make_unique<char[]>(cfg_.capacity());
    std::memset(cache_view_.get(), 0, cfg_.capacity());
  }
}

Status RamBlockDevice::write(uint64_t block, size_t offset, const void* data, size_t len) {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  size_t pos = block * cfg_.block_size() + offset;
  fault::Outcome fo = fault::hit(fault_, "ssd.write");
  if (fo.type == fault::FaultType::kError) return fo.status;
  if (fo.type == fault::FaultType::kTorn && !frozen()) {
    // Power fails while the page is being written: only the first `arg`
    // bytes reach non-volatile media, in both cache modes (the tear models
    // the media program itself being interrupted).
    size_t keep = std::min<size_t>(len, fo.arg);
    {
      std::lock_guard<std::mutex> g(mu_);
      std::memcpy(media_.get() + pos, data, keep);
    }
    fault_->trigger_crash();
    return Status::io_error("injected power failure tore ssd write at block " +
                            std::to_string(block));
  }
  if (frozen()) return Status::ok();  // acked into the void; host is dead too
  if (cfg_.power_loss_protection) {
    // Capacitor-backed cache: acknowledged == durable; a single buffer
    // suffices. Concurrent writers target disjoint blocks (the block pool
    // hands each block to one owner), so no lock is needed.
    std::memcpy(media_.get() + pos, data, len);
  } else {
    std::lock_guard<std::mutex> g(mu_);
    std::memcpy(cache_view_.get() + pos, data, len);
  }
  stats_.bytes_written.fetch_add(len, std::memory_order_relaxed);
  stats_.write_ios.fetch_add(1, std::memory_order_relaxed);
  if (bw_series_ != nullptr) bw_series_->add(len);
  // Fixed device latency runs in parallel (internal queue depth); the
  // bandwidth share serializes on the shared media channel, so background
  // streams (compaction, checkpoint flushes) contend with the frontend.
  if (cfg_.latency.ssd_write_base_ns > 0) spin_for_ns(cfg_.latency.ssd_write_base_ns);
  bw_channel_.transfer(cfg_.latency.ssd_per_kb_ns * (len / 1024));
  return Status::ok();
}

Status RamBlockDevice::read(uint64_t block, size_t offset, void* out, size_t len) const {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  fault::Outcome fo = fault::hit(fault_, "ssd.read");
  if (fo.type == fault::FaultType::kError) return fo.status;
  size_t pos = block * cfg_.block_size() + offset;
  const char* src = cfg_.power_loss_protection ? media_.get() : cache_view_.get();
  if (!cfg_.power_loss_protection) {
    std::lock_guard<std::mutex> g(mu_);
    std::memcpy(out, src + pos, len);
  } else {
    std::memcpy(out, src + pos, len);
  }
  stats_.bytes_read.fetch_add(len, std::memory_order_relaxed);
  stats_.read_ios.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.latency.ssd_read_base_ns > 0) spin_for_ns(cfg_.latency.ssd_read_base_ns);
  bw_channel_.transfer(cfg_.latency.ssd_per_kb_ns * (len / 1024));
  return Status::ok();
}

Status RamBlockDevice::flush_cache() {
  fault::Outcome fo = fault::hit(fault_, "ssd.flush");
  if (fo.type == fault::FaultType::kError) return fo.status;
  if (frozen()) return Status::ok();
  if (!cfg_.power_loss_protection) {
    std::lock_guard<std::mutex> g(mu_);
    std::memcpy(media_.get(), cache_view_.get(), cfg_.capacity());
  }
  return Status::ok();
}

void RamBlockDevice::crash() {
  frozen_.store(false, std::memory_order_release);
  if (cfg_.power_loss_protection) return;  // capacitors flush the cache
  std::lock_guard<std::mutex> g(mu_);
  std::memcpy(cache_view_.get(), media_.get(), cfg_.capacity());
}

void RamBlockDevice::set_fault_injector(fault::FaultInjector* inj) {
  fault_ = inj;
  if (inj != nullptr) {
    inj->add_crash_sink([this] { freeze(); });
  }
}

uint64_t RamBlockDevice::media_fingerprint() const {
  std::lock_guard<std::mutex> g(mu_);
  uint64_t h = 0xcbf29ce484222325ULL;
  const char* p = media_.get();
  for (size_t i = 0; i < cfg_.capacity(); i++) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// FileBlockDevice
// ---------------------------------------------------------------------------

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::open(const std::string& path,
                                                               DeviceConfig cfg, bool create) {
  int flags = O_RDWR | (create ? O_CREAT | O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::io_error("open " + path + " failed");
  if (create && ftruncate(fd, (off_t)cfg.capacity()) != 0) {
    ::close(fd);
    return Status::io_error("ftruncate " + path + " failed");
  }
  return std::unique_ptr<FileBlockDevice>(new FileBlockDevice(fd, cfg));
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockDevice::write(uint64_t block, size_t offset, const void* data, size_t len) {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  fault::Outcome fo = fault::hit(fault_, "ssd.write");
  if (fo.type == fault::FaultType::kError) return fo.status;
  off_t pos = (off_t)(block * cfg_.block_size() + offset);
  ssize_t n = pwrite(fd_, data, len, pos);
  if (n != (ssize_t)len) return Status::io_error("pwrite short/failed");
  stats_.bytes_written.fetch_add(len, std::memory_order_relaxed);
  stats_.write_ios.fetch_add(1, std::memory_order_relaxed);
  if (bw_series_ != nullptr) bw_series_->add(len);
  return Status::ok();
}

Status FileBlockDevice::read(uint64_t block, size_t offset, void* out, size_t len) const {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  fault::Outcome fo = fault::hit(fault_, "ssd.read");
  if (fo.type == fault::FaultType::kError) return fo.status;
  off_t pos = (off_t)(block * cfg_.block_size() + offset);
  ssize_t n = pread(fd_, out, len, pos);
  if (n != (ssize_t)len) return Status::io_error("pread short/failed");
  stats_.bytes_read.fetch_add(len, std::memory_order_relaxed);
  stats_.read_ios.fetch_add(1, std::memory_order_relaxed);
  return Status::ok();
}

Status FileBlockDevice::flush_cache() {
  if (fdatasync(fd_) != 0) return Status::io_error("fdatasync failed");
  return Status::ok();
}

}  // namespace dstore::ssd
