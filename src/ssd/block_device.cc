#include "ssd/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/clock.h"
#include "common/crc32c.h"

namespace dstore::ssd {

namespace {
// Sidecar tag encoding: 0 = page never written (unverifiable), otherwise
// the high marker bit plus the page's location-seeded CRC32C.
constexpr uint64_t kTagKnown = 1ull << 32;

inline uint64_t make_tag(const char* page, size_t page_size, uint64_t seed_page) {
  return kTagKnown | crc32c(page, page_size, seed_page);
}

// Where a misdirected write actually lands: the whole transfer shifts
// `max(arg,1)` blocks, wrapped so the span still fits the device (and never
// back onto the intended block — that would be a correct write).
uint64_t misdirect_block(const DeviceConfig& cfg, uint64_t block, size_t offset, size_t len,
                         uint64_t arg) {
  size_t span = (offset + len + cfg.block_size() - 1) / cfg.block_size();
  if (span == 0) span = 1;
  if (span >= cfg.num_blocks) return block;  // nowhere else to land
  uint64_t slots = cfg.num_blocks - span + 1;
  uint64_t wrong = (block + std::max<uint64_t>(arg, 1)) % slots;
  if (wrong == block) wrong = (wrong + 1) % slots;
  return wrong;
}

Status check_io(const DeviceConfig& cfg, uint64_t block, size_t offset, size_t len) {
  if (block >= cfg.num_blocks) return Status::invalid_argument("block out of range");
  if (offset + len > cfg.block_size()) return Status::invalid_argument("IO crosses block end");
  return Status::ok();
}

// An async descriptor may span contiguous blocks; only the linear media
// range has to fit (plus exactly one direction buffer must be set).
Status check_desc(const DeviceConfig& cfg, const IoDesc& d) {
  if ((d.wbuf != nullptr) == (d.rbuf != nullptr)) {
    return Status::invalid_argument("exactly one of wbuf/rbuf must be set");
  }
  if (d.block >= cfg.num_blocks || d.offset > cfg.block_size() ||
      d.block * cfg.block_size() + d.offset + d.len > cfg.capacity()) {
    return Status::invalid_argument("IO out of device range");
  }
  return Status::ok();
}
}  // namespace

// ---------------------------------------------------------------------------
// BlockDevice (base): synchronous fallback for devices without async IO
// ---------------------------------------------------------------------------

Result<uint64_t> BlockDevice::submit_io(const IoDesc& d) {
  DSTORE_RETURN_IF_ERROR(check_desc(config(), d));
  size_t bs = config().block_size();
  uint64_t block = d.block;
  size_t off = d.offset;
  size_t done = 0;
  while (done < d.len) {
    size_t n = std::min(bs - off, d.len - done);
    Status s = d.is_write()
                   ? write(block, off, static_cast<const char*>(d.wbuf) + done, n)
                   : read(block, off, static_cast<char*>(d.rbuf) + done, n);
    DSTORE_RETURN_IF_ERROR(s);
    done += n;
    off = 0;
    block++;
  }
  return now_ns();  // fully synchronous: already complete
}

// ---------------------------------------------------------------------------
// RamBlockDevice
// ---------------------------------------------------------------------------

RamBlockDevice::RamBlockDevice(DeviceConfig cfg) : cfg_(cfg) {
  media_ = std::make_unique<char[]>(cfg_.capacity());
  std::memset(media_.get(), 0, cfg_.capacity());
  if (!cfg_.power_loss_protection) {
    cache_view_ = std::make_unique<char[]>(cfg_.capacity());
    std::memset(cache_view_.get(), 0, cfg_.capacity());
  }
  if (cfg_.checksum_pages) {
    size_t npages = cfg_.capacity() / cfg_.page_size;
    tags_media_.assign(npages, 0);  // fresh media: every page unknown
    if (!cfg_.power_loss_protection) tags_cache_.assign(npages, 0);
  }
}

void RamBlockDevice::retag_pages(const char* view, std::vector<uint64_t>& tags, uint64_t pos,
                                 size_t len, int64_t seed_delta) {
  if (!cfg_.checksum_pages || len == 0) return;
  size_t ps = cfg_.page_size;
  uint64_t first = pos / ps;
  uint64_t last = (pos + len - 1) / ps;
  for (uint64_t p = first; p <= last; p++) {
    tags[p] = make_tag(view + p * ps, ps, static_cast<uint64_t>(static_cast<int64_t>(p) + seed_delta));
  }
}

Status RamBlockDevice::verify_view(const char* view, const std::vector<uint64_t>& tags,
                                   uint64_t pos, size_t len, std::vector<uint64_t>* bad) const {
  if (!cfg_.checksum_pages || len == 0) return Status::ok();
  size_t ps = cfg_.page_size;
  uint64_t first = pos / ps;
  uint64_t last = (pos + len - 1) / ps;
  Status s = Status::ok();
  for (uint64_t p = first; p <= last; p++) {
    uint64_t tag = tags[p];
    if (tag == 0) continue;  // never written: nothing to hold it to
    if (crc32c(view + p * ps, ps, p) == static_cast<uint32_t>(tag)) continue;
    stats_.read_crc_failures.fetch_add(1, std::memory_order_relaxed);
    s = Status::corruption("ssd page " + std::to_string(p) + " checksum mismatch");
    if (bad == nullptr) return s;  // read path: fail fast
    bad->push_back(p);             // scrub path: report every bad page
  }
  return s;
}

Status RamBlockDevice::write(uint64_t block, size_t offset, const void* data, size_t len) {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  auto r = submit_io(IoDesc{block, offset, len, data, nullptr});
  if (!r.is_ok()) return r.status();
  uint64_t now = now_ns();
  if (r.value() > now) spin_for_ns(r.value() - now);
  return Status::ok();
}

Status RamBlockDevice::read(uint64_t block, size_t offset, void* out, size_t len) const {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  auto r = const_cast<RamBlockDevice*>(this)->submit_io(IoDesc{block, offset, len, nullptr, out});
  if (!r.is_ok()) return r.status();
  uint64_t now = now_ns();
  if (r.value() > now) spin_for_ns(r.value() - now);
  return Status::ok();
}

Result<uint64_t> RamBlockDevice::submit_io(const IoDesc& d) {
  DSTORE_RETURN_IF_ERROR(check_desc(cfg_, d));
  size_t pos = d.block * cfg_.block_size() + d.offset;
  if (d.is_write()) {
    fault::Outcome fo = fault::hit(fault_, "ssd.write");
    if (fo.type == fault::FaultType::kError) return fo.status;
    uint64_t t0 = now_ns();  // after the hit, so an injected delay extends the IO
    if (fo.type == fault::FaultType::kTorn && !frozen()) {
      // Power fails while the page is being written: only the first `arg`
      // bytes reach non-volatile media, in both cache modes (the tear models
      // the media program itself being interrupted).
      size_t keep = std::min<size_t>(d.len, fo.arg);
      {
        MutexGuard g(mu_);
        std::memcpy(media_.get() + pos, d.wbuf, keep);
      }
      fault_->trigger_crash();
      return Status::io_error("injected power failure tore ssd write at block " +
                              std::to_string(d.block));
    }
    if (frozen()) return t0;  // acked into the void; host is dead too
    // Silent-corruption injection. A misdirected write lands the whole
    // transfer at the wrong LBA but carries the tags of the LBA the host
    // *claimed* (T10-DIF style), so the clobbered pages fail their
    // location-seeded check on read while the intended LBA silently keeps
    // its old contents. A write-side bit flip lands after the page is
    // checksummed: tag and media disagree from then on.
    uint64_t land = pos;
    int64_t seed_delta = 0;
    if (fo.type == fault::FaultType::kMisdirectedWrite) {
      uint64_t wrong = misdirect_block(cfg_, d.block, d.offset, d.len, fo.arg);
      land = wrong * cfg_.block_size() + d.offset;
      size_t ps = cfg_.page_size;
      seed_delta = static_cast<int64_t>(pos / ps) - static_cast<int64_t>(land / ps);
    }
    if (cfg_.power_loss_protection) {
      // Capacitor-backed cache: acknowledged == durable; a single buffer
      // suffices. Concurrent writers target disjoint blocks (the block pool
      // hands each block to one owner), so no lock is needed.
      std::memcpy(media_.get() + land, d.wbuf, d.len);
      retag_pages(media_.get(), tags_media_, land, d.len, seed_delta);
      if (fo.type == fault::FaultType::kBitFlipSsdPage) {
        uint64_t bit = fo.arg % (cfg_.page_size * 8);
        media_[(land / cfg_.page_size) * cfg_.page_size + bit / 8] ^=
            static_cast<char>(1u << (bit % 8));
      }
    } else {
      MutexGuard g(mu_);
      std::memcpy(cache_view_.get() + land, d.wbuf, d.len);
      retag_pages(cache_view_.get(), tags_cache_, land, d.len, seed_delta);
      if (fo.type == fault::FaultType::kBitFlipSsdPage) {
        uint64_t bit = fo.arg % (cfg_.page_size * 8);
        cache_view_[(land / cfg_.page_size) * cfg_.page_size + bit / 8] ^=
            static_cast<char>(1u << (bit % 8));
      }
    }
    stats_.bytes_written.fetch_add(d.len, std::memory_order_relaxed);
    stats_.write_ios.fetch_add(1, std::memory_order_relaxed);
    if (bw_series_ != nullptr) bw_series_->add(d.len);
    // Fixed device latency runs in parallel (internal queue depth); the
    // bandwidth share queues on the shared media channel once the base
    // latency has elapsed, so background streams (compaction, checkpoint
    // flushes) contend with the frontend but concurrent in-flight IOs
    // hide each other's fixed cost.
    return bw_channel_.reserve_from(t0 + cfg_.latency.ssd_write_base_ns,
                                    cfg_.latency.ssd_per_kb_ns * (d.len / 1024));
  }
  fault::Outcome fo = fault::hit(fault_, "ssd.read");
  if (fo.type == fault::FaultType::kError) return fo.status;
  uint64_t t0 = now_ns();
  char* src = cfg_.power_loss_protection ? media_.get() : cache_view_.get();
  std::vector<uint64_t>& tags = cfg_.power_loss_protection ? tags_media_ : tags_cache_;
  Status verdict = Status::ok();
  {
    UniqueLock g(mu_, std::defer_lock);
    if (!cfg_.power_loss_protection) g.lock();
    if (fo.type == fault::FaultType::kBitFlipSsdPage) {
      // At-rest rot on the page the read touches first: flip it on media,
      // behind the sidecar's back, before the copy-out.
      uint64_t bit = fo.arg % (cfg_.page_size * 8);
      src[(pos / cfg_.page_size) * cfg_.page_size + bit / 8] ^=
          static_cast<char>(1u << (bit % 8));
    }
    std::memcpy(d.rbuf, src + pos, d.len);
    // Verify every page the transfer overlaps (full pages from media, so a
    // flip outside the requested byte range is still caught).
    verdict = verify_view(src, tags, pos, d.len, nullptr);
  }
  if (!verdict.is_ok()) return verdict;
  stats_.bytes_read.fetch_add(d.len, std::memory_order_relaxed);
  stats_.read_ios.fetch_add(1, std::memory_order_relaxed);
  return bw_channel_.reserve_from(t0 + cfg_.latency.ssd_read_base_ns,
                                  cfg_.latency.ssd_per_kb_ns * (d.len / 1024));
}

Status RamBlockDevice::verify_pages(uint64_t block, size_t offset, size_t len,
                                    std::vector<uint64_t>* bad_pages) {
  if (block >= cfg_.num_blocks ||
      block * cfg_.block_size() + offset + len > cfg_.capacity()) {
    return Status::invalid_argument("verify_pages out of device range");
  }
  if (!cfg_.checksum_pages || len == 0) return Status::ok();
  uint64_t pos = block * cfg_.block_size() + offset;
  uint64_t t0 = now_ns();
  Status s;
  {
    UniqueLock g(mu_, std::defer_lock);
    if (!cfg_.power_loss_protection) g.lock();
    const char* view = cfg_.power_loss_protection ? media_.get() : cache_view_.get();
    const std::vector<uint64_t>& tags =
        cfg_.power_loss_protection ? tags_media_ : tags_cache_;
    s = verify_view(view, tags, pos, len, bad_pages);
  }
  stats_.bytes_read.fetch_add(len, std::memory_order_relaxed);
  stats_.read_ios.fetch_add(1, std::memory_order_relaxed);
  // A scrub pass is a media read: queue its bandwidth share on the shared
  // channel and wait it out, so scrubbing self-limits against frontend IO.
  uint64_t deadline = bw_channel_.reserve_from(t0 + cfg_.latency.ssd_read_base_ns,
                                               cfg_.latency.ssd_per_kb_ns * (len / 1024));
  uint64_t now = now_ns();
  if (deadline > now) spin_for_ns(deadline - now);
  return s;
}

void RamBlockDevice::flip_media_bit(uint64_t byte_off, uint32_t bit) {
  MutexGuard g(mu_);
  char mask = static_cast<char>(1u << (bit % 8));
  media_[byte_off] ^= mask;
  if (cache_view_ != nullptr) cache_view_[byte_off] ^= mask;
}

Status RamBlockDevice::flush_cache() {
  fault::Outcome fo = fault::hit(fault_, "ssd.flush");
  if (fo.type == fault::FaultType::kError) return fo.status;
  if (frozen()) return Status::ok();
  if (!cfg_.power_loss_protection) {
    MutexGuard g(mu_);
    std::memcpy(media_.get(), cache_view_.get(), cfg_.capacity());
    tags_media_ = tags_cache_;  // sidecar flushes with the data it covers
  }
  return Status::ok();
}

void RamBlockDevice::crash() {
  frozen_.store(false, std::memory_order_release);
  if (cfg_.power_loss_protection) return;  // capacitors flush the cache
  MutexGuard g(mu_);
  std::memcpy(cache_view_.get(), media_.get(), cfg_.capacity());
  tags_cache_ = tags_media_;  // cached-but-unflushed tags die with the cache
}

void RamBlockDevice::set_fault_injector(fault::FaultInjector* inj) {
  fault_ = inj;
  if (inj != nullptr) {
    inj->add_crash_sink([this] { freeze(); });
  }
}

uint64_t RamBlockDevice::media_fingerprint() const {
  MutexGuard g(mu_);
  uint64_t h = 0xcbf29ce484222325ULL;
  const char* p = media_.get();
  for (size_t i = 0; i < cfg_.capacity(); i++) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// FileBlockDevice
// ---------------------------------------------------------------------------

namespace {
// Sidecar file layout: header + one uint64 tag per page.
struct SidecarHeader {
  uint64_t magic;
  uint64_t page_size;
  uint64_t npages;
};
constexpr uint64_t kSidecarMagic = 0x3143524354534444ull;  // "DDSTCRC1"
}  // namespace

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::open(const std::string& path,
                                                               DeviceConfig cfg, bool create) {
  int flags = O_RDWR | (create ? O_CREAT | O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::io_error("open " + path + " failed");
  if (create && ftruncate(fd, (off_t)cfg.capacity()) != 0) {
    ::close(fd);
    return Status::io_error("ftruncate " + path + " failed");
  }
  auto dev = std::unique_ptr<FileBlockDevice>(new FileBlockDevice(fd, path, cfg));
  if (cfg.checksum_pages) {
    dev->tags_.assign(cfg.capacity() / cfg.page_size, 0);
    if (!create) dev->load_sidecar();
  }
  return dev;
}

void FileBlockDevice::load_sidecar() {
  int fd = ::open((path_ + ".crc").c_str(), O_RDONLY);
  if (fd < 0) return;  // no sidecar: legacy store, every page unknown
  SidecarHeader h{};
  bool ok = pread(fd, &h, sizeof(h), 0) == (ssize_t)sizeof(h) && h.magic == kSidecarMagic &&
            h.page_size == cfg_.page_size && h.npages == tags_.size();
  if (ok) {
    size_t bytes = tags_.size() * sizeof(uint64_t);
    ok = pread(fd, tags_.data(), bytes, sizeof(h)) == (ssize_t)bytes;
    if (!ok) std::fill(tags_.begin(), tags_.end(), 0);
  }
  ::close(fd);
}

void FileBlockDevice::save_sidecar() {
  if (!cfg_.checksum_pages || !tags_dirty_) return;
  std::string tmp = path_ + ".crc";
  int fd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  SidecarHeader h{kSidecarMagic, cfg_.page_size, tags_.size()};
  bool ok = pwrite(fd, &h, sizeof(h), 0) == (ssize_t)sizeof(h);
  size_t bytes = tags_.size() * sizeof(uint64_t);
  ok = ok && pwrite(fd, tags_.data(), bytes, sizeof(h)) == (ssize_t)bytes;
  if (ok) tags_dirty_ = false;
  ::close(fd);
}

FileBlockDevice::~FileBlockDevice() {
  save_sidecar();
  if (fd_ >= 0) ::close(fd_);
}

void FileBlockDevice::retag_range(uint64_t pos, size_t len, const char* buf, int64_t seed_delta) {
  if (!cfg_.checksum_pages || len == 0) return;
  size_t ps = cfg_.page_size;
  uint64_t first = pos / ps;
  uint64_t last = (pos + len - 1) / ps;
  std::vector<char> tmp;
  for (uint64_t p = first; p <= last; p++) {
    uint64_t seed = static_cast<uint64_t>(static_cast<int64_t>(p) + seed_delta);
    const char* page;
    if (p * ps >= pos && (p + 1) * ps <= pos + len) {
      page = buf + (p * ps - pos);  // fully covered by the caller's buffer
    } else {
      // Boundary page: the result on media mixes old and new bytes.
      tmp.resize(ps);
      if (pread(fd_, tmp.data(), ps, (off_t)(p * ps)) != (ssize_t)ps) continue;
      page = tmp.data();
    }
    tags_[p] = make_tag(page, ps, seed);
  }
  tags_dirty_ = true;
}

Status FileBlockDevice::verify_range(uint64_t pos, size_t len, const char* buf,
                                     std::vector<uint64_t>* bad) const {
  if (!cfg_.checksum_pages || len == 0) return Status::ok();
  size_t ps = cfg_.page_size;
  uint64_t first = pos / ps;
  uint64_t last = (pos + len - 1) / ps;
  std::vector<char> tmp;
  Status s = Status::ok();
  for (uint64_t p = first; p <= last; p++) {
    uint64_t tag = tags_[p];
    if (tag == 0) continue;
    const char* page;
    if (buf != nullptr && p * ps >= pos && (p + 1) * ps <= pos + len) {
      page = buf + (p * ps - pos);
    } else {
      tmp.resize(ps);
      if (pread(fd_, tmp.data(), ps, (off_t)(p * ps)) != (ssize_t)ps) {
        return Status::io_error("pread for page verification failed");
      }
      page = tmp.data();
    }
    if (crc32c(page, ps, p) == static_cast<uint32_t>(tag)) continue;
    stats_.read_crc_failures.fetch_add(1, std::memory_order_relaxed);
    s = Status::corruption("ssd page " + std::to_string(p) + " checksum mismatch");
    if (bad == nullptr) return s;
    bad->push_back(p);
  }
  return s;
}

Status FileBlockDevice::do_write(uint64_t block, size_t offset, const void* data, size_t len,
                                 const fault::Outcome& fo) {
  size_t ps = cfg_.page_size;
  uint64_t pos = block * cfg_.block_size() + offset;
  uint64_t land = pos;
  int64_t seed_delta = 0;
  if (fo.type == fault::FaultType::kMisdirectedWrite) {
    uint64_t wrong = misdirect_block(cfg_, block, offset, len, fo.arg);
    land = wrong * cfg_.block_size() + offset;
    seed_delta = static_cast<int64_t>(pos / ps) - static_cast<int64_t>(land / ps);
  }
  ssize_t n = pwrite(fd_, data, len, (off_t)land);
  if (n != (ssize_t)len) return Status::io_error("pwrite short/failed");
  retag_range(land, len, static_cast<const char*>(data), seed_delta);
  if (fo.type == fault::FaultType::kBitFlipSsdPage) {
    uint64_t bit = fo.arg % (ps * 8);
    off_t bpos = (off_t)((land / ps) * ps + bit / 8);
    char c;
    if (pread(fd_, &c, 1, bpos) == 1) {
      c ^= static_cast<char>(1u << (bit % 8));
      (void)!pwrite(fd_, &c, 1, bpos);
    }
  }
  stats_.bytes_written.fetch_add(len, std::memory_order_relaxed);
  stats_.write_ios.fetch_add(1, std::memory_order_relaxed);
  if (bw_series_ != nullptr) bw_series_->add(len);
  return Status::ok();
}

Status FileBlockDevice::write(uint64_t block, size_t offset, const void* data, size_t len) {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  fault::Outcome fo = fault::hit(fault_, "ssd.write");
  if (fo.type == fault::FaultType::kError) return fo.status;
  return do_write(block, offset, data, len, fo);
}

Status FileBlockDevice::read(uint64_t block, size_t offset, void* out, size_t len) const {
  DSTORE_RETURN_IF_ERROR(check_io(cfg_, block, offset, len));
  fault::Outcome fo = fault::hit(fault_, "ssd.read");
  if (fo.type == fault::FaultType::kError) return fo.status;
  uint64_t pos = block * cfg_.block_size() + offset;
  if (fo.type == fault::FaultType::kBitFlipSsdPage) {
    // At-rest rot: flip on disk, behind the sidecar, before the copy-out.
    uint64_t bit = fo.arg % (cfg_.page_size * 8);
    off_t bpos = (off_t)((pos / cfg_.page_size) * cfg_.page_size + bit / 8);
    char c;
    if (pread(fd_, &c, 1, bpos) == 1) {
      c ^= static_cast<char>(1u << (bit % 8));
      (void)!pwrite(fd_, &c, 1, bpos);
    }
  }
  ssize_t n = pread(fd_, out, len, (off_t)pos);
  if (n != (ssize_t)len) return Status::io_error("pread short/failed");
  DSTORE_RETURN_IF_ERROR(verify_range(pos, len, static_cast<const char*>(out), nullptr));
  stats_.bytes_read.fetch_add(len, std::memory_order_relaxed);
  stats_.read_ios.fetch_add(1, std::memory_order_relaxed);
  return Status::ok();
}

Result<uint64_t> FileBlockDevice::submit_io(const IoDesc& d) {
  DSTORE_RETURN_IF_ERROR(check_desc(cfg_, d));
  if (d.is_write()) {
    fault::Outcome fo = fault::hit(fault_, "ssd.write");
    if (fo.type == fault::FaultType::kError) return fo.status;
    DSTORE_RETURN_IF_ERROR(do_write(d.block, d.offset, d.wbuf, d.len, fo));
  } else {
    fault::Outcome fo = fault::hit(fault_, "ssd.read");
    if (fo.type == fault::FaultType::kError) return fo.status;
    uint64_t pos = d.block * cfg_.block_size() + d.offset;
    if (fo.type == fault::FaultType::kBitFlipSsdPage) {
      uint64_t bit = fo.arg % (cfg_.page_size * 8);
      off_t bpos = (off_t)((pos / cfg_.page_size) * cfg_.page_size + bit / 8);
      char c;
      if (pread(fd_, &c, 1, bpos) == 1) {
        c ^= static_cast<char>(1u << (bit % 8));
        (void)!pwrite(fd_, &c, 1, bpos);
      }
    }
    ssize_t n = pread(fd_, d.rbuf, d.len, (off_t)pos);
    if (n != (ssize_t)d.len) return Status::io_error("pread short/failed");
    DSTORE_RETURN_IF_ERROR(verify_range(pos, d.len, static_cast<const char*>(d.rbuf), nullptr));
    stats_.bytes_read.fetch_add(d.len, std::memory_order_relaxed);
    stats_.read_ios.fetch_add(1, std::memory_order_relaxed);
  }
  return now_ns();  // real pread/pwrite: complete on return
}

Status FileBlockDevice::verify_pages(uint64_t block, size_t offset, size_t len,
                                     std::vector<uint64_t>* bad_pages) {
  if (block >= cfg_.num_blocks ||
      block * cfg_.block_size() + offset + len > cfg_.capacity()) {
    return Status::invalid_argument("verify_pages out of device range");
  }
  if (!cfg_.checksum_pages || len == 0) return Status::ok();
  uint64_t pos = block * cfg_.block_size() + offset;
  Status s = verify_range(pos, len, nullptr, bad_pages);
  stats_.bytes_read.fetch_add(len, std::memory_order_relaxed);
  stats_.read_ios.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status FileBlockDevice::flush_cache() {
  if (fdatasync(fd_) != 0) return Status::io_error("fdatasync failed");
  save_sidecar();
  return Status::ok();
}

}  // namespace dstore::ssd
