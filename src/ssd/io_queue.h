// IoQueue — a simulated NVMe submission/completion queue-pair over a
// BlockDevice.
//
// Real NVMe devices (the paper's P4800X) reward request overlap far more
// than per-request cost shaving: at QD >= 16 the device pipelines the
// fixed per-command latency internally and only the media bandwidth
// serializes. DStore's data plane spends ~88% of a put here (Table 3), so
// this layer is where the throughput lives.
//
// Model: submit() performs the IO's media effect immediately through
// BlockDevice::submit_io — which charges NO inline latency — and records
// the absolute deadline at which the emulated device would complete the
// transfer (fixed base latency parallel across in-flight IOs; bandwidth
// shares still serialized on the device's shared media channel, so the
// channel saturates exactly as before). The queue depth bounds outstanding
// submissions: submitting into a full queue blocks until the earliest
// deadline passes, exactly like ringing a full hardware SQ doorbell.
// Completions are reaped by poll() (non-blocking) or wait_all() (blocking);
// per-descriptor completion statuses let callers re-submit only the
// descriptors that failed (bounded-retry policy lives in the caller).
//
// Every IO still passes through the ssd.write / ssd.read fault points at
// submission time, in submission order — so single-threaded fault-plan
// schedules stay deterministic, and a crash fired mid-batch freezes the
// device with the batch's earlier descriptors already in its (PLP or not)
// write cache and the later ones acked into the void, which is precisely
// what losing power with a deep queue does to a real drive.
//
// A queue-pair is cheap (one vector) and single-owner by design — create
// one per operation or per thread, mirroring per-core NVMe queue-pairs;
// it performs no internal locking.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ssd/block_device.h"

namespace dstore::ssd {

class IoQueue {
 public:
  // `depth` == 1 degenerates to today's synchronous per-IO behaviour:
  // every submit waits out the previous IO's full latency first.
  IoQueue(BlockDevice* dev, uint32_t depth)
      : dev_(dev), depth_(depth == 0 ? 1 : depth) {}
  IoQueue(const IoQueue&) = delete;
  IoQueue& operator=(const IoQueue&) = delete;

  // Submit one descriptor; blocks (reaping internally) while `depth`
  // submissions are outstanding. Returns the submission id used to query
  // its completion status. An IO that fails at submission (injected
  // transient error, bounds) completes immediately with that status and
  // never occupies a queue slot.
  size_t submit(const IoDesc& d);

  // Reap any completions whose deadline has passed; returns the number of
  // submissions still in flight. Never blocks.
  size_t poll();

  // Block until every outstanding submission has completed.
  void wait_all();

  // Synchronously re-run submission `id`'s descriptor (the per-descriptor
  // retry path: only the failed IO is re-issued, and it pays its device
  // latency again). Returns — and re-records — the new completion status.
  Status resubmit(size_t id);

  size_t size() const { return subs_.size(); }
  uint32_t depth() const { return depth_; }
  size_t in_flight() const { return inflight_; }
  // Descriptors re-issued through resubmit() over this queue's lifetime.
  size_t resubmits() const { return resubmits_; }
  // Completions that carried a page-checksum failure (Status corruption).
  // The device verifies the sidecar before posting the completion, so this
  // counts every read whose data could not be trusted.
  size_t crc_failures() const { return crc_failures_; }

  // Completion status of submission `id`. Only meaningful once reaped
  // (poll()/wait_all()); an unreaped in-flight IO reads as ok.
  const Status& status_of(size_t id) const { return subs_[id].status; }
  const IoDesc& desc_of(size_t id) const { return subs_[id].desc; }

  // True once every submission has been reaped with an ok status.
  bool all_ok() const;

  // True when any completed submission carries a failure. In this emulation
  // errors land at submission time (the media effect is immediate); a queue
  // with no failure observed here is guaranteed to drain clean — the
  // outstanding deadlines are pure latency. This is what lets an early-ack
  // caller commit before wait_all() and park the queue.
  bool any_failed() const {
    for (const auto& s : subs_) {
      if (s.done && !s.status.is_ok()) return true;
    }
    return false;
  }

 private:
  struct Sub {
    IoDesc desc;
    uint64_t deadline = 0;  // absolute now_ns() completion time
    Status status;
    bool done = false;
  };

  // Reap what is ready; if still at/above `target` in flight, sleep until
  // the earliest outstanding deadline and reap again.
  void reap_until_below(size_t target);

  BlockDevice* dev_;
  uint32_t depth_;
  std::vector<Sub> subs_;
  size_t inflight_ = 0;
  size_t resubmits_ = 0;
  size_t crc_failures_ = 0;
};

}  // namespace dstore::ssd
