#include "ssd/io_queue.h"

#include <algorithm>

#include "common/clock.h"

namespace dstore::ssd {

size_t IoQueue::submit(const IoDesc& d) {
  reap_until_below(depth_);
  Sub sub;
  sub.desc = d;
  auto r = dev_->submit_io(d);
  if (r.is_ok()) {
    sub.deadline = r.value();
    if (sub.deadline <= now_ns()) {
      sub.done = true;  // completed inline (zero-latency device, frozen, ...)
    } else {
      inflight_++;
    }
  } else {
    // Errored at submission: the device posts the completion immediately.
    // A checksum-failed read completes here too — the device verifies the
    // sidecar before acking, so the bad completion is visible the moment
    // the caller reaps it, never after the data has been consumed.
    sub.status = r.status();
    sub.done = true;
    if (sub.status.code() == Code::kCorruption) crc_failures_++;
  }
  subs_.push_back(std::move(sub));
  return subs_.size() - 1;
}

size_t IoQueue::poll() {
  uint64_t now = now_ns();
  for (Sub& s : subs_) {
    if (!s.done && s.deadline <= now) {
      s.done = true;
      inflight_--;
    }
  }
  return inflight_;
}

void IoQueue::reap_until_below(size_t target) {
  while (poll() >= target) {
    uint64_t earliest = UINT64_MAX;
    for (const Sub& s : subs_) {
      if (!s.done) earliest = std::min(earliest, s.deadline);
    }
    uint64_t now = now_ns();
    if (earliest != UINT64_MAX && earliest > now) spin_for_ns(earliest - now);
  }
}

void IoQueue::wait_all() { reap_until_below(1); }

Status IoQueue::resubmit(size_t id) {
  resubmits_++;
  Sub& sub = subs_[id];
  auto r = dev_->submit_io(sub.desc);
  if (!r.is_ok()) {
    sub.status = r.status();
    sub.done = true;
    if (sub.status.code() == Code::kCorruption) crc_failures_++;
    return sub.status;
  }
  uint64_t now = now_ns();
  if (r.value() > now) spin_for_ns(r.value() - now);
  sub.status = Status::ok();
  sub.done = true;
  return sub.status;
}

bool IoQueue::all_ok() const {
  for (const Sub& s : subs_) {
    if (!s.done || !s.status.is_ok()) return false;
  }
  return true;
}

}  // namespace dstore::ssd
