// Emulated NVMe block device — DStore's data plane (§4.2).
//
// DStore stores object data purely on SSD; pages are grouped into blocks,
// the unit of data allocation. The paper's testbed used an Intel P4800X;
// we emulate the properties DStore depends on:
//
//  * block-granular read/write with NVMe-like injected latency
//    (~9 us for a 4 KB write, Table 3);
//  * a device-internal DRAM write cache with enhanced power-loss data
//    protection (§4.2/§4.5): an acknowledged write is durable because
//    device capacitors flush the cache on power failure. DStore
//    transparently leverages this, so with PLP enabled an acknowledged
//    write survives `crash()`. With PLP disabled, un-flushed writes are
//    lost on crash — used by tests to show why DStore requires the
//    capacitor-backed cache (or an explicit device flush) for its
//    commit-implies-durable invariant.
//
// Implementations: RamBlockDevice (memory-backed, crash-simulating,
// used by tests and benches) and FileBlockDevice (file-backed, for the
// examples that want real persistence across process restarts).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bandwidth.h"
#include "common/lockdep.h"
#include "common/latency_model.h"
#include "common/status.h"
#include "common/timeseries.h"
#include "fault/fault.h"

namespace dstore::ssd {

struct DeviceStats {
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> write_ios{0};
  std::atomic<uint64_t> read_ios{0};
  // Pages whose sidecar checksum failed verification (read path + scrub).
  std::atomic<uint64_t> read_crc_failures{0};
};

// One element of an async submission queue: an IO of `len` bytes starting
// at byte `offset` within `block`. Exactly one of wbuf/rbuf is set. A
// descriptor may span several *physically contiguous* blocks (a coalesced
// run produced by the data plane) — media addressing is linear, so the
// span is one device transfer paying one per-IO base latency.
struct IoDesc {
  uint64_t block = 0;
  size_t offset = 0;
  size_t len = 0;
  const void* wbuf = nullptr;  // write source; write iff non-null
  void* rbuf = nullptr;        // read destination

  bool is_write() const { return wbuf != nullptr; }
};

struct DeviceConfig {
  size_t page_size = 4096;       // hardware page (IO granularity)
  size_t pages_per_block = 1;    // allocation unit = block
  size_t num_blocks = 16384;
  bool power_loss_protection = true;
  // Per-page CRC32C sidecar (the emulation analogue of T10-DIF protection
  // information): every write records a location-seeded page checksum,
  // every read verifies it, so bit rot and misdirected writes surface as
  // Status::corruption instead of silently wrong bytes.
  bool checksum_pages = true;
  LatencyModel latency = LatencyModel::none();

  size_t block_size() const { return page_size * pages_per_block; }
  size_t capacity() const { return block_size() * num_blocks; }
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Write [offset, offset+len) within `block`. Acknowledged once the data
  // reaches the device write cache (durable iff PLP).
  virtual Status write(uint64_t block, size_t offset, const void* data, size_t len) = 0;
  virtual Status read(uint64_t block, size_t offset, void* out, size_t len) const = 0;

  // Force the device cache to non-volatile media (no-op with PLP).
  virtual Status flush_cache() = 0;

  // Async submission entry point (the NVMe queue-pair model, driven by
  // ssd::IoQueue). The media effect of the IO — data movement, the
  // ssd.write/ssd.read fault point, stats — happens immediately, but no
  // latency is charged inline; instead the returned value is the absolute
  // now_ns()-clock deadline at which the transfer completes on the
  // emulated device: the fixed per-IO base latency runs in parallel
  // across in-flight IOs, while the bandwidth share queues on the shared
  // media channel *after* that base latency. The caller (IoQueue) waits
  // out deadlines, which is what makes overlapped submissions cheaper
  // than back-to-back synchronous calls. An injected transient error
  // completes the IO immediately with that status. The base
  // implementation degrades to per-block synchronous write()/read()
  // calls for devices without a native async path.
  virtual Result<uint64_t> submit_io(const IoDesc& d);

  virtual const DeviceConfig& config() const = 0;
  virtual const DeviceStats& stats() const = 0;

  // Optional bandwidth time-series (bytes written per bin) for Figure 7.
  virtual void set_bandwidth_series(TimeSeries* ts) = 0;

  // Attach a deterministic fault injector: every IO becomes a fault point
  // ("ssd.write" / "ssd.read" / "ssd.flush") supporting transient errors,
  // latency spikes, silent corruption (bit flips, misdirected writes) and
  // — on RamBlockDevice — torn pages on power loss.
  virtual void set_fault_injector(fault::FaultInjector* inj) { (void)inj; }

  // True when the device maintains a page-checksum sidecar (and therefore
  // verifies reads itself). The scrubber and fsck use verify_pages() to
  // check at-rest data without copying it out.
  virtual bool has_page_checksums() const { return false; }

  // Zero-copy read support: a stable pointer to `block`'s current durable
  // contents, or nullptr when the device cannot hand one out (file-backed
  // media, or a dual-buffered !PLP cache whose view moves under a lock).
  // The pointer stays valid for the device's lifetime; the CALLER must hold
  // the object-level read exclusion for as long as it dereferences it —
  // the device does not snapshot. Consecutive blocks of linear media map
  // to consecutive addresses, which is what lets the data plane coalesce
  // pieces. No latency is charged here; callers account the read through
  // verify_pages() (bandwidth-charged) or their own model.
  virtual const void* direct_read_map(uint64_t block) const {
    (void)block;
    return nullptr;
  }

  // Verify the sidecar checksums of every page overlapping
  // [block*block_size+offset, +len) against current media contents. Appends
  // the absolute index of each failing page to `bad_pages` (when non-null)
  // and keeps scanning, so one call reports every bad page in the range.
  // Charged like a media read: the scrubber is rate-limited through the
  // same bandwidth channel as frontend IO. Default: no sidecar, trivially
  // clean.
  virtual Status verify_pages(uint64_t block, size_t offset, size_t len,
                              std::vector<uint64_t>* bad_pages) {
    (void)block, (void)offset, (void)len, (void)bad_pages;
    return Status::ok();
  }
};

// Memory-backed device with crash simulation.
class RamBlockDevice final : public BlockDevice {
 public:
  explicit RamBlockDevice(DeviceConfig cfg);

  Status write(uint64_t block, size_t offset, const void* data, size_t len) override;
  Status read(uint64_t block, size_t offset, void* out, size_t len) const override;
  Status flush_cache() override;
  Result<uint64_t> submit_io(const IoDesc& d) override;
  const DeviceConfig& config() const override { return cfg_; }
  const DeviceStats& stats() const override { return stats_; }
  void set_bandwidth_series(TimeSeries* ts) override { bw_series_ = ts; }

  // Simulate power failure: with PLP the capacitors flush the write cache
  // (nothing is lost); without PLP, writes since the last flush_cache()
  // revert to their previous contents. Unfreezes a device frozen by an
  // injected power failure.
  void crash();

  // Registers this device's freeze() as a crash sink on `inj`.
  void set_fault_injector(fault::FaultInjector* inj) override;

  // Power is gone: later writes/flushes no longer reach the device (they
  // still return OK — the host that issued them is also dead; the harness
  // stops the workload once it observes the injected crash).
  void freeze() { frozen_.store(true, std::memory_order_release); }
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  // FNV-1a over the durable contents — byte-identical media images compare
  // equal; used by the seed-determinism harness check.
  uint64_t media_fingerprint() const;

  bool has_page_checksums() const override { return cfg_.checksum_pages; }
  Status verify_pages(uint64_t block, size_t offset, size_t len,
                      std::vector<uint64_t>* bad_pages) override;

  // With PLP there is exactly one buffer and writes to a block are
  // single-owner (the block pool), so handing out the backing pointer is
  // safe under the caller's read exclusion. The !PLP dual-buffer mode
  // mutates cache_view_ under mu_ — no stable pointer exists there.
  const void* direct_read_map(uint64_t block) const override {
    if (!cfg_.power_loss_protection || block >= cfg_.num_blocks) return nullptr;
    return media_.get() + block * cfg_.block_size();
  }

  // Tamper helper for integrity tests: flip bit `bit` of media byte
  // `byte_off` behind the sidecar's back (both buffers in !PLP mode), as
  // silent media rot would. The next read or scrub of that page must fail.
  void flip_media_bit(uint64_t byte_off, uint32_t bit);

 private:
  // Recompute the sidecar tags of every page overlapping [pos, pos+len) of
  // `view`. `seed_delta` shifts the location seed: 0 for a correct write,
  // intended_page - landed_page for a misdirected one (the device checksums
  // the LBA the host *claimed*, so the misplaced pages verify against the
  // wrong location and fail on read).
  void retag_pages(const char* view, std::vector<uint64_t>& tags, uint64_t pos,
                   size_t len, int64_t seed_delta);
  // Verify tags over [pos, pos+len) of `view`. With `bad` set, collects
  // every failing page and keeps going; otherwise fails fast.
  Status verify_view(const char* view, const std::vector<uint64_t>& tags,
                     uint64_t pos, size_t len, std::vector<uint64_t>* bad) const;

  DeviceConfig cfg_;
  std::unique_ptr<char[]> media_;        // durable contents
  std::unique_ptr<char[]> cache_view_;   // current contents incl. cached writes (!plp only)
  // Page-checksum sidecar, one tag per page mirroring media_/cache_view_.
  // 0 = never written (unverifiable); else (1<<32) | crc32c(page, page_idx).
  std::vector<uint64_t> tags_media_;
  std::vector<uint64_t> tags_cache_;  // !plp only
  mutable DeviceStats stats_;
  TimeSeries* bw_series_ = nullptr;
  mutable BandwidthChannel bw_channel_;  // shared media bandwidth queue
  fault::FaultInjector* fault_ = nullptr;
  std::atomic<bool> frozen_{false};  // power failed; media no longer updates
  // Quiescence-exempt: guards only the simulated !PLP dual-buffer (cache vs
  // media) bookkeeping — a real NVMe device has no such host-side lock.
  mutable Mutex mu_{"ssd.device", lockdep::kQuiesceExempt};  // !PLP dual-buffer bookkeeping
};

// File-backed device (pread/pwrite on a regular file). The page-checksum
// sidecar persists next to the image as `<path>.crc` (saved on flush_cache
// and close, loaded on open), so an offline hex edit of the image is caught
// on the next read or `dstore_fsck --deep` pass. A store whose sidecar is
// missing or stale opens with every page unknown: legacy data is served
// unverified, new writes regain protection.
class FileBlockDevice final : public BlockDevice {
 public:
  // Creates/truncates the file when `create` is true; otherwise opens it.
  static Result<std::unique_ptr<FileBlockDevice>> open(const std::string& path, DeviceConfig cfg,
                                                       bool create);
  ~FileBlockDevice() override;

  Status write(uint64_t block, size_t offset, const void* data, size_t len) override;
  Status read(uint64_t block, size_t offset, void* out, size_t len) const override;
  Status flush_cache() override;
  // One pread/pwrite per descriptor (coalesced spans stay one syscall);
  // no latency model, so the deadline is simply "now".
  Result<uint64_t> submit_io(const IoDesc& d) override;
  const DeviceConfig& config() const override { return cfg_; }
  const DeviceStats& stats() const override { return stats_; }
  void set_bandwidth_series(TimeSeries* ts) override { bw_series_ = ts; }
  // Error/delay/corruption injection; torn pages and freeze need the RAM
  // device.
  void set_fault_injector(fault::FaultInjector* inj) override { fault_ = inj; }

  bool has_page_checksums() const override { return cfg_.checksum_pages; }
  Status verify_pages(uint64_t block, size_t offset, size_t len,
                      std::vector<uint64_t>* bad_pages) override;

 private:
  FileBlockDevice(int fd, std::string path, DeviceConfig cfg)
      : fd_(fd), path_(std::move(path)), cfg_(cfg) {}

  // Shared write path: applies misdirect/bit-flip outcomes, performs the
  // pwrite, recomputes sidecar tags of the touched pages.
  Status do_write(uint64_t block, size_t offset, const void* data, size_t len,
                  const fault::Outcome& fo);
  // Verify tags over [pos, pos+len); pages fully inside the caller's buffer
  // are checksummed from it, boundary pages are re-read from the file.
  Status verify_range(uint64_t pos, size_t len, const char* buf,
                      std::vector<uint64_t>* bad) const;
  void retag_range(uint64_t pos, size_t len, const char* buf, int64_t seed_delta);
  void load_sidecar();
  void save_sidecar();

  int fd_;
  std::string path_;
  DeviceConfig cfg_;
  std::vector<uint64_t> tags_;  // sidecar; same encoding as RamBlockDevice
  bool tags_dirty_ = false;
  mutable DeviceStats stats_;
  TimeSeries* bw_series_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace dstore::ssd
