// Emulated NVMe block device — DStore's data plane (§4.2).
//
// DStore stores object data purely on SSD; pages are grouped into blocks,
// the unit of data allocation. The paper's testbed used an Intel P4800X;
// we emulate the properties DStore depends on:
//
//  * block-granular read/write with NVMe-like injected latency
//    (~9 us for a 4 KB write, Table 3);
//  * a device-internal DRAM write cache with enhanced power-loss data
//    protection (§4.2/§4.5): an acknowledged write is durable because
//    device capacitors flush the cache on power failure. DStore
//    transparently leverages this, so with PLP enabled an acknowledged
//    write survives `crash()`. With PLP disabled, un-flushed writes are
//    lost on crash — used by tests to show why DStore requires the
//    capacitor-backed cache (or an explicit device flush) for its
//    commit-implies-durable invariant.
//
// Implementations: RamBlockDevice (memory-backed, crash-simulating,
// used by tests and benches) and FileBlockDevice (file-backed, for the
// examples that want real persistence across process restarts).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/bandwidth.h"
#include "common/latency_model.h"
#include "common/status.h"
#include "common/timeseries.h"
#include "fault/fault.h"

namespace dstore::ssd {

struct DeviceStats {
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> write_ios{0};
  std::atomic<uint64_t> read_ios{0};
};

// One element of an async submission queue: an IO of `len` bytes starting
// at byte `offset` within `block`. Exactly one of wbuf/rbuf is set. A
// descriptor may span several *physically contiguous* blocks (a coalesced
// run produced by the data plane) — media addressing is linear, so the
// span is one device transfer paying one per-IO base latency.
struct IoDesc {
  uint64_t block = 0;
  size_t offset = 0;
  size_t len = 0;
  const void* wbuf = nullptr;  // write source; write iff non-null
  void* rbuf = nullptr;        // read destination

  bool is_write() const { return wbuf != nullptr; }
};

struct DeviceConfig {
  size_t page_size = 4096;       // hardware page (IO granularity)
  size_t pages_per_block = 1;    // allocation unit = block
  size_t num_blocks = 16384;
  bool power_loss_protection = true;
  LatencyModel latency = LatencyModel::none();

  size_t block_size() const { return page_size * pages_per_block; }
  size_t capacity() const { return block_size() * num_blocks; }
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Write [offset, offset+len) within `block`. Acknowledged once the data
  // reaches the device write cache (durable iff PLP).
  virtual Status write(uint64_t block, size_t offset, const void* data, size_t len) = 0;
  virtual Status read(uint64_t block, size_t offset, void* out, size_t len) const = 0;

  // Force the device cache to non-volatile media (no-op with PLP).
  virtual Status flush_cache() = 0;

  // Async submission entry point (the NVMe queue-pair model, driven by
  // ssd::IoQueue). The media effect of the IO — data movement, the
  // ssd.write/ssd.read fault point, stats — happens immediately, but no
  // latency is charged inline; instead the returned value is the absolute
  // now_ns()-clock deadline at which the transfer completes on the
  // emulated device: the fixed per-IO base latency runs in parallel
  // across in-flight IOs, while the bandwidth share queues on the shared
  // media channel *after* that base latency. The caller (IoQueue) waits
  // out deadlines, which is what makes overlapped submissions cheaper
  // than back-to-back synchronous calls. An injected transient error
  // completes the IO immediately with that status. The base
  // implementation degrades to per-block synchronous write()/read()
  // calls for devices without a native async path.
  virtual Result<uint64_t> submit_io(const IoDesc& d);

  virtual const DeviceConfig& config() const = 0;
  virtual const DeviceStats& stats() const = 0;

  // Optional bandwidth time-series (bytes written per bin) for Figure 7.
  virtual void set_bandwidth_series(TimeSeries* ts) = 0;

  // Attach a deterministic fault injector: every IO becomes a fault point
  // ("ssd.write" / "ssd.read" / "ssd.flush") supporting transient errors,
  // latency spikes and — on RamBlockDevice — torn pages on power loss.
  virtual void set_fault_injector(fault::FaultInjector* inj) { (void)inj; }
};

// Memory-backed device with crash simulation.
class RamBlockDevice final : public BlockDevice {
 public:
  explicit RamBlockDevice(DeviceConfig cfg);

  Status write(uint64_t block, size_t offset, const void* data, size_t len) override;
  Status read(uint64_t block, size_t offset, void* out, size_t len) const override;
  Status flush_cache() override;
  Result<uint64_t> submit_io(const IoDesc& d) override;
  const DeviceConfig& config() const override { return cfg_; }
  const DeviceStats& stats() const override { return stats_; }
  void set_bandwidth_series(TimeSeries* ts) override { bw_series_ = ts; }

  // Simulate power failure: with PLP the capacitors flush the write cache
  // (nothing is lost); without PLP, writes since the last flush_cache()
  // revert to their previous contents. Unfreezes a device frozen by an
  // injected power failure.
  void crash();

  // Registers this device's freeze() as a crash sink on `inj`.
  void set_fault_injector(fault::FaultInjector* inj) override;

  // Power is gone: later writes/flushes no longer reach the device (they
  // still return OK — the host that issued them is also dead; the harness
  // stops the workload once it observes the injected crash).
  void freeze() { frozen_.store(true, std::memory_order_release); }
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  // FNV-1a over the durable contents — byte-identical media images compare
  // equal; used by the seed-determinism harness check.
  uint64_t media_fingerprint() const;

 private:
  DeviceConfig cfg_;
  std::unique_ptr<char[]> media_;        // durable contents
  std::unique_ptr<char[]> cache_view_;   // current contents incl. cached writes (!plp only)
  mutable DeviceStats stats_;
  TimeSeries* bw_series_ = nullptr;
  mutable BandwidthChannel bw_channel_;  // shared media bandwidth queue
  fault::FaultInjector* fault_ = nullptr;
  std::atomic<bool> frozen_{false};  // power failed; media no longer updates
  mutable std::mutex mu_;  // only guards the !PLP dual-buffer bookkeeping
};

// File-backed device (pread/pwrite on a regular file).
class FileBlockDevice final : public BlockDevice {
 public:
  // Creates/truncates the file when `create` is true; otherwise opens it.
  static Result<std::unique_ptr<FileBlockDevice>> open(const std::string& path, DeviceConfig cfg,
                                                       bool create);
  ~FileBlockDevice() override;

  Status write(uint64_t block, size_t offset, const void* data, size_t len) override;
  Status read(uint64_t block, size_t offset, void* out, size_t len) const override;
  Status flush_cache() override;
  // One pread/pwrite per descriptor (coalesced spans stay one syscall);
  // no latency model, so the deadline is simply "now".
  Result<uint64_t> submit_io(const IoDesc& d) override;
  const DeviceConfig& config() const override { return cfg_; }
  const DeviceStats& stats() const override { return stats_; }
  void set_bandwidth_series(TimeSeries* ts) override { bw_series_ = ts; }
  // Error/delay injection only; torn pages and freeze need the RAM device.
  void set_fault_injector(fault::FaultInjector* inj) override { fault_ = inj; }

 private:
  FileBlockDevice(int fd, DeviceConfig cfg) : fd_(fd), cfg_(cfg) {}
  int fd_;
  DeviceConfig cfg_;
  mutable DeviceStats stats_;
  TimeSeries* bw_series_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace dstore::ssd
