#include "dstore/dstore.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "common/crc32c.h"
#include "fault/fault.h"
#include "ssd/io_retry.h"

namespace dstore {

using dipper::LogRecordView;
using dipper::OpType;

size_t DStoreConfig::suggested_arena_bytes(uint64_t objects) {
  // Empirical worst case per object: one btree key share (~270B at minimum
  // fill), a 128B metadata entry, a small block array, slab rounding.
  return (size_t)(4ull << 20) + objects * 1024;
}

namespace {
dipper::EngineConfig effective_engine_config(const DStoreConfig& cfg) {
  dipper::EngineConfig e = cfg.engine;
  // Read-repair needs the payload of every logged write in PMEM.
  if (cfg.repair_logging) e.physical_logging = true;
  return e;
}
uint64_t badpage_region_off(const dipper::EngineConfig& engine) {
  size_t need = dipper::Engine::required_pool_bytes(engine);
  return (need + 4095) & ~(uint64_t)4095;
}
}  // namespace

size_t DStoreConfig::required_pool_bytes(const DStoreConfig& cfg) {
  return badpage_region_off(effective_engine_config(cfg)) +
         fsmeta::BadPageTable::kRegionBytes;
}

// ---------------------------------------------------------------------------
// Construction / lifecycle
// ---------------------------------------------------------------------------

DStore::DStore(pmem::Pool* pool, ssd::BlockDevice* device, DStoreConfig cfg)
    : pool_(pool), device_(device), cfg_(cfg), read_counts_(1 << 16) {
  init_metrics();
}

Result<std::unique_ptr<DStore>> DStore::create(pmem::Pool* pool, ssd::BlockDevice* device,
                                               DStoreConfig cfg) {
  cfg.engine = effective_engine_config(cfg);
  if (device->config().num_blocks < cfg.num_blocks) {
    return Status::invalid_argument("device smaller than configured block pool");
  }
  if (pool->size() < dipper::Engine::required_pool_bytes(cfg.engine)) {
    return Status::invalid_argument("PMEM pool too small");
  }
  std::unique_ptr<DStore> store(new DStore(pool, device, cfg));
  store->engine_ = std::make_unique<dipper::Engine>(pool, store.get(), cfg.engine);
  DSTORE_RETURN_IF_ERROR(store->engine_->init_fresh());
  store->engine_->space().set_lock(&store->arena_mu_);
  uint64_t bp_off = badpage_region_off(cfg.engine);
  if (pool->size() >= bp_off + fsmeta::BadPageTable::kRegionBytes) {
    store->badpages_.format_region(pool, bp_off);
  }
  store->register_substrate_metrics();
  if (cfg.scrub_interval_ms > 0) store->start_scrubber();
  return store;
}

Result<std::unique_ptr<DStore>> DStore::recover(pmem::Pool* pool, ssd::BlockDevice* device,
                                                DStoreConfig cfg) {
  cfg.engine = effective_engine_config(cfg);
  std::unique_ptr<DStore> store(new DStore(pool, device, cfg));
  store->engine_ = std::make_unique<dipper::Engine>(pool, store.get(), cfg.engine);
  DSTORE_RETURN_IF_ERROR(store->engine_->recover());
  store->engine_->space().set_lock(&store->arena_mu_);
  uint64_t bp_off = badpage_region_off(cfg.engine);
  if (pool->size() >= bp_off + fsmeta::BadPageTable::kRegionBytes) {
    store->badpages_.attach_region(pool, bp_off);
  }
  store->register_substrate_metrics();
  if (cfg.scrub_interval_ms > 0) store->start_scrubber();
  return store;
}

// ---------------------------------------------------------------------------
// Metrics (DESIGN.md §10)
// ---------------------------------------------------------------------------

void DStore::init_metrics() {
  obs::MetricsRegistry& r = metrics_;
  obs::Gauge* active = r.gauge("dstore_active_ops", "traced operations currently in flight");

  // The six §4.3 pipeline stage span histograms, shared by oput and the
  // logged owrite path (Table 3's write breakdown reads these).
  obs::Histogram* stages[obs::kStageCount];
  stages[obs::kStageLogAppend] =
      r.histogram("dstore_stage_log_append_ns", "step 2b: log record write+flush span");
  stages[obs::kStagePoolAlloc] =
      r.histogram("dstore_stage_pool_alloc_ns", "steps 3-4: block/metadata pool allocation span");
  stages[obs::kStageMetaZone] =
      r.histogram("dstore_stage_meta_zone_ns", "step 6: metadata-zone update span");
  stages[obs::kStageBtree] = r.histogram("dstore_stage_btree_ns", "step 7: btree record span");
  stages[obs::kStageSsdBatch] =
      r.histogram("dstore_stage_ssd_batch_ns", "step 8: NVMe queue-pair submit+reap span");
  stages[obs::kStageCommitFlush] =
      r.histogram("dstore_stage_commit_flush_ns", "step 9: commit flush span");

  auto op = [&](obs::OpMetrics& m, const char* verb, bool staged, bool substrate) {
    std::string p = std::string("dstore_") + verb;
    m.ops = r.counter(p + "s_total", std::string(verb) + " operations attempted");
    m.failures = r.counter(p + "_failures_total", std::string(verb) + " operations failed");
    m.latency = r.histogram(p + "_latency_ns", std::string(verb) + " end-to-end latency");
    m.active = active;
    if (staged) {
      for (int s = 0; s < obs::kStageCount; s++) m.stage[s] = stages[s];
    }
    if (substrate) {
      m.flushes_per_op =
          r.histogram(p + "_flushes_per_op", "pmem cache-line flushes per sampled op");
      m.fences_per_op = r.histogram(p + "_fences_per_op", "pmem fences per sampled op");
    }
    m.ios_per_op = r.histogram(p + "_ios_per_op", "SSD IO descriptors per sampled op");
    m.io_retries_per_op =
        r.histogram(p + "_io_retries_per_op", "SSD descriptor retries per sampled op (when >0)");
  };
  op(put_metrics_, "put", /*staged=*/true, /*substrate=*/true);
  op(write_metrics_, "write", /*staged=*/true, /*substrate=*/true);
  op(get_metrics_, "get", /*staged=*/false, /*substrate=*/false);
  op(delete_metrics_, "delete", /*staged=*/false, /*substrate=*/true);

  ssd_io_batches_ = r.counter("ssd_io_batches_total", "queue-pair batches issued");
  ssd_ios_issued_ =
      r.counter("ssd_ios_issued_total", "IO descriptors submitted (excluding retries)");
  ssd_blocks_coalesced_ =
      r.counter("ssd_blocks_coalesced_total", "per-block IOs saved by contiguous-run merging");
  ssd_io_retries_ = r.counter("ssd_io_retries_total", "transient-error descriptor retries");
  ssd_io_exhausted_ = r.counter("ssd_io_exhausted_total", "ops whose SSD retries ran out");

  // Integrity layer (DESIGN.md §11): detection, repair, and quarantine
  // counters plus the scrubber's progress.
  integrity_failures_ = r.counter("dstore_integrity_checksum_failures_total",
                                  "checksum failures detected across all tiers");
  integrity_repairs_ = r.counter("dstore_integrity_repairs_total",
                                 "objects read-repaired from the PMEM log copy");
  integrity_quarantined_ = r.counter("dstore_integrity_quarantined_pages_total",
                                     "unrepairable device pages quarantined");
  scrub_pages_verified_ = r.counter("dstore_scrub_pages_verified_total",
                                    "device pages checksum-verified by scrub passes");

  // Ops accumulate the exact batch counters in their trace and publish
  // them in OpTrace::finish() under one stripe lookup.
  for (obs::OpMetrics* m : {&put_metrics_, &write_metrics_, &get_metrics_, &delete_metrics_}) {
    m->ssd_batches = ssd_io_batches_;
    m->ssd_ios = ssd_ios_issued_;
    m->ssd_coalesced = ssd_blocks_coalesced_;
  }
}

void DStore::register_substrate_metrics() {
  obs::MetricsRegistry& r = metrics_;
  // Scrape-time callbacks over atomics the substrates maintain anyway —
  // zero added hot-path cost. Raw pointers are safe: engine_/pool_/device_
  // outlive the registry's owner (this store).
  pmem::Pool* pool = pool_;
  r.counter_fn("pmem_flushes_total", "cache lines written back",
               [pool] { return pool->stats().lines_flushed.load(std::memory_order_relaxed); });
  r.counter_fn("pmem_fences_total", "store fences retired",
               [pool] { return pool->stats().fences.load(std::memory_order_relaxed); });
  r.counter_fn("pmem_nt_lines_total", "cache lines written with non-temporal stores",
               [pool] { return pool->stats().lines_nt.load(std::memory_order_relaxed); });
  r.counter_fn("pmem_bytes_flushed_total", "bytes written back to PMEM",
               [pool] { return pool->stats().bytes_flushed.load(std::memory_order_relaxed); });
  r.counter_fn("pmem_bytes_read_total", "bulk bytes read from PMEM",
               [pool] { return pool->stats().bytes_read.load(std::memory_order_relaxed); });

  ssd::BlockDevice* dev = device_;
  r.counter_fn("ssd_bytes_written_total", "bytes written to the block device",
               [dev] { return dev->stats().bytes_written.load(std::memory_order_relaxed); });
  r.counter_fn("ssd_bytes_read_total", "bytes read from the block device",
               [dev] { return dev->stats().bytes_read.load(std::memory_order_relaxed); });
  r.counter_fn("ssd_write_ios_total", "device write IOs",
               [dev] { return dev->stats().write_ios.load(std::memory_order_relaxed); });
  r.counter_fn("ssd_read_ios_total", "device read IOs",
               [dev] { return dev->stats().read_ios.load(std::memory_order_relaxed); });
  r.counter_fn("ssd_read_crc_failures_total", "reads that failed the page checksum sidecar",
               [dev] {
                 return dev->stats().read_crc_failures.load(std::memory_order_relaxed);
               });

  dipper::Engine* eng = engine_.get();
  const dipper::EngineStats& es = eng->stats();
  auto stat = [&r, &es](const char* name, const char* help,
                        std::atomic<uint64_t> dipper::EngineStats::* field) {
    const std::atomic<uint64_t>* p = &(es.*field);
    r.counter_fn(name, help, [p] { return p->load(std::memory_order_relaxed); });
  };
  stat("dipper_records_appended_total", "log records appended",
       &dipper::EngineStats::records_appended);
  stat("dipper_records_committed_total", "log records committed",
       &dipper::EngineStats::records_committed);
  stat("dipper_records_aborted_total", "log records aborted",
       &dipper::EngineStats::records_aborted);
  stat("dipper_records_replayed_total", "log records replayed (checkpoint+recovery)",
       &dipper::EngineStats::records_replayed);
  stat("dipper_checkpoints_total", "checkpoints installed", &dipper::EngineStats::checkpoints);
  stat("dipper_ckpt_failures_total", "background checkpoints that errored",
       &dipper::EngineStats::ckpt_failures);
  stat("dipper_backpressure_waits_total", "appends that waited on a full log",
       &dipper::EngineStats::append_backpressure_waits);
  stat("dipper_cow_page_faults_total", "CoW writer-side page copies",
       &dipper::EngineStats::cow_page_faults);
  stat("dipper_ckpt_total_ns", "checkpoint wall time", &dipper::EngineStats::ckpt_total_ns);
  stat("dipper_ckpt_swap_ns", "checkpoint phase: log switch", &dipper::EngineStats::ckpt_swap_ns);
  stat("dipper_ckpt_drain_ns", "checkpoint phase: archived-record drain",
       &dipper::EngineStats::ckpt_drain_ns);
  stat("dipper_ckpt_replay_ns", "checkpoint phase: replay/copy onto spare",
       &dipper::EngineStats::ckpt_replay_ns);
  stat("dipper_ckpt_install_ns", "checkpoint phase: root flip + log recycle",
       &dipper::EngineStats::ckpt_install_ns);
  stat("dipper_recovery_metadata_ns", "last recovery: checkpoint redo + rebuild",
       &dipper::EngineStats::recovery_metadata_ns);
  stat("dipper_recovery_replay_ns", "last recovery: log replay",
       &dipper::EngineStats::recovery_replay_ns);
  stat("dipper_log_crc_failures_total", "log records that failed their record checksum",
       &dipper::EngineStats::log_crc_failures);

  r.gauge_fn("dipper_log_fill_ratio", "fraction of active-log slots in use",
             [eng] { return eng->log_fill(); });
  r.gauge_fn("dipper_epoch", "current checkpoint epoch",
             [eng] { return (double)eng->current_epoch(); });
  r.gauge_fn("dstore_read_only", "1 once SSD write retries were exhausted",
             [this] { return read_only() ? 1.0 : 0.0; });
  r.gauge_fn("dstore_live_ctxs", "ds_init contexts alive",
             [this] { return (double)live_ctxs_.load(std::memory_order_relaxed); });
  r.gauge_fn("dstore_open_objects", "oopen handles alive",
             [this] { return (double)open_objects_.load(std::memory_order_relaxed); });
  r.gauge_fn("dstore_scrub_last_pass_seconds", "wall time of the last full scrub pass",
             [this] {
               return (double)last_scrub_ns_.load(std::memory_order_relaxed) / 1e9;
             });
  r.gauge_fn("dstore_quarantined_pages", "bad-page table entries",
             [this] { return (double)badpages_.count(); });
}

DStore::~DStore() {
  stop_scrubber();
  if (engine_) engine_->shutdown();
}

ds_ctx_t* DStore::ds_init() {
  auto* ctx = new ds_ctx_t();
  ctx->id = next_ctx_id_.fetch_add(1, std::memory_order_relaxed);
  live_ctxs_.fetch_add(1, std::memory_order_relaxed);
  return ctx;
}

void DStore::ds_finalize(ds_ctx_t* ctx) {
  if (ctx == nullptr) return;
  // Early-ack queues spin out their remaining emulated device latency here;
  // their ops are already committed and their data already durable.
  for (auto& q : ctx->pending_io) q->wait_all();
  ctx->pending_io.clear();
  live_ctxs_.fetch_sub(1, std::memory_order_relaxed);
  delete ctx;
}

// ---------------------------------------------------------------------------
// SpaceClient hooks: format & replay
// ---------------------------------------------------------------------------

Status DStore::format(SlabAllocator& space) {
  offset_t root_off = space.alloc_zeroed(sizeof(StoreRoot));
  if (root_off == 0) return Status::out_of_space("store root");
  auto* root = reinterpret_cast<StoreRoot*>(space.arena().at(root_off));

  auto btree = BTree::create(space);
  if (!btree.is_ok()) return btree.status();
  root->btree = btree.value().off;

  auto zone = MetadataZone::create(space, cfg_.max_objects);
  if (!zone.is_ok()) return zone.status();
  root->meta_zone = zone.value().off;

  auto bpool = CircularPool::create(space, cfg_.num_blocks);
  if (!bpool.is_ok()) return bpool.status();
  root->block_pool = bpool.value().off;

  auto mpool = CircularPool::create(space, cfg_.max_objects);
  if (!mpool.is_ok()) return mpool.status();
  root->meta_pool = mpool.value().off;

  space.set_user_root(root_off);
  return Status::ok();
}

DStore::View DStore::view_of(SlabAllocator& space) {
  auto* root = reinterpret_cast<StoreRoot*>(space.arena().at(space.user_root()));
  return View{&space,
              BTree(space, OffPtr<BTree::Header>(root->btree)),
              MetadataZone(space, OffPtr<MetadataZone::Header>(root->meta_zone)),
              CircularPool(space, OffPtr<CircularPool::Header>(root->block_pool)),
              CircularPool(space, OffPtr<CircularPool::Header>(root->meta_pool))};
}

Status DStore::replay(SlabAllocator& space, std::span<const LogRecordView> records) {
  // §3.5: "the shadow copies iterate through the same states that the
  // volatile copies went through" — the identical phase functions run here,
  // without frontend locks (replay owns the space).
  View v = view_of(space);
  if (cfg_.parallel_replay && records.size() >= 128) {
    return replay_parallel(v, records);
  }
  uint64_t processed = 0;
  for (const LogRecordView& rec : records) {
    // Background replay shares cores with the frontend on small hosts;
    // yield periodically so checkpointing stays quiescent-free in practice.
    if ((++processed & 63) == 0) std::this_thread::yield();
    DSTORE_FAULT_POINT(cfg_.engine.fault, "dstore.replay.record");
    switch (rec.op) {
      case OpType::kPut: {
        PutPlan plan;
        DSTORE_RETURN_IF_ERROR(put_phase1(v, rec.name, rec.arg0, nullptr, &plan));
        DSTORE_RETURN_IF_ERROR(put_phase2(v, rec.name, rec.arg0, plan, nullptr));
        break;
      }
      case OpType::kDelete: {
        DeletePlan plan;
        DSTORE_RETURN_IF_ERROR(delete_phase1(v, rec.name, nullptr, &plan));
        DSTORE_RETURN_IF_ERROR(delete_phase2(v, plan, nullptr));
        break;
      }
      case OpType::kCreate: {
        uint64_t meta_idx = 0;
        DSTORE_RETURN_IF_ERROR(create_phase1(v, &meta_idx));
        DSTORE_RETURN_IF_ERROR(create_phase2(v, rec.name, meta_idx, nullptr));
        break;
      }
      case OpType::kWrite: {
        ExtendPlan plan;
        DSTORE_RETURN_IF_ERROR(extend_phase1(v, rec.name, rec.arg0, nullptr, &plan));
        DSTORE_RETURN_IF_ERROR(extend_phase2(v, rec.name, rec.arg0, plan, nullptr));
        break;
      }
      case OpType::kNoop:
        break;  // olock markers: ignored by replay (§4.5)
    }
  }
  return Status::ok();
}

Status DStore::replay_parallel(View& v, std::span<const LogRecordView> records) {
  // Two-lane pipeline (§3.5's checkpoint thread pool, powered by §3.7's
  // observational equivalence): lane 1 — this thread — executes each
  // record's phase 1 (pool pops/pushes) in STRICT log order, preserving
  // the determinism the data plane depends on; lane 2 applies the
  // metadata-zone and btree updates one record behind. Records on the same
  // object are ordered end-to-end through `pending` (a record's phase 1
  // may read state its predecessor's phase 2 writes); everything else
  // commutes, so the lanes overlap freely.
  struct WorkItem {
    const LogRecordView* rec;
    PutPlan put;
    DeletePlan del;
    ExtendPlan ext;
    uint64_t create_idx = 0;
  };
  std::deque<WorkItem> queue;
  Mutex queue_mu{"dstore.replay_queue"};
  CondVar queue_cv;
  bool done = false;
  Status lane2_status;
  std::atomic<bool> failed{false};
  ReadCountTable pending(1 << 14);
  SharedSpinLock replay_btree_mu{"dstore.replay_btree"};

  // Lane 2 inherits this thread's lockdep role (recovery when called from
  // recover(), checkpoint when called from the shadow replay) so the
  // quiescence gate attributes its lock holds correctly.
  const lockdep::Role lane2_role = lockdep::current_role();
  std::thread lane2([&, lane2_role] {
    lockdep::RoleScope role(lane2_role);
    for (;;) {
      WorkItem item;
      {
        UniqueLock g(queue_mu);
        queue_cv.wait(g, [&] { return !queue.empty() || done; });
        if (queue.empty()) {
          if (done) return;
          continue;
        }
        item = std::move(queue.front());
        queue.pop_front();
      }
      Status s;
      switch (item.rec->op) {
        case OpType::kPut:
          s = put_phase2(v, item.rec->name, item.rec->arg0, item.put, &replay_btree_mu);
          break;
        case OpType::kDelete:
          s = delete_phase2(v, item.del, &replay_btree_mu);
          break;
        case OpType::kCreate:
          s = create_phase2(v, item.rec->name, item.create_idx, &replay_btree_mu);
          break;
        case OpType::kWrite:
          s = extend_phase2(v, item.rec->name, item.rec->arg0, item.ext, &replay_btree_mu);
          break;
        case OpType::kNoop:
          break;
      }
      pending.dec(item.rec->name);
      if (!s.is_ok() && !failed.exchange(true)) {
        MutexGuard g(queue_mu);
        lane2_status = s;
      }
    }
  });

  Status lane1_status;
  uint64_t processed = 0;
  for (const LogRecordView& rec : records) {
    if (failed.load(std::memory_order_acquire)) break;
    if ((++processed & 63) == 0) std::this_thread::yield();
    DSTORE_FAULT_POINT(cfg_.engine.fault, "dstore.replay.record_par");
    if (rec.op == OpType::kNoop) continue;
    // A record's phase 1 may depend on its same-object predecessor's
    // phase 2 (e.g. a put reads the btree entry a create inserted): wait
    // until lane 2 has drained this object.
    pending.wait_until_unread(rec.name);
    WorkItem item;
    item.rec = &rec;
    Status s;
    switch (rec.op) {
      case OpType::kPut:
        s = put_phase1(v, rec.name, rec.arg0, &replay_btree_mu, &item.put);
        break;
      case OpType::kDelete:
        s = delete_phase1(v, rec.name, &replay_btree_mu, &item.del);
        break;
      case OpType::kCreate:
        s = create_phase1(v, &item.create_idx);
        break;
      case OpType::kWrite:
        s = extend_phase1(v, rec.name, rec.arg0, &replay_btree_mu, &item.ext);
        break;
      case OpType::kNoop:
        break;
    }
    if (!s.is_ok()) {
      lane1_status = s;
      break;
    }
    pending.inc(rec.name);
    {
      MutexGuard g(queue_mu);
      queue.push_back(std::move(item));
    }
    queue_cv.notify_one();
  }
  {
    MutexGuard g(queue_mu);
    done = true;
  }
  queue_cv.notify_one();
  lane2.join();
  DSTORE_RETURN_IF_ERROR(lane1_status);
  return lane2_status;
}

// ---------------------------------------------------------------------------
// Metadata phases (the "same code for both spaces" core)
// ---------------------------------------------------------------------------

Status DStore::put_phase1(View& v, const Key& name, uint64_t size, SharedSpinLock* btree_mu,
                          PutPlan* plan) {
  // Steps 3-4 of the pipeline: everything whose ORDER matters for replay
  // determinism (circular-pool pops/pushes) happens here, in log order.
  std::optional<uint64_t> found;
  if (btree_mu != nullptr) {
    SharedLockGuard g(*btree_mu);
    found = v.btree.find(name);
  } else {
    found = v.btree.find(name);
  }
  plan->existed = found.has_value();
  if (plan->existed) {
    plan->meta_idx = *found;
    MetaEntry* e = v.zone.entry(plan->meta_idx);
    if (e == nullptr || !e->in_use) return Status::corruption("btree points at free entry");
    const uint64_t* bl = v.zone.blocks(*e);
    for (uint32_t i = 0; i < e->nblocks; i++) {
      DSTORE_RETURN_IF_ERROR(v.block_pool.free(bl[i]));
    }
  } else {
    auto idx = v.meta_pool.alloc();
    if (!idx.has_value()) return Status::out_of_space("metadata pool exhausted");
    plan->meta_idx = *idx;
  }
  uint64_t nb = blocks_needed(size);
  plan->blocks.clear();
  plan->blocks.reserve(nb);
  for (uint64_t i = 0; i < nb; i++) {
    auto b = v.block_pool.alloc();
    if (!b.has_value()) return Status::out_of_space("block pool exhausted");
    plan->blocks.push_back(*b);
  }
  return Status::ok();
}

Status DStore::put_phase2(View& v, const Key& name, uint64_t size, const PutPlan& plan,
                          SharedSpinLock* btree_mu, obs::OpTrace* trace) {
  // Steps 6-7: metadata-zone entry + btree record. Under OE these run
  // outside the synchronous region, in parallel across requests.
  if (trace != nullptr) trace->enter(obs::kStageMetaZone);
  MetaEntry* e = v.zone.entry(plan.meta_idx);
  if (plan.existed) {
    e->nblocks = 0;  // block array retained; refilled below
  } else {
    DSTORE_RETURN_IF_ERROR(v.zone.init_entry(plan.meta_idx, name));
    e = v.zone.entry(plan.meta_idx);
  }
  for (uint64_t b : plan.blocks) {
    DSTORE_RETURN_IF_ERROR(v.zone.append_block(plan.meta_idx, b));
  }
  e->size = size;
  e->generation++;
  // Content is changing: the frontend re-records the whole-object CRC once
  // its data IOs complete; replay (no data bytes) leaves it invalid.
  e->data_crc_valid = 0;
  v.zone.seal_entry(plan.meta_idx);
  if (trace != nullptr) trace->enter(obs::kStageBtree);
  if (!plan.existed) {
    if (btree_mu != nullptr) {
      LockGuard<SharedSpinLock> g(*btree_mu);
      DSTORE_RETURN_IF_ERROR(v.btree.insert(name, plan.meta_idx));
    } else {
      DSTORE_RETURN_IF_ERROR(v.btree.insert(name, plan.meta_idx));
    }
  }
  if (trace != nullptr) trace->leave();
  return Status::ok();
}

Status DStore::delete_phase1(View& v, const Key& name, SharedSpinLock* btree_mu,
                             DeletePlan* plan) {
  std::optional<uint64_t> found;
  if (btree_mu != nullptr) {
    SharedLockGuard g(*btree_mu);
    found = v.btree.find(name);
  } else {
    found = v.btree.find(name);
  }
  if (!found.has_value()) return Status::not_found(name.str());
  plan->meta_idx = *found;
  MetaEntry* e = v.zone.entry(plan->meta_idx);
  if (e == nullptr || !e->in_use) return Status::corruption("btree points at free entry");
  const uint64_t* bl = v.zone.blocks(*e);
  for (uint32_t i = 0; i < e->nblocks; i++) {
    DSTORE_RETURN_IF_ERROR(v.block_pool.free(bl[i]));
  }
  DSTORE_RETURN_IF_ERROR(v.meta_pool.free(plan->meta_idx));
  return Status::ok();
}

Status DStore::delete_phase2(View& v, const DeletePlan& plan, SharedSpinLock* btree_mu) {
  MetaEntry* e = v.zone.entry(plan.meta_idx);
  Key name = e->name;
  if (btree_mu != nullptr) {
    LockGuard<SharedSpinLock> g(*btree_mu);
    DSTORE_RETURN_IF_ERROR(v.btree.erase(name));
  } else {
    DSTORE_RETURN_IF_ERROR(v.btree.erase(name));
  }
  return v.zone.release_entry(plan.meta_idx);
}

Status DStore::create_phase1(View& v, uint64_t* meta_idx) {
  auto idx = v.meta_pool.alloc();
  if (!idx.has_value()) return Status::out_of_space("metadata pool exhausted");
  *meta_idx = *idx;
  return Status::ok();
}

Status DStore::create_phase2(View& v, const Key& name, uint64_t meta_idx,
                             SharedSpinLock* btree_mu) {
  DSTORE_RETURN_IF_ERROR(v.zone.init_entry(meta_idx, name));
  v.zone.entry(meta_idx)->size = 0;
  if (btree_mu != nullptr) {
    LockGuard<SharedSpinLock> g(*btree_mu);
    return v.btree.insert(name, meta_idx);
  }
  return v.btree.insert(name, meta_idx);
}

Status DStore::extend_phase1(View& v, const Key& name, uint64_t new_size,
                             SharedSpinLock* btree_mu, ExtendPlan* plan) {
  std::optional<uint64_t> found;
  if (btree_mu != nullptr) {
    SharedLockGuard g(*btree_mu);
    found = v.btree.find(name);
  } else {
    found = v.btree.find(name);
  }
  if (!found.has_value()) return Status::not_found(name.str());
  plan->meta_idx = *found;
  MetaEntry* e = v.zone.entry(plan->meta_idx);
  uint64_t need = blocks_needed(new_size);
  plan->new_blocks.clear();
  for (uint64_t i = e->nblocks; i < need; i++) {
    auto b = v.block_pool.alloc();
    if (!b.has_value()) return Status::out_of_space("block pool exhausted");
    plan->new_blocks.push_back(*b);
  }
  return Status::ok();
}

Status DStore::extend_phase2(View& v, const Key& /*name*/, uint64_t new_size,
                             const ExtendPlan& plan, SharedSpinLock* /*btree_mu*/) {
  // Entry mutation only; per-object CC makes the entry exclusive, so no
  // structure-wide lock is needed (the block-array growth locks the
  // allocator internally).
  for (uint64_t b : plan.new_blocks) {
    DSTORE_RETURN_IF_ERROR(v.zone.append_block(plan.meta_idx, b));
  }
  MetaEntry* e = v.zone.entry(plan.meta_idx);
  if (new_size > e->size) e->size = new_size;
  e->generation++;
  // A (possibly partial) write invalidates the recorded content CRC; the
  // frontend re-records it when the write covers the whole object.
  e->data_crc_valid = 0;
  v.zone.seal_entry(plan.meta_idx);
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Data plane (async NVMe queue-pair emulation; see ssd/io_queue.h)
// ---------------------------------------------------------------------------

Status DStore::apply_io_policy(Status s, bool is_write) {
  if (!s.is_ok() && ssd::is_transient(s)) {
    ssd_io_exhausted_->add(1);
    if (is_write) {
      // Degrade rather than wedge: the SSD is refusing writes, so stop
      // accepting mutations but keep serving whatever is still readable.
      read_only_.store(true, std::memory_order_release);
      return Status::read_only("ssd write retries exhausted: " + s.to_string());
    }
  }
  return s;
}

void DStore::reap_pending(ds_ctx_t* ctx) {
  if (ctx == nullptr || ctx->pending_io.empty()) return;
  // A parked queue only ever holds ok statuses, so poll()/wait_all() here
  // never resubmit (which would dereference a dead caller buffer).
  auto& v = ctx->pending_io;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [](std::unique_ptr<ssd::IoQueue>& q) { return q->poll() == 0; }),
          v.end());
  // Bound the context's outstanding emulated commands like a real
  // queue-pair would: past the cap, the oldest is waited out.
  constexpr size_t kMaxParked = 4;
  while (v.size() > kMaxParked) {
    v.front()->wait_all();
    v.erase(v.begin());
  }
}

Status DStore::finish_io(ssd::IoQueue& q, bool is_write, obs::OpTrace* trace) {
  q.wait_all();
  for (size_t i = 0; i < q.size(); i++) {
    if (q.status_of(i).is_ok()) continue;
    // Per-descriptor recovery: only the failed IO is re-issued (paying its
    // device latency again); the original submission was the first attempt.
    uint64_t retries = 0;
    Status s = ssd::retry_after_failure(
        q.status_of(i), [&] { return q.resubmit(i); },
        ssd::RetryPolicy{cfg_.io_max_retries, cfg_.io_retry_backoff_ns}, &retries);
    if (retries != 0) ssd_io_retries_->add(retries);
    s = apply_io_policy(std::move(s), is_write);
    if (!s.is_ok()) {
      if (trace != nullptr) trace->add_io(q.size(), q.resubmits());
      return s;
    }
  }
  if (trace != nullptr) trace->add_io(q.size(), q.resubmits());
  return Status::ok();
}

Status DStore::submit_io_range(ssd::IoQueue& q, const uint64_t* bl, uint64_t nblocks,
                               const void* wsrc, void* rdst, size_t size, uint64_t offset,
                               obs::OpTrace* trace) {
  const char* w = static_cast<const char*>(wsrc);
  char* r = static_cast<char*>(rdst);
  const size_t bs = block_size();
  uint64_t issued = 0;
  uint64_t saved = 0;
  size_t done = 0;
  while (done < size) {
    uint64_t pos = offset + done;
    uint64_t bi = pos / bs;
    size_t in_block = pos % bs;
    if (bi >= nblocks) return Status::internal("io beyond allocated blocks");
    size_t len = std::min(bs - in_block, size - done);
    // Coalesce a physically contiguous block run into one descriptor
    // (media addressing is linear), capped at cfg_.ssd_qd blocks — the
    // emulated max transfer size — so qd=1 degenerates to one IO per
    // block, the historical synchronous data plane.
    uint64_t run = 1;
    while (run < cfg_.ssd_qd && done + len < size && bi + run < nblocks &&
           bl[bi + run] == bl[bi] + run) {
      len += std::min(bs, size - (done + len));
      run++;
    }
    issued++;
    saved += run - 1;
    q.submit(ssd::IoDesc{bl[bi], in_block, len, w != nullptr ? w + done : nullptr,
                         r != nullptr ? r + done : nullptr});
    done += len;
  }
  if (trace != nullptr) {
    // Published exactly in OpTrace::finish(), batched with the op counter.
    trace->add_batch(issued, saved);
  } else {
    ssd_ios_issued_->add(issued);
    ssd_blocks_coalesced_->add(saved);
    ssd_io_batches_->add(1);
  }
  return Status::ok();
}

Status DStore::write_data(const std::vector<uint64_t>& blocks, const void* data, size_t size,
                          obs::OpTrace* trace) {
  if (size == 0) return Status::ok();
  ssd::IoQueue q(device_, cfg_.ssd_qd);
  DSTORE_RETURN_IF_ERROR(
      submit_io_range(q, blocks.data(), blocks.size(), data, nullptr, size, 0, trace));
  return finish_io(q, /*is_write=*/true, trace);
}

Status DStore::write_data_range(View& v, uint64_t meta_idx, const void* data, size_t size,
                                uint64_t offset, obs::OpTrace* trace) {
  if (size == 0) return Status::ok();
  const MetaEntry* e = v.zone.entry(meta_idx);
  const uint64_t* bl = v.zone.blocks(*e);
  ssd::IoQueue q(device_, cfg_.ssd_qd);
  DSTORE_RETURN_IF_ERROR(submit_io_range(q, bl, e->nblocks, data, nullptr, size, offset, trace));
  return finish_io(q, /*is_write=*/true, trace);
}

Status DStore::read_data_range(View& v, uint64_t meta_idx, void* buf, size_t size,
                               uint64_t offset, size_t* out_len, obs::OpTrace* trace) {
  DSTORE_RETURN_IF_ERROR(verify_meta(v, meta_idx));
  const MetaEntry* e = v.zone.entry(meta_idx);
  if (e == nullptr || !e->in_use) return Status::corruption("read from free entry");
  if (offset >= e->size) {
    *out_len = 0;
    return Status::ok();
  }
  size_t want = std::min(size, (size_t)(e->size - offset));
  if (want == 0) {
    *out_len = 0;
    return Status::ok();
  }
  const uint64_t* bl = v.zone.blocks(*e);
  ssd::IoQueue q(device_, cfg_.ssd_qd);
  DSTORE_RETURN_IF_ERROR(submit_io_range(q, bl, e->nblocks, nullptr, buf, want, offset, trace));
  Status s = finish_io(q, /*is_write=*/false, trace);
  if (s.code() == Code::kCorruption) {
    // The device flagged a bad page under this read: run the containment
    // ladder, and on a successful repair retry the read against the healed
    // pages — the caller sees either verified bytes or corruption, never
    // silently wrong data.
    s = contain_corruption(v, meta_idx, trace);
    if (s.is_ok()) {
      ssd::IoQueue retry(device_, cfg_.ssd_qd);
      s = submit_io_range(retry, bl, e->nblocks, nullptr, buf, want, offset, trace);
      if (s.is_ok()) s = finish_io(retry, /*is_write=*/false, trace);
    }
  }
  DSTORE_RETURN_IF_ERROR(s);
  *out_len = want;
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Integrity containment ladder + scrubber (DESIGN.md §11)
// ---------------------------------------------------------------------------

Status DStore::verify_meta(View& v, uint64_t meta_idx) {
  Status s = v.zone.verify_entry(meta_idx);
  if (s.code() == Code::kCorruption) {
    // The entry's block list itself is untrustworthy, so no repair tier can
    // run — the one uncontainable case. Stop accepting mutations; reads of
    // other objects keep working.
    integrity_failures_->add(1);
    read_only_.store(true, std::memory_order_release);
  }
  return s;
}

Status DStore::verify_object_pages(View& v, uint64_t meta_idx, uint64_t* pages,
                                   std::vector<uint64_t>* bad) {
  const MetaEntry* e = v.zone.entry(meta_idx);
  if (e == nullptr || !e->in_use) return Status::invalid_argument("bad metadata entry");
  const uint64_t* bl = v.zone.blocks(*e);
  const uint64_t bs = block_size();
  const uint64_t ps = device_->config().page_size;
  Status worst;
  for (uint32_t i = 0; i < e->nblocks; i++) {
    uint64_t off = (uint64_t)i * bs;
    if (off >= e->size) break;
    size_t len = (size_t)std::min(bs, e->size - off);
    if (pages != nullptr) *pages += (len + ps - 1) / ps;
    Status s = device_->verify_pages(bl[i], 0, len, bad);
    if (!s.is_ok()) {
      if (bad == nullptr) return s;  // fail fast when not collecting
      if (worst.is_ok()) worst = s;
    }
  }
  return worst;
}

Status DStore::repair_object(View& v, uint64_t meta_idx, obs::OpTrace* trace) {
  const MetaEntry* e = v.zone.entry(meta_idx);
  if (e == nullptr || !e->in_use) return Status::corruption("repair of free entry");
  if (e->size == 0) return Status::ok();  // no data pages to heal
  // The newest committed whole-object put inside the checkpoint window,
  // authenticated by its payload CRC (engine::find_repair_payload).
  auto rp = engine_->find_repair_payload(e->name, e->size);
  if (!rp.is_ok()) return rp.status();
  const std::vector<char>& data = rp.value();
  if (e->data_crc_valid && crc32c(data.data(), data.size()) != e->data_crc) {
    return Status::corruption("log payload does not match the object's content checksum");
  }
  const uint64_t* bl = v.zone.blocks(*e);
  std::vector<uint64_t> blocks(bl, bl + e->nblocks);
  return write_data(blocks, data.data(), data.size(), trace);
}

Status DStore::contain_corruption(View& v, uint64_t meta_idx, obs::OpTrace* trace,
                                  uint64_t* quarantined) {
  integrity_failures_->add(1);
  Status rs = repair_object(v, meta_idx, trace);
  if (rs.is_ok()) rs = verify_object_pages(v, meta_idx, nullptr, nullptr);
  if (rs.is_ok()) {
    integrity_repairs_->add(1);
    return Status::ok();
  }
  // Unrepairable: quarantine every page that still fails its checksum so
  // later reads, scrubs, and fsck report it as known-bad.
  std::vector<uint64_t> bad;
  // lint: allow-discard collecting the bad-page list; the verdict is already failure
  (void)verify_object_pages(v, meta_idx, nullptr, &bad);
  uint64_t before = badpages_.count();
  // lint: allow-discard quarantine is advisory; a full table still fails page reads
  for (uint64_t page : bad) (void)badpages_.add(page);
  uint64_t added = badpages_.count() - before;
  integrity_quarantined_->add(added);
  if (quarantined != nullptr) *quarantined += added;
  const MetaEntry* e = v.zone.entry(meta_idx);
  return Status::corruption("object '" + (e != nullptr ? e->name.str() : std::string()) +
                            "' is corrupt and unrepairable (" + std::to_string(bad.size()) +
                            " bad pages, " + std::to_string(added) + " newly quarantined)");
}

// scrub_now lives below ReaderGuard's definition (it takes per-object read
// exclusion the same way foreground reads do).

void DStore::start_scrubber() {
  scrub_thread_ = std::thread([this] { scrub_loop(); });
}

void DStore::stop_scrubber() {
  {
    MutexGuard g(scrub_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  if (scrub_thread_.joinable()) scrub_thread_.join();
}

void DStore::scrub_loop() {
  UniqueLock g(scrub_mu_);
  while (!scrub_stop_) {
    if (scrub_cv_.wait_for(g, std::chrono::milliseconds(cfg_.scrub_interval_ms),
                           [this] { return scrub_stop_; })) {
      break;
    }
    g.unlock();
    // Failures publish through the integrity metrics and re-surface on the
    // next foreground read; the scrubber itself never aborts.
    // lint: allow-discard see above
    (void)scrub_now(nullptr);
    g.lock();
  }
}

// ---------------------------------------------------------------------------
// Reader-side concurrency control (§4.4)
// ---------------------------------------------------------------------------

// Reader protocol: register in the read-count table FIRST, then check for
// in-flight writes; retreat and retry if one exists. Combined with the
// writer's append-then-poll order this guarantees mutual exclusion without
// locks (flag/flag protocol; the reader side retreats, so no deadlock).
class DStore::ReaderGuard {
 public:
  ReaderGuard(DStore& store, const Key& name) : store_(store), name_(name) {
    for (;;) {
      store_.read_counts_.inc(name_);
      if (!store_.engine_->has_inflight_write(name_)) return;
      store_.read_counts_.dec(name_);
      store_.engine_->wait_no_inflight_write(name_);
    }
  }
  ~ReaderGuard() { store_.read_counts_.dec(name_); }
  ReaderGuard(const ReaderGuard&) = delete;
  ReaderGuard& operator=(const ReaderGuard&) = delete;

 private:
  DStore& store_;
  Key name_;
};

Status DStore::scrub_now(ScrubReport* report) {
  // The whole pass runs under the scrubber role: any store-wide lock held
  // here that a foreground op then blocks on is a quiescence violation.
  // That is why object discovery walks the metadata zone lock-free
  // (peek_live) instead of list()-ing the btree under btree_mu_ — the old
  // listing held the btree shared for the entire enumeration, so a
  // foreground writer's exclusive acquisition could stall behind the
  // scrubber (exactly the tail the paper's scrubber design avoids).
  lockdep::RoleScope role(lockdep::Role::kScrubber);
  ScrubReport local;
  ScrubReport* rep = report != nullptr ? report : &local;
  uint64_t t0 = now_ns();
  View v = view_of(engine_->space());
  Status worst;
  const uint64_t n_entries = v.zone.num_entries();
  for (uint64_t idx = 0; idx < n_entries; idx++) {
    Key k;
    if (!v.zone.peek_live(idx, &k)) continue;  // free entry
    // Per-object read exclusion: writers of this object wait, everything
    // else proceeds — the scrubber never stalls the store globally.
    ReaderGuard guard(*this, k);
    // Re-validate the (idx -> k) binding under the guard: the entry may
    // have been deleted — or released and re-initialized for a different
    // object, leaving the peeked name torn — between the peek and the
    // guard. A binding that validates here is stable for the guard's
    // lifetime, because any writer that could change it writes object k
    // and is excluded.
    Key cur;
    if (!v.zone.peek_live(idx, &cur) || !(cur == k)) continue;
    std::string n = k.str();
    rep->objects_scanned++;
    // Tier 1: metadata entry CRC (uncontainable on failure).
    Status es = verify_meta(v, idx);
    if (!es.is_ok()) {
      rep->checksum_failures++;
      rep->corrupt_objects.push_back(n);
      if (worst.is_ok()) worst = es;
      continue;
    }
    // Tier 2: device page sidecar over the object's used bytes. The
    // device's bandwidth channel rate-limits these verification reads.
    Status ds = verify_object_pages(v, idx, &rep->pages_verified, nullptr);
    // Tier 3: whole-object content CRC — catches internally consistent
    // stale pages (lost or misdirected writes) the sidecar cannot see.
    const MetaEntry* e = v.zone.entry(idx);
    if (ds.is_ok() && e->data_crc_valid && e->size > 0) {
      std::vector<char> content(e->size);
      const uint64_t* bl = v.zone.blocks(*e);
      ssd::IoQueue q(device_, cfg_.ssd_qd);
      ds = submit_io_range(q, bl, e->nblocks, nullptr, content.data(), e->size, 0);
      if (ds.is_ok()) ds = finish_io(q, /*is_write=*/false);
      if (ds.is_ok() && crc32c(content.data(), content.size()) != e->data_crc) {
        ds = Status::corruption("object '" + n + "' content checksum mismatch");
      }
    }
    if (ds.is_ok()) continue;
    if (ds.code() != Code::kCorruption) {
      if (worst.is_ok()) worst = ds;  // transient IO problem, not corruption
      continue;
    }
    rep->checksum_failures++;
    Status cs = contain_corruption(v, idx, nullptr, &rep->quarantined_pages);
    if (cs.is_ok()) {
      rep->repaired++;
    } else {
      rep->corrupt_objects.push_back(n);
      if (worst.is_ok()) worst = cs;
    }
  }
  scrub_pages_verified_->add(rep->pages_verified);
  last_scrub_ns_.store(now_ns() - t0, std::memory_order_relaxed);
  return worst;
}

// ---------------------------------------------------------------------------
// Key-value API
// ---------------------------------------------------------------------------

namespace {
int64_t allowed_inflight(const ds_ctx_t* ctx, const Key& name) {
  // A writer holding an olock on the object tolerates its own NOOP record.
  if (ctx == nullptr) return 0;
  return ctx->held_locks.count(name.str()) != 0 ? 1 : 0;
}

// Replication prepare (DESIGN.md §16): mirror a logged mutation into the
// sink while the op's in-flight exclusion still holds, so the stream
// position it is assigned equals the per-key commit order. Called after the
// data is durable and immediately before engine commit; the returned ticket
// is settled (sink commit) right after.
uint64_t repl_prepare(const DStoreConfig& cfg, dipper::Engine* eng,
                      const dipper::Engine::RecordHandle& h, dipper::OpType op,
                      const Key& k, const void* value, size_t size, uint64_t arg0,
                      uint64_t arg1) {
  if (cfg.repl_sink == nullptr) return 0;
  ReplSink::Mutation m;
  m.op = (uint8_t)op;
  m.shard = cfg.repl_shard_id;
  m.side = h.side;
  m.slot = h.slot;
  m.lsn = h.lsn;
  m.arg0 = arg0;
  m.arg1 = arg1;
  m.key = k.str();
  if (size > 0) m.value.assign((const char*)value, size);
  m.slot_image = eng->slot_image(h);
  return cfg.repl_sink->prepare(std::move(m));
}
}  // namespace

Status DStore::oput(ds_ctx_t* ctx, std::string_view name, const void* value, size_t size) {
  if (!Key::fits(name)) return Status::invalid_argument("name too long");
  if (size > 0 && value == nullptr) return Status::invalid_argument("null value");
  if (read_only()) return Status::read_only("store degraded after ssd write failures");
  Key k = Key::from(name);
  int64_t allowed = allowed_inflight(ctx, k);
  reap_pending(ctx);
  View v = view_of(engine_->space());

  dipper::Engine::RecordHandle h;
  PutPlan plan;
  obs::OpTrace trace(put_metrics_, pool_);
  for (;;) {
    // Write-write CC (§4.4): conflicting writers serialize on the log's
    // in-flight state before entering the synchronous region. Readers are
    // pre-drained here too so the in-region residual wait is ~zero.
    engine_->wait_inflight_at_most(k, allowed);
    read_counts_.wait_until_unread(k);
    pipeline_mu_.lock();
    if (engine_->inflight_count(k) > allowed) {
      pipeline_mu_.unlock();
      continue;
    }
    // Capacity checks BEFORE the log append: an appended record must never
    // fail, so replay sees only executable operations.
    uint64_t old_blocks = 0;
    {
      SharedLockGuard g(btree_mu_);
      auto found = v.btree.find(k);
      if (found.has_value()) {
        old_blocks = v.zone.entry(*found)->nblocks;
      } else if (v.meta_pool.free_count() == 0) {
        pipeline_mu_.unlock();
        return Status::out_of_space("metadata pool exhausted");
      }
    }
    if (v.block_pool.free_count() + old_blocks < blocks_needed(size)) {
      pipeline_mu_.unlock();
      return Status::out_of_space("block pool exhausted");
    }
    // Step 2a: reserve the log record — this fixes its conflict-order
    // position; the in-flight marker becomes visible here. The record's
    // PMEM write happens outside the synchronous region (step 2b below).
    auto hr = engine_->reserve(k);
    if (!hr.is_ok()) {
      pipeline_mu_.unlock();
      return hr.status();
    }
    h = hr.value();
    // Read-write CC (§4.4): residual poll of the read count. New readers
    // see our in-flight record and retreat; the pre-drain above already
    // cleared existing ones, so this is almost always zero iterations.
    read_counts_.wait_until_unread(k);
    // Steps 3-4.
    trace.enter(obs::kStagePoolAlloc);
    Status s = put_phase1(v, k, size, &btree_mu_, &plan);
    trace.leave();
    if (!s.is_ok()) {
      pipeline_mu_.unlock();
      engine_->abort(h);
      return s;  // unreachable given the capacity checks; fail loudly
    }
    break;
  }
  // Steps 8a/2b: submit the op's data IOs through the NVMe queue-pair,
  // then persist the log record while they are in flight — the record
  // write and the data writes are independent until the commit point
  // (step 9), so their latencies overlap instead of adding up.
  // Heap-owned so the early-ack path can park it on the context; the
  // allocation is noise next to the device's per-IO base latency.
  const bool early_ack =
      cfg_.early_ack && ctx != nullptr && device_->config().power_loss_protection;
  auto ioq_owner = std::make_unique<ssd::IoQueue>(device_, cfg_.ssd_qd);
  ssd::IoQueue& ioq = *ioq_owner;
  Status s;
  Status ws;
  if (cfg_.observational_equivalence) {
    // Step 5, then 8a (IO submission), 2b (record write+flush) and 6-7
    // outside the region.
    pipeline_mu_.unlock();
    trace.enter(obs::kStageSsdBatch);
    ws = submit_io_range(ioq, plan.blocks.data(), plan.blocks.size(), value, nullptr, size, 0, &trace);
    trace.enter(obs::kStageLogAppend);
    engine_->write_reserved(h, OpType::kPut, size, 0, value, size);
    s = put_phase2(v, k, size, plan, &btree_mu_, &trace);
  } else {
    // Fig 9 ablation (no OE): steps 6-7 stay inside the synchronous region.
    s = put_phase2(v, k, size, plan, &btree_mu_, &trace);
    pipeline_mu_.unlock();
    trace.enter(obs::kStageSsdBatch);
    ws = submit_io_range(ioq, plan.blocks.data(), plan.blocks.size(), value, nullptr, size, 0, &trace);
    trace.enter(obs::kStageLogAppend);
    engine_->write_reserved(h, OpType::kPut, size, 0, value, size);
    trace.leave();
  }
  // Step 8b: reap the data completions (device-cache durable once acked).
  // A failed write must abort the reserved record: it was never committed,
  // and leaving it in-flight would wedge every later writer of this object.
  //
  // Early ack (DESIGN.md §13): with a PLP device, every submission already
  // landed in the capacitor-backed write cache — acknowledged == durable —
  // and in this emulation a failure completes at submission time, so a
  // queue with none observed will drain clean. Skip the latency wait,
  // commit now, and park the queue on the context; anything else (a failure
  // already posted, no context, no PLP) takes the synchronous reap with its
  // bounded-retry policy.
  trace.enter(obs::kStageSsdBatch);
  bool parked = false;
  if (s.is_ok() && ws.is_ok()) {
    if (early_ack && !ioq.any_failed()) {
      trace.add_io(ioq.size(), ioq.resubmits());
      parked = true;
    } else {
      ws = finish_io(ioq, /*is_write=*/true, &trace);
    }
  }
  if (s.is_ok()) s = ws;
  if (!s.is_ok()) {
    engine_->abort(h);
    return s;
  }
  // Record the whole-object content CRC — the tier that catches internally
  // consistent stale pages (lost and misdirected writes) the per-page
  // sidecar cannot see. Frontend-only: replay has no data bytes, so shadow
  // entries keep data_crc_valid = 0.
  if (size > 0) {
    MetaEntry* e = v.zone.entry(plan.meta_idx);
    e->data_crc = crc32c(value, size);
    e->data_crc_valid = 1;
    v.zone.seal_entry(plan.meta_idx);
  }
  // Step 9: commit — the op is durable from here on.
  uint64_t ticket =
      repl_prepare(cfg_, engine_.get(), h, OpType::kPut, k, value, size, size, 0);
  trace.enter(obs::kStageCommitFlush);
  engine_->commit(h);
  trace.leave();
  if (ticket != 0) cfg_.repl_sink->commit(ticket);
  if (parked) ctx->pending_io.push_back(std::move(ioq_owner));
  trace.succeed();
  return Status::ok();
}

Result<size_t> DStore::oget(ds_ctx_t* /*ctx*/, std::string_view name, void* buf,
                            size_t buf_cap) {
  if (!Key::fits(name)) return Status::invalid_argument("name too long");
  Key k = Key::from(name);
  obs::OpTrace trace(get_metrics_, pool_);
  ReaderGuard guard(*this, k);
  View v = view_of(engine_->space());
  std::optional<uint64_t> found;
  {
    SharedLockGuard g(btree_mu_);
    found = v.btree.find(k);
  }
  if (!found.has_value()) return Status::not_found(k.str());
  const MetaEntry* e = v.zone.entry(*found);
  size_t value_size = e->size;
  size_t out_len = 0;
  DSTORE_RETURN_IF_ERROR(
      read_data_range(v, *found, buf, std::min(buf_cap, value_size), 0, &out_len, &trace));
  // Content tier: a misdirected write leaves the intended pages stale but
  // internally consistent — only the whole-object checksum can tell. Runs
  // whenever the caller's buffer covered the entire object.
  if (out_len == value_size && value_size > 0 && e->data_crc_valid &&
      crc32c(buf, out_len) != e->data_crc) {
    Status s = contain_corruption(v, *found, &trace);
    if (s.is_ok()) {
      s = read_data_range(v, *found, buf, value_size, 0, &out_len, &trace);
      if (s.is_ok() && crc32c(buf, out_len) != e->data_crc) {
        s = Status::corruption("object '" + k.str() + "' content checksum mismatch");
      }
    }
    DSTORE_RETURN_IF_ERROR(s);
  }
  trace.succeed();
  return value_size;
}

// Out-of-line so unique_ptr<ReaderGuard> sees the complete guard type.
DStore::ReadView::ReadView() = default;
DStore::ReadView::ReadView(ReadView&&) noexcept = default;
DStore::ReadView& DStore::ReadView::operator=(ReadView&&) noexcept = default;
DStore::ReadView::~ReadView() = default;

namespace {
// The same composition crc32c(data, size) produces, streamed over the
// view's pieces — zero-copy reads verify the identical content checksum
// oget computes over the copied-out buffer.
uint32_t crc_over_pieces(const std::vector<DStore::ReadView::Piece>& pieces) {
  uint32_t c = 0xffffffffu;
  c = crc32c_extend_u64(c, 0);
  for (const auto& p : pieces) c = crc32c_extend(c, p.data, p.len);
  c ^= 0xffffffffu;
  return c == 0 ? 1u : c;
}
}  // namespace

Result<DStore::ReadView> DStore::oget_zc(ds_ctx_t* /*ctx*/, std::string_view name) {
  if (!Key::fits(name)) return Status::invalid_argument("name too long");
  Key k = Key::from(name);
  obs::OpTrace trace(get_metrics_, pool_);
  ReadView view;
  view.pin_ = std::make_unique<ReaderGuard>(*this, k);  // pin before lookup
  View v = view_of(engine_->space());
  std::optional<uint64_t> found;
  {
    SharedLockGuard g(btree_mu_);
    found = v.btree.find(k);
  }
  if (!found.has_value()) return Status::not_found(k.str());
  DSTORE_RETURN_IF_ERROR(verify_meta(v, *found));
  const MetaEntry* e = v.zone.entry(*found);
  view.size_ = e->size;
  if (e->size == 0) {
    trace.succeed();
    return std::move(view);
  }
  const uint64_t* bl = v.zone.blocks(*e);
  const size_t bs = block_size();
  // Map every block, merging pointer-contiguous runs into one piece, and
  // sidecar-verify what is handed out — verify_pages charges the media
  // bandwidth channel, so zero-copy reads still pay the device's read cost
  // (minus the copy-out).
  uint64_t remaining = e->size;
  for (uint32_t i = 0; i < e->nblocks && remaining > 0; i++) {
    const char* p = static_cast<const char*>(device_->direct_read_map(bl[i]));
    if (p == nullptr) {
      return Status::unsupported("device has no direct read mapping; use oget()");
    }
    size_t len = (size_t)std::min<uint64_t>(bs, remaining);
    Status vs = device_->verify_pages(bl[i], 0, len, nullptr);
    if (vs.code() == Code::kCorruption) {
      vs = contain_corruption(v, *found, &trace);
      if (vs.is_ok()) vs = device_->verify_pages(bl[i], 0, len, nullptr);
    }
    DSTORE_RETURN_IF_ERROR(vs);
    if (!view.pieces_.empty() &&
        static_cast<const char*>(view.pieces_.back().data) + view.pieces_.back().len == p) {
      view.pieces_.back().len += len;
    } else {
      view.pieces_.push_back({p, len});
    }
    remaining -= len;
  }
  // Content tier (as in oget): catches internally consistent stale pages —
  // lost or misdirected writes — the per-page sidecar cannot see.
  if (e->data_crc_valid && crc_over_pieces(view.pieces_) != e->data_crc) {
    Status cs = contain_corruption(v, *found, &trace);
    if (cs.is_ok() && crc_over_pieces(view.pieces_) != e->data_crc) {
      cs = Status::corruption("object '" + k.str() + "' content checksum mismatch");
    }
    DSTORE_RETURN_IF_ERROR(cs);
  }
  trace.succeed();
  return std::move(view);
}

Status DStore::odelete(ds_ctx_t* ctx, std::string_view name) {
  if (!Key::fits(name)) return Status::invalid_argument("name too long");
  if (read_only()) return Status::read_only("store degraded after ssd write failures");
  Key k = Key::from(name);
  int64_t allowed = allowed_inflight(ctx, k);
  reap_pending(ctx);
  View v = view_of(engine_->space());

  dipper::Engine::RecordHandle h;
  DeletePlan plan;
  obs::OpTrace trace(delete_metrics_, pool_);
  for (;;) {
    engine_->wait_inflight_at_most(k, allowed);
    read_counts_.wait_until_unread(k);
    pipeline_mu_.lock();
    if (engine_->inflight_count(k) > allowed) {
      pipeline_mu_.unlock();
      continue;
    }
    {
      SharedLockGuard g(btree_mu_);
      if (!v.btree.find(k).has_value()) {
        pipeline_mu_.unlock();
        return Status::not_found(k.str());
      }
    }
    auto hr = engine_->reserve(k);
    if (!hr.is_ok()) {
      pipeline_mu_.unlock();
      return hr.status();
    }
    h = hr.value();
    read_counts_.wait_until_unread(k);
    Status s = delete_phase1(v, k, &btree_mu_, &plan);
    if (!s.is_ok()) {
      pipeline_mu_.unlock();
      engine_->abort(h);
      return s;
    }
    break;
  }
  Status s;
  if (cfg_.observational_equivalence) {
    pipeline_mu_.unlock();
    engine_->write_reserved(h, OpType::kDelete, 0, 0);
    s = delete_phase2(v, plan, &btree_mu_);
  } else {
    s = delete_phase2(v, plan, &btree_mu_);
    pipeline_mu_.unlock();
    engine_->write_reserved(h, OpType::kDelete, 0, 0);
  }
  if (!s.is_ok()) {
    engine_->abort(h);
    return s;
  }
  uint64_t ticket =
      repl_prepare(cfg_, engine_.get(), h, OpType::kDelete, k, nullptr, 0, 0, 0);
  engine_->commit(h);
  if (ticket != 0) cfg_.repl_sink->commit(ticket);
  trace.succeed();
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Filesystem API
// ---------------------------------------------------------------------------

Result<Object*> DStore::oopen(ds_ctx_t* ctx, std::string_view name, size_t /*size_hint*/,
                              uint32_t mode) {
  if (!Key::fits(name)) return Status::invalid_argument("name too long");
  if ((mode & (kRead | kWrite)) == 0) return Status::invalid_argument("bad open mode");
  if ((mode & kCreate) != 0 && (mode & kWrite) == 0) {
    return Status::invalid_argument("kCreate requires kWrite");
  }
  Key k = Key::from(name);
  View v = view_of(engine_->space());

  bool exists;
  {
    SharedLockGuard g(btree_mu_);
    exists = v.btree.find(k).has_value();
  }
  if (!exists) {
    if ((mode & kCreate) == 0) return Status::not_found(k.str());
    if (read_only()) return Status::read_only("store degraded after ssd write failures");
    // Create path: a logged metadata operation (§4.3: "log records for
    // oopen ... are only written if they modify any metadata").
    int64_t allowed = allowed_inflight(ctx, k);
    obs::OpTrace trace(put_metrics_, pool_);
    for (;;) {
      engine_->wait_inflight_at_most(k, allowed);
      pipeline_mu_.lock();
      if (engine_->inflight_count(k) > allowed) {
        pipeline_mu_.unlock();
        continue;
      }
      {
        SharedLockGuard g(btree_mu_);
        exists = v.btree.find(k).has_value();
      }
      if (exists) {
        pipeline_mu_.unlock();
        trace.succeed();
        break;  // someone else created it; open it
      }
      if (v.meta_pool.free_count() == 0) {
        pipeline_mu_.unlock();
        return Status::out_of_space("metadata pool exhausted");
      }
      auto hr = engine_->reserve(k);
      if (!hr.is_ok()) {
        pipeline_mu_.unlock();
        return hr.status();
      }
      read_counts_.wait_until_unread(k);
      // Pool allocation is phase-1 work; the zone/btree updates are
      // phase-2 but cheap enough to fold here (create has no data phase).
      Status s;
      if (cfg_.observational_equivalence) {
        auto idx = v.meta_pool.alloc();
        pipeline_mu_.unlock();
        engine_->write_reserved(hr.value(), OpType::kCreate, 0, 0);
        if (!idx.has_value()) {
          s = Status::out_of_space("metadata pool exhausted");
        } else {
          s = v.zone.init_entry(*idx, k);
          if (s.is_ok()) {
            v.zone.entry(*idx)->size = 0;
            LockGuard<SharedSpinLock> g(btree_mu_);
            s = v.btree.insert(k, *idx);
          }
        }
      } else {
        uint64_t meta_idx = 0;
        s = create_phase1(v, &meta_idx);
        if (s.is_ok()) s = create_phase2(v, k, meta_idx, &btree_mu_);
        pipeline_mu_.unlock();
        engine_->write_reserved(hr.value(), OpType::kCreate, 0, 0);
      }
      if (!s.is_ok()) {
        engine_->abort(hr.value());
        return s;
      }
      uint64_t ticket = repl_prepare(cfg_, engine_.get(), hr.value(), OpType::kCreate, k,
                                     nullptr, 0, 0, 0);
      engine_->commit(hr.value());
      if (ticket != 0) cfg_.repl_sink->commit(ticket);
      trace.succeed();
      break;
    }
  }
  auto* obj = new Object{this, k, mode};
  open_objects_.fetch_add(1, std::memory_order_relaxed);
  return obj;
}

void DStore::oclose(Object* object) {
  if (object == nullptr) return;
  open_objects_.fetch_sub(1, std::memory_order_relaxed);
  delete object;
}

Result<size_t> DStore::oread(Object* object, void* buf, size_t size, uint64_t offset) {
  if (object == nullptr || (object->mode & kRead) == 0) {
    return Status::invalid_argument("object not open for reading");
  }
  obs::OpTrace trace(get_metrics_, pool_);
  ReaderGuard guard(*this, object->name);
  View v = view_of(engine_->space());
  std::optional<uint64_t> found;
  {
    SharedLockGuard g(btree_mu_);
    found = v.btree.find(object->name);
  }
  if (!found.has_value()) return Status::not_found(object->name.str());
  size_t out_len = 0;
  DSTORE_RETURN_IF_ERROR(read_data_range(v, *found, buf, size, offset, &out_len, &trace));
  trace.succeed();
  return out_len;
}

Result<size_t> DStore::owrite(Object* object, const void* buf, size_t size, uint64_t offset) {
  if (object == nullptr || (object->mode & kWrite) == 0) {
    return Status::invalid_argument("object not open for writing");
  }
  if (size == 0) return (size_t)0;
  if (read_only()) return Status::read_only("store degraded after ssd write failures");
  Key k = object->name;
  View v = view_of(engine_->space());
  int64_t allowed = 0;
  obs::OpTrace trace(write_metrics_, pool_);

  for (;;) {
    engine_->wait_inflight_at_most(k, allowed);
    pipeline_mu_.lock();
    if (engine_->inflight_count(k) > allowed) {
      pipeline_mu_.unlock();
      continue;
    }
    std::optional<uint64_t> found;
    {
      SharedLockGuard g(btree_mu_);
      found = v.btree.find(k);
    }
    if (!found.has_value()) {
      pipeline_mu_.unlock();
      return Status::not_found(k.str());
    }
    MetaEntry* e = v.zone.entry(*found);
    uint64_t new_size = std::max<uint64_t>(e->size, offset + size);
    // repair_logging routes pure overwrites through the logged path too, so
    // their payloads reach the physical log and stay repairable (§11); the
    // kWrite record replays as a metadata no-op.
    if (new_size > e->size || cfg_.repair_logging) {
      // Metadata changes: logged operation (§4.3).
      uint64_t need = blocks_needed(new_size);
      if (need > e->nblocks &&
          v.block_pool.free_count() < need - e->nblocks) {
        pipeline_mu_.unlock();
        return Status::out_of_space("block pool exhausted");
      }
      auto hr = engine_->reserve(k);
      if (!hr.is_ok()) {
        pipeline_mu_.unlock();
        return hr.status();
      }
      read_counts_.wait_until_unread(k);
      ExtendPlan plan;
      trace.enter(obs::kStagePoolAlloc);
      Status s = extend_phase1(v, k, new_size, &btree_mu_, &plan);
      trace.leave();
      if (!s.is_ok()) {
        pipeline_mu_.unlock();
        engine_->abort(hr.value());
        return s;
      }
      // Snapshot the full physical block list while the entry is stable
      // under the pipeline lock: phase 2 appends plan.new_blocks to the
      // entry (possibly reallocating its block array) after we unlock, and
      // the data IOs below must not race that growth.
      std::vector<uint64_t> all_blocks;
      {
        const uint64_t* bl = v.zone.blocks(*e);
        all_blocks.assign(bl, bl + e->nblocks);
      }
      all_blocks.insert(all_blocks.end(), plan.new_blocks.begin(), plan.new_blocks.end());
      // Submit the data IOs, then persist the log record while they are in
      // flight (independent until commit — same overlap as oput step 8a/2b).
      ssd::IoQueue ioq(device_, cfg_.ssd_qd);
      Status ws;
      if (cfg_.observational_equivalence) {
        pipeline_mu_.unlock();
        trace.enter(obs::kStageSsdBatch);
        ws = submit_io_range(ioq, all_blocks.data(), all_blocks.size(), buf, nullptr, size,
                             offset, &trace);
        trace.enter(obs::kStageLogAppend);
        engine_->write_reserved(hr.value(), OpType::kWrite, new_size, offset, buf, size);
        trace.enter(obs::kStageMetaZone);
        s = extend_phase2(v, k, new_size, plan, &btree_mu_);
        trace.leave();
      } else {
        trace.enter(obs::kStageMetaZone);
        s = extend_phase2(v, k, new_size, plan, &btree_mu_);
        trace.leave();
        pipeline_mu_.unlock();
        trace.enter(obs::kStageSsdBatch);
        ws = submit_io_range(ioq, all_blocks.data(), all_blocks.size(), buf, nullptr, size,
                             offset, &trace);
        trace.enter(obs::kStageLogAppend);
        engine_->write_reserved(hr.value(), OpType::kWrite, new_size, offset, buf, size);
        trace.leave();
      }
      trace.enter(obs::kStageSsdBatch);
      if (s.is_ok() && ws.is_ok()) ws = finish_io(ioq, /*is_write=*/true, &trace);
      if (s.is_ok()) s = ws;
      if (!s.is_ok()) {
        engine_->abort(hr.value());
        return s;
      }
      // Whole-object writes re-establish the content CRC; partial ones left
      // it invalidated by extend_phase2.
      if (offset == 0 && size == new_size) {
        MetaEntry* e2 = v.zone.entry(plan.meta_idx);
        e2->data_crc = crc32c(buf, size);
        e2->data_crc_valid = 1;
        v.zone.seal_entry(plan.meta_idx);
      }
      uint64_t ticket = repl_prepare(cfg_, engine_.get(), hr.value(), OpType::kWrite, k,
                                     buf, size, new_size, offset);
      trace.enter(obs::kStageCommitFlush);
      engine_->commit(hr.value());
      trace.leave();
      if (ticket != 0) cfg_.repl_sink->commit(ticket);
      trace.succeed();
      return size;
    }
    // Pure data overwrite: no metadata change, no log record — but still
    // visible to CC so readers and conflicting writers serialize.
    engine_->register_external_write(k);
    read_counts_.wait_until_unread(k);
    // Content is about to change: drop the recorded CRC first, so a torn
    // write can never leave a stale-but-"valid" content checksum behind.
    e->data_crc_valid = 0;
    v.zone.seal_entry(*found);
    pipeline_mu_.unlock();
    trace.enter(obs::kStageSsdBatch);
    Status s = write_data_range(v, *found, buf, size, offset, &trace);
    trace.leave();
    if (s.is_ok() && offset == 0 && size == e->size) {
      e->data_crc = crc32c(buf, size);
      e->data_crc_valid = 1;
      v.zone.seal_entry(*found);
    }
    // Replication: a pure overwrite leaves no log record, so the stream
    // entry ships unlogged (no slot image) — still inside the external-write
    // exclusion window, so its stream position matches the per-key order.
    if (s.is_ok() && cfg_.repl_sink != nullptr) {
      ReplSink::Mutation m;
      m.op = (uint8_t)OpType::kWrite;
      m.shard = cfg_.repl_shard_id;
      m.unlogged = true;
      m.arg0 = e->size;  // size unchanged by a pure overwrite
      m.arg1 = offset;
      m.key = k.str();
      m.value.assign((const char*)buf, size);
      uint64_t ticket = cfg_.repl_sink->prepare(std::move(m));
      if (ticket != 0) cfg_.repl_sink->commit(ticket);
    }
    engine_->unregister_external_write(k);
    DSTORE_RETURN_IF_ERROR(s);
    trace.succeed();
    return size;
  }
}

// ---------------------------------------------------------------------------
// olock / ounlock (§4.5)
// ---------------------------------------------------------------------------

Status DStore::olock(ds_ctx_t* ctx, std::string_view name) {
  if (ctx == nullptr) return Status::invalid_argument("null context");
  if (!Key::fits(name)) return Status::invalid_argument("name too long");
  Key k = Key::from(name);
  std::string ks = k.str();
  if (ctx->held_locks.count(ks) != 0) return Status::busy("lock already held by this context");
  for (;;) {
    engine_->wait_no_inflight_write(k);
    auto h = engine_->lock_object(k);
    if (h.is_ok()) {
      ctx->held_locks.insert(ks);
      return Status::ok();
    }
    if (h.status().code() != Code::kBusy) return h.status();
    std::this_thread::yield();
  }
}

Status DStore::ounlock(ds_ctx_t* ctx, std::string_view name) {
  if (ctx == nullptr) return Status::invalid_argument("null context");
  Key k = Key::from(name);
  std::string ks = k.str();
  auto it = ctx->held_locks.find(ks);
  if (it == ctx->held_locks.end()) return Status::not_found("lock not held by this context");
  ctx->held_locks.erase(it);
  engine_->unlock_object({}, k);
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Result<uint64_t> DStore::object_size(std::string_view name) {
  if (!Key::fits(name)) return Status::invalid_argument("name too long");
  Key k = Key::from(name);
  View v = view_of(engine_->space());
  std::optional<uint64_t> found;
  {
    SharedLockGuard g(btree_mu_);
    found = v.btree.find(k);
  }
  if (!found.has_value()) return Status::not_found(k.str());
  return (uint64_t)v.zone.entry(*found)->size;
}

void DStore::list(const std::function<bool(std::string_view, uint64_t)>& fn) {
  View v = view_of(engine_->space());
  SharedLockGuard g(btree_mu_);
  v.btree.for_each([&](const Key& key, uint64_t idx) {
    const MetaEntry* e = v.zone.entry(idx);
    return fn(key.view(), e != nullptr ? e->size : 0);
  });
}

uint64_t DStore::object_count() {
  View v = view_of(engine_->space());
  SharedLockGuard g(btree_mu_);
  return v.btree.size();
}

DStore::SpaceUsage DStore::space_usage() {
  View v = view_of(engine_->space());
  SpaceUsage u{};
  u.dram_bytes = engine_->space().used_bytes();
  u.pmem_bytes = engine_->pmem_used_bytes();
  uint64_t blocks_in_use = cfg_.num_blocks - v.block_pool.free_count();
  u.ssd_bytes = blocks_in_use * block_size();
  return u;
}

Status DStore::validate() {
  View v = view_of(engine_->space());
  LockGuard<SharedSpinLock> g(btree_mu_);
  DSTORE_RETURN_IF_ERROR(v.btree.validate());
  uint64_t visited = 0;
  uint64_t blocks_in_entries = 0;
  Status problem;
  v.btree.for_each([&](const Key& key, uint64_t idx) {
    const MetaEntry* e = v.zone.entry(idx);
    if (e == nullptr || !e->in_use) {
      problem = Status::corruption("btree value points at unused metadata entry");
      return false;
    }
    if (!(e->name == key)) {
      problem = Status::corruption("metadata entry name mismatch");
      return false;
    }
    if (blocks_needed(e->size) != e->nblocks) {
      problem = Status::corruption("entry size/block-count mismatch");
      return false;
    }
    Status es = v.zone.verify_entry(idx);
    if (!es.is_ok()) {
      problem = es;
      return false;
    }
    visited++;
    blocks_in_entries += e->nblocks;
    return true;
  });
  DSTORE_RETURN_IF_ERROR(problem);
  if (visited != v.btree.size()) return Status::corruption("btree size mismatch");
  if (v.meta_pool.free_count() + visited != cfg_.max_objects) {
    return Status::corruption("metadata pool accounting mismatch");
  }
  if (v.block_pool.free_count() + blocks_in_entries != cfg_.num_blocks) {
    return Status::corruption("block pool accounting mismatch");
  }
  return Status::ok();
}

}  // namespace dstore
