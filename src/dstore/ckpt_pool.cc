#include "dstore/ckpt_pool.h"

#include <algorithm>

namespace dstore {

CheckpointPool::CheckpointPool(Config cfg, size_t num_shards)
    : cfg_(cfg),
      num_shards_(num_shards),
      pending_(num_shards),
      engines_(num_shards, nullptr),
      shard_running_(num_shards) {}

CheckpointPool::~CheckpointPool() { stop(); }

void CheckpointPool::set_shard(size_t i, dipper::Engine* engine) {
  MutexGuard g(mu_);
  engines_[i] = engine;
}

void CheckpointPool::start() {
  if (!workers_.empty()) return;
  int n = cfg_.workers;
  if (n <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    n = (int)std::min(num_shards_, (size_t)std::max(1u, hw / 2));
  }
  stop_.store(false, std::memory_order_release);
  {
    MutexGuard g(mu_);
    last_tick_ = std::chrono::steady_clock::now();
  }
  workers_.reserve((size_t)n);
  for (int i = 0; i < n; i++) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void CheckpointPool::stop() {
  {
    MutexGuard g(mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void CheckpointPool::pause() {
  paused_.store(true, std::memory_order_seq_cst);
  UniqueLock g(mu_);
  cv_.wait(g, [this] { return active_steps_.load(std::memory_order_acquire) == 0; });
}

void CheckpointPool::resume() {
  paused_.store(false, std::memory_order_release);
  cv_.notify_all();
}

void CheckpointPool::notify(size_t shard) {
  // Frontend hot path (Engine::ckpt_notify): sticky per-shard flag for
  // dedup, then the same try_lock-then-notify idiom as the engine's own
  // request_checkpoint() — never block here. A lost notify is recovered by
  // the flag: the next notify (or a timer tick) re-wakes a worker.
  stats_.notifies.fetch_add(1, std::memory_order_relaxed);
  if (!pending_[shard].exchange(true, std::memory_order_acq_rel)) {
    pending_count_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (mu_.try_lock()) {
    mu_.unlock();
    cv_.notify_one();
  }
}

size_t CheckpointPool::queue_depth() const {
  return pending_count_.load(std::memory_order_acquire) +
         active_steps_.load(std::memory_order_acquire);
}

bool CheckpointPool::claim_pending_shard(size_t* shard) {
  if (pending_count_.load(std::memory_order_acquire) == 0) return false;
  size_t start = rr_next_.fetch_add(1, std::memory_order_relaxed);
  for (size_t k = 0; k < num_shards_; k++) {
    size_t i = (start + k) % num_shards_;
    if (pending_[i].exchange(false, std::memory_order_acq_rel)) {
      pending_count_.fetch_sub(1, std::memory_order_acq_rel);
      *shard = i;
      return true;
    }
  }
  return false;
}

void CheckpointPool::run_shard_step(size_t shard) {
  if (shard_running_[shard].exchange(true, std::memory_order_acq_rel)) {
    // Another worker is mid-step on this shard; it re-checks checkpoint_due()
    // after its step and re-queues, so dropping the claim here is safe.
    return;
  }
  active_steps_.fetch_add(1, std::memory_order_seq_cst);
  dipper::Engine* e = nullptr;
  if (!paused_.load(std::memory_order_seq_cst) && !stop_.load(std::memory_order_acquire)) {
    {
      MutexGuard g(mu_);
      e = engines_[shard];
    }
    if (e != nullptr && e->checkpoint_due()) {
      stats_.runs.fetch_add(1, std::memory_order_relaxed);
      Status s = e->checkpoint_step();
      if (!s.is_ok() && !s.is_busy()) {
        stats_.failures.fetch_add(1, std::memory_order_relaxed);
      }
      if (s.is_busy()) {
        // Transient (previous archived log not yet recycled, or a racing
        // checkpoint_now()): back off before re-queueing so a stuck shard
        // doesn't spin the worker hot.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  }
  // Appends during the step (or a busy/paused skip) may have left the shard
  // past the watermark again; the sticky flag makes this cheap. The engine
  // must be consulted while this step still counts toward active_steps_ —
  // once the decrement below lands, pause() can return and recovery may
  // delete the engine out from under a late checkpoint_due() probe.
  bool renotify = e != nullptr && e->checkpoint_due();
  shard_running_[shard].store(false, std::memory_order_release);
  active_steps_.fetch_sub(1, std::memory_order_seq_cst);
  cv_.notify_all();  // pause() waits on active_steps_ == 0
  if (renotify) notify(shard);
}

bool CheckpointPool::try_run_one_job() {
  Job job;
  {
    MutexGuard g(mu_);
    if (jobs_.empty()) return false;
    job = jobs_.front();
    jobs_.pop_front();
  }
  Status s = (*job.fn)(job.shard);
  (*job.out)[job.shard] = s;
  job.remaining->fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

std::vector<Status> CheckpointPool::run_all(const std::function<Status(size_t)>& fn) {
  std::vector<Status> out(num_shards_, Status::ok());
  if (num_shards_ == 0) return out;
  std::atomic<size_t> remaining{num_shards_};
  {
    MutexGuard g(mu_);
    for (size_t i = 0; i < num_shards_; i++) {
      jobs_.push_back(Job{i, &fn, &out, &remaining});
    }
  }
  cv_.notify_all();
  // The caller participates: with few (or stopped) workers every job still
  // runs, and a caller-side job that publishes a bulk pass finds helpers.
  while (remaining.load(std::memory_order_acquire) > 0) {
    if (!try_run_one_job()) {
      help_chunks(/*stealing=*/false);
      std::this_thread::yield();
    }
  }
  return out;
}

void CheckpointPool::help_chunks(bool stealing) {
  // chunk_helpers accounting (see run_chunks) keeps the task alive while
  // any helper might still dereference it.
  chunk_helpers_.fetch_add(1, std::memory_order_acq_rel);
  ChunkTask* t = chunk_task_.load(std::memory_order_acquire);
  if (t != nullptr) {
    for (;;) {
      size_t i = t->next.fetch_add(1, std::memory_order_acq_rel);
      if (i >= t->n) break;
      (*t->fn)(i);
      t->done.fetch_add(1, std::memory_order_acq_rel);
      if (stealing) stats_.steal_chunks.fetch_add(1, std::memory_order_relaxed);
    }
  }
  chunk_helpers_.fetch_sub(1, std::memory_order_acq_rel);
}

void CheckpointPool::run_chunks(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  ChunkTask task;
  task.n = n;
  task.fn = &fn;
  ChunkTask* expected = nullptr;
  // One published task at a time; a second concurrent bulk pass just runs
  // its own chunks without donating them.
  bool published = chunk_task_.compare_exchange_strong(expected, &task,
                                                       std::memory_order_acq_rel);
  if (published) {
    if (mu_.try_lock()) {
      mu_.unlock();
      cv_.notify_all();
    }
  }
  for (;;) {
    size_t i = task.next.fetch_add(1, std::memory_order_acq_rel);
    if (i >= n) break;
    fn(i);
    task.done.fetch_add(1, std::memory_order_acq_rel);
  }
  while (task.done.load(std::memory_order_acquire) < n) std::this_thread::yield();
  if (published) {
    chunk_task_.store(nullptr, std::memory_order_release);
    // A helper that loaded the pointer before the clear may still be inside
    // its (empty) claim loop; wait it out before the task leaves scope.
    while (chunk_helpers_.load(std::memory_order_acquire) > 0) std::this_thread::yield();
  }
}

void CheckpointPool::timer_tick() {
  std::vector<dipper::Engine*> engines;
  {
    MutexGuard g(mu_);
    auto now = std::chrono::steady_clock::now();
    if (now - last_tick_ < std::chrono::milliseconds(cfg_.interval_ms)) return;
    last_tick_ = now;
    engines = engines_;
  }
  for (size_t i = 0; i < engines.size(); i++) {
    if (engines[i] != nullptr && engines[i]->log_fill() > 0.0) notify(i);
  }
}

void CheckpointPool::worker_main(int /*id*/) {
  lockdep::RoleScope role(lockdep::Role::kCheckpoint);
  for (;;) {
    bool have_job = false;
    {
      UniqueLock g(mu_);
      auto pred = [this] {
        return stop_.load(std::memory_order_acquire) || !jobs_.empty() ||
               chunk_task_.load(std::memory_order_acquire) != nullptr ||
               (!paused_.load(std::memory_order_acquire) &&
                pending_count_.load(std::memory_order_acquire) > 0);
      };
      if (cfg_.interval_ms > 0) {
        cv_.wait_for(g, std::chrono::milliseconds(cfg_.interval_ms), pred);
      } else {
        cv_.wait(g, pred);
      }
      if (stop_.load(std::memory_order_acquire)) return;
      have_job = !jobs_.empty();
    }
    if (have_job) {
      try_run_one_job();
      continue;
    }
    help_chunks(/*stealing=*/true);
    size_t shard = 0;
    if (!paused_.load(std::memory_order_acquire) && claim_pending_shard(&shard)) {
      run_shard_step(shard);
      continue;
    }
    if (cfg_.interval_ms > 0) timer_tick();
  }
}

}  // namespace dstore
