/* dstore_c.h — C bindings for DStore, matching Table 2 of the paper
 * verbatim: ds_init/ds_finalize, oopen/oclose/oread/owrite, oget/oput/
 * odelete, olock/ounlock.
 *
 * The store itself is created/recovered through dstore_open(), which owns
 * the emulated PMEM pool and block device behind an opaque handle. All
 * functions are thread-safe; each IO thread should use its own ds_ctx_t*.
 *
 * Error reporting: functions returning int use 0 for success and a
 * negative dstore error code otherwise (see DS_E* below); oread/owrite/
 * oget return a byte count >= 0 or a negative error code, mirroring
 * POSIX-style ssize_t conventions.
 */
#ifndef DSTORE_DSTORE_C_H_
#define DSTORE_DSTORE_C_H_

#include <stddef.h>
#include <stdint.h>
#include <sys/types.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Error-code and byte-count returns must be checked: ignoring them turns a
 * failed write into silent data loss. The C++ side gets the same guarantee
 * from [[nodiscard]] on Status/Result; this is the C89-compatible spelling.
 * tools/dstore_lint additionally rejects discarded Status returns in src/. */
#if defined(__GNUC__) || defined(__clang__)
#define DS_NODISCARD __attribute__((warn_unused_result))
#else
#define DS_NODISCARD
#endif

/* Binding version, bumped whenever this header's contract changes.
 * 2.0: removed the DStore::Stats/StageStats C++ getters the bindings sat
 * on; added ds_api_version() and ds_metrics_dump(). */
#define DS_API_VERSION_MAJOR 2
#define DS_API_VERSION_MINOR 0

/* Runtime version of the linked library: (major << 16) | minor. Compare
 * the major against DS_API_VERSION_MAJOR before using anything else. */
uint32_t ds_api_version(void);

/* Error codes (negated dstore::Code values). */
#define DS_OK 0
#define DS_ENOTFOUND (-1)
#define DS_EEXIST (-2)
#define DS_ENOSPC (-3)
#define DS_EINVAL (-4)
#define DS_ECORRUPT (-5)
#define DS_EBUSY (-6)
#define DS_EIO (-7)
#define DS_ENOTSUP (-8)
#define DS_EINTERNAL (-9)
#define DS_EROFS (-10) /* store degraded to read-only (SSD retries exhausted) */

typedef struct dstore_t dstore_t; /* the store (opaque) */
typedef struct ds_ctx ds_ctx_t;   /* per-thread context (opaque) */
typedef struct ds_obj OBJECT;     /* open-object handle (opaque) */

/* Open-mode flags for oopen (op_t in Table 2). */
#define DS_O_READ 0x1u
#define DS_O_WRITE 0x2u
#define DS_O_CREATE 0x4u

typedef struct dstore_options {
  uint64_t max_objects;   /* metadata capacity (default 16384 if 0) */
  uint64_t num_blocks;    /* SSD blocks (default 65536 if 0) */
  uint32_t log_slots;     /* DIPPER log capacity (default 8192 if 0) */
  int background_checkpointing; /* nonzero = run the checkpoint thread */
  const char* backing_dir; /* NULL = in-memory; else persistent files here */
} dstore_options;

/* Create (create=nonzero) or recover (create=0) a store. Returns NULL on
 * failure. */
dstore_t* dstore_open(const dstore_options* options, int create);
void dstore_close(dstore_t* store);

/* ---- environment (Table 2) ---- */
ds_ctx_t* ds_init(dstore_t* store);
void ds_finalize(ds_ctx_t* ctx);

/* ---- filesystem style (Table 2) ---- */
OBJECT* oopen(ds_ctx_t* ctx, const char* name, size_t size, uint32_t op);
void oclose(OBJECT* object);
DS_NODISCARD ssize_t oread(OBJECT* object, void* buf, size_t size, off_t offset);
DS_NODISCARD ssize_t owrite(OBJECT* object, const void* buf, size_t size, off_t offset);

/* ---- key-value style (Table 2) ---- */
/* oget copies up to value_cap bytes and returns the full value size. */
DS_NODISCARD ssize_t oget(ds_ctx_t* ctx, const char* key, void* value, size_t value_cap);
DS_NODISCARD ssize_t oput(ds_ctx_t* ctx, const char* key, const void* value, size_t size);
DS_NODISCARD int odelete(ds_ctx_t* ctx, const char* name);

/* ---- concurrency control (Table 2) ---- */
DS_NODISCARD int olock(ds_ctx_t* ctx, const char* name);
DS_NODISCARD int ounlock(ds_ctx_t* ctx, const char* name);

/* ---- maintenance ---- */
DS_NODISCARD int dstore_checkpoint(dstore_t* store);
uint64_t dstore_object_count(dstore_t* store);

/* ---- observability ---- */
/* Scrape the store's metrics registry (see DESIGN.md §10 for the metric
 * catalogue). Returns a NUL-terminated malloc()ed string the caller must
 * free(), or NULL on invalid arguments. Scraping is thread-safe and does
 * not perturb concurrent operations. */
#define DS_METRICS_JSON 0
#define DS_METRICS_PROMETHEUS 1
char* ds_metrics_dump(dstore_t* store, int format);

/* ---- error reporting ---- */
/* Outcome of the calling thread's most recent binding call: the DS_E* code
 * (DS_OK after a success) and a human-readable message ("" after a
 * success).
 *
 * Thread safety: the error slot is THREAD-LOCAL. Each thread observes only
 * the outcome of its own most recent binding call; calls made by other
 * threads never disturb it. Consequently (a) there is no cross-thread
 * "last error" — query from the thread that made the failing call — and
 * (b) the pointer returned by ds_last_error() refers to the calling
 * thread's slot and is invalidated by that same thread's next binding
 * call (copy the string out if you need it longer). */
int ds_last_error_code(void);
const char* ds_last_error(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* DSTORE_DSTORE_C_H_ */
