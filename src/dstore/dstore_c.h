/* dstore_c.h — C bindings for DStore.
 *
 * v3 (current): handle-based sessions and namespaces. ds_session_open()
 * is ONE surface for embedded and remote stores — the target string picks
 * the transport:
 *
 *     ds_session_t* s = ds_session_open("mem:", NULL);          // embedded, RAM
 *     ds_session_t* s = ds_session_open("dir:/var/db", &opt);   // embedded, files
 *     ds_session_t* s = ds_session_open("127.0.0.1:7411", NULL);// remote (dstore_serverd)
 *     ds_namespace_t* ns = ds_namespace_open(s, "tenant-a");
 *     ssize_t n = ds_put(ns, "key", buf, len);
 *
 * A namespace is a tenant: its keys are isolated from every other
 * namespace (remotely it maps onto one ShardedStore shard; DESIGN.md
 * §15). Errors are per-session: ds_session_last_error_code/_error report
 * the session's most recent outcome, so concurrent sessions never see
 * each other's failures. A session and its namespaces are intended for
 * one thread at a time (like ds_ctx_t); open one session per worker.
 *
 * v2 (deprecated, kept as shims): the flat Table-2 surface —
 * ds_init/ds_finalize, oopen/oclose/oread/owrite, oget/oput/odelete,
 * olock/ounlock over a dstore_t. Every v2 entry point still works but is
 * marked DS_DEPRECATED; see DESIGN.md §15 for the v2→v3 migration map.
 *
 * Error reporting: functions returning int use 0 for success and a
 * negative dstore error code otherwise (DS_E*, generated from
 * common/status_codes.h); byte-count functions return >= 0 or a negative
 * error code, mirroring POSIX ssize_t conventions.
 */
#ifndef DSTORE_DSTORE_C_H_
#define DSTORE_DSTORE_C_H_

#include <stddef.h>
#include <stdint.h>
#include <sys/types.h>

#include "common/status_codes.h" /* DS_OK / DS_E* — the one code table */

#ifdef __cplusplus
extern "C" {
#endif

/* Error-code and byte-count returns must be checked: ignoring them turns a
 * failed write into silent data loss. The C++ side gets the same guarantee
 * from [[nodiscard]] on Status/Result; this is the C89-compatible spelling.
 * tools/dstore_lint additionally rejects discarded Status returns in src/. */
#if defined(__GNUC__) || defined(__clang__)
#define DS_NODISCARD __attribute__((warn_unused_result))
#define DS_DEPRECATED(msg) __attribute__((deprecated(msg)))
#else
#define DS_NODISCARD
#define DS_DEPRECATED(msg)
#endif

/* Binding version, bumped whenever this header's contract changes.
 * 3.0: handle-based ds_session_t/ds_namespace_t API, one open surface for
 * embedded and remote stores, per-session error slots; the v2 flat
 * surface is retained as deprecated wrappers.
 * 2.0: removed the DStore::Stats/StageStats C++ getters the bindings sat
 * on; added ds_api_version() and ds_metrics_dump(). */
#define DS_API_VERSION_MAJOR 3
#define DS_API_VERSION_MINOR 0

/* Runtime version of the linked library: (major << 16) | minor. Compare
 * the major against DS_API_VERSION_MAJOR before using anything else. */
uint32_t ds_api_version(void);

typedef struct dstore_t dstore_t; /* the store (opaque; v2 and embedded v3) */
typedef struct ds_ctx ds_ctx_t;   /* per-thread context (opaque; v2) */
typedef struct ds_obj OBJECT;     /* open-object handle (opaque; v2) */

typedef struct dstore_options {
  uint64_t max_objects;   /* metadata capacity (default 16384 if 0) */
  uint64_t num_blocks;    /* SSD blocks (default 65536 if 0) */
  uint32_t log_slots;     /* DIPPER log capacity (default 8192 if 0) */
  int background_checkpointing; /* nonzero = run the checkpoint thread */
  const char* backing_dir; /* NULL = in-memory; else persistent files here */
} dstore_options;

/* ======================================================================
 * v3: sessions and namespaces
 * ====================================================================== */

typedef struct ds_session ds_session_t;     /* a store connection (opaque) */
typedef struct ds_namespace ds_namespace_t; /* a tenant keyspace (opaque) */

typedef struct ds_session_options {
  dstore_options store;    /* embedded targets: sizing knobs (0 = defaults) */
  int create;              /* "dir:" targets: nonzero formats fresh, 0 recovers
                            * ("mem:" always starts fresh) */
  uint32_t pipeline_depth; /* remote targets: max in-flight frames (0 = 64) */
} ds_session_options;

/* Open a session. Targets:
 *   "mem:"           fresh in-memory embedded store
 *   "dir:PATH"       file-backed embedded store at PATH
 *   "HOST:PORT"      remote dstore_serverd (also "tcp:HOST:PORT")
 * options may be NULL for defaults. Returns NULL on failure; the reason
 * is readable via ds_open_error() (a thread-local slot — there is no
 * session to carry it yet). */
ds_session_t* ds_session_open(const char* target, const ds_session_options* options);
void ds_session_close(ds_session_t* session);

/* Why the most recent ds_session_open() on this thread returned NULL.
 * (The v3 face of the thread-local slot the deprecated ds_last_error()
 * also reads.) */
const char* ds_open_error(void);

/* Open (creating on first use) a tenant namespace. Names must be non-empty
 * and must not contain byte 0x1f. Returns NULL on failure (reason on the
 * session's error slot). Close every namespace before its session. */
ds_namespace_t* ds_namespace_open(ds_session_t* session, const char* name);
void ds_namespace_close(ds_namespace_t* ns);

/* Key-value operations on a namespace. ds_get copies up to value_cap bytes
 * and returns the FULL value size (call again with a larger buffer if it
 * exceeds value_cap); ds_put returns the byte count written. Both return a
 * negative DS_E* code on failure. */
DS_NODISCARD ssize_t ds_put(ds_namespace_t* ns, const char* key, const void* value,
                            size_t size);
DS_NODISCARD ssize_t ds_get(ds_namespace_t* ns, const char* key, void* value,
                            size_t value_cap);
DS_NODISCARD int ds_delete(ds_namespace_t* ns, const char* key);

/* Maintenance. ds_scrub runs one full integrity pass (every shard, for a
 * remote session). ds_checkpoint forces a checkpoint on embedded sessions
 * and returns DS_ENOTSUP on remote ones (servers checkpoint themselves at
 * the log watermark). */
DS_NODISCARD int ds_scrub(ds_session_t* session);
DS_NODISCARD int ds_checkpoint(ds_session_t* session);

/* Metrics scrape (DESIGN.md §10; remote sessions scrape over the wire and
 * include the server's net_* series). Returns a NUL-terminated malloc()ed
 * string the caller must free(), or NULL on failure. */
#define DS_METRICS_JSON 0
#define DS_METRICS_PROMETHEUS 1
char* ds_session_metrics(ds_session_t* session, int format);

/* Per-session error slot: the outcome of the most recent v3 call made
 * through this session or its namespaces. Sessions never observe each
 * other's errors (unlike the deprecated thread-local ds_last_error()),
 * which is what makes error handling sane with several remote sessions
 * on one thread — or one session per thread. The returned pointer refers
 * to session-owned storage and is invalidated by the session's next
 * failing call; copy it out if you need it longer. */
int ds_session_last_error_code(const ds_session_t* session);
const char* ds_session_last_error(const ds_session_t* session);

/* ======================================================================
 * v2: deprecated flat surface (Table 2 of the paper)
 *
 * Every function below is a compatibility shim over the same engine the
 * v3 surface drives. Migration map (see DESIGN.md §15):
 *   dstore_open/dstore_close      -> ds_session_open("mem:"|"dir:...")/
 *                                    ds_session_close
 *   ds_init/ds_finalize           -> ds_namespace_open/ds_namespace_close
 *   oput/oget/odelete             -> ds_put/ds_get/ds_delete
 *   dstore_checkpoint             -> ds_checkpoint
 *   ds_metrics_dump               -> ds_session_metrics
 *   ds_last_error[_code]          -> ds_session_last_error[_code]
 * ====================================================================== */

/* Open-mode flags for oopen (op_t in Table 2). */
#define DS_O_READ 0x1u
#define DS_O_WRITE 0x2u
#define DS_O_CREATE 0x4u

/* Create (create=nonzero) or recover (create=0) a store. Returns NULL on
 * failure. */
DS_DEPRECATED("v2 surface; use ds_session_open()")
dstore_t* dstore_open(const dstore_options* options, int create);
DS_DEPRECATED("v2 surface; use ds_session_close()")
void dstore_close(dstore_t* store);

/* ---- environment (Table 2) ---- */
DS_DEPRECATED("v2 surface; use ds_namespace_open()")
ds_ctx_t* ds_init(dstore_t* store);
DS_DEPRECATED("v2 surface; use ds_namespace_close()")
void ds_finalize(ds_ctx_t* ctx);

/* ---- filesystem style (Table 2) ---- */
DS_DEPRECATED("v2 surface; no v3 equivalent yet — stays until one exists")
OBJECT* oopen(ds_ctx_t* ctx, const char* name, size_t size, uint32_t op);
DS_DEPRECATED("v2 surface; no v3 equivalent yet — stays until one exists")
void oclose(OBJECT* object);
DS_DEPRECATED("v2 surface; no v3 equivalent yet — stays until one exists")
DS_NODISCARD ssize_t oread(OBJECT* object, void* buf, size_t size, off_t offset);
DS_DEPRECATED("v2 surface; no v3 equivalent yet — stays until one exists")
DS_NODISCARD ssize_t owrite(OBJECT* object, const void* buf, size_t size, off_t offset);

/* ---- key-value style (Table 2) ---- */
/* oget copies up to value_cap bytes and returns the full value size. */
DS_DEPRECATED("v2 surface; use ds_get()")
DS_NODISCARD ssize_t oget(ds_ctx_t* ctx, const char* key, void* value, size_t value_cap);
DS_DEPRECATED("v2 surface; use ds_put()")
DS_NODISCARD ssize_t oput(ds_ctx_t* ctx, const char* key, const void* value, size_t size);
DS_DEPRECATED("v2 surface; use ds_delete()")
DS_NODISCARD int odelete(ds_ctx_t* ctx, const char* name);

/* ---- concurrency control (Table 2) ---- */
DS_DEPRECATED("v2 surface; no v3 equivalent yet — stays until one exists")
DS_NODISCARD int olock(ds_ctx_t* ctx, const char* name);
DS_DEPRECATED("v2 surface; no v3 equivalent yet — stays until one exists")
DS_NODISCARD int ounlock(ds_ctx_t* ctx, const char* name);

/* ---- maintenance ---- */
DS_DEPRECATED("v2 surface; use ds_checkpoint()")
DS_NODISCARD int dstore_checkpoint(dstore_t* store);
DS_DEPRECATED("v2 surface")
uint64_t dstore_object_count(dstore_t* store);

/* ---- observability ---- */
/* Scrape the store's metrics registry. Returns a NUL-terminated malloc()ed
 * string the caller must free(), or NULL on invalid arguments. */
DS_DEPRECATED("v2 surface; use ds_session_metrics()")
char* ds_metrics_dump(dstore_t* store, int format);

/* ---- error reporting ---- */
/* Outcome of the calling thread's most recent v2 binding call (and of
 * ds_session_open() failures, which have no session to report through).
 * The slot is THREAD-LOCAL: each thread observes only its own calls. The
 * returned pointer is invalidated by the same thread's next binding call.
 * v3 code should read the per-session slot instead. */
DS_DEPRECATED("v2 surface; use ds_session_last_error_code()")
int ds_last_error_code(void);
DS_DEPRECATED("v2 surface; use ds_session_last_error()")
const char* ds_last_error(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* DSTORE_DSTORE_C_H_ */
