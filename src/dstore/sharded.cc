#include "dstore/sharded.h"

#include <cassert>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "dipper/log.h"
#include "fsmeta/badpage_table.h"

namespace dstore {

DStoreConfig ShardedStore::shard_config(int shard_idx) const {
  DStoreConfig cfg = cfg_.shard;
  if (cfg.engine.arena_bytes == 0) {
    cfg.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(cfg.max_objects);
  }
  // Pool-driven checkpointing: the engine spawns no thread of its own; it
  // notifies the shared pool at the watermark and donates its bulk passes
  // to idle workers.
  CheckpointPool* p = pool_.get();
  cfg.engine.bulk_exec = p;
  size_t idx = (size_t)shard_idx;
  cfg.engine.ckpt_notify = [p, idx] { p->notify(idx); };
  if (cfg_.fault != nullptr && (cfg_.fault_all_shards || shard_idx == cfg_.fault_shard)) {
    cfg.engine.fault = cfg_.fault;
  }
  cfg.repl_sink = cfg_.repl_sink;
  cfg.repl_shard_id = (uint32_t)shard_idx;
  return cfg;
}

// Overflow-safe reconstruction of the shard template's pool footprint
// (engine layout + bad-page region). required_pool_bytes() itself computes
// in size_t, so a hostile template must be rejected BEFORE calling it.
static Status validate_shard_template(const DStoreConfig& t) {
  __uint128_t arena = t.engine.arena_bytes != 0
                          ? (__uint128_t)t.engine.arena_bytes
                          : (__uint128_t)(4ull << 20) + (__uint128_t)t.max_objects * 1024;
  __uint128_t logs = (__uint128_t)2 * dipper::PmemLog::region_bytes(1) * t.engine.log_slots;
  __uint128_t payload = 0;
  if (t.engine.physical_logging || t.repair_logging) {
    payload = (__uint128_t)t.engine.log_slots * t.engine.physical_payload_bytes;
  }
  __uint128_t total = 4096 /* root region */ + logs + payload + 3 * arena +
                      fsmeta::BadPageTable::kRegionBytes;
  // 64 GiB per shard: far above any emulated-pool config this repo runs
  // (tests and benches size pools in MBs) and low enough that every term —
  // including the log region, whose 32-bit slot count caps it at ~512 GiB —
  // is actually bounded by the check rather than by an allocator failure.
  constexpr __uint128_t kMaxShardPoolBytes = (__uint128_t)1 << 36;
  if (total > kMaxShardPoolBytes) {
    return Status::invalid_argument("shard template required_pool_bytes overflows");
  }
  return Status::ok();
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::create(ShardedConfig cfg) {
  if (cfg.num_shards <= 0) return Status::invalid_argument("num_shards must be positive");
  if (cfg.num_shards > 4096) return Status::invalid_argument("num_shards too large");
  if (cfg.ckpt_workers < 0) return Status::invalid_argument("ckpt_workers must be >= 0");
  if (cfg.fault_shard < 0 || cfg.fault_shard >= cfg.num_shards) {
    if (cfg.fault != nullptr && !cfg.fault_all_shards) {
      return Status::invalid_argument("fault_shard out of range");
    }
  }
  DSTORE_RETURN_IF_ERROR(validate_shard_template(cfg.shard));

  auto s = std::unique_ptr<ShardedStore>(new ShardedStore(cfg));
  CheckpointPool::Config pc;
  pc.workers = cfg.ckpt_workers;
  pc.interval_ms = cfg.ckpt_interval_ms;
  s->pool_ = std::make_unique<CheckpointPool>(pc, (size_t)cfg.num_shards);
  s->shards_.resize(cfg.num_shards);
  for (int i = 0; i < cfg.num_shards; i++) {
    Shard& sh = s->shards_[i];
    DStoreConfig scfg = s->shard_config(i);
    sh.pool = std::make_unique<pmem::Pool>(DStoreConfig::required_pool_bytes(scfg),
                                           cfg.pool_mode, cfg.latency);
    ssd::DeviceConfig dc;
    dc.num_blocks = scfg.num_blocks;
    dc.latency = cfg.latency;
    sh.device = std::make_unique<ssd::RamBlockDevice>(dc);
    if (cfg.fault != nullptr && (cfg.fault_all_shards || i == cfg.fault_shard)) {
      sh.pool->set_fault_injector(cfg.fault);
      sh.device->set_fault_injector(cfg.fault);
    }
    auto store = DStore::create(sh.pool.get(), sh.device.get(), scfg);
    if (!store.is_ok()) return store.status();
    sh.store = std::move(store).value();
    sh.ctx = sh.store->ds_init();
    s->pool_->set_shard((size_t)i, &sh.store->engine());
  }

  CheckpointPool* p = s->pool_.get();
  ShardedStore* self = s.get();
  s->own_metrics_.gauge_fn("sharded_ckpt_workers", "checkpoint pool worker threads",
                           [p] { return (double)p->workers(); });
  s->own_metrics_.gauge_fn("sharded_ckpt_queue_depth",
                           "shards queued or mid-checkpoint on the pool",
                           [p] { return (double)p->queue_depth(); });
  s->own_metrics_.counter_fn("sharded_ckpt_runs_total",
                             "watermark/timer checkpoint steps run by the pool",
                             [p] { return p->stats().runs.load(std::memory_order_relaxed); });
  s->own_metrics_.counter_fn("sharded_ckpt_failures_total",
                             "pool checkpoint steps that returned an error",
                             [p] { return p->stats().failures.load(std::memory_order_relaxed); });
  s->own_metrics_.counter_fn(
      "sharded_ckpt_notifies_total", "watermark notifications from shard engines",
      [p] { return p->stats().notifies.load(std::memory_order_relaxed); });
  s->own_metrics_.counter_fn(
      "sharded_ckpt_steal_chunks_total", "bulk-pass chunks run by a stealing worker",
      [p] { return p->stats().steal_chunks.load(std::memory_order_relaxed); });
  s->own_metrics_.gauge_fn("sharded_shard_depth",
                           "max active-log fill fraction across shards",
                           [self] { return self->max_log_fill(); });
  s->own_metrics_.gauge_fn("sharded_recovery_wall_ms",
                           "last crash_and_recover_all() wall clock (ms)",
                           [self] { return (double)self->last_recovery_.wall_ns / 1e6; });
  s->pool_->start();
  return s;
}

ShardedStore::~ShardedStore() {
  pool_->stop();  // workers hold engine pointers; quiesce before teardown
  for (Shard& sh : shards_) {
    if (sh.store && sh.ctx != nullptr) sh.store->ds_finalize(sh.ctx);
  }
}

double ShardedStore::max_log_fill() const {
  double fill = 0.0;
  for (const Shard& sh : shards_) {
    if (sh.store) fill = std::max(fill, sh.store->engine().log_fill());
  }
  return fill;
}

int ShardedStore::shard_of(std::string_view name) const {
  // One FNV-1a pass over the name, a splitmix64 finalizer for avalanche,
  // then a widening-multiply range reduction: uniform across shards with
  // no modulo bias, and no Key construction on the routing path.
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (char c : name) {
    h ^= (uint8_t)c;
    h *= 1099511628211ull;  // FNV prime
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return (int)(uint64_t)(((__uint128_t)h * (uint64_t)cfg_.num_shards) >> 64);
}

ShardedStore::Session* ShardedStore::open_session(int pinned_shard) {
  auto* s = new Session();
  if (cfg_.affinity && pinned_shard >= 0 && pinned_shard < cfg_.num_shards) {
    s->pinned_ = pinned_shard;
  }
  s->ctx_.resize(shards_.size(), nullptr);
  for (size_t i = 0; i < shards_.size(); i++) s->ctx_[i] = shards_[i].store->ds_init();
  return s;
}

void ShardedStore::close_session(Session* s) {
  if (s == nullptr) return;
  for (size_t i = 0; i < s->ctx_.size(); i++) {
    if (s->ctx_[i] != nullptr) shards_[i].store->ds_finalize(s->ctx_[i]);
  }
  delete s;
}

Status ShardedStore::put(std::string_view name, const void* value, size_t size) {
  Shard& sh = shards_[shard_of(name)];
  return sh.store->oput(sh.ctx, name, value, size);
}

Result<size_t> ShardedStore::get(std::string_view name, void* buf, size_t cap) {
  Shard& sh = shards_[shard_of(name)];
  return sh.store->oget(sh.ctx, name, buf, cap);
}

Status ShardedStore::del(std::string_view name) {
  Shard& sh = shards_[shard_of(name)];
  return sh.store->odelete(sh.ctx, name);
}

Status ShardedStore::put(Session* s, std::string_view name, const void* value, size_t size) {
  if (s == nullptr) return put(name, value, size);
  int idx = s->pinned_ >= 0 ? s->pinned_ : shard_of(name);
  assert(s->pinned_ < 0 || shard_of(name) == s->pinned_);  // pinned keys must be home
  return shards_[idx].store->oput(s->ctx_[idx], name, value, size);
}

Result<size_t> ShardedStore::get(Session* s, std::string_view name, void* buf, size_t cap) {
  if (s == nullptr) return get(name, buf, cap);
  int idx = s->pinned_ >= 0 ? s->pinned_ : shard_of(name);
  assert(s->pinned_ < 0 || shard_of(name) == s->pinned_);
  return shards_[idx].store->oget(s->ctx_[idx], name, buf, cap);
}

Status ShardedStore::del(Session* s, std::string_view name) {
  if (s == nullptr) return del(name);
  int idx = s->pinned_ >= 0 ? s->pinned_ : shard_of(name);
  assert(s->pinned_ < 0 || shard_of(name) == s->pinned_);
  return shards_[idx].store->odelete(s->ctx_[idx], name);
}

Result<uint64_t> ShardedStore::object_size(std::string_view name) {
  return shards_[shard_of(name)].store->object_size(name);
}

Status ShardedStore::put_on(Session* s, int shard, std::string_view name, const void* value,
                            size_t size) {
  if (shard < 0 || shard >= cfg_.num_shards) return Status::invalid_argument("shard out of range");
  Shard& sh = shards_[shard];
  return sh.store->oput(s != nullptr ? s->ctx_[shard] : sh.ctx, name, value, size);
}

Result<size_t> ShardedStore::get_on(Session* s, int shard, std::string_view name, void* buf,
                                    size_t cap) {
  if (shard < 0 || shard >= cfg_.num_shards) return Status::invalid_argument("shard out of range");
  Shard& sh = shards_[shard];
  return sh.store->oget(s != nullptr ? s->ctx_[shard] : sh.ctx, name, buf, cap);
}

Status ShardedStore::del_on(Session* s, int shard, std::string_view name) {
  if (shard < 0 || shard >= cfg_.num_shards) return Status::invalid_argument("shard out of range");
  Shard& sh = shards_[shard];
  return sh.store->odelete(s != nullptr ? s->ctx_[shard] : sh.ctx, name);
}

Result<DStore::ReadView> ShardedStore::get_zc_on(Session* s, int shard, std::string_view name) {
  if (shard < 0 || shard >= cfg_.num_shards) return Status::invalid_argument("shard out of range");
  Shard& sh = shards_[shard];
  return sh.store->oget_zc(s != nullptr ? s->ctx_[shard] : sh.ctx, name);
}

Result<uint64_t> ShardedStore::object_size_on(int shard, std::string_view name) {
  if (shard < 0 || shard >= cfg_.num_shards) return Status::invalid_argument("shard out of range");
  return shards_[shard].store->object_size(name);
}

Status ShardedStore::scrub_all(DStore::ScrubReport* report) {
  Status first = Status::ok();
  for (Shard& sh : shards_) {
    DStore::ScrubReport r;
    Status s = sh.store->scrub_now(&r);
    if (!s.is_ok() && first.is_ok()) first = s;
    if (report != nullptr) {
      report->objects_scanned += r.objects_scanned;
      report->pages_verified += r.pages_verified;
      report->checksum_failures += r.checksum_failures;
      report->repaired += r.repaired;
      report->quarantined_pages += r.quarantined_pages;
      for (std::string& n : r.corrupt_objects) report->corrupt_objects.push_back(std::move(n));
    }
  }
  return first;
}

uint64_t ShardedStore::object_count() {
  uint64_t total = 0;
  for (Shard& sh : shards_) total += sh.store->object_count();
  return total;
}

DStore::SpaceUsage ShardedStore::space_usage() {
  DStore::SpaceUsage total{};
  for (Shard& sh : shards_) {
    auto u = sh.store->space_usage();
    total.dram_bytes += u.dram_bytes;
    total.pmem_bytes += u.pmem_bytes;
    total.ssd_bytes += u.ssd_bytes;
  }
  return total;
}

std::vector<obs::MetricSnapshot> ShardedStore::metrics_snapshot() const {
  std::vector<std::vector<obs::MetricSnapshot>> scrapes;
  scrapes.reserve(shards_.size() + 1);
  for (const Shard& sh : shards_) {
    if (sh.store) scrapes.push_back(sh.store->metrics().snapshot());
  }
  scrapes.push_back(own_metrics_.snapshot());
  return obs::MetricsRegistry::merge(scrapes);
}

std::string ShardedStore::metrics_json() const {
  return obs::MetricsRegistry::to_json(metrics_snapshot());
}

std::string ShardedStore::metrics_prometheus() const {
  return obs::MetricsRegistry::to_prometheus(metrics_snapshot());
}

Status ShardedStore::checkpoint_all() {
  // Submit-all-then-wait across the pool. Every shard is ATTEMPTED no
  // matter how many fail — a mid-fleet error must not leave later shards
  // unstable-checkpointed — and the first error is returned afterwards.
  std::vector<Status> statuses = pool_->run_all([this](size_t i) {
    // A watermark-triggered step may already be mid-flight on this shard
    // (or the previous archived log still recycling): busy is transient.
    for (int tries = 0; tries < 20000; tries++) {
      Status s = shards_[i].store->checkpoint_now();
      if (!s.is_busy()) return s;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return Status::busy("shard checkpoint stayed busy");
  });
  Status first = Status::ok();
  for (const Status& s : statuses) {
    if (!s.is_ok() && first.is_ok()) first = s;
  }
  return first;
}

Status ShardedStore::validate_all() {
  for (Shard& sh : shards_) DSTORE_RETURN_IF_ERROR(sh.store->validate());
  return Status::ok();
}

Status ShardedStore::recover_shard(size_t i, const DStoreConfig& scfg) {
  Shard& sh = shards_[i];
  auto store = DStore::recover(sh.pool.get(), sh.device.get(), scfg);
  if (!store.is_ok()) return store.status();
  sh.store = std::move(store).value();
  sh.ctx = sh.store->ds_init();
  pool_->set_shard(i, &sh.store->engine());
  return Status::ok();
}

Status ShardedStore::crash_and_recover_all() {
  if (cfg_.pool_mode != pmem::Pool::Mode::kCrashSim) {
    return Status::unsupported("crash simulation requires kCrashSim pools");
  }
  // No pool worker may be mid-checkpoint on an engine being torn down.
  pool_->pause();
  size_t n = shards_.size();
  for (size_t i = 0; i < n; i++) {
    Shard& sh = shards_[i];
    if (sh.store && sh.ctx != nullptr) sh.store->ds_finalize(sh.ctx);
    sh.ctx = nullptr;
    pool_->set_shard(i, nullptr);
    if (sh.store) {
      sh.store->engine().stop_background();
      sh.store.reset();
    }
    sh.pool->crash();
    sh.device->crash();
  }

  last_recovery_ = RecoveryReport{};
  last_recovery_.shard_ns.assign(n, 0);
  uint64_t t0 = now_ns();
  auto recover_fn = [this](size_t i) {
    uint64_t s0 = now_ns();
    Status s = recover_shard(i, shard_config((int)i));
    last_recovery_.shard_ns[i] = now_ns() - s0;
    return s;
  };
  std::vector<Status> statuses;
  if (cfg_.parallel_recovery) {
    statuses = pool_->run_all(recover_fn);
  } else {
    statuses.reserve(n);
    for (size_t i = 0; i < n; i++) statuses.push_back(recover_fn(i));
  }
  last_recovery_.wall_ns = now_ns() - t0;
  for (size_t i = 0; i < n; i++) {
    if (shards_[i].store) {
      const auto& es = shards_[i].store->engine().stats();
      last_recovery_.max_shard_metadata_ns =
          std::max(last_recovery_.max_shard_metadata_ns,
                   es.recovery_metadata_ns.load(std::memory_order_relaxed));
      last_recovery_.max_shard_replay_ns =
          std::max(last_recovery_.max_shard_replay_ns,
                   es.recovery_replay_ns.load(std::memory_order_relaxed));
    }
  }
  pool_->resume();
  Status first = Status::ok();
  for (const Status& s : statuses) {
    if (!s.is_ok() && first.is_ok()) first = s;
  }
  return first;
}

}  // namespace dstore
