#include "dstore/sharded.h"

namespace dstore {

DStoreConfig ShardedStore::shard_config() const {
  DStoreConfig cfg = cfg_.shard;
  if (cfg.engine.arena_bytes == 0) {
    cfg.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(cfg.max_objects);
  }
  return cfg;
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::create(ShardedConfig cfg) {
  if (cfg.num_shards <= 0) return Status::invalid_argument("num_shards must be positive");
  auto s = std::unique_ptr<ShardedStore>(new ShardedStore(cfg));
  DStoreConfig scfg = s->shard_config();
  s->shards_.resize(cfg.num_shards);
  for (int i = 0; i < cfg.num_shards; i++) {
    Shard& sh = s->shards_[i];
    sh.pool = std::make_unique<pmem::Pool>(DStoreConfig::required_pool_bytes(scfg),
                                           cfg.pool_mode, cfg.latency);
    ssd::DeviceConfig dc;
    dc.num_blocks = scfg.num_blocks;
    dc.latency = cfg.latency;
    sh.device = std::make_unique<ssd::RamBlockDevice>(dc);
    auto store = DStore::create(sh.pool.get(), sh.device.get(), scfg);
    if (!store.is_ok()) return store.status();
    sh.store = std::move(store).value();
    sh.ctx = sh.store->ds_init();
  }
  return s;
}

ShardedStore::~ShardedStore() {
  for (Shard& sh : shards_) {
    if (sh.store && sh.ctx != nullptr) sh.store->ds_finalize(sh.ctx);
  }
}

int ShardedStore::shard_of(std::string_view name) const {
  return (int)(Key::from(name).hash() % (uint64_t)cfg_.num_shards);
}

Status ShardedStore::put(std::string_view name, const void* value, size_t size) {
  Shard& sh = shards_[shard_of(name)];
  return sh.store->oput(sh.ctx, name, value, size);
}

Result<size_t> ShardedStore::get(std::string_view name, void* buf, size_t cap) {
  Shard& sh = shards_[shard_of(name)];
  return sh.store->oget(sh.ctx, name, buf, cap);
}

Status ShardedStore::del(std::string_view name) {
  Shard& sh = shards_[shard_of(name)];
  return sh.store->odelete(sh.ctx, name);
}

Result<uint64_t> ShardedStore::object_size(std::string_view name) {
  return shards_[shard_of(name)].store->object_size(name);
}

uint64_t ShardedStore::object_count() {
  uint64_t total = 0;
  for (Shard& sh : shards_) total += sh.store->object_count();
  return total;
}

DStore::SpaceUsage ShardedStore::space_usage() {
  DStore::SpaceUsage total{};
  for (Shard& sh : shards_) {
    auto u = sh.store->space_usage();
    total.dram_bytes += u.dram_bytes;
    total.pmem_bytes += u.pmem_bytes;
    total.ssd_bytes += u.ssd_bytes;
  }
  return total;
}

std::vector<obs::MetricSnapshot> ShardedStore::metrics_snapshot() const {
  std::vector<std::vector<obs::MetricSnapshot>> scrapes;
  scrapes.reserve(shards_.size());
  for (const Shard& sh : shards_) scrapes.push_back(sh.store->metrics().snapshot());
  return obs::MetricsRegistry::merge(scrapes);
}

std::string ShardedStore::metrics_json() const {
  return obs::MetricsRegistry::to_json(metrics_snapshot());
}

std::string ShardedStore::metrics_prometheus() const {
  return obs::MetricsRegistry::to_prometheus(metrics_snapshot());
}

Status ShardedStore::checkpoint_all() {
  for (Shard& sh : shards_) DSTORE_RETURN_IF_ERROR(sh.store->checkpoint_now());
  return Status::ok();
}

Status ShardedStore::validate_all() {
  for (Shard& sh : shards_) DSTORE_RETURN_IF_ERROR(sh.store->validate());
  return Status::ok();
}

Status ShardedStore::crash_and_recover_all() {
  if (cfg_.pool_mode != pmem::Pool::Mode::kCrashSim) {
    return Status::unsupported("crash simulation requires kCrashSim pools");
  }
  DStoreConfig scfg = shard_config();
  for (Shard& sh : shards_) {
    sh.store->ds_finalize(sh.ctx);
    sh.ctx = nullptr;
    sh.store->engine().stop_background();
    sh.store.reset();
    sh.pool->crash();
    sh.device->crash();
    auto store = DStore::recover(sh.pool.get(), sh.device.get(), scfg);
    if (!store.is_ok()) return store.status();
    sh.store = std::move(store).value();
    sh.ctx = sh.store->ds_init();
  }
  return Status::ok();
}

}  // namespace dstore
