// ShardedStore — the paper's future-work direction ("in the future, we
// plan to extend our designs to build a disaggregated storage system", §7)
// realized as a first step: N independent DStore shards, each with its own
// PMEM checkpoint space, operation log, DIPPER engine (and checkpoint
// thread), and SSD data plane. Objects are placed by name hash.
//
// Because every shard is an unmodified DStore, all per-shard guarantees
// (commit=durable, quiescent-free checkpoints, idempotent recovery) carry
// over; cross-shard operations are independent, which matches the paper's
// commutativity argument — operations on distinct objects never conflict.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "dstore/dstore.h"

namespace dstore {

struct ShardedConfig {
  int num_shards = 4;
  // Per-shard template: every DStoreConfig knob (ssd_qd, retry policy, OE,
  // engine settings, ...) applies to each shard verbatim — no per-field
  // re-declaration here. shard.engine.arena_bytes == 0 means "derive from
  // shard.max_objects via suggested_arena_bytes()".
  DStoreConfig shard = [] {
    DStoreConfig c;
    c.max_objects = 1 << 13;
    c.num_blocks = 1 << 14;
    c.engine.log_slots = 4096;
    c.engine.arena_bytes = 0;  // auto-size
    return c;
  }();
  // kCrashSim pools enable crash_and_recover() in tests.
  pmem::Pool::Mode pool_mode = pmem::Pool::Mode::kDirect;
  LatencyModel latency = LatencyModel::none();
};

class ShardedStore {
 public:
  static Result<std::unique_ptr<ShardedStore>> create(ShardedConfig cfg);
  ~ShardedStore();

  Status put(std::string_view name, const void* value, size_t size);
  Result<size_t> get(std::string_view name, void* buf, size_t cap);
  Status del(std::string_view name);
  Result<uint64_t> object_size(std::string_view name);

  uint64_t object_count();
  DStore::SpaceUsage space_usage();
  Status checkpoint_all();
  Status validate_all();

  // Power-fail every shard and recover them all (kCrashSim pools only).
  Status crash_and_recover_all();

  // Per-shard registries merged into one scrape (counters/gauges sum,
  // histograms merge bucket-wise).
  std::vector<obs::MetricSnapshot> metrics_snapshot() const;
  std::string metrics_json() const;
  std::string metrics_prometheus() const;

  int num_shards() const { return cfg_.num_shards; }
  DStore& shard(int i) { return *shards_[i].store; }
  // Which shard owns `name` (exposed for tests and balance inspection).
  int shard_of(std::string_view name) const;

 private:
  explicit ShardedStore(ShardedConfig cfg) : cfg_(cfg) {}

  struct Shard {
    std::unique_ptr<pmem::Pool> pool;
    std::unique_ptr<ssd::RamBlockDevice> device;
    std::unique_ptr<DStore> store;
    ds_ctx_t* ctx = nullptr;
  };

  DStoreConfig shard_config() const;

  ShardedConfig cfg_;
  std::vector<Shard> shards_;
};

}  // namespace dstore
