// ShardedStore — the paper's future-work direction ("in the future, we
// plan to extend our designs to build a disaggregated storage system", §7)
// as a first-class partitioned engine: N DStore shards, each with its own
// PMEM checkpoint space, operation log and SSD data plane, sharing one
// background CheckpointPool (DESIGN.md §14). Objects are placed by name
// hash (splitmix-finalized, multiply-based range reduction — no modulo
// bias).
//
// Because every shard is an unmodified DStore, all per-shard guarantees
// (commit=durable, quiescent-free checkpoints, idempotent recovery) carry
// over; cross-shard operations are independent, which matches the paper's
// commutativity argument — operations on distinct objects never conflict.
// What the pool changes is only WHERE background work runs: shards no
// longer own checkpoint threads; they notify the pool at the watermark and
// K shared workers (with work stealing of bulk-pass chunks) service them.
// checkpoint_all() and crash_and_recover_all() fan out across the same
// workers.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "dstore/ckpt_pool.h"
#include "dstore/dstore.h"

namespace dstore {

struct ShardedConfig {
  int num_shards = 4;
  // Per-shard template: every DStoreConfig knob (ssd_qd, retry policy, OE,
  // engine settings, ...) applies to each shard verbatim — no per-field
  // re-declaration here. shard.engine.arena_bytes == 0 means "derive from
  // shard.max_objects via suggested_arena_bytes()".
  DStoreConfig shard = [] {
    DStoreConfig c;
    c.max_objects = 1 << 13;
    c.num_blocks = 1 << 14;
    c.engine.log_slots = 4096;
    c.engine.arena_bytes = 0;  // auto-size
    return c;
  }();
  // kCrashSim pools enable crash_and_recover_all() in tests.
  pmem::Pool::Mode pool_mode = pmem::Pool::Mode::kDirect;
  LatencyModel latency = LatencyModel::none();

  // Shared checkpoint pool: worker count (0 = min(num_shards,
  // max(1, hardware_concurrency/2))) and the optional timer trigger
  // (0 = watermark-only; see CheckpointPool::Config).
  int ckpt_workers = 0;
  uint32_t ckpt_interval_ms = 0;

  // Allow pinned affinity sessions (open_session(shard)): a loadgen thread
  // pinned to its home shard routes every op there without hashing — the
  // caller guarantees its keys belong to that shard (debug-asserted).
  // Unpinned sessions (always available) only carry private per-shard IO
  // contexts.
  bool affinity = false;

  // Recover shards concurrently on the pool (the default). The serial path
  // is kept as the bench baseline (bench/shard_scaling.cc) and for
  // apples-to-apples timing comparisons.
  bool parallel_recovery = true;

  // Fault injection for crash-schedule sweeps: wired into shard
  // `fault_shard` only (pool + device + engine), so a sweep crashes one
  // member of a live fleet while the others keep serving. With
  // fault_all_shards the injector covers EVERY shard — the DistRig's
  // node-level power failure, where one injector represents one machine.
  fault::FaultInjector* fault = nullptr;
  int fault_shard = 0;
  bool fault_all_shards = false;

  // Replication (DESIGN.md §16): installed into every shard's DStoreConfig
  // with repl_shard_id = shard index, so stream entries replay onto the
  // same shard on a follower.
  ReplSink* repl_sink = nullptr;
};

class ShardedStore {
 public:
  static Result<std::unique_ptr<ShardedStore>> create(ShardedConfig cfg);
  ~ShardedStore();

  // Per-thread session: private per-shard IO contexts (no shared-ctx
  // contention), plus an optional pinned home shard under cfg.affinity.
  class Session {
   public:
    int pinned() const { return pinned_; }

   private:
    friend class ShardedStore;
    int pinned_ = -1;
    std::vector<ds_ctx_t*> ctx_;  // index = shard
  };

  // pinned_shard = -1 routes by hash; 0..num_shards-1 (requires
  // cfg.affinity) routes every op to that shard unconditionally.
  // Out-of-range pins (or pins without cfg.affinity) are treated as -1.
  Session* open_session(int pinned_shard = -1);
  void close_session(Session* s);

  // Shared-context operations (convenience; sessions avoid the shared
  // per-shard ctx these route through).
  Status put(std::string_view name, const void* value, size_t size);
  Result<size_t> get(std::string_view name, void* buf, size_t cap);
  Status del(std::string_view name);
  // Session operations. A null session falls back to the shared path.
  Status put(Session* s, std::string_view name, const void* value, size_t size);
  Result<size_t> get(Session* s, std::string_view name, void* buf, size_t cap);
  Status del(Session* s, std::string_view name);
  Result<uint64_t> object_size(std::string_view name);

  // Explicit-placement operations (DESIGN.md §15). The network server
  // stores a tenant namespace's objects under prefixed keys on the
  // namespace's HOME shard — shard_of(ns_name), not shard_of(full_key) —
  // so every key of one tenant lands on one shard and the hash-routing
  // paths above would mis-place them. The caller owns the shard choice; a
  // null session routes through the shared per-shard context. `shard` must
  // be in [0, num_shards).
  Status put_on(Session* s, int shard, std::string_view name, const void* value, size_t size);
  Result<size_t> get_on(Session* s, int shard, std::string_view name, void* buf, size_t cap);
  Status del_on(Session* s, int shard, std::string_view name);
  // Zero-copy read on an explicit shard (Status::unsupported on devices
  // without a direct mapping — callers fall back to get_on).
  Result<DStore::ReadView> get_zc_on(Session* s, int shard, std::string_view name);
  Result<uint64_t> object_size_on(int shard, std::string_view name);

  // One integrity pass over every shard, merging the per-shard reports
  // (counter sums; corrupt-object names concatenated). Every shard is
  // attempted; the first error is returned after all attempts.
  Status scrub_all(DStore::ScrubReport* report = nullptr);

  uint64_t object_count();
  DStore::SpaceUsage space_usage();
  // Checkpoint every shard, fanned out across the pool. EVERY shard is
  // attempted; the first error (if any) is returned after all attempts.
  Status checkpoint_all();
  Status validate_all();

  // Power-fail every shard and recover them all (kCrashSim pools only).
  // Shards crash serially (freezing each durable image), then recover
  // concurrently on the pool (cfg.parallel_recovery) or serially.
  Status crash_and_recover_all();

  // Timing of the last crash_and_recover_all(), for the scaling bench and
  // the backend's RecoveryTiming attribution.
  struct RecoveryReport {
    uint64_t wall_ns = 0;                // end-to-end recovery wall clock
    std::vector<uint64_t> shard_ns;      // per-shard recover() duration
    uint64_t max_shard_metadata_ns = 0;  // max over shards (≈ parallel wall)
    uint64_t max_shard_replay_ns = 0;
  };
  const RecoveryReport& last_recovery() const { return last_recovery_; }

  // Per-shard registries plus the pool/routing gauges (sharded_*), merged
  // into one scrape (counters/gauges sum, histograms merge bucket-wise).
  std::vector<obs::MetricSnapshot> metrics_snapshot() const;
  std::string metrics_json() const;
  std::string metrics_prometheus() const;

  int num_shards() const { return cfg_.num_shards; }
  DStore& shard(int i) { return *shards_[i].store; }
  CheckpointPool& pool() { return *pool_; }
  // Which shard owns `name` (exposed for tests and balance inspection).
  int shard_of(std::string_view name) const;

 private:
  explicit ShardedStore(ShardedConfig cfg) : cfg_(cfg) {}

  struct Shard {
    std::unique_ptr<pmem::Pool> pool;
    std::unique_ptr<ssd::RamBlockDevice> device;
    std::unique_ptr<DStore> store;
    ds_ctx_t* ctx = nullptr;
  };

  DStoreConfig shard_config(int shard_idx) const;
  Status recover_shard(size_t i, const DStoreConfig& scfg);
  double max_log_fill() const;

  ShardedConfig cfg_;
  // The pool outlives the shards (engines hold a BulkExecutor pointer to
  // it and notify it from ckpt_notify): declared first, destroyed last.
  std::unique_ptr<CheckpointPool> pool_;
  std::vector<Shard> shards_;
  obs::MetricsRegistry own_metrics_;  // sharded_* pool/routing metrics
  RecoveryReport last_recovery_;
};

}  // namespace dstore
