// CheckpointPool — the shared background service of the partitioned engine
// (DESIGN.md §14).
//
// One fixed pool of K workers services checkpoint work for all shards,
// replacing the former thread-per-shard layout: PMEM write bandwidth
// saturates at a small number of writers (arXiv:1903.05714), so dedicated
// per-shard checkpoint threads past that point only add scheduling noise.
// The pool is three things at once:
//
//   * a watermark queue: Engine::ckpt_notify calls notify(shard) from the
//     frontend hot path (sticky per-shard dedup + try_lock/notify — never
//     blocks); an idle worker picks the shard up and runs one
//     Engine::checkpoint_step() on it;
//   * a job executor: run_all(fn) runs fn(shard) for every shard across
//     the workers AND the calling thread, collecting every status —
//     parallel checkpoint_all() and parallel recovery are both this;
//   * a BulkExecutor: a worker mid-checkpoint publishes its clone/flush
//     chunk range and idle workers steal chunks, so one large shard's bulk
//     pass cannot convoy the others.
//
// Every worker runs under lockdep::RoleScope(kCheckpoint), so the
// quiescence gate machine-checks that pool work never blocks a foreground
// op on a non-exempt lock — the quiescent-free claim survives the move
// from per-shard threads to a shared pool.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/lockdep.h"
#include "common/status.h"
#include "dipper/engine.h"

namespace dstore {

class CheckpointPool : public dipper::BulkExecutor {
 public:
  struct Config {
    // 0 = auto: min(num_shards, max(1, hardware_concurrency / 2)).
    int workers = 0;
    // Timer trigger: every interval, shards with a non-empty log are
    // checkpointed even below the watermark (bounds recovery replay).
    // 0 = watermark-only.
    uint32_t interval_ms = 0;
  };

  struct Stats {
    std::atomic<uint64_t> runs{0};          // checkpoint_step() invocations
    std::atomic<uint64_t> failures{0};      // steps that returned a non-busy error
    std::atomic<uint64_t> notifies{0};      // notify() calls (pre-dedup)
    std::atomic<uint64_t> steal_chunks{0};  // bulk chunks run by a stealing worker
  };

  CheckpointPool(Config cfg, size_t num_shards);
  ~CheckpointPool() override;
  CheckpointPool(const CheckpointPool&) = delete;
  CheckpointPool& operator=(const CheckpointPool&) = delete;

  // Wire shard i's engine. Engines may be swapped (set_shard(i, nullptr),
  // then a new engine) across a recovery; callers must pause() around the
  // swap so no worker holds the old pointer.
  void set_shard(size_t i, dipper::Engine* engine);

  void start();
  void stop();  // drain in-flight steps, join workers; idempotent

  // Stop servicing watermark requests and wait until no worker is inside a
  // shard checkpoint step. run_all() and run_chunks() still work while
  // paused — recovery runs on a paused pool, since the engines it tears
  // down must not be mid-checkpoint.
  void pause();
  void resume();

  // Hot-path safe (called from Engine::ckpt_notify): never blocks.
  void notify(size_t shard);

  // Run fn(shard) for every shard, fanned out across the pool workers and
  // the calling thread. Returns one status per shard — every shard is
  // attempted, no matter how many fail.
  std::vector<Status> run_all(const std::function<Status(size_t)>& fn);

  // BulkExecutor: run fn(0..n-1) with idle-worker stealing; returns when
  // all n chunks are done. Safe to call from pool workers and outsiders.
  void run_chunks(size_t n, const std::function<void(size_t)>& fn) override;

  int workers() const { return (int)workers_.size(); }
  size_t num_shards() const { return num_shards_; }
  // Shards queued for a watermark checkpoint plus those mid-step.
  size_t queue_depth() const;
  const Stats& stats() const { return stats_; }

 private:
  struct Job {
    size_t shard = 0;
    const std::function<Status(size_t)>* fn = nullptr;
    std::vector<Status>* out = nullptr;
    std::atomic<size_t>* remaining = nullptr;
  };
  struct ChunkTask {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
  };

  void worker_main(int id);
  bool try_run_one_job();           // pop+run one run_all job; true if it ran one
  void help_chunks(bool stealing);  // drain the published chunk task, if any
  bool claim_pending_shard(size_t* shard);
  void run_shard_step(size_t shard);
  void timer_tick();

  const Config cfg_;
  const size_t num_shards_;

  // Watermark requests: sticky per-shard flags (dedup) + a count driving
  // the worker wakeup predicate. notify() touches only these and a
  // try_lock, so the frontend never blocks here.
  std::vector<std::atomic<bool>> pending_;
  std::atomic<size_t> pending_count_{0};
  std::atomic<size_t> rr_next_{0};  // round-robin scan start

  std::vector<dipper::Engine*> engines_;  // guarded by mu_ for swap; read by workers
  std::vector<std::atomic<bool>> shard_running_;  // one step per shard at a time

  mutable Mutex mu_{"ckpt_pool.mu"};
  CondVar cv_;
  std::deque<Job> jobs_;                         // guarded by mu_
  std::atomic<ChunkTask*> chunk_task_{nullptr};  // published bulk pass, if any
  std::atomic<int> chunk_helpers_{0};            // threads inside help_chunks
  std::atomic<size_t> active_steps_{0};          // workers inside run_shard_step
  std::atomic<bool> paused_{false};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point last_tick_{};  // guarded by mu_

  Stats stats_;
};

}  // namespace dstore
