#include "dstore/dstore_c.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "dstore/dstore.h"

// Opaque wrapper types (global-scope, C linkage side).
struct dstore_t {
  dstore::DStoreConfig cfg;
  std::unique_ptr<dstore::pmem::Pool> pool;
  std::unique_ptr<dstore::ssd::BlockDevice> device;
  std::unique_ptr<dstore::DStore> store;
};

struct ds_ctx {
  dstore_t* owner;
  dstore::ds_ctx_t* ctx;
};

struct ds_obj {
  dstore_t* owner;
  dstore::Object* obj;
};

namespace {

int to_errno(const dstore::Status& s) {
  switch (s.code()) {
    case dstore::Code::kOk: return DS_OK;
    case dstore::Code::kNotFound: return DS_ENOTFOUND;
    case dstore::Code::kAlreadyExists: return DS_EEXIST;
    case dstore::Code::kOutOfSpace: return DS_ENOSPC;
    case dstore::Code::kInvalidArgument: return DS_EINVAL;
    case dstore::Code::kCorruption: return DS_ECORRUPT;
    case dstore::Code::kBusy: return DS_EBUSY;
    case dstore::Code::kIoError: return DS_EIO;
    case dstore::Code::kUnsupported: return DS_ENOTSUP;
    case dstore::Code::kInternal: return DS_EINTERNAL;
    case dstore::Code::kReadOnly: return DS_EROFS;
  }
  return DS_EINTERNAL;
}

// ds_last_error state: one slot per thread, overwritten by every binding
// call so callers can always ask "why did that just fail".
thread_local int tls_last_code = DS_OK;
thread_local std::string tls_last_msg;

int record(const dstore::Status& s) {
  tls_last_code = to_errno(s);
  if (s.is_ok()) {
    tls_last_msg.clear();
  } else {
    tls_last_msg = s.to_string();
  }
  return tls_last_code;
}

int record_errno(int code, const char* msg) {
  tls_last_code = code;
  tls_last_msg = code == DS_OK ? "" : msg;
  return code;
}

dstore::DStoreConfig config_from(const dstore_options* o) {
  dstore::DStoreConfig cfg;
  cfg.max_objects = (o != nullptr && o->max_objects != 0) ? o->max_objects : (1 << 14);
  cfg.num_blocks = (o != nullptr && o->num_blocks != 0) ? o->num_blocks : (1 << 16);
  cfg.engine.log_slots = (o != nullptr && o->log_slots != 0) ? o->log_slots : 8192;
  cfg.engine.arena_bytes = dstore::DStoreConfig::suggested_arena_bytes(cfg.max_objects);
  cfg.engine.background_checkpointing =
      o != nullptr && o->background_checkpointing != 0;
  return cfg;
}

}  // namespace

extern "C" {

dstore_t* dstore_open(const dstore_options* options, int create) {
  auto s = std::make_unique<dstore_t>();
  s->cfg = config_from(options);
  size_t pool_bytes = dstore::DStoreConfig::required_pool_bytes(s->cfg);
  const char* dir = options != nullptr ? options->backing_dir : nullptr;
  if (dir != nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    auto pool = dstore::pmem::Pool::open_file(std::string(dir) + "/pmem.img", pool_bytes,
                                              dstore::LatencyModel::none(), create != 0);
    if (!pool.is_ok()) {
      record(pool.status());
      return nullptr;
    }
    s->pool = std::move(pool).value();
    dstore::ssd::DeviceConfig dc;
    dc.num_blocks = s->cfg.num_blocks;
    auto dev = dstore::ssd::FileBlockDevice::open(std::string(dir) + "/data.img", dc,
                                                  create != 0);
    if (!dev.is_ok()) {
      record(dev.status());
      return nullptr;
    }
    s->device = std::move(dev).value();
  } else {
    s->pool = std::make_unique<dstore::pmem::Pool>(pool_bytes,
                                                   dstore::pmem::Pool::Mode::kDirect);
    dstore::ssd::DeviceConfig dc;
    dc.num_blocks = s->cfg.num_blocks;
    s->device = std::make_unique<dstore::ssd::RamBlockDevice>(dc);
  }
  auto store = create != 0 ? dstore::DStore::create(s->pool.get(), s->device.get(), s->cfg)
                           : dstore::DStore::recover(s->pool.get(), s->device.get(), s->cfg);
  if (!store.is_ok()) {
    record(store.status());
    return nullptr;
  }
  s->store = std::move(store).value();
  record(dstore::Status::ok());
  return s.release();
}

void dstore_close(dstore_t* store) {
  delete store;
}

ds_ctx_t* ds_init(dstore_t* store) {
  if (store == nullptr) return nullptr;
  auto* c = new ds_ctx;
  c->owner = store;
  c->ctx = store->store->ds_init();
  return c;
}

void ds_finalize(ds_ctx_t* ctx) {
  if (ctx == nullptr) return;
  ctx->owner->store->ds_finalize(ctx->ctx);
  delete ctx;
}

OBJECT* oopen(ds_ctx_t* ctx, const char* name, size_t size, uint32_t op) {
  if (ctx == nullptr || name == nullptr) {
    record_errno(DS_EINVAL, "null context or name");
    return nullptr;
  }
  uint32_t mode = 0;
  if (op & DS_O_READ) mode |= dstore::kRead;
  if (op & DS_O_WRITE) mode |= dstore::kWrite;
  if (op & DS_O_CREATE) mode |= dstore::kCreate;
  auto r = ctx->owner->store->oopen(ctx->ctx, name, size, mode);
  if (!r.is_ok()) {
    record(r.status());
    return nullptr;
  }
  record(dstore::Status::ok());
  auto* o = new ds_obj;
  o->owner = ctx->owner;
  o->obj = r.value();
  return o;
}

void oclose(OBJECT* object) {
  if (object == nullptr) return;
  object->owner->store->oclose(object->obj);
  delete object;
}

ssize_t oread(OBJECT* object, void* buf, size_t size, off_t offset) {
  if (object == nullptr) return record_errno(DS_EINVAL, "null object");
  auto r = object->owner->store->oread(object->obj, buf, size, (uint64_t)offset);
  if (!r.is_ok()) return record(r.status());
  record(dstore::Status::ok());
  return (ssize_t)r.value();
}

ssize_t owrite(OBJECT* object, const void* buf, size_t size, off_t offset) {
  if (object == nullptr) return record_errno(DS_EINVAL, "null object");
  auto r = object->owner->store->owrite(object->obj, buf, size, (uint64_t)offset);
  if (!r.is_ok()) return record(r.status());
  record(dstore::Status::ok());
  return (ssize_t)r.value();
}

ssize_t oget(ds_ctx_t* ctx, const char* key, void* value, size_t value_cap) {
  if (ctx == nullptr || key == nullptr) return record_errno(DS_EINVAL, "null context or key");
  auto r = ctx->owner->store->oget(ctx->ctx, key, value, value_cap);
  if (!r.is_ok()) return record(r.status());
  record(dstore::Status::ok());
  return (ssize_t)r.value();
}

ssize_t oput(ds_ctx_t* ctx, const char* key, const void* value, size_t size) {
  if (ctx == nullptr || key == nullptr) return record_errno(DS_EINVAL, "null context or key");
  dstore::Status s = ctx->owner->store->oput(ctx->ctx, key, value, size);
  if (!s.is_ok()) return record(s);
  record(s);
  return (ssize_t)size;
}

int odelete(ds_ctx_t* ctx, const char* name) {
  if (ctx == nullptr || name == nullptr) return record_errno(DS_EINVAL, "null context or name");
  return record(ctx->owner->store->odelete(ctx->ctx, name));
}

int olock(ds_ctx_t* ctx, const char* name) {
  if (ctx == nullptr || name == nullptr) return record_errno(DS_EINVAL, "null context or name");
  return record(ctx->owner->store->olock(ctx->ctx, name));
}

int ounlock(ds_ctx_t* ctx, const char* name) {
  if (ctx == nullptr || name == nullptr) return record_errno(DS_EINVAL, "null context or name");
  return record(ctx->owner->store->ounlock(ctx->ctx, name));
}

int dstore_checkpoint(dstore_t* store) {
  if (store == nullptr) return record_errno(DS_EINVAL, "null store");
  return record(store->store->checkpoint_now());
}

uint64_t dstore_object_count(dstore_t* store) {
  if (store == nullptr) return 0;
  return store->store->object_count();
}

uint32_t ds_api_version(void) {
  return ((uint32_t)DS_API_VERSION_MAJOR << 16) | (uint32_t)DS_API_VERSION_MINOR;
}

char* ds_metrics_dump(dstore_t* store, int format) {
  if (store == nullptr || (format != DS_METRICS_JSON && format != DS_METRICS_PROMETHEUS)) {
    record_errno(DS_EINVAL, "null store or bad format");
    return nullptr;
  }
  std::string out = format == DS_METRICS_JSON ? store->store->metrics_json()
                                              : store->store->metrics_prometheus();
  char* buf = static_cast<char*>(malloc(out.size() + 1));
  if (buf == nullptr) {
    record_errno(DS_EINTERNAL, "out of memory");
    return nullptr;
  }
  memcpy(buf, out.data(), out.size());
  buf[out.size()] = '\0';
  record(dstore::Status::ok());
  return buf;
}

int ds_last_error_code(void) { return tls_last_code; }

const char* ds_last_error(void) { return tls_last_msg.c_str(); }

}  // extern "C"
