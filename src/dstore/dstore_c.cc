#include "dstore/dstore_c.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "common/lockdep.h"
#include "dstore/dstore.h"
#include "net/client.h"

// Opaque wrapper types (global-scope, C linkage side).
struct dstore_t {
  dstore::DStoreConfig cfg;
  std::unique_ptr<dstore::pmem::Pool> pool;
  std::unique_ptr<dstore::ssd::BlockDevice> device;
  std::unique_ptr<dstore::DStore> store;
};

struct ds_ctx {
  dstore_t* owner;
  dstore::ds_ctx_t* ctx;
};

struct ds_obj {
  dstore_t* owner;
  dstore::Object* obj;
};

// A v3 session: exactly one of {store, client} is set (embedded vs
// remote), plus the per-session error slot. The slot has its own lock so
// ds_session_last_error*() can be called while another thread still runs
// the session's last op — the rest of a session is single-threaded by
// contract, like a ds_ctx_t.
struct ds_session {
  std::unique_ptr<dstore_t> store;             // embedded ("mem:", "dir:")
  std::unique_ptr<dstore::net::Client> client; // remote ("host:port")

  mutable dstore::SpinLock err_mu{"capi.session_err"};
  int err_code = DS_OK;
  std::string err_msg;
};

// A tenant keyspace. Embedded namespaces hold a private engine context and
// prefix keys exactly like the server does ("<ns>\x1f<key>"), so embedded
// and remote sessions are observationally identical; remote ones hold the
// server-assigned namespace id.
struct ds_namespace {
  ds_session_t* owner = nullptr;
  std::string name;
  dstore::ds_ctx_t* ctx = nullptr;  // embedded
  uint32_t ns_id = 0;               // remote
};

namespace {

constexpr char kNsSep = '\x1f';

// ds_last_error state: one slot per thread, overwritten by every v2
// binding call (and by ds_session_open failures, which have no session).
thread_local int tls_last_code = DS_OK;
thread_local std::string tls_last_msg;

int record(const dstore::Status& s) {
  tls_last_code = dstore::errno_of(s.code());
  if (s.is_ok()) {
    tls_last_msg.clear();
  } else {
    tls_last_msg = s.to_string();
  }
  return tls_last_code;
}

int record_errno(int code, const char* msg) {
  tls_last_code = code;
  tls_last_msg = code == DS_OK ? "" : msg;
  return code;
}

// Per-session recording (v3): sessions never observe each other's errors.
int srecord(ds_session_t* s, const dstore::Status& st) {
  int code = dstore::errno_of(st.code());
  dstore::LockGuard<dstore::SpinLock> g(s->err_mu);
  s->err_code = code;
  if (st.is_ok()) {
    s->err_msg.clear();
  } else {
    s->err_msg = st.to_string();
  }
  return code;
}

int srecord_errno(ds_session_t* s, int code, const char* msg) {
  dstore::LockGuard<dstore::SpinLock> g(s->err_mu);
  s->err_code = code;
  s->err_msg = code == DS_OK ? "" : msg;
  return code;
}

dstore::DStoreConfig config_from(const dstore_options* o) {
  dstore::DStoreConfig cfg;
  cfg.max_objects = (o != nullptr && o->max_objects != 0) ? o->max_objects : (1 << 14);
  cfg.num_blocks = (o != nullptr && o->num_blocks != 0) ? o->num_blocks : (1 << 16);
  cfg.engine.log_slots = (o != nullptr && o->log_slots != 0) ? o->log_slots : 8192;
  cfg.engine.arena_bytes = dstore::DStoreConfig::suggested_arena_bytes(cfg.max_objects);
  cfg.engine.background_checkpointing =
      o != nullptr && o->background_checkpointing != 0;
  return cfg;
}

// Shared by v2 dstore_open and v3 embedded sessions. `dir` overrides the
// options' backing_dir (v3 carries the path in the target string).
dstore_t* open_store(const dstore_options* options, const char* dir, int create) {
  auto s = std::make_unique<dstore_t>();
  s->cfg = config_from(options);
  size_t pool_bytes = dstore::DStoreConfig::required_pool_bytes(s->cfg);
  if (dir == nullptr && options != nullptr) dir = options->backing_dir;
  if (dir != nullptr) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    auto pool = dstore::pmem::Pool::open_file(std::string(dir) + "/pmem.img", pool_bytes,
                                              dstore::LatencyModel::none(), create != 0);
    if (!pool.is_ok()) {
      record(pool.status());
      return nullptr;
    }
    s->pool = std::move(pool).value();
    dstore::ssd::DeviceConfig dc;
    dc.num_blocks = s->cfg.num_blocks;
    auto dev = dstore::ssd::FileBlockDevice::open(std::string(dir) + "/data.img", dc,
                                                  create != 0);
    if (!dev.is_ok()) {
      record(dev.status());
      return nullptr;
    }
    s->device = std::move(dev).value();
  } else {
    s->pool = std::make_unique<dstore::pmem::Pool>(pool_bytes,
                                                   dstore::pmem::Pool::Mode::kDirect);
    dstore::ssd::DeviceConfig dc;
    dc.num_blocks = s->cfg.num_blocks;
    s->device = std::make_unique<dstore::ssd::RamBlockDevice>(dc);
  }
  auto store = create != 0 ? dstore::DStore::create(s->pool.get(), s->device.get(), s->cfg)
                           : dstore::DStore::recover(s->pool.get(), s->device.get(), s->cfg);
  if (!store.is_ok()) {
    record(store.status());
    return nullptr;
  }
  s->store = std::move(store).value();
  record(dstore::Status::ok());
  return s.release();
}

std::string tenant_key(const std::string& ns_name, const char* key) {
  std::string k;
  k.reserve(ns_name.size() + 1 + strlen(key));
  k.append(ns_name);
  k.push_back(kNsSep);
  k.append(key);
  return k;
}

bool valid_ns_name(const char* name) {
  return name != nullptr && name[0] != '\0' && strchr(name, kNsSep) == nullptr;
}

}  // namespace

extern "C" {

uint32_t ds_api_version(void) {
  return ((uint32_t)DS_API_VERSION_MAJOR << 16) | (uint32_t)DS_API_VERSION_MINOR;
}

/* ======================================================================
 * v3: sessions and namespaces
 * ====================================================================== */

ds_session_t* ds_session_open(const char* target, const ds_session_options* options) {
  if (target == nullptr) {
    record_errno(DS_EINVAL, "null target");
    return nullptr;
  }
  std::string t = target;
  auto session = std::make_unique<ds_session>();
  const dstore_options* store_opts = options != nullptr ? &options->store : nullptr;
  if (t == "mem:" || t == "mem") {
    session->store.reset(open_store(store_opts, nullptr, 1));
    if (!session->store) return nullptr;  // open_store recorded the reason
  } else if (t.rfind("dir:", 0) == 0) {
    std::string dir = t.substr(4);
    if (dir.empty()) {
      record_errno(DS_EINVAL, "dir: target needs a path");
      return nullptr;
    }
    session->store.reset(
        open_store(store_opts, dir.c_str(), options == nullptr ? 1 : options->create));
    if (!session->store) return nullptr;
  } else {
    // Remote: "tcp:host:port" or bare "host:port".
    std::string hostport = t.rfind("tcp:", 0) == 0 ? t.substr(4) : t;
    dstore::net::ClientConfig cfg;
    if (options != nullptr && options->pipeline_depth != 0) {
      cfg.pipeline_depth = options->pipeline_depth;
    }
    auto client = dstore::net::Client::connect(hostport, cfg);
    if (!client.is_ok()) {
      record(client.status());
      return nullptr;
    }
    session->client = std::move(client).value();
  }
  record(dstore::Status::ok());
  return session.release();
}

void ds_session_close(ds_session_t* session) { delete session; }

ds_namespace_t* ds_namespace_open(ds_session_t* session, const char* name) {
  if (session == nullptr) {
    record_errno(DS_EINVAL, "null session");
    return nullptr;
  }
  if (!valid_ns_name(name)) {
    srecord_errno(session, DS_EINVAL, "malformed namespace name");
    return nullptr;
  }
  auto ns = std::make_unique<ds_namespace>();
  ns->owner = session;
  ns->name = name;
  if (session->client) {
    auto info = session->client->open_namespace(name);
    if (!info.is_ok()) {
      srecord(session, info.status());
      return nullptr;
    }
    ns->ns_id = info.value().ns_id;
  } else {
    ns->ctx = session->store->store->ds_init();
  }
  srecord(session, dstore::Status::ok());
  return ns.release();
}

void ds_namespace_close(ds_namespace_t* ns) {
  if (ns == nullptr) return;
  if (ns->ctx != nullptr) ns->owner->store->store->ds_finalize(ns->ctx);
  delete ns;
}

ssize_t ds_put(ds_namespace_t* ns, const char* key, const void* value, size_t size) {
  if (ns == nullptr) return record_errno(DS_EINVAL, "null namespace");
  if (key == nullptr) return srecord_errno(ns->owner, DS_EINVAL, "null key");
  ds_session_t* s = ns->owner;
  dstore::Status st = s->client
                          ? s->client->put(ns->ns_id, key, value, size)
                          : s->store->store->oput(ns->ctx, tenant_key(ns->name, key),
                                                  value, size);
  int code = srecord(s, st);
  return st.is_ok() ? (ssize_t)size : code;
}

ssize_t ds_get(ds_namespace_t* ns, const char* key, void* value, size_t value_cap) {
  if (ns == nullptr) return record_errno(DS_EINVAL, "null namespace");
  if (key == nullptr) return srecord_errno(ns->owner, DS_EINVAL, "null key");
  ds_session_t* s = ns->owner;
  if (s->client) {
    auto r = s->client->get(ns->ns_id, key);
    if (!r.is_ok()) return srecord(s, r.status());
    size_t n = r.value().size() < value_cap ? r.value().size() : value_cap;
    if (n > 0) memcpy(value, r.value().data(), n);
    srecord(s, dstore::Status::ok());
    return (ssize_t)r.value().size();
  }
  auto r = s->store->store->oget(ns->ctx, tenant_key(ns->name, key), value, value_cap);
  if (!r.is_ok()) return srecord(s, r.status());
  srecord(s, dstore::Status::ok());
  return (ssize_t)r.value();
}

int ds_delete(ds_namespace_t* ns, const char* key) {
  if (ns == nullptr) return record_errno(DS_EINVAL, "null namespace");
  if (key == nullptr) return srecord_errno(ns->owner, DS_EINVAL, "null key");
  ds_session_t* s = ns->owner;
  return srecord(s, s->client ? s->client->del(ns->ns_id, key)
                              : s->store->store->odelete(ns->ctx, tenant_key(ns->name, key)));
}

int ds_scrub(ds_session_t* session) {
  if (session == nullptr) return record_errno(DS_EINVAL, "null session");
  if (session->client) {
    auto r = session->client->scrub();
    return srecord(session, r.is_ok() ? dstore::Status::ok() : r.status());
  }
  return srecord(session, session->store->store->scrub_now());
}

int ds_checkpoint(ds_session_t* session) {
  if (session == nullptr) return record_errno(DS_EINVAL, "null session");
  if (session->client) {
    return srecord(session, dstore::Status::unsupported(
                                "remote servers checkpoint at the log watermark"));
  }
  return srecord(session, session->store->store->checkpoint_now());
}

char* ds_session_metrics(ds_session_t* session, int format) {
  if (session == nullptr ||
      (format != DS_METRICS_JSON && format != DS_METRICS_PROMETHEUS)) {
    record_errno(DS_EINVAL, "null session or bad format");
    return nullptr;
  }
  std::string out;
  if (session->client) {
    auto r = session->client->metrics((uint8_t)format);
    if (!r.is_ok()) {
      srecord(session, r.status());
      return nullptr;
    }
    out = std::move(r).value();
  } else {
    out = format == DS_METRICS_JSON ? session->store->store->metrics_json()
                                    : session->store->store->metrics_prometheus();
  }
  char* buf = static_cast<char*>(malloc(out.size() + 1));
  if (buf == nullptr) {
    srecord_errno(session, DS_EINTERNAL, "out of memory");
    return nullptr;
  }
  memcpy(buf, out.data(), out.size());
  buf[out.size()] = '\0';
  srecord(session, dstore::Status::ok());
  return buf;
}

int ds_session_last_error_code(const ds_session_t* session) {
  if (session == nullptr) return DS_EINVAL;
  dstore::LockGuard<dstore::SpinLock> g(session->err_mu);
  return session->err_code;
}

const char* ds_session_last_error(const ds_session_t* session) {
  if (session == nullptr) return "null session";
  dstore::LockGuard<dstore::SpinLock> g(session->err_mu);
  return session->err_msg.c_str();
}

/* ======================================================================
 * v2: deprecated shims (same engine underneath)
 * ====================================================================== */

dstore_t* dstore_open(const dstore_options* options, int create) {
  return open_store(options, nullptr, create);
}

void dstore_close(dstore_t* store) {
  delete store;
}

ds_ctx_t* ds_init(dstore_t* store) {
  if (store == nullptr) return nullptr;
  auto* c = new ds_ctx;
  c->owner = store;
  c->ctx = store->store->ds_init();
  return c;
}

void ds_finalize(ds_ctx_t* ctx) {
  if (ctx == nullptr) return;
  ctx->owner->store->ds_finalize(ctx->ctx);
  delete ctx;
}

OBJECT* oopen(ds_ctx_t* ctx, const char* name, size_t size, uint32_t op) {
  if (ctx == nullptr || name == nullptr) {
    record_errno(DS_EINVAL, "null context or name");
    return nullptr;
  }
  uint32_t mode = 0;
  if (op & DS_O_READ) mode |= dstore::kRead;
  if (op & DS_O_WRITE) mode |= dstore::kWrite;
  if (op & DS_O_CREATE) mode |= dstore::kCreate;
  auto r = ctx->owner->store->oopen(ctx->ctx, name, size, mode);
  if (!r.is_ok()) {
    record(r.status());
    return nullptr;
  }
  record(dstore::Status::ok());
  auto* o = new ds_obj;
  o->owner = ctx->owner;
  o->obj = r.value();
  return o;
}

void oclose(OBJECT* object) {
  if (object == nullptr) return;
  object->owner->store->oclose(object->obj);
  delete object;
}

ssize_t oread(OBJECT* object, void* buf, size_t size, off_t offset) {
  if (object == nullptr) return record_errno(DS_EINVAL, "null object");
  auto r = object->owner->store->oread(object->obj, buf, size, (uint64_t)offset);
  if (!r.is_ok()) return record(r.status());
  record(dstore::Status::ok());
  return (ssize_t)r.value();
}

ssize_t owrite(OBJECT* object, const void* buf, size_t size, off_t offset) {
  if (object == nullptr) return record_errno(DS_EINVAL, "null object");
  auto r = object->owner->store->owrite(object->obj, buf, size, (uint64_t)offset);
  if (!r.is_ok()) return record(r.status());
  record(dstore::Status::ok());
  return (ssize_t)r.value();
}

ssize_t oget(ds_ctx_t* ctx, const char* key, void* value, size_t value_cap) {
  if (ctx == nullptr || key == nullptr) return record_errno(DS_EINVAL, "null context or key");
  auto r = ctx->owner->store->oget(ctx->ctx, key, value, value_cap);
  if (!r.is_ok()) return record(r.status());
  record(dstore::Status::ok());
  return (ssize_t)r.value();
}

ssize_t oput(ds_ctx_t* ctx, const char* key, const void* value, size_t size) {
  if (ctx == nullptr || key == nullptr) return record_errno(DS_EINVAL, "null context or key");
  dstore::Status s = ctx->owner->store->oput(ctx->ctx, key, value, size);
  if (!s.is_ok()) return record(s);
  record(s);
  return (ssize_t)size;
}

int odelete(ds_ctx_t* ctx, const char* name) {
  if (ctx == nullptr || name == nullptr) return record_errno(DS_EINVAL, "null context or name");
  return record(ctx->owner->store->odelete(ctx->ctx, name));
}

int olock(ds_ctx_t* ctx, const char* name) {
  if (ctx == nullptr || name == nullptr) return record_errno(DS_EINVAL, "null context or name");
  return record(ctx->owner->store->olock(ctx->ctx, name));
}

int ounlock(ds_ctx_t* ctx, const char* name) {
  if (ctx == nullptr || name == nullptr) return record_errno(DS_EINVAL, "null context or name");
  return record(ctx->owner->store->ounlock(ctx->ctx, name));
}

int dstore_checkpoint(dstore_t* store) {
  if (store == nullptr) return record_errno(DS_EINVAL, "null store");
  return record(store->store->checkpoint_now());
}

uint64_t dstore_object_count(dstore_t* store) {
  if (store == nullptr) return 0;
  return store->store->object_count();
}

char* ds_metrics_dump(dstore_t* store, int format) {
  if (store == nullptr || (format != DS_METRICS_JSON && format != DS_METRICS_PROMETHEUS)) {
    record_errno(DS_EINVAL, "null store or bad format");
    return nullptr;
  }
  std::string out = format == DS_METRICS_JSON ? store->store->metrics_json()
                                              : store->store->metrics_prometheus();
  char* buf = static_cast<char*>(malloc(out.size() + 1));
  if (buf == nullptr) {
    record_errno(DS_EINTERNAL, "out of memory");
    return nullptr;
  }
  memcpy(buf, out.data(), out.size());
  buf[out.size()] = '\0';
  record(dstore::Status::ok());
  return buf;
}

int ds_last_error_code(void) { return tls_last_code; }

const char* ds_last_error(void) { return tls_last_msg.c_str(); }

const char* ds_open_error(void) { return tls_last_msg.c_str(); }

}  // extern "C"
