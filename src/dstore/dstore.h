// DStore (§4): a fast, tailless, quiescent-free object store whose control
// plane is DIPPER and whose data plane is an SSD block device.
//
// Layout (§4.2, Figure 4):
//   * DRAM:  btree object index, metadata zone, block pool, metadata pool —
//            the volatile system space, one slab-allocated arena;
//   * PMEM:  the operation log + shadow copies of all of the above
//            (managed by the DIPPER engine);
//   * SSD:   object data, in fixed-size blocks allocated from the block
//            pool; writes land in the device's capacitor-protected cache.
//
// API (§4.1, Table 2): both key-value (oget/oput/odelete) and filesystem
// (oopen/oclose/oread/owrite) styles over the same objects, plus
// olock/ounlock for inter-object dependencies and ds_init/ds_finalize
// thread contexts.
//
// Write pipeline (§4.3, Figure 4):
//   1 lock the block and metadata pools       ┐ synchronous region,
//   2 allocate and write the log record       │ <300ns of real work —
//   3 allocate blocks from the block pool     │ everything that must be
//   4 allocate pages from the metadata pool   │ ordered identically on
//   5 unlock the pools                        ┘ replay
//   6 write metadata in the metadata zone     ┐ parallel across requests
//   7 write the btree record                  ┘ (observational equivalence)
//   8 write data to SSD
//   9 commit and flush the log record  → op is durable
//
// Replay (checkpoint/recovery) runs steps 2-4, 6-7 from the log with the
// SAME functions, against a shadow space. Determinism of the circular
// pools guarantees replay allocates the identical SSD blocks, which is why
// block lists never appear in the 32-byte log records.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/lockdep.h"
#include "dipper/engine.h"
#include "fsmeta/badpage_table.h"
#include "obs/metrics.h"
#include "obs/op_trace.h"
#include "ds/btree.h"
#include "ds/circular_pool.h"
#include "ds/key.h"
#include "ds/metadata_zone.h"
#include "ds/readcount_table.h"
#include "pmem/pool.h"
#include "ssd/block_device.h"
#include "ssd/io_queue.h"

namespace dstore {

// Replication hook (DESIGN.md §16). A primary's repl::Node implements this
// to mirror every committed mutation into its ship buffer. Two-phase so the
// stream order equals the per-key commit order: prepare() is called INSIDE
// the op's in-flight exclusion window (after the data is durable, before
// the log record commits) and assigns the entry its stream position;
// commit()/abort() settle it after the engine commit. The sink must not
// block on other stores and must tolerate calls from any store thread.
// Followers install the same sink but return ticket 0 while applying
// replicated entries (no loops).
class ReplSink {
 public:
  struct Mutation {
    uint8_t op = 0;       // dipper::OpType ordinal
    uint32_t shard = 0;   // DStoreConfig::repl_shard_id of the source store
    uint8_t side = 0;     // log side of the record (with `slot`, locates it)
    uint32_t slot = 0;
    uint64_t lsn = 0;
    bool unlogged = false;  // pure data overwrite: no log record, no image
    uint64_t arg0 = 0;      // record arg0 (put: size; write: new_size)
    uint64_t arg1 = 0;      // record arg1 (write: offset)
    std::string key;
    std::string value;           // the op's data bytes (empty for deletes)
    const void* slot_image = nullptr;  // 128-byte raw record image, or null
  };
  virtual ~ReplSink() = default;
  // Returns an opaque ticket (0 = untracked; commit/abort must be skipped).
  virtual uint64_t prepare(Mutation m) = 0;
  virtual void commit(uint64_t ticket) = 0;
  virtual void abort(uint64_t ticket) = 0;
};

struct DStoreConfig {
  uint64_t max_objects = 1 << 14;  // metadata pool / zone capacity
  uint64_t num_blocks = 1 << 14;   // SSD blocks managed by the block pool
  dipper::EngineConfig engine;
  // Observational-equivalence concurrency (§3.7/§4.3). When disabled
  // (Fig 9 ablation), the synchronous region extends over the metadata and
  // btree updates, serializing steps 6-7 under the pipeline lock.
  bool observational_equivalence = true;
  // OE-parallel checkpoint replay (§3.5): pipeline pool allocations and
  // metadata/btree updates across two lanes for large record batches.
  bool parallel_replay = true;
  // Transient SSD errors (IO_ERROR / BUSY) are retried with exponential
  // backoff: attempt i sleeps io_retry_backoff_ns << i. After
  // io_max_retries failed retries a write marks the store read-only and the
  // error surfaces through the public API; reads just surface the error.
  int io_max_retries = 3;
  uint64_t io_retry_backoff_ns = 2000;
  // NVMe queue-pair depth for the data plane: each op submits all of its
  // block IOs through an ssd::IoQueue bounded at this many outstanding
  // requests, overlapping their device latency with each other and with
  // the PMEM log persist. It also caps how many physically contiguous
  // blocks coalesce into a single IO descriptor (an MDTS-like transfer
  // limit). ssd_qd = 1 reproduces the historical fully synchronous
  // one-block-at-a-time behaviour.
  uint32_t ssd_qd = 16;

  // Background scrubber (DESIGN.md §11): every scrub_interval_ms a store
  // thread walks all objects and verifies every checksum tier — metadata
  // entry CRCs, the device page sidecar, and whole-object content CRCs —
  // repairing or quarantining what it finds, so latent corruption is found
  // before a read hits it. The device's bandwidth channel rate-limits the
  // verification reads. 0 disables the thread; scrub_now() always works.
  uint64_t scrub_interval_ms = 0;
  // Early-ack puts (DESIGN.md §13): acknowledge an oput once every data IO
  // has been accepted into the device's capacitor-backed write cache and
  // the log record committed, instead of also waiting out the emulated
  // device latency — the queue-pair is parked on the caller's ds_ctx_t and
  // reaped on its next mutating op (ds_finalize drains the rest). Only
  // effective with a power-loss-protected device and a non-null context;
  // otherwise puts stay fully synchronous. Acknowledged == durable under
  // PLP, so commit-implies-durable is unchanged.
  bool early_ack = false;
  // Read-repair support: route pure data overwrites through logged kWrite
  // records and force the engine's physical payload logging, so every
  // committed write inside the checkpoint window has an authenticated PMEM
  // copy the containment ladder can repair corrupted SSD pages from.
  bool repair_logging = false;

  // Replication (DESIGN.md §16): when non-null, every committed mutation is
  // mirrored through the two-phase sink. `repl_shard_id` tags the entries
  // with this store's shard index so a follower applies them to the same
  // shard (ShardedStore::shard_config sets it).
  ReplSink* repl_sink = nullptr;
  uint32_t repl_shard_id = 0;

  // A volatile arena comfortably sized for `objects` objects.
  static size_t suggested_arena_bytes(uint64_t objects);
  // Total PMEM pool bytes a store with this config needs: the DIPPER
  // engine's layout (with the repair_logging override applied) plus the
  // persistent bad-page table region. Pools sized exactly for the engine
  // still work — the bad-page table then runs volatile.
  static size_t required_pool_bytes(const DStoreConfig& cfg);
};

// Per-thread IO context (ds_init/ds_finalize, Table 2).
struct ds_ctx_t {
  uint64_t id = 0;
  // Object locks held via olock() (a writer tolerates its own lock record).
  std::set<std::string> held_locks;
  // Early-ack puts: committed ops whose queue-pairs are still spinning out
  // their emulated device latency. Every parked queue has only ok statuses
  // (checked before parking), so reaping never resubmits — and therefore
  // never touches a caller write buffer that is long gone.
  std::vector<std::unique_ptr<ssd::IoQueue>> pending_io;
};

// Open-object handle for the filesystem-style API.
struct Object;

// Open mode flags (op_t in Table 2).
enum OpenMode : uint32_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kCreate = 1u << 2,  // create if absent (requires kWrite)
};

class DStore final : public dipper::SpaceClient {
 public:
  // Format a fresh store onto `pool` + `device`.
  static Result<std::unique_ptr<DStore>> create(pmem::Pool* pool, ssd::BlockDevice* device,
                                                DStoreConfig cfg);
  // Recover an existing store after a crash or restart (§3.6).
  static Result<std::unique_ptr<DStore>> recover(pmem::Pool* pool, ssd::BlockDevice* device,
                                                 DStoreConfig cfg);
  ~DStore() override;

  // ---- environment --------------------------------------------------------
  ds_ctx_t* ds_init();
  void ds_finalize(ds_ctx_t* ctx);

  // ---- key-value API ------------------------------------------------------
  // Store `size` bytes under `name` (insert or overwrite).
  Status oput(ds_ctx_t* ctx, std::string_view name, const void* value, size_t size);
  // Fetch the value; copies min(buf_cap, value_size) bytes and returns the
  // full value size.
  Result<size_t> oget(ds_ctx_t* ctx, std::string_view name, void* buf, size_t buf_cap);

 private:
  class ReaderGuard;  // per-object read exclusion (defined in dstore.cc)

 public:
  // Zero-copy get (DESIGN.md §13): the object's bytes as views over the
  // device's internal buffer — no copy into a caller buffer. The view holds
  // the object's read exclusion (writers of this object wait) until it is
  // destroyed, so drop it promptly. Both checksum tiers still run: the
  // per-page sidecar (bandwidth-charged like a media read) and, when
  // recorded, the whole-object content CRC over the mapped bytes. Devices
  // without a direct read mapping (FileBlockDevice, !PLP RamBlockDevice)
  // return Status::unsupported — fall back to oget().
  class ReadView {
   public:
    struct Piece {
      const void* data;
      size_t len;
    };
    ReadView();
    ReadView(ReadView&&) noexcept;
    ReadView& operator=(ReadView&&) noexcept;
    ~ReadView();
    const std::vector<Piece>& pieces() const { return pieces_; }
    size_t size() const { return size_; }

   private:
    friend class DStore;
    std::vector<Piece> pieces_;
    size_t size_ = 0;
    std::unique_ptr<ReaderGuard> pin_;  // released on destruction
  };
  Result<ReadView> oget_zc(ds_ctx_t* ctx, std::string_view name);

  Status odelete(ds_ctx_t* ctx, std::string_view name);

  // ---- filesystem API -----------------------------------------------------
  Result<Object*> oopen(ds_ctx_t* ctx, std::string_view name, size_t size_hint, uint32_t mode);
  void oclose(Object* object);
  Result<size_t> oread(Object* object, void* buf, size_t size, uint64_t offset);
  Result<size_t> owrite(Object* object, const void* buf, size_t size, uint64_t offset);

  // ---- concurrency control ------------------------------------------------
  Status olock(ds_ctx_t* ctx, std::string_view name);
  Status ounlock(ds_ctx_t* ctx, std::string_view name);

  // ---- introspection ------------------------------------------------------
  Result<uint64_t> object_size(std::string_view name);
  uint64_t object_count();
  // Visit every object in name order. Return false from `fn` to stop.
  // Holds the index shared lock for the duration; writers wait.
  void list(const std::function<bool(std::string_view name, uint64_t size)>& fn);

  struct SpaceUsage {
    uint64_t dram_bytes;  // volatile system space in use
    uint64_t pmem_bytes;  // root + logs + shadow copies in use
    uint64_t ssd_bytes;   // data blocks in use
  };
  SpaceUsage space_usage();

  dipper::Engine& engine() { return *engine_; }
  Status checkpoint_now() { return engine_->checkpoint_now(); }

  // True once a data write exhausted its SSD retries: mutating calls fail
  // with READ_ONLY until the store is reopened; reads keep working.
  bool read_only() const { return read_only_.load(std::memory_order_acquire); }

  // ---- integrity (DESIGN.md §11) ------------------------------------------
  // One full verification pass over every object: metadata entry CRC,
  // device page sidecar over the object's used bytes, and (when recorded)
  // the whole-object content CRC. Detected corruption runs the containment
  // ladder — read-repair from the PMEM log copy, else quarantine — exactly
  // like a foreground read. Returns ok when every object verified clean or
  // was repaired; the first unrepairable corruption otherwise. The same
  // pass the background scrubber thread runs every scrub_interval_ms.
  struct ScrubReport {
    uint64_t objects_scanned = 0;
    uint64_t pages_verified = 0;
    uint64_t checksum_failures = 0;  // objects that failed any checksum tier
    uint64_t repaired = 0;           // of those, healed from the log copy
    uint64_t quarantined_pages = 0;  // pages quarantined this pass
    std::vector<std::string> corrupt_objects;  // unrepairable, by name
  };
  Status scrub_now(ScrubReport* report = nullptr);

  // The quarantine tier's persistent record (advisory; see badpage_table.h).
  const fsmeta::BadPageTable& bad_pages() const { return badpages_; }

  // Snapshot of the integrity counters (the dstore_integrity_* /
  // dstore_scrub_* metrics), for harnesses that reconcile detections
  // against injected fault counts without scraping the registry.
  struct IntegrityCounters {
    uint64_t checksum_failures = 0;
    uint64_t repairs = 0;
    uint64_t quarantined_pages = 0;
    uint64_t scrub_pages_verified = 0;
  };
  IntegrityCounters counters() const {
    return {integrity_failures_->value(), integrity_repairs_->value(),
            integrity_quarantined_->value(), scrub_pages_verified_->value()};
  }

  // ---- observability ------------------------------------------------------
  // The one introspection surface (replaces the former Stats/StageStats/
  // io_retries getters — see DESIGN.md §10 for the metric catalogue and the
  // migration mapping). Everything the store, its DIPPER engine, and the
  // PMEM/SSD substrates measure is a named metric here: op counters and
  // latency histograms (dstore_put_latency_ns, ...), pipeline stage spans
  // (dstore_stage_ssd_batch_ns, ...), per-op substrate distributions
  // (dstore_put_flushes_per_op, ...), SSD data-plane counters
  // (ssd_io_batches_total, ...), and scrape-time callbacks over substrate
  // stats (pmem_flushes_total, dipper_log_fill_ratio, ...).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  std::string metrics_json() const { return metrics_.scrape_json(); }
  std::string metrics_prometheus() const { return metrics_.scrape_prometheus(); }

  // Deep structural cross-check for tests: btree/zone/pool agreement.
  Status validate();

  // ---- SpaceClient (DIPPER hooks) -----------------------------------------
  Status format(SlabAllocator& space) override;
  Status replay(SlabAllocator& space, std::span<const dipper::LogRecordView> records) override;

 private:
  DStore(pmem::Pool* pool, ssd::BlockDevice* device, DStoreConfig cfg);

  // The four control-plane structures, bound to one space. Constructed on
  // demand for the volatile space or a shadow space — the "same code on
  // both structures" mechanism.
  struct StoreRoot {
    offset_t btree;
    offset_t meta_zone;
    offset_t block_pool;
    offset_t meta_pool;
  };
  struct View {
    SlabAllocator* sp;
    BTree btree;
    MetadataZone zone;
    CircularPool block_pool;
    CircularPool meta_pool;
  };
  View view_of(SlabAllocator& space);

  size_t block_size() const { return device_->config().block_size(); }
  uint64_t blocks_needed(uint64_t bytes) const {
    return (bytes + block_size() - 1) / block_size();
  }

  // Metadata phases shared by the frontend and replay. `btree_mu` is the
  // readers-writer lock guarding the space's btree: the frontend passes the
  // volatile tree's lock, sequential replay passes nullptr (it owns the
  // space), and OE-parallel replay passes a lock shared by its two lanes.
  struct PutPlan {
    bool existed = false;
    uint64_t meta_idx = 0;
    std::vector<uint64_t> blocks;  // blocks backing the (new) value
  };
  // Steps 3-4 (+ old-block frees). Caller holds the pipeline lock for the
  // frontend; capacity must have been checked.
  Status put_phase1(View& v, const Key& name, uint64_t size, SharedSpinLock* btree_mu,
                    PutPlan* plan);
  // Steps 6-7. `trace` (optional, frontend only) splits zone vs btree time.
  Status put_phase2(View& v, const Key& name, uint64_t size, const PutPlan& plan,
                    SharedSpinLock* btree_mu, obs::OpTrace* trace = nullptr);

  struct DeletePlan {
    uint64_t meta_idx = 0;
  };
  Status delete_phase1(View& v, const Key& name, SharedSpinLock* btree_mu,
                       DeletePlan* plan);
  Status delete_phase2(View& v, const DeletePlan& plan, SharedSpinLock* btree_mu);

  Status create_phase1(View& v, uint64_t* meta_idx);
  Status create_phase2(View& v, const Key& name, uint64_t meta_idx, SharedSpinLock* btree_mu);

  struct ExtendPlan {
    uint64_t meta_idx = 0;
    std::vector<uint64_t> new_blocks;
  };
  Status extend_phase1(View& v, const Key& name, uint64_t new_size, SharedSpinLock* btree_mu,
                       ExtendPlan* plan);
  Status extend_phase2(View& v, const Key& name, uint64_t new_size, const ExtendPlan& plan,
                       SharedSpinLock* btree_mu);

  // OE-parallel checkpoint replay (§3.5 "dedicated checkpoint thread
  // pool", §3.7): lane 1 (the calling thread) performs each record's pool
  // allocations in strict log order; lane 2 applies the metadata-zone and
  // btree updates, pipelined behind lane 1. Conflicting records are
  // ordered through a pending-name table.
  Status replay_parallel(View& v, std::span<const dipper::LogRecordView> records);

  // Reader-side CC (§4.4 + the symmetric check) is class ReaderGuard,
  // declared with the public API above (ReadView holds one); defined in
  // dstore.cc. See readcount_table.h.

  // -- async data plane ------------------------------------------------------
  // Every SSD access goes through an ssd::IoQueue (NVMe queue-pair
  // emulation, see ssd/io_queue.h): submit the whole byte range as
  // coalesced descriptors, overlap their latency up to cfg_.ssd_qd deep,
  // then reap and apply the retry/read-only policy in finish_io.

  // Walk `size` bytes starting at byte `offset` into the object laid out on
  // `bl[0..nblocks)`, coalescing physically contiguous block runs (capped
  // at cfg_.ssd_qd blocks per descriptor) and submitting them to `q`.
  // Writes from `wsrc`, or reads into `rdst` (exactly one non-null).
  Status submit_io_range(ssd::IoQueue& q, const uint64_t* bl, uint64_t nblocks,
                         const void* wsrc, void* rdst, size_t size, uint64_t offset,
                         obs::OpTrace* trace = nullptr);
  // Wait for all of `q`'s completions; re-submit failed descriptors with
  // bounded exponential backoff (cfg_.io_max_retries / io_retry_backoff_ns).
  // Exhausted write retries degrade the store to read-only; reads surface
  // the error. Transient errors are absorbed or surfaced — never dropped.
  Status finish_io(ssd::IoQueue& q, bool is_write, obs::OpTrace* trace = nullptr);
  Status apply_io_policy(Status s, bool is_write);
  // Early-ack bookkeeping: drop the context's drained parked queues and
  // bound the still-spinning ones (oldest waited out past a small cap).
  void reap_pending(ds_ctx_t* ctx);

  Status write_data(const std::vector<uint64_t>& blocks, const void* data, size_t size,
                    obs::OpTrace* trace = nullptr);
  Status write_data_range(View& v, uint64_t meta_idx, const void* data, size_t size,
                          uint64_t offset, obs::OpTrace* trace = nullptr);
  Status read_data_range(View& v, uint64_t meta_idx, void* buf, size_t size, uint64_t offset,
                         size_t* out_len, obs::OpTrace* trace = nullptr);

  // -- integrity containment ladder (DESIGN.md §11) --------------------------
  // Caller holds the object's read/write exclusion (ReaderGuard or an
  // in-flight record) for all of these.

  // Metadata entry CRC check; a failure is uncontainable (the block list
  // itself is untrustworthy), so it degrades the store to READ_ONLY.
  Status verify_meta(View& v, uint64_t meta_idx);
  // Sidecar-verify every device page backing the object's used bytes.
  // Counts pages into *pages (may be null); collects failing absolute page
  // numbers into *bad (may be null, then fails fast).
  Status verify_object_pages(View& v, uint64_t meta_idx, uint64_t* pages,
                             std::vector<uint64_t>* bad);
  // Rewrite the whole object from the engine's authenticated physical-log
  // payload (find_repair_payload); fails when no committed whole-object
  // copy of the right size exists in the checkpoint window.
  Status repair_object(View& v, uint64_t meta_idx, obs::OpTrace* trace);
  // The ladder: count the failure, attempt repair_object + re-verify; on
  // success count a repair, else quarantine the object's bad pages and
  // surface Status::corruption.
  Status contain_corruption(View& v, uint64_t meta_idx, obs::OpTrace* trace,
                            uint64_t* quarantined = nullptr);

  // -- background scrubber ---------------------------------------------------
  void start_scrubber();
  void stop_scrubber();
  void scrub_loop();

  pmem::Pool* pool_;
  ssd::BlockDevice* device_;
  DStoreConfig cfg_;
  std::unique_ptr<dipper::Engine> engine_;

  SpinLock pipeline_mu_{"dstore.pipeline"};   // §4.3 step 1/5: pools + log order
  SpinLock arena_mu_{"dstore.arena"};         // volatile slab alloc (set_lock)
  SharedSpinLock btree_mu_{"dstore.btree"};   // volatile btree
  ReadCountTable read_counts_;

  std::atomic<uint64_t> next_ctx_id_{1};
  std::atomic<int64_t> live_ctxs_{0};
  std::atomic<int64_t> open_objects_{0};

  std::atomic<bool> read_only_{false};  // set on write-retry exhaustion

  fsmeta::BadPageTable badpages_;

  std::thread scrub_thread_;
  Mutex scrub_mu_{"dstore.scrub"};
  CondVar scrub_cv_;
  bool scrub_stop_ = false;
  std::atomic<uint64_t> last_scrub_ns_{0};  // wall time of the last full pass

  // -- metrics ---------------------------------------------------------------
  // init_metrics() (ctor) registers the owned metrics and builds the
  // OpMetrics handle bundles; register_substrate_metrics() (create/recover,
  // once engine_ exists) adds the scrape-time callbacks over engine/pool/
  // device stats.
  void init_metrics();
  void register_substrate_metrics();

  obs::MetricsRegistry metrics_;
  obs::OpMetrics put_metrics_;     // oput + oopen(kCreate)
  obs::OpMetrics get_metrics_;     // oget / oread
  obs::OpMetrics delete_metrics_;  // odelete
  obs::OpMetrics write_metrics_;   // owrite
  obs::Counter* ssd_io_batches_ = nullptr;
  obs::Counter* ssd_ios_issued_ = nullptr;
  obs::Counter* ssd_blocks_coalesced_ = nullptr;
  obs::Counter* ssd_io_retries_ = nullptr;
  obs::Counter* ssd_io_exhausted_ = nullptr;
  obs::Counter* integrity_failures_ = nullptr;     // checksum failures detected
  obs::Counter* integrity_repairs_ = nullptr;      // healed from the log copy
  obs::Counter* integrity_quarantined_ = nullptr;  // pages quarantined
  obs::Counter* scrub_pages_verified_ = nullptr;
};

// Open-object handle (stateful filesystem API). Obtained from oopen(),
// released with oclose().
struct Object {
  DStore* store = nullptr;
  Key name;
  uint32_t mode = 0;
};

}  // namespace dstore
