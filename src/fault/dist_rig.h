// DistRig — the distributed crash-schedule harness behind
// tests/dist_crash_test.cc and tools/crashplan --dist-sweep.
//
// A rig owns a small in-process replication fleet: N repl::Nodes, each with
// its own ShardedStore (kCrashSim pools + RAM devices), MetaStore pool and
// FaultInjector — one injector per node models one machine's power supply —
// wired through a MemHub whose links the plan can cut. A DistPlan extends
// FaultPlan with the distributed failure modes:
//
//   n<idx>/<faultspec>      — the FaultSpec fires on that node only
//                             ("n0/pmem.flush@17:crash");
//   part@<at>-<heal>=ids    — from op `at` to op `heal`, the fleet is split
//                             into {ids} vs everyone else;
//   kill@<at>=<idx>         — hard power failure of node idx at op `at`
//                             (revived when the run heals, so double-kill
//                             plans exercise back-to-back failovers).
//
// The rig drives a deterministic seeded workload against whichever node is
// primary, pumping on_tick() between ops so heartbeats, failure detection
// and elections run in a reproducible order. Nodes whose injector fires are
// taken off the hub, power-cycled (pool/device revert to durable images,
// DStore recovery, Node::reset_after_recovery) and rejoin a few ops later.
// The oracle records three outcome classes per op: clean quorum acks
// (must survive on every node), ambiguous attempts (status lost to a crash
// or quorum failure: either state acceptable, but the SAME state on every
// node), and unavailable windows (no primary: never attempted).
//
// verify_cluster() holds every surviving node to that oracle and — the
// paper-level forbidden outcomes — fails on replica divergence (any two
// nodes disagreeing on any key) and on silently lost acked writes.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dstore/sharded.h"
#include "fault/fault.h"
#include "pmem/pool.h"
#include "repl/mem_hub.h"
#include "repl/repl.h"

namespace dstore::fault {

// A distributed fault schedule. Serializes to one reproduction string,
// e.g. "seed=7;nodes=3;n1/pmem.fence@9:crash;part@12-20=1;kill@24=0".
struct DistPlan {
  uint64_t seed = 0;
  int nodes = 3;

  struct NodeFault {
    int node = 0;  // rig index (0-based); node id on the wire is index + 1
    FaultSpec spec;
  };
  struct Partition {
    uint32_t at = 0;    // split before op `at`...
    uint32_t heal = 0;  // ...healed before op `heal`
    std::vector<uint64_t> group;  // node IDS isolated on one side
  };
  struct Kill {
    uint32_t at = 0;
    int node = 0;  // rig index
  };

  std::vector<NodeFault> faults;
  std::vector<Partition> partitions;
  std::vector<Kill> kills;

  bool empty() const { return faults.empty() && partitions.empty() && kills.empty(); }
  std::string to_string() const;
  static Result<DistPlan> parse(std::string_view text);
};

struct DistRigOptions {
  int nodes = 3;
  uint32_t ops = 36;            // workload length; checkpoint_at mid-run
  uint32_t keys = 10;           // key space "k0".."k9"
  uint64_t workload_seed = 0xd157ULL;
  uint32_t value_scale = 1;
  uint32_t log_slots = 64;
  uint64_t max_objects = 64;
  uint64_t num_blocks = 768;
  uint32_t checkpoint_at = 18;  // every live node checkpoints before this op
  // Crashed nodes are power-cycled and rejoin this many ops later (killed
  // nodes stay down until the final heal).
  uint32_t revive_after_ops = 6;
  uint32_t ticks_per_op = 1;
  // How long the workload waits for an election before declaring the op
  // unavailable, and how long the final heal may take to converge.
  uint32_t election_grace_ticks = 64;
  uint32_t max_converge_ticks = 4096;
  // Small stream window / chunks so lagging followers exercise the
  // checkpoint-resync path, not just buffered streaming.
  size_t ship_window = 8;
  uint32_t snapshot_chunk_items = 16;
};

class DistRig {
 public:
  explicit DistRig(DistRigOptions opt = {});
  ~DistRig();

  // Build a fresh fleet, drive the workload under `plan`, heal and revive
  // everything, pump to convergence, and hold every node to the oracle.
  // Any non-ok return is a reproducible failure; report it next to
  // plan.to_string().
  Status run(const DistPlan& plan);

  struct RunStats {
    uint32_t acked = 0;        // clean quorum acks (oracle mutations)
    uint32_t ambiguous = 0;    // attempted, outcome unknown (either-state)
    uint32_t unavailable = 0;  // no primary reachable: op never attempted
    uint32_t crashes = 0;      // node power failures (injected + killed)
    uint64_t final_epoch = 0;
    uint64_t final_primary = 0;  // node id of the converged primary
  };
  const RunStats& stats() const { return stats_; }

  FaultInjector& injector(int node) { return sims_[(size_t)node]->inj; }
  repl::Node* node(int n) { return sims_[(size_t)n]->node.get(); }

  // Counting pass: full workload, fault-free, armed injectors everywhere;
  // element n is node n's (point, hit count) crash-schedule space.
  static std::vector<std::vector<std::pair<std::string, uint64_t>>> enumerate_schedules(
      DistRigOptions opt = {});

 private:
  struct Sim {
    uint64_t id = 0;     // node id on the wire = rig index + 1
    FaultInjector inj;   // declared before the layers that point at it
    std::unique_ptr<pmem::Pool> meta_pool;
    std::unique_ptr<repl::Node> node;
    std::unique_ptr<ShardedStore> store;
    std::vector<std::unique_ptr<repl::PeerRpc>> links;  // keep-alive
    bool dead = false;
    uint32_t revive_at = 0;  // op index; kReviveAtHeal for kills
  };
  static constexpr uint32_t kReviveAtHeal = 0xffffffffu;

  Status build(const DistPlan& plan);
  void run_workload(const DistPlan& plan);
  Status converge();
  Status verify_cluster();
  Status revive(Sim& s);
  void pump(uint32_t ticks);
  void sweep_crashes(uint32_t op_index);
  repl::Node* find_primary();
  std::string value_for(uint32_t i) const;
  bool state_acceptable(const std::string& key, const std::string* got) const;

  DistRigOptions opt_;
  std::unique_ptr<repl::MemHub> hub_;
  std::vector<std::unique_ptr<Sim>> sims_;
  uint64_t leader_hint_ = 1;

  std::map<std::string, std::string> oracle_;  // clean quorum-acked state
  // Per key, the other states verify() may accept: values of ambiguous
  // attempts (nullopt = an ambiguous delete). A later clean ack supersedes
  // them — the stream is totally ordered, so the acked write wins every
  // surviving branch.
  std::map<std::string, std::vector<std::optional<std::string>>> maybe_;
  RunStats stats_;
};

// ≥ `target` plans over the enumerated per-node schedule spaces, spread
// across the four sweep categories: crash-primary (node 0's points, which
// include its mid-checkpoint window), crash-follower (node 1's points, which
// include mid-replay), partition-during-promotion (windows that isolate the
// current primary long enough for the majority side to elect), and
// double-failover (kill the initial primary, then kill its successor).
std::vector<DistPlan> dist_crash_plans(const DistRigOptions& opt, size_t target = 200);

}  // namespace dstore::fault
