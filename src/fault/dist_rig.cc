#include "fault/dist_rig.h"

#include <algorithm>

#include "common/rng.h"

namespace dstore::fault {

// ---- DistPlan ------------------------------------------------------------

namespace {

bool parse_u64_tok(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (uint64_t)(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::string DistPlan::to_string() const {
  std::string out = "seed=" + std::to_string(seed) + ";nodes=" + std::to_string(nodes);
  for (const auto& f : faults)
    out += ";n" + std::to_string(f.node) + "/" + f.spec.to_string();
  for (const auto& p : partitions) {
    out += ";part@" + std::to_string(p.at) + "-" + std::to_string(p.heal) + "=";
    for (size_t i = 0; i < p.group.size(); i++) {
      if (i != 0) out += ",";
      out += std::to_string(p.group[i]);
    }
  }
  for (const auto& k : kills)
    out += ";kill@" + std::to_string(k.at) + "=" + std::to_string(k.node);
  return out;
}

Result<DistPlan> DistPlan::parse(std::string_view text) {
  DistPlan plan;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(';', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view tok = text.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) continue;
    uint64_t v = 0;
    if (tok.rfind("seed=", 0) == 0) {
      if (!parse_u64_tok(tok.substr(5), &v))
        return Status::invalid_argument("bad dist-plan seed");
      plan.seed = v;
    } else if (tok.rfind("nodes=", 0) == 0) {
      if (!parse_u64_tok(tok.substr(6), &v) || v < 2 || v > 16)
        return Status::invalid_argument("bad dist-plan node count");
      plan.nodes = (int)v;
    } else if (tok.rfind("part@", 0) == 0) {
      std::string_view body = tok.substr(5);
      size_t dash = body.find('-');
      size_t eq = body.find('=');
      if (dash == std::string_view::npos || eq == std::string_view::npos || dash > eq)
        return Status::invalid_argument("bad partition token: " + std::string(tok));
      Partition p;
      uint64_t at = 0, heal = 0;
      if (!parse_u64_tok(body.substr(0, dash), &at) ||
          !parse_u64_tok(body.substr(dash + 1, eq - dash - 1), &heal) || heal < at)
        return Status::invalid_argument("bad partition window: " + std::string(tok));
      p.at = (uint32_t)at;
      p.heal = (uint32_t)heal;
      std::string_view ids = body.substr(eq + 1);
      while (!ids.empty()) {
        size_t comma = ids.find(',');
        std::string_view one = ids.substr(0, comma);
        if (!parse_u64_tok(one, &v))
          return Status::invalid_argument("bad partition group: " + std::string(tok));
        p.group.push_back(v);
        ids = comma == std::string_view::npos ? std::string_view() : ids.substr(comma + 1);
      }
      if (p.group.empty())
        return Status::invalid_argument("empty partition group: " + std::string(tok));
      plan.partitions.push_back(std::move(p));
    } else if (tok.rfind("kill@", 0) == 0) {
      std::string_view body = tok.substr(5);
      size_t eq = body.find('=');
      if (eq == std::string_view::npos)
        return Status::invalid_argument("bad kill token: " + std::string(tok));
      uint64_t at = 0, node = 0;
      if (!parse_u64_tok(body.substr(0, eq), &at) ||
          !parse_u64_tok(body.substr(eq + 1), &node))
        return Status::invalid_argument("bad kill token: " + std::string(tok));
      plan.kills.push_back({(uint32_t)at, (int)node});
    } else if (tok.size() >= 3 && tok[0] == 'n' && tok[1] >= '0' && tok[1] <= '9') {
      size_t slash = tok.find('/');
      if (slash == std::string_view::npos)
        return Status::invalid_argument("bad node-fault token: " + std::string(tok));
      if (!parse_u64_tok(tok.substr(1, slash - 1), &v))
        return Status::invalid_argument("bad node index: " + std::string(tok));
      // Reuse the single-node grammar for the spec itself.
      auto fp = FaultPlan::parse("seed=0;" + std::string(tok.substr(slash + 1)));
      if (!fp.is_ok()) return fp.status();
      if (fp.value().specs().size() != 1)
        return Status::invalid_argument("node-fault token must hold one spec");
      plan.faults.push_back({(int)v, fp.value().specs()[0]});
    } else {
      return Status::invalid_argument("unrecognized dist-plan token: " + std::string(tok));
    }
  }
  for (const auto& f : plan.faults)
    if (f.node < 0 || f.node >= plan.nodes)
      return Status::invalid_argument("fault node index out of range");
  for (const auto& k : plan.kills)
    if (k.node < 0 || k.node >= plan.nodes)
      return Status::invalid_argument("kill node index out of range");
  for (const auto& p : plan.partitions)
    for (uint64_t id : p.group)
      if (id < 1 || id > (uint64_t)plan.nodes)
        return Status::invalid_argument("partition group id out of range");
  return plan;
}

// ---- DistRig -------------------------------------------------------------

DistRig::DistRig(DistRigOptions opt) : opt_(opt) {}

DistRig::~DistRig() = default;

std::string DistRig::value_for(uint32_t i) const {
  // Same unique-length construction as the single-node CrashRig: no two ops
  // ever produce equal values, so "which write survived" is decidable.
  size_t len = (1 + (131ull * i + 17) % 5003) * opt_.value_scale;
  std::string v(len, '\0');
  for (size_t j = 0; j < len; j++) v[j] = char('a' + (i + j) % 26);
  return v;
}

Status DistRig::build(const DistPlan& plan) {
  hub_ = std::make_unique<repl::MemHub>();
  sims_.clear();
  oracle_.clear();
  maybe_.clear();
  stats_ = {};
  leader_hint_ = 1;
  int n = plan.nodes >= 2 ? plan.nodes : opt_.nodes;
  for (int i = 0; i < n; i++) {
    auto sim = std::make_unique<Sim>();
    sim->id = (uint64_t)i + 1;
    FaultPlan fp(plan.seed);
    for (const auto& f : plan.faults)
      if (f.node == i) fp.add(f.spec);
    sim->inj.set_plan(fp);
    sim->inj.disarm();
    sim->meta_pool = std::make_unique<pmem::Pool>(4096, pmem::Pool::Mode::kCrashSim);
    sim->meta_pool->set_fault_injector(&sim->inj);

    repl::NodeConfig ncfg;
    ncfg.node_id = sim->id;
    ncfg.start_as_primary = i == 0;
    ncfg.initial_primary = i == 0 ? 0 : 1;
    ncfg.ship_window = opt_.ship_window;
    ncfg.snapshot_chunk_items = opt_.snapshot_chunk_items;
    // Single non-blocking ack attempt: the rig is single-threaded and its
    // fault-point hit numbering must never depend on how many wall-clock
    // re-ship retries fit inside an ack timeout.
    ncfg.ack_timeout_ms = 0;
    ncfg.meta_pool = sim->meta_pool.get();
    ncfg.fault = &sim->inj;
    sim->node = std::make_unique<repl::Node>(ncfg);

    ShardedConfig scfg;
    scfg.num_shards = 1;
    scfg.shard.max_objects = opt_.max_objects;
    scfg.shard.num_blocks = opt_.num_blocks;
    // Deterministic hit ordering: single-lane replay, no background
    // checkpoint thread (the rig checkpoints inline at checkpoint_at), one
    // pool worker.
    scfg.shard.parallel_replay = false;
    scfg.shard.engine.log_slots = opt_.log_slots;
    scfg.shard.engine.arena_bytes = 0;  // auto-size
    scfg.shard.engine.background_checkpointing = false;
    scfg.pool_mode = pmem::Pool::Mode::kCrashSim;
    scfg.ckpt_workers = 1;
    scfg.parallel_recovery = false;
    scfg.fault = &sim->inj;
    scfg.fault_all_shards = true;  // one injector = one machine
    scfg.repl_sink = sim->node.get();
    auto st = ShardedStore::create(scfg);
    if (!st.is_ok()) return st.status();
    sim->store = std::move(st).value();
    sim->node->attach_store(sim->store.get());
    hub_->add_node(sim->id, sim->node.get(), &sim->inj);
    sims_.push_back(std::move(sim));
  }
  for (auto& a : sims_) {
    for (auto& b : sims_) {
      if (a->id == b->id) continue;
      auto link = hub_->peer(a->id, b->id);
      a->node->add_peer(b->id, link.get());
      a->links.push_back(std::move(link));
    }
  }
  // Arm only after every store exists, so hit numbers are workload-relative.
  for (auto& s : sims_) s->inj.arm();
  return Status::ok();
}

void DistRig::pump(uint32_t ticks) {
  for (uint32_t t = 0; t < ticks; t++) {
    for (auto& sp : sims_) {
      if (sp->dead || sp->inj.crashed()) continue;
      sp->node->on_tick();
    }
  }
}

void DistRig::sweep_crashes(uint32_t op_index) {
  for (auto& sp : sims_) {
    if (sp->dead || !sp->inj.crashed()) continue;
    sp->dead = true;
    sp->revive_at = op_index + opt_.revive_after_ops;
    hub_->set_down(sp->id, true);
    stats_.crashes++;
  }
}

repl::Node* DistRig::find_primary() {
  auto scan = [&]() -> repl::Node* {
    // Cached leader first, then ids ascending — a deterministic client.
    size_t hint = (size_t)(leader_hint_ - 1);
    for (size_t k = 0; k <= sims_.size(); k++) {
      size_t idx = k == 0 ? hint : k - 1;
      if (idx >= sims_.size() || (k > 0 && idx == hint)) continue;
      Sim& s = *sims_[idx];
      if (s.dead || s.inj.crashed()) continue;
      if (s.node->role() == repl::Role::kPrimary) return s.node.get();
    }
    return nullptr;
  };
  repl::Node* p = scan();
  for (uint32_t t = 0; p == nullptr && t < opt_.election_grace_ticks; t++) {
    pump(1);
    p = scan();
  }
  if (p != nullptr) leader_hint_ = p->node_id();
  return p;
}

Status DistRig::revive(Sim& s) {
  // Single power failure per node per run: the plan's specs never re-fire
  // during recovery or rejoin.
  s.inj.disarm();
  s.inj.reset();  // clears the crashed latch; sinks and plan are kept
  DSTORE_RETURN_IF_ERROR(s.store->crash_and_recover_all());
  s.meta_pool->crash();  // revert to the durable meta image, unfreeze
  s.node->reset_after_recovery();
  hub_->set_down(s.id, false);
  s.dead = false;
  return Status::ok();
}

void DistRig::run_workload(const DistPlan& plan) {
  Rng rng(opt_.workload_seed);
  pump(2);  // let the followers' first ticks subscribe to the seed primary
  sweep_crashes(0);
  for (uint32_t i = 0; i < opt_.ops; i++) {
    for (const auto& pt : plan.partitions) {
      if (pt.at == i) hub_->partition(pt.group);
      if (pt.heal == i) hub_->heal();
    }
    for (const auto& k : plan.kills) {
      if (k.at != i) continue;
      Sim& s = *sims_[(size_t)k.node];
      if (s.dead) continue;
      s.dead = true;
      s.revive_at = kReviveAtHeal;
      hub_->set_down(s.id, true);
      stats_.crashes++;
    }
    for (auto& sp : sims_) {
      if (sp->dead && sp->revive_at == i) {
        // lint: allow-discard a failed revive just leaves the node down
        (void)revive(*sp);
      }
    }
    if (i == opt_.checkpoint_at) {
      for (auto& sp : sims_) {
        if (sp->dead || sp->inj.crashed()) continue;
        // lint: allow-discard a checkpoint interrupted by the planned crash is the point
        (void)sp->store->checkpoint_all();
      }
      sweep_crashes(i);
    }

    std::string key = "k" + std::to_string(rng.next_below(opt_.keys));
    bool del = rng.next_below(4) == 0;
    std::string val = del ? std::string() : value_for(i);

    repl::Node* p = find_primary();
    if (p == nullptr) {
      stats_.unavailable++;  // bounded by the plan's quorum-less windows
    } else {
      size_t pidx = (size_t)(p->node_id() - 1);
      Status s = del ? p->del(key) : p->put(key, val.data(), val.size());
      if (!sims_[pidx]->inj.crashed() && s.is_ok()) {
        stats_.acked++;
        if (del) {
          oracle_.erase(key);
        } else {
          oracle_[key] = val;
        }
        // The stream is totally ordered: this ack supersedes any older
        // ambiguity on the key in every surviving branch.
        maybe_.erase(key);
      } else {
        // Power failed under the primary mid-op, or the quorum ack never
        // came: the write may or may not survive, but every node must agree.
        stats_.ambiguous++;
        maybe_[key].push_back(del ? std::nullopt : std::optional<std::string>(val));
      }
    }
    sweep_crashes(i);
    pump(opt_.ticks_per_op);
    sweep_crashes(i);
  }
}

Status DistRig::converge() {
  // The fault window is the workload; nothing fires during the final heal.
  for (auto& sp : sims_) sp->inj.disarm();
  hub_->heal();
  for (auto& sp : sims_) {
    if (sp->dead) DSTORE_RETURN_IF_ERROR(revive(*sp));
  }
  uint32_t stable = 0;
  for (uint32_t t = 0; t < opt_.max_converge_ticks; t++) {
    pump(1);
    repl::Node* primary = nullptr;
    int primaries = 0;
    for (auto& sp : sims_) {
      if (sp->node->role() == repl::Role::kPrimary) {
        primaries++;
        primary = sp->node.get();
      }
    }
    bool settled = primaries == 1;
    if (settled) {
      for (auto& sp : sims_) {
        if (sp->node.get() == primary) continue;
        if (sp->node->applied_seq() != primary->commit_seq()) settled = false;
      }
    }
    stable = settled ? stable + 1 : 0;
    if (stable >= 4) {
      stats_.final_epoch = primary->epoch();
      stats_.final_primary = primary->node_id();
      return Status::ok();
    }
  }
  return Status::internal("cluster failed to converge within " +
                          std::to_string(opt_.max_converge_ticks) + " ticks");
}

bool DistRig::state_acceptable(const std::string& key, const std::string* got) const {
  auto o = oracle_.find(key);
  if (o != oracle_.end()) {
    if (got != nullptr && *got == o->second) return true;
  } else if (got == nullptr) {
    return true;
  }
  auto m = maybe_.find(key);
  if (m == maybe_.end()) return false;
  for (const auto& cand : m->second) {
    if (!cand.has_value()) {
      if (got == nullptr) return true;
    } else if (got != nullptr && *got == *cand) {
      return true;
    }
  }
  return false;
}

Status DistRig::verify_cluster() {
  std::vector<char> buf((1 + 5003) * (size_t)opt_.value_scale + 128);
  std::vector<std::map<std::string, std::string>> content(sims_.size());
  for (size_t n = 0; n < sims_.size(); n++) {
    ShardedStore* st = sims_[n]->store.get();
    DSTORE_RETURN_IF_ERROR(st->validate_all());
    std::vector<std::string> names;
    st->shard(0).list([&](std::string_view nm, uint64_t) {
      names.emplace_back(nm);
      return true;
    });
    for (const auto& nm : names) {
      auto r = st->get_on(nullptr, 0, nm, buf.data(), buf.size());
      if (!r.is_ok()) {
        return Status::corruption("node " + std::to_string(n + 1) +
                                  " cannot read its own object " + nm + ": " +
                                  r.status().message());
      }
      content[n][nm] = std::string(buf.data(), std::min(r.value(), buf.size()));
    }
  }
  // Forbidden outcome #1: replica divergence — any two surviving nodes
  // disagreeing about any key's existence or bytes.
  for (size_t n = 1; n < content.size(); n++) {
    if (content[n] == content[0]) continue;
    for (const auto& [k, v] : content[0]) {
      auto it = content[n].find(k);
      if (it == content[n].end()) {
        return Status::corruption("replica divergence: node " + std::to_string(n + 1) +
                                  " is missing key " + k);
      }
      if (it->second != v) {
        return Status::corruption("replica divergence: nodes 1 and " +
                                  std::to_string(n + 1) + " disagree on key " + k);
      }
    }
    for (const auto& [k, v] : content[n]) {
      if (content[0].find(k) == content[0].end()) {
        return Status::corruption("replica divergence: node " + std::to_string(n + 1) +
                                  " holds extra key " + k);
      }
    }
  }
  // Forbidden outcome #2: a silently lost acked write (or a phantom value
  // no op could have produced). Ambiguous attempts may land either way, but
  // the divergence pass above already pinned all nodes to one answer.
  for (uint32_t k = 0; k < opt_.keys; k++) {
    std::string key = "k" + std::to_string(k);
    auto it = content[0].find(key);
    const std::string* got = it != content[0].end() ? &it->second : nullptr;
    if (state_acceptable(key, got)) continue;
    if (oracle_.find(key) != oracle_.end()) {
      return Status::corruption("acked write silently lost or changed on key " + key);
    }
    return got != nullptr
               ? Status::corruption("phantom value surfaced on key " + key)
               : Status::corruption("unacked delete erased acked-absent key " + key);
  }
  return Status::ok();
}

Status DistRig::run(const DistPlan& plan) {
  DSTORE_RETURN_IF_ERROR(build(plan));
  run_workload(plan);
  DSTORE_RETURN_IF_ERROR(converge());
  return verify_cluster();
}

std::vector<std::vector<std::pair<std::string, uint64_t>>> DistRig::enumerate_schedules(
    DistRigOptions opt) {
  DistRig rig(opt);
  DistPlan empty;
  empty.nodes = opt.nodes;
  // lint: allow-discard counting pass; a broken baseline fails the real sweep
  (void)rig.run(empty);
  std::vector<std::vector<std::pair<std::string, uint64_t>>> out;
  for (int n = 0; n < opt.nodes; n++) out.push_back(rig.injector(n).hit_counts());
  return out;
}

std::vector<DistPlan> dist_crash_plans(const DistRigOptions& opt, size_t target) {
  auto spaces = DistRig::enumerate_schedules(opt);
  std::vector<DistPlan> plans;

  // Partition-during-promotion: isolate the live primary (id 1) past the
  // election timeout so the majority side promotes, then heal — the fenced
  // primary must step down and resync. The shorter follower windows cover
  // partition-without-promotion recovery.
  std::vector<DistPlan> special;
  for (uint32_t at = 2; at + 8 < opt.ops; at += 4) {
    DistPlan p;
    p.nodes = opt.nodes;
    p.partitions.push_back({at, at + 8, {1}});
    special.push_back(std::move(p));
    DistPlan q;
    q.nodes = opt.nodes;
    q.partitions.push_back({at, at + 6, {2}});
    special.push_back(std::move(q));
  }
  // Double-failover: kill the seed primary, then kill the staggered
  // election's winner (the highest id) a few ops into its reign.
  for (uint32_t a = 2; a + 10 < opt.ops; a += 5) {
    DistPlan p;
    p.nodes = opt.nodes;
    p.kills.push_back({a, 0});
    p.kills.push_back({a + 8, opt.nodes - 1});
    special.push_back(std::move(p));
  }

  // Single-node power failures fill the rest of the budget, strided evenly
  // across the enumerated (point, hit) space. Node 0's share is larger: its
  // space includes the seed primary's mid-checkpoint window.
  auto sample_into = [&](int node, size_t want) {
    if ((size_t)node >= spaces.size() || want == 0) return;
    std::vector<std::pair<std::string, uint64_t>> flat;
    for (const auto& [point, count] : spaces[(size_t)node])
      for (uint64_t h = 1; h <= count; h++) flat.emplace_back(point, h);
    if (flat.empty()) return;
    size_t n = std::min(want, flat.size());
    for (size_t k = 0; k < n; k++) {
      size_t idx = k * flat.size() / n;
      DistPlan p;
      p.nodes = opt.nodes;
      p.faults.push_back(
          {node, {flat[idx].first, flat[idx].second, FaultType::kCrash, 0, 1}});
      plans.push_back(std::move(p));
    }
  };
  size_t remaining = target > special.size() ? target - special.size() : 0;
  sample_into(0, remaining * 3 / 5);
  sample_into(1, remaining - remaining * 3 / 5);
  plans.insert(plans.end(), special.begin(), special.end());
  return plans;
}

}  // namespace dstore::fault
