// FaultPlan — deterministic fault injection across pmem / ssd / engine.
//
// DStore's central claims are crash-consistency claims; testing them on the
// happy path only means the ordering between individual persist points is
// never exercised. This subsystem makes every point where the system can
// fail a *named, countable event* and lets a test (or tools/crashplan)
// schedule a fault at exactly the Nth occurrence of any of them:
//
//   pmem.flush / pmem.fence / pmem.bulk    — power failure before the Nth
//                                            flush / fence / bulk persist,
//                                            spurious eviction, torn bulk;
//   ssd.write / ssd.read / ssd.flush       — transient EIO, torn 4 KB page
//                                            on power loss, latency spikes;
//   engine.* / dstore.*                    — named protocol steps (swap,
//                                            drain, clone, replay, bulk
//                                            flush, root flips, recovery),
//                                            registered with the
//                                            DSTORE_FAULT_POINT macro.
//
// A FaultPlan is a list of FaultSpecs plus a seed; it serializes to a short
// string ("seed=7;pmem.fence@17:crash") so any failing schedule can be
// reproduced from a CI log verbatim. The FaultInjector is the runtime: it
// counts hits per point, fires matching specs, and coordinates the power
// failure — a kCrash fault invokes every registered crash sink (the pmem
// pool freezes its persistent image, the block device drops power), after
// which the workload runs on borrowed time until the harness notices
// crashed() and performs the actual crash()+recover().
//
// Determinism: the same plan against the same single-threaded workload
// produces byte-identical crash images (tests/crash_schedule_test.cc proves
// this), because hit counting is exact and the only randomness (eviction
// faults) comes from the plan's own seeded RNG.
//
// Builds: fault points compile to nothing when DSTORE_FAULT_INJECTION_DISABLED
// is defined (cmake -DDSTORE_FAULT_INJECTION=OFF, for release builds); the
// default build keeps them — a null-injector check is one predictable branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/lockdep.h"
#include "common/rng.h"
#include "common/status.h"

namespace dstore::fault {

enum class FaultType : uint8_t {
  kNone = 0,
  kCrash,  // power failure: freeze every registered persistence sink
  kError,  // the faulting layer returns an injected transient Status
  kTorn,   // persist only the first `arg` bytes of the write, then kCrash
  kDelay,  // latency spike: spin for `arg` ns, then proceed normally
  kEvict,  // pmem only: spuriously persist `arg` random dirty lines
  // Silent-corruption faults: the layer completes the operation normally
  // (no error is returned, no crash) but the persisted or returned bytes
  // are wrong — exactly what media/transport bit rot does. Detection is
  // the integrity layer's job, never the injector's.
  kBitFlipPmemLine,   // pmem flush/bulk: flip bit `arg` (mod range) of the
                      // range being persisted, in DRAM and the image
  kBitFlipSsdPage,    // ssd read/write: flip bit `arg` (mod page) of the
                      // IO's first page on media, after the write lands /
                      // before the read copies
  kMisdirectedWrite,  // ssd write: the data lands `max(arg,1)` blocks away
                      // (mod device); the intended LBA is never written
};

const char* fault_type_name(FaultType t);

struct FaultSpec {
  std::string point;               // exact fault-point name
  uint64_t hit = 1;                // fire on the Nth hit (1-based)
  FaultType type = FaultType::kCrash;
  uint64_t arg = 0;                // torn prefix bytes / delay ns / evict lines
  int32_t repeat = 1;              // consecutive hits to fire for; -1 = forever

  // "point@hit[:type[:arg[:repeat]]]" with default fields omitted.
  std::string to_string() const;
};

// An ordered fault schedule. Copyable, comparable by string form.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(uint64_t seed) : seed_(seed) {}

  FaultPlan& add(FaultSpec spec) {
    specs_.push_back(std::move(spec));
    return *this;
  }
  // The most common plan: power failure at the Nth hit of `point`.
  static FaultPlan crash_at(std::string point, uint64_t hit) {
    FaultPlan p;
    p.add({std::move(point), hit, FaultType::kCrash, 0, 1});
    return p;
  }
  // Seeded random plan over an enumerated schedule space (point -> hit
  // count, as returned by FaultInjector::hit_counts()). Same seed + same
  // space => identical plan; used by the seed-determinism harness check.
  static FaultPlan random(uint64_t seed,
                          const std::vector<std::pair<std::string, uint64_t>>& space);

  uint64_t seed() const { return seed_; }
  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

  // "seed=N;spec;spec;..." — the reproduction string printed on failures.
  std::string to_string() const;
  static Result<FaultPlan> parse(std::string_view text);

 private:
  uint64_t seed_ = 0;
  std::vector<FaultSpec> specs_;
};

// What the faulting layer must do about a hit. kCrash and kDelay are fully
// handled inside on_hit (sinks invoked / delay spun); they are still
// reported so layers can skip the doomed operation. kError carries the
// Status to return; kTorn and kEvict carry `arg` for the layer to apply.
struct Outcome {
  FaultType type = FaultType::kNone;
  uint64_t arg = 0;
  Status status = Status::ok();

  bool fired() const { return type != FaultType::kNone; }
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) { set_plan(std::move(plan)); }
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Install a plan: counters and the crashed flag reset, the RNG re-seeds
  // from the plan. Crash sinks are kept.
  void set_plan(FaultPlan plan);
  const FaultPlan& plan() const { return plan_; }
  // Clear counters and the crashed flag, keep the plan and sinks.
  void reset();

  // Hits are counted (and faults fired) only while armed. Harnesses arm
  // after store creation so formatting noise never shifts hit numbers.
  void arm() { armed_.store(true, std::memory_order_release); }
  void disarm() { armed_.store(false, std::memory_order_release); }
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // Power-failure coordination: sinks run (once) when a kCrash/kTorn fault
  // fires. Pool::set_fault_injector / RamBlockDevice::set_fault_injector
  // register their freeze operations here.
  void add_crash_sink(std::function<void()> sink);
  void trigger_crash();  // idempotent
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  // The instrumented layers call this at every fault point.
  Outcome on_hit(std::string_view point);

  uint64_t hit_count(std::string_view point) const;
  // All points hit so far with their counts, name-sorted — the crash-
  // schedule space a sweep enumerates.
  std::vector<std::pair<std::string, uint64_t>> hit_counts() const;
  uint64_t total_hits() const;

  // Plan-seeded RNG for deterministic adversary choices (eviction faults).
  Rng& rng() { return rng_; }

 private:
  // Quiescence-exempt: on_hit() runs on every thread at every fault point —
  // pure test infrastructure, compiled out of release builds entirely.
  mutable Mutex mu_{"fault.injector", lockdep::kQuiesceExempt};
  FaultPlan plan_;
  Rng rng_{0};
  std::unordered_map<std::string, uint64_t> counts_;
  uint64_t total_ = 0;
  std::vector<std::function<void()>> sinks_;
  std::atomic<bool> armed_{true};
  std::atomic<bool> crashed_{false};
};

// Hot-path entry: one null check when injection is compiled in, nothing
// otherwise. All layers funnel through this.
#if defined(DSTORE_FAULT_INJECTION_DISABLED)
inline Outcome hit(FaultInjector* /*inj*/, std::string_view /*point*/) { return {}; }
#else
inline Outcome hit(FaultInjector* inj, std::string_view point) {
  if (inj == nullptr) return {};
  return inj->on_hit(point);
}
#endif

// Named protocol step marker for code that only needs crash/delay semantics
// (the engine's swap/drain/clone/replay/root-flip sequence).
#define DSTORE_FAULT_POINT(inj, name) (void)::dstore::fault::hit((inj), (name))

}  // namespace dstore::fault
