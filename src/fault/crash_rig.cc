#include "fault/crash_rig.h"

#include <algorithm>

#include "common/rng.h"

namespace dstore::fault {

CrashRig::CrashRig(RigOptions opt) : opt_(opt) {}

Status CrashRig::build_store() {
  cfg_ = DStoreConfig{};
  cfg_.max_objects = opt_.max_objects;
  cfg_.num_blocks = opt_.num_blocks;
  // Two-lane replay never triggers below 128 records anyway; single-lane
  // keeps fault-point hit ordering exactly reproducible.
  cfg_.parallel_replay = false;
  cfg_.engine.log_slots = opt_.log_slots;
  cfg_.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(opt_.max_objects);
  // The rig is single-threaded by design: checkpoints run inline via
  // checkpoint_now(), so every fault-point hit has one deterministic order.
  cfg_.engine.background_checkpointing = false;
  cfg_.engine.fault = &injector_;
  if (opt_.repair_logging) {
    cfg_.repair_logging = true;
    // Workload values reach (5003 + 1) * value_scale bytes; the payload
    // region slot must hold the largest whole-object put.
    cfg_.engine.physical_payload_bytes = 8192ull * opt_.value_scale;
  }

  size_t pool_bytes = DStoreConfig::required_pool_bytes(cfg_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<pmem::Pool>(pool_bytes, pmem::Pool::Mode::kCrashSim);
    ssd::DeviceConfig dc;
    dc.num_blocks = opt_.num_blocks;
    dc.power_loss_protection = opt_.plp;
    device_ = std::make_unique<ssd::RamBlockDevice>(dc);
    pool_->set_fault_injector(&injector_);
    device_->set_fault_injector(&injector_);
  }
  auto s = DStore::create(pool_.get(), device_.get(), cfg_);
  if (!s.is_ok()) return s.status();
  store_ = std::move(s).value();
  return Status::ok();
}

std::string CrashRig::value_for(uint32_t i) const {
  // 5003 is prime and 131 < 5003, so the length is unique per op for any
  // workload shorter than 5003 ops: values from different ops never collide
  // (value_scale preserves uniqueness — it multiplies distinct lengths).
  size_t len = (1 + (131ull * i + 17) % 5003) * opt_.value_scale;
  std::string v(len, '\0');
  for (size_t j = 0; j < len; j++) v[j] = char('a' + (i + j) % 26);
  return v;
}

bool CrashRig::run(const FaultPlan& plan) {
  injector_.set_plan(plan);
  injector_.disarm();
  oracle_.clear();
  pending_ = {};
  store_.reset();
  Status s = build_store();
  if (!s.is_ok()) return false;  // surfaced by the first verify()
  injector_.arm();
  run_workload();
  injector_.disarm();
  return injector_.crashed();
}

void CrashRig::run_workload() {
  Rng rng(opt_.workload_seed);
  ds_ctx_t* ctx = store_->ds_init();
  for (uint32_t i = 0; i < opt_.ops; i++) {
    if (injector_.crashed()) break;
    if (i == opt_.ops / 2) {
      // One full inline checkpoint cycle mid-workload: swap, drain, clone,
      // replay, bulk flush, install, recycle — all on this thread.
      // lint: allow-discard a checkpoint interrupted by the planned crash is the point
      (void)store_->checkpoint_now();
      if (injector_.crashed()) break;
    }
    std::string key = "k" + std::to_string(rng.next_below(opt_.keys));
    bool del = rng.next_below(4) == 0;
    std::string val = del ? std::string() : value_for(i);
    Status s = del ? store_->odelete(ctx, key)
                   : store_->oput(ctx, key, val.data(), val.size());
    if (injector_.crashed()) {
      // The op was in flight when the power failed: it may or may not have
      // reached its commit point. verify() accepts either state.
      pending_.active = true;
      pending_.is_delete = del;
      pending_.key = key;
      pending_.value = val;
      break;
    }
    if (s.is_ok()) {
      if (del) {
        oracle_.erase(key);
      } else {
        oracle_[key] = val;
      }
    }
    // A non-ok status without a crash (e.g. delete of an absent key, or an
    // aborted op after an injected transient error) must act as a no-op;
    // the oracle stays put and verify() will hold the store to that.
  }
  store_->ds_finalize(ctx);
}

void CrashRig::apply_crash() {
  injector_.disarm();
  // The store object is "dead hardware state" now; its destructor's writes
  // land on the frozen pool/device images and change nothing durable.
  store_.reset();
  pool_->crash();
  device_->crash();
}

Status CrashRig::recover(const FaultPlan* recovery_plan, bool* crashed_again) {
  if (recovery_plan != nullptr) {
    injector_.set_plan(*recovery_plan);  // counters reset: recovery-relative hits
    injector_.arm();
  }
  auto r = DStore::recover(pool_.get(), device_.get(), cfg_);
  if (recovery_plan != nullptr) {
    if (crashed_again != nullptr) *crashed_again = injector_.crashed();
    injector_.disarm();
  }
  if (!r.is_ok()) return r.status();
  store_ = std::move(r).value();
  return Status::ok();
}

Status CrashRig::verify() {
  if (store_ == nullptr) return Status::internal("rig has no live store");
  DSTORE_RETURN_IF_ERROR(store_->validate());
  ds_ctx_t* ctx = store_->ds_init();
  std::vector<char> buf((1 + 5003) * (size_t)opt_.value_scale + 128);
  Status problem;
  uint64_t found = 0;
  for (uint32_t k = 0; k < opt_.keys && problem.is_ok(); k++) {
    std::string key = "k" + std::to_string(k);
    auto r = store_->oget(ctx, key, buf.data(), buf.size());
    if (!r.is_ok() && r.status().code() != Code::kNotFound) {
      problem = r.status();
      break;
    }
    bool present = r.is_ok();
    if (present) found++;
    std::string got =
        present ? std::string(buf.data(), std::min(r.value(), buf.size())) : std::string();
    auto it = oracle_.find(key);
    bool old_ok = it != oracle_.end() ? (present && got == it->second) : !present;
    if (pending_.active && key == pending_.key) {
      bool new_ok = pending_.is_delete ? !present : (present && got == pending_.value);
      if (!old_ok && !new_ok) {
        problem = Status::corruption("key " + key +
                                     " matches neither its pre- nor post-crash value");
      }
    } else if (!old_ok) {
      problem = it != oracle_.end()
                    ? Status::corruption("committed value lost or changed for key " + key)
                    : Status::corruption("deleted/absent key " + key + " reappeared");
    }
  }
  if (problem.is_ok() && store_->object_count() != found) {
    problem = Status::corruption("object_count disagrees with per-key probes");
  }
  store_->ds_finalize(ctx);
  return problem;
}

Status CrashRig::verify_integrity(uint64_t* detected) {
  if (store_ == nullptr) return Status::internal("rig has no live store");
  ds_ctx_t* ctx = store_->ds_init();
  std::vector<char> buf((1 + 5003) * (size_t)opt_.value_scale + 128);
  Status problem;
  for (uint32_t k = 0; k < opt_.keys && problem.is_ok(); k++) {
    std::string key = "k" + std::to_string(k);
    uint64_t failures_before = store_->counters().checksum_failures;
    auto r = store_->oget(ctx, key, buf.data(), buf.size());
    if (!r.is_ok()) {
      if (r.status().code() == Code::kCorruption) {
        if (detected != nullptr) (*detected)++;
        continue;  // detected and contained: exactly what the sweep wants
      }
      if (r.status().code() != Code::kNotFound) {
        problem = r.status();
        break;
      }
    }
    if (r.is_ok() &&
        store_->counters().checksum_failures > failures_before &&
        detected != nullptr) {
      (*detected)++;  // read-repair healed the pages under this read
    }
    bool present = r.is_ok();
    std::string got =
        present ? std::string(buf.data(), std::min(r.value(), buf.size())) : std::string();
    auto it = oracle_.find(key);
    bool old_ok = it != oracle_.end() ? (present && got == it->second) : !present;
    if (!old_ok) {
      problem = Status::corruption("silent corruption: key " + key +
                                   " read OK but does not match the oracle");
    }
  }
  store_->ds_finalize(ctx);
  return problem;
}

uint64_t CrashRig::pmem_fingerprint() const {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(pool_->base());
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < pool_->size(); i++) {
    h = (h ^ p[i]) * 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::pair<std::string, uint64_t>> CrashRig::enumerate_schedule(RigOptions opt) {
  CrashRig rig(opt);
  rig.run(FaultPlan());  // armed, fault-free: pure counting pass
  return rig.injector().hit_counts();
}

std::vector<FaultPlan> all_crash_plans(
    const std::vector<std::pair<std::string, uint64_t>>& space) {
  std::vector<FaultPlan> plans;
  for (const auto& [point, count] : space) {
    for (uint64_t hit = 1; hit <= count; hit++) {
      plans.push_back(FaultPlan::crash_at(point, hit));
    }
  }
  return plans;
}

std::vector<FaultPlan> all_corruption_plans(
    const std::vector<std::pair<std::string, uint64_t>>& space, uint64_t seed) {
  Rng rng(seed);
  std::vector<FaultPlan> plans;
  auto add = [&](const std::string& point, uint64_t hit, FaultType type, uint64_t arg) {
    FaultPlan p(seed);
    p.add({point, hit, type, arg, 1});
    plans.push_back(std::move(p));
  };
  for (const auto& [point, count] : space) {
    for (uint64_t hit = 1; hit <= count; hit++) {
      if (point == "ssd.write") {
        // arg is the bit to flip (mod page bits); drawn seeded so sweeps
        // with different seeds cover different bit positions.
        add(point, hit, FaultType::kBitFlipSsdPage, rng.next_below(4096 * 8));
        add(point, hit, FaultType::kMisdirectedWrite, 1 + rng.next_below(7));
      } else if (point == "ssd.read") {
        add(point, hit, FaultType::kBitFlipSsdPage, rng.next_below(4096 * 8));
      }
    }
  }
  return plans;
}

}  // namespace dstore::fault
