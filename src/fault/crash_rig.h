// CrashRig — the deterministic crash-schedule harness behind
// tests/crash_schedule_test.cc and tools/crashplan.
//
// A rig owns one emulated system (kCrashSim pmem pool + RAM block device +
// DStore) wired to a single FaultInjector, plus a shadow oracle
// (std::map<name, value>) tracking what the deterministic workload has
// durably committed. The lifecycle mirrors a real power-failure test:
//
//   rig.run(plan)            — fresh store, seeded single-thread workload
//                              (puts/deletes + one mid-run checkpoint)
//                              until the plan's power failure fires;
//   rig.apply_crash()        — revert pool + device to their durable images;
//   rig.recover(...)         — DStore::recover, optionally under a second
//                              plan (the double-crash tests);
//   rig.verify()             — every key must match the oracle exactly,
//                              except the single op in flight at the crash,
//                              which may be in either its pre- or post-
//                              crash state (atomicity, not loss).
//
// The workload is a pure function of RigOptions::workload_seed: op i writes
// a value whose length (1 + (131*i + 17) mod 5003) is unique per op, so no
// two ops ever produce equal values and "which write survived" is always
// decidable. Determinism of the whole rig (same plan => byte-identical
// crash images) is what the seed-determinism test asserts via the
// fingerprint accessors.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dstore/dstore.h"
#include "fault/fault.h"
#include "pmem/pool.h"
#include "ssd/block_device.h"

namespace dstore::fault {

struct RigOptions {
  uint32_t log_slots = 48;      // half-log (24) never fills: no backpressure
  uint64_t max_objects = 64;
  uint64_t num_blocks = 768;
  uint32_t ops = 56;            // workload length; checkpoint after ops/2
  uint32_t keys = 16;           // key space "k0".."k15"
  uint64_t workload_seed = 0x5eed5ULL;
  bool plp = true;              // device capacitors (power-loss protection)
  // Value-length multiplier: scale > 1 makes most values span several SSD
  // blocks, so each op's data lands as a queue-pair batch with IOs in
  // flight at the crash point (the async data-plane sweeps).
  uint32_t value_scale = 1;
  // Corruption sweeps: keep whole-object payloads in the DIPPER physical
  // log so read-repair has a source copy, and give the payload region the
  // headroom those values need.
  bool repair_logging = false;
};

class CrashRig {
 public:
  explicit CrashRig(RigOptions opt = {});

  // Build a fresh store and drive the workload under `plan`. The injector
  // arms only after store creation, so hit numbers are workload-relative.
  // Returns true if an injected power failure fired.
  bool run(const FaultPlan& plan);

  // Power-failure aftermath: tear down the (dead) store and revert the pool
  // and device to their durable images. Must precede recover().
  void apply_crash();

  // Recover the store from the durable images. With `recovery_plan` the
  // injector re-arms for the duration (counters reset, so recovery hit
  // numbers are recovery-relative); `crashed_again` reports whether the
  // recovery itself suffered an injected power failure.
  Status recover(const FaultPlan* recovery_plan = nullptr, bool* crashed_again = nullptr);

  Status crash_and_recover() {
    apply_crash();
    return recover();
  }

  // Oracle check: validate() + every key in either its oracle state or (for
  // the single in-flight op only) its post-op state.
  Status verify();

  // Oracle check for silent-corruption sweeps. The store is allowed — and
  // expected — to *detect* injected corruption, so Status::corruption on a
  // read counts as success (`detected` tallies them, along with repairs
  // that the read healed transparently). What fails the check is the one
  // thing the integrity layer exists to rule out: a read that returns OK
  // with bytes different from the oracle's, i.e. silent corruption.
  Status verify_integrity(uint64_t* detected = nullptr);

  FaultInjector& injector() { return injector_; }
  DStore* store() { return store_.get(); }
  pmem::Pool* pool() { return pool_.get(); }
  ssd::RamBlockDevice* device() { return device_.get(); }

  // FNV-1a over the durable images; call after apply_crash().
  uint64_t pmem_fingerprint() const;
  uint64_t ssd_fingerprint() const { return device_->media_fingerprint(); }

  // Counting pass: run the full workload fault-free with an armed injector
  // and return every (point, hit count) — the crash-schedule space.
  static std::vector<std::pair<std::string, uint64_t>> enumerate_schedule(RigOptions opt = {});

 private:
  Status build_store();
  void run_workload();
  std::string value_for(uint32_t i) const;

  RigOptions opt_;
  FaultInjector injector_;  // declared before the layers that point at it
  DStoreConfig cfg_;
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<ssd::RamBlockDevice> device_;
  std::unique_ptr<DStore> store_;

  std::map<std::string, std::string> oracle_;  // durably-acked state
  struct Pending {  // the op in flight when the power failed, if any
    bool active = false;
    bool is_delete = false;
    std::string key;
    std::string value;
  };
  Pending pending_;
};

// Every single-crash plan over an enumerated schedule space: one
// crash_at(point, hit) plan per (point, hit<=count) pair.
std::vector<FaultPlan> all_crash_plans(
    const std::vector<std::pair<std::string, uint64_t>>& space);

// Every single-fault silent-corruption plan over an enumerated schedule
// space: for each ssd.write hit, a page bit-flip after the write lands and
// a misdirected write; for each ssd.read hit, a media bit-flip before the
// copy. The flipped bit index is drawn from `seed` per plan, so different
// sweeps cover different bit positions while any one sweep stays exactly
// reproducible from its plan strings.
std::vector<FaultPlan> all_corruption_plans(
    const std::vector<std::pair<std::string, uint64_t>>& space, uint64_t seed = 1);

}  // namespace dstore::fault
