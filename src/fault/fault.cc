#include "fault/fault.h"

#include <algorithm>
#include <charconv>

#include "common/clock.h"

namespace dstore::fault {

const char* fault_type_name(FaultType t) {
  switch (t) {
    case FaultType::kNone:
      return "none";
    case FaultType::kCrash:
      return "crash";
    case FaultType::kError:
      return "error";
    case FaultType::kTorn:
      return "torn";
    case FaultType::kDelay:
      return "delay";
    case FaultType::kEvict:
      return "evict";
    case FaultType::kBitFlipPmemLine:
      return "pmemflip";
    case FaultType::kBitFlipSsdPage:
      return "ssdflip";
    case FaultType::kMisdirectedWrite:
      return "misdirect";
  }
  return "?";
}

namespace {

bool parse_type(std::string_view name, FaultType* out) {
  for (FaultType t : {FaultType::kNone, FaultType::kCrash, FaultType::kError,
                      FaultType::kTorn, FaultType::kDelay, FaultType::kEvict,
                      FaultType::kBitFlipPmemLine, FaultType::kBitFlipSsdPage,
                      FaultType::kMisdirectedWrite}) {
    if (name == fault_type_name(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

template <typename T>
bool parse_int(std::string_view s, T* out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::string FaultSpec::to_string() const {
  std::string s = point + "@" + std::to_string(hit);
  bool need_repeat = repeat != 1;
  bool need_arg = arg != 0 || need_repeat;
  bool need_type = type != FaultType::kCrash || need_arg;
  if (need_type) s += std::string(":") + fault_type_name(type);
  if (need_arg) s += ":" + std::to_string(arg);
  if (need_repeat) s += ":" + std::to_string(repeat);
  return s;
}

std::string FaultPlan::to_string() const {
  std::string s;
  if (seed_ != 0) s = "seed=" + std::to_string(seed_);
  for (const FaultSpec& spec : specs_) {
    if (!s.empty()) s += ";";
    s += spec.to_string();
  }
  if (s.empty()) s = "(empty)";
  return s;
}

Result<FaultPlan> FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  if (text == "(empty)" || text.empty()) return plan;
  for (std::string_view part : split(text, ';')) {
    if (part.empty()) continue;
    if (part.substr(0, 5) == "seed=") {
      uint64_t seed = 0;
      if (!parse_int(part.substr(5), &seed)) {
        return Status::invalid_argument("FaultPlan: bad seed in '" +
                                        std::string(part) + "'");
      }
      plan.seed_ = seed;
      continue;
    }
    std::vector<std::string_view> fields = split(part, ':');
    size_t at = fields[0].rfind('@');
    if (at == std::string_view::npos || at == 0) {
      return Status::invalid_argument("FaultPlan: expected point@hit in '" +
                                      std::string(part) + "'");
    }
    FaultSpec spec;
    spec.point = std::string(fields[0].substr(0, at));
    if (!parse_int(fields[0].substr(at + 1), &spec.hit) || spec.hit == 0) {
      return Status::invalid_argument("FaultPlan: bad hit number in '" +
                                      std::string(part) + "'");
    }
    if (fields.size() > 1 && !parse_type(fields[1], &spec.type)) {
      return Status::invalid_argument("FaultPlan: unknown fault type in '" +
                                      std::string(part) + "'");
    }
    if (fields.size() > 2 && !parse_int(fields[2], &spec.arg)) {
      return Status::invalid_argument("FaultPlan: bad arg in '" +
                                      std::string(part) + "'");
    }
    if (fields.size() > 3 && !parse_int(fields[3], &spec.repeat)) {
      return Status::invalid_argument("FaultPlan: bad repeat in '" +
                                      std::string(part) + "'");
    }
    if (fields.size() > 4) {
      return Status::invalid_argument("FaultPlan: trailing fields in '" +
                                      std::string(part) + "'");
    }
    plan.specs_.push_back(std::move(spec));
  }
  return plan;
}

FaultPlan FaultPlan::random(
    uint64_t seed, const std::vector<std::pair<std::string, uint64_t>>& space) {
  FaultPlan plan(seed);
  Rng rng(seed ^ 0xfa0175eedULL);
  uint64_t total = 0;
  for (const auto& [point, count] : space) total += count;
  if (total == 0) return plan;
  // Optionally harass the run with a spurious eviction before the crash.
  if (rng.next_bool(0.5)) {
    uint64_t pick = rng.next_below(total);
    for (const auto& [point, count] : space) {
      if (pick < count) {
        if (point.rfind("pmem.", 0) == 0) {
          plan.add({point, pick + 1, FaultType::kEvict, 1 + rng.next_below(8), 1});
        }
        break;
      }
      pick -= count;
    }
  }
  // The crash itself: uniform over the whole (point, hit) space.
  uint64_t pick = rng.next_below(total);
  for (const auto& [point, count] : space) {
    if (pick < count) {
      plan.add({point, pick + 1, FaultType::kCrash, 0, 1});
      break;
    }
    pick -= count;
  }
  return plan;
}

void FaultInjector::set_plan(FaultPlan plan) {
  MutexGuard g(mu_);
  plan_ = std::move(plan);
  counts_.clear();
  total_ = 0;
  rng_ = Rng(plan_.seed() != 0 ? plan_.seed() : 0x0defa017ULL);
  crashed_.store(false, std::memory_order_release);
}

void FaultInjector::reset() {
  MutexGuard g(mu_);
  counts_.clear();
  total_ = 0;
  rng_ = Rng(plan_.seed() != 0 ? plan_.seed() : 0x0defa017ULL);
  crashed_.store(false, std::memory_order_release);
}

void FaultInjector::add_crash_sink(std::function<void()> sink) {
  MutexGuard g(mu_);
  sinks_.push_back(std::move(sink));
}

void FaultInjector::trigger_crash() {
  std::vector<std::function<void()>> to_run;
  {
    MutexGuard g(mu_);
    if (crashed_.exchange(true, std::memory_order_acq_rel)) return;
    to_run = sinks_;
  }
  // Sinks freeze their layer's persistence; run outside mu_ so a sink may
  // take its own locks without ordering against the injector.
  for (auto& sink : to_run) sink();
}

Outcome FaultInjector::on_hit(std::string_view point) {
  if (!armed()) return {};
  // After the (simulated) power failure nothing else can fault; the workload
  // is running on borrowed time until the harness notices crashed().
  if (crashed()) return {};
  FaultType type = FaultType::kNone;
  uint64_t arg = 0;
  uint64_t n = 0;
  {
    MutexGuard g(mu_);
    auto [it, inserted] = counts_.emplace(std::string(point), 0);
    n = ++it->second;
    total_++;
    for (const FaultSpec& spec : plan_.specs()) {
      if (spec.point != point) continue;
      if (n < spec.hit) continue;
      if (spec.repeat >= 0 &&
          n >= spec.hit + static_cast<uint64_t>(spec.repeat)) {
        continue;
      }
      type = spec.type;
      arg = spec.arg;
      break;
    }
  }
  if (type == FaultType::kNone) return {};
  Outcome o;
  o.type = type;
  o.arg = arg;
  switch (type) {
    case FaultType::kCrash:
      trigger_crash();
      break;
    case FaultType::kTorn:
      // The layer persists the prefix first, then calls trigger_crash().
      break;
    case FaultType::kError:
      o.status = Status::io_error("injected transient fault at " +
                                  std::string(point) + "#" + std::to_string(n));
      break;
    case FaultType::kDelay:
      spin_for_ns(arg);
      break;
    case FaultType::kEvict:
    case FaultType::kBitFlipPmemLine:
    case FaultType::kBitFlipSsdPage:
    case FaultType::kMisdirectedWrite:
      // Silent corruption (and eviction) is applied by the faulting layer:
      // the op must complete "successfully" with wrong bytes, which only
      // the layer holding the buffers can arrange.
    case FaultType::kNone:
      break;
  }
  return o;
}

uint64_t FaultInjector::hit_count(std::string_view point) const {
  MutexGuard g(mu_);
  auto it = counts_.find(std::string(point));
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::hit_counts() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  {
    MutexGuard g(mu_);
    out.assign(counts_.begin(), counts_.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t FaultInjector::total_hits() const {
  MutexGuard g(mu_);
  return total_;
}

}  // namespace dstore::fault
