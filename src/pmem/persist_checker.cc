#include "pmem/persist_checker.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace dstore::pmem {

namespace {
// Process-wide count of attached checkers; gates the annotation fast path.
std::atomic<int> g_active_checkers{0};
thread_local std::vector<const char*> t_site_stack;

// Stable small ids for threads, for staged-line ownership.
uint64_t line_count(uint64_t off, uint64_t len) {
  return (line_up(off + len) - line_down(off)) / kCacheLineSize;
}
}  // namespace

void PersistChecker::push_site(const char* site) { t_site_stack.push_back(site); }
void PersistChecker::pop_site() { t_site_stack.pop_back(); }
const char* PersistChecker::current_site() {
  return t_site_stack.empty() ? "<unscoped>" : t_site_stack.back();
}
bool PersistChecker::any_active() {
  return g_active_checkers.load(std::memory_order_relaxed) > 0;
}

// Pool calls these (as a friend) on attach/detach.
namespace detail {
void checker_global_activate() { g_active_checkers.fetch_add(1, std::memory_order_relaxed); }
void checker_global_deactivate() { g_active_checkers.fetch_sub(1, std::memory_order_relaxed); }
}  // namespace detail

void PersistChecker::on_flush(uint64_t line_off, const char* line, const char* image_line,
                              uint64_t tid) {
  auto it = staged_.find(line_off);
  if (it != staged_.end()) {
    if (std::memcmp(line, it->second.snapshot.data(), kCacheLineSize) == 0) {
      report_.add({CheckKind::kRedundantFlush, line_off, 1, current_site(),
                   "line already staged with identical contents"});
    }
    // A re-flush after a store is the legitimate fix for a store into the
    // staged window: re-stage with the new contents (and new owner).
    std::memcpy(it->second.snapshot.data(), line, kCacheLineSize);
    it->second.tid = tid;
    it->second.site = current_site();
    return;
  }
  if (std::memcmp(line, image_line, kCacheLineSize) == 0) {
    report_.add({CheckKind::kRedundantFlush, line_off, 1, current_site(),
                 "line is clean (already matches the persistent image)"});
  }
  StagedLine st;
  std::memcpy(st.snapshot.data(), line, kCacheLineSize);
  st.tid = tid;
  st.site = current_site();
  staged_.emplace(line_off, st);
}

void PersistChecker::on_nt_store(uint64_t line_off, const char* line, const char* image_line,
                                 uint64_t tid) {
  (void)image_line;
  // Stage (or re-stage) the line for the next fence. No redundant-flush
  // report in either direction: nt stores bypass the cache, so "the line
  // already matches the image" or "the line is already staged" is not a
  // wasted write-back the way a redundant clwb is.
  auto it = staged_.find(line_off);
  if (it != staged_.end()) {
    std::memcpy(it->second.snapshot.data(), line, kCacheLineSize);
    it->second.tid = tid;
    it->second.site = current_site();
    return;
  }
  StagedLine st;
  std::memcpy(st.snapshot.data(), line, kCacheLineSize);
  st.tid = tid;
  st.site = current_site();
  staged_.emplace(line_off, st);
}

void PersistChecker::on_fence_line(uint64_t line_off, const char* line, uint64_t tid) {
  auto it = staged_.find(line_off);
  // Absent: a duplicate range in the same fence already retired it. Foreign
  // owner: another thread re-staged the line; its own fence retires it.
  if (it == staged_.end() || it->second.tid != tid) return;
  if (std::memcmp(line, it->second.snapshot.data(), kCacheLineSize) != 0) {
    report_.add({CheckKind::kStoreAfterFlush, line_off, 1, it->second.site,
                 "line contents changed between flush and fence without a re-flush"});
  }
  staged_.erase(it);
}

void PersistChecker::on_crash() {
  // Power failure: staged write-backs and pending obligations die with the
  // caches/DRAM; recovery starts from the image alone.
  staged_.clear();
  obligations_.clear();
}

void PersistChecker::on_teardown() {
  if (staged_.empty()) return;
  std::vector<std::pair<uint64_t, const char*>> lines;
  lines.reserve(staged_.size());
  for (const auto& [off, st] : staged_) lines.push_back({off, st.site});
  std::sort(lines.begin(), lines.end());
  // Coalesce contiguous lines with the same flushing site into one entry.
  for (size_t i = 0; i < lines.size();) {
    size_t j = i + 1;
    while (j < lines.size() && lines[j].first == lines[j - 1].first + kCacheLineSize &&
           lines[j].second == lines[i].second) {
      j++;
    }
    report_.add({CheckKind::kMissingFlush, lines[i].first, j - i, lines[i].second,
                 "line flushed but never fenced before pool teardown"});
    i = j;
  }
  staged_.clear();
}

void PersistChecker::check_durable(uint64_t off, uint64_t len, const char* region,
                                   const char* image, const char* site) {
  if (len == 0) return;
  uint64_t lo = line_down(off);
  uint64_t n = line_count(off, len);
  // Classify each non-persistent line, then coalesce runs of equal class.
  enum Class : uint8_t { kOk = 0, kDirty, kStaged };
  uint64_t run_start = 0, run_len = 0;
  Class run_class = kOk;
  const char* run_site = site;
  auto emit = [&] {
    if (run_len == 0 || run_class == kOk) return;
    if (run_class == kStaged) {
      std::string d = "line staged by flush but not yet fenced at durability point";
      report_.add({CheckKind::kMissingFlush, run_start, run_len, run_site, d});
    } else {
      report_.add({CheckKind::kMissingFlush, run_start, run_len, site,
                   "dirty line reachable from durability point was never flushed"});
    }
  };
  for (uint64_t i = 0; i < n; i++) {
    uint64_t l = lo + i * kCacheLineSize;
    Class c = kOk;
    const char* csite = site;
    if (std::memcmp(region + l, image + l, kCacheLineSize) != 0) {
      auto it = staged_.find(l);
      c = it != staged_.end() ? kStaged : kDirty;
      if (it != staged_.end()) csite = it->second.site;
    }
    if (c == run_class && (c != kStaged || csite == run_site) && run_len > 0 &&
        l == run_start + run_len * kCacheLineSize) {
      run_len++;
    } else {
      emit();
      run_start = l;
      run_len = 1;
      run_class = c;
      run_site = csite;
    }
  }
  emit();
}

void PersistChecker::check_recovery_read(uint64_t off, uint64_t len, const char* region,
                                         const char* image, const char* site) {
  if (len == 0 || std::memcmp(region + off, image + off, len) == 0) return;
  // Report the differing extent line-coalesced for readability.
  uint64_t first = 0, nbad = 0;
  uint64_t lo = line_down(off);
  uint64_t n = line_count(off, len);
  for (uint64_t i = 0; i < n; i++) {
    uint64_t l = lo + i * kCacheLineSize;
    uint64_t a = std::max(l, off);
    uint64_t b = std::min(l + kCacheLineSize, off + len);
    if (std::memcmp(region + a, image + a, b - a) != 0) {
      if (nbad == 0) first = l;
      nbad++;
    }
  }
  report_.add({CheckKind::kUnpersistedRead, first, nbad, site,
               "recovery/replay consumed bytes that differ from the persistent image"});
}

void PersistChecker::note_obligation(uint64_t off, uint64_t len, const char* site) {
  if (len == 0) return;
  // Merge with the previous note when contiguous from the same site (the
  // common pattern: a writer annotating field after field of one object).
  if (!obligations_.empty()) {
    Obligation& b = obligations_.back();
    if (b.site == site && off >= b.off && off <= b.off + b.len) {
      b.len = std::max(b.len, off + len - b.off);
      return;
    }
  }
  obligations_.push_back({off, len, site});
}

void PersistChecker::check_obligations(const char* region, const char* image, const char* site) {
  for (const Obligation& o : obligations_) {
    uint64_t lo = line_down(o.off);
    uint64_t n = line_count(o.off, o.len);
    uint64_t first = 0, nbad = 0;
    for (uint64_t i = 0; i < n; i++) {
      uint64_t l = lo + i * kCacheLineSize;
      if (std::memcmp(region + l, image + l, kCacheLineSize) != 0) {
        if (nbad == 0) first = l;
        nbad++;
      }
    }
    if (nbad != 0) {
      std::string d = "write was never covered by a flush or bulk persist (checked at ";
      d += site;
      d += ")";
      report_.add({CheckKind::kMissingFlush, first, nbad, o.site, d});
    }
  }
  obligations_.clear();
}

}  // namespace dstore::pmem
