// Emulated byte-addressable persistent memory pool.
//
// The paper's testbed used Intel Optane DCPMM mapped with a DAX filesystem.
// This pool reproduces the *semantics* that DIPPER's correctness depends on:
//
//   * byte addressability — the region is ordinary mapped memory;
//   * persistence at cache-line flush granularity — stores are volatile
//     until the line is flushed (`clwb`/`clflushopt` emulation) and a store
//     fence retires the flushes;
//   * 8-byte atomicity — recovery code may rely on an aligned 8B store
//     being all-or-nothing, and nothing wider;
//   * spurious evictions — a written-but-unflushed line may become
//     persistent at any time (the hardware may write back cache lines on
//     its own), so flush *ordering* must never be inferred from store order.
//
// In `Mode::kCrashSim` the pool keeps a second buffer, the *persistent
// image*: `flush()` stages lines, `fence()` copies staged lines into the
// image, `evict_random_lines()` is the adversary that persists arbitrary
// lines early, and `crash()` throws away everything that is not in the
// image (power failure). Crash-consistency tests drive real workloads and
// then crash at arbitrary points.
//
// In `Mode::kDirect` there is no image; flush/fence only inject latency and
// account bandwidth, which is what the benchmarks use.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bandwidth.h"
#include "common/status.h"
#include "common/cacheline.h"
#include "common/latency_model.h"
#include "common/rng.h"
#include "common/timeseries.h"

namespace dstore::pmem {

struct IoStats {
  std::atomic<uint64_t> bytes_flushed{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> fences{0};
};

class Pool {
 public:
  enum class Mode {
    kDirect,    // no crash simulation; latency/stat injection only
    kCrashSim,  // full persistent-image tracking for crash tests
  };

  Pool(size_t size, Mode mode, LatencyModel lat = LatencyModel::none());
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // File-backed pool (the emulation analogue of a DAX-mapped PMEM file,
  // §4.2): contents persist across process restarts. Always kDirect; crash
  // simulation needs the in-memory image and uses the anonymous ctor.
  static Result<std::unique_ptr<Pool>> open_file(const std::string& path, size_t size,
                                                 LatencyModel lat, bool create);

  char* base() { return region_; }
  const char* base() const { return region_; }
  size_t size() const { return size_; }
  Mode mode() const { return mode_; }

  // ---- persistence primitives -------------------------------------------
  // Stage write-back of the cache lines covering [addr, addr+len). The data
  // is NOT persistent until the next fence().
  void flush(const void* addr, size_t len);

  // Store fence: all lines staged by *this thread* become persistent.
  void fence();

  // flush + fence.
  void persist(const void* addr, size_t len) {
    flush(addr, len);
    fence();
  }

  // Bulk persistence for large ranges (checkpoint durability pass). Charged
  // with the bandwidth model rather than per-line flush cost, matching the
  // batched write-back a real checkpoint achieves.
  void persist_bulk(const void* addr, size_t len);

  // Account a large read from PMEM (recovery copying pages to DRAM).
  void charge_read(size_t len);

  // ---- crash simulation (kCrashSim only) --------------------------------
  // Adversary: persist up to `count` random lines that have been written
  // but not flushed (hardware may evict cache lines at any time).
  void evict_random_lines(Rng& rng, size_t count);

  // Simulate power failure + restart: the region's contents revert to the
  // persistent image. All staged flushes are discarded.
  void crash();

  // Test helper: true if [addr,addr+len) matches the persistent image.
  bool is_persisted(const void* addr, size_t len) const;

  // ---- instrumentation ---------------------------------------------------
  const IoStats& stats() const { return stats_; }
  // Optional bandwidth time-series (bytes flushed per bin) for Figure 7.
  void set_bandwidth_series(TimeSeries* ts) { bw_series_ = ts; }
  const LatencyModel& latency() const { return lat_; }

 private:
  struct Range {
    uint64_t off;
    uint64_t len;
  };
  // Per-thread staged flush state for one pool.
  struct ThreadState {
    std::vector<Range> ranges;
    size_t lines = 0;
  };
  ThreadState& tls();

  void apply_to_image(uint64_t off, uint64_t len);

  Pool() = default;  // for open_file

  char* region_ = nullptr;
  int fd_ = -1;  // >= 0 when file-backed
  std::unique_ptr<char[]> image_;  // kCrashSim only
  size_t size_;
  Mode mode_;
  LatencyModel lat_;
  IoStats stats_;
  TimeSeries* bw_series_ = nullptr;
  BandwidthChannel bw_channel_;  // serializes the bandwidth share of bulk ops
  mutable std::mutex image_mu_;  // guards image_ in kCrashSim
};

}  // namespace dstore::pmem
