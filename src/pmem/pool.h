// Emulated byte-addressable persistent memory pool.
//
// The paper's testbed used Intel Optane DCPMM mapped with a DAX filesystem.
// This pool reproduces the *semantics* that DIPPER's correctness depends on:
//
//   * byte addressability — the region is ordinary mapped memory;
//   * persistence at cache-line flush granularity — stores are volatile
//     until the line is flushed (`clwb`/`clflushopt` emulation) and a store
//     fence retires the flushes;
//   * 8-byte atomicity — recovery code may rely on an aligned 8B store
//     being all-or-nothing, and nothing wider;
//   * spurious evictions — a written-but-unflushed line may become
//     persistent at any time (the hardware may write back cache lines on
//     its own), so flush *ordering* must never be inferred from store order.
//
// In `Mode::kCrashSim` the pool keeps a second buffer, the *persistent
// image*: `flush()` stages lines, `fence()` copies staged lines into the
// image, `evict_random_lines()` is the adversary that persists arbitrary
// lines early, and `crash()` throws away everything that is not in the
// image (power failure). Crash-consistency tests drive real workloads and
// then crash at arbitrary points.
//
// In `Mode::kDirect` there is no image; flush/fence only inject latency and
// account bandwidth, which is what the benchmarks use.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bandwidth.h"
#include "common/lockdep.h"
#include "common/status.h"
#include "common/cacheline.h"
#include "common/latency_model.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "fault/fault.h"
#include "pmem/persist_checker.h"

namespace dstore::pmem {

struct IoStats {
  std::atomic<uint64_t> bytes_flushed{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> fences{0};
  std::atomic<uint64_t> lines_flushed{0};  // cache lines written back
  std::atomic<uint64_t> lines_nt{0};       // cache lines written non-temporally
};

class Pool {
 public:
  enum class Mode {
    kDirect,    // no crash simulation; latency/stat injection only
    kCrashSim,  // full persistent-image tracking for crash tests
  };

  Pool(size_t size, Mode mode, LatencyModel lat = LatencyModel::none());
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // File-backed pool (the emulation analogue of a DAX-mapped PMEM file,
  // §4.2): contents persist across process restarts. Always kDirect; crash
  // simulation needs the in-memory image and uses the anonymous ctor.
  static Result<std::unique_ptr<Pool>> open_file(const std::string& path, size_t size,
                                                 LatencyModel lat, bool create);

  char* base() { return region_; }
  const char* base() const { return region_; }
  size_t size() const { return size_; }
  Mode mode() const { return mode_; }

  // ---- persistence primitives -------------------------------------------
  // Stage write-back of the cache lines covering [addr, addr+len). The data
  // is NOT persistent until the next fence().
  void flush(const void* addr, size_t len);

  // Store fence: all lines staged by *this thread* become persistent.
  void fence();

  // flush + fence.
  void persist(const void* addr, size_t len) {
    flush(addr, len);
    fence();
  }

  // Non-temporal store emulation (movnti/movntdq write-combining path): the
  // caller has already performed the stores through the normal region
  // pointer; flush_nt() marks the covering lines as written *around* the
  // cache — they are in the WC buffer, not dirty in cache, and become
  // persistent at the next fence() exactly like clwb-staged lines, but at
  // the (cheaper) nt latency and with no dirty-cache-line residue for
  // PmemCheck to track. Line-granular: a torn-write fault persists a
  // line-snapped prefix of the range, never a partial line.
  void flush_nt(const void* addr, size_t len);

  // flush_nt + fence.
  void persist_nt(const void* addr, size_t len) {
    flush_nt(addr, len);
    fence();
  }

  // Bulk persistence for large ranges (checkpoint durability pass). Charged
  // with the bandwidth model rather than per-line flush cost, matching the
  // batched write-back a real checkpoint achieves.
  void persist_bulk(const void* addr, size_t len);

  // Account a large read from PMEM (recovery copying pages to DRAM).
  void charge_read(size_t len);

  // ---- crash simulation (kCrashSim only) --------------------------------
  // Adversary: persist up to `count` random lines that have been written
  // but not flushed (hardware may evict cache lines at any time).
  void evict_random_lines(Rng& rng, size_t count);

  // Simulate power failure + restart: the region's contents revert to the
  // persistent image. All staged flushes are discarded. Unfreezes a pool
  // frozen by a fault-injected power failure.
  void crash();

  // ---- fault injection (kCrashSim only) ---------------------------------
  // Attach a deterministic fault injector: flush/fence/flush_nt/persist_bulk
  // become the fault points "pmem.flush" / "pmem.fence" / "pmem.nt" /
  // "pmem.bulk" (crash, delay, spurious-eviction and — for nt and bulk —
  // torn-write faults; nt tears are line-snapped), and this
  // pool's freeze_image() is registered as a crash sink so an injected
  // power failure anywhere in the system stops persistence here too.
  void set_fault_injector(fault::FaultInjector* inj);
  fault::FaultInjector* fault_injector() const { return fault_; }

  // Power is gone as of now: stop applying flushes/fences/bulk writes to
  // the persistent image. The workload keeps running on the volatile region
  // (harmlessly — a real machine would simply be off) until the harness
  // calls crash(), which reverts to the frozen image and unfreezes.
  void freeze_image() { frozen_.store(true, std::memory_order_release); }
  bool image_frozen() const { return frozen_.load(std::memory_order_acquire); }

  // Adversary: spuriously persist the cache lines covering exactly
  // [addr, addr+len) — the chosen-line variant of evict_random_lines().
  void evict_lines(const void* addr, size_t len);

  // Torn-write primitive for fault tests: force the persistent image of
  // [addr, addr+len) into "only the first `keep` bytes of this range ever
  // persisted" — the prefix is copied from the region, the suffix zeroed.
  // Byte-granular on purpose: callers emulating aligned 8B stores (which
  // the hardware tears only as a whole) must snap `keep` themselves.
  void tear_image(const void* addr, size_t keep, size_t len);

  // Test helper: true if [addr,addr+len) matches the persistent image.
  bool is_persisted(const void* addr, size_t len) const;

  // ---- PmemCheck (kCrashSim only) ----------------------------------------
  // Attach a persistence-order checker: every flush/fence/crash is traced
  // through the clean → dirty → staged → persistent state machine and the
  // annotation calls below become live. The checker must outlive the
  // attachment; detach (or pool destruction) runs the teardown check for
  // staged-but-never-fenced lines.
  void attach_checker(PersistChecker* checker);
  void detach_checker();
  PersistChecker* checker() const { return checker_.load(std::memory_order_acquire); }

  // Durability point: every cache line of [addr, addr+len) must match the
  // persistent image (no-op without an attached checker).
  void check_durable(const void* addr, size_t len, const char* site);
  // Recovery/replay read: the bytes being consumed must match the image.
  void check_recovery_read(const void* addr, size_t len, const char* site);
  // Record that [addr, addr+len) must be persistent by the time
  // check_obligations() runs (writes whose durability a later bulk pass
  // provides, e.g. checkpoint replay into the spare arena).
  void note_obligation(const void* addr, size_t len, const char* site);
  void check_obligations(const char* site);

  // The registered checking pool whose region covers `p`, or nullptr. Lets
  // annotation sites that only hold a raw pointer (e.g. MetadataZone
  // writing into an arena) find their pool; only pools with an attached
  // checker are registered.
  static Pool* checked_pool_covering(const void* p);

  // ---- instrumentation ---------------------------------------------------
  const IoStats& stats() const { return stats_; }
  // Monotone per-thread flush/fence counts for the calling thread. An op
  // trace reads this at op start and end; the delta is that op's substrate
  // cost (valid because an op runs on one thread).
  struct ThreadIoCounts {
    uint64_t flushes = 0;   // cache lines staged by flush()
    uint64_t fences = 0;
    uint64_t nt_lines = 0;  // cache lines staged by flush_nt()
  };
  ThreadIoCounts thread_io_counts() {
    ThreadState& st = tls();
    return ThreadIoCounts{st.flushes_total, st.fences_total, st.nt_total};
  }
  // Optional bandwidth time-series (bytes flushed per bin) for Figure 7.
  void set_bandwidth_series(TimeSeries* ts) { bw_series_ = ts; }
  const LatencyModel& latency() const { return lat_; }

 private:
  struct Range {
    uint64_t off;
    uint64_t len;
  };
  // Per-thread staged flush state for one pool.
  struct ThreadState {
    std::vector<Range> ranges;
    size_t lines = 0;     // clwb-staged lines pending the next fence
    size_t nt_lines = 0;  // nt-staged lines pending the next fence
    uint64_t flushes_total = 0;  // monotone; see thread_io_counts()
    uint64_t fences_total = 0;
    uint64_t nt_total = 0;
  };
  ThreadState& tls();
  static uint64_t next_pool_gen();

  void apply_to_image(uint64_t off, uint64_t len);
  void apply_fault_outcome(const fault::Outcome& o);
  // Silent-corruption injection (kBitFlipPmemLine): flip bit `bit` (mod the
  // range's bit count) of region_[off, off+len) in place, so the caller's
  // own staging/apply propagates the flipped byte into the image.
  void corrupt_bit(uint64_t off, uint64_t len, uint64_t bit);

  Pool() = default;  // for open_file

  char* region_ = nullptr;
  int fd_ = -1;  // >= 0 when file-backed
  // Unique per-pool key for the thread-local staging map. Keying by `this`
  // would alias a new pool to a destroyed one at a recycled address and
  // leak its staged lines and monotone counters into the newcomer.
  uint64_t pool_gen_ = next_pool_gen();
  std::unique_ptr<char[]> image_;  // kCrashSim only
  size_t size_;
  Mode mode_;
  LatencyModel lat_;
  IoStats stats_;
  TimeSeries* bw_series_ = nullptr;
  BandwidthChannel bw_channel_;  // serializes the bandwidth share of bulk ops
  std::atomic<PersistChecker*> checker_{nullptr};  // PmemCheck hook (kCrashSim)
  fault::FaultInjector* fault_ = nullptr;          // fault hook (kCrashSim)
  std::atomic<bool> frozen_{false};  // power failed; image no longer updates
  // Quiescence-exempt: kCrashSim bookkeeping only — real PMEM flushes are
  // lock-free; the simulated shadow image is what needs the serialization.
  mutable Mutex image_mu_{"pmem.image", lockdep::kQuiesceExempt};  // guards image_ (and checker state) in kCrashSim
};

// Minimal-ordering persistence batch (DESIGN.md §13): accumulate every line
// an operation must persist with add(), then retire the whole train with ONE
// fence via commit(). This is the only way hot-path code (log.cc, engine.cc,
// metadata_zone.cc, dstore.cc — enforced by dstore_lint's raw-persist rule)
// is allowed to reach the pool's flush/fence primitives; it makes the
// ordering points of an op explicit and countable.
//
//   PersistBatch b(pool);            // or PersistBatch b(pool, /*nt=*/true)
//   b.add(&slot->body, body_len);    // flush train: no fences yet
//   b.add(&slot->crc, crc_len);
//   b.commit();                      // exactly one fence
//
// With `nt` set the adds go through flush_nt() — correct only when the
// caller rewrites the full covered lines (nt stores bypass the cache, so a
// partial-line nt "flush" of a read-modify-write is a bug; use the default
// clwb path for those). The destructor commits a non-committed batch so an
// early return can never lose the fence, but hot paths should commit
// explicitly at the op's durability point.
class PersistBatch {
 public:
  explicit PersistBatch(Pool* pool, bool nt = false) : pool_(pool), nt_(nt) {}
  ~PersistBatch() {
    if (!committed_) commit();
  }
  PersistBatch(const PersistBatch&) = delete;
  PersistBatch& operator=(const PersistBatch&) = delete;

  void add(const void* addr, size_t len) {
    if (nt_) {
      pool_->flush_nt(addr, len);
    } else {
      pool_->flush(addr, len);
    }
    added_ = true;
  }

  // One fence retiring every added range. Idempotent; a batch with no adds
  // commits without fencing (no ordering point was needed).
  void commit() {
    if (committed_) return;
    committed_ = true;
    if (added_) pool_->fence();
  }

 private:
  Pool* pool_;
  bool nt_;
  bool added_ = false;
  bool committed_ = false;
};

// Annotation helper for code that writes into an arena without knowing
// whether the arena lives in DRAM or inside a checked PMEM pool: records a
// durability obligation iff some checked pool covers `p`. One relaxed
// atomic load when no checker is attached anywhere.
inline void annotate_must_persist(const void* p, size_t len, const char* site) {
  if (!PersistChecker::any_active()) return;
  if (Pool* pool = Pool::checked_pool_covering(p)) pool->note_obligation(p, len, site);
}

}  // namespace dstore::pmem
