// PmemCheck: a shadow-memory persistence-order checker for pmem::Pool.
//
// DIPPER's crash-consistency argument (§3.4 reverse-order flush protocol,
// 8B-atomic root transitions) rests on every PMEM store being flushed and
// fenced in the right order. Nothing at runtime enforces that discipline: a
// missing persist() only surfaces as a flaky crash test, and a redundant
// one silently costs ~600 ns per line. PmemCheck tracks every cache line in
// a kCrashSim pool through the state machine
//
//     clean ──store──▶ dirty ──flush──▶ staged ──fence──▶ persistent(clean)
//
// and reports the four defect classes in common/check_report.h. Stores are
// not intercepted; a line is *dirty* iff its region bytes differ from the
// persistent image, which the kCrashSim pool already maintains. Flushes are
// tracked exactly: flush() snapshots the line, fence() compares the line
// against the snapshot (a mismatch means a store landed inside the staged
// window and was not re-flushed — defect class 3). Non-temporal stores
// (flush_nt) take the same staged→persistent path minus the redundant-flush
// check — they bypass the cache, so re-writing identical bytes is never the
// wasted-clwb defect.
//
// Thread model: the pool invokes every hook with its image mutex held, so
// the checker needs no locking of its own. Staged lines are keyed by pool
// offset and owned by the flushing thread — a fence retires only the
// calling thread's staged lines, matching the pool's (and x86's) semantics.
// crash() clears all staged state: a new epoch begins and stale snapshots
// from quiesced threads can no longer raise violations.
//
// Attribution: violations carry the innermost PmemCheckScope label active
// on the flushing/checking thread. Scopes are free when no checker is
// attached anywhere in the process (one relaxed atomic load).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/cacheline.h"
#include "common/check_report.h"

namespace dstore::pmem {

class PersistChecker {
 public:
  explicit PersistChecker(size_t max_recorded_violations = 1024)
      : report_(max_recorded_violations) {}
  PersistChecker(const PersistChecker&) = delete;
  PersistChecker& operator=(const PersistChecker&) = delete;

  // ---- site attribution (thread-local, shared across checkers) ----------
  static void push_site(const char* site);
  static void pop_site();
  // Innermost active scope label, or "<unscoped>".
  static const char* current_site();
  // True if any checker is attached to any pool (gates annotation helpers).
  static bool any_active();

  // ---- hooks invoked by Pool (image mutex held) --------------------------
  // `line` / `image_line` point at the kCacheLineSize bytes of the flushed
  // line in the region and in the persistent image.
  void on_flush(uint64_t line_off, const char* line, const char* image_line, uint64_t tid);
  // A non-temporal store wrote `line_off` around the cache: the line is
  // staged (flushed-pending-fence) exactly like on_flush, but is never a
  // redundant-flush candidate — an nt store that rewrites identical bytes
  // costs write bandwidth, not a wasted clwb, and leaves no dirty cache
  // line behind.
  void on_nt_store(uint64_t line_off, const char* line, const char* image_line, uint64_t tid);
  // A fence is retiring `line_off` for thread `tid`; `line` is the region
  // contents now, compared against the flush-time snapshot.
  void on_fence_line(uint64_t line_off, const char* line, uint64_t tid);
  // Power failure: all staged state and pending obligations die with DRAM.
  void on_crash();
  // Pool teardown / checker detach: staged-but-never-fenced lines are
  // missing-flush violations (their write-back was never retired).
  void on_teardown();

  // ---- annotations (image mutex held; bases passed by the pool) ----------
  // Durability point: every line of [off, off+len) must match the image.
  void check_durable(uint64_t off, uint64_t len, const char* region, const char* image,
                     const char* site);
  // Recovery/replay read: the consumed bytes must match the image.
  void check_recovery_read(uint64_t off, uint64_t len, const char* region, const char* image,
                           const char* site);
  // Record that [off, off+len) must be persistent by the next
  // check_obligations() call (used for writes into PMEM arenas whose
  // durability is provided by a later bulk pass, e.g. checkpoint replay).
  void note_obligation(uint64_t off, uint64_t len, const char* site);
  void check_obligations(const char* region, const char* image, const char* site);

  CheckReport& report() { return report_; }
  const CheckReport& report() const { return report_; }

 private:
  struct StagedLine {
    std::array<char, kCacheLineSize> snapshot;
    uint64_t tid;
    const char* site;  // scope active at flush time
  };
  struct Obligation {
    uint64_t off;
    uint64_t len;
    const char* site;
  };

  std::unordered_map<uint64_t, StagedLine> staged_;  // keyed by line offset
  std::vector<Obligation> obligations_;
  CheckReport report_;
};

// RAII scope label for violation attribution, e.g.
//   PmemCheckScope scope("log:write_record");
// Nesting is allowed; the innermost label wins.
class PmemCheckScope {
 public:
  explicit PmemCheckScope(const char* site) : pushed_(PersistChecker::any_active()) {
    if (pushed_) PersistChecker::push_site(site);
  }
  ~PmemCheckScope() {
    if (pushed_) PersistChecker::pop_site();
  }
  PmemCheckScope(const PmemCheckScope&) = delete;
  PmemCheckScope& operator=(const PmemCheckScope&) = delete;

 private:
  bool pushed_;
};

namespace detail {
// Maintained by Pool::attach_checker / detach_checker; backs any_active().
void checker_global_activate();
void checker_global_deactivate();
}  // namespace detail

}  // namespace dstore::pmem
