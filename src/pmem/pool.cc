#include "pmem/pool.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "common/clock.h"

namespace dstore::pmem {

namespace {
// Registry of pools with an attached checker, for checked_pool_covering().
// Quiescence-exempt: PmemCheck bookkeeping (kCrashSim only).
Mutex g_checked_pools_mu{"pmem.checked_pools", lockdep::kQuiesceExempt};
std::vector<Pool*> g_checked_pools;

// Small stable per-thread id for staged-line ownership tracking.
uint64_t checker_thread_id() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

Pool::Pool(size_t size, Mode mode, LatencyModel lat)
    : size_(align_up(size, kCacheLineSize)), mode_(mode), lat_(lat) {
  void* p = mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc();
  region_ = static_cast<char*>(p);
  if (mode_ == Mode::kCrashSim) {
    image_ = std::make_unique<char[]>(size_);
    std::memset(image_.get(), 0, size_);
  }
}

Pool::~Pool() {
  if (checker() != nullptr) detach_checker();
  if (region_ != nullptr) munmap(region_, size_);
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Pool>> Pool::open_file(const std::string& path, size_t size,
                                              LatencyModel lat, bool create) {
  size = align_up(size, kCacheLineSize);
  int flags = O_RDWR | (create ? O_CREAT | O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::io_error("open " + path + " failed");
  if (create && ftruncate(fd, (off_t)size) != 0) {
    ::close(fd);
    return Status::io_error("ftruncate " + path + " failed");
  }
  void* p = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (p == MAP_FAILED) {
    ::close(fd);
    return Status::io_error("mmap " + path + " failed");
  }
  auto pool = std::unique_ptr<Pool>(new Pool());
  pool->region_ = static_cast<char*>(p);
  pool->size_ = size;
  pool->mode_ = Mode::kDirect;
  pool->lat_ = lat;
  pool->fd_ = fd;
  return pool;
}

uint64_t Pool::next_pool_gen() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Pool::ThreadState& Pool::tls() {
  // Staged flushes are per-(thread, pool): a fence only retires the lines
  // this thread flushed, which matches x86 semantics closely enough for the
  // single-writer log/checkpoint protocols we verify.
  thread_local std::unordered_map<uint64_t, ThreadState> states;
  return states[pool_gen_];
}

void Pool::flush(const void* addr, size_t len) {
  if (len == 0) return;
  fault::Outcome fo = fault::hit(fault_, "pmem.flush");
  apply_fault_outcome(fo);
  auto a = reinterpret_cast<uintptr_t>(addr);
  auto b = reinterpret_cast<uintptr_t>(region_);
  assert(a >= b && a + len <= b + size_ && "flush outside pool");
  // Silent media corruption: the flushed line goes bad in place, so both
  // the DRAM view and (via the normal staging below) the persistent image
  // carry the flipped bit. No error, no crash — detection is up to the
  // checksums layered above.
  if (fo.type == fault::FaultType::kBitFlipPmemLine) corrupt_bit(a - b, len, fo.arg);
  uint64_t lo = line_down(a) - b;
  uint64_t hi = line_up(a + len) - b;
  ThreadState& st = tls();
  st.lines += (hi - lo) / kCacheLineSize;
  st.flushes_total += (hi - lo) / kCacheLineSize;
  if (mode_ == Mode::kCrashSim && !image_frozen()) {
    st.ranges.push_back({lo, hi - lo});
    if (PersistChecker* c = checker()) {
      uint64_t tid = checker_thread_id();
      MutexGuard g(image_mu_);
      for (uint64_t l = lo; l < hi; l += kCacheLineSize) {
        c->on_flush(l, region_ + l, image_.get() + l, tid);
      }
    }
  }
}

void Pool::flush_nt(const void* addr, size_t len) {
  if (len == 0) return;
  fault::Outcome fo = fault::hit(fault_, "pmem.nt");
  auto a = reinterpret_cast<uintptr_t>(addr);
  auto b = reinterpret_cast<uintptr_t>(region_);
  assert(a >= b && a + len <= b + size_ && "flush_nt outside pool");
  // Silent media corruption on the nt path, same contract as flush().
  if (fo.type == fault::FaultType::kBitFlipPmemLine) corrupt_bit(a - b, len, fo.arg);
  uint64_t lo = line_down(a) - b;
  uint64_t hi = line_up(a + len) - b;
  ThreadState& st = tls();
  st.nt_lines += (hi - lo) / kCacheLineSize;
  st.nt_total += (hi - lo) / kCacheLineSize;
  if (mode_ == Mode::kCrashSim) {
    if (fo.type == fault::FaultType::kTorn && !image_frozen()) {
      // Power fails with the range in the write-combining buffer: WC buffers
      // drain to media in whole lines, so a line-snapped prefix persists and
      // everything after it is lost. (Contrast persist_bulk, whose torn
      // fault is byte-granular at the media's discretion.)
      uint64_t keep = std::min<uint64_t>(len, fo.arg) / kCacheLineSize * kCacheLineSize;
      {
        MutexGuard g(image_mu_);
        apply_to_image(a - b, keep);
      }
      fault_->trigger_crash();
      return;
    }
    apply_fault_outcome(fo);
    if (!image_frozen()) {
      st.ranges.push_back({lo, hi - lo});
      if (PersistChecker* c = checker()) {
        uint64_t tid = checker_thread_id();
        MutexGuard g(image_mu_);
        for (uint64_t l = lo; l < hi; l += kCacheLineSize) {
          c->on_nt_store(l, region_ + l, image_.get() + l, tid);
        }
      }
    }
  }
}

void Pool::fence() {
  apply_fault_outcome(fault::hit(fault_, "pmem.fence"));
  ThreadState& st = tls();
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  st.fences_total++;
  if (st.lines > 0 || st.nt_lines > 0) {
    uint64_t bytes = (st.lines + st.nt_lines) * kCacheLineSize;
    stats_.bytes_flushed.fetch_add(bytes, std::memory_order_relaxed);
    stats_.lines_flushed.fetch_add(st.lines, std::memory_order_relaxed);
    stats_.lines_nt.fetch_add(st.nt_lines, std::memory_order_relaxed);
    if (bw_series_ != nullptr) bw_series_->add(bytes);
    // First line of each kind pays its full latency; subsequent lines
    // overlap in the write-pending (clwb) / write-combining (nt) queue and
    // add a small incremental cost.
    uint64_t ns = 0;
    if (st.lines > 0 && lat_.pmem_flush_line_ns > 0) {
      ns += lat_.pmem_flush_line_ns + (st.lines - 1) * (lat_.pmem_flush_line_ns / 12);
    }
    if (st.nt_lines > 0 && lat_.pmem_nt_line_ns > 0) {
      ns += lat_.pmem_nt_line_ns + (st.nt_lines - 1) * (lat_.pmem_nt_line_ns / 12);
    }
    if (ns > 0) spin_for_ns(ns);
  }
  if (mode_ == Mode::kCrashSim && !st.ranges.empty() && !image_frozen()) {
    MutexGuard g(image_mu_);
    if (PersistChecker* c = checker()) {
      // Retire this thread's staged lines: compare against the flush-time
      // snapshots (defect class 3) before they become persistent.
      uint64_t tid = checker_thread_id();
      for (const Range& r : st.ranges) {
        for (uint64_t l = r.off; l < r.off + r.len; l += kCacheLineSize) {
          c->on_fence_line(l, region_ + l, tid);
        }
      }
    }
    for (const Range& r : st.ranges) apply_to_image(r.off, r.len);
  }
  st.ranges.clear();
  st.lines = 0;
  st.nt_lines = 0;
}

void Pool::persist_bulk(const void* addr, size_t len) {
  if (len == 0) return;
  fault::Outcome fo = fault::hit(fault_, "pmem.bulk");
  auto a = reinterpret_cast<uintptr_t>(addr);
  auto b = reinterpret_cast<uintptr_t>(region_);
  assert(a >= b && a + len <= b + size_ && "persist_bulk outside pool");
  stats_.bytes_flushed.fetch_add(len, std::memory_order_relaxed);
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  stats_.lines_flushed.fetch_add((len + kCacheLineSize - 1) / kCacheLineSize,
                                 std::memory_order_relaxed);
  if (bw_series_ != nullptr) bw_series_->add(len);
  // A bulk persist pays the fixed flush+fence latency (device-parallel) and
  // queues its bandwidth share on the shared media channel — concurrent
  // bulk writers (e.g. a CoW copier vs faulting clients) serialize here.
  if (lat_.pmem_flush_line_ns > 0) spin_for_ns(lat_.pmem_flush_line_ns);
  bw_channel_.transfer(lat_.pmem_write_ns(len));
  if (fo.type == fault::FaultType::kBitFlipPmemLine) corrupt_bit(a - b, len, fo.arg);
  if (mode_ == Mode::kCrashSim) {
    if (fo.type == fault::FaultType::kTorn && !image_frozen()) {
      // Power fails mid-writeback: only the first `arg` bytes of this bulk
      // range reach media, then everything freezes.
      {
        MutexGuard g(image_mu_);
        apply_to_image(a - b, std::min<uint64_t>(len, fo.arg));
      }
      fault_->trigger_crash();
      return;
    }
    apply_fault_outcome(fo);
    if (image_frozen()) return;
    uint64_t lo = line_down(a) - b;
    uint64_t hi = line_up(a + len) - b;
    MutexGuard g(image_mu_);
    apply_to_image(lo, hi - lo);
  }
}

void Pool::charge_read(size_t len) {
  stats_.bytes_read.fetch_add(len, std::memory_order_relaxed);
  bw_channel_.transfer(lat_.pmem_read_ns(len));
}

void Pool::apply_to_image(uint64_t off, uint64_t len) {
  assert(mode_ == Mode::kCrashSim);
  std::memcpy(image_.get() + off, region_ + off, len);
}

void Pool::evict_random_lines(Rng& rng, size_t count) {
  if (mode_ != Mode::kCrashSim || image_frozen()) return;
  MutexGuard g(image_mu_);
  size_t nlines = size_ / kCacheLineSize;
  for (size_t i = 0; i < count; i++) {
    uint64_t line = rng.next_below(nlines);
    apply_to_image(line * kCacheLineSize, kCacheLineSize);
  }
}

void Pool::crash() {
  assert(mode_ == Mode::kCrashSim && "crash() requires kCrashSim");
  MutexGuard g(image_mu_);
  if (PersistChecker* c = checker()) c->on_crash();
  std::memcpy(region_, image_.get(), size_);
  frozen_.store(false, std::memory_order_release);
  // Note: staged-but-unfenced flushes in other threads' TLS are
  // intentionally NOT discarded here; crash tests quiesce worker threads
  // before crashing, as a real restart would.
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

void Pool::set_fault_injector(fault::FaultInjector* inj) {
  assert(mode_ == Mode::kCrashSim && "fault injection needs the persistent image");
  fault_ = inj;
  if (inj != nullptr) {
    inj->add_crash_sink([this] { freeze_image(); });
  }
}

void Pool::apply_fault_outcome(const fault::Outcome& o) {
  // kCrash froze us inside on_hit (via the crash sink) and kDelay already
  // spun; spurious eviction is the only outcome the pool applies itself.
  if (o.type == fault::FaultType::kEvict && fault_ != nullptr) {
    evict_random_lines(fault_->rng(), o.arg);
  }
}

void Pool::corrupt_bit(uint64_t off, uint64_t len, uint64_t bit) {
  if (len == 0) return;
  uint64_t target = bit % (len * 8);
  region_[off + target / 8] ^= static_cast<char>(1u << (target % 8));
}

void Pool::evict_lines(const void* addr, size_t len) {
  if (mode_ != Mode::kCrashSim || image_frozen() || len == 0) return;
  auto a = reinterpret_cast<uintptr_t>(addr);
  auto b = reinterpret_cast<uintptr_t>(region_);
  assert(a >= b && a + len <= b + size_ && "evict_lines outside pool");
  uint64_t lo = line_down(a) - b;
  uint64_t hi = line_up(a + len) - b;
  MutexGuard g(image_mu_);
  apply_to_image(lo, hi - lo);
}

void Pool::tear_image(const void* addr, size_t keep, size_t len) {
  assert(mode_ == Mode::kCrashSim && "tear_image requires kCrashSim");
  assert(keep <= len);
  auto a = reinterpret_cast<uintptr_t>(addr);
  auto b = reinterpret_cast<uintptr_t>(region_);
  assert(a >= b && a + len <= b + size_ && "tear_image outside pool");
  uint64_t off = a - b;
  MutexGuard g(image_mu_);
  std::memcpy(image_.get() + off, region_ + off, keep);
  std::memset(image_.get() + off + keep, 0, len - keep);
}

// ---------------------------------------------------------------------------
// PmemCheck integration
// ---------------------------------------------------------------------------

void Pool::attach_checker(PersistChecker* checker) {
  assert(mode_ == Mode::kCrashSim && "PmemCheck needs the persistent image (kCrashSim)");
  assert(checker_.load(std::memory_order_acquire) == nullptr && "checker already attached");
  {
    MutexGuard g(g_checked_pools_mu);
    g_checked_pools.push_back(this);
  }
  checker_.store(checker, std::memory_order_release);
  detail::checker_global_activate();
}

void Pool::detach_checker() {
  PersistChecker* c = checker_.exchange(nullptr, std::memory_order_acq_rel);
  if (c == nullptr) return;
  {
    MutexGuard g(image_mu_);
    c->on_teardown();
  }
  {
    MutexGuard g(g_checked_pools_mu);
    g_checked_pools.erase(std::remove(g_checked_pools.begin(), g_checked_pools.end(), this),
                          g_checked_pools.end());
  }
  detail::checker_global_deactivate();
}

Pool* Pool::checked_pool_covering(const void* p) {
  auto a = reinterpret_cast<uintptr_t>(p);
  MutexGuard g(g_checked_pools_mu);
  for (Pool* pool : g_checked_pools) {
    auto b = reinterpret_cast<uintptr_t>(pool->region_);
    if (a >= b && a < b + pool->size_) return pool;
  }
  return nullptr;
}

void Pool::check_durable(const void* addr, size_t len, const char* site) {
  PersistChecker* c = checker();
  if (c == nullptr || len == 0) return;
  uint64_t off = reinterpret_cast<uintptr_t>(addr) - reinterpret_cast<uintptr_t>(region_);
  MutexGuard g(image_mu_);
  c->check_durable(off, len, region_, image_.get(), site);
}

void Pool::check_recovery_read(const void* addr, size_t len, const char* site) {
  PersistChecker* c = checker();
  if (c == nullptr || len == 0) return;
  uint64_t off = reinterpret_cast<uintptr_t>(addr) - reinterpret_cast<uintptr_t>(region_);
  MutexGuard g(image_mu_);
  c->check_recovery_read(off, len, region_, image_.get(), site);
}

void Pool::note_obligation(const void* addr, size_t len, const char* site) {
  PersistChecker* c = checker();
  if (c == nullptr || len == 0) return;
  uint64_t off = reinterpret_cast<uintptr_t>(addr) - reinterpret_cast<uintptr_t>(region_);
  MutexGuard g(image_mu_);
  c->note_obligation(off, len, site);
}

void Pool::check_obligations(const char* site) {
  PersistChecker* c = checker();
  if (c == nullptr) return;
  MutexGuard g(image_mu_);
  c->check_obligations(region_, image_.get(), site);
}

bool Pool::is_persisted(const void* addr, size_t len) const {
  if (mode_ != Mode::kCrashSim) return true;
  auto a = reinterpret_cast<uintptr_t>(addr);
  auto b = reinterpret_cast<uintptr_t>(region_);
  uint64_t off = a - b;
  MutexGuard g(image_mu_);
  return std::memcmp(image_.get() + off, region_ + off, len) == 0;
}

}  // namespace dstore::pmem
