// The DIPPER engine (§3): decoupled, in-memory, parallel persistence.
//
// The engine makes a client's set of DRAM data structures persistent by
// logging logical operations to PMEM and applying them to identical shadow
// copies in the background. The client (DStore, or anything else — DIPPER
// treats the structures as a black box, §3.2) provides exactly two hooks:
//
//   * format(space)          — build the empty structures in a space;
//   * replay(space, records) — apply logged operations to a space, using
//                              THE SAME code paths as the frontend.
//
// The engine owns:
//   * the volatile system space: a slab-allocated arena in DRAM;
//   * the persistent checkpoint space: a PMEM pool laid out as
//       [root object][log A][log B][payload region][arena slot 0..2];
//   * two PMEM logs (active + archived) with the §3.5 swap protocol;
//   * the atomic quiescent-free checkpoint (Mode::kDipper) or the
//     copy-on-write checkpoint used for comparison (Mode::kCow, §4.5);
//   * idempotent recovery (§3.6).
//
// Checkpoint (kDipper): when active-log free space falls below the
// threshold the logs are swapped (one persisted 8-byte root flip — the
// frontend immediately continues appending to the new active log), in-
// flight records drain (bounded by one op, microseconds — never a global
// quiesce), the current shadow copy is cloned into the spare arena slot,
// the archived log's committed records replay onto the clone in LSN order,
// the clone is bulk-flushed, and the root flips cur→clone. A crash at any
// point leaves a consistent copy reachable from the root.
//
// Checkpoint (kCow): the volatile arena is write-protected (mprotect); a
// copier thread and SIGSEGV-faulting writers copy pages into the spare
// slot; writers BLOCK until their page is copied — exactly the behaviour
// whose tail-latency cost Figures 1/8/9 measure.
//
// Deviation from the paper, documented: §3.5 moves *all* uncommitted
// records to the new active log at swap. We move only NOOP (olock) records
// — the only ones that can stay uncommitted indefinitely — and let normal
// in-flight records drain into the archived log (bounded by one SSD write).
// This avoids a relocation map for records whose commit may race the swap,
// and preserves quiescent-freedom: the frontend never waits on the drain.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "alloc/slab_allocator.h"
#include "common/lockdep.h"
#include "common/status.h"
#include "dipper/log.h"
#include "dipper/root.h"
#include "ds/key.h"
#include "fault/fault.h"
#include "pmem/pool.h"

namespace dstore::dipper {

// Client hooks: the "statically defined mapping" from logical operations to
// data-structure functions (§3.2).
class SpaceClient {
 public:
  virtual ~SpaceClient() = default;
  // Build the initial (empty) structures inside a freshly formatted space.
  virtual Status format(SlabAllocator& space) = 0;
  // Apply committed records, in the given order, to a space. Must be
  // deterministic: identical space state + identical record sequence =>
  // identical resulting state (§3.1). Noop records are filtered out by the
  // engine before this is called.
  virtual Status replay(SlabAllocator& space, std::span<const LogRecordView> records) = 0;
};

// Default for EngineConfig::nt_stores: the DSTORE_PMEM_NT environment knob
// (README "Build & test") — "1" publishes log records with non-temporal
// stores, anything else uses the clwb path. An env default (rather than a
// hardwired one) lets CI run the whole crash sweep with nt forced on
// without a second binary.
inline bool nt_stores_default() {
  const char* e = std::getenv("DSTORE_PMEM_NT");
  return e != nullptr && e[0] == '1';
}

// Donor of idle workers for the checkpoint's bulk passes (clone copy and
// durability flush). run_chunks(n, fn) must invoke fn(i) exactly once for
// every i in [0, n), on any threads it likes, and return only once all n
// have finished. A shared checkpoint pool implements this with work
// stealing so one large shard's bulk pass cannot convoy the others.
class BulkExecutor {
 public:
  virtual ~BulkExecutor() = default;
  virtual void run_chunks(size_t n, const std::function<void(size_t)>& fn) = 0;
};

struct EngineConfig {
  size_t arena_bytes = 64ull << 20;  // size of the system space (and each shadow slot)
  uint32_t log_slots = 8192;         // capacity of each of the two logs
  // Checkpoint triggers when used slots exceed this fraction of the log.
  double checkpoint_threshold = 0.5;
  // Run the background checkpoint thread. Tests disable it and call
  // checkpoint_now() to exercise states deterministically.
  bool background_checkpointing = true;
  enum class CkptMode { kDipper, kCow } ckpt_mode = CkptMode::kDipper;
  // Physical-logging ablation (Fig 9 naive baseline / DudeTM archetype):
  // append() additionally writes+flushes the op's data payload into a
  // per-slot PMEM payload region, emulating value-carrying log records.
  bool physical_logging = false;
  size_t physical_payload_bytes = 4096;  // payload region slot size
  // Publish log records with non-temporal stores (pmem::Pool::persist_nt)
  // instead of store+clwb: cheaper per line, identical single-fence
  // ordering (DESIGN.md §13). Does not change the on-PMEM layout, so a pool
  // written with either setting recovers under the other.
  bool nt_stores = nt_stores_default();

  // Externally-driven checkpointing: when set, the engine spawns NO
  // checkpoint thread of its own. Instead this callback fires (hot-path
  // safe, must not block) whenever the engine wants a checkpoint — a
  // watermark crossing or a backpressured append — and the owner (e.g. a
  // shared CheckpointPool) runs checkpoint_step() on one of its workers.
  // All other background_checkpointing semantics are unchanged: appends
  // backpressure-wait on a full log instead of failing busy.
  std::function<void()> ckpt_notify;
  // Optional donor of idle workers for the checkpoint bulk passes. Null =
  // run them serially on the checkpointing thread.
  BulkExecutor* bulk_exec = nullptr;

  // Test-only crash-point hook. Called at named points inside the
  // checkpoint ("ckpt:after_swap", "ckpt:after_drain", "ckpt:after_replay",
  // "ckpt:after_install", "ckpt:cow_mid_copy"). Returning false abandons
  // the checkpoint at that point — combined with pmem::Pool::crash() this
  // simulates a process kill at a precise protocol step.
  std::function<bool(const char*)> test_point_hook;

  // Deterministic fault injection (src/fault): every step of the
  // swap/drain/clone/replay/root-flip sequence and of recovery is a named
  // fault point (see DESIGN.md §8 for the full catalogue). Unlike
  // test_point_hook — which abandons the checkpoint cooperatively — an
  // injected crash here freezes the pool/device persistence mid-protocol,
  // which is what a real power failure does.
  fault::FaultInjector* fault = nullptr;
};

struct EngineStats {
  std::atomic<uint64_t> records_appended{0};
  std::atomic<uint64_t> records_committed{0};
  std::atomic<uint64_t> records_aborted{0};
  std::atomic<uint64_t> checkpoints{0};
  std::atomic<uint64_t> ckpt_failures{0};  // background checkpoints that errored
  std::atomic<uint64_t> records_replayed{0};
  std::atomic<uint64_t> ckpt_total_ns{0};
  // Checkpoint phase attribution (sums across checkpoints; §3.5 protocol):
  // swap = log switch under log_mu_; drain = wait for archived in-flight
  // records; replay = replay/CoW-copy onto the spare arena + durability
  // pass; install = root flip + archived-log recycle.
  std::atomic<uint64_t> ckpt_swap_ns{0};
  std::atomic<uint64_t> ckpt_drain_ns{0};
  std::atomic<uint64_t> ckpt_replay_ns{0};
  std::atomic<uint64_t> ckpt_install_ns{0};
  std::atomic<uint64_t> append_backpressure_waits{0};
  std::atomic<uint64_t> cow_page_faults{0};  // kCow only: writer-side copies
  // Recovery phase timings from the last recover() (Table 4 attribution):
  // metadata = checkpoint redo + volatile-space rebuild; replay = active-log
  // (and, in CoW mode, archived-log) replay onto the volatile space.
  std::atomic<uint64_t> recovery_metadata_ns{0};
  std::atomic<uint64_t> recovery_replay_ns{0};
  // Published log records (valid LSN) that failed their slot checksum —
  // silent PMEM corruption the scan refused to decode.
  std::atomic<uint64_t> log_crc_failures{0};
};

class Engine {
 public:
  // Total PMEM pool bytes this configuration needs.
  static size_t required_pool_bytes(const EngineConfig& cfg);

  Engine(pmem::Pool* pool, SpaceClient* client, EngineConfig cfg);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Format the pool and both spaces from scratch (calls client->format on
  // the volatile space, then snapshots it as the initial shadow copy).
  Status init_fresh();

  // Recover after a crash or restart (§3.6): finish any interrupted
  // checkpoint, rebuild the volatile space from the current shadow copy,
  // and replay the active log's committed records.
  Status recover();

  // Clean shutdown: stop background work. (Recovery is identical either
  // way; DIPPER recovery is uniform and idempotent.)
  void shutdown();

  // The volatile system space. The client performs all normal-operation
  // reads/writes here, under its own concurrency control.
  SlabAllocator& space() { return volatile_space_; }

  // ---- logging (called from the client's synchronous region) -------------
  struct RecordHandle {
    uint8_t side = 0;  // which of the two logs holds the record
    uint32_t slot = 0;
    uint64_t lsn = 0;
    Key name;  // needed to release in-flight CC state at commit
  };

  // Append a logical operation. Blocks (backpressure) if the active log is
  // full and the checkpoint cannot keep up — the >70%-writes backlog case.
  // `phys_payload`/`phys_len`: data bytes for physical-logging mode.
  Result<RecordHandle> append(OpType op, const Key& name, uint64_t arg0, uint64_t arg1,
                              const void* phys_payload = nullptr, size_t phys_len = 0);

  // Split form of append for minimal synchronous regions (§4.3: the work
  // done under the pipeline lock is <300ns): reserve() assigns the slot and
  // LSN — fixing the record's position in conflict order — inside the
  // caller's critical section; write_reserved() performs the record write
  // and its PMEM flush outside it. A reserved record MUST be written before
  // it is committed.
  Result<RecordHandle> reserve(const Key& name);
  void write_reserved(const RecordHandle& h, OpType op, uint64_t arg0, uint64_t arg1,
                      const void* phys_payload = nullptr, size_t phys_len = 0);

  // Persistently commit a record; the op's effects are now durable.
  void commit(const RecordHandle& h);

  // Persistently abort a reserved/written record whose operation failed
  // (e.g. its SSD data write errored): the record becomes invisible to
  // replay and the in-flight count it holds is released — without this,
  // conflicting writers on the same key would wait forever.
  void abort(const RecordHandle& h);

  // ---- concurrency control hooks (§4.4) -----------------------------------
  // True if some uncommitted (in-flight) record targets `name`. Used by the
  // client under its pipeline lock before appending.
  bool has_inflight_write(const Key& name) const;
  // Block until no uncommitted record targets `name`.
  void wait_no_inflight_write(const Key& name) const;

  // Number of uncommitted records (including held locks) targeting `name`.
  int64_t inflight_count(const Key& name) const;
  // Block until at most `allowed` uncommitted records target `name` (a
  // writer holding an olock on the object tolerates its own NOOP record).
  void wait_inflight_at_most(const Key& name, int64_t allowed) const;

  // Register a write that carries no log record (an in-place owrite that
  // touches no metadata, §4.3) so readers and conflicting writers see it.
  void register_external_write(const Key& name) { inflight_inc(name); }
  void unregister_external_write(const Key& name) { inflight_dec(name); }

  // Reference log-scan conflict detection (the paper's exact mechanism:
  // scan from the first uncommitted record to the end of the active log).
  // Functionally equivalent to has_inflight_write(); kept for tests and as
  // documentation of the §4.4 algorithm.
  bool scan_conflicting_write(const Key& name) const;

  // olock/ounlock support (§4.5): a NOOP record held uncommitted.
  Result<RecordHandle> lock_object(const Key& name);
  void unlock_object(const RecordHandle& h, const Key& name);

  // ---- checkpointing ------------------------------------------------------
  // Run one full checkpoint synchronously (tests/benches).
  Status checkpoint_now();
  // Run a checkpoint that deliberately dies at the named protocol point
  // (see EngineConfig::test_point_hook for point names). Used by recovery
  // benches to stage the paper's "crash just before the checkpoint process
  // is complete" worst case.
  Status checkpoint_abandon_at(const char* point);
  // Disable/enable automatic checkpoint triggering (Fig 1's "w/o ckpt"
  // comparison). With checkpointing disabled the log is never swapped; a
  // full log then backpressures appends, so size the log accordingly.
  void set_checkpointing_enabled(bool enabled) {
    checkpointing_enabled_.store(enabled, std::memory_order_release);
  }
  bool checkpoint_running() const { return ckpt_running_.load(std::memory_order_acquire); }
  // ---- externally-driven checkpointing (EngineConfig::ckpt_notify) --------
  // True when a checkpoint should run now: the sticky request flag is set
  // or the active log is past the watermark (and checkpointing is enabled).
  bool checkpoint_due() const;
  // Run one checkpoint on the calling thread, clearing the request flag
  // first (any append that still finds the log past the watermark re-sets
  // it and re-notifies). Failures are recorded exactly like the internal
  // thread records them: ckpt_failures + last_checkpoint_error().
  Status checkpoint_step();
  // Fraction of active-log slots in use.
  double log_fill() const;
  // Current checkpoint epoch (increments on every installed checkpoint).
  uint64_t current_epoch() const;

  const EngineStats& stats() const { return stats_; }
  pmem::Pool& pool() { return *pool_; }

  // The last error a *background* checkpoint hit (background failures have
  // no caller to return to; quietly dropping them would hide injected —
  // or real — persistence errors). ok() if none since construction.
  Status last_checkpoint_error() const {
    MutexGuard g(err_mu_);
    return last_ckpt_error_;
  }

  // Test accessors: the fault/crash harness tampers with exact log slots.
  const PmemLog& log_for_testing(uint8_t side) const { return sides_[side].log; }
  uint8_t active_log_index() const { return active_idx_.load(std::memory_order_acquire); }

  // Raw bytes of a reserved/written record's slot — the replication stream
  // ships these so followers authenticate each entry with
  // PmemLog::decode_image (DESIGN.md §16). Valid between write_reserved()
  // and commit()/abort(): the slot cannot recycle while the record is
  // in flight.
  const void* slot_image(const RecordHandle& h) const {
    return pool_->base() + sides_[h.side].log.slot_offset(h.slot);
  }

  // Bytes of PMEM actually in use: root + valid log records + the shadow
  // copies reachable from the root (storage-footprint accounting, Fig 10).
  uint64_t pmem_used_bytes() const;

  // Test hook: quiesce background work so pool().crash() is race-free.
  void stop_background();

  // Read-repair source lookup: the physically-logged payload for `name`,
  // iff the globally newest committed record for the name (across both log
  // sides) is a whole-object put of exactly `expected_size` bytes and the
  // stored payload authenticates against that record's payload CRC.
  // Anything else — no record (already checkpointed out), a newer partial
  // write, a clobbered payload slot — returns not_found/corruption and the
  // caller falls through to quarantine. Callers must hold the object's
  // write exclusion (no in-flight writes on `name`).
  Result<std::vector<char>> find_repair_payload(const Key& name, uint64_t expected_size) const;

 private:
  // Volatile per-slot bookkeeping mirroring the active/archived logs.
  enum class SlotState : uint8_t { kFree = 0, kReserved, kValid, kCommitted, kAborted };
  struct LogSide {
    PmemLog log;
    std::vector<std::atomic<SlotState>> states;
    std::vector<uint64_t> name_hashes;  // for conflict scans
    std::atomic<uint32_t> next_slot{0};
    std::atomic<bool> zeroed{true};  // region is formatted and ready for use
    // Recycle generation: bumped (under log_mu_) every time this side's
    // slots are reset, so chunked scans (find_repair_payload) can detect a
    // checkpoint recycling the side mid-walk and restart.
    std::atomic<uint64_t> gen{0};
  };

  // Pool layout offsets.
  struct Layout {
    uint64_t root_off;
    uint64_t log_off[2];
    uint64_t payload_off;  // physical-logging payload region (may be 0-sized)
    uint64_t arena_off[3];
  };
  static Layout compute_layout(const EngineConfig& cfg);

  RootObject* root() const;
  PackedState load_state() const;
  void store_state(PackedState s);  // atomic store + persist

  Arena pmem_arena(uint8_t slot) const;

  // Checkpoint machinery.
  void checkpoint_thread_main();
  Status do_checkpoint();
  Status swap_logs();                           // flip active log (root transition)
  void drain_archived(uint8_t archived_idx);    // wait for in-flight commits
  // Gathers the log's committed records in LSN order. Fails with
  // Status::corruption (fail-stop: the log can no longer be trusted) if any
  // published record fails its slot checksum.
  Status collect_committed(uint8_t log_idx, std::vector<LogRecordView>* out);
  Status replay_onto_spare(uint8_t archived_idx);  // kDipper
  Status cow_copy_into_spare();                    // kCow
  void install_spare(uint8_t archived_idx);
  void recycle_archived(uint8_t archived_idx);
  // Wake the checkpoint thread without ever blocking on ckpt_mu_ (hot-path
  // safe; a lost notify race is recovered by the sticky request flag).
  void request_checkpoint();

  // CoW support.
  void cow_protect_arena();
  void cow_unprotect_all();
  bool cow_handle_fault(void* addr);  // called from the SIGSEGV handler
  void cow_copy_page(size_t page_idx);
  friend struct CowFaultRouter;

  // In-flight write tracking (open-addressed counter table, like the
  // read-count table but for uncommitted log records).
  struct InflightSlot {
    std::atomic<uint64_t> tag{0};
    std::atomic<int64_t> count{0};
  };
  InflightSlot& inflight_slot(const Key& name) const;
  void inflight_inc(const Key& name);
  void inflight_dec(const Key& name);

  Status rebuild_volatile_from_shadow();

  pmem::Pool* pool_;
  SpaceClient* client_;
  EngineConfig cfg_;
  Layout layout_;

  // Volatile system space (mmap'd so kCow can mprotect it).
  char* volatile_base_ = nullptr;
  SlabAllocator volatile_space_;

  LogSide sides_[2];
  std::atomic<uint64_t> lsn_counter_{1};
  std::atomic<uint8_t> active_idx_{0};  // volatile cache of the root's active log

  // olock records currently held uncommitted; relocated at log swaps.
  struct HeldLock {
    uint8_t side;
    uint32_t slot;
  };
  std::unordered_map<std::string, HeldLock> held_locks_;  // guarded by log_mu_

  // Quiescence-exempt: the §3.5 log swap briefly holds this against
  // foreground reserve() — the paper's one by-design bounded stall (a
  // persisted 8-byte root flip plus held-lock relocation). Every other
  // holder keeps it O(chunk) (see find_repair_payload / recycle_archived).
  mutable Mutex log_mu_{"dipper.log", lockdep::kQuiesceExempt};
  CondVar ckpt_cv_;
  Mutex ckpt_mu_{"dipper.ckpt"};
  std::thread ckpt_thread_;
  std::atomic<bool> ckpt_requested_{false};
  std::atomic<bool> ckpt_running_{false};
  std::atomic<bool> checkpointing_enabled_{true};
  std::atomic<const char*> abandon_point_{nullptr};
  std::atomic<bool> stop_{false};

  mutable std::vector<InflightSlot> inflight_;
  EngineStats stats_;
  mutable Mutex err_mu_{"dipper.err"};
  Status last_ckpt_error_ = Status::ok();

  // CoW state.
  std::vector<std::atomic<uint8_t>> cow_page_done_;  // 1 = copied this round
  std::atomic<bool> cow_active_{false};
  size_t cow_pages_ = 0;
  uint8_t cow_target_slot_ = 0;
};

}  // namespace dstore::dipper
