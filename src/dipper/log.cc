#include "dipper/log.h"

#include <cstring>

#include "common/cacheline.h"
#include "common/crc32c.h"

namespace dstore::dipper {

uint32_t PmemLog::record_crc(const Slot* s, uint32_t slot, uint64_t lsn) {
  uint32_t c = 0xffffffffu;
  c = crc32c_extend_u64(c, slot);  // location seed: wrong-slot decode fails
  c = crc32c_extend_u64(c, lsn);
  c = crc32c_extend_u64(c, ((uint64_t)s->length << 32) | s->op);
  c = crc32c_extend_u64(c, s->arg0);
  c = crc32c_extend_u64(c, s->arg1);
  c = crc32c_extend_u64(c, ((uint64_t)s->klen << 32) | s->payload_crc);
  size_t klen = s->klen <= kMaxNameLen ? s->klen : kMaxNameLen;
  c = crc32c_extend(c, s->name, klen);
  c ^= 0xffffffffu;
  return c == 0 ? 1u : c;
}

void PmemLog::format() {
  char* base = pool_->base() + region_off_;
  std::memset(base, 0, region_bytes(slot_count_));
  pool_->persist_bulk(base, region_bytes(slot_count_));
}

void PmemLog::write_record(uint32_t slot, uint64_t lsn, OpType op, const Key& name, uint64_t arg0,
                           uint64_t arg1, bool noop, uint32_t payload_crc) {
  pmem::PmemCheckScope check_scope("log:write_record");
  Slot* s = slot_ptr(slot);
  // Phase 1: write everything except the LSN.
  s->length = (uint32_t)(8 + 8 + 1 + name.len);
  s->op = (uint16_t)op;
  s->flags.store(noop ? kFlagNoop : 0, std::memory_order_relaxed);
  s->arg0 = arg0;
  s->arg1 = arg1;
  s->klen = name.len;
  std::memcpy(s->name, name.data, name.len);
  s->payload_crc = payload_crc;
  s->crc = record_crc(s, slot, lsn);
  // Single-fence publication (see log.h / DESIGN.md §13): the LSN is the
  // last *store* but persists in the same train as everything else. Any
  // crash-persisted subset of the two lines is safe — the head line alone
  // yields a valid LSN whose CRC (stale tail line) fails, which recovery
  // classifies as a torn uncommitted publication and skips. One flush train
  // + one fence replaces the old two-fence reverse-order protocol.
  s->lsn.store(lsn, std::memory_order_release);
  pmem::PersistBatch batch(pool_, nt_);
  batch.add(s, kSlotSize);
  batch.commit();
  // Durability point: the record is published (valid LSN) — every byte a
  // recovery scan would decode must now be in the persistent image.
  size_t payload_end = offsetof(Slot, name) + name.len;
  pool_->check_durable(s, payload_end, "log:write_record");
  pool_->check_durable(&s->crc, sizeof(s->crc) + sizeof(s->payload_crc), "log:write_record");
}

void PmemLog::commit(uint32_t slot) {
  pmem::PmemCheckScope check_scope("log:commit");
  Slot* s = slot_ptr(slot);
  // Read-modify-write of a live line: clwb path, never nt (a streaming
  // store of a partially-rewritten line would be wrong on real hardware).
  s->flags.fetch_or(kFlagCommitted, std::memory_order_release);
  pmem::PersistBatch batch(pool_);
  batch.add(&s->flags, sizeof(s->flags));
  batch.commit();
  // Durability point: commit == durable (§4.5). The whole record — not
  // just the flags line — must be persistent once the commit flag is.
  pool_->check_durable(s, offsetof(Slot, arg0) + s->length, "log:commit");
}

void PmemLog::abort(uint32_t slot) {
  pmem::PmemCheckScope check_scope("log:abort");
  Slot* s = slot_ptr(slot);
  s->flags.fetch_or(kFlagAborted, std::memory_order_release);
  pmem::PersistBatch batch(pool_);
  batch.add(&s->flags, sizeof(s->flags));
  batch.commit();
  pool_->check_durable(&s->flags, sizeof(s->flags), "log:abort");
}

bool PmemLog::read(uint32_t slot, LogRecordView* out, bool* corrupt) const {
  if (corrupt != nullptr) *corrupt = false;
  if (slot >= slot_count_) return false;
  const Slot* s = slot_ptr(slot);
  uint64_t lsn = s->lsn.load(std::memory_order_acquire);
  if (lsn == 0) return false;
  // Defect class 4: every read() consumer (recovery scan, checkpoint
  // replay collection) acts on what it decodes — under PmemCheck, verify
  // the slot's bytes are what a crash would actually have left behind.
  pool_->check_recovery_read(s, kSlotSize, "log:read");
  if (s->crc != record_crc(s, slot, lsn)) {
    // Published record (valid LSN) whose bytes no longer checksum: silent
    // PMEM corruption. Never decode it.
    if (corrupt != nullptr) *corrupt = true;
    return false;
  }
  out->lsn = lsn;
  out->op = (OpType)s->op;
  uint16_t flags = s->flags.load(std::memory_order_acquire);
  out->committed = (flags & kFlagCommitted) != 0 && (flags & kFlagAborted) == 0;
  out->arg0 = s->arg0;
  out->arg1 = s->arg1;
  out->name.len = s->klen > kMaxNameLen ? kMaxNameLen : s->klen;
  std::memcpy(out->name.data, s->name, out->name.len);
  out->payload_crc = s->payload_crc;
  return true;
}

bool PmemLog::decode_image(const void* bytes, uint32_t slot, LogRecordView* out) {
  // Copy into an aligned Slot so the atomics are loadable regardless of the
  // source buffer's alignment (wire bodies are arbitrary byte strings).
  Slot s;
  std::memcpy(&s, bytes, kSlotSize);
  uint64_t lsn = s.lsn.load(std::memory_order_relaxed);
  if (lsn == 0) return false;
  if (s.crc != record_crc(&s, slot, lsn)) return false;
  out->lsn = lsn;
  out->op = (OpType)s.op;
  uint16_t flags = s.flags.load(std::memory_order_relaxed);
  out->committed = (flags & kFlagCommitted) != 0 && (flags & kFlagAborted) == 0;
  out->arg0 = s.arg0;
  out->arg1 = s.arg1;
  out->name.len = s.klen > kMaxNameLen ? kMaxNameLen : s.klen;
  std::memcpy(out->name.data, s.name, out->name.len);
  out->payload_crc = s.payload_crc;
  return true;
}

bool PmemLog::is_committed(uint32_t slot) const {
  const Slot* s = slot_ptr(slot);
  return (s->flags.load(std::memory_order_acquire) & kFlagCommitted) != 0;
}

}  // namespace dstore::dipper
