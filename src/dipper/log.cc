#include "dipper/log.h"

#include <cstring>

#include "common/cacheline.h"

namespace dstore::dipper {

void PmemLog::format() {
  char* base = pool_->base() + region_off_;
  std::memset(base, 0, region_bytes(slot_count_));
  pool_->persist_bulk(base, region_bytes(slot_count_));
}

void PmemLog::write_record(uint32_t slot, uint64_t lsn, OpType op, const Key& name, uint64_t arg0,
                           uint64_t arg1, bool noop) {
  pmem::PmemCheckScope check_scope("log:write_record");
  Slot* s = slot_ptr(slot);
  // Phase 1: write everything except the LSN.
  s->length = (uint32_t)(8 + 8 + 1 + name.len);
  s->op = (uint16_t)op;
  s->flags.store(noop ? kFlagNoop : 0, std::memory_order_relaxed);
  s->arg0 = arg0;
  s->arg1 = arg1;
  s->klen = name.len;
  std::memcpy(s->name, name.data, name.len);
  size_t payload_end = offsetof(Slot, name) + name.len;
  if (payload_end <= kCacheLineSize) {
    // Single-line record (the common case, §3.4: "we expect most log
    // records to fit within a single cache line"): the cache line is the
    // write-back atom and the LSN store is program-ordered after every
    // other field, so any write-back — explicit or spurious — either has
    // lsn==0 (invisible) or carries the complete record. One flush+fence.
    s->lsn.store(lsn, std::memory_order_release);
    pool_->persist(s, kCacheLineSize);
  } else {
    // Multi-line record: persist the tail lines first, then write the LSN
    // and persist its line last (§3.4 reverse-order flush protocol).
    pool_->persist(reinterpret_cast<char*>(s) + kCacheLineSize, payload_end - kCacheLineSize);
    s->lsn.store(lsn, std::memory_order_release);
    pool_->persist(s, kCacheLineSize);
  }
  // Durability point: the record is published (valid LSN) — every byte a
  // recovery scan would decode must now be in the persistent image.
  pool_->check_durable(s, payload_end, "log:write_record");
}

void PmemLog::commit(uint32_t slot) {
  pmem::PmemCheckScope check_scope("log:commit");
  Slot* s = slot_ptr(slot);
  s->flags.fetch_or(kFlagCommitted, std::memory_order_release);
  pool_->persist(&s->flags, sizeof(s->flags));
  // Durability point: commit == durable (§4.5). The whole record — not
  // just the flags line — must be persistent once the commit flag is.
  pool_->check_durable(s, offsetof(Slot, arg0) + s->length, "log:commit");
}

void PmemLog::abort(uint32_t slot) {
  pmem::PmemCheckScope check_scope("log:abort");
  Slot* s = slot_ptr(slot);
  s->flags.fetch_or(kFlagAborted, std::memory_order_release);
  pool_->persist(&s->flags, sizeof(s->flags));
  pool_->check_durable(&s->flags, sizeof(s->flags), "log:abort");
}

bool PmemLog::read(uint32_t slot, LogRecordView* out) const {
  if (slot >= slot_count_) return false;
  const Slot* s = slot_ptr(slot);
  uint64_t lsn = s->lsn.load(std::memory_order_acquire);
  if (lsn == 0) return false;
  // Defect class 4: every read() consumer (recovery scan, checkpoint
  // replay collection) acts on what it decodes — under PmemCheck, verify
  // the slot's bytes are what a crash would actually have left behind.
  pool_->check_recovery_read(s, kSlotSize, "log:read");
  out->lsn = lsn;
  out->op = (OpType)s->op;
  uint16_t flags = s->flags.load(std::memory_order_acquire);
  out->committed = (flags & kFlagCommitted) != 0 && (flags & kFlagAborted) == 0;
  out->arg0 = s->arg0;
  out->arg1 = s->arg1;
  out->name.len = s->klen > kMaxNameLen ? kMaxNameLen : s->klen;
  std::memcpy(out->name.data, s->name, out->name.len);
  return true;
}

bool PmemLog::is_committed(uint32_t slot) const {
  const Slot* s = slot_ptr(slot);
  return (s->flags.load(std::memory_order_acquire) & kFlagCommitted) != 0;
}

}  // namespace dstore::dipper
