// DIPPER's PMEM-resident operation log (§3.4, Figure 3).
//
// Each record captures one logical operation: LSN, length, op type, commit
// flag, and the op's parameters (object name + two integer args). Records
// live in fixed 128-byte slots — two cache lines — so that recovery can
// examine every slot independently: a slot is *present* iff its LSN field
// is non-zero (the region is zeroed before reuse), and *replayable* iff its
// commit flag is set. In practice (short names) a record occupies a single
// cache line, matching the paper's "we expect most log records to fit
// within a single cache line".
//
// Atomic visibility protocol (§3.4, minimally ordered — DESIGN.md §13):
// PMEM gives 8-byte atomicity and may evict cache lines spuriously. Rather
// than store-ordering the LSN behind its own fence (the old reverse-order
// two-fence protocol), the record is *self-certifying*: every field —
// including the slot-seeded CRC and, last in program order, the LSN — is
// written with plain stores, then BOTH slot lines are persisted by a single
// flush train and ONE fence (pmem::PersistBatch). Publication is that fence.
//
// A crash or spurious eviction inside the publication window can persist
// any subset of the two lines, and every subset is safe:
//
//   * neither line, or the tail line alone  → LSN still 0 → empty slot;
//   * head line alone (valid LSN, stale CRC) → the CRC check fails →
//     recovery counts the slot as a torn, uncommitted publication and
//     skips it — it can never be committed, because the commit store
//     happens-after the publication fence;
//   * both lines → complete record.
//
// So the invariant the old protocol bought with two fences — a decodable
// record is a complete record — holds with one.
//
// The commit flag is set (and its line flushed+fenced) only after the
// operation's data is durable on the SSD (§4.5), making commit == durable;
// a committed record that fails its CRC is therefore silent media
// corruption, never a torn publication, and recovery fail-stops on it.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "ds/key.h"
#include "pmem/pool.h"

namespace dstore::dipper {

enum class OpType : uint16_t {
  kNoop = 0,    // olock/ounlock marker (§4.5); ignored by replay
  kCreate = 1,  // oopen with creation: (name)
  kPut = 2,     // oput: (name, value_size)
  kDelete = 3,  // odelete: (name)
  kWrite = 4,   // owrite that changed metadata: (name, new_size)
};

// Decoded view of a log record, handed to replay.
struct LogRecordView {
  uint64_t lsn = 0;
  OpType op = OpType::kNoop;
  bool committed = false;
  Key name;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  // Checksum of the record's physically-logged payload (0 when none was
  // logged). Lets the read-repair path verify a candidate payload before
  // trusting it.
  uint32_t payload_crc = 0;
};

class PmemLog {
 public:
  static constexpr size_t kSlotSize = 128;

  // Record flag bits (persisted).
  static constexpr uint16_t kFlagCommitted = 1u << 0;
  static constexpr uint16_t kFlagAborted = 1u << 1;
  static constexpr uint16_t kFlagNoop = 1u << 2;

  PmemLog() = default;
  // `nt`: publish records with non-temporal stores (persist_nt) instead of
  // clwb — the record write is a full-two-line streaming store, the nt
  // sweet spot. Commit/abort stay on the clwb path (they read-modify-write
  // one line). See EngineConfig::nt_stores / DSTORE_PMEM_NT.
  PmemLog(pmem::Pool* pool, uint64_t region_off, uint32_t slot_count, bool nt = false)
      : pool_(pool), region_off_(region_off), slot_count_(slot_count), nt_(nt) {}

  static size_t region_bytes(uint32_t slot_count) { return (size_t)slot_count * kSlotSize; }
  uint32_t slot_count() const { return slot_count_; }

  // Pool-relative byte offset of `slot`'s record. The torn-write fault
  // tests use this to tamper with the persistent image of an exact slot.
  uint64_t slot_offset(uint32_t slot) const {
    return region_off_ + (uint64_t)slot * kSlotSize;
  }

  // Zero the whole region and persist (bulk). Required before reuse so the
  // LSN-validity rule holds.
  void format();

  // Write a record into `slot` following the single-fence publication
  // protocol above. The record is persistent-but-uncommitted on return. `payload_crc` is the checksum
  // of the physically-logged payload accompanying the record (0 if none);
  // it is covered by the record's own CRC so a repair source can be
  // authenticated end to end.
  void write_record(uint32_t slot, uint64_t lsn, OpType op, const Key& name, uint64_t arg0,
                    uint64_t arg1, bool noop, uint32_t payload_crc = 0);

  // Persistently mark the record committed / aborted.
  void commit(uint32_t slot);
  void abort(uint32_t slot);

  // Decode `slot`. Returns false if the slot holds no valid record; in that
  // case `*corrupt` (when non-null) distinguishes "empty/invalid slot"
  // (false) from "valid LSN but failed checksum" (true) — a record that was
  // written but can no longer be trusted.
  bool read(uint32_t slot, LogRecordView* out, bool* corrupt = nullptr) const;

  // Decode + authenticate a raw kSlotSize-byte slot image captured from
  // slot index `slot` of SOME log — no pool needed. Because the record CRC
  // is slot-index-seeded, the index is part of the authentication: an image
  // replayed against the wrong slot fails. This is the replication stream's
  // end-to-end check (DESIGN.md §16): a follower verifies each shipped slot
  // image exactly the way recovery verifies the slot in place. Commit-flag
  // state is reported in `out->committed` but is NOT covered by the CRC
  // (images are captured pre-commit).
  static bool decode_image(const void* bytes, uint32_t slot, LogRecordView* out);

  bool is_committed(uint32_t slot) const;

 private:
  // On-PMEM slot layout. First cache line: header + start of payload.
  struct Slot {
    std::atomic<uint64_t> lsn;     // 0 = invalid; written last
    uint32_t length;               // payload bytes used
    uint16_t op;
    std::atomic<uint16_t> flags;
    // payload: arg0(8) arg1(8) klen(1) name(<=63)
    uint64_t arg0;
    uint64_t arg1;
    uint8_t klen;
    char name[kMaxNameLen];
    // Slot-index-seeded CRC32C over every field above except `flags` (which
    // legitimately mutates at commit/abort) — a record decoded from the
    // wrong slot fails its seed. Persisted in the same single-fence train
    // as the LSN; a crash that publishes the LSN line without this one
    // reads as a torn (CRC-failing, uncommitted) publication.
    uint32_t crc;
    uint32_t payload_crc;  // checksum of the physically-logged payload, or 0
    uint8_t pad[24];
  };
  static_assert(sizeof(Slot) == kSlotSize, "slot must be exactly two cache lines");

  // The record checksum (lsn passed explicitly: it is computed before the
  // LSN field is stored).
  static uint32_t record_crc(const Slot* s, uint32_t slot, uint64_t lsn);

  Slot* slot_ptr(uint32_t slot) const {
    return reinterpret_cast<Slot*>(pool_->base() + region_off_ + (uint64_t)slot * kSlotSize);
  }

  pmem::Pool* pool_ = nullptr;
  uint64_t region_off_ = 0;
  uint32_t slot_count_ = 0;
  bool nt_ = false;  // publish records via non-temporal stores
};

}  // namespace dstore::dipper
