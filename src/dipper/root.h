// DIPPER root object (§3.5): "A root object, placed in a well known offset
// in PMEM contains pointers to current and old copies of the shadow copies
// as well as the current state of the checkpoint process."
//
// Every state transition that recovery depends on is packed into ONE 8-byte
// word, flipped with a single atomic store + persist, which is what makes
// the swap and the checkpoint install atomic on hardware that only
// guarantees 8-byte atomicity:
//
//   bits [0]     active log index (0/1)
//   bits [1]     checkpoint running
//   bits [2:3]   shadow_cur arena slot (0..2)
//   bits [4:5]   shadow_old arena slot (0..2)
//   bits [6:63]  epoch (incremented on every transition)
//
// The three arena slots rotate: the slot that is neither cur nor old is the
// spare a running checkpoint builds its new copy in; a crash mid-checkpoint
// therefore never damages a consistent copy (§3.5 idempotency).
#pragma once

#include <atomic>
#include <cstdint>

namespace dstore::dipper {

struct PackedState {
  uint8_t active_log = 0;  // 0 or 1
  bool ckpt_running = false;
  uint8_t shadow_cur = 0;  // arena slot index 0..2
  uint8_t shadow_old = 1;
  uint64_t epoch = 0;

  uint64_t pack() const {
    return (uint64_t)(active_log & 1) | ((uint64_t)(ckpt_running ? 1 : 0) << 1) |
           ((uint64_t)(shadow_cur & 3) << 2) | ((uint64_t)(shadow_old & 3) << 4) | (epoch << 6);
  }
  static PackedState unpack(uint64_t v) {
    PackedState s;
    s.active_log = (uint8_t)(v & 1);
    s.ckpt_running = ((v >> 1) & 1) != 0;
    s.shadow_cur = (uint8_t)((v >> 2) & 3);
    s.shadow_old = (uint8_t)((v >> 4) & 3);
    s.epoch = v >> 6;
    return s;
  }

  // The arena slot that is neither cur nor old — the checkpoint target.
  uint8_t spare_slot() const { return (uint8_t)(3 - shadow_cur - shadow_old); }
};

struct RootObject {
  static constexpr uint64_t kMagic = 0x44495050'45525254ull;  // "DIPPERRT"

  uint64_t magic;
  std::atomic<uint64_t> state;  // PackedState
  uint64_t arena_bytes;         // size of each shadow arena slot
  uint32_t log_slots;           // capacity of each of the two logs
  uint32_t reserved;
  uint64_t config_fingerprint;  // sanity check on recovery
};

}  // namespace dstore::dipper
