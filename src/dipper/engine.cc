#include "dipper/engine.h"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <csignal>
#include <cstring>

#include "common/cacheline.h"
#include "common/clock.h"
#include "common/crc32c.h"

namespace dstore::dipper {

namespace {
constexpr size_t kRootRegion = 4096;
constexpr size_t kPageSize = 4096;
constexpr size_t kInflightTableSize = 1 << 16;

uint64_t fingerprint(const EngineConfig& cfg) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(cfg.arena_bytes);
  mix(cfg.log_slots);
  mix(cfg.physical_logging ? cfg.physical_payload_bytes : 0);
  return h;
}

// CoW checkpoint page copy. The copier only reads pages that are still
// mprotect(PROT_READ)-protected — the MMU, not the memory model, is what
// excludes concurrent mutator writes — and TSan cannot see that barrier,
// so under TSan the copy runs uninstrumented. A byte loop, not memcpy:
// TSan intercepts memcpy even inside a no_sanitize function.
#if defined(__SANITIZE_THREAD__)
__attribute__((no_sanitize("thread")))
void cow_raw_copy(char* dst, const char* src, size_t n) {
  for (size_t i = 0; i < n; i++) dst[i] = src[i];
}
#else
inline void cow_raw_copy(char* dst, const char* src, size_t n) { std::memcpy(dst, src, n); }
#endif
}  // namespace

// ---------------------------------------------------------------------------
// SIGSEGV routing for the CoW checkpoint (§4.5). The handler must be
// async-signal-safe: it touches only atomics, memcpy, and mprotect.
// ---------------------------------------------------------------------------

struct CowFaultRouter {
  static constexpr int kMaxEngines = 16;
  static std::atomic<Engine*> engines[kMaxEngines];
  static std::atomic<bool> installed;
  static struct sigaction old_action;

  static void handler(int sig, siginfo_t* info, void* uctx) {
    void* addr = info->si_addr;
    for (auto& slot : engines) {
      Engine* e = slot.load(std::memory_order_acquire);
      if (e != nullptr && e->cow_handle_fault(addr)) return;
    }
    // Not ours: chain to whatever was installed before (usually default).
    if ((old_action.sa_flags & SA_SIGINFO) != 0 && old_action.sa_sigaction != nullptr) {
      old_action.sa_sigaction(sig, info, uctx);
    } else if (old_action.sa_handler == SIG_IGN) {
      // ignore
    } else {
      signal(SIGSEGV, SIG_DFL);
      raise(sig);
    }
  }

  static void ensure_installed() {
    bool expected = false;
    if (!installed.compare_exchange_strong(expected, true)) return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &handler;
    sa.sa_flags = SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGSEGV, &sa, &old_action);
  }

  static void add(Engine* e) {
    ensure_installed();
    for (auto& slot : engines) {
      Engine* expected = nullptr;
      if (slot.compare_exchange_strong(expected, e)) return;
    }
  }
  static void remove(Engine* e) {
    for (auto& slot : engines) {
      Engine* expected = e;
      slot.compare_exchange_strong(expected, nullptr);
    }
  }
};

std::atomic<Engine*> CowFaultRouter::engines[CowFaultRouter::kMaxEngines];
std::atomic<bool> CowFaultRouter::installed{false};
struct sigaction CowFaultRouter::old_action;

// ---------------------------------------------------------------------------
// Layout / construction
// ---------------------------------------------------------------------------

Engine::Layout Engine::compute_layout(const EngineConfig& cfg) {
  Layout l{};
  uint64_t off = 0;
  l.root_off = off;
  off += kRootRegion;
  l.log_off[0] = off;
  off += PmemLog::region_bytes(cfg.log_slots);
  l.log_off[1] = off;
  off += PmemLog::region_bytes(cfg.log_slots);
  l.payload_off = off;
  if (cfg.physical_logging) off += (uint64_t)cfg.log_slots * cfg.physical_payload_bytes;
  for (int i = 0; i < 3; i++) {
    l.arena_off[i] = off;
    off += cfg.arena_bytes;
  }
  return l;
}

size_t Engine::required_pool_bytes(const EngineConfig& cfg) {
  Layout l = compute_layout(cfg);
  return l.arena_off[2] + cfg.arena_bytes;
}

Engine::Engine(pmem::Pool* pool, SpaceClient* client, EngineConfig cfg)
    : pool_(pool), client_(client), cfg_(cfg), layout_(compute_layout(cfg)),
      inflight_(kInflightTableSize),
      cow_page_done_((cfg.arena_bytes + kPageSize - 1) / kPageSize) {
  void* p = mmap(nullptr, cfg_.arena_bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc();
  volatile_base_ = static_cast<char*>(p);
  for (int i = 0; i < 2; i++) {
    sides_[i].log = PmemLog(pool_, layout_.log_off[i], cfg_.log_slots, cfg_.nt_stores);
    sides_[i].states = std::vector<std::atomic<SlotState>>(cfg_.log_slots);
    sides_[i].name_hashes.assign(cfg_.log_slots, 0);
  }
  if (cfg_.ckpt_mode == EngineConfig::CkptMode::kCow) CowFaultRouter::add(this);
}

Engine::~Engine() {
  shutdown();
  if (cfg_.ckpt_mode == EngineConfig::CkptMode::kCow) CowFaultRouter::remove(this);
  if (volatile_base_ != nullptr) munmap(volatile_base_, cfg_.arena_bytes);
}

RootObject* Engine::root() const {
  return reinterpret_cast<RootObject*>(pool_->base() + layout_.root_off);
}

PackedState Engine::load_state() const {
  return PackedState::unpack(root()->state.load(std::memory_order_acquire));
}

void Engine::store_state(PackedState s) {
  // The 8B-atomic root transition — the durability point every swap /
  // checkpoint-install hinges on (§3.5).
  pmem::PmemCheckScope check_scope("engine:root_flip");
  root()->state.store(s.pack(), std::memory_order_release);
  pmem::PersistBatch batch(pool_);
  batch.add(&root()->state, sizeof(uint64_t));
  batch.commit();
  pool_->check_durable(&root()->state, sizeof(uint64_t), "engine:root_flip");
}

Arena Engine::pmem_arena(uint8_t slot) const {
  return Arena(pool_->base() + layout_.arena_off[slot], cfg_.arena_bytes);
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Status Engine::init_fresh() {
  if (pool_->size() < required_pool_bytes(cfg_)) {
    return Status::invalid_argument("PMEM pool too small for engine config");
  }
  // Volatile system space.
  Arena varena(volatile_base_, cfg_.arena_bytes);
  volatile_space_ = SlabAllocator::format(varena);
  DSTORE_RETURN_IF_ERROR(client_->format(volatile_space_));

  // Initial shadow copy: snapshot the freshly formatted space into slot 0.
  Arena shadow = pmem_arena(0);
  std::memcpy(shadow.base(), volatile_base_, volatile_space_.used_bytes());
  pool_->persist_bulk(shadow.base(), volatile_space_.used_bytes());
  pool_->check_durable(shadow.base(), volatile_space_.used_bytes(), "engine:init_snapshot");

  // Logs.
  sides_[0].log.format();
  sides_[1].log.format();
  for (int i = 0; i < 2; i++) {
    for (auto& s : sides_[i].states) s.store(SlotState::kFree, std::memory_order_relaxed);
    sides_[i].next_slot.store(0, std::memory_order_relaxed);
    sides_[i].zeroed.store(true, std::memory_order_relaxed);
  }

  // Root object, installed last.
  RootObject* r = root();
  r->magic = RootObject::kMagic;
  r->arena_bytes = cfg_.arena_bytes;
  r->log_slots = cfg_.log_slots;
  r->config_fingerprint = fingerprint(cfg_);
  PackedState st;
  st.active_log = 0;
  st.ckpt_running = false;
  st.shadow_cur = 0;
  st.shadow_old = 1;
  st.epoch = 1;
  r->state.store(st.pack(), std::memory_order_release);
  pmem::PersistBatch batch(pool_);
  batch.add(r, sizeof(RootObject));
  batch.commit();
  pool_->check_durable(r, sizeof(RootObject), "engine:init_root");

  active_idx_.store(0, std::memory_order_release);
  lsn_counter_.store(1, std::memory_order_release);

  if (cfg_.background_checkpointing && !cfg_.ckpt_notify) {
    stop_.store(false);
    ckpt_thread_ = std::thread([this] { checkpoint_thread_main(); });
  }
  return Status::ok();
}

Status Engine::recover() {
  lockdep::RoleScope role(lockdep::Role::kRecovery);
  pmem::PmemCheckScope check_scope("engine:recover");
  DSTORE_FAULT_POINT(cfg_.fault, "engine.recover.begin");
  RootObject* r = root();
  pool_->check_recovery_read(r, sizeof(RootObject), "engine:recover:root");
  if (r->magic != RootObject::kMagic) return Status::corruption("root object magic mismatch");
  if (r->config_fingerprint != fingerprint(cfg_)) {
    return Status::invalid_argument("engine config does not match on-PMEM layout");
  }
  PackedState st = load_state();
  uint8_t active = st.active_log;
  uint8_t archived = 1 - active;

  // Rebuild volatile per-slot log bookkeeping from PMEM (both sides).
  uint64_t max_lsn = 0;
  for (int i = 0; i < 2; i++) {
    uint32_t last_valid = 0;
    bool any = false;
    for (uint32_t s = 0; s < cfg_.log_slots; s++) {
      LogRecordView rec;
      bool corrupt = false;
      if (sides_[i].log.read(s, &rec, &corrupt)) {
        sides_[i].states[s].store(rec.committed ? SlotState::kCommitted : SlotState::kAborted,
                                  std::memory_order_relaxed);
        sides_[i].name_hashes[s] = rec.name.hash();
        last_valid = s;
        any = true;
        max_lsn = std::max(max_lsn, rec.lsn);
      } else if (corrupt) {
        if (sides_[i].log.is_committed(s)) {
          // A COMMITTED record whose bytes fail their checksum is silent
          // media corruption — commit fences strictly after the publication
          // train persisted the CRC, so no crash schedule can produce this.
          // The log's history is no longer trustworthy, and replaying
          // around the hole could silently resurrect or drop committed
          // operations. Fail-stop.
          stats_.log_crc_failures.fetch_add(1, std::memory_order_relaxed);
          return Status::corruption("log side " + std::to_string(i) + " slot " +
                                    std::to_string(s) +
                                    " failed its record checksum during recovery");
        }
        // Uncommitted + CRC-fail: a torn publication — the crash landed
        // inside the single-fence window and persisted the LSN line without
        // the CRC line (DESIGN.md §13). The op was never acknowledged, so
        // ignoring the slot is correct; park it as aborted (NOT free — it
        // stays occupied until the side is recycled and reformatted) and
        // keep scanning, since committed records can follow in slot order.
        sides_[i].states[s].store(SlotState::kAborted, std::memory_order_relaxed);
        sides_[i].name_hashes[s] = 0;
        last_valid = s;
        any = true;
      } else {
        sides_[i].states[s].store(SlotState::kFree, std::memory_order_relaxed);
        sides_[i].name_hashes[s] = 0;
      }
    }
    sides_[i].next_slot.store(any ? last_valid + 1 : 0, std::memory_order_relaxed);
    sides_[i].zeroed.store(!any, std::memory_order_relaxed);
  }
  lsn_counter_.store(max_lsn + 1, std::memory_order_release);
  active_idx_.store(active, std::memory_order_release);

  StopWatch recovery_watch;
  std::vector<LogRecordView> cow_archived_records;
  if (st.ckpt_running) {
    if (cfg_.ckpt_mode == EngineConfig::CkptMode::kDipper) {
      // §3.6: "we redo the checkpoint procedure ongoing at the time of
      // crash" — clone the (old, consistent) current copy and replay the
      // archived log onto it, exactly as the interrupted checkpoint would.
      DSTORE_FAULT_POINT(cfg_.fault, "engine.recover.redo.begin");
      DSTORE_RETURN_IF_ERROR(replay_onto_spare(archived));
      install_spare(archived);
      recycle_archived(archived);
      st = load_state();
      DSTORE_FAULT_POINT(cfg_.fault, "engine.recover.redo.done");
    } else {
      // CoW cannot redo page copies (the source pages died with DRAM); the
      // archived records are folded into volatile recovery below and a
      // fresh full snapshot is taken.
      DSTORE_RETURN_IF_ERROR(collect_committed(archived, &cow_archived_records));
    }
  }

  // Rebuild the volatile space from the current shadow copy (§3.6:
  // "replicating the PMEM allocator state ... and copying pages from PMEM
  // to DRAM").
  DSTORE_RETURN_IF_ERROR(rebuild_volatile_from_shadow());
  DSTORE_FAULT_POINT(cfg_.fault, "engine.recover.rebuild.done");
  stats_.recovery_metadata_ns.store(recovery_watch.elapsed_ns(), std::memory_order_release);
  StopWatch replay_watch;

  if (!cow_archived_records.empty()) {
    DSTORE_RETURN_IF_ERROR(client_->replay(volatile_space_, cow_archived_records));
    stats_.records_replayed.fetch_add(cow_archived_records.size(), std::memory_order_relaxed);
  }

  // Replay the active log's committed records onto the volatile space.
  DSTORE_FAULT_POINT(cfg_.fault, "engine.recover.replay.begin");
  std::vector<LogRecordView> active_records;
  DSTORE_RETURN_IF_ERROR(collect_committed(active, &active_records));
  if (!active_records.empty()) {
    DSTORE_RETURN_IF_ERROR(client_->replay(volatile_space_, active_records));
    stats_.records_replayed.fetch_add(active_records.size(), std::memory_order_relaxed);
  }
  DSTORE_FAULT_POINT(cfg_.fault, "engine.recover.replay.done");
  stats_.recovery_replay_ns.store(replay_watch.elapsed_ns(), std::memory_order_release);

  if (cfg_.ckpt_mode == EngineConfig::CkptMode::kCow && st.ckpt_running) {
    // Complete the interrupted CoW checkpoint with a full snapshot of the
    // recovered volatile state, atomically swapping to a fresh log.
    uint8_t spare = st.spare_slot();
    Arena dst = pmem_arena(spare);
    std::memcpy(dst.base(), volatile_base_, volatile_space_.used_bytes());
    pool_->persist_bulk(dst.base(), volatile_space_.used_bytes());
    // Fresh log to become active (the archived one, reformatted).
    sides_[archived].log.format();
    for (auto& s : sides_[archived].states) s.store(SlotState::kFree, std::memory_order_relaxed);
    sides_[archived].next_slot.store(0, std::memory_order_relaxed);
    sides_[archived].name_hashes.assign(cfg_.log_slots, 0);
    sides_[archived].zeroed.store(true, std::memory_order_relaxed);
    PackedState ns = st;
    ns.active_log = archived;  // old active (already-snapshotted records) retires
    ns.shadow_old = st.shadow_cur;
    ns.shadow_cur = spare;
    ns.ckpt_running = false;
    ns.epoch++;
    store_state(ns);
    // Retire the old active side.
    recycle_archived(active);
    active_idx_.store(ns.active_log, std::memory_order_release);
    st = ns;
  } else {
    // Make sure the inactive log region is pristine for the next swap.
    uint8_t inact = 1 - st.active_log;
    if (!sides_[inact].zeroed.load(std::memory_order_acquire)) recycle_archived(inact);
  }

  held_locks_.clear();  // locks do not survive restarts
  DSTORE_FAULT_POINT(cfg_.fault, "engine.recover.done");
  if (cfg_.background_checkpointing && !cfg_.ckpt_notify) {
    stop_.store(false);
    ckpt_thread_ = std::thread([this] { checkpoint_thread_main(); });
  }
  return Status::ok();
}

Status Engine::rebuild_volatile_from_shadow() {
  PackedState st = load_state();
  Arena shadow = pmem_arena(st.shadow_cur);
  auto shadow_space = SlabAllocator::open(shadow);
  if (!shadow_space.is_ok()) return shadow_space.status();
  uint64_t used = shadow_space.value().used_bytes();
  // Recovery consumes the current shadow copy wholesale — it must be
  // byte-identical to what a power failure would have left behind.
  pool_->check_recovery_read(shadow.base(), used, "engine:recover:shadow");
  pool_->charge_read(used);
  std::memcpy(volatile_base_, shadow.base(), used);
  Arena varena(volatile_base_, cfg_.arena_bytes);
  auto vs = SlabAllocator::open(varena);
  if (!vs.is_ok()) return vs.status();
  volatile_space_ = vs.value();
  return Status::ok();
}

void Engine::shutdown() {
  stop_background();
}

void Engine::stop_background() {
  if (ckpt_thread_.joinable()) {
    {
      MutexGuard g(ckpt_mu_);
      stop_.store(true);
    }
    ckpt_cv_.notify_all();
    ckpt_thread_.join();
  }
  if (cow_active_.load(std::memory_order_acquire)) cow_unprotect_all();
}

// ---------------------------------------------------------------------------
// Logging & concurrency control
// ---------------------------------------------------------------------------

Engine::InflightSlot& Engine::inflight_slot(const Key& name) const {
  uint64_t h = name.hash();
  if (h == 0) h = 1;
  size_t mask = inflight_.size() - 1;
  size_t idx = h & mask;
  for (size_t probe = 0; probe < inflight_.size(); probe++, idx = (idx + 1) & mask) {
    uint64_t tag = inflight_[idx].tag.load(std::memory_order_acquire);
    if (tag == h) return inflight_[idx];
    if (tag == 0) {
      uint64_t expected = 0;
      if (inflight_[idx].tag.compare_exchange_strong(expected, h, std::memory_order_acq_rel))
        return inflight_[idx];
      if (expected == h) return inflight_[idx];
    }
  }
  return inflight_[h & mask];
}

void Engine::inflight_inc(const Key& name) {
  inflight_slot(name).count.fetch_add(1, std::memory_order_acq_rel);
}
void Engine::inflight_dec(const Key& name) {
  inflight_slot(name).count.fetch_sub(1, std::memory_order_acq_rel);
}

int64_t Engine::inflight_count(const Key& name) const {
  return inflight_slot(name).count.load(std::memory_order_acquire);
}

void Engine::wait_inflight_at_most(const Key& name, int64_t allowed) const {
  InflightSlot& s = inflight_slot(name);
  int spins = 0;
  while (s.count.load(std::memory_order_acquire) > allowed) {
    if (++spins > 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

uint64_t Engine::pmem_used_bytes() const {
  uint64_t total = kRootRegion;
  for (int i = 0; i < 2; i++) {
    total += (uint64_t)sides_[i].next_slot.load(std::memory_order_acquire) * PmemLog::kSlotSize;
  }
  PackedState st = load_state();
  for (uint8_t slot : {st.shadow_cur, st.shadow_old}) {
    auto space = SlabAllocator::open(pmem_arena(slot));
    if (space.is_ok()) total += space.value().used_bytes();
  }
  if (st.ckpt_running) {
    auto space = SlabAllocator::open(pmem_arena(st.spare_slot()));
    if (space.is_ok()) total += space.value().used_bytes();
  }
  return total;
}

bool Engine::has_inflight_write(const Key& name) const {
  return inflight_slot(name).count.load(std::memory_order_acquire) > 0;
}

void Engine::wait_no_inflight_write(const Key& name) const {
  InflightSlot& s = inflight_slot(name);
  int spins = 0;
  while (s.count.load(std::memory_order_acquire) > 0) {
    if (++spins > 64) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

bool Engine::scan_conflicting_write(const Key& name) const {
  // §4.4: "Scanning from the first uncommitted record until the end of the
  // log enables us to detect conflicting operations". We scan the volatile
  // mirror of the active log's slot states.
  uint8_t a = active_idx_.load(std::memory_order_acquire);
  const LogSide& side = sides_[a];
  uint32_t end = side.next_slot.load(std::memory_order_acquire);
  uint64_t h = name.hash();
  for (uint32_t s = 0; s < end && s < cfg_.log_slots; s++) {
    SlotState st = side.states[s].load(std::memory_order_acquire);
    if ((st == SlotState::kReserved || st == SlotState::kValid) && side.name_hashes[s] == h) {
      return true;
    }
  }
  return false;
}

Result<Engine::RecordHandle> Engine::reserve(const Key& name) {
  for (;;) {
    {
      MutexGuard g(log_mu_);
      uint8_t side_idx = active_idx_.load(std::memory_order_acquire);
      LogSide& side = sides_[side_idx];
      uint32_t next = side.next_slot.load(std::memory_order_relaxed);
      if (next < cfg_.log_slots) {
        // Fill the slot's scan-visible fields BEFORE publishing next_slot:
        // scan_conflicting_write reads them lock-free after an acquire load
        // of next_slot, so the release store must come last.
        side.states[next].store(SlotState::kReserved, std::memory_order_release);
        side.name_hashes[next] = name.hash();
        side.next_slot.store(next + 1, std::memory_order_release);
        inflight_inc(name);
        RecordHandle h;
        h.side = side_idx;
        h.slot = next;
        h.lsn = lsn_counter_.fetch_add(1, std::memory_order_acq_rel);
        h.name = name;
        return h;
      }
    }
    // Active log full: the checkpoint has fallen behind (the paper's
    // >70%-writes backlog case). Backpressure until a swap frees space.
    stats_.append_backpressure_waits.fetch_add(1, std::memory_order_relaxed);
    if (!cfg_.background_checkpointing) {
      return Status::busy("log full; run checkpoint_now()");
    }
    request_checkpoint();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void Engine::write_reserved(const RecordHandle& h, OpType op, uint64_t arg0, uint64_t arg1,
                            const void* phys_payload, size_t phys_len) {
  // The record write and its persist run outside every lock: the flush
  // latency (~600ns, Table 3) never serializes other appenders. The slot
  // reservation already fixed this record's conflict-order position.
  uint32_t payload_crc = 0;
  if (cfg_.physical_logging && phys_payload != nullptr && phys_len > 0) {
    size_t cap = cfg_.physical_payload_bytes;
    size_t n = phys_len < cap ? phys_len : cap;
    char* dst = pool_->base() + layout_.payload_off + (uint64_t)h.slot * cap;
    std::memcpy(dst, phys_payload, n);
    pool_->persist_bulk(dst, n);
    // Content checksum of the bytes actually stored, carried (and itself
    // checksummed) inside the log record: the read-repair path can then
    // authenticate the payload slot even though the region is shared by
    // slot index between the two log sides.
    payload_crc = crc32c(dst, n);
  }
  sides_[h.side].log.write_record(h.slot, h.lsn, op, h.name, arg0, arg1, op == OpType::kNoop,
                                  payload_crc);
  sides_[h.side].states[h.slot].store(SlotState::kValid, std::memory_order_release);
  stats_.records_appended.fetch_add(1, std::memory_order_relaxed);

  if (cfg_.background_checkpointing && checkpointing_enabled_.load(std::memory_order_acquire) &&
      !ckpt_running_.load(std::memory_order_acquire) &&
      log_fill() > cfg_.checkpoint_threshold) {
    request_checkpoint();
  }
}

void Engine::request_checkpoint() {
  // Never block on ckpt_mu_ from the hot path: the checkpoint thread holds
  // it only around its wakeup predicate, but even that window must not
  // stall a foreground append (quiescent-freedom, §3). The request flag is
  // sticky, so if the try_lock loses the race and the notify is skipped,
  // the next append (or the backpressure retry loop) re-notifies and the
  // thread re-checks the flag on every wakeup.
  ckpt_requested_.store(true, std::memory_order_release);
  if (cfg_.ckpt_notify) {
    // Externally-driven mode: hand the (non-blocking) wakeup to the owner,
    // which schedules checkpoint_step() on one of its workers. The sticky
    // flag above covers its own lost-notify races the same way.
    cfg_.ckpt_notify();
    return;
  }
  if (ckpt_mu_.try_lock()) {
    ckpt_mu_.unlock();
    ckpt_cv_.notify_one();
  }
}

Result<Engine::RecordHandle> Engine::append(OpType op, const Key& name, uint64_t arg0,
                                            uint64_t arg1, const void* phys_payload,
                                            size_t phys_len) {
  auto h = reserve(name);
  if (!h.is_ok()) return h;
  write_reserved(h.value(), op, arg0, arg1, phys_payload, phys_len);
  return h;
}

void Engine::commit(const RecordHandle& h) {
  // Ordering contract with the async data plane: between write_reserved()
  // and commit() the record's PMEM persist and the op's SSD data writes
  // are independent and may overlap freely; commit() is the join point and
  // requires BOTH the record written (slot state kValid — asserted here)
  // AND every data IO acknowledged (the caller reaps its queue-pair first).
  // Committing a merely-reserved slot would publish a record whose bytes
  // may not be durable.
  assert(sides_[h.side].states[h.slot].load(std::memory_order_acquire) == SlotState::kValid);
  sides_[h.side].log.commit(h.slot);
  sides_[h.side].states[h.slot].store(SlotState::kCommitted, std::memory_order_release);
  inflight_dec(h.name);
  stats_.records_committed.fetch_add(1, std::memory_order_relaxed);
}

void Engine::abort(const RecordHandle& h) {
  // A reserved-but-unwritten slot (lsn still 0) only gets its flags set;
  // recovery never decodes it, and the swap's drain treats kAborted as
  // settled — so aborting is safe at any point after reserve().
  sides_[h.side].log.abort(h.slot);
  sides_[h.side].states[h.slot].store(SlotState::kAborted, std::memory_order_release);
  inflight_dec(h.name);
  stats_.records_aborted.fetch_add(1, std::memory_order_relaxed);
}

Result<Engine::RecordHandle> Engine::lock_object(const Key& name) {
  // §4.5: olock places a NOOP record in the log; a log scan (or the
  // in-flight table mirroring it) then reports the object as conflicting.
  MutexGuard g(log_mu_);
  std::string key_str = name.str();
  if (held_locks_.count(key_str) != 0) return Status::busy("object already locked");
  uint8_t side_idx = active_idx_.load(std::memory_order_acquire);
  LogSide& side = sides_[side_idx];
  uint32_t next = side.next_slot.load(std::memory_order_relaxed);
  if (next >= cfg_.log_slots) return Status::busy("log full");
  // Publish next_slot only once the slot is fully formed (see reserve()):
  // the lock-free conflict scan must never observe a half-written slot.
  side.name_hashes[next] = name.hash();
  uint64_t lsn = lsn_counter_.fetch_add(1, std::memory_order_acq_rel);
  side.log.write_record(next, lsn, OpType::kNoop, name, 0, 0, /*noop=*/true);
  side.states[next].store(SlotState::kValid, std::memory_order_release);
  side.next_slot.store(next + 1, std::memory_order_release);
  inflight_inc(name);
  held_locks_[key_str] = HeldLock{side_idx, next};
  RecordHandle h;
  h.side = side_idx;
  h.slot = next;
  h.lsn = lsn;
  h.name = name;
  return h;
}

void Engine::unlock_object(const RecordHandle& /*h*/, const Key& name) {
  // §4.5: ounlock marks the NOOP record committed. The record may have been
  // relocated by a log swap, so resolve through the held-locks map under
  // the same mutex the swap takes.
  MutexGuard g(log_mu_);
  auto it = held_locks_.find(name.str());
  if (it == held_locks_.end()) return;
  HeldLock hl = it->second;
  held_locks_.erase(it);
  sides_[hl.side].log.commit(hl.slot);
  sides_[hl.side].states[hl.slot].store(SlotState::kCommitted, std::memory_order_release);
  inflight_dec(name);
}

Result<std::vector<char>> Engine::find_repair_payload(const Key& name,
                                                      uint64_t expected_size) const {
  if (!cfg_.physical_logging) return Status::not_found("physical logging disabled");
  if (expected_size == 0 || expected_size > cfg_.physical_payload_bytes) {
    return Status::not_found("object does not fit a payload slot");
  }
  // The globally newest committed record for `name` across both log sides.
  // Records from before the last checkpoint were recycled with their log,
  // so "found" implies the record is inside the current checkpoint window —
  // its payload, if any, reflects the object's current committed state.
  //
  // The walk takes log_mu_ in bounded chunks instead of holding it across
  // the full 2x log scan: a scrubber-driven repair must never stall
  // foreground reserve() for the scan's duration (quiescent-freedom, §3).
  // Consistency across the chunk boundaries comes from each side's recycle
  // generation: a checkpoint recycling the side mid-walk bumps it (under
  // log_mu_) and the scan restarts.
  constexpr uint32_t kScanChunk = 256;
  for (int attempt = 0; attempt < 3; attempt++) {
    LogRecordView best;
    uint32_t best_slot = 0;
    int best_side = -1;
    bool restart = false;
    uint64_t gen_seen[2] = {0, 0};
    for (int i = 0; i < 2 && !restart; i++) {
      const LogSide& side = sides_[i];
      gen_seen[i] = side.gen.load(std::memory_order_acquire);
      uint32_t s = 0;
      for (;;) {
        MutexGuard g(log_mu_);
        if (side.gen.load(std::memory_order_acquire) != gen_seen[i]) {
          restart = true;
          break;
        }
        uint32_t limit = std::min(side.next_slot.load(std::memory_order_acquire), cfg_.log_slots);
        if (s >= limit) break;
        uint32_t end = std::min(s + kScanChunk, limit);
        for (; s < end; s++) {
          LogRecordView rec;
          if (!side.log.read(s, &rec)) continue;
          if (!rec.committed || rec.op == OpType::kNoop) continue;
          if (!(rec.name == name)) continue;
          if (best_side < 0 || rec.lsn > best.lsn) {
            best = rec;
            best_slot = s;
            best_side = i;
          }
        }
      }
    }
    if (restart) continue;
    if (best_side < 0) {
      return Status::not_found("no committed record for object in the log window");
    }
    // Only a whole-object put is a valid repair source: any newer create/
    // delete/partial-write means the logged payload no longer equals the
    // object's committed content.
    if (best.op != OpType::kPut || best.arg0 != expected_size || best.payload_crc == 0) {
      return Status::not_found("newest record is not a whole-object put with a logged payload");
    }
    const char* src =
        pool_->base() + layout_.payload_off + (uint64_t)best_slot * cfg_.physical_payload_bytes;
    std::vector<char> data(src, src + expected_size);
    if (sides_[best_side].gen.load(std::memory_order_acquire) != gen_seen[best_side]) {
      continue;  // side recycled after the walk; the copied bytes are stale
    }
    // Authenticate: the payload region is indexed by slot alone (shared
    // between the two log sides), so a record in the *other* side's same
    // slot may have overwritten these bytes. The record's own payload CRC is
    // the final arbiter of whether this copy is the one it logged.
    if (crc32c(data.data(), data.size()) != best.payload_crc) {
      return Status::corruption("logged payload failed its record's checksum");
    }
    pool_->charge_read(expected_size);
    return data;
  }
  return Status::not_found("log side recycled repeatedly during the repair scan");
}

double Engine::log_fill() const {
  uint8_t a = active_idx_.load(std::memory_order_acquire);
  return (double)sides_[a].next_slot.load(std::memory_order_acquire) / (double)cfg_.log_slots;
}

uint64_t Engine::current_epoch() const { return load_state().epoch; }

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

void Engine::checkpoint_thread_main() {
  lockdep::RoleScope role(lockdep::Role::kCheckpoint);
  for (;;) {
    {
      UniqueLock g(ckpt_mu_);
      ckpt_cv_.wait(g, [this] {
        return stop_.load(std::memory_order_acquire) ||
               ckpt_requested_.load(std::memory_order_acquire);
      });
      if (stop_.load(std::memory_order_acquire)) return;
      ckpt_requested_.store(false, std::memory_order_release);
    }
    Status s = do_checkpoint();
    if (!s.is_ok() && !s.is_busy()) {
      stats_.ckpt_failures.fetch_add(1, std::memory_order_relaxed);
      MutexGuard g(err_mu_);
      last_ckpt_error_ = s;
    }
  }
}

Status Engine::checkpoint_now() {
  return do_checkpoint();
}

bool Engine::checkpoint_due() const {
  if (!checkpointing_enabled_.load(std::memory_order_acquire)) return false;
  return ckpt_requested_.load(std::memory_order_acquire) ||
         log_fill() > cfg_.checkpoint_threshold;
}

Status Engine::checkpoint_step() {
  ckpt_requested_.store(false, std::memory_order_release);
  Status s = do_checkpoint();
  if (!s.is_ok() && !s.is_busy()) {
    stats_.ckpt_failures.fetch_add(1, std::memory_order_relaxed);
    MutexGuard g(err_mu_);
    last_ckpt_error_ = s;
  }
  return s;
}

Status Engine::checkpoint_abandon_at(const char* point) {
  abandon_point_.store(point, std::memory_order_release);
  Status s = do_checkpoint();
  abandon_point_.store(nullptr, std::memory_order_release);
  return s;
}

Status Engine::swap_logs() {
  // Caller holds log_mu_. Flip the active log with one persisted 8-byte
  // root transition; relocate held-lock NOOP records into the new log.
  PackedState st = load_state();
  uint8_t from = st.active_log;
  uint8_t to = 1 - from;
  if (!sides_[to].zeroed.load(std::memory_order_acquire)) {
    return Status::busy("previous archived log not yet recycled");
  }
  DSTORE_FAULT_POINT(cfg_.fault, "engine.swap.begin");
  // Wait for reservations in the outgoing log to finish their record
  // writes (microseconds; the writers do not need log_mu_).
  LogSide& fs = sides_[from];
  uint32_t used = fs.next_slot.load(std::memory_order_acquire);
  for (uint32_t s = 0; s < used; s++) {
    int spins = 0;
    while (fs.states[s].load(std::memory_order_acquire) == SlotState::kReserved) {
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  // Move uncommitted NOOP (olock) records — the only records that can stay
  // uncommitted indefinitely — to the new active log (§3.5).
  DSTORE_FAULT_POINT(cfg_.fault, "engine.swap.before_relocate");
  LogSide& ts = sides_[to];
  for (auto& [key_str, hl] : held_locks_) {
    if (hl.side != from) continue;
    Key name = Key::from(key_str);
    uint32_t ns = ts.next_slot.load(std::memory_order_relaxed);
    // Slot fields first, next_slot publish last (see reserve()).
    ts.name_hashes[ns] = name.hash();
    uint64_t lsn = lsn_counter_.fetch_add(1, std::memory_order_acq_rel);
    ts.log.write_record(ns, lsn, OpType::kNoop, name, 0, 0, /*noop=*/true);
    ts.states[ns].store(SlotState::kValid, std::memory_order_release);
    ts.next_slot.store(ns + 1, std::memory_order_release);
    fs.states[hl.slot].store(SlotState::kAborted, std::memory_order_release);
    hl = HeldLock{to, ns};
  }
  ts.zeroed.store(false, std::memory_order_release);
  st.active_log = to;
  st.ckpt_running = true;
  st.epoch++;
  DSTORE_FAULT_POINT(cfg_.fault, "engine.swap.before_root_flip");
  store_state(st);
  DSTORE_FAULT_POINT(cfg_.fault, "engine.swap.after_root_flip");
  active_idx_.store(to, std::memory_order_release);
  return Status::ok();
}

void Engine::drain_archived(uint8_t archived_idx) {
  // Wait for in-flight (uncommitted) records in the archived log to settle.
  // Bounded by the longest in-flight op (one SSD write) — the frontend is
  // already appending to the new active log, so this never quiesces it.
  LogSide& side = sides_[archived_idx];
  uint32_t used = side.next_slot.load(std::memory_order_acquire);
  for (uint32_t s = 0; s < used; s++) {
    int spins = 0;
    for (;;) {
      SlotState st = side.states[s].load(std::memory_order_acquire);
      if (st != SlotState::kReserved && st != SlotState::kValid) break;
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  DSTORE_FAULT_POINT(cfg_.fault, "engine.drain.done");
}

Status Engine::collect_committed(uint8_t log_idx, std::vector<LogRecordView>* out) {
  const LogSide& side = sides_[log_idx];
  uint32_t limit = std::max(side.next_slot.load(std::memory_order_acquire), (uint32_t)0);
  if (limit == 0) limit = cfg_.log_slots;  // recovery path: scan everything
  for (uint32_t s = 0; s < limit && s < cfg_.log_slots; s++) {
    LogRecordView rec;
    bool corrupt = false;
    if (!side.log.read(s, &rec, &corrupt)) {
      if (corrupt && side.log.is_committed(s)) {
        // Replaying a log with an unreadable COMMITTED record would build a
        // checkpoint missing (or misordering) committed operations. Fail
        // the pass; the caller surfaces Status::corruption. (Uncommitted +
        // CRC-fail is a torn publication — a crash inside the single-fence
        // window, DESIGN.md §13 — never acknowledged, never replayable:
        // skip it like any other non-committed slot.)
        stats_.log_crc_failures.fetch_add(1, std::memory_order_relaxed);
        return Status::corruption("log side " + std::to_string(log_idx) + " slot " +
                                  std::to_string(s) + " failed its record checksum");
      }
      continue;
    }
    if (!rec.committed || rec.op == OpType::kNoop) continue;
    out->push_back(rec);
  }
  // Replay order is LSN order: a valid linearization because conflicting
  // ops were serialized by CC before their records were appended (§3.7).
  std::sort(out->begin(), out->end(),
            [](const LogRecordView& a, const LogRecordView& b) { return a.lsn < b.lsn; });
  return Status::ok();
}

Status Engine::replay_onto_spare(uint8_t archived_idx) {
  PackedState st = load_state();
  uint8_t spare = st.spare_slot();
  Arena src = pmem_arena(st.shadow_cur);
  Arena dst = pmem_arena(spare);
  auto src_space = SlabAllocator::open(src);
  if (!src_space.is_ok()) return src_space.status();
  uint64_t used = src_space.value().used_bytes();
  // §3.5: "we always create a new copy of the shadow copies" — idempotency:
  // a crash mid-replay never touches the copy recovery would restart from.
  // Copy in chunks, yielding between them: on an oversubscribed host the
  // background checkpoint must not monopolize cores the frontend needs
  // (on the paper's testbed this thread runs on its own core).
  pool_->charge_read(used);
  DSTORE_FAULT_POINT(cfg_.fault, "engine.clone.before_copy");
  constexpr uint64_t kCloneChunk = 256 * 1024;
  size_t clone_chunks = (size_t)((used + kCloneChunk - 1) / kCloneChunk);
  if (cfg_.bulk_exec != nullptr && clone_chunks > 1) {
    cfg_.bulk_exec->run_chunks(clone_chunks, [&](size_t i) {
      uint64_t off = (uint64_t)i * kCloneChunk;
      uint64_t n = std::min(kCloneChunk, used - off);
      std::memcpy(dst.base() + off, src.base() + off, n);
    });
  } else {
    for (uint64_t off = 0; off < used; off += kCloneChunk) {
      uint64_t n = std::min(kCloneChunk, used - off);
      std::memcpy(dst.base() + off, src.base() + off, n);
      std::this_thread::yield();
    }
  }
  DSTORE_FAULT_POINT(cfg_.fault, "engine.clone.after_copy");
  // The clone (and everything replay writes into it) must be persistent by
  // the install root flip; the durability pass below provides it.
  pool_->note_obligation(dst.base(), used, "ckpt:clone");
  auto dst_space_r = SlabAllocator::open(dst);
  if (!dst_space_r.is_ok()) return dst_space_r.status();
  SlabAllocator dst_space = dst_space_r.value();

  std::vector<LogRecordView> records;
  DSTORE_RETURN_IF_ERROR(collect_committed(archived_idx, &records));
  DSTORE_FAULT_POINT(cfg_.fault, "engine.replay.begin");
  DSTORE_RETURN_IF_ERROR(client_->replay(dst_space, records));
  stats_.records_replayed.fetch_add(records.size(), std::memory_order_relaxed);
  DSTORE_FAULT_POINT(cfg_.fault, "engine.replay.done");

  // Durability pass (§3.5): flush every allocated byte of the new copy.
  DSTORE_FAULT_POINT(cfg_.fault, "engine.flush.before_bulk");
  uint64_t out_bytes = dst_space.used_bytes();
  size_t flush_chunks = (size_t)((out_bytes + kCloneChunk - 1) / kCloneChunk);
  if (cfg_.bulk_exec != nullptr && flush_chunks > 1) {
    cfg_.bulk_exec->run_chunks(flush_chunks, [&](size_t i) {
      uint64_t off = (uint64_t)i * kCloneChunk;
      uint64_t n = std::min(kCloneChunk, out_bytes - off);
      pool_->persist_bulk(dst.base() + off, n);
    });
  } else {
    pool_->persist_bulk(dst.base(), out_bytes);
  }
  return Status::ok();
}

void Engine::install_spare(uint8_t /*archived_idx*/) {
  // Durability point: the root flip makes the spare copy current — every
  // obligation noted while building it (clone, replayed metadata) must be
  // persistent before the flip publishes it.
  pool_->check_obligations("ckpt:install");
  // Atomic checkpoint completion: one persisted 8-byte root transition.
  PackedState st = load_state();
  uint8_t spare = st.spare_slot();
  PackedState ns = st;
  ns.shadow_old = st.shadow_cur;
  ns.shadow_cur = spare;
  ns.ckpt_running = false;
  ns.epoch++;
  DSTORE_FAULT_POINT(cfg_.fault, "engine.install.before_root_flip");
  store_state(ns);
  DSTORE_FAULT_POINT(cfg_.fault, "engine.install.after_root_flip");
}

void Engine::recycle_archived(uint8_t archived_idx) {
  DSTORE_FAULT_POINT(cfg_.fault, "engine.recycle.begin");
  LogSide& side = sides_[archived_idx];
  {
    // Reset the volatile mirror under log_mu_ and bump the recycle
    // generation so chunked scans (find_repair_payload) restart instead of
    // reading half-reset state. With next_slot published as 0 no scan
    // touches the slot bytes, so the bulk format below can run outside the
    // lock — the old code formatted without any exclusion against scans,
    // a latent data race this ordering removes.
    MutexGuard g(log_mu_);
    side.gen.fetch_add(1, std::memory_order_acq_rel);
    for (auto& s : side.states) s.store(SlotState::kFree, std::memory_order_relaxed);
    side.name_hashes.assign(cfg_.log_slots, 0);
    side.next_slot.store(0, std::memory_order_release);
  }
  side.log.format();
  side.zeroed.store(true, std::memory_order_release);
  DSTORE_FAULT_POINT(cfg_.fault, "engine.recycle.done");
}

Status Engine::do_checkpoint() {
  // checkpoint_now() runs this on the caller's thread; the role scope makes
  // the quiescence gate treat it as checkpoint work either way.
  lockdep::RoleScope role(lockdep::Role::kCheckpoint);
  bool expected = false;
  if (!ckpt_running_.compare_exchange_strong(expected, true)) {
    return Status::busy("checkpoint already running");
  }
  DSTORE_FAULT_POINT(cfg_.fault, "engine.ckpt.begin");
  auto test_point = [this](const char* p) {
    const char* abandon = abandon_point_.load(std::memory_order_acquire);
    if (abandon != nullptr && std::strcmp(abandon, p) == 0) return false;
    return !cfg_.test_point_hook || cfg_.test_point_hook(p);
  };
  StopWatch watch;
  uint8_t archived_idx;
  uint64_t phase_mark = now_ns();
  {
    MutexGuard g(log_mu_);
    uint8_t active = active_idx_.load(std::memory_order_acquire);
    if (sides_[active].next_slot.load(std::memory_order_acquire) == 0) {
      ckpt_running_.store(false);
      return Status::ok();  // nothing to checkpoint
    }
    if (cfg_.ckpt_mode == EngineConfig::CkptMode::kCow) {
      // CoW snapshot consistency: the snapshot must align exactly with the
      // log cut, so in-flight ops must finish before we write-protect.
      // (This brief stall is inherent to the CoW archetype.)
      LogSide& side = sides_[active];
      uint32_t used = side.next_slot.load(std::memory_order_acquire);
      for (uint32_t s = 0; s < used; s++) {
        int spins = 0;
        for (;;) {
          SlotState st = side.states[s].load(std::memory_order_acquire);
          if (st != SlotState::kReserved && st != SlotState::kValid) break;
          if (++spins > 64) {
            std::this_thread::yield();
            spins = 0;
          }
        }
      }
      PackedState st = load_state();
      cow_target_slot_ = st.spare_slot();
      cow_pages_ = (volatile_space_.used_bytes() + kPageSize - 1) / kPageSize;
      for (size_t i = 0; i < cow_pages_; i++)
        cow_page_done_[i].store(0, std::memory_order_relaxed);
      cow_active_.store(true, std::memory_order_release);
      cow_protect_arena();
    }
    Status s = swap_logs();
    if (!s.is_ok()) {
      if (cfg_.ckpt_mode == EngineConfig::CkptMode::kCow) {
        cow_active_.store(false, std::memory_order_release);
        cow_unprotect_all();
      }
      ckpt_running_.store(false);
      return s;
    }
    archived_idx = 1 - active_idx_.load(std::memory_order_acquire);
  }
  // Phase attribution: mark -> mark deltas land in swap/drain/replay/install.
  auto end_phase = [&](std::atomic<uint64_t>& sink) {
    uint64_t n = now_ns();
    sink.fetch_add(n - phase_mark, std::memory_order_relaxed);
    phase_mark = n;
  };
  end_phase(stats_.ckpt_swap_ns);

  Status result;
  if (!test_point("ckpt:after_swap")) {
    result = Status::internal("abandoned at ckpt:after_swap");
  } else if (cfg_.ckpt_mode == EngineConfig::CkptMode::kDipper) {
    drain_archived(archived_idx);
    end_phase(stats_.ckpt_drain_ns);
    if (!test_point("ckpt:after_drain")) {
      result = Status::internal("abandoned at ckpt:after_drain");
    } else {
      result = replay_onto_spare(archived_idx);
      end_phase(stats_.ckpt_replay_ns);
      if (result.is_ok() && !test_point("ckpt:after_replay")) {
        result = Status::internal("abandoned at ckpt:after_replay");
      }
    }
  } else {
    result = cow_copy_into_spare();
    end_phase(stats_.ckpt_replay_ns);
    if (result.is_ok() && !test_point("ckpt:after_replay")) {
      result = Status::internal("abandoned at ckpt:after_replay");
    }
  }
  if (result.is_ok()) {
    phase_mark = now_ns();
    install_spare(archived_idx);
    stats_.checkpoints.fetch_add(1, std::memory_order_relaxed);
    if (test_point("ckpt:after_install")) {
      recycle_archived(archived_idx);
    }
    end_phase(stats_.ckpt_install_ns);
  }
  stats_.ckpt_total_ns.fetch_add(watch.elapsed_ns(), std::memory_order_relaxed);
  ckpt_running_.store(false);
  return result;
}

// ---------------------------------------------------------------------------
// CoW checkpoint support (§4.5)
// ---------------------------------------------------------------------------

void Engine::cow_protect_arena() {
  mprotect(volatile_base_, cow_pages_ * kPageSize, PROT_READ);
}

void Engine::cow_unprotect_all() {
  cow_active_.store(false, std::memory_order_release);
  mprotect(volatile_base_, cfg_.arena_bytes, PROT_READ | PROT_WRITE);
}

Status Engine::cow_copy_into_spare() {
  // Copier thread: walk all protected pages in 16-page runs ("clients can
  // assist in this copying process" -- faulting writers race us page by
  // page). Batching keeps the copier streaming at media bandwidth, which
  // is exactly why clients' fault copies queue behind it on real PMEM.
  constexpr size_t kBatch = 16;
  for (size_t base = 0; base < cow_pages_; base += kBatch) {
    if (base <= cow_pages_ / 2 && base + kBatch > cow_pages_ / 2 && cfg_.test_point_hook &&
        !cfg_.test_point_hook("ckpt:cow_mid_copy")) {
      cow_unprotect_all();
      return Status::internal("abandoned at ckpt:cow_mid_copy");
    }
    size_t end = std::min(base + kBatch, cow_pages_);
    // Claim a maximal contiguous run within the batch.
    size_t run_start = base;
    while (run_start < end) {
      uint8_t expected = 0;
      if (!cow_page_done_[run_start].compare_exchange_strong(expected, 1,
                                                             std::memory_order_acq_rel)) {
        run_start++;
        continue;
      }
      size_t run_end = run_start + 1;
      while (run_end < end) {
        uint8_t e2 = 0;
        if (!cow_page_done_[run_end].compare_exchange_strong(e2, 1,
                                                             std::memory_order_acq_rel)) {
          break;
        }
        run_end++;
      }
      char* src = volatile_base_ + run_start * kPageSize;
      char* dst = pool_->base() + layout_.arena_off[cow_target_slot_] + run_start * kPageSize;
      size_t bytes = (run_end - run_start) * kPageSize;
      cow_raw_copy(dst, src, bytes);
      pool_->persist_bulk(dst, bytes);
      mprotect(src, bytes, PROT_READ | PROT_WRITE);
      for (size_t pg = run_start; pg < run_end; pg++) {
        cow_page_done_[pg].store(2, std::memory_order_release);
      }
      run_start = run_end;
    }
    std::this_thread::yield();
  }
  cow_active_.store(false, std::memory_order_release);
  return Status::ok();
}

void Engine::cow_copy_page(size_t page_idx) {
  uint8_t expected = 0;
  if (!cow_page_done_[page_idx].compare_exchange_strong(expected, 1,
                                                        std::memory_order_acq_rel)) {
    // Another thread is copying: wait until the page is unprotected.
    int spins = 0;
    while (cow_page_done_[page_idx].load(std::memory_order_acquire) != 2) {
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
    return;
  }
  char* src = volatile_base_ + page_idx * kPageSize;
  char* dst = pool_->base() + layout_.arena_off[cow_target_slot_] + page_idx * kPageSize;
  cow_raw_copy(dst, src, kPageSize);
  pool_->persist_bulk(dst, kPageSize);
  mprotect(src, kPageSize, PROT_READ | PROT_WRITE);
  cow_page_done_[page_idx].store(2, std::memory_order_release);
}

bool Engine::cow_handle_fault(void* addr) {
  auto a = reinterpret_cast<uintptr_t>(addr);
  auto base = reinterpret_cast<uintptr_t>(volatile_base_);
  if (a < base || a >= base + cfg_.arena_bytes) return false;
  size_t page = (a - base) / kPageSize;
  if (cow_active_.load(std::memory_order_acquire) && page < cow_pages_) {
    // §4.5: "a page fault is triggered and a handler copies the page to
    // PMEM. Clients ... must wait until the page is copied before making
    // any modification" — this wait is the CoW tail cost Fig 9 measures.
    cow_copy_page(page);
    stats_.cow_page_faults.fetch_add(1, std::memory_order_relaxed);
  }
  // Address is inside our arena: retry the instruction. If the checkpoint
  // just finished, the page is (or is about to be) writable again.
  return true;
}

}  // namespace dstore::dipper
