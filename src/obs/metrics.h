// Observability core: a lock-cheap metrics registry.
//
// The paper's headline claims are distributional (tailless p99, a flat
// throughput window across checkpoints), so introspection must not perturb
// the distributions it measures. Three primitives, all mutation paths
// wait-free and write-sharded:
//
//   * Counter   — monotone; per-thread cache-line-padded slots, summed on
//                 scrape. The first kStripes threads own exclusive single-
//                 writer slots (plain relaxed load+store, no locked RMW);
//                 later threads stripe fetch_adds over a shared bank;
//   * Gauge     — signed up/down (same slot scheme) with a rare set();
//   * Histogram — HdrHistogram-style log-bucketed latency distribution
//                 (32 sub-buckets per octave, <1.6% relative error), with
//                 count/sum/max striped per thread and the sparse bucket
//                 array shared.
//
// A registry also accepts *callback* metrics (counter_fn/gauge_fn): scrape-
// time reads of atomics that already exist elsewhere (pmem::IoStats,
// ssd::DeviceStats, dipper::EngineStats), which cost the hot path nothing.
//
// Scrape model: snapshot() produces a stable vector of MetricSnapshot;
// scrape_json()/scrape_prometheus() render it. Snapshots from several
// registries merge (ShardedStore's per-shard rollup) with merge().
// reset() zeroes the registry-OWNED metrics only — callback metrics keep
// reading their upstream sources (scrape-vs-reset semantics).
//
// Compile-time kill switch: configuring with -DDSTORE_METRICS=OFF defines
// DSTORE_METRICS_DISABLED, which turns every mutation (add/set/record) into
// an empty inline function — registration, lookup and scrape still work, so
// every consumer compiles and scrapes read as zeros.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/lockdep.h"

namespace dstore::obs {

// Write-side stripes. The first kStripes threads to touch a metric each own
// an *exclusive* slot: single-writer, so add() is a plain relaxed load+store
// (~2ns) instead of a locked fetch_add (~10-15ns) — the difference matters
// because every op pays a handful of counter adds, against a <2% latency
// budget. Threads past the first kStripes (thread churn in long-lived
// processes) fall back to a second bank of shared slots updated with
// fetch_add, striped so they rarely contend. Every slot is cache-line
// padded so no two ever share a line.
inline constexpr size_t kStripes = 16;
inline constexpr size_t kSlotCount = 2 * kStripes;  // exclusive bank + shared bank

// Stable per-thread slot index. Returns < kStripes for the first kStripes
// threads (exclusive, single-writer) and kStripes + (n % kStripes) for
// later ones (shared, fetch_add only).
inline size_t stripe_index() {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx = [] {
    size_t n = next.fetch_add(1, std::memory_order_relaxed);
    return n < kStripes ? n : kStripes + (n % kStripes);
  }();
  return idx;
}

// Single-writer increment for exclusive slots; locked RMW for shared ones.
// The branch is perfectly predicted (a thread's bank never changes).
template <typename T>
inline void slot_add(std::atomic<T>& a, size_t idx, T v) {
  if (idx < kStripes) {
    a.store(a.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
  } else {
    a.fetch_add(v, std::memory_order_relaxed);
  }
}

class Counter {
 public:
  void add(uint64_t v = 1) {
#if !defined(DSTORE_METRICS_DISABLED)
    size_t i = stripe_index();
    slot_add(slots_[i].v, i, v);
#else
    (void)v;
#endif
  }
  // Hot-path variant for callers that batch several adds behind one
  // stripe_index() lookup; `idx` must be this thread's stripe_index().
  void add_at(size_t idx, uint64_t v) {
#if !defined(DSTORE_METRICS_DISABLED)
    slot_add(slots_[idx].v, idx, v);
#else
    (void)idx;
    (void)v;
#endif
  }
  void inc() { add(1); }

  uint64_t value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  std::array<Slot, kSlotCount> slots_;
};

class Gauge {
 public:
  void add(int64_t d) {
#if !defined(DSTORE_METRICS_DISABLED)
    size_t i = stripe_index();
    slot_add(slots_[i].v, i, d);
#else
    (void)d;
#endif
  }
  void sub(int64_t d) { add(-d); }
  // Absolute store; NOT for the hot path (it zeroes every stripe, racing
  // concurrent add()s). Use for low-rate level gauges set by one thread.
  void set(int64_t v) {
#if !defined(DSTORE_METRICS_DISABLED)
    for (size_t i = 1; i < slots_.size(); i++) slots_[i].v.store(0, std::memory_order_relaxed);
    slots_[0].v.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  int64_t value() const {
    int64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> v{0};
  };
  std::array<Slot, kSlotCount> slots_;
};

struct HistogramBucket {
  uint64_t upper = 0;  // inclusive upper bound of the bucket's value range
  uint64_t count = 0;
};

class Histogram {
 public:
  Histogram();

  void record(uint64_t v) {
#if !defined(DSTORE_METRICS_DISABLED)
    // The bucket array is shared by all threads, so it always pays the
    // locked RMW; count/sum/max are per-slot and take the single-writer
    // fast path for exclusive slots.
    buckets_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
    size_t i = stripe_index();
    Slot& s = slots_[i];
    slot_add(s.count, i, (uint64_t)1);
    slot_add(s.sum, i, v);
    if (i < kStripes) {
      if (s.max.load(std::memory_order_relaxed) < v) s.max.store(v, std::memory_order_relaxed);
    } else {
      uint64_t prev = s.max.load(std::memory_order_relaxed);
      while (prev < v && !s.max.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
      }
    }
#else
    (void)v;
#endif
  }

  uint64_t count() const;
  uint64_t sum() const;
  uint64_t max() const;
  double mean() const;
  // Upper bucket bound at quantile q in [0,1].
  uint64_t value_at_quantile(double q) const;
  uint64_t p50() const { return value_at_quantile(0.50); }
  uint64_t p99() const { return value_at_quantile(0.99); }

  // Non-empty buckets, ascending by bound.
  std::vector<HistogramBucket> nonzero_buckets() const;
  void reset();

  static int bucket_for(uint64_t v);
  static uint64_t bucket_upper_bound(int bucket);

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static constexpr int kOctaves = 40;       // up to ~2^40 (~18 min in ns)
  static constexpr int kNumBuckets = kOctaves << kSubBucketBits;

  struct alignas(64) Slot {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  std::array<Slot, kSlotCount> slots_;
  std::vector<std::atomic<uint64_t>> buckets_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

// One scraped metric, decoupled from its live source so snapshots can be
// merged across registries (per-shard rollup) and rendered offline.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  double value = 0;  // counter / gauge reading
  // Histogram fields:
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<HistogramBucket> buckets;

  double mean() const { return count != 0 ? (double)sum / (double)count : 0.0; }
  uint64_t value_at_quantile(double q) const;
};

// Name -> metric registry. Registration (counter()/gauge()/histogram()/
// *_fn()) takes a mutex and is meant for setup time; the returned handles
// are stable for the registry's lifetime and are what the hot path uses.
// Registering a name twice returns the existing metric of that name.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name, std::string_view help);
  Gauge* gauge(std::string_view name, std::string_view help);
  Histogram* histogram(std::string_view name, std::string_view help);

  // Scrape-time sampled metrics: the callback runs on snapshot(), never on
  // the hot path. For exporting pre-existing atomics (engine/pool/device
  // stats) at zero added cost.
  void counter_fn(std::string_view name, std::string_view help,
                  std::function<uint64_t()> fn);
  void gauge_fn(std::string_view name, std::string_view help, std::function<double()> fn);

  // Lookup by name; nullptr if absent or of a different kind.
  Counter* find_counter(std::string_view name) const;
  Gauge* find_gauge(std::string_view name) const;
  Histogram* find_histogram(std::string_view name) const;
  // Scraped value of any counter/gauge (owned or callback); 0 if absent.
  double value(std::string_view name) const;
  uint64_t counter_value(std::string_view name) const { return (uint64_t)value(name); }

  std::vector<MetricSnapshot> snapshot() const;
  std::string scrape_json() const { return to_json(snapshot()); }
  std::string scrape_prometheus() const { return to_prometheus(snapshot()); }

  // Zero every OWNED counter/gauge/histogram. Callback metrics are
  // untouched — they re-read their sources on the next scrape.
  void reset();

  // ---- snapshot utilities (rollups, rendering) ----------------------------
  // Merge several scrapes into one: counters/gauges sum, histograms merge
  // bucket-wise. First-seen order is preserved.
  static std::vector<MetricSnapshot> merge(
      const std::vector<std::vector<MetricSnapshot>>& scrapes);
  static std::string to_json(const std::vector<MetricSnapshot>& snaps);
  static std::string to_prometheus(const std::vector<MetricSnapshot>& snaps);

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
  };
  Entry* find_entry(std::string_view name) const;

  mutable Mutex mu_{"obs.registry"};
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

}  // namespace dstore::obs
