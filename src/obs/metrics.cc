#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace dstore::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram() : buckets_(kNumBuckets) {}

// Same bucketing as common/histogram.h: values below 2^b are exact; above,
// each octave [2^e, 2^(e+1)) splits into 2^b sub-buckets (<= 2^-b relative
// error per bucket).
int Histogram::bucket_for(uint64_t v) {
  constexpr int b = kSubBucketBits;
  if (v < (1ull << b)) return (int)v;
  int e = 63 - std::countl_zero(v);
  int idx = ((e - b + 1) << b) + (int)((v >> (e - b)) - (1ull << b));
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  return idx;
}

uint64_t Histogram::bucket_upper_bound(int bucket) {
  constexpr int b = kSubBucketBits;
  if (bucket < (1 << b)) return (uint64_t)bucket;
  int shift = (bucket >> b) - 1;
  uint64_t sub = bucket & ((1u << b) - 1);
  return (((1ull << b) + sub + 1) << shift) - 1;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const Slot& s : slots_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

uint64_t Histogram::sum() const {
  uint64_t total = 0;
  for (const Slot& s : slots_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

uint64_t Histogram::max() const {
  uint64_t m = 0;
  for (const Slot& s : slots_) m = std::max(m, s.max.load(std::memory_order_relaxed));
  return m;
}

double Histogram::mean() const {
  uint64_t c = count();
  return c == 0 ? 0.0 : (double)sum() / (double)c;
}

uint64_t Histogram::value_at_quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = (uint64_t)(q * (double)total);
  if (target >= total) target = total - 1;
  uint64_t seen = 0;
  uint64_t cap = max();  // bucket bounds can overshoot the true maximum
  for (int i = 0; i < kNumBuckets; i++) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) {
      uint64_t ub = bucket_upper_bound(i);
      return ub > cap ? cap : ub;
    }
  }
  return cap;
}

std::vector<HistogramBucket> Histogram::nonzero_buckets() const {
  std::vector<HistogramBucket> out;
  for (int i = 0; i < kNumBuckets; i++) {
    uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) out.push_back({bucket_upper_bound(i), c});
  }
  return out;
}

void Histogram::reset() {
  for (Slot& s : slots_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricSnapshot
// ---------------------------------------------------------------------------

uint64_t MetricSnapshot::value_at_quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = (uint64_t)(q * (double)count);
  if (target >= count) target = count - 1;
  uint64_t seen = 0;
  for (const HistogramBucket& b : buckets) {
    seen += b.count;
    if (seen > target) return max != 0 ? std::min(b.upper, max) : b.upper;
  }
  return max;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Entry* MetricsRegistry::find_entry(std::string_view name) const {
  for (const auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(std::string_view name, std::string_view help) {
  MutexGuard g(mu_);
  if (Entry* e = find_entry(name)) return e->counter.get();
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->type = MetricType::kCounter;
  e->counter = std::make_unique<Counter>();
  Counter* out = e->counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  MutexGuard g(mu_);
  if (Entry* e = find_entry(name)) return e->gauge.get();
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->type = MetricType::kGauge;
  e->gauge = std::make_unique<Gauge>();
  Gauge* out = e->gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

Histogram* MetricsRegistry::histogram(std::string_view name, std::string_view help) {
  MutexGuard g(mu_);
  if (Entry* e = find_entry(name)) return e->histogram.get();
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->type = MetricType::kHistogram;
  e->histogram = std::make_unique<Histogram>();
  Histogram* out = e->histogram.get();
  entries_.push_back(std::move(e));
  return out;
}

void MetricsRegistry::counter_fn(std::string_view name, std::string_view help,
                                 std::function<uint64_t()> fn) {
  MutexGuard g(mu_);
  if (find_entry(name) != nullptr) return;
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->type = MetricType::kCounter;
  e->counter_fn = std::move(fn);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::gauge_fn(std::string_view name, std::string_view help,
                               std::function<double()> fn) {
  MutexGuard g(mu_);
  if (find_entry(name) != nullptr) return;
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->type = MetricType::kGauge;
  e->gauge_fn = std::move(fn);
  entries_.push_back(std::move(e));
}

Counter* MetricsRegistry::find_counter(std::string_view name) const {
  MutexGuard g(mu_);
  Entry* e = find_entry(name);
  return e != nullptr ? e->counter.get() : nullptr;
}

Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  MutexGuard g(mu_);
  Entry* e = find_entry(name);
  return e != nullptr ? e->gauge.get() : nullptr;
}

Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  MutexGuard g(mu_);
  Entry* e = find_entry(name);
  return e != nullptr ? e->histogram.get() : nullptr;
}

double MetricsRegistry::value(std::string_view name) const {
  MutexGuard g(mu_);
  Entry* e = find_entry(name);
  if (e == nullptr) return 0;
  if (e->counter) return (double)e->counter->value();
  if (e->gauge) return (double)e->gauge->value();
  if (e->counter_fn) return (double)e->counter_fn();
  if (e->gauge_fn) return e->gauge_fn();
  return 0;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  MutexGuard g(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSnapshot s;
    s.name = e->name;
    s.help = e->help;
    s.type = e->type;
    if (e->counter) {
      s.value = (double)e->counter->value();
    } else if (e->gauge) {
      s.value = (double)e->gauge->value();
    } else if (e->counter_fn) {
      s.value = (double)e->counter_fn();
    } else if (e->gauge_fn) {
      s.value = e->gauge_fn();
    } else if (e->histogram) {
      s.count = e->histogram->count();
      s.sum = e->histogram->sum();
      s.max = e->histogram->max();
      s.buckets = e->histogram->nonzero_buckets();
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::reset() {
  MutexGuard g(mu_);
  for (const auto& e : entries_) {
    if (e->counter) e->counter->reset();
    if (e->gauge) e->gauge->reset();
    if (e->histogram) e->histogram->reset();
  }
}

// ---------------------------------------------------------------------------
// Snapshot utilities
// ---------------------------------------------------------------------------

std::vector<MetricSnapshot> MetricsRegistry::merge(
    const std::vector<std::vector<MetricSnapshot>>& scrapes) {
  std::vector<MetricSnapshot> out;
  std::map<std::string, size_t> index;
  for (const auto& scrape : scrapes) {
    for (const MetricSnapshot& s : scrape) {
      auto it = index.find(s.name);
      if (it == index.end()) {
        index.emplace(s.name, out.size());
        out.push_back(s);
        continue;
      }
      MetricSnapshot& m = out[it->second];
      if (s.type == MetricType::kHistogram) {
        m.count += s.count;
        m.sum += s.sum;
        m.max = std::max(m.max, s.max);
        // Bucket lists are sparse and sorted by bound; merge-join them.
        std::vector<HistogramBucket> merged;
        merged.reserve(m.buckets.size() + s.buckets.size());
        size_t i = 0;
        size_t j = 0;
        while (i < m.buckets.size() || j < s.buckets.size()) {
          if (j >= s.buckets.size() ||
              (i < m.buckets.size() && m.buckets[i].upper < s.buckets[j].upper)) {
            merged.push_back(m.buckets[i++]);
          } else if (i >= m.buckets.size() || s.buckets[j].upper < m.buckets[i].upper) {
            merged.push_back(s.buckets[j++]);
          } else {
            merged.push_back({m.buckets[i].upper, m.buckets[i].count + s.buckets[j].count});
            i++;
            j++;
          }
        }
        m.buckets = std::move(merged);
      } else {
        m.value += s.value;  // counters and gauges both sum across shards
      }
    }
  }
  return out;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_number(std::string& out, double v) {
  char buf[64];
  // Counters and integer gauges render without a fraction.
  if (v == (double)(int64_t)v) {
    snprintf(buf, sizeof(buf), "%" PRId64, (int64_t)v);
  } else {
    snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json(const std::vector<MetricSnapshot>& snaps) {
  std::string out = "{\n  \"version\": 1,\n  \"metrics\": [\n";
  for (size_t n = 0; n < snaps.size(); n++) {
    const MetricSnapshot& s = snaps[n];
    out += "    {\"name\": \"";
    append_json_escaped(out, s.name);
    out += "\", \"type\": \"";
    out += s.type == MetricType::kCounter    ? "counter"
           : s.type == MetricType::kGauge    ? "gauge"
                                             : "histogram";
    out += "\", \"help\": \"";
    append_json_escaped(out, s.help);
    out += "\", ";
    if (s.type == MetricType::kHistogram) {
      char buf[256];
      snprintf(buf, sizeof(buf),
               "\"count\": %llu, \"sum\": %llu, \"max\": %llu, \"mean\": %.1f, "
               "\"p50\": %llu, \"p99\": %llu, \"p999\": %llu",
               (unsigned long long)s.count, (unsigned long long)s.sum,
               (unsigned long long)s.max, s.mean(),
               (unsigned long long)s.value_at_quantile(0.50),
               (unsigned long long)s.value_at_quantile(0.99),
               (unsigned long long)s.value_at_quantile(0.999));
      out += buf;
    } else {
      out += "\"value\": ";
      append_number(out, s.value);
    }
    out += n + 1 < snaps.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string MetricsRegistry::to_prometheus(const std::vector<MetricSnapshot>& snaps) {
  std::string out;
  char buf[128];
  for (const MetricSnapshot& s : snaps) {
    if (!s.help.empty()) {
      out += "# HELP " + s.name + " " + s.help + "\n";
    }
    out += "# TYPE " + s.name + " ";
    out += s.type == MetricType::kCounter    ? "counter"
           : s.type == MetricType::kGauge    ? "gauge"
                                             : "histogram";
    out += "\n";
    if (s.type == MetricType::kHistogram) {
      uint64_t cum = 0;
      for (const HistogramBucket& b : s.buckets) {
        cum += b.count;
        snprintf(buf, sizeof(buf), "%s_bucket{le=\"%llu\"} %llu\n", s.name.c_str(),
                 (unsigned long long)b.upper, (unsigned long long)cum);
        out += buf;
      }
      snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %llu\n", s.name.c_str(),
               (unsigned long long)s.count);
      out += buf;
      snprintf(buf, sizeof(buf), "%s_sum %llu\n", s.name.c_str(), (unsigned long long)s.sum);
      out += buf;
      snprintf(buf, sizeof(buf), "%s_count %llu\n", s.name.c_str(),
               (unsigned long long)s.count);
      out += buf;
    } else {
      out += s.name + " ";
      std::string num;
      append_number(num, s.value);
      out += num + "\n";
    }
  }
  return out;
}

}  // namespace dstore::obs
