// OpTrace — the per-operation trace context carried through the §4.3 write
// pipeline.
//
// Each oput/oget/odelete/owrite stack-allocates one OpTrace. It records:
//
//   * op and failure counts (always);
//   * the op's end-to-end latency (sampled);
//   * per-stage spans of the nine-step pipeline — log append, pool alloc,
//     metadata zone, btree, SSD batch, commit flush (sampled);
//   * per-op substrate counts — cache-line flushes and fences performed by
//     this thread in pmem::Pool, and IO descriptors/retries issued through
//     the op's ssd::IoQueue (sampled).
//
// Publication happens once, in finish() (or the destructor), into the
// OpMetrics handle bundle the store registered at construction. A sampled
// trace increments an active-ops gauge for its lifetime; it returning to
// zero when the store idles is the "no span leaks" invariant tests assert.
//
// Cost model: the always-on portion is one thread-local tick and one
// striped counter add (single-digit ns — the <2% oput p50 budget is why
// even the two now_ns() reads for latency are sampled; a clock read costs
// ~20ns against a ~1.2us pipeline). Everything else rides on the 1-in-
// kSampleEvery sampled trace (per-thread tick, so every thread samples).
// Sampling is decided before the op runs, independent of its duration, so
// sampled latency/stage distributions are unbiased; histogram counts
// reflect sampled ops, not total ops (dstore_*_total counters are exact).
// With DSTORE_METRICS_DISABLED the whole class compiles to an empty object
// and every call inlines to nothing.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/lockdep.h"
#include "obs/metrics.h"
#include "pmem/pool.h"

namespace dstore::obs {

// Pipeline stages (§4.3, Figure 4). Not every op visits every stage.
enum Stage : int {
  kStageLogAppend = 0,   // step 2b: write+flush the reserved log record
  kStagePoolAlloc,       // steps 3-4: block/metadata pool allocation
  kStageMetaZone,        // step 6: metadata-zone entry update
  kStageBtree,           // step 7: btree record
  kStageSsdBatch,        // step 8: submit + reap the NVMe queue-pair batch
  kStageCommitFlush,     // step 9: commit flush (op becomes durable)
  kStageCount,
};

inline const char* stage_name(int s) {
  switch (s) {
    case kStageLogAppend: return "log_append";
    case kStagePoolAlloc: return "pool_alloc";
    case kStageMetaZone: return "meta_zone";
    case kStageBtree: return "btree";
    case kStageSsdBatch: return "ssd_batch";
    case kStageCommitFlush: return "commit_flush";
    default: return "?";
  }
}

// The registry handles one op type publishes into. Built once per store;
// unset (nullptr) members simply skip that recording.
struct OpMetrics {
  Counter* ops = nullptr;       // attempts (success + failure)
  Counter* failures = nullptr;
  Gauge* active = nullptr;      // in-flight traced ops (span-leak canary)
  // Exact data-plane counters (ssd_io_batches_total & co). The op
  // accumulates them in plain members and publishes all of them in
  // finish() behind a single stripe lookup — cheaper than a striped add
  // per batch on the hot path.
  Counter* ssd_batches = nullptr;
  Counter* ssd_ios = nullptr;
  Counter* ssd_coalesced = nullptr;
  Histogram* latency = nullptr;
  Histogram* stage[kStageCount] = {};
  Histogram* flushes_per_op = nullptr;  // pmem cache-line flushes (this thread)
  Histogram* fences_per_op = nullptr;
  Histogram* ios_per_op = nullptr;      // SSD descriptors submitted
  Histogram* io_retries_per_op = nullptr;
};

class OpTrace {
 public:
  // One op in kSampleEvery carries the full stage/substrate trace.
  static constexpr uint32_t kSampleEvery = 16;

#if !defined(DSTORE_METRICS_DISABLED)
  OpTrace(const OpMetrics& m, pmem::Pool* pool) : m_(&m), pool_(pool) {
    static thread_local uint32_t tick = 0;
    sampled_ = (tick++ % kSampleEvery) == 0;
    if (sampled_) {
      // The sampled-only state is deliberately left uninitialized on the
      // (common) unsampled path; initialize it here.
      for (int s = 0; s < kStageCount; s++) stage_ns_[s] = 0;
      flushes0_ = 0;
      fences0_ = 0;
      start_ns_ = now_ns();
      if (pool_ != nullptr) {
        auto c = pool_->thread_io_counts();
        flushes0_ = c.flushes;
        fences0_ = c.fences;
      }
      if (m_->active != nullptr) m_->active->add(1);
    }
  }

  ~OpTrace() { finish(); }
  OpTrace(const OpTrace&) = delete;
  OpTrace& operator=(const OpTrace&) = delete;

  // Enter `stage`, closing the span of whatever stage was current. Stages
  // may be re-entered; spans accumulate.
  void enter(int stage) {
    if (!sampled_) return;
    uint64_t n = now_ns();
    if (cur_ >= 0) stage_ns_[cur_] += n - mark_;
    cur_ = stage;
    mark_ = n;
  }
  // Close the current span without entering another stage.
  void leave() {
    if (!sampled_ || cur_ < 0) return;
    stage_ns_[cur_] += now_ns() - mark_;
    cur_ = -1;
  }

  // Attribute the op's data-plane IO (descriptor count, resubmit count).
  // Plain member adds: published (exactly or as sampled per-op histograms)
  // once, in finish().
  void add_io(uint64_t descriptors, uint64_t retries) {
    ios_ += descriptors;
    io_retries_ += retries;
  }
  // One submitted batch: `issued` descriptors, `coalesced` block merges.
  void add_batch(uint64_t issued, uint64_t coalesced) {
    batches_++;
    ios_issued_ += issued;
    coalesced_ += coalesced;
  }

  // Mark the op successful; an un-succeeded trace publishes as a failure.
  void succeed() { ok_ = true; }

  void finish() {
    if (done_) return;
    done_ = true;
    // One stripe lookup covers every exact counter this op touches.
    size_t idx = stripe_index();
    if (m_->ops != nullptr) m_->ops->add_at(idx, 1);
    if (!ok_ && m_->failures != nullptr) m_->failures->add_at(idx, 1);
    if (batches_ != 0) {
      if (m_->ssd_batches != nullptr) m_->ssd_batches->add_at(idx, batches_);
      if (m_->ssd_ios != nullptr) m_->ssd_ios->add_at(idx, ios_issued_);
      if (m_->ssd_coalesced != nullptr) m_->ssd_coalesced->add_at(idx, coalesced_);
    }
    if (sampled_) {
      leave();
      if (m_->latency != nullptr) m_->latency->record(now_ns() - start_ns_);
      for (int s = 0; s < kStageCount; s++) {
        if (stage_ns_[s] != 0 && m_->stage[s] != nullptr) m_->stage[s]->record(stage_ns_[s]);
      }
      if (pool_ != nullptr && (m_->flushes_per_op != nullptr || m_->fences_per_op != nullptr)) {
        auto c = pool_->thread_io_counts();
        if (m_->flushes_per_op != nullptr) m_->flushes_per_op->record(c.flushes - flushes0_);
        if (m_->fences_per_op != nullptr) m_->fences_per_op->record(c.fences - fences0_);
      }
      if (m_->ios_per_op != nullptr) m_->ios_per_op->record(ios_);
      if (m_->io_retries_per_op != nullptr && io_retries_ != 0) {
        m_->io_retries_per_op->record(io_retries_);
      }
      if (m_->active != nullptr) m_->active->sub(1);
    }
  }

  bool sampled() const { return sampled_; }

 private:
  const OpMetrics* m_;
  pmem::Pool* pool_;
  int cur_ = -1;
  bool sampled_ = false;
  bool ok_ = false;
  bool done_ = false;
  // Always-on accumulators for the exact data-plane counters (and, when
  // sampled, the per-op IO histograms).
  uint64_t ios_ = 0;
  uint64_t io_retries_ = 0;
  uint64_t batches_ = 0;
  uint64_t ios_issued_ = 0;
  uint64_t coalesced_ = 0;
  // Sampled-only state: initialized in the constructor iff sampled_, and
  // only ever read behind a sampled_ check.
  uint64_t start_ns_;
  uint64_t mark_;
  uint64_t stage_ns_[kStageCount];
  uint64_t flushes0_;
  uint64_t fences0_;
#else
  // Metrics compiled out: every member function is an empty inline no-op.
  OpTrace(const OpMetrics& m, pmem::Pool* pool) {
    (void)m;
    (void)pool;
  }
  void enter(int stage) { (void)stage; }
  void leave() {}
  void add_io(uint64_t descriptors, uint64_t retries) {
    (void)descriptors;
    (void)retries;
  }
  void add_batch(uint64_t issued, uint64_t coalesced) {
    (void)issued;
    (void)coalesced;
  }
  void succeed() {}
  void finish() {}
  bool sampled() const { return false; }
#endif

  // Lockdep quiescence gate: an OpTrace's lifetime is exactly the §4.3
  // foreground op scope, so it carries the hot-path marker. Empty unless
  // DSTORE_LOCKDEP is ON.
  lockdep::HotOpScope hot_scope_;
};

}  // namespace dstore::obs
