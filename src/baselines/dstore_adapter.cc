#include "baselines/dstore_adapter.h"

#include "common/clock.h"

namespace dstore::baselines {

Result<std::unique_ptr<DStoreAdapter>> DStoreAdapter::make(DStoreVariantConfig cfg,
                                                           const LatencyModel& latency) {
  auto a = std::unique_ptr<DStoreAdapter>(new DStoreAdapter());
  a->cfg_ = cfg;
  a->store_cfg_.max_objects = cfg.max_objects;
  a->store_cfg_.num_blocks = cfg.num_blocks;
  a->store_cfg_.observational_equivalence = cfg.observational_equivalence;
  a->store_cfg_.ssd_qd = cfg.ssd_qd;
  a->store_cfg_.early_ack = cfg.early_ack;
  a->store_cfg_.engine.arena_bytes = DStoreConfig::suggested_arena_bytes(cfg.max_objects);
  a->store_cfg_.engine.log_slots = cfg.log_slots;
  a->store_cfg_.engine.background_checkpointing = cfg.background_checkpointing;
  a->store_cfg_.engine.ckpt_mode = cfg.ckpt_mode;
  a->store_cfg_.engine.physical_logging = cfg.physical_logging;

  a->pool_ = std::make_unique<pmem::Pool>(DStoreConfig::required_pool_bytes(a->store_cfg_),
                                          pmem::Pool::Mode::kDirect, latency);
  ssd::DeviceConfig dc;
  dc.num_blocks = cfg.num_blocks;
  dc.latency = latency;
  a->device_ = std::make_unique<ssd::RamBlockDevice>(dc);
  auto s = DStore::create(a->pool_.get(), a->device_.get(), a->store_cfg_);
  if (!s.is_ok()) return s.status();
  a->store_ = std::move(s).value();
  return a;
}

DStoreAdapter::~DStoreAdapter() = default;

void* DStoreAdapter::open_ctx() { return store_->ds_init(); }
void DStoreAdapter::close_ctx(void* ctx) { store_->ds_finalize(static_cast<ds_ctx_t*>(ctx)); }

Status DStoreAdapter::put(void* ctx, std::string_view key, const void* value, size_t size) {
  return store_->oput(static_cast<ds_ctx_t*>(ctx), key, value, size);
}

Result<size_t> DStoreAdapter::get(void* ctx, std::string_view key, void* buf, size_t cap) {
  return store_->oget(static_cast<ds_ctx_t*>(ctx), key, buf, cap);
}

Status DStoreAdapter::del(void* ctx, std::string_view key) {
  return store_->odelete(static_cast<ds_ctx_t*>(ctx), key);
}

workload::SpaceBreakdown DStoreAdapter::space_usage() {
  auto u = store_->space_usage();
  return {u.dram_bytes, u.pmem_bytes, u.ssd_bytes};
}

Result<workload::KVStore::RecoveryTiming> DStoreAdapter::crash_and_recover() {
  store_->engine().stop_background();
  store_.reset();  // SIGKILL-equivalent for DRAM state
  device_->crash();
  RecoveryTiming t;
  // Table 4 instrumentation: DStore recovery = reconstruct the volatile
  // space from the shadow copies (metadata) + replay the active log
  // (replay). The engine does both inside recover(); we time the whole and
  // attribute by the engine's internal proportions: the dominant metadata
  // cost is the PMEM->DRAM copy, measured separately below.
  auto r = DStore::recover(pool_.get(), device_.get(), store_cfg_);
  if (!r.is_ok()) return r.status();
  store_ = std::move(r).value();
  t.metadata_ms = store_->engine().stats().recovery_metadata_ns.load() / 1e6;
  t.replay_ms = store_->engine().stats().recovery_replay_ns.load() / 1e6;
  return t;
}

DStoreVariantConfig DStoreAdapter::dipper_variant() {
  DStoreVariantConfig c;
  c.display_name = "DStore";
  return c;
}
DStoreVariantConfig DStoreAdapter::cow_variant() {
  DStoreVariantConfig c;
  c.ckpt_mode = dipper::EngineConfig::CkptMode::kCow;
  c.display_name = "DStore-CoW";
  return c;
}
DStoreVariantConfig DStoreAdapter::no_oe_variant() {
  DStoreVariantConfig c;
  c.observational_equivalence = false;
  c.display_name = "DStore-noOE";
  return c;
}
DStoreVariantConfig DStoreAdapter::logical_cow_variant() {
  DStoreVariantConfig c;
  c.ckpt_mode = dipper::EngineConfig::CkptMode::kCow;
  c.observational_equivalence = false;
  c.display_name = "LogicalLog+CoW";
  return c;
}
DStoreVariantConfig DStoreAdapter::naive_physical_variant() {
  DStoreVariantConfig c;
  c.ckpt_mode = dipper::EngineConfig::CkptMode::kCow;
  c.observational_equivalence = false;
  c.physical_logging = true;
  c.display_name = "PhysLog+CoW";
  return c;
}

}  // namespace dstore::baselines
