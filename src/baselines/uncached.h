// UncachedStore — the MongoDB-PMSE archetype (§2.1, Table 1: "Inline
// Persistence", uncached).
//
// Design reproduced: all data lives in-place in PMEM; every update is a
// crash-consistent transaction (pmemobj style): the new record is written
// to a fresh slot with a validity-marker-last protocol, the old slot is
// then invalidated, and the transaction machinery adds undo-log writes and
// extra fences per op. A coarse store-wide transaction latch models PMSE's
// measured poor concurrency.
//
// The behaviours the paper measures:
//   * no checkpoints at all => perfectly flat throughput (Fig 7) and no
//     checkpoint-induced tail (Fig 1);
//   * per-op transaction + flush overhead => "the overheads of cache
//     flushes and transactions prevent it from achieving good performance"
//     (Fig 5/7);
//   * near-instant recovery (a slot scan, no log replay) and the smallest
//     footprint (no volatile cache) — Table 4, Fig 10, Table 5.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/lockdep.h"
#include "pmem/pool.h"
#include "workload/kv_interface.h"

namespace dstore::baselines {

struct UncachedConfig {
  size_t slot_bytes = 8192;   // fixed record slot (header + key + value)
  uint64_t num_slots = 1 << 15;
  // Fixed per-op cost of the full MongoDB stack above the PMSE engine
  // (BSON, command dispatch, sessions); calibrated to published MongoDB
  // operation latencies. The engine-level transaction costs are charged
  // separately and for real (see charge_tx_overhead).
  uint64_t stack_overhead_ns = 22000;
  const char* display_name = "MongoDB-PMSE";
};

class UncachedStore final : public workload::KVStore {
 public:
  static Result<std::unique_ptr<UncachedStore>> make(UncachedConfig cfg,
                                                     const LatencyModel& latency);

  Status put(void* ctx, std::string_view key, const void* value, size_t size) override;
  Result<size_t> get(void* ctx, std::string_view key, void* buf, size_t cap) override;
  Status del(void* ctx, std::string_view key) override;
  const char* name() const override { return cfg_.display_name; }
  workload::SpaceBreakdown space_usage() override;
  Result<RecoveryTiming> crash_and_recover() override;

  pmem::Pool& pool() { return *pool_; }

 private:
  explicit UncachedStore(UncachedConfig cfg) : cfg_(cfg) {}

  // On-PMEM slot: header + key + value, validity via non-zero seq.
  struct SlotHeader {
    uint64_t seq;  // 0 = free; otherwise global sequence (newest wins)
    uint32_t key_len;
    uint32_t value_len;
  };

  char* slot_at(uint64_t idx) const { return pool_->base() + idx * cfg_.slot_bytes; }
  size_t slot_capacity() const { return cfg_.slot_bytes - sizeof(SlotHeader); }

  // Emulate the pmemobj transaction bookkeeping around a data write:
  // undo-log append + metadata snapshots + the extra fences WHISPER-style
  // analyses attribute to durable transactions.
  void charge_tx_overhead(size_t data_bytes);

  UncachedConfig cfg_;
  std::unique_ptr<pmem::Pool> pool_;

  SpinLock tx_mu_{"baseline.tx"};  // PMSE-style coarse transaction latch
  std::map<std::string, uint64_t> index_;  // key -> slot (rebuilt on recovery)
  std::vector<uint64_t> free_slots_;
  uint64_t next_seq_ = 1;
};

}  // namespace dstore::baselines
