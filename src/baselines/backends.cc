#include "baselines/backends.h"

#include <cstdio>
#include <functional>

#include "baselines/cached_btree.h"
#include "baselines/cached_lsm.h"
#include "baselines/dstore_adapter.h"
#include "baselines/remote_adapter.h"
#include "baselines/sharded_adapter.h"
#include "baselines/uncached.h"

namespace dstore::baselines {

namespace {

using Factory =
    std::function<std::unique_ptr<workload::KVStore>(const BackendParams&)>;

std::unique_ptr<workload::KVStore> make_dstore_variant(DStoreVariantConfig cfg,
                                                       const BackendParams& p) {
  // Capacity: keyspace + 50% churn headroom.
  cfg.max_objects = p.objects * 2;
  cfg.num_blocks = p.objects * 6;
  cfg.log_slots = 16384;
  cfg.ssd_qd = p.ssd_qd;
  auto r = DStoreAdapter::make(cfg, p.latency);
  if (!r.is_ok()) {
    fprintf(stderr, "make %s failed: %s\n", cfg.display_name, r.status().to_string().c_str());
    return nullptr;
  }
  return std::move(r).value();
}

struct Entry {
  const char* name;
  Factory make;
};

const Entry kBackends[] = {
    {"DStore",
     [](const BackendParams& p) { return make_dstore_variant(DStoreAdapter::dipper_variant(), p); }},
    {"DStore-CoW",
     [](const BackendParams& p) { return make_dstore_variant(DStoreAdapter::cow_variant(), p); }},
    {"DStore-noOE",
     [](const BackendParams& p) { return make_dstore_variant(DStoreAdapter::no_oe_variant(), p); }},
    {"LogicalLog+CoW",
     [](const BackendParams& p) {
       return make_dstore_variant(DStoreAdapter::logical_cow_variant(), p);
     }},
    {"PhysLog+CoW",
     [](const BackendParams& p) {
       return make_dstore_variant(DStoreAdapter::naive_physical_variant(), p);
     }},
    {"Sharded",
     [](const BackendParams& p) -> std::unique_ptr<workload::KVStore> {
       ShardedConfig cfg;
       cfg.num_shards = p.num_shards > 0 ? p.num_shards : 4;
       uint64_t shards = (uint64_t)cfg.num_shards;
       // Same headroom as the single store, split across shards (rounded up
       // so hash skew cannot run a shard out of space at small scales).
       cfg.shard.max_objects = (p.objects * 2 + shards - 1) / shards * 2;
       cfg.shard.num_blocks = (p.objects * 6 + shards - 1) / shards * 2;
       cfg.shard.ssd_qd = p.ssd_qd;
       cfg.ckpt_workers = p.ckpt_workers;
       cfg.affinity = p.affinity;
       cfg.latency = p.latency;
       auto r = ShardedAdapter::make(cfg);
       if (!r.is_ok()) {
         fprintf(stderr, "make Sharded failed: %s\n", r.status().to_string().c_str());
         return nullptr;
       }
       return std::move(r).value();
     }},
    {"remote",
     [](const BackendParams& p) -> std::unique_ptr<workload::KVStore> {
       // Same fleet sizing as "Sharded"; the store just sits behind the
       // wire (or behind DSTORE_REMOTE_ADDR, which ignores this config).
       ShardedConfig cfg;
       cfg.num_shards = p.num_shards > 0 ? p.num_shards : 4;
       uint64_t shards = (uint64_t)cfg.num_shards;
       cfg.shard.max_objects = (p.objects * 2 + shards - 1) / shards * 2;
       cfg.shard.num_blocks = (p.objects * 6 + shards - 1) / shards * 2;
       cfg.shard.ssd_qd = p.ssd_qd;
       cfg.ckpt_workers = p.ckpt_workers;
       cfg.latency = p.latency;
       auto r = RemoteAdapter::make(cfg);
       if (!r.is_ok()) {
         fprintf(stderr, "make remote failed: %s\n", r.status().to_string().c_str());
         return nullptr;
       }
       return std::move(r).value();
     }},
    {"PMEM-RocksDB",
     [](const BackendParams& p) -> std::unique_ptr<workload::KVStore> {
       CachedLsmConfig cfg;
       cfg.num_blocks = p.objects * 6;
       cfg.memtable_limit_bytes = 4 << 20;
       // Large enough that a checkpoints-off run (Fig 1) never force-flushes.
       cfg.wal_bytes = 512 << 20;
       auto r = CachedLsmStore::make(cfg, p.latency);
       if (!r.is_ok()) return nullptr;
       return std::move(r).value();
     }},
    {"MongoDB-PM",
     [](const BackendParams& p) -> std::unique_ptr<workload::KVStore> {
       CachedBtreeConfig cfg;
       cfg.num_blocks = p.objects * 6;
       cfg.checkpoint_trigger_bytes = 4 << 20;
       cfg.journal_bytes = 512 << 20;
       auto r = CachedBtreeStore::make(cfg, p.latency);
       if (!r.is_ok()) return nullptr;
       return std::move(r).value();
     }},
    {"MongoDB-PMSE",
     [](const BackendParams& p) -> std::unique_ptr<workload::KVStore> {
       UncachedConfig cfg;
       cfg.num_slots = p.objects * 4;
       cfg.slot_bytes = 4608;  // snug fit for 4KB values (PMSE stores in place)
       auto r = UncachedStore::make(cfg, p.latency);
       if (!r.is_ok()) return nullptr;
       return std::move(r).value();
     }},
};

}  // namespace

std::unique_ptr<workload::KVStore> make_backend(const std::string& name,
                                                const BackendParams& params) {
  for (const Entry& e : kBackends) {
    if (name == e.name) return e.make(params);
  }
  fprintf(stderr, "unknown backend %s (known:", name.c_str());
  for (const Entry& e : kBackends) fprintf(stderr, " %s", e.name);
  fprintf(stderr, ")\n");
  return nullptr;
}

const std::vector<std::string>& backend_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Entry& e : kBackends) v.emplace_back(e.name);
    return v;
  }();
  return names;
}

}  // namespace dstore::baselines
