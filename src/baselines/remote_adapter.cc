#include "baselines/remote_adapter.h"

#include <cstdlib>
#include <cstring>

namespace dstore::baselines {

struct RemoteAdapter::Ctx {
  std::unique_ptr<net::Client> client;
  uint32_t ns_id = 0;
};

RemoteAdapter::~RemoteAdapter() {
  if (own_server_) own_server_->stop();
}

Result<std::unique_ptr<RemoteAdapter>> RemoteAdapter::make(ShardedConfig cfg,
                                                           std::string ns) {
  auto a = std::unique_ptr<RemoteAdapter>(new RemoteAdapter());
  a->ns_ = std::move(ns);
  if (const char* addr = std::getenv("DSTORE_REMOTE_ADDR")) {
    a->target_ = addr;
  } else {
    cfg.affinity = true;  // connections pin to their namespace's home shard
    auto store = ShardedStore::create(cfg);
    if (!store.is_ok()) return store.status();
    a->own_store_ = std::move(store).value();
    auto server = net::Server::start(a->own_store_.get(), net::ServerConfig{});
    if (!server.is_ok()) return server.status();
    a->own_server_ = std::move(server).value();
    a->target_ = "127.0.0.1:" + std::to_string(a->own_server_->port());
  }
  // Probe the target now so a bad address fails at construction, not on
  // the first measured op.
  auto probe = a->connect();
  if (!probe.is_ok()) return probe.status();
  return a;
}

Result<std::unique_ptr<net::Client>> RemoteAdapter::connect() const {
  return net::Client::connect(target_, net::ClientConfig{});
}

void* RemoteAdapter::open_ctx() {
  auto client = connect();
  if (!client.is_ok()) return nullptr;
  auto info = client.value()->open_namespace(ns_);
  if (!info.is_ok()) return nullptr;
  auto* ctx = new Ctx;
  ctx->client = std::move(client).value();
  ctx->ns_id = info.value().ns_id;
  return ctx;
}

void RemoteAdapter::close_ctx(void* ctx) { delete static_cast<Ctx*>(ctx); }

Status RemoteAdapter::put(void* ctx, std::string_view key, const void* value,
                          size_t size) {
  if (ctx == nullptr) return Status::io_error("remote ctx failed to connect");
  Ctx* c = static_cast<Ctx*>(ctx);
  return c->client->put(c->ns_id, key, value, size);
}

Result<size_t> RemoteAdapter::get(void* ctx, std::string_view key, void* buf,
                                  size_t cap) {
  if (ctx == nullptr) return Status::io_error("remote ctx failed to connect");
  Ctx* c = static_cast<Ctx*>(ctx);
  auto r = c->client->get(c->ns_id, key);
  if (!r.is_ok()) return r.status();
  size_t n = r.value().size() < cap ? r.value().size() : cap;
  if (n > 0) memcpy(buf, r.value().data(), n);
  return r.value().size();  // full size, like DStore::oget
}

Status RemoteAdapter::del(void* ctx, std::string_view key) {
  if (ctx == nullptr) return Status::io_error("remote ctx failed to connect");
  Ctx* c = static_cast<Ctx*>(ctx);
  return c->client->del(c->ns_id, key);
}

std::string RemoteAdapter::scrape(uint8_t format) {
  auto client = connect();
  if (!client.is_ok()) return "";
  auto r = client.value()->metrics(format);
  return r.is_ok() ? std::move(r).value() : "";
}

std::string RemoteAdapter::metrics_json() {
  std::string s = scrape(0);
  return s.empty() ? KVStore::metrics_json() : s;
}

std::string RemoteAdapter::metrics_prometheus() { return scrape(1); }

}  // namespace dstore::baselines
