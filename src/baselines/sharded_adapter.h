// workload::KVStore adapter over ShardedStore, so the sharded configuration
// is driveable from ycsb_runner and the per-figure benches exactly like the
// single-store backends.
#pragma once

#include <memory>

#include "dstore/sharded.h"
#include "workload/kv_interface.h"

namespace dstore::baselines {

class ShardedAdapter final : public workload::KVStore {
 public:
  static Result<std::unique_ptr<ShardedAdapter>> make(ShardedConfig cfg);

  // Per-thread sessions: private per-shard IO contexts, plus pinned
  // routing for partition-restricted loadgen threads (cfg.affinity).
  void* open_ctx() override;
  void* open_ctx_pinned(int partition) override;
  void close_ctx(void* ctx) override;
  int partitions() const override { return store_->num_shards(); }
  int placement_of(std::string_view key) const override { return store_->shard_of(key); }

  Status put(void* ctx, std::string_view key, const void* value, size_t size) override;
  Result<size_t> get(void* ctx, std::string_view key, void* buf, size_t cap) override;
  Status del(void* ctx, std::string_view key) override;
  const char* name() const override { return "Sharded"; }
  workload::SpaceBreakdown space_usage() override;
  // lint: allow-discard pre-run settling; the measured run reports its own errors
  void prepare_run() override { (void)store_->checkpoint_all(); }
  std::string metrics_json() override { return store_->metrics_json(); }
  std::string metrics_prometheus() override { return store_->metrics_prometheus(); }
  Result<RecoveryTiming> crash_and_recover() override;

  ShardedStore& store() { return *store_; }

 private:
  ShardedAdapter() = default;

  std::unique_ptr<ShardedStore> store_;
};

}  // namespace dstore::baselines
